package rcoe_test

import (
	"bytes"
	"testing"

	"rcoe"
	"rcoe/internal/bench"
	"rcoe/internal/core"
	"rcoe/internal/faults"
	"rcoe/internal/harness"
	"rcoe/internal/workload"
)

// These differential tests are the parallel-determinism contract of the
// experiment engine: the host worker count is a throughput knob only, so
// every campaign must emit byte-identical result artifacts at -parallel=1
// and -parallel=N. Results land by job index, seeds derive from the
// campaign master, and artifacts carry no host timings; any diff here
// means completion order leaked into a result.

// withWorkers runs f under a temporary engine default worker count,
// restoring the host-core default afterwards.
func withWorkers(t *testing.T, n int, f func()) {
	t.Helper()
	rcoe.SetParallelism(n)
	defer rcoe.SetParallelism(0)
	f()
}

// TestParallelDeterminismExperiments renders every registered experiment
// at Quick scale serially and with an oversubscribed worker pool and
// requires byte-identical JSON artifacts.
func TestParallelDeterminismExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite is seconds-long; skipped with -short")
	}
	render := func(workers int) []byte {
		var data []byte
		withWorkers(t, workers, func() {
			report := bench.BuildReport(bench.Quick, bench.All(), nil)
			if n := report.Failed(); n != 0 {
				t.Fatalf("workers=%d: %d experiments failed: %+v",
					workers, n, report.Experiments)
			}
			var err error
			data, err = report.MarshalIndent()
			if err != nil {
				t.Fatal(err)
			}
		})
		return data
	}
	serial := render(1)
	parallel := render(8)
	if !bytes.Equal(serial, parallel) {
		d1, d2 := firstDiffLine(serial, parallel)
		t.Fatalf("suite artifact differs between 1 and 8 workers:\nserial:   %s\nparallel: %s",
			d1, d2)
	}
}

// firstDiffLine locates the first differing line of two artifacts, so a
// determinism break reports the responsible table row instead of a blob.
func firstDiffLine(a, b []byte) (string, string) {
	la, lb := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	for i := 0; i < len(la) && i < len(lb); i++ {
		if !bytes.Equal(la[i], lb[i]) {
			return string(la[i]), string(lb[i])
		}
	}
	return "<prefix equal>", "<lengths differ>"
}

// TestParallelDeterminismMemCampaign pins the memory fault campaign: the
// historical per-trial seed chain must tally identically at any worker
// count (EXPERIMENTS.md quotes those numbers).
func TestParallelDeterminismMemCampaign(t *testing.T) {
	run := func(workers int) *faults.Tally {
		var tally *faults.Tally
		withWorkers(t, workers, func() {
			var err error
			tally, err = rcoe.MemCampaign(rcoe.MemCampaignOptions{
				KV: harness.KVOptions{
					System: core.Config{
						Mode: core.ModeLC, Replicas: 2, TickCycles: 50_000,
					},
					Workload: workload.YCSBA, Records: 32, Operations: 120,
					TraceOutput: true,
				},
				Trials: 6, FlipEveryCycles: 900, MaxFlips: 6_000,
				IncludeDMA: true, Seed: 5,
			})
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
		})
		return tally
	}
	serial, parallel := run(1), run(8)
	if serial.Injected != parallel.Injected {
		t.Fatalf("injected flips differ: %d vs %d", serial.Injected, parallel.Injected)
	}
	for o, n := range serial.Counts {
		if parallel.Counts[o] != n {
			t.Fatalf("outcome %v: %d serial vs %d parallel", o, n, parallel.Counts[o])
		}
	}
	if len(serial.Counts) != len(parallel.Counts) {
		t.Fatalf("outcome sets differ: %v vs %v", serial.Counts, parallel.Counts)
	}
}

// TestParallelDeterminismRegCampaign pins the register fault campaign the
// same way.
func TestParallelDeterminismRegCampaign(t *testing.T) {
	run := func(workers int) faults.RegTally {
		var tally faults.RegTally
		withWorkers(t, workers, func() {
			var err error
			tally, err = rcoe.RegCampaign(rcoe.RegCampaignOptions{
				System:       core.Config{Mode: core.ModeCC, Replicas: 2},
				MessageBytes: 4096, Trials: 6, Seed: 17,
			})
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
		})
		return tally
	}
	if serial, parallel := run(1), run(8); serial != parallel {
		t.Fatalf("register tallies differ:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}
