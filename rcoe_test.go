package rcoe_test

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"rcoe"
)

// sumProgram is a small public-API guest.
func sumProgram() rcoe.Program {
	return rcoe.Program{
		Name:      "sum",
		DataBytes: 4096,
		Stacks:    1,
		Build: func() *rcoe.Builder {
			b := rcoe.NewBuilder()
			b.Li(5, 0)
			b.Li(6, 0)
			b.Li64(7, 5000)
			b.Label("loop")
			b.Add(5, 5, 6)
			b.Addi(6, 6, 1)
			b.Blt(6, 7, "loop")
			b.Mov(1, 5)
			b.Syscall(1)
			return b
		},
	}
}

func TestPublicAPIDMRRun(t *testing.T) {
	sys, err := rcoe.BuildSystem(rcoe.Config{
		Mode: rcoe.ModeLC, Replicas: 2, TickCycles: 10_000,
	}, sumProgram())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	want := uint64(5000 * 4999 / 2)
	for rid := 0; rid < 2; rid++ {
		if got := sys.Replica(rid).K.Thread(0).ExitCode; got != want {
			t.Fatalf("replica %d exit = %d, want %d", rid, got, want)
		}
	}
}

func TestPublicAPICCArm(t *testing.T) {
	sys, err := rcoe.BuildSystem(rcoe.Config{
		Mode: rcoe.ModeCC, Replicas: 2, TickCycles: 10_000, Profile: rcoe.Arm(),
	}, sumProgram())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIKV(t *testing.T) {
	res, err := rcoe.RunKV(rcoe.KVOptions{
		System:      rcoe.Config{Mode: rcoe.ModeLC, Replicas: 2, TickCycles: 50_000},
		Workload:    rcoe.YCSBB,
		Records:     24,
		Operations:  50,
		TraceOutput: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 50 || res.Corruptions != 0 {
		t.Fatalf("bad result: %+v", res)
	}
}

func TestPublicAPIExperimentRegistry(t *testing.T) {
	exps := rcoe.Experiments()
	if len(exps) < 15 {
		t.Fatalf("only %d experiments", len(exps))
	}
	tbl, err := rcoe.RunExperiment("table1", rcoe.Quick)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "R2") {
		t.Fatalf("table1 missing consensus result:\n%s", tbl)
	}
	if _, err := rcoe.RunExperiment("no-such", rcoe.Quick); err == nil {
		t.Fatalf("unknown experiment should error")
	}
}

func TestPublicAPIStockWorkloads(t *testing.T) {
	progs := []rcoe.Program{
		rcoe.Dhrystone(100),
		rcoe.Whetstone(20),
		rcoe.Membench(4096, 1),
		rcoe.DataRace(2, 3, 3),
		rcoe.AtomicCounter(2, 3),
		rcoe.MD5(rcoe.MD5Pad([]byte("hello"))),
	}
	for _, p := range progs {
		sys, err := rcoe.BuildSystem(rcoe.Config{Mode: rcoe.ModeNone, TickCycles: 10_000}, p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if err := sys.Run(500_000_000); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
	}
	if len(rcoe.SplashSuite()) != 14 {
		t.Fatalf("splash suite size")
	}
}

func TestPublicAPIVM(t *testing.T) {
	vm, err := rcoe.LaunchVM(rcoe.GuestConfig{
		System:  rcoe.Config{Mode: rcoe.ModeCC, Replicas: 2, TickCycles: 10_000},
		Program: sumProgram(),
	})
	if err != nil {
		t.Fatal(err)
	}
	cycles, err := vm.Run(500_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if cycles == 0 {
		t.Fatalf("no cycles measured")
	}
}

func TestPublicAPITraceForensics(t *testing.T) {
	// Disabled by default: forensics requests surface the sentinel.
	sys, err := rcoe.BuildSystem(rcoe.Config{
		Mode: rcoe.ModeLC, Replicas: 2, TickCycles: 10_000,
	}, sumProgram())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CaptureForensics("check"); !errors.Is(err, rcoe.ErrTraceDisabled) {
		t.Fatalf("CaptureForensics on an untraced system: err = %v, want ErrTraceDisabled", err)
	}

	// Enabled: a clean run yields agreeing streams, a metrics snapshot,
	// and a trace file that round-trips through Save/Load.
	sys, err = rcoe.BuildSystem(rcoe.Config{
		Mode: rcoe.ModeLC, Replicas: 2, TickCycles: 10_000,
		Trace: rcoe.TraceConfig{Enabled: true, RingEvents: 512},
	}, sumProgram())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(500_000_000); err != nil {
		t.Fatal(err)
	}
	rec := sys.TraceRecorder()
	if rec == nil || rec.Ring(0).Total() == 0 {
		t.Fatal("traced system recorded nothing")
	}
	if d := rcoe.FirstDivergence(rec.Streams()); d.Found {
		t.Fatalf("clean run diverged: %s", d)
	}
	snap := sys.MetricsSnapshot()
	if snap.Counter("syncs") == 0 {
		t.Fatal("no syncs in the metrics snapshot")
	}
	if !strings.Contains(snap.Table("t"), "barrier-wait") {
		t.Fatal("snapshot table missing the barrier-wait histogram")
	}
	path := filepath.Join(t.TempDir(), "run.trc")
	if err := rcoe.SaveTrace(path, rec); err != nil {
		t.Fatal(err)
	}
	loaded, err := rcoe.LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Ring(0).Total() != rec.Ring(0).Total() {
		t.Fatalf("trace round-trip lost events: %d != %d",
			loaded.Ring(0).Total(), rec.Ring(0).Total())
	}
}

func TestPublicAPIRecovery(t *testing.T) {
	res, err := rcoe.RecoveryTrial(rcoe.RecoveryOptions{
		System:        rcoe.Config{Mode: rcoe.ModeLC},
		FaultyReplica: 1,
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.WasPrimary {
		t.Fatalf("unexpected recovery result: %+v", res)
	}
}
