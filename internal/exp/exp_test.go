package exp

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"
)

// squareJobs builds n jobs whose value depends only on index and seed.
func squareJobs(n int) []Job[uint64] {
	jobs := make([]Job[uint64], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[uint64]{
			Name: fmt.Sprintf("sq[%d]", i),
			Run: func(_ context.Context, seed uint64) (uint64, error) {
				// Stagger completion order so index-stable aggregation is
				// actually exercised, not just trivially true.
				time.Sleep(time.Duration((n-i)%3) * time.Millisecond)
				return seed ^ uint64(i*i), nil
			},
		}
	}
	return jobs
}

func TestRunZeroJobs(t *testing.T) {
	res, err := Run(Options{}, []Job[int]{})
	if err != nil {
		t.Fatalf("zero jobs: %v", err)
	}
	if len(res) != 0 {
		t.Fatalf("zero jobs returned %d results", len(res))
	}
	if vals, err := Values(res); err != nil || len(vals) != 0 {
		t.Fatalf("Values on empty results: %v %v", vals, err)
	}
}

func TestRunWorkerCountInvisible(t *testing.T) {
	const n = 17
	var want []Result[uint64]
	for _, workers := range []int{1, 2, 3, 8, n + 5} {
		res, err := Run(Options{Workers: workers, MasterSeed: 42}, squareJobs(n))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, r := range res {
			if r.Index != i {
				t.Fatalf("workers=%d: result %d carries index %d", workers, i, r.Index)
			}
		}
		if want == nil {
			want = res
			continue
		}
		if !reflect.DeepEqual(res, want) {
			t.Fatalf("workers=%d: results differ from workers=1", workers)
		}
	}
}

func TestRunOneWorkerIsSerial(t *testing.T) {
	order := make([]int, 0, 5)
	jobs := make([]Job[int], 5)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Run: func(context.Context, uint64) (int, error) {
			order = append(order, i) // safe: one worker, no concurrency
			return i, nil
		}}
	}
	if _, err := Run(Options{Workers: 1}, jobs); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("one worker ran out of order: %v", order)
	}
}

func TestRunJobErrorRecordedCampaignContinues(t *testing.T) {
	boom := errors.New("boom")
	jobs := make([]Job[int], 6)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Name: fmt.Sprintf("j%d", i),
			Run: func(context.Context, uint64) (int, error) {
				if i == 2 {
					return 0, boom
				}
				return i * 10, nil
			},
		}
	}
	res, err := Run(Options{Workers: 3}, jobs)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for i, r := range res {
		if i == 2 {
			if !errors.Is(r.Err, boom) {
				t.Fatalf("job 2 error = %v, want boom", r.Err)
			}
			continue
		}
		if r.Err != nil || r.Value != i*10 {
			t.Fatalf("job %d after failure: value=%d err=%v", i, r.Value, r.Err)
		}
	}
	if err := FirstErr(res); !errors.Is(err, boom) {
		t.Fatalf("FirstErr = %v", err)
	}
	if _, err := Values(res); !errors.Is(err, boom) {
		t.Fatalf("Values error = %v", err)
	}
}

func TestRunJobPanicRecorded(t *testing.T) {
	jobs := []Job[int]{
		{Name: "ok", Run: func(context.Context, uint64) (int, error) { return 1, nil }},
		{Name: "bad", Run: func(context.Context, uint64) (int, error) { panic("kaboom") }},
		{Name: "nil-run"},
	}
	res, err := Run(Options{Workers: 1}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil || res[0].Value != 1 {
		t.Fatalf("job 0: %+v", res[0])
	}
	if res[1].Err == nil {
		t.Fatal("panic was not recorded as an error")
	}
	if res[2].Err == nil {
		t.Fatal("nil Run was not recorded as an error")
	}
}

func TestRunContextCancelledMidCampaign(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	jobs := make([]Job[int], 8)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Run: func(context.Context, uint64) (int, error) {
			if i == 1 {
				cancel() // one worker: jobs 2.. have not started yet
			}
			return i, nil
		}}
	}
	res, err := Run(Options{Workers: 1, Context: ctx}, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("run after cancel returned %v", err)
	}
	// Jobs 0 and 1 ran to completion; everything after records ctx.Err().
	for i, r := range res {
		if i <= 1 {
			if r.Err != nil || r.Value != i {
				t.Fatalf("started job %d: %+v", i, r)
			}
			continue
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("unstarted job %d error = %v", i, r.Err)
		}
	}
}

func TestRunProgressCoversEveryJob(t *testing.T) {
	const n = 9
	seen := make(map[int]bool)
	var last int
	_, err := Run(Options{
		Workers: 4,
		OnProgress: func(p Progress) {
			// Serialised by the engine: no lock needed here.
			seen[p.Index] = true
			if p.Total != n || p.Done != last+1 {
				t.Errorf("progress done=%d total=%d (last=%d)", p.Done, p.Total, last)
			}
			last = p.Done
		},
	}, squareJobs(n))
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("progress reported %d distinct jobs, want %d", len(seen), n)
	}
}

func TestDeriveSeedStableAndDistinct(t *testing.T) {
	// The derivation is part of the determinism contract: changing it
	// silently reshuffles every campaign. Pin a few values.
	pins := map[int]uint64{
		0: DeriveSeed(1, 0),
		1: DeriveSeed(1, 1),
		2: DeriveSeed(1, 2),
	}
	seen := make(map[uint64]bool)
	for i := 0; i < 10_000; i++ {
		s := DeriveSeed(1, i)
		if s == 0 {
			t.Fatalf("DeriveSeed(1, %d) = 0", i)
		}
		if seen[s] {
			t.Fatalf("seed collision at index %d", i)
		}
		seen[s] = true
	}
	for i, want := range pins {
		if got := DeriveSeed(1, i); got != want {
			t.Fatalf("DeriveSeed(1, %d) unstable: %#x then %#x", i, want, got)
		}
	}
	if DeriveSeed(1, 5) == DeriveSeed(2, 5) {
		t.Fatal("different masters derive the same seed")
	}
}

func TestExplicitSeedOverridesDerivation(t *testing.T) {
	jobs := []Job[uint64]{
		{Seed: 77, Run: func(_ context.Context, seed uint64) (uint64, error) { return seed, nil }},
		{Run: func(_ context.Context, seed uint64) (uint64, error) { return seed, nil }},
	}
	res, err := Run(Options{Workers: 1, MasterSeed: 9}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Value != 77 || res[0].Seed != 77 {
		t.Fatalf("explicit seed not honoured: %+v", res[0])
	}
	if want := DeriveSeed(9, 1); res[1].Value != want {
		t.Fatalf("derived seed = %#x, want %#x", res[1].Value, want)
	}
}

func TestSetDefaultWorkers(t *testing.T) {
	old := DefaultWorkers()
	defer SetDefaultWorkers(old)
	SetDefaultWorkers(3)
	if DefaultWorkers() != 3 {
		t.Fatalf("DefaultWorkers = %d, want 3", DefaultWorkers())
	}
	SetDefaultWorkers(0) // restores host core count
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers = %d after reset", DefaultWorkers())
	}
}
