// Package exp is the unified experiment engine: every campaign of the
// evaluation — overhead sweeps, fault-injection studies, soak cycles — is
// a set of independent, deterministic, self-contained simulated runs, so
// the campaign layer can fan out across all host cores without perturbing
// a single simulated cycle.
//
// The engine's determinism contract has three legs:
//
//   - per-job seeds are derived from a campaign master seed and the job's
//     index (splitmix64), never from completion order or host state;
//   - results land in a slice indexed by job index, never appended in
//     completion order, so aggregation is structurally order-stable;
//   - jobs receive no shared mutable state from the engine.
//
// Together these make worker count invisible: a campaign run with one
// worker and with N workers produces identical results, byte for byte.
package exp

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers is the process-wide worker-pool size used when
// Options.Workers is zero. It is what the CLIs' -parallel flags set.
var defaultWorkers atomic.Int64

func init() { defaultWorkers.Store(int64(runtime.NumCPU())) }

// SetDefaultWorkers sets the process-wide default worker count; n < 1
// restores the host core count.
func SetDefaultWorkers(n int) {
	if n < 1 {
		n = runtime.NumCPU()
	}
	defaultWorkers.Store(int64(n))
}

// DefaultWorkers returns the process-wide default worker count.
func DefaultWorkers() int { return int(defaultWorkers.Load()) }

// DeriveSeed derives the seed for job index from a campaign master seed
// using a splitmix64 step: well-distributed, stateless, and independent of
// every other job's seed, so jobs can run in any order on any worker. The
// result is never zero.
func DeriveSeed(master uint64, index int) uint64 {
	z := master + 0x9E3779B97F4A7C15*(uint64(index)+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 0x9E3779B97F4A7C15
	}
	return z
}

// Job is one independent unit of an experiment campaign.
type Job[T any] struct {
	// Name labels the job in progress reports and error messages.
	Name string
	// Seed, when nonzero, overrides the derived seed (campaigns that
	// predate the engine keep their historical seed chains this way).
	Seed uint64
	// Run executes the job. It must be self-contained: everything it
	// mutates must be reachable only from this job.
	Run func(ctx context.Context, seed uint64) (T, error)
}

// Result is one job's outcome. Results are returned indexed by job index
// regardless of completion order.
type Result[T any] struct {
	Index int
	Name  string
	Seed  uint64
	Value T
	// Err records the job's failure; the campaign continues past it.
	Err error
}

// Progress reports one completed job to Options.OnProgress. Done counts
// completions (in completion order); Index identifies the job.
type Progress struct {
	Index int
	Name  string
	Err   error
	Done  int
	Total int
}

// Options configures one engine invocation.
type Options struct {
	// Workers is the worker-pool size; zero means DefaultWorkers().
	Workers int
	// Context cancels the campaign: running jobs finish, unstarted jobs
	// record ctx.Err(), and Run returns it.
	Context context.Context
	// MasterSeed seeds the per-job derivation for jobs without an
	// explicit seed.
	MasterSeed uint64
	// OnProgress, when set, is called after every job completes. Calls
	// are serialised by the engine but may come from any worker.
	OnProgress func(Progress)
}

// Run executes the jobs on a host worker pool and returns their results
// indexed by job index. Job errors are recorded per job and do not stop
// the campaign; Run itself fails only when the context is cancelled.
func Run[T any](opts Options, jobs []Job[T]) ([]Result[T], error) {
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]Result[T], len(jobs))
	for i, j := range jobs {
		seed := j.Seed
		if seed == 0 {
			seed = DeriveSeed(opts.MasterSeed, i)
		}
		results[i] = Result[T]{Index: i, Name: j.Name, Seed: seed}
	}
	if len(jobs) == 0 {
		return results, ctx.Err()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		progress sync.Mutex
		done     int
	)
	report := func(i int) {
		if opts.OnProgress == nil {
			return
		}
		progress.Lock()
		defer progress.Unlock()
		done++
		opts.OnProgress(Progress{
			Index: i, Name: results[i].Name, Err: results[i].Err,
			Done: done, Total: len(jobs),
		})
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				if err := ctx.Err(); err != nil {
					results[i].Err = err
				} else {
					results[i].Value, results[i].Err = runJob(ctx, jobs[i], results[i].Seed)
				}
				report(i)
			}
		}()
	}
	wg.Wait()
	return results, ctx.Err()
}

// runJob executes one job, converting a panic into a recorded error so a
// single bad trial cannot take down a whole campaign.
func runJob[T any](ctx context.Context, j Job[T], seed uint64) (val T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("exp: job %q panicked: %v", j.Name, r)
		}
	}()
	if j.Run == nil {
		return val, fmt.Errorf("exp: job %q has no run function", j.Name)
	}
	return j.Run(ctx, seed)
}

// Values extracts the job values in index order. When any job failed it
// returns the lowest-index error — deterministic regardless of which
// worker hit it first.
func Values[T any](results []Result[T]) ([]T, error) {
	if err := FirstErr(results); err != nil {
		return nil, err
	}
	out := make([]T, len(results))
	for i, r := range results {
		out[i] = r.Value
	}
	return out, nil
}

// FirstErr returns the lowest-index job error, or nil.
func FirstErr[T any](results []Result[T]) error {
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}
