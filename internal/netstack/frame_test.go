package netstack

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRequestRoundTrip(t *testing.T) {
	for _, req := range []Request{
		{Op: OpGet, ReqID: 7, Key: []byte("user000001")},
		{Op: OpSet, ReqID: 8, Key: []byte("k"), Value: bytes.Repeat([]byte{0xAB}, 100)},
		{Op: OpScan, ReqID: 9, Key: []byte("user000002"), ScanCount: 25},
	} {
		frame, err := EncodeRequest(req)
		if err != nil {
			t.Fatalf("%+v: %v", req, err)
		}
		got, err := DecodeRequest(frame)
		if err != nil {
			t.Fatal(err)
		}
		if got.Op != req.Op || got.ReqID != req.ReqID || !bytes.Equal(got.Key, req.Key) {
			t.Fatalf("round trip = %+v, want %+v", got, req)
		}
		switch req.Op {
		case OpSet:
			if !bytes.Equal(got.Value, req.Value) {
				t.Fatalf("value lost")
			}
		case OpScan:
			if got.ScanCount != req.ScanCount {
				t.Fatalf("scan count = %d", got.ScanCount)
			}
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resp := Response{Status: StatusOK, ReqID: 42, Value: []byte("payload")}
	got, err := DecodeResponse(EncodeResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != resp.Status || got.ReqID != resp.ReqID || !bytes.Equal(got.Value, resp.Value) {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestEncodeRequestValidation(t *testing.T) {
	if _, err := EncodeRequest(Request{Op: OpGet, Key: nil}); err == nil {
		t.Fatalf("empty key accepted")
	}
	if _, err := EncodeRequest(Request{Op: OpGet, Key: bytes.Repeat([]byte{'k'}, MaxKey+1)}); err == nil {
		t.Fatalf("oversized key accepted")
	}
	if _, err := EncodeRequest(Request{Op: OpSet, Key: []byte("k"),
		Value: bytes.Repeat([]byte{1}, MaxValue+1)}); err == nil {
		t.Fatalf("oversized value accepted")
	}
}

func TestDecodeMalformed(t *testing.T) {
	if _, err := DecodeResponse([]byte{1, 2}); err == nil {
		t.Fatalf("short response accepted")
	}
	if _, err := DecodeResponse([]byte{0, 0, 0xFF, 0xFF, 0, 0, 0, 0}); err == nil {
		t.Fatalf("overlong value length accepted")
	}
	if _, err := DecodeRequest([]byte{1}); err == nil {
		t.Fatalf("short request accepted")
	}
	if _, err := DecodeRequest([]byte{OpGet, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Fatalf("zero key length accepted")
	}
}

func TestQuickRequestRoundTrip(t *testing.T) {
	f := func(id uint32, key, val []byte) bool {
		if len(key) == 0 {
			key = []byte("k")
		}
		if len(key) > MaxKey {
			key = key[:MaxKey]
		}
		if len(val) > MaxValue {
			val = val[:MaxValue]
		}
		frame, err := EncodeRequest(Request{Op: OpSet, ReqID: id, Key: key, Value: val})
		if err != nil {
			return false
		}
		got, err := DecodeRequest(frame)
		return err == nil && got.ReqID == id &&
			bytes.Equal(got.Key, key) && bytes.Equal(got.Value, val)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
