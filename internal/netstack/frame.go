// Package netstack defines the wire framing between the YCSB-style load
// generator and the replicated key-value server (the lwIP + Redis protocol
// stand-in). Frames are fixed-layout so the ISA-level server can parse
// them with constant offsets.
//
// Request frame:
//
//	[0]    op (1=GET, 2=SET, 3=SCAN)
//	[1]    key length (<= MaxKey)
//	[2:4]  value length (SET) or scan count (SCAN), little-endian
//	[4:8]  request ID, little-endian
//	[8:]   key bytes, then value bytes
//
// Response frame:
//
//	[0]    status (0=OK, 1=not found, 2=error)
//	[1]    reserved
//	[2:4]  value length, little-endian
//	[4:8]  request ID
//	[8:]   value bytes
package netstack

import (
	"errors"
	"fmt"
)

// Operation codes.
const (
	OpGet  = 1
	OpSet  = 2
	OpScan = 3
)

// Response status codes.
const (
	StatusOK       = 0
	StatusNotFound = 1
	StatusError    = 2
)

// Size limits. MaxFrame bounds both directions and fits the NIC mailbox.
const (
	MaxKey   = 31
	MaxValue = 512
	MaxFrame = 8 + MaxKey + MaxValue
	// HeaderBytes is the fixed frame header size.
	HeaderBytes = 8
)

// ErrBadFrame reports a malformed frame.
var ErrBadFrame = errors.New("netstack: malformed frame")

// Request is a decoded client request.
type Request struct {
	Op    byte
	ReqID uint32
	Key   []byte
	Value []byte
	// ScanCount is the number of records a SCAN asks for.
	ScanCount int
}

// Response is a decoded server response.
type Response struct {
	Status byte
	ReqID  uint32
	Value  []byte
}

// AppendRequest serialises a request, appending the frame to dst and
// returning the extended slice. Hot paths (the cluster router encodes
// every routed operation) pass a pre-sized buffer so one allocation can
// back the frame and any retained copies; EncodeRequest is the
// allocate-per-call convenience wrapper.
func AppendRequest(dst []byte, r Request) ([]byte, error) {
	if len(r.Key) == 0 || len(r.Key) > MaxKey {
		return nil, fmt.Errorf("%w: key length %d", ErrBadFrame, len(r.Key))
	}
	vlen := len(r.Value)
	if r.Op == OpScan {
		vlen = r.ScanCount
	}
	if vlen > MaxValue {
		return nil, fmt.Errorf("%w: value length %d", ErrBadFrame, vlen)
	}
	dst = append(dst, r.Op, byte(len(r.Key)), byte(vlen), byte(vlen>>8),
		byte(r.ReqID), byte(r.ReqID>>8), byte(r.ReqID>>16), byte(r.ReqID>>24))
	dst = append(dst, r.Key...)
	if r.Op != OpScan {
		dst = append(dst, r.Value...)
	}
	return dst, nil
}

// EncodeRequest serialises a request.
func EncodeRequest(r Request) ([]byte, error) {
	return AppendRequest(make([]byte, 0, HeaderBytes+len(r.Key)+len(r.Value)), r)
}

// DecodeResponseInPlace parses a response frame without copying the
// value: the returned Response's Value aliases b, so it is only valid
// while the caller owns the frame and must be copied to outlive it.
// The cluster drain loop validates and discards each response before
// touching the next frame, so the alias never escapes the iteration.
func DecodeResponseInPlace(b []byte) (Response, error) {
	if len(b) < HeaderBytes {
		return Response{}, fmt.Errorf("%w: short response (%d bytes)", ErrBadFrame, len(b))
	}
	vlen := int(b[2]) | int(b[3])<<8
	if HeaderBytes+vlen > len(b) {
		return Response{}, fmt.Errorf("%w: value length %d exceeds frame", ErrBadFrame, vlen)
	}
	return Response{
		Status: b[0],
		ReqID:  uint32(b[4]) | uint32(b[5])<<8 | uint32(b[6])<<16 | uint32(b[7])<<24,
		Value:  b[HeaderBytes : HeaderBytes+vlen : HeaderBytes+vlen],
	}, nil
}

// DecodeResponse parses a response frame into freshly allocated storage.
func DecodeResponse(b []byte) (Response, error) {
	r, err := DecodeResponseInPlace(b)
	if err != nil {
		return Response{}, err
	}
	r.Value = append([]byte(nil), r.Value...)
	return r, nil
}

// DecodeRequest parses a request frame. The cluster router decodes
// frames from arbitrary sources, so the decoder is total and strict:
// every length field is bounds-checked against both the protocol limits
// and the actual buffer, and unknown opcodes are rejected rather than
// decoded as a GET-shaped frame.
func DecodeRequest(b []byte) (Request, error) {
	if len(b) < HeaderBytes {
		return Request{}, fmt.Errorf("%w: short request", ErrBadFrame)
	}
	klen := int(b[1])
	vlen := int(b[2]) | int(b[3])<<8
	r := Request{
		Op:    b[0],
		ReqID: uint32(b[4]) | uint32(b[5])<<8 | uint32(b[6])<<16 | uint32(b[7])<<24,
	}
	if r.Op != OpGet && r.Op != OpSet && r.Op != OpScan {
		return Request{}, fmt.Errorf("%w: unknown op %d", ErrBadFrame, r.Op)
	}
	if klen == 0 || klen > MaxKey || HeaderBytes+klen > len(b) {
		return Request{}, fmt.Errorf("%w: key length %d", ErrBadFrame, klen)
	}
	r.Key = append([]byte(nil), b[HeaderBytes:HeaderBytes+klen]...)
	switch r.Op {
	case OpScan:
		if vlen > MaxValue {
			return Request{}, fmt.Errorf("%w: scan count %d", ErrBadFrame, vlen)
		}
		r.ScanCount = vlen
	case OpSet:
		if vlen > MaxValue || HeaderBytes+klen+vlen > len(b) {
			return Request{}, fmt.Errorf("%w: value length %d", ErrBadFrame, vlen)
		}
		r.Value = append([]byte(nil), b[HeaderBytes+klen:HeaderBytes+klen+vlen]...)
	}
	return r, nil
}

// EncodeResponse serialises a response (used by tests and the in-Go
// server model).
func EncodeResponse(r Response) []byte {
	buf := make([]byte, 0, HeaderBytes+len(r.Value))
	vlen := len(r.Value)
	buf = append(buf, r.Status, 0, byte(vlen), byte(vlen>>8),
		byte(r.ReqID), byte(r.ReqID>>8), byte(r.ReqID>>16), byte(r.ReqID>>24))
	return append(buf, r.Value...)
}
