package netstack

import (
	"bytes"
	"testing"
)

// FuzzDecodeRequest asserts the request decoder is total — no panic on
// any input — and that accepted frames satisfy the protocol invariants
// and survive a re-encode round trip.
func FuzzDecodeRequest(f *testing.F) {
	// Well-formed seeds from the encoder.
	for _, req := range []Request{
		{Op: OpGet, ReqID: 1, Key: []byte("user00000001")},
		{Op: OpSet, ReqID: 2, Key: []byte("k"), Value: bytes.Repeat([]byte{0xAB}, MaxValue)},
		{Op: OpScan, ReqID: 3, Key: []byte("user00000002"), ScanCount: 25},
	} {
		frame, err := EncodeRequest(req)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	// Malformed seeds: truncated, zero key, lying lengths, unknown op.
	f.Add([]byte{})
	f.Add([]byte{OpSet})
	f.Add([]byte{OpGet, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{OpSet, 5, 0xFF, 0xFF, 0, 0, 0, 0, 'a', 'b', 'c', 'd', 'e'})
	f.Add([]byte{99, 1, 0, 0, 0, 0, 0, 0, 'k'})

	f.Fuzz(func(t *testing.T, b []byte) {
		req, err := DecodeRequest(b)
		if err != nil {
			return
		}
		// Accepted frames obey the protocol bounds.
		if req.Op != OpGet && req.Op != OpSet && req.Op != OpScan {
			t.Fatalf("decoder accepted unknown op %d", req.Op)
		}
		if len(req.Key) == 0 || len(req.Key) > MaxKey {
			t.Fatalf("decoder accepted key length %d", len(req.Key))
		}
		if len(req.Value) > MaxValue {
			t.Fatalf("decoder accepted value length %d", len(req.Value))
		}
		if req.ScanCount < 0 || req.ScanCount > MaxValue {
			t.Fatalf("decoder accepted scan count %d", req.ScanCount)
		}
		// Re-encode + re-decode is the identity on the decoded view.
		frame, err := EncodeRequest(req)
		if err != nil {
			t.Fatalf("re-encode of accepted request failed: %v", err)
		}
		again, err := DecodeRequest(frame)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Op != req.Op || again.ReqID != req.ReqID ||
			!bytes.Equal(again.Key, req.Key) || !bytes.Equal(again.Value, req.Value) ||
			again.ScanCount != req.ScanCount {
			t.Fatalf("round trip diverged: %+v vs %+v", again, req)
		}
	})
}

// FuzzDecodeResponse asserts the response decoder is total and that
// accepted frames round-trip through the encoder.
func FuzzDecodeResponse(f *testing.F) {
	f.Add(EncodeResponse(Response{Status: StatusOK, ReqID: 42, Value: []byte("payload")}))
	f.Add(EncodeResponse(Response{Status: StatusNotFound, ReqID: 7}))
	f.Add([]byte{})
	f.Add([]byte{1, 2})
	f.Add([]byte{0, 0, 0xFF, 0xFF, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, b []byte) {
		resp, err := DecodeResponse(b)
		if err != nil {
			return
		}
		if HeaderBytes+len(resp.Value) > len(b) {
			t.Fatalf("decoder read %d value bytes from a %d-byte frame", len(resp.Value), len(b))
		}
		again, err := DecodeResponse(EncodeResponse(resp))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Status != resp.Status || again.ReqID != resp.ReqID ||
			!bytes.Equal(again.Value, resp.Value) {
			t.Fatalf("round trip diverged: %+v vs %+v", again, resp)
		}
	})
}
