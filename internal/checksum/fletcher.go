// Package checksum implements the order-sensitive Fletcher checksum used
// by RCoE state signatures.
//
// The paper (§III-C) reduces critical kernel-state updates, driver
// contributions and system-call arguments to a three-word signature: an
// event count plus a checksum over the sequence of state-changing values.
// A Fletcher checksum is chosen because it is sensitive both to the values
// and to the order in which they are accumulated, so transposed updates —
// which an additive checksum would miss — still produce divergent
// signatures.
package checksum

import "encoding/binary"

// fletcherMod is the largest prime below 2^32, used to reduce the two
// running sums. Working modulo a prime (rather than 2^32-1 as in the
// textbook Fletcher-64) keeps the sums well mixed under long runs of
// identical words.
const fletcherMod = 4294967291

// Fletcher accumulates an order-sensitive checksum over 64-bit words.
// The zero value is ready to use.
type Fletcher struct {
	lo uint64 // running sum of words
	hi uint64 // running sum of running sums
	n  uint64 // number of words accumulated
}

// Add folds one 64-bit word into the checksum.
func (f *Fletcher) Add(w uint64) {
	// Fold the upper half into the lower so that all 64 bits of the input
	// affect the sums even though arithmetic is mod ~2^32.
	v := (w >> 32) ^ (w & 0xffffffff) ^ (w >> 48 << 16)
	f.lo = (f.lo + v) % fletcherMod
	f.hi = (f.hi + f.lo) % fletcherMod
	f.n++
}

// AddBytes folds a byte buffer into the checksum, 8 bytes at a time with a
// zero-padded tail. The buffer length is folded first so that otherwise
// identical prefixes of different lengths produce different checksums.
func (f *Fletcher) AddBytes(b []byte) {
	f.Add(uint64(len(b)))
	var i int
	for ; i+8 <= len(b); i += 8 {
		f.Add(le64(b[i:]))
	}
	if i < len(b) {
		var tail [8]byte
		copy(tail[:], b[i:])
		f.Add(le64(tail[:]))
	}
}

// Sum returns the current 64-bit checksum value.
func (f *Fletcher) Sum() uint64 {
	return f.hi<<32 | f.lo
}

// Count returns the number of words accumulated so far.
func (f *Fletcher) Count() uint64 { return f.n }

// Reset returns the checksum to its initial state.
func (f *Fletcher) Reset() {
	f.lo, f.hi, f.n = 0, 0, 0
}

// State exposes the raw accumulator so callers can persist the checksum
// in simulated RAM (the kernel keeps its signature accumulator in the
// replica's memory partition, where fault injection can reach it).
func (f *Fletcher) State() (lo, hi, n uint64) {
	return f.lo, f.hi, f.n
}

// Restore rebuilds a Fletcher from persisted accumulator state.
func Restore(lo, hi, n uint64) *Fletcher {
	return &Fletcher{lo: lo, hi: hi, n: n}
}

// Sum64 is a convenience that checksums a slice of words in order.
func Sum64(words []uint64) uint64 {
	var f Fletcher
	for _, w := range words {
		f.Add(w)
	}
	return f.Sum()
}

func le64(b []byte) uint64 {
	return binary.LittleEndian.Uint64(b)
}
