package checksum

import (
	"testing"
	"testing/quick"
)

func TestZeroValueReady(t *testing.T) {
	var f Fletcher
	if got := f.Sum(); got != 0 {
		t.Fatalf("empty Sum() = %#x, want 0", got)
	}
	if got := f.Count(); got != 0 {
		t.Fatalf("empty Count() = %d, want 0", got)
	}
}

func TestOrderSensitivity(t *testing.T) {
	a := Sum64([]uint64{1, 2, 3})
	b := Sum64([]uint64{3, 2, 1})
	if a == b {
		t.Fatalf("checksum is order-insensitive: %#x", a)
	}
}

func TestValueSensitivity(t *testing.T) {
	a := Sum64([]uint64{10, 20, 30})
	b := Sum64([]uint64{10, 21, 30})
	if a == b {
		t.Fatalf("single-word change not detected: %#x", a)
	}
}

func TestHighBitsMatter(t *testing.T) {
	a := Sum64([]uint64{0x0000000100000000})
	b := Sum64([]uint64{0x0000000000000000})
	if a == b {
		t.Fatalf("upper 32 bits ignored: %#x", a)
	}
}

func TestReset(t *testing.T) {
	var f Fletcher
	f.Add(42)
	f.Reset()
	if f.Sum() != 0 || f.Count() != 0 {
		t.Fatalf("Reset did not clear state: sum=%#x count=%d", f.Sum(), f.Count())
	}
	f.Add(42)
	var g Fletcher
	g.Add(42)
	if f.Sum() != g.Sum() {
		t.Fatalf("post-Reset stream differs from fresh stream")
	}
}

func TestAddBytesLengthSensitive(t *testing.T) {
	var a, b Fletcher
	a.AddBytes([]byte{1, 2, 3})
	b.AddBytes([]byte{1, 2, 3, 0}) // same padded words, different length
	if a.Sum() == b.Sum() {
		t.Fatalf("length not folded into checksum")
	}
}

func TestAddBytesTailPadding(t *testing.T) {
	var a, b Fletcher
	a.AddBytes([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	b.AddBytes([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	if a.Sum() != b.Sum() {
		t.Fatalf("identical buffers disagree: %#x vs %#x", a.Sum(), b.Sum())
	}
}

func TestCount(t *testing.T) {
	var f Fletcher
	for i := 0; i < 17; i++ {
		f.Add(uint64(i))
	}
	if f.Count() != 17 {
		t.Fatalf("Count() = %d, want 17", f.Count())
	}
}

// Property: identical word streams always produce identical sums, and the
// sum is deterministic across repeated computation.
func TestQuickDeterminism(t *testing.T) {
	f := func(words []uint64) bool {
		return Sum64(words) == Sum64(words)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: appending a word changes the checksum (no trivial absorbing
// state) for non-pathological streams.
func TestQuickAppendChanges(t *testing.T) {
	f := func(words []uint64, extra uint64) bool {
		base := Sum64(words)
		ext := Sum64(append(append([]uint64{}, words...), extra|1))
		// Appending any word bumps the word count path through hi, so the
		// sums must differ unless a modular coincidence occurs; tolerate
		// none for the |1 forced-nonzero case with short streams.
		if len(words) > 1024 {
			return true
		}
		return base != ext
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: swapping two adjacent distinct words changes the sum
// (order sensitivity in general position, not just the fixed example).
func TestQuickSwapDetected(t *testing.T) {
	f := func(a, b uint64, prefix []uint64) bool {
		if a == b {
			return true
		}
		s1 := Sum64(append(append([]uint64{}, prefix...), a, b))
		s2 := Sum64(append(append([]uint64{}, prefix...), b, a))
		return s1 != s2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFletcherAdd(b *testing.B) {
	var f Fletcher
	for i := 0; i < b.N; i++ {
		f.Add(uint64(i))
	}
	_ = f.Sum()
}

func BenchmarkFletcherAddBytes4K(b *testing.B) {
	buf := make([]byte, 4096)
	for i := range buf {
		buf[i] = byte(i)
	}
	b.SetBytes(int64(len(buf)))
	var f Fletcher
	for i := 0; i < b.N; i++ {
		f.AddBytes(buf)
	}
	_ = f.Sum()
}
