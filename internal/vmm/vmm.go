// Package vmm models running workloads inside a virtual machine on top of
// the replicated kernel acting as hypervisor (§V-A3).
//
// The paper's observation is that Intel's virtualisation support makes
// *normal* guest execution cheap — system calls are redirected to the
// guest kernel and extended page tables avoid most exits — but CC-RCoE's
// instruction breakpoints *force* VM exits, and locating a rep-family
// instruction at a breakpoint requires a software walk of the guest page
// table plus the extended page table. Virtualised CC-RCoE therefore pays:
//
//   - a VM exit/entry round trip for every debug exception (breakpoint
//     and, on machines without a resume flag, the mismatch single-step);
//   - a VM exit for interrupt injection at each synchronisation;
//   - a guest page-table walk whenever the leader stopped at a block-copy
//     instruction.
//
// These costs are charged by internal/core when Config.VM is set; this
// package provides the guest-construction and accounting layer around it.
package vmm

import (
	"fmt"

	"rcoe/internal/compilerpass"
	"rcoe/internal/core"
	"rcoe/internal/guest"
	"rcoe/internal/kernel"
	"rcoe/internal/machine"
)

// GuestConfig describes a virtual machine running one guest workload.
type GuestConfig struct {
	// System is the replication configuration of the hypervisor; its VM
	// flag is forced on.
	System core.Config
	// Program is the guest workload (its text stands in for guest user
	// code plus guest kernel; the paper counts branches in both).
	Program guest.Program
}

// VM is a constructed virtual machine ready to run.
type VM struct {
	sys  *core.System
	prog guest.Program
}

// Launch builds the replicated hypervisor and boots the guest in a VM
// context.
func Launch(cfg GuestConfig) (*VM, error) {
	cfg.System.VM = true
	if cfg.System.Profile.Name == "" {
		// The VM benchmarks run on x86 only: the paper's seL4 version has
		// no hypervisor mode on Arm, and neither does the arm profile.
		cfg.System.Profile = machine.X86()
	}
	b := cfg.Program.Build()
	if cfg.System.Mode == core.ModeCC && !cfg.System.Profile.PrecisePMU {
		compilerpass.Instrument(b)
	}
	prog, err := b.Assemble(kernel.TextVA)
	if err != nil {
		return nil, fmt.Errorf("vmm: assemble guest: %w", err)
	}
	if cfg.System.Mode == core.ModeCC && !cfg.System.Profile.PrecisePMU {
		cfg.System.BranchSites = compilerpass.BranchSites(prog, kernel.TextVA)
	}
	sys, err := core.NewSystem(cfg.System)
	if err != nil {
		return nil, err
	}
	if err := sys.Load(kernel.ProcessConfig{
		Prog:      prog,
		DataBytes: cfg.Program.DataBytes,
		Data:      cfg.Program.Data,
		Arg:       cfg.Program.Arg,
		Stacks:    cfg.Program.Stacks,
		Relocs:    b.Relocs(),
	}); err != nil {
		return nil, err
	}
	return &VM{sys: sys, prog: cfg.Program}, nil
}

// System exposes the underlying replicated system.
func (v *VM) System() *core.System { return v.sys }

// Run executes the guest to completion and returns the consumed cycles.
func (v *VM) Run(maxCycles uint64) (uint64, error) {
	start := v.sys.Machine().Now()
	if err := v.sys.Run(maxCycles); err != nil {
		return 0, fmt.Errorf("vmm: guest %s: %w", v.prog.Name, err)
	}
	return v.sys.Machine().Now() - start, nil
}

// VMExits returns the number of VM exits the run forced.
func (v *VM) VMExits() uint64 { return v.sys.Stats().VMExits }
