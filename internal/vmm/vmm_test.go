package vmm

import (
	"testing"

	"rcoe/internal/core"
	"rcoe/internal/guest"
	"rcoe/internal/kernel"
	"rcoe/internal/machine"
)

func TestGuestRunsToCompletion(t *testing.T) {
	vm, err := Launch(GuestConfig{
		System:  core.Config{Mode: core.ModeNone, TickCycles: 20_000},
		Program: guest.Dhrystone(500),
	})
	if err != nil {
		t.Fatal(err)
	}
	cycles, err := vm.Run(1_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if cycles == 0 {
		t.Fatalf("no cycles")
	}
}

func TestCCVMForcesExits(t *testing.T) {
	native, err := nativeCycles(t)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := Launch(GuestConfig{
		System:  core.Config{Mode: core.ModeCC, Replicas: 2, TickCycles: 20_000},
		Program: guest.Whetstone(150),
	})
	if err != nil {
		t.Fatal(err)
	}
	virt, err := vm.Run(3_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if vm.VMExits() == 0 {
		t.Fatalf("CC VM run forced no VM exits")
	}
	if virt <= native {
		t.Fatalf("virtualised CC (%d) not slower than native CC (%d)", virt, native)
	}
	t.Logf("native CC=%d, virtualised CC=%d (%.2fx), exits=%d",
		native, virt, float64(virt)/float64(native), vm.VMExits())
}

func nativeCycles(t *testing.T) (uint64, error) {
	t.Helper()
	sys, err := core.NewSystem(core.Config{
		Mode: core.ModeCC, Replicas: 2, TickCycles: 20_000,
	})
	if err != nil {
		return 0, err
	}
	p := guest.Whetstone(150)
	prog, err := p.Build().Assemble(kernel.TextVA)
	if err != nil {
		return 0, err
	}
	if err := sys.Load(kernel.ProcessConfig{
		Prog: prog, DataBytes: p.DataBytes, Stacks: p.Stacks,
	}); err != nil {
		return 0, err
	}
	if err := sys.Run(3_000_000_000); err != nil {
		return 0, err
	}
	return sys.Machine().Now(), nil
}

func TestVMRequiresHypervisorSupport(t *testing.T) {
	_, err := Launch(GuestConfig{
		System:  core.Config{Mode: core.ModeCC, Replicas: 2, Profile: machine.Arm()},
		Program: guest.Dhrystone(100),
	})
	if err == nil {
		t.Fatalf("arm profile has no hypervisor mode; launch should fail")
	}
}
