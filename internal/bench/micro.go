package bench

import (
	"fmt"

	"rcoe/internal/checksum"
	"rcoe/internal/core"
	"rcoe/internal/guest"
	"rcoe/internal/kernel"
	"rcoe/internal/machine"
	"rcoe/internal/stats"
	"rcoe/internal/vmm"
)

// Table1 demonstrates the voting algorithm on the two examples of the
// paper's Table I: one divergent checksum (consensus on the faulter) and
// all-different checksums (no consensus).
func Table1(Scale) (*stats.Table, error) {
	t := stats.NewTable("Table I: fault-vote examples",
		"case", "checksums", "consensus", "faulty")
	type tc struct {
		name string
		sums [3]uint64
	}
	for _, c := range []tc{
		{"one bad checksum", [3]uint64{0xdeadbeef, 0xdeadbeef, 0x0badf00d}},
		{"all different", [3]uint64{0x1111, 0x2222, 0x3333}},
	} {
		faulty, ok := core.VoteDemo(c.sums[:])
		f := "-"
		if ok {
			f = fmt.Sprintf("R%d", faulty)
		}
		t.AddRow(c.name, fmt.Sprintf("%x %x %x", c.sums[0], c.sums[1], c.sums[2]),
			fmt.Sprintf("%v", ok), f)
	}
	return t, nil
}

// DataRace reproduces §V-A1: racy multithreaded counters diverge across
// LC replicas with high probability and never under CC. Every
// (model, run) pair is an independent simulation and fans out on the
// engine.
func DataRace(s Scale) (*stats.Table, error) {
	runs := 5
	threads, iters, idle := 16, 80, 40
	if s == Full {
		runs = 20
		threads = 32
	}
	modes := []core.Mode{core.ModeLC, core.ModeCC}
	same, err := fanOut("datarace", len(modes)*runs, func(i int) (bool, error) {
		tick := 1_900 + uint64(i%runs)*311
		return dataRaceRun(modes[i/runs], threads, int64(iters), int64(idle), tick)
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("§V-A1: data-race tolerance",
		"model", "runs", "replica divergences")
	for mi, mode := range modes {
		diverged := 0
		for r := 0; r < runs; r++ {
			if !same[mi*runs+r] {
				diverged++
			}
		}
		t.AddRow(mode.String(), fmt.Sprintf("%d", runs), fmt.Sprintf("%d", diverged))
	}
	return t, nil
}

func dataRaceRun(mode core.Mode, threads int, iters, idle int64, tick uint64) (bool, error) {
	p := guest.DataRace(threads, iters, idle)
	sys, err := buildSystem(core.Config{Mode: mode, Replicas: 2, TickCycles: tick}, p)
	if err != nil {
		return false, err
	}
	if err := sys.Run(2_000_000_000); err != nil {
		return false, err
	}
	c0, err := sys.Replica(0).K.CopyFromUser(kernel.DataVA, 8)
	if err != nil {
		return false, err
	}
	c1, err := sys.Replica(1).K.CopyFromUser(kernel.DataVA, 8)
	if err != nil {
		return false, err
	}
	return string(c0) == string(c1), nil
}

// buildSystem assembles p for cfg (instrumenting when needed) and loads
// it, returning the ready system.
func buildSystem(cfg core.Config, p guest.Program) (*core.System, error) {
	prog, relocs, sites, err := assembleFor(&cfg, p)
	if err != nil {
		return nil, err
	}
	cfg.BranchSites = sites
	if cfg.PartitionBytes == 0 {
		cfg.PartitionBytes = alignPow2(p.DataBytes + 2<<20)
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	if err := sys.Load(kernel.ProcessConfig{
		Prog: prog, DataBytes: p.DataBytes, Data: p.Data, Arg: p.Arg, Stacks: p.Stacks,
		Relocs: relocs,
	}); err != nil {
		return nil, err
	}
	return sys, nil
}

// Table2 measures native Dhrystone and Whetstone across Base/LC-D/LC-T/
// CC-D/CC-T on both machine profiles. Every table cell is an independent
// sample and fans out on the engine; rows assemble in case order so the
// Base row still normalises the others.
func Table2(s Scale) (*stats.Table, error) {
	loops := int64(1500)
	reps := 3
	if s == Full {
		loops = 6000
		reps = 10
	}
	progs := []guest.Program{guest.Dhrystone(loops), guest.Whetstone(loops / 5)}
	profiles := []machine.Profile{machine.Arm(), machine.X86()}
	cases := stockCases()
	perCase := len(progs) * len(profiles)
	samples, err := fanOut("table2", len(cases)*perCase, func(i int) (*stats.Sample, error) {
		rc := cases[i/perCase]
		cfg := core.Config{
			Mode: rc.mode, Replicas: rc.replicas,
			Profile:    profiles[i%len(profiles)],
			TickCycles: 20_000,
		}
		return repeatRuns(cfg, progs[(i/len(profiles))%len(progs)], reps, 3_000_000_000)
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Table II: native benchmarks (kilocycles, mean (sd); factor vs base)",
		"config", "dhrystone/arm", "dhrystone/x86", "whetstone/arm", "whetstone/x86")
	base := make(map[string]float64)
	for ci, rc := range cases {
		row := []string{rc.label}
		for pi, p := range progs {
			for fi, prof := range profiles {
				sample := samples[ci*perCase+pi*len(profiles)+fi]
				key := p.Name + "/" + prof.Name
				mean := sample.Mean()
				if rc.mode == core.ModeNone {
					base[key] = mean
				}
				cell := stats.PaperFormat(mean/1000, sample.StdDev()/1000, 0)
				if rc.mode != core.ModeNone {
					cell += " " + factor(mean, base[key])
				}
				row = append(row, cell)
			}
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Table3 measures the virtualised Dhrystone/Whetstone (x86 only; the
// paper's seL4 had no Arm hypervisor mode): CC breakpoints force VM
// exits, so overheads rise sharply versus native CC. Cells and their
// repetitions fan out on the engine.
func Table3(s Scale) (*stats.Table, error) {
	loops := int64(1200)
	reps := 3
	if s == Full {
		loops = 5000
		reps = 10
	}
	progs := []guest.Program{guest.Dhrystone(loops), guest.Whetstone(loops / 5)}
	cases := []replCase{
		{"Base(VM)", core.ModeNone, 1},
		{"CC-D(VM)", core.ModeCC, 2},
		{"CC-T(VM)", core.ModeCC, 3},
	}
	type vmCell struct {
		sample *stats.Sample
		exits  uint64
	}
	type vmRun struct {
		cycles, exits uint64
	}
	cells, err := fanOut("table3", len(cases)*len(progs), func(i int) (vmCell, error) {
		rc := cases[i/len(progs)]
		p := progs[i%len(progs)]
		runs, err := fanOut("table3/"+rc.label+"/"+p.Name, reps, func(r int) (vmRun, error) {
			vm, err := vmm.Launch(vmm.GuestConfig{
				System: core.Config{
					Mode: rc.mode, Replicas: rc.replicas,
					TickCycles: 30_000 + uint64(r)*137,
				},
				Program: p,
			})
			if err != nil {
				return vmRun{}, err
			}
			cycles, err := vm.Run(3_000_000_000)
			if err != nil {
				return vmRun{}, err
			}
			return vmRun{cycles: cycles, exits: vm.VMExits()}, nil
		})
		if err != nil {
			return vmCell{}, err
		}
		var cell vmCell
		cell.sample = &stats.Sample{}
		for _, r := range runs {
			cell.sample.Add(float64(r.cycles))
			cell.exits += r.exits
		}
		return cell, nil
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Table III: virtualised benchmarks on x86 (kilocycles; factor vs base)",
		"config", "dhrystone", "whetstone", "vm-exits")
	base := make(map[string]float64)
	for ci, rc := range cases {
		row := []string{rc.label}
		var exits uint64
		for pi, p := range progs {
			cell := cells[ci*len(progs)+pi]
			exits += cell.exits
			mean := cell.sample.Mean()
			if rc.mode == core.ModeNone {
				base[p.Name] = mean
			}
			c := stats.PaperFormat(mean/1000, cell.sample.StdDev()/1000, 0)
			if rc.mode != core.ModeNone {
				c += " " + factor(mean, base[p.Name])
			}
			row = append(row, c)
		}
		row = append(row, fmt.Sprintf("%d", exits))
		t.AddRow(row...)
	}
	return t, nil
}

// Table4 runs the SPLASH-2-style kernels in a VM under CC-RCoE DMR and
// reports per-kernel overhead factors with the geometric mean, plus the
// NPROC=1 mean. Kernels fan out on the engine; each job runs its own
// base/CC pair.
func Table4(s Scale) (*stats.Table, error) {
	suite := guest.SplashSuite()
	if s == Quick {
		suite = []guest.SplashKernel{suite[1], suite[4], suite[8], suite[10]} // CHOLESKY, LU-C, RADIOSITY, RAYTRACE
	}
	single := suite
	if len(single) > 3 {
		single = single[:3]
	}
	type splashPair struct {
		baseC, ccC uint64
	}
	pairFor := func(k guest.SplashKernel, nproc int) (splashPair, error) {
		baseC, err := runSplashVM(k, core.ModeNone, 1, nproc)
		if err != nil {
			return splashPair{}, err
		}
		ccC, err := runSplashVM(k, core.ModeCC, 2, nproc)
		if err != nil {
			return splashPair{}, err
		}
		return splashPair{baseC: baseC, ccC: ccC}, nil
	}
	// The NPROC=2 suite and the NPROC=1 comparison subset are one job
	// list: kernels first, then the single-core reruns.
	pairs, err := fanOut("table4", len(suite)+len(single), func(i int) (splashPair, error) {
		if i < len(suite) {
			return pairFor(suite[i], 2)
		}
		return pairFor(single[i-len(suite)], 1)
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Table IV: SPLASH-2 kernels in a VM (CC-D vs base)",
		"kernel", "base kc", "CC-D kc", "factor", "paper")
	var factors []float64
	for i, k := range suite {
		p := pairs[i]
		f := float64(p.ccC) / float64(p.baseC)
		factors = append(factors, f)
		t.AddRow(k.Name, fmt.Sprintf("%d", p.baseC/1000), fmt.Sprintf("%d", p.ccC/1000),
			fmt.Sprintf("%.2f", f), fmt.Sprintf("%.2f", k.PaperFactor))
	}
	t.AddRow("geomean", "", "", fmt.Sprintf("%.2f", stats.GeoMean(factors)), "2.30")
	// NPROC=1 comparison (the paper reports the mean dropping to ~2.0).
	var f1 []float64
	for i := range single {
		p := pairs[len(suite)+i]
		f1 = append(f1, float64(p.ccC)/float64(p.baseC))
	}
	t.AddRow("geomean NPROC=1", "", "", fmt.Sprintf("%.2f", stats.GeoMean(f1)), "2.02")
	return t, nil
}

func runSplashVM(k guest.SplashKernel, mode core.Mode, replicas, nproc int) (uint64, error) {
	vm, err := vmm.Launch(vmm.GuestConfig{
		System:  core.Config{Mode: mode, Replicas: replicas, TickCycles: 30_000},
		Program: k.Program(nproc),
	})
	if err != nil {
		return 0, err
	}
	return vm.Run(6_000_000_000)
}

// Table5 measures memcpy memory bandwidth under replica contention on
// both profiles: on x86 one core saturates the bus, so DMR/TMR divide it;
// on Arm a single core cannot, leaving headroom. Cells fan out on the
// engine.
func Table5(s Scale) (*stats.Table, error) {
	bufBytes := uint64(2 << 20) // 4x the x86 per-core cache model
	reps := int64(2)
	if s == Full {
		bufBytes = 8 << 20
		reps = 4
	}
	cases := stockCases()
	profiles := []machine.Profile{machine.X86(), machine.Arm()}
	progFor := func(prof machine.Profile) guest.Program {
		// An x86 memcpy is a rep-movs block instruction; an Armv7
		// memcpy compiles to a copy loop.
		if prof.Name == "arm" {
			return guest.MembenchLoop(bufBytes, reps)
		}
		return guest.Membench(bufBytes, reps)
	}
	cycles, err := fanOut("table5", len(cases)*len(profiles), func(i int) (uint64, error) {
		rc := cases[i/len(profiles)]
		prof := profiles[i%len(profiles)]
		p := progFor(prof)
		cfg := core.Config{
			Mode: rc.mode, Replicas: rc.replicas, Profile: prof,
			TickCycles:     100_000,
			PartitionBytes: alignPow2(p.DataBytes + 2<<20),
		}
		return runProgram(cfg, p, 30_000_000_000)
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Table V: memcpy bandwidth (bytes/kilocycle per replica; % of base)",
		"config", "x86", "x86 %", "arm", "arm %")
	base := map[string]float64{}
	for ci, rc := range cases {
		row := []string{rc.label}
		var cells [4]string
		for pi, prof := range profiles {
			bw := float64(bufBytes) * float64(reps) / (float64(cycles[ci*len(profiles)+pi]) / 1000)
			if rc.mode == core.ModeNone {
				base[prof.Name] = bw
			}
			cells[pi*2] = fmt.Sprintf("%.1f", bw)
			cells[pi*2+1] = fmt.Sprintf("%.0f%%", 100*bw/base[prof.Name])
		}
		row = append(row, cells[:]...)
		t.AddRow(row...)
	}
	return t, nil
}

// AblateFletcher demonstrates why the signature checksum must be order
// sensitive: a pair of swapped state updates — two replicas applying the
// same updates in different orders after divergence — fools an additive
// checksum but not the Fletcher checksum (§III-C).
func AblateFletcher(Scale) (*stats.Table, error) {
	t := stats.NewTable("Ablation: Fletcher vs additive checksum on swapped updates",
		"update stream", "additive", "fletcher")
	streams := [][]uint64{
		{0x10, 0x20, 0x30},
		{0x30, 0x20, 0x10}, // same updates, different order
		{0x10, 0x20, 0x31}, // value change
	}
	for _, st := range streams {
		var add uint64
		for _, w := range st {
			add += w
		}
		t.AddRow(fmt.Sprintf("%x", st), fmt.Sprintf("%#x", add),
			fmt.Sprintf("%#x", checksum.Sum64(st)))
	}
	return t, nil
}
