package bench

import (
	"fmt"

	"rcoe/internal/checksum"
	"rcoe/internal/core"
	"rcoe/internal/guest"
	"rcoe/internal/kernel"
	"rcoe/internal/machine"
	"rcoe/internal/stats"
	"rcoe/internal/vmm"
)

// Table1 demonstrates the voting algorithm on the two examples of the
// paper's Table I: one divergent checksum (consensus on the faulter) and
// all-different checksums (no consensus).
func Table1(Scale) (*stats.Table, error) {
	t := stats.NewTable("Table I: fault-vote examples",
		"case", "checksums", "consensus", "faulty")
	type tc struct {
		name string
		sums [3]uint64
	}
	for _, c := range []tc{
		{"one bad checksum", [3]uint64{0xdeadbeef, 0xdeadbeef, 0x0badf00d}},
		{"all different", [3]uint64{0x1111, 0x2222, 0x3333}},
	} {
		faulty, ok := core.VoteDemo(c.sums[:])
		f := "-"
		if ok {
			f = fmt.Sprintf("R%d", faulty)
		}
		t.AddRow(c.name, fmt.Sprintf("%x %x %x", c.sums[0], c.sums[1], c.sums[2]),
			fmt.Sprintf("%v", ok), f)
	}
	return t, nil
}

// DataRace reproduces §V-A1: racy multithreaded counters diverge across
// LC replicas with high probability and never under CC.
func DataRace(s Scale) (*stats.Table, error) {
	runs := 5
	threads, iters, idle := 16, 80, 40
	if s == Full {
		runs = 20
		threads = 32
	}
	t := stats.NewTable("§V-A1: data-race tolerance",
		"model", "runs", "replica divergences")
	for _, mode := range []core.Mode{core.ModeLC, core.ModeCC} {
		diverged := 0
		for i := 0; i < runs; i++ {
			tick := 1_900 + uint64(i)*311
			same, err := dataRaceRun(mode, threads, int64(iters), int64(idle), tick)
			if err != nil {
				return nil, err
			}
			if !same {
				diverged++
			}
		}
		t.AddRow(mode.String(), fmt.Sprintf("%d", runs), fmt.Sprintf("%d", diverged))
	}
	return t, nil
}

func dataRaceRun(mode core.Mode, threads int, iters, idle int64, tick uint64) (bool, error) {
	p := guest.DataRace(threads, iters, idle)
	sys, err := buildSystem(core.Config{Mode: mode, Replicas: 2, TickCycles: tick}, p)
	if err != nil {
		return false, err
	}
	if err := sys.Run(2_000_000_000); err != nil {
		return false, err
	}
	c0, err := sys.Replica(0).K.CopyFromUser(kernel.DataVA, 8)
	if err != nil {
		return false, err
	}
	c1, err := sys.Replica(1).K.CopyFromUser(kernel.DataVA, 8)
	if err != nil {
		return false, err
	}
	return string(c0) == string(c1), nil
}

// buildSystem assembles p for cfg (instrumenting when needed) and loads
// it, returning the ready system.
func buildSystem(cfg core.Config, p guest.Program) (*core.System, error) {
	prog, sites, err := assembleFor(&cfg, p)
	if err != nil {
		return nil, err
	}
	cfg.BranchSites = sites
	if cfg.PartitionBytes == 0 {
		cfg.PartitionBytes = alignPow2(p.DataBytes + 2<<20)
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	if err := sys.Load(kernel.ProcessConfig{
		Prog: prog, DataBytes: p.DataBytes, Data: p.Data, Arg: p.Arg, Stacks: p.Stacks,
	}); err != nil {
		return nil, err
	}
	return sys, nil
}

// Table2 measures native Dhrystone and Whetstone across Base/LC-D/LC-T/
// CC-D/CC-T on both machine profiles.
func Table2(s Scale) (*stats.Table, error) {
	loops := int64(1500)
	reps := 3
	if s == Full {
		loops = 6000
		reps = 10
	}
	progs := []guest.Program{guest.Dhrystone(loops), guest.Whetstone(loops / 5)}
	profiles := []machine.Profile{machine.Arm(), machine.X86()}
	t := stats.NewTable("Table II: native benchmarks (kilocycles, mean (sd); factor vs base)",
		"config", "dhrystone/arm", "dhrystone/x86", "whetstone/arm", "whetstone/x86")
	base := make(map[string]float64)
	for _, rc := range stockCases() {
		row := []string{rc.label}
		for _, p := range progs {
			for _, prof := range profiles {
				cfg := core.Config{
					Mode: rc.mode, Replicas: rc.replicas, Profile: prof,
					TickCycles: 20_000,
				}
				sample, err := repeatRuns(cfg, p, reps, 3_000_000_000)
				if err != nil {
					return nil, err
				}
				key := p.Name + "/" + prof.Name
				mean := sample.Mean()
				if rc.mode == core.ModeNone {
					base[key] = mean
				}
				cell := fmt.Sprintf("%s", stats.PaperFormat(mean/1000, sample.StdDev()/1000, 0))
				if rc.mode != core.ModeNone {
					cell += " " + factor(mean, base[key])
				}
				row = append(row, cell)
			}
		}
		// Reorder: the loop above appends dhry/arm, dhry/x86, whet/arm,
		// whet/x86 which matches the header.
		t.AddRow(row...)
	}
	return t, nil
}

// Table3 measures the virtualised Dhrystone/Whetstone (x86 only; the
// paper's seL4 had no Arm hypervisor mode): CC breakpoints force VM
// exits, so overheads rise sharply versus native CC.
func Table3(s Scale) (*stats.Table, error) {
	loops := int64(1200)
	reps := 3
	if s == Full {
		loops = 5000
		reps = 10
	}
	progs := []guest.Program{guest.Dhrystone(loops), guest.Whetstone(loops / 5)}
	cases := []replCase{
		{"Base(VM)", core.ModeNone, 1},
		{"CC-D(VM)", core.ModeCC, 2},
		{"CC-T(VM)", core.ModeCC, 3},
	}
	t := stats.NewTable("Table III: virtualised benchmarks on x86 (kilocycles; factor vs base)",
		"config", "dhrystone", "whetstone", "vm-exits")
	base := make(map[string]float64)
	for _, rc := range cases {
		row := []string{rc.label}
		var exits uint64
		for _, p := range progs {
			var sample stats.Sample
			for i := 0; i < reps; i++ {
				vm, err := vmm.Launch(vmm.GuestConfig{
					System: core.Config{
						Mode: rc.mode, Replicas: rc.replicas,
						TickCycles: 30_000 + uint64(i)*137,
					},
					Program: p,
				})
				if err != nil {
					return nil, err
				}
				cycles, err := vm.Run(3_000_000_000)
				if err != nil {
					return nil, err
				}
				sample.Add(float64(cycles))
				exits += vm.VMExits()
			}
			mean := sample.Mean()
			if rc.mode == core.ModeNone {
				base[p.Name] = mean
			}
			cell := stats.PaperFormat(mean/1000, sample.StdDev()/1000, 0)
			if rc.mode != core.ModeNone {
				cell += " " + factor(mean, base[p.Name])
			}
			row = append(row, cell)
		}
		row = append(row, fmt.Sprintf("%d", exits))
		t.AddRow(row...)
	}
	return t, nil
}

// Table4 runs the SPLASH-2-style kernels in a VM under CC-RCoE DMR and
// reports per-kernel overhead factors with the geometric mean, plus the
// NPROC=1 mean.
func Table4(s Scale) (*stats.Table, error) {
	suite := guest.SplashSuite()
	if s == Quick {
		suite = []guest.SplashKernel{suite[1], suite[4], suite[8], suite[10]} // CHOLESKY, LU-C, RADIOSITY, RAYTRACE
	}
	t := stats.NewTable("Table IV: SPLASH-2 kernels in a VM (CC-D vs base)",
		"kernel", "base kc", "CC-D kc", "factor", "paper")
	var factors []float64
	for _, k := range suite {
		baseC, err := runSplashVM(k, core.ModeNone, 1, 2)
		if err != nil {
			return nil, err
		}
		ccC, err := runSplashVM(k, core.ModeCC, 2, 2)
		if err != nil {
			return nil, err
		}
		f := float64(ccC) / float64(baseC)
		factors = append(factors, f)
		t.AddRow(k.Name, fmt.Sprintf("%d", baseC/1000), fmt.Sprintf("%d", ccC/1000),
			fmt.Sprintf("%.2f", f), fmt.Sprintf("%.2f", k.PaperFactor))
	}
	t.AddRow("geomean", "", "", fmt.Sprintf("%.2f", stats.GeoMean(factors)), "2.30")
	// NPROC=1 comparison (the paper reports the mean dropping to ~2.0).
	var f1 []float64
	single := suite
	if len(single) > 3 {
		single = single[:3]
	}
	for _, k := range single {
		baseC, err := runSplashVM(k, core.ModeNone, 1, 1)
		if err != nil {
			return nil, err
		}
		ccC, err := runSplashVM(k, core.ModeCC, 2, 1)
		if err != nil {
			return nil, err
		}
		f1 = append(f1, float64(ccC)/float64(baseC))
	}
	t.AddRow("geomean NPROC=1", "", "", fmt.Sprintf("%.2f", stats.GeoMean(f1)), "2.02")
	return t, nil
}

func runSplashVM(k guest.SplashKernel, mode core.Mode, replicas, nproc int) (uint64, error) {
	vm, err := vmm.Launch(vmm.GuestConfig{
		System:  core.Config{Mode: mode, Replicas: replicas, TickCycles: 30_000},
		Program: k.Program(nproc),
	})
	if err != nil {
		return 0, err
	}
	return vm.Run(6_000_000_000)
}

// Table5 measures memcpy memory bandwidth under replica contention on
// both profiles: on x86 one core saturates the bus, so DMR/TMR divide it;
// on Arm a single core cannot, leaving headroom.
func Table5(s Scale) (*stats.Table, error) {
	bufBytes := uint64(2 << 20) // 4x the x86 per-core cache model
	reps := int64(2)
	if s == Full {
		bufBytes = 8 << 20
		reps = 4
	}
	t := stats.NewTable("Table V: memcpy bandwidth (bytes/kilocycle per replica; % of base)",
		"config", "x86", "x86 %", "arm", "arm %")
	base := map[string]float64{}
	for _, rc := range stockCases() {
		row := []string{rc.label}
		var cells [4]string
		for pi, prof := range []machine.Profile{machine.X86(), machine.Arm()} {
			// An x86 memcpy is a rep-movs block instruction; an Armv7
			// memcpy compiles to a copy loop.
			p := guest.Membench(bufBytes, reps)
			if prof.Name == "arm" {
				p = guest.MembenchLoop(bufBytes, reps)
			}
			cfg := core.Config{
				Mode: rc.mode, Replicas: rc.replicas, Profile: prof,
				TickCycles:     100_000,
				PartitionBytes: alignPow2(p.DataBytes + 2<<20),
			}
			cycles, err := runProgram(cfg, p, 30_000_000_000)
			if err != nil {
				return nil, err
			}
			bw := float64(bufBytes) * float64(reps) / (float64(cycles) / 1000)
			if rc.mode == core.ModeNone {
				base[prof.Name] = bw
			}
			cells[pi*2] = fmt.Sprintf("%.1f", bw)
			cells[pi*2+1] = fmt.Sprintf("%.0f%%", 100*bw/base[prof.Name])
		}
		row = append(row, cells[:]...)
		t.AddRow(row...)
	}
	return t, nil
}

// AblateFletcher demonstrates why the signature checksum must be order
// sensitive: a pair of swapped state updates — two replicas applying the
// same updates in different orders after divergence — fools an additive
// checksum but not the Fletcher checksum (§III-C).
func AblateFletcher(Scale) (*stats.Table, error) {
	t := stats.NewTable("Ablation: Fletcher vs additive checksum on swapped updates",
		"update stream", "additive", "fletcher")
	streams := [][]uint64{
		{0x10, 0x20, 0x30},
		{0x30, 0x20, 0x10}, // same updates, different order
		{0x10, 0x20, 0x31}, // value change
	}
	for _, st := range streams {
		var add uint64
		for _, w := range st {
			add += w
		}
		t.AddRow(fmt.Sprintf("%x", st), fmt.Sprintf("%#x", add),
			fmt.Sprintf("%#x", checksum.Sum64(st)))
	}
	return t, nil
}
