package bench

import (
	"fmt"

	"rcoe/internal/core"
	"rcoe/internal/guest"
	"rcoe/internal/harness"
	"rcoe/internal/machine"
	"rcoe/internal/stats"
	"rcoe/internal/workload"
)

// Table6 documents the YCSB workload mixes the system benchmark uses
// (the paper's workload-definition table).
func Table6(Scale) (*stats.Table, error) {
	t := stats.NewTable("Table VI: YCSB workload mixes",
		"workload", "operations", "key distribution")
	t.AddRow("A", "50% read / 50% update", "zipfian")
	t.AddRow("B", "95% read / 5% update", "zipfian")
	t.AddRow("C", "100% read", "zipfian")
	t.AddRow("D", "95% read / 5% insert", "latest")
	t.AddRow("E", "95% scan / 5% insert", "zipfian + uniform(1,50)")
	t.AddRow("F", "50% read / 50% read-modify-write", "zipfian")
	return t, nil
}

// fig3Case is one bar of Fig 3: a replication mode/degree with a
// signature configuration.
type fig3Case struct {
	label string
	mode  core.Mode
	reps  int
	sig   core.SigConfig
}

func fig3Cases() []fig3Case {
	return []fig3Case{
		{"Base", core.ModeNone, 1, core.SigArgs},
		{"LC-D-N", core.ModeLC, 2, core.SigIO},
		{"LC-D-A", core.ModeLC, 2, core.SigArgs},
		{"LC-D-S", core.ModeLC, 2, core.SigSync},
		{"LC-T-N", core.ModeLC, 3, core.SigIO},
		{"LC-T-A", core.ModeLC, 3, core.SigArgs},
		{"LC-T-S", core.ModeLC, 3, core.SigSync},
		{"CC-D-N", core.ModeCC, 2, core.SigIO},
		{"CC-D-A", core.ModeCC, 2, core.SigArgs},
		{"CC-D-S", core.ModeCC, 2, core.SigSync},
		{"CC-T-N", core.ModeCC, 3, core.SigIO},
		{"CC-T-A", core.ModeCC, 3, core.SigArgs},
		{"CC-T-S", core.ModeCC, 3, core.SigSync},
	}
}

// Fig3 measures KV-server throughput under the YCSB workloads for every
// replication/signature configuration, relative to the unreplicated
// baseline (the paper's Fig. 3 bar charts; YCSB-F is omitted there for
// readability and included here for completeness). Every bar is one
// independent KV run and fans out on the engine; rows normalise against
// the Base bar after all results land.
func Fig3(s Scale) (*stats.Table, error) {
	kinds := []workload.Kind{workload.YCSBA, workload.YCSBB, workload.YCSBC,
		workload.YCSBD, workload.YCSBE}
	profiles := []machine.Profile{machine.X86()}
	records, ops := uint64(48), uint64(120)
	if s == Full {
		profiles = append(profiles, machine.Arm())
		records, ops = 128, 400
		kinds = append(kinds, workload.YCSBF)
	}
	cases := fig3Cases()
	perProfile := len(cases) * len(kinds)
	tps, err := fanOut("fig3", len(profiles)*perProfile, func(i int) (float64, error) {
		prof := profiles[i/perProfile]
		c := cases[(i/len(kinds))%len(cases)]
		kind := kinds[i%len(kinds)]
		res, err := harness.RunKV(harness.KVOptions{
			System: core.Config{
				Mode: c.mode, Replicas: c.reps, Sig: c.sig,
				Profile: prof, TickCycles: 60_000,
			},
			Workload:    kind,
			Records:     records,
			Operations:  ops,
			TraceOutput: true,
			Seed:        11,
		})
		if err != nil {
			return 0, fmt.Errorf("fig3 %s/%s/%v: %w", prof.Name, c.label, kind, err)
		}
		return res.Throughput, nil
	})
	if err != nil {
		return nil, err
	}
	var headers []string
	headers = append(headers, "config")
	for _, k := range kinds {
		headers = append(headers, "YCSB-"+k.String())
	}
	t := stats.NewTable("Fig 3: KV throughput (ops/Mcycle; % of base)", headers...)
	for fi, prof := range profiles {
		t.AddRow("-- " + prof.Name + " --")
		base := map[workload.Kind]float64{}
		for ci, c := range cases {
			row := []string{c.label}
			for ki, kind := range kinds {
				tp := tps[fi*perProfile+ci*len(kinds)+ki]
				if c.mode == core.ModeNone {
					base[kind] = tp
					row = append(row, fmt.Sprintf("%.1f", tp))
				} else {
					row = append(row, fmt.Sprintf("%.1f (%.0f%%)", tp, 100*tp/base[kind]))
				}
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// AblateSig isolates the signature-configuration trade-off on one
// workload: cost rises from N to A to S while detection latency falls
// (approximated by votes per operation).
func AblateSig(s Scale) (*stats.Table, error) {
	ops := uint64(150)
	if s == Full {
		ops = 500
	}
	sigs := []core.SigConfig{core.SigIO, core.SigArgs, core.SigSync}
	results, err := fanOut("ablate-sig", len(sigs), func(i int) (harness.KVResult, error) {
		return harness.RunKV(harness.KVOptions{
			System: core.Config{
				Mode: core.ModeLC, Replicas: 2, Sig: sigs[i], TickCycles: 60_000,
			},
			Workload: workload.YCSBA, Records: 48, Operations: ops,
			TraceOutput: true, Seed: 11,
		})
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Ablation: signature configuration (LC-D, YCSB-A)",
		"config", "ops/Mcycle", "votes", "votes/op")
	for i, sig := range sigs {
		res := results[i]
		votes := res.Stats.Votes
		t.AddRow(sig.String(), fmt.Sprintf("%.1f", res.Throughput),
			fmt.Sprintf("%d", votes), fmt.Sprintf("%.2f", float64(votes)/float64(res.Ops)))
	}
	return t, nil
}

// AblateTick sweeps the preemption-timer period: faster ticks bound
// detection latency more tightly but synchronise more often.
func AblateTick(s Scale) (*stats.Table, error) {
	ticks := []uint64{15_000, 30_000, 60_000, 120_000, 240_000}
	ops := uint64(120)
	if s == Full {
		ops = 400
	}
	results, err := fanOut("ablate-tick", len(ticks), func(i int) (harness.KVResult, error) {
		return harness.RunKV(harness.KVOptions{
			System: core.Config{
				Mode: core.ModeLC, Replicas: 2, TickCycles: ticks[i],
			},
			Workload: workload.YCSBA, Records: 48, Operations: ops,
			TraceOutput: true, Seed: 11,
		})
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Ablation: tick period vs overhead (LC-D, YCSB-A)",
		"tick cycles", "ops/Mcycle", "syncs")
	for i, tick := range ticks {
		t.AddRow(fmt.Sprintf("%d", tick), fmt.Sprintf("%.1f", results[i].Throughput),
			fmt.Sprintf("%d", results[i].Stats.Syncs))
	}
	return t, nil
}

// AblateCounting compares hardware-PMU branch counting against the
// compiler-assisted reserved-register scheme on the same (x86) machine,
// isolating the instrumentation cost (§III-D). The four
// workload × scheme samples fan out on the engine.
func AblateCounting(s Scale) (*stats.Table, error) {
	loops := int64(1500)
	reps := 3
	if s == Full {
		loops = 6000
		reps = 8
	}
	workloads := []string{"dhrystone", "whetstone"}
	samples, err := fanOut("ablate-count", len(workloads)*2, func(i int) (*stats.Sample, error) {
		cfg := core.Config{
			Mode: core.ModeCC, Replicas: 2, TickCycles: 30_000,
			ForceCompilerCounting: i%2 == 1,
		}
		if workloads[i/2] == "dhrystone" {
			return repeatRuns(cfg, guest.Dhrystone(loops), reps, 3_000_000_000)
		}
		return repeatRuns(cfg, guest.Whetstone(loops/5), reps, 3_000_000_000)
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Ablation: branch counting scheme (CC-D on x86, kilocycles)",
		"workload", "hardware PMU", "compiler-assisted", "penalty")
	for wi, w := range workloads {
		hw, sw := samples[wi*2], samples[wi*2+1]
		t.AddRow(w, fmt.Sprintf("%.0f", hw.Mean()/1000), fmt.Sprintf("%.0f", sw.Mean()/1000),
			factor(sw.Mean(), hw.Mean()))
	}
	return t, nil
}
