package bench

import (
	"fmt"

	"rcoe/internal/core"
	"rcoe/internal/guest"
	"rcoe/internal/harness"
	"rcoe/internal/machine"
	"rcoe/internal/stats"
	"rcoe/internal/workload"
)

// Table6 documents the YCSB workload mixes the system benchmark uses
// (the paper's workload-definition table).
func Table6(Scale) (*stats.Table, error) {
	t := stats.NewTable("Table VI: YCSB workload mixes",
		"workload", "operations", "key distribution")
	t.AddRow("A", "50% read / 50% update", "zipfian")
	t.AddRow("B", "95% read / 5% update", "zipfian")
	t.AddRow("C", "100% read", "zipfian")
	t.AddRow("D", "95% read / 5% insert", "latest")
	t.AddRow("E", "95% scan / 5% insert", "zipfian + uniform(1,50)")
	t.AddRow("F", "50% read / 50% read-modify-write", "zipfian")
	return t, nil
}

// fig3Case is one bar of Fig 3: a replication mode/degree with a
// signature configuration.
type fig3Case struct {
	label string
	mode  core.Mode
	reps  int
	sig   core.SigConfig
}

func fig3Cases() []fig3Case {
	return []fig3Case{
		{"Base", core.ModeNone, 1, core.SigArgs},
		{"LC-D-N", core.ModeLC, 2, core.SigIO},
		{"LC-D-A", core.ModeLC, 2, core.SigArgs},
		{"LC-D-S", core.ModeLC, 2, core.SigSync},
		{"LC-T-N", core.ModeLC, 3, core.SigIO},
		{"LC-T-A", core.ModeLC, 3, core.SigArgs},
		{"LC-T-S", core.ModeLC, 3, core.SigSync},
		{"CC-D-N", core.ModeCC, 2, core.SigIO},
		{"CC-D-A", core.ModeCC, 2, core.SigArgs},
		{"CC-D-S", core.ModeCC, 2, core.SigSync},
		{"CC-T-N", core.ModeCC, 3, core.SigIO},
		{"CC-T-A", core.ModeCC, 3, core.SigArgs},
		{"CC-T-S", core.ModeCC, 3, core.SigSync},
	}
}

// Fig3 measures KV-server throughput under the YCSB workloads for every
// replication/signature configuration, relative to the unreplicated
// baseline (the paper's Fig. 3 bar charts; YCSB-F is omitted there for
// readability and included here for completeness).
func Fig3(s Scale) (*stats.Table, error) {
	kinds := []workload.Kind{workload.YCSBA, workload.YCSBB, workload.YCSBC,
		workload.YCSBD, workload.YCSBE}
	profiles := []machine.Profile{machine.X86()}
	records, ops := uint64(48), uint64(120)
	if s == Full {
		profiles = append(profiles, machine.Arm())
		records, ops = 128, 400
		kinds = append(kinds, workload.YCSBF)
	}
	var headers []string
	headers = append(headers, "config")
	for _, k := range kinds {
		headers = append(headers, "YCSB-"+k.String())
	}
	t := stats.NewTable("Fig 3: KV throughput (ops/Mcycle; % of base)", headers...)
	for _, prof := range profiles {
		t.AddRow("-- " + prof.Name + " --")
		base := map[workload.Kind]float64{}
		for _, c := range fig3Cases() {
			row := []string{c.label}
			for _, kind := range kinds {
				res, err := harness.RunKV(harness.KVOptions{
					System: core.Config{
						Mode: c.mode, Replicas: c.reps, Sig: c.sig,
						Profile: prof, TickCycles: 60_000,
					},
					Workload:    kind,
					Records:     records,
					Operations:  ops,
					TraceOutput: true,
					Seed:        11,
				})
				if err != nil {
					return nil, fmt.Errorf("fig3 %s/%s/%v: %w", prof.Name, c.label, kind, err)
				}
				if c.mode == core.ModeNone {
					base[kind] = res.Throughput
					row = append(row, fmt.Sprintf("%.1f", res.Throughput))
				} else {
					row = append(row, fmt.Sprintf("%.1f (%.0f%%)", res.Throughput,
						100*res.Throughput/base[kind]))
				}
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// AblateSig isolates the signature-configuration trade-off on one
// workload: cost rises from N to A to S while detection latency falls
// (approximated by votes per operation).
func AblateSig(s Scale) (*stats.Table, error) {
	ops := uint64(150)
	if s == Full {
		ops = 500
	}
	t := stats.NewTable("Ablation: signature configuration (LC-D, YCSB-A)",
		"config", "ops/Mcycle", "votes", "votes/op")
	for _, sig := range []core.SigConfig{core.SigIO, core.SigArgs, core.SigSync} {
		res, err := harness.RunKV(harness.KVOptions{
			System: core.Config{
				Mode: core.ModeLC, Replicas: 2, Sig: sig, TickCycles: 60_000,
			},
			Workload: workload.YCSBA, Records: 48, Operations: ops,
			TraceOutput: true, Seed: 11,
		})
		if err != nil {
			return nil, err
		}
		votes := res.Stats.Votes
		t.AddRow(sig.String(), fmt.Sprintf("%.1f", res.Throughput),
			fmt.Sprintf("%d", votes), fmt.Sprintf("%.2f", float64(votes)/float64(res.Ops)))
	}
	return t, nil
}

// AblateTick sweeps the preemption-timer period: faster ticks bound
// detection latency more tightly but synchronise more often.
func AblateTick(s Scale) (*stats.Table, error) {
	ticks := []uint64{15_000, 30_000, 60_000, 120_000, 240_000}
	ops := uint64(120)
	if s == Full {
		ops = 400
	}
	t := stats.NewTable("Ablation: tick period vs overhead (LC-D, YCSB-A)",
		"tick cycles", "ops/Mcycle", "syncs")
	for _, tick := range ticks {
		res, err := harness.RunKV(harness.KVOptions{
			System: core.Config{
				Mode: core.ModeLC, Replicas: 2, TickCycles: tick,
			},
			Workload: workload.YCSBA, Records: 48, Operations: ops,
			TraceOutput: true, Seed: 11,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", tick), fmt.Sprintf("%.1f", res.Throughput),
			fmt.Sprintf("%d", res.Stats.Syncs))
	}
	return t, nil
}

// AblateCounting compares hardware-PMU branch counting against the
// compiler-assisted reserved-register scheme on the same (x86) machine,
// isolating the instrumentation cost (§III-D).
func AblateCounting(s Scale) (*stats.Table, error) {
	loops := int64(1500)
	reps := 3
	if s == Full {
		loops = 6000
		reps = 8
	}
	t := stats.NewTable("Ablation: branch counting scheme (CC-D on x86, kilocycles)",
		"workload", "hardware PMU", "compiler-assisted", "penalty")
	for _, w := range []string{"dhrystone", "whetstone"} {
		var hw, sw *stats.Sample
		var err error
		mk := func(force bool) (*stats.Sample, error) {
			cfg := core.Config{
				Mode: core.ModeCC, Replicas: 2, TickCycles: 30_000,
				ForceCompilerCounting: force,
			}
			if w == "dhrystone" {
				return repeatRuns(cfg, guest.Dhrystone(loops), reps, 3_000_000_000)
			}
			return repeatRuns(cfg, guest.Whetstone(loops/5), reps, 3_000_000_000)
		}
		if hw, err = mk(false); err != nil {
			return nil, err
		}
		if sw, err = mk(true); err != nil {
			return nil, err
		}
		t.AddRow(w, fmt.Sprintf("%.0f", hw.Mean()/1000), fmt.Sprintf("%.0f", sw.Mean()/1000),
			factor(sw.Mean(), hw.Mean()))
	}
	return t, nil
}
