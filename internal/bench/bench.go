// Package bench regenerates every table and figure of the paper's
// evaluation (§V): one runner per experiment, each producing the same
// rows/series the paper reports. Absolute numbers are simulator cycles;
// the shapes — who wins, by roughly what factor, where crossovers fall —
// are the reproduction target.
package bench

import (
	"context"
	"fmt"
	"sort"

	"rcoe/internal/compilerpass"
	"rcoe/internal/core"
	"rcoe/internal/exp"
	"rcoe/internal/guest"
	"rcoe/internal/isa"
	"rcoe/internal/kernel"
	"rcoe/internal/machine"
	"rcoe/internal/stats"
)

// Scale selects experiment sizing: Quick for CI and `go test -bench`,
// Full for paper-style runs.
type Scale int

// Scales.
const (
	Quick Scale = iota + 1
	Full
)

// Experiment couples an experiment ID (the paper's table/figure number)
// with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(s Scale) (*stats.Table, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Table I: voting examples", Run: Table1},
		{ID: "datarace", Title: "§V-A1: tolerating data races", Run: DataRace},
		{ID: "table2", Title: "Table II: native Dhrystone/Whetstone", Run: Table2},
		{ID: "table3", Title: "Table III: virtualised Dhrystone/Whetstone", Run: Table3},
		{ID: "table4", Title: "Table IV: SPLASH-2 under CC-RCoE VM", Run: Table4},
		{ID: "table5", Title: "Table V: memory bandwidth", Run: Table5},
		{ID: "table6", Title: "Table VI: YCSB workload mixes", Run: Table6},
		{ID: "fig3", Title: "Fig 3: Redis/YCSB throughput", Run: Fig3},
		{ID: "table7", Title: "Table VII: memory fault injection", Run: Table7},
		{ID: "table8", Title: "Table VIII: register fault injection (md5)", Run: Table8},
		{ID: "table9", Title: "Table IX: overclocking-style burst faults", Run: Table9},
		{ID: "table10", Title: "Table X: error recovery time", Run: Table10},
		{ID: "fig4", Title: "Fig 4: throughput with error masking", Run: Fig4},
		{ID: "ablate-sig", Title: "Ablation: signature configurations", Run: AblateSig},
		{ID: "ablate-count", Title: "Ablation: hardware vs compiler branch counting", Run: AblateCounting},
		{ID: "ablate-tick", Title: "Ablation: tick period vs overhead", Run: AblateTick},
		{ID: "ablate-fletcher", Title: "Ablation: Fletcher vs additive checksum", Run: AblateFletcher},
		{ID: "ablate-latency", Title: "Ablation: detection latency vs tick period", Run: AblateLatency},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment IDs sorted.
func IDs() []string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// replCase names one replication configuration of the paper's tables.
type replCase struct {
	label    string
	mode     core.Mode
	replicas int
}

func stockCases() []replCase {
	return []replCase{
		{"Base", core.ModeNone, 1},
		{"LC-D", core.ModeLC, 2},
		{"LC-T", core.ModeLC, 3},
		{"CC-D", core.ModeCC, 2},
		{"CC-T", core.ModeCC, 3},
	}
}

// assembleFor builds and assembles a guest program for a configuration,
// instrumenting it and producing branch-site metadata when the
// configuration needs compiler-assisted counting.
func assembleFor(cfg *core.Config, p guest.Program) ([]isa.Instr, []int, map[uint64]bool, error) {
	if cfg.Profile.Name == "" {
		cfg.Profile = machine.X86()
	}
	b := p.Build()
	needsPass := cfg.Mode == core.ModeCC &&
		(!cfg.Profile.PrecisePMU || cfg.ForceCompilerCounting)
	if needsPass {
		compilerpass.Instrument(b)
	}
	prog, err := b.Assemble(kernel.TextVA)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("bench: assemble %s: %w", p.Name, err)
	}
	var sites map[uint64]bool
	if needsPass {
		sites = compilerpass.BranchSites(prog, kernel.TextVA)
	}
	return prog, b.Relocs(), sites, nil
}

// runProgram assembles and runs a guest program under a configuration,
// returning the cycles from boot to completion.
func runProgram(cfg core.Config, p guest.Program, budget uint64) (uint64, error) {
	sys, err := buildSystem(cfg, p)
	if err != nil {
		return 0, err
	}
	start := sys.Machine().Now()
	if err := sys.Run(budget); err != nil {
		return 0, fmt.Errorf("bench: %s/%s: %w", cfg.Mode, p.Name, err)
	}
	return sys.Machine().Now() - start, nil
}

func alignPow2(v uint64) uint64 {
	p := uint64(1 << 20)
	for p < v {
		p <<= 1
	}
	return p
}

// fanOut runs n independent experiment cells on the experiment engine and
// returns their values in cell order. Cells must be self-contained
// simulated runs; the engine guarantees the values are identical at any
// host worker count.
func fanOut[T any](label string, n int, run func(i int) (T, error)) ([]T, error) {
	jobs := make([]exp.Job[T], n)
	for i := range jobs {
		i := i
		jobs[i] = exp.Job[T]{
			Name: fmt.Sprintf("%s[%d]", label, i),
			Run:  func(context.Context, uint64) (T, error) { return run(i) },
		}
	}
	results, err := exp.Run(exp.Options{}, jobs)
	if err != nil {
		return nil, err
	}
	return exp.Values(results)
}

// repeatRuns measures a program repeatedly, perturbing the tick phase so
// synchronisation points land at different code locations (the source of
// the paper's run-to-run variance on Whetstone). Repetitions are
// independent runs and fan out on the engine; the sample accumulates in
// repetition order.
func repeatRuns(cfg core.Config, p guest.Program, reps int, budget uint64) (*stats.Sample, error) {
	cycles, err := fanOut("rep/"+p.Name, reps, func(i int) (uint64, error) {
		c := cfg
		if c.TickCycles > 0 {
			c.TickCycles += uint64(i) * 137
		}
		return runProgram(c, p, budget)
	})
	if err != nil {
		return nil, err
	}
	var s stats.Sample
	for _, c := range cycles {
		s.Add(float64(c))
	}
	return &s, nil
}

// factor formats a ratio like the paper's overhead columns.
func factor(v, base float64) string {
	return fmt.Sprintf("%.2fx", v/base)
}
