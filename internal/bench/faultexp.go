package bench

import (
	"fmt"

	"rcoe/internal/core"
	"rcoe/internal/faults"
	"rcoe/internal/harness"
	"rcoe/internal/machine"
	"rcoe/internal/stats"
	"rcoe/internal/workload"
)

// faultKV builds the KV options the fault campaigns run against.
func faultKV(mode core.Mode, reps int, prof machine.Profile, trace bool, ops uint64) harness.KVOptions {
	return harness.KVOptions{
		System: core.Config{
			Mode: mode, Replicas: reps, Profile: prof,
			TickCycles:        50_000,
			ExceptionBarriers: prof.Name == "arm", // the paper's Arm study adds them
		},
		Workload:    workload.YCSBA,
		Records:     96,
		Operations:  ops,
		TraceOutput: trace,
	}
}

// memRow runs one Table VII configuration and renders its outcome counts.
func memRow(t *stats.Table, label string, opts faults.MemCampaignOptions) error {
	tally, err := faults.MemCampaign(opts)
	if err != nil {
		return fmt.Errorf("%s: %w", label, err)
	}
	c := tally.Counts
	t.AddRow(label,
		fmt.Sprintf("%d", tally.Injected),
		fmt.Sprintf("%d", tally.Observed()),
		fmt.Sprintf("%d", c[faults.OutcomeYCSBCorruption]),
		fmt.Sprintf("%d", c[faults.OutcomeYCSBError]),
		fmt.Sprintf("%d", c[faults.OutcomeUserMemFault]+c[faults.OutcomeOtherUserFault]),
		fmt.Sprintf("%d", c[faults.OutcomeKernelException]),
		fmt.Sprintf("%d", c[faults.OutcomeBarrierTimeout]),
		fmt.Sprintf("%d", c[faults.OutcomeSignatureMismatch]+c[faults.OutcomeMasked]),
		fmt.Sprintf("%d", tally.Uncontrolled()),
		fmt.Sprintf("%d", tally.Controlled()),
	)
	return nil
}

func memHeaders() []string {
	return []string{"config", "flips", "observed", "ycsb-corr", "ycsb-err",
		"user-faults", "kernel-exc", "timeouts", "sig-mism", "uncontrolled", "controlled"}
}

// Table7 reproduces the memory fault-injection study: the x86 variant
// targets all kernels plus the primary's user memory; the Arm variant
// targets every replica's memory and adds exception-handler barriers. The
// -N rows disable driver output tracing, which dramatically raises the
// undetected-corruption rate.
func Table7(s Scale) (*stats.Table, error) {
	trials, ops := 10, uint64(400)
	if s == Full {
		trials, ops = 40, 800
	}
	t := stats.NewTable("Table VII: memory fault injection outcomes (trials)", memHeaders()...)
	mk := func(mode core.Mode, reps int, prof machine.Profile, trace, allReps bool, seed uint64) faults.MemCampaignOptions {
		return faults.MemCampaignOptions{
			KV:                faultKV(mode, reps, prof, trace, ops),
			Trials:            trials,
			FlipEveryCycles:   700,
			MaxFlips:          10_000,
			TargetAllReplicas: allReps,
			IncludeDMA:        true,
			Seed:              seed,
		}
	}
	t.AddRow("-- x86: kernels + primary user memory --")
	x86 := machine.X86()
	if err := memRow(t, "Base", mk(core.ModeNone, 1, x86, true, false, 1)); err != nil {
		return nil, err
	}
	if err := memRow(t, "LC-D", mk(core.ModeLC, 2, x86, true, false, 2)); err != nil {
		return nil, err
	}
	if err := memRow(t, "LC-T", mk(core.ModeLC, 3, x86, true, false, 3)); err != nil {
		return nil, err
	}
	if err := memRow(t, "CC-D", mk(core.ModeCC, 2, x86, true, false, 4)); err != nil {
		return nil, err
	}
	if err := memRow(t, "CC-T", mk(core.ModeCC, 3, x86, true, false, 5)); err != nil {
		return nil, err
	}
	t.AddRow("-- arm: all replicas' memory, exception barriers --")
	arm := machine.Arm()
	if err := memRow(t, "LC-D", mk(core.ModeLC, 2, arm, true, true, 6)); err != nil {
		return nil, err
	}
	if err := memRow(t, "LC-T", mk(core.ModeLC, 3, arm, true, true, 7)); err != nil {
		return nil, err
	}
	if err := memRow(t, "CC-D", mk(core.ModeCC, 2, arm, true, true, 8)); err != nil {
		return nil, err
	}
	if err := memRow(t, "LC-D-N (no output traces)", mk(core.ModeLC, 2, arm, false, true, 9)); err != nil {
		return nil, err
	}
	if err := memRow(t, "LC-T-N (no output traces)", mk(core.ModeLC, 3, arm, false, true, 10)); err != nil {
		return nil, err
	}
	return t, nil
}

// Table8 reproduces the register fault-injection study on md5sum: the
// baseline crashes or silently corrupts; CC-RCoE DMR controls every
// error.
func Table8(s Scale) (*stats.Table, error) {
	trials, msg := 8, 16384
	if s == Full {
		trials, msg = 40, 65536
	}
	t := stats.NewTable("Table VIII: register fault injection on md5 (trials)",
		"config", "trials", "crashes", "corruptions", "timeouts", "mismatches",
		"uncontrolled", "controlled")
	for _, c := range []struct {
		label string
		cfg   core.Config
	}{
		{"Base", core.Config{Mode: core.ModeNone, Replicas: 1}},
		{"CC-D", core.Config{Mode: core.ModeCC, Replicas: 2}},
	} {
		tally, err := faults.RegCampaign(faults.RegCampaignOptions{
			System: c.cfg, MessageBytes: msg, Trials: trials, Seed: 17,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(c.label, fmt.Sprintf("%d", tally.Injected),
			fmt.Sprintf("%d", tally.Crashes), fmt.Sprintf("%d", tally.Corruptions),
			fmt.Sprintf("%d", tally.Timeouts), fmt.Sprintf("%d", tally.Mismatches),
			fmt.Sprintf("%d", tally.Uncontrolled()), fmt.Sprintf("%d", tally.Controlled()))
	}
	return t, nil
}

// Table9 reproduces the overclocking study with the burst-fault model:
// correlated multi-bit faults across all replicas' memory, where user-mode
// errors dominate and a small fraction escapes detection.
func Table9(s Scale) (*stats.Table, error) {
	trials, ops := 8, uint64(300)
	if s == Full {
		trials, ops = 30, 600
	}
	t := stats.NewTable("Table IX: overclocking-style burst faults (trials)", memHeaders()...)
	arm := machine.Arm()
	mk := func(mode core.Mode, reps int, seed uint64) faults.MemCampaignOptions {
		return faults.MemCampaignOptions{
			KV:                faultKV(mode, reps, arm, true, ops),
			Trials:            trials,
			FlipEveryCycles:   600,
			MaxFlips:          12_000,
			TargetAllReplicas: true,
			IncludeDMA:        true,
			Burst:             4,
			Seed:              seed,
		}
	}
	if err := memRow(t, "Base", mk(core.ModeNone, 1, 21)); err != nil {
		return nil, err
	}
	if err := memRow(t, "LC-D", mk(core.ModeLC, 2, 22)); err != nil {
		return nil, err
	}
	if err := memRow(t, "LC-T", mk(core.ModeLC, 3, 23)); err != nil {
		return nil, err
	}
	return t, nil
}

// Table10 measures the TMR->DMR downgrade cost: removing the primary
// (interrupt re-routing plus DMA reconfiguration) versus removing another
// replica, for LC and CC on x86 and LC on Arm (CC masking needs the spare
// PTE bit the Arm profile lacks).
func Table10(Scale) (*stats.Table, error) {
	t := stats.NewTable("Table X: recovery cost (cycles)",
		"platform", "LC primary", "LC other", "CC primary", "CC other")
	row := func(prof machine.Profile) ([4]string, error) {
		var out [4]string
		cases := []struct {
			idx    int
			mode   core.Mode
			faulty int
		}{
			{0, core.ModeLC, 0}, {1, core.ModeLC, 2},
			{2, core.ModeCC, 0}, {3, core.ModeCC, 2},
		}
		for _, c := range cases {
			if c.mode == core.ModeCC && !prof.HasSparePTEBit && c.faulty == 0 {
				out[c.idx] = "N/A (no spare PTE bit)"
				continue
			}
			res, err := faults.RecoveryTrial(faults.RecoveryOptions{
				System:        core.Config{Mode: c.mode, Profile: prof},
				FaultyReplica: c.faulty,
				Seed:          31,
			})
			if err != nil {
				return out, fmt.Errorf("%s/%v/faulty=%d: %w", prof.Name, c.mode, c.faulty, err)
			}
			out[c.idx] = fmt.Sprintf("%d", res.Cycles)
		}
		return out, nil
	}
	for _, prof := range []machine.Profile{machine.X86(), machine.Arm()} {
		cells, err := row(prof)
		if err != nil {
			return nil, err
		}
		t.AddRow(prof.Name, cells[0], cells[1], cells[2], cells[3])
	}
	return t, nil
}

// Fig4 shows service continuing across a masked failure: TMR throughput
// sampled in windows, with the downgrade marked, settling at DMR levels.
func Fig4(Scale) (*stats.Table, error) {
	res, err := faults.RecoveryTrial(faults.RecoveryOptions{
		System:         core.Config{Mode: core.ModeLC},
		FaultyReplica:  0,
		Operations:     240,
		InjectAfterOps: 90,
		Seed:           41,
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Fig 4: KV throughput with error masking (ops/Mcycle per window)",
		"window", "throughput", "event")
	for i, tp := range res.WindowThroughput {
		ev := ""
		if i == res.DowngradeWindow {
			ev = "<- fault injected; TMR downgrades to DMR"
		}
		t.AddRow(fmt.Sprintf("%d", i), fmt.Sprintf("%.1f", tp), ev)
	}
	t.AddRow("total", fmt.Sprintf("%.1f", res.Throughput),
		fmt.Sprintf("recovery took %d cycles", res.Cycles))
	return t, nil
}
