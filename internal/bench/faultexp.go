package bench

import (
	"fmt"

	"rcoe/internal/core"
	"rcoe/internal/faults"
	"rcoe/internal/harness"
	"rcoe/internal/machine"
	"rcoe/internal/stats"
	"rcoe/internal/workload"
)

// faultKV builds the KV options the fault campaigns run against.
func faultKV(mode core.Mode, reps int, prof machine.Profile, trace bool, ops uint64) harness.KVOptions {
	return harness.KVOptions{
		System: core.Config{
			Mode: mode, Replicas: reps, Profile: prof,
			TickCycles:        50_000,
			ExceptionBarriers: prof.Name == "arm", // the paper's Arm study adds them
		},
		Workload:    workload.YCSBA,
		Records:     96,
		Operations:  ops,
		TraceOutput: trace,
	}
}

// memRowSpec is one Table VII/IX row: either a section banner or a
// labelled campaign configuration.
type memRowSpec struct {
	section string
	label   string
	opts    faults.MemCampaignOptions
}

// memTable runs every campaign row on the engine (each campaign fans its
// trials out in turn) and renders the rows in spec order.
func memTable(title string, rows []memRowSpec) (*stats.Table, error) {
	tallies, err := fanOut(title, len(rows), func(i int) (*faults.Tally, error) {
		if rows[i].label == "" {
			return nil, nil // section banner: nothing to run
		}
		tally, err := faults.MemCampaign(rows[i].opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", rows[i].label, err)
		}
		return tally, nil
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(title, memHeaders()...)
	for i, row := range rows {
		if row.label == "" {
			t.AddRow(row.section)
			continue
		}
		tally := tallies[i]
		c := tally.Counts
		t.AddRow(row.label,
			fmt.Sprintf("%d", tally.Injected),
			fmt.Sprintf("%d", tally.Observed()),
			fmt.Sprintf("%d", c[faults.OutcomeYCSBCorruption]),
			fmt.Sprintf("%d", c[faults.OutcomeYCSBError]),
			fmt.Sprintf("%d", c[faults.OutcomeUserMemFault]+c[faults.OutcomeOtherUserFault]),
			fmt.Sprintf("%d", c[faults.OutcomeKernelException]),
			fmt.Sprintf("%d", c[faults.OutcomeBarrierTimeout]),
			fmt.Sprintf("%d", c[faults.OutcomeSignatureMismatch]+c[faults.OutcomeMasked]),
			fmt.Sprintf("%d", tally.Uncontrolled()),
			fmt.Sprintf("%d", tally.Controlled()),
		)
	}
	return t, nil
}

func memHeaders() []string {
	return []string{"config", "flips", "observed", "ycsb-corr", "ycsb-err",
		"user-faults", "kernel-exc", "timeouts", "sig-mism", "uncontrolled", "controlled"}
}

// Table7 reproduces the memory fault-injection study: the x86 variant
// targets all kernels plus the primary's user memory; the Arm variant
// targets every replica's memory and adds exception-handler barriers. The
// -N rows disable driver output tracing, which dramatically raises the
// undetected-corruption rate. Rows fan out on the engine, and each row's
// campaign fans its trials out beneath it.
func Table7(s Scale) (*stats.Table, error) {
	trials, ops := 10, uint64(400)
	if s == Full {
		trials, ops = 40, 800
	}
	mk := func(mode core.Mode, reps int, prof machine.Profile, trace, allReps bool, seed uint64) faults.MemCampaignOptions {
		return faults.MemCampaignOptions{
			KV:                faultKV(mode, reps, prof, trace, ops),
			Trials:            trials,
			FlipEveryCycles:   700,
			MaxFlips:          10_000,
			TargetAllReplicas: allReps,
			IncludeDMA:        true,
			Seed:              seed,
		}
	}
	x86, arm := machine.X86(), machine.Arm()
	return memTable("Table VII: memory fault injection outcomes (trials)", []memRowSpec{
		{section: "-- x86: kernels + primary user memory --"},
		{label: "Base", opts: mk(core.ModeNone, 1, x86, true, false, 1)},
		{label: "LC-D", opts: mk(core.ModeLC, 2, x86, true, false, 2)},
		{label: "LC-T", opts: mk(core.ModeLC, 3, x86, true, false, 3)},
		{label: "CC-D", opts: mk(core.ModeCC, 2, x86, true, false, 4)},
		{label: "CC-T", opts: mk(core.ModeCC, 3, x86, true, false, 5)},
		{section: "-- arm: all replicas' memory, exception barriers --"},
		{label: "LC-D", opts: mk(core.ModeLC, 2, arm, true, true, 6)},
		{label: "LC-T", opts: mk(core.ModeLC, 3, arm, true, true, 7)},
		{label: "CC-D", opts: mk(core.ModeCC, 2, arm, true, true, 8)},
		{label: "LC-D-N (no output traces)", opts: mk(core.ModeLC, 2, arm, false, true, 9)},
		{label: "LC-T-N (no output traces)", opts: mk(core.ModeLC, 3, arm, false, true, 10)},
	})
}

// Table8 reproduces the register fault-injection study on md5sum: the
// baseline crashes or silently corrupts; CC-RCoE DMR controls every
// error. Both configurations fan out, and each campaign fans its trials.
func Table8(s Scale) (*stats.Table, error) {
	trials, msg := 8, 16384
	if s == Full {
		trials, msg = 40, 65536
	}
	cases := []struct {
		label string
		cfg   core.Config
	}{
		{"Base", core.Config{Mode: core.ModeNone, Replicas: 1}},
		{"CC-D", core.Config{Mode: core.ModeCC, Replicas: 2}},
	}
	tallies, err := fanOut("table8", len(cases), func(i int) (faults.RegTally, error) {
		return faults.RegCampaign(faults.RegCampaignOptions{
			System: cases[i].cfg, MessageBytes: msg, Trials: trials, Seed: 17,
		})
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Table VIII: register fault injection on md5 (trials)",
		"config", "trials", "crashes", "corruptions", "timeouts", "mismatches",
		"uncontrolled", "controlled")
	for i, c := range cases {
		tally := tallies[i]
		t.AddRow(c.label, fmt.Sprintf("%d", tally.Injected),
			fmt.Sprintf("%d", tally.Crashes), fmt.Sprintf("%d", tally.Corruptions),
			fmt.Sprintf("%d", tally.Timeouts), fmt.Sprintf("%d", tally.Mismatches),
			fmt.Sprintf("%d", tally.Uncontrolled()), fmt.Sprintf("%d", tally.Controlled()))
	}
	return t, nil
}

// Table9 reproduces the overclocking study with the burst-fault model:
// correlated multi-bit faults across all replicas' memory, where user-mode
// errors dominate and a small fraction escapes detection.
func Table9(s Scale) (*stats.Table, error) {
	trials, ops := 8, uint64(300)
	if s == Full {
		trials, ops = 30, 600
	}
	arm := machine.Arm()
	mk := func(mode core.Mode, reps int, seed uint64) faults.MemCampaignOptions {
		return faults.MemCampaignOptions{
			KV:                faultKV(mode, reps, arm, true, ops),
			Trials:            trials,
			FlipEveryCycles:   600,
			MaxFlips:          12_000,
			TargetAllReplicas: true,
			IncludeDMA:        true,
			Burst:             4,
			Seed:              seed,
		}
	}
	return memTable("Table IX: overclocking-style burst faults (trials)", []memRowSpec{
		{label: "Base", opts: mk(core.ModeNone, 1, 21)},
		{label: "LC-D", opts: mk(core.ModeLC, 2, 22)},
		{label: "LC-T", opts: mk(core.ModeLC, 3, 23)},
	})
}

// Table10 measures the TMR->DMR downgrade cost: removing the primary
// (interrupt re-routing plus DMA reconfiguration) versus removing another
// replica, for LC and CC on x86 and LC on Arm (CC masking needs the spare
// PTE bit the Arm profile lacks). The eight platform × case trials fan
// out on the engine.
func Table10(Scale) (*stats.Table, error) {
	profiles := []machine.Profile{machine.X86(), machine.Arm()}
	cases := []struct {
		mode   core.Mode
		faulty int
	}{
		{core.ModeLC, 0}, {core.ModeLC, 2},
		{core.ModeCC, 0}, {core.ModeCC, 2},
	}
	cells, err := fanOut("table10", len(profiles)*len(cases), func(i int) (string, error) {
		prof := profiles[i/len(cases)]
		c := cases[i%len(cases)]
		if c.mode == core.ModeCC && !prof.HasSparePTEBit && c.faulty == 0 {
			return "N/A (no spare PTE bit)", nil
		}
		res, err := faults.RecoveryTrial(faults.RecoveryOptions{
			System:        core.Config{Mode: c.mode, Profile: prof},
			FaultyReplica: c.faulty,
			Seed:          31,
		})
		if err != nil {
			return "", fmt.Errorf("%s/%v/faulty=%d: %w", prof.Name, c.mode, c.faulty, err)
		}
		return fmt.Sprintf("%d", res.Cycles), nil
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Table X: recovery cost (cycles)",
		"platform", "LC primary", "LC other", "CC primary", "CC other")
	for fi, prof := range profiles {
		row := cells[fi*len(cases) : (fi+1)*len(cases)]
		t.AddRow(prof.Name, row[0], row[1], row[2], row[3])
	}
	return t, nil
}

// Fig4 shows service continuing across a masked failure: TMR throughput
// sampled in windows, with the downgrade marked, settling at DMR levels.
// A single timeline run: nothing to fan out.
func Fig4(Scale) (*stats.Table, error) {
	res, err := faults.RecoveryTrial(faults.RecoveryOptions{
		System:         core.Config{Mode: core.ModeLC},
		FaultyReplica:  0,
		Operations:     240,
		InjectAfterOps: 90,
		Seed:           41,
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Fig 4: KV throughput with error masking (ops/Mcycle per window)",
		"window", "throughput", "event")
	for i, tp := range res.WindowThroughput {
		ev := ""
		if i == res.DowngradeWindow {
			ev = "<- fault injected; TMR downgrades to DMR"
		}
		t.AddRow(fmt.Sprintf("%d", i), fmt.Sprintf("%.1f", tp), ev)
	}
	t.AddRow("total", fmt.Sprintf("%.1f", res.Throughput),
		fmt.Sprintf("recovery took %d cycles", res.Cycles))
	return t, nil
}
