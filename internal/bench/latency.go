package bench

import (
	"fmt"

	"rcoe/internal/core"
	"rcoe/internal/guest"
	"rcoe/internal/stats"
)

// AblateLatency quantifies §III-C's central trade-off: error-detection
// latency against synchronisation frequency. A single bit flip is
// injected into one replica's signature accumulator at a known cycle and
// the system runs until the vote catches it; the latency is the gap. The
// tick period bounds the worst case ("detection latency can be reduced by
// configuring the kernel's timer tick"), and per-syscall voting (SigSync)
// shrinks it further for syscall-heavy workloads.
func AblateLatency(s Scale) (*stats.Table, error) {
	reps := 3
	if s == Full {
		reps = 8
	}
	ticks := []uint64{10_000, 30_000, 90_000, 270_000}
	lats, err := fanOut("ablate-latency", len(ticks)*reps, func(i int) (uint64, error) {
		return detectionLatency(core.Config{
			Mode: core.ModeLC, Replicas: 2, TickCycles: ticks[i/reps],
		}, 40_000+uint64(i%reps)*17_001)
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Ablation: detection latency vs tick period (LC-D, cycles)",
		"tick", "mean latency", "max latency")
	for ti, tick := range ticks {
		var sample stats.Sample
		for _, lat := range lats[ti*reps : (ti+1)*reps] {
			sample.Add(float64(lat))
		}
		t.AddRow(fmt.Sprintf("%d", tick),
			fmt.Sprintf("%.0f", sample.Mean()), fmt.Sprintf("%.0f", sample.Max()))
	}
	return t, nil
}

// detectionLatency runs a CPU-bound DMR workload, corrupts replica 1's
// signature accumulator at injectAt, and returns the cycles until the
// system detects the divergence.
func detectionLatency(cfg core.Config, injectAt uint64) (uint64, error) {
	sys, err := buildSystem(cfg, guest.Dhrystone(2_000_000))
	if err != nil {
		return 0, err
	}
	sys.RunCycles(injectAt)
	lay := sys.Replica(1).K.Layout()
	if err := sys.Machine().Mem().FlipBit(lay.SigPA()+8, 5); err != nil {
		return 0, err
	}
	start := sys.Machine().Now()
	_ = sys.Run(100_000_000) // halts on detection
	ds := sys.Detections()
	if len(ds) == 0 {
		return 0, fmt.Errorf("bench: fault never detected (tick %d)", cfg.TickCycles)
	}
	return ds[0].Cycle - start, nil
}
