package bench

import (
	"testing"
	"time"

	"rcoe/internal/exp"
)

// runTable7Full runs the full-scale Table VII campaign at a fixed engine
// worker count and returns its wall-clock time.
func runTable7Full(b *testing.B, workers int) time.Duration {
	b.Helper()
	exp.SetDefaultWorkers(workers)
	defer exp.SetDefaultWorkers(0)
	start := time.Now()
	if _, err := Table7(Full); err != nil {
		b.Fatalf("table7 full (workers=%d): %v", workers, err)
	}
	return time.Since(start)
}

// BenchmarkTable7FullSerial pins the engine to one worker — the
// pre-engine serial baseline.
func BenchmarkTable7FullSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runTable7Full(b, 1)
	}
}

// BenchmarkTable7FullParallel uses the default pool (all host cores).
func BenchmarkTable7FullParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runTable7Full(b, 0)
	}
}

// BenchmarkTable7FullSpeedup runs the full-scale Table VII campaign
// serially and with the default worker pool in one benchmark and reports
// the wall-clock ratio as the `speedup` metric:
//
//	go test ./internal/bench -bench Table7FullSpeedup -benchtime 1x
//
// The campaign is ~embarrassingly parallel (10 independent rows, each
// fanning independent trials), so on an 8-core host the recorded speedup
// approaches the core count (>=4x); on a single-core host it records ~1x.
// Simulated results are identical either way — only host time moves.
func BenchmarkTable7FullSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		serial := runTable7Full(b, 1)
		parallel := runTable7Full(b, 0)
		b.ReportMetric(serial.Seconds()/parallel.Seconds(), "speedup")
		b.ReportMetric(serial.Seconds(), "serial-s")
		b.ReportMetric(parallel.Seconds(), "parallel-s")
	}
}
