package bench

import "testing"

// TestQuickExperiments exercises a representative subset of the
// experiment runners end to end at Quick scale.
func TestQuickExperiments(t *testing.T) {
	for _, id := range []string{"table1", "table6", "ablate-fletcher"} {
		e, ok := Lookup(id)
		if !ok {
			t.Fatalf("experiment %s missing", id)
		}
		tbl, err := e.Run(Quick)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if tbl.String() == "" {
			t.Fatalf("%s: empty table", id)
		}
		t.Logf("%s:\n%s", id, tbl)
	}
}

func TestAllExperimentsRegistered(t *testing.T) {
	if len(All()) < 15 {
		t.Fatalf("only %d experiments registered", len(All()))
	}
	for _, e := range All() {
		if e.Run == nil || e.ID == "" || e.Title == "" {
			t.Fatalf("malformed experiment %+v", e)
		}
	}
	if _, ok := Lookup("nonexistent"); ok {
		t.Fatalf("lookup of unknown id succeeded")
	}
}
