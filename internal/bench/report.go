package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"rcoe/internal/stats"
)

// ReportSchema identifies the JSON artifact format rcoe-bench emits.
const ReportSchema = "rcoe-bench/v1"

// ExperimentResult is one experiment's outcome in a Report: its table on
// success, or the error string on failure. Host timings are deliberately
// absent — a report contains only simulated results, so serial and
// parallel runs of the same campaign produce byte-identical artifacts.
type ExperimentResult struct {
	ID    string       `json:"id"`
	Title string       `json:"title"`
	Table *stats.Table `json:"table,omitempty"`
	Err   string       `json:"err,omitempty"`
}

// Report is the structured result artifact of a benchmark campaign.
type Report struct {
	Schema      string             `json:"schema"`
	Scale       string             `json:"scale"`
	Experiments []ExperimentResult `json:"experiments"`
}

// Failed counts experiments that returned an error.
func (r *Report) Failed() int {
	n := 0
	for _, e := range r.Experiments {
		if e.Err != "" {
			n++
		}
	}
	return n
}

// BuildReport runs the selected experiments in order and collects their
// tables into a Report. Experiment errors are recorded per entry and do
// not abort the campaign. onDone, if non-nil, is called after each
// experiment completes (for progress output on a terminal).
func BuildReport(scale Scale, selected []Experiment, onDone func(ExperimentResult)) *Report {
	r := &Report{Schema: ReportSchema, Experiments: []ExperimentResult{}}
	switch scale {
	case Full:
		r.Scale = "full"
	default:
		r.Scale = "quick"
	}
	for _, e := range selected {
		res := ExperimentResult{ID: e.ID, Title: e.Title}
		tbl, err := e.Run(scale)
		if err != nil {
			res.Err = err.Error()
		} else {
			res.Table = tbl
		}
		r.Experiments = append(r.Experiments, res)
		if onDone != nil {
			onDone(res)
		}
	}
	return r
}

// MarshalIndent renders the report as stable, indented JSON with a
// trailing newline — the byte-exact artifact format the determinism
// contract covers.
func (r *Report) MarshalIndent() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteText renders the report in the classic results_*.txt format: a
// banner and table per experiment. It carries no host timings, so a text
// artifact is as reproducible as the JSON one.
func (r *Report) WriteText(w io.Writer) error {
	for _, e := range r.Experiments {
		if _, err := fmt.Fprintf(w, "=== %s (%s)\n", e.Title, e.ID); err != nil {
			return err
		}
		if e.Err != "" {
			if _, err := fmt.Fprintf(w, "ERROR: %s\n\n", e.Err); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s\n", e.Table.String()); err != nil {
			return err
		}
	}
	return nil
}
