package bench

import (
	"testing"

	"rcoe/internal/core"
	"rcoe/internal/guest"
	"rcoe/internal/machine"
)

// TestMembenchFullScaleCompletes is the regression test for the
// full-scale Table V barrier timeout: with 8 MiB buffers the replicas'
// copies outlast the rendezvous spin budget unless the bus shares fairly,
// because LC only levels logical time at events and membench's only event
// is the final exit. Under the pre-fix phase-locked arbitration replica 1
// received ~1/3 of the bandwidth, sat a whole copy behind at replica 0's
// exit, and could not catch up within BarrierTimeout. The DMR and TMR
// x86 cells (the ones that trip first in `rcoe-bench -scale full table5`)
// must complete without any detection.
func TestMembenchFullScaleCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale membench is ~1s per cell; skipped with -short")
	}
	p := guest.Membench(8<<20, 4)
	for _, mode := range []core.Mode{core.ModeLC, core.ModeCC} {
		for _, replicas := range []int{2, 3} {
			cfg := core.Config{
				Mode: mode, Replicas: replicas, Profile: machine.X86(),
				TickCycles:     100_000,
				PartitionBytes: alignPow2(p.DataBytes + 2<<20),
			}
			// CC additionally exercises the mid-block catch-up path: every
			// tick rendezvous lands inside the 8 MiB copy, so the laggards
			// must converge onto the leader's exact remaining count via
			// the block watchpoint, not free-run past it.
			cycles, err := runProgram(cfg, p, 30_000_000_000)
			if err != nil {
				t.Fatalf("%v replicas=%d: %v", mode, replicas, err)
			}
			if cycles == 0 {
				t.Fatalf("%v replicas=%d: zero-cycle run", mode, replicas)
			}
		}
	}
}
