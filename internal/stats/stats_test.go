package stats

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleMean(t *testing.T) {
	var s Sample
	for _, v := range []float64{1, 2, 3, 4} {
		s.Add(v)
	}
	if got := s.Mean(); got != 2.5 {
		t.Fatalf("Mean() = %v, want 2.5", got)
	}
	if got := s.N(); got != 4 {
		t.Fatalf("N() = %d, want 4", got)
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.StdDev() != 0 || s.Min() != 0 || s.Max() != 0 || s.Median() != 0 {
		t.Fatalf("empty sample should report zeros")
	}
}

func TestSampleStdDev(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	want := math.Sqrt(32.0 / 7.0)
	if got := s.StdDev(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("StdDev() = %v, want %v", got, want)
	}
}

func TestSampleMinMaxMedian(t *testing.T) {
	var s Sample
	for _, v := range []float64{5, 1, 9, 3} {
		s.Add(v)
	}
	if s.Min() != 1 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v, want 1/9", s.Min(), s.Max())
	}
	if got := s.Median(); got != 4 {
		t.Fatalf("Median() = %v, want 4", got)
	}
	s.Add(100)
	if got := s.Median(); got != 5 {
		t.Fatalf("odd Median() = %v, want 5", got)
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 4, 16})
	if math.Abs(got-4) > 1e-12 {
		t.Fatalf("GeoMean = %v, want 4", got)
	}
}

func TestGeoMeanSkipsNonPositive(t *testing.T) {
	got := GeoMean([]float64{0, -3, 4, 4})
	if math.Abs(got-4) > 1e-12 {
		t.Fatalf("GeoMean = %v, want 4", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatalf("GeoMean(nil) should be 0")
	}
}

func TestPaperFormat(t *testing.T) {
	got := PaperFormat(2.31, 0.052, 2)
	if got != "2.31 (5)" {
		t.Fatalf("PaperFormat = %q, want %q", got, "2.31 (5)")
	}
	got = PaperFormat(86, 0.4, 0)
	if got != "86 (0)" {
		t.Fatalf("PaperFormat = %q, want %q", got, "86 (0)")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table II", "config", "Arm", "x86")
	tb.AddRow("Base", "86 (0)", "55 (0)")
	tb.AddRow("LC-D", "86 (0)")
	out := tb.String()
	if !strings.Contains(out, "Table II") {
		t.Fatalf("missing title in %q", out)
	}
	if !strings.Contains(out, "Base") || !strings.Contains(out, "86 (0)") {
		t.Fatalf("missing cells in %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestQuickMeanBounds(t *testing.T) {
	f := func(vals []float64) bool {
		var s Sample
		ok := false
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				continue
			}
			s.Add(v)
			ok = true
		}
		if !ok {
			return true
		}
		m := s.Mean()
		return m >= s.Min()-1e-9*math.Abs(s.Min())-1e-9 && m <= s.Max()+1e-9*math.Abs(s.Max())+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValuesIsCopy(t *testing.T) {
	var s Sample
	s.Add(1)
	vals := s.Values()
	vals[0] = 99
	if s.Mean() != 1 {
		t.Fatalf("Values() aliases internal slice")
	}
}

func TestTableJSONRoundTrip(t *testing.T) {
	tbl := NewTable("T", "a", "b")
	tbl.AddRow("1", "2")
	tbl.AddRow("only") // padded by AddRow
	data, err := json.Marshal(tbl)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"title":"T","headers":["a","b"],"rows":[["1","2"],["only",""]]}`
	if string(data) != want {
		t.Fatalf("marshal = %s, want %s", data, want)
	}
	var back Table
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.String() != tbl.String() {
		t.Fatalf("round trip changed rendering:\n%s\nvs\n%s", back.String(), tbl.String())
	}
}

func TestTableJSONEmptyNormalised(t *testing.T) {
	data, err := json.Marshal(NewTable("empty"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"title":"empty","headers":[],"rows":[]}` {
		t.Fatalf("empty table marshal = %s", data)
	}
}

func TestTableAccessorsCopy(t *testing.T) {
	tbl := NewTable("T", "a")
	tbl.AddRow("x")
	tbl.Headers()[0] = "mutated"
	tbl.Rows()[0][0] = "mutated"
	if tbl.Headers()[0] != "a" || tbl.Rows()[0][0] != "x" {
		t.Fatal("accessors alias internal slices")
	}
}
