// Package stats provides the small statistical and presentation helpers the
// benchmark harness uses to report results in the paper's format: means
// with standard deviations in units of the least significant digit,
// geometric means of overhead factors, and fixed-width tables.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample holds a set of repeated measurements of one quantity.
type Sample struct {
	values []float64
}

// Add appends one measurement.
func (s *Sample) Add(v float64) { s.values = append(s.values, v) }

// N returns the number of measurements.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// StdDev returns the sample standard deviation (n-1 denominator), or 0 for
// samples of fewer than two measurements.
func (s *Sample) StdDev() float64 {
	if len(s.values) < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, v := range s.values {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(s.values)-1))
}

// Min returns the smallest measurement, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest measurement, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Median returns the median measurement, or 0 for an empty sample.
func (s *Sample) Median() float64 {
	if len(s.values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// Values returns a copy of the raw measurements.
func (s *Sample) Values() []float64 {
	return append([]float64(nil), s.values...)
}

// GeoMean returns the geometric mean of strictly positive values; zero or
// negative entries are skipped. It returns 0 for an empty input.
func GeoMean(values []float64) float64 {
	var sum float64
	var n int
	for _, v := range values {
		if v <= 0 {
			continue
		}
		sum += math.Log(v)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// PaperFormat renders a mean and standard deviation in the paper's table
// style: the deviation is given in parentheses in units of the mean's least
// significant printed digit, e.g. 2.31 (5) means 2.31 ± 0.05.
func PaperFormat(mean, stddev float64, decimals int) string {
	scale := math.Pow(10, float64(decimals))
	dev := int(math.Round(stddev * scale))
	return fmt.Sprintf("%.*f (%d)", decimals, mean, dev)
}

// Table accumulates rows of strings and renders them with aligned columns,
// in the style used to present the paper's tables on a terminal.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: append([]string(nil), headers...)}
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := append([]string(nil), cells...)
	for len(row) < len(t.headers) {
		row = append(row, "")
	}
	t.rows = append(t.rows, row)
}

// Title returns the table's title.
func (t *Table) Title() string { return t.title }

// Headers returns a copy of the column headers.
func (t *Table) Headers() []string { return append([]string(nil), t.headers...) }

// Rows returns a copy of the rows (each row already padded to the header
// width by AddRow).
func (t *Table) Rows() [][]string {
	rows := make([][]string, len(t.rows))
	for i, r := range t.rows {
		rows[i] = append([]string(nil), r...)
	}
	return rows
}

// tableJSON is the stable wire form of a Table: title, headers, rows.
// Cells are strings exactly as rendered, so the JSON carries the same
// values the text tables show and is byte-reproducible run to run.
type tableJSON struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// MarshalJSON encodes the table as {title, headers, rows}. Nil slices
// are normalised to empty ones so the encoding never depends on whether
// a table happened to receive rows.
func (t *Table) MarshalJSON() ([]byte, error) {
	w := tableJSON{Title: t.title, Headers: t.headers, Rows: t.rows}
	if w.Headers == nil {
		w.Headers = []string{}
	}
	if w.Rows == nil {
		w.Rows = [][]string{}
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes the form written by MarshalJSON.
func (t *Table) UnmarshalJSON(data []byte) error {
	var w tableJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	t.title, t.headers, t.rows = w.Title, w.Headers, w.Rows
	return nil
}

// String renders the table with space-aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
