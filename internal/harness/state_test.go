package harness

import (
	"bytes"
	"errors"
	"testing"

	"rcoe/internal/core"
	"rcoe/internal/snapshot"
	"rcoe/internal/workload"
)

// stepUntil advances a run in client-pump chunks until cond holds or the
// cycle budget is exhausted.
func stepUntil(t *testing.T, r *KVRun, budget uint64, cond func() bool) {
	t.Helper()
	m := r.Sys.Machine()
	deadline := m.Now() + budget
	for !cond() && !r.Done() {
		if halted, reason := r.Sys.Halted(); halted {
			t.Fatalf("system halted: %s", reason)
		}
		if m.Now() > deadline {
			t.Fatalf("budget exhausted (ops=%d)", r.opsDone)
		}
		r.StepChunk(2_000)
	}
}

// finishRun drives a run to completion and returns its result.
func finishRun(t *testing.T, r *KVRun) KVResult {
	t.Helper()
	res, err := r.Run()
	if err != nil {
		t.Fatalf("run: %v (res=%+v)", err, res)
	}
	return res
}

// TestKVStateRoundTrip checkpoints a replicated KV benchmark mid-run —
// client window in flight, NIC queues live, server mid-request — and
// verifies the restored run is exact (byte-identical re-serialization)
// and completes bit-identically to the original.
func TestKVStateRoundTrip(t *testing.T) {
	opts := kvOpts(core.ModeLC, 2, workload.YCSBA)
	orig, err := NewKV(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Checkpoint mid-run-phase: past the load, with operations in flight.
	stepUntil(t, orig, 400_000_000, func() bool { return orig.opsDone >= 10 })
	data, err := snapshot.Save(orig)
	if err != nil {
		t.Fatal(err)
	}

	rest, err := NewKV(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Advance the target a little so every restored field matters.
	rest.StepChunk(50_000)
	if err := snapshot.Restore(rest, data); err != nil {
		t.Fatal(err)
	}
	data2, err := snapshot.Save(rest)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		sa, _ := snapshot.Parse(data)
		sb, _ := snapshot.Parse(data2)
		t.Fatalf("re-serialized snapshot differs: %v", snapshot.Diff(sa, sb))
	}

	resA := finishRun(t, orig)
	resB := finishRun(t, rest)
	if resA.Ops != resB.Ops || resA.Cycles != resB.Cycles ||
		resA.Corruptions != resB.Corruptions || resA.Errors != resB.Errors ||
		resA.Finished != resB.Finished {
		t.Fatalf("results diverged:\n orig: %+v\n rest: %+v", resA, resB)
	}
	if a, b := orig.Sys.Machine().Now(), rest.Sys.Machine().Now(); a != b {
		t.Fatalf("now diverged: %d vs %d", a, b)
	}
	fa, err := snapshot.Save(orig)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := snapshot.Save(rest)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fa, fb) {
		sa, _ := snapshot.Parse(fa)
		sb, _ := snapshot.Parse(fb)
		t.Fatalf("continuation diverged: %v", snapshot.Diff(sa, sb))
	}
}

// TestKVStateIncompatibleOptions rejects targets built with different
// benchmark options.
func TestKVStateIncompatibleOptions(t *testing.T) {
	opts := kvOpts(core.ModeLC, 2, workload.YCSBA)
	orig, err := NewKV(opts)
	if err != nil {
		t.Fatal(err)
	}
	orig.StepChunk(100_000)
	data, err := snapshot.Save(orig)
	if err != nil {
		t.Fatal(err)
	}

	other := opts
	other.Workload = workload.YCSBC
	target, err := NewKV(other)
	if err != nil {
		t.Fatal(err)
	}
	if err := snapshot.Restore(target, data); !errors.Is(err, snapshot.ErrIncompatible) {
		t.Fatalf("workload mismatch: got %v, want ErrIncompatible", err)
	}

	seeded := opts
	seeded.Seed = 99
	target2, err := NewKV(seeded)
	if err != nil {
		t.Fatal(err)
	}
	if err := snapshot.Restore(target2, data); !errors.Is(err, snapshot.ErrIncompatible) {
		t.Fatalf("seed mismatch: got %v, want ErrIncompatible", err)
	}
}
