package harness

import (
	"bytes"
	"errors"
	"testing"

	"rcoe/internal/core"
	"rcoe/internal/netstack"
	"rcoe/internal/snapshot"
	"rcoe/internal/workload"
)

// serveOne injects one request frame and runs the node until its response
// arrives (or the cycle budget runs out).
func serveOne(t *testing.T, n *Node, req netstack.Request) netstack.Response {
	t.Helper()
	frame, err := netstack.EncodeRequest(req)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	n.Inject(frame)
	for i := 0; i < 4000; i++ {
		n.RunCycles(2_000)
		if halted, reason := n.Halted(); halted {
			t.Fatalf("node halted: %s", reason)
		}
		for _, f := range n.TakeResponses() {
			resp, err := netstack.DecodeResponse(f)
			if err != nil {
				t.Fatalf("decode response: %v", err)
			}
			if resp.ReqID == req.ReqID {
				return resp
			}
		}
	}
	t.Fatalf("no response to request %d", req.ReqID)
	return netstack.Response{}
}

// TestNodeServesFrames boots a bare node (no client harness) and speaks
// the frame protocol at it directly: SET then GET round-trips the value.
func TestNodeServesFrames(t *testing.T) {
	n, err := NewNode(NodeOptions{
		System: core.Config{Mode: core.ModeLC, Replicas: 2, TickCycles: 50_000},
		Slots:  64,
	})
	if err != nil {
		t.Fatal(err)
	}
	key := workload.Key(3)
	val := workload.Value(3, 0)
	set := serveOne(t, n, netstack.Request{Op: netstack.OpSet, ReqID: 1, Key: key, Value: val})
	if set.Status != netstack.StatusOK {
		t.Fatalf("SET status %d", set.Status)
	}
	get := serveOne(t, n, netstack.Request{Op: netstack.OpGet, ReqID: 2, Key: key})
	if get.Status != netstack.StatusOK {
		t.Fatalf("GET status %d", get.Status)
	}
	if !bytes.Equal(get.Value, val) {
		t.Fatalf("GET value mismatch: %d bytes vs %d", len(get.Value), len(val))
	}
	miss := serveOne(t, n, netstack.Request{Op: netstack.OpGet, ReqID: 3, Key: workload.Key(9)})
	if miss.Status != netstack.StatusNotFound {
		t.Fatalf("missing key status %d, want not-found", miss.Status)
	}
}

// TestNodeStateTransfer checkpoints a node holding data and restores it
// into a freshly booted twin: the value survives, and re-saving the twin
// reproduces the checkpoint byte for byte.
func TestNodeStateTransfer(t *testing.T) {
	opts := NodeOptions{
		System: core.Config{Mode: core.ModeLC, Replicas: 2, TickCycles: 50_000},
		Slots:  64,
	}
	n, err := NewNode(opts)
	if err != nil {
		t.Fatal(err)
	}
	key := workload.Key(7)
	val := workload.Value(7, 1)
	if resp := serveOne(t, n, netstack.Request{Op: netstack.OpSet, ReqID: 1, Key: key, Value: val}); resp.Status != netstack.StatusOK {
		t.Fatalf("SET status %d", resp.Status)
	}
	ckpt, err := snapshot.Save(n)
	if err != nil {
		t.Fatal(err)
	}

	twin, err := NewNode(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := snapshot.Restore(twin, ckpt); err != nil {
		t.Fatal(err)
	}
	resave, err := snapshot.Save(twin)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ckpt, resave) {
		t.Fatal("restore -> save round trip is not byte-identical")
	}
	get := serveOne(t, twin, netstack.Request{Op: netstack.OpGet, ReqID: 2, Key: key})
	if get.Status != netstack.StatusOK || !bytes.Equal(get.Value, val) {
		t.Fatalf("restored node lost the value (status %d)", get.Status)
	}
}

// TestNodeStateTransferRejectsMismatch pins the state-transfer guard: a
// checkpoint cannot land on a node booted with different options.
func TestNodeStateTransferRejectsMismatch(t *testing.T) {
	n, err := NewNode(NodeOptions{
		System: core.Config{Mode: core.ModeLC, Replicas: 2, TickCycles: 50_000},
		Slots:  64,
	})
	if err != nil {
		t.Fatal(err)
	}
	ckpt, err := snapshot.Save(n)
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewNode(NodeOptions{
		System: core.Config{Mode: core.ModeLC, Replicas: 2, TickCycles: 50_000},
		Slots:  128,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := snapshot.Restore(other, ckpt); !errors.Is(err, snapshot.ErrIncompatible) {
		t.Fatalf("restore into mismatched node: %v, want ErrIncompatible", err)
	}
}

// TestNodeRedundancyControl drives the per-shard redundancy knob: a TMR
// node downgrades to DMR when a replica stalls (serving continues), then
// re-integrates back to TMR — all through the Node boundary alone.
func TestNodeRedundancyControl(t *testing.T) {
	n, err := NewNode(NodeOptions{
		System: core.Config{
			Mode: core.ModeLC, Replicas: 3, Masking: true,
			TickCycles: 50_000, BarrierTimeout: 200_000,
		},
		Slots: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	key := workload.Key(1)
	if resp := serveOne(t, n, netstack.Request{Op: netstack.OpSet, ReqID: 1, Key: key, Value: workload.Value(1, 0)}); resp.Status != netstack.StatusOK {
		t.Fatalf("SET status %d", resp.Status)
	}
	n.InjectStall(2)
	for i := 0; i < 2000 && n.AliveCount() == 3; i++ {
		n.RunCycles(2_000)
	}
	if got := n.AliveCount(); got != 2 {
		t.Fatalf("alive count after stall = %d, want 2 (TMR->DMR)", got)
	}
	// The downgraded node keeps serving.
	get := serveOne(t, n, netstack.Request{Op: netstack.OpGet, ReqID: 2, Key: key})
	if get.Status != netstack.StatusOK {
		t.Fatalf("DMR GET status %d", get.Status)
	}
	if err := n.RequestReintegrate(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000 && n.AliveCount() != 3; i++ {
		n.RunCycles(2_000)
		serveOne(t, n, netstack.Request{Op: netstack.OpGet, ReqID: uint32(100 + i), Key: key})
	}
	if got := n.AliveCount(); got != 3 {
		_, rerr := n.ReintegrateOutcome()
		t.Fatalf("alive count after reintegrate = %d, want 3 (err %v)", got, rerr)
	}
}
