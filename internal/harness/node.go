package harness

import (
	"fmt"

	"rcoe/internal/compilerpass"
	"rcoe/internal/core"
	"rcoe/internal/device"
	"rcoe/internal/guest"
	"rcoe/internal/kernel"
	"rcoe/internal/machine"
	"rcoe/internal/metrics"
	"rcoe/internal/snapshot"
	"rcoe/internal/trace"
)

// Node is one self-contained replicated key-value server: a replicated
// system (DMR or TMR internally), its NIC, and the server program — the
// paper's single machine, packaged so that N of them can be composed into
// a sharded cluster (internal/cluster). The boundary deliberately exposes
// exactly what a cluster layer needs and nothing more:
//
//   - boot (NewNode) and time (RunCycles/Now/Halted/Finished);
//   - frame service (Inject/TakeResponses) over the netstack protocol;
//   - state transfer (SaveState/LoadState, the snapshot.Snapshotter
//     boundary from the checkpoint/restore subsystem);
//   - redundancy-mode control (InjectStall, RequestReintegrate,
//     AliveCount) so a policy layer can trade redundancy for throughput
//     per shard;
//   - observability (Metrics, TraceRecorder, Detections, Stats).
//
// The single-node KV benchmark (KVRun) is the degenerate composition: one
// Node plus the closed-loop client.
type Node struct {
	sys  *core.System
	nic  *device.NIC
	opts NodeOptions
}

// NodeOptions configures a node boot.
type NodeOptions struct {
	// System is the replication configuration of this node.
	System core.Config
	// Slots is the server hash-table size (power of two; 4096 when 0).
	Slots uint64
	// RequestBudget is the number of requests the server serves before
	// exiting cleanly. Closed-loop benchmarks size it exactly; serving
	// nodes over-provision it (0 selects a practically unbounded budget).
	RequestBudget uint64
	// TraceOutput controls FT_Add_Trace on responses (the -N
	// configurations of Table VII disable it).
	TraceOutput bool
}

// NewNode boots a replicated key-value server node: builds the server
// program for the configured coupling mode, assembles it, constructs the
// replicated system with its NIC, and loads every replica.
func NewNode(opts NodeOptions) (*Node, error) {
	if opts.Slots == 0 {
		opts.Slots = 4096
	}
	if opts.RequestBudget == 0 {
		opts.RequestBudget = 1 << 32
	}
	driver := guest.DriverLC
	if opts.System.Mode == core.ModeCC {
		driver = guest.DriverCC
	}
	dmaBase, _ := core.DMARegion()
	nic := device.NewNIC(nicMMIOBase, dmaBase, NICLine)

	p := guest.KVApp(guest.KVConfig{
		Driver:      driver,
		Requests:    opts.RequestBudget,
		Slots:       opts.Slots,
		TraceOutput: opts.TraceOutput,
		IRQLine:     NICLine,
		RxFlagPA:    nic.RxFlagPA(),
		RxLenPA:     nic.RxLenPA(),
		RxDataPA:    nic.RxDataPA(),
		TxFlagPA:    nic.TxFlagPA(),
		TxLenPA:     nic.TxLenPA(),
		TxDataPA:    nic.TxDataPA(),
		DoorbellPA:  nicMMIOBase + device.RegTxDoorbell,
	})
	b := p.Build()
	cfg := opts.System
	if cfg.Profile.Name == "" {
		cfg.Profile = machine.X86()
	}
	if cfg.Mode == core.ModeCC && !cfg.Profile.PrecisePMU {
		compilerpass.Instrument(b)
	}
	prog, err := b.Assemble(kernel.TextVA)
	if err != nil {
		return nil, fmt.Errorf("harness: assemble kvapp: %w", err)
	}
	if cfg.Mode == core.ModeCC && !cfg.Profile.PrecisePMU {
		cfg.BranchSites = compilerpass.BranchSites(prog, kernel.TextVA)
	}
	if cfg.PartitionBytes == 0 {
		// Size the partition for the table plus text, stacks and the
		// kernel area.
		cfg.PartitionBytes = nextPow2(p.DataBytes + 640<<10)
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	m := sys.Machine()
	m.MapMMIO(nicMMIOBase, device.NICWindowSize, nic)
	m.AddDevice(nic)
	sys.RegisterDeviceWindow(0, nicMMIOBase, device.NICWindowSize)
	if err := sys.Load(kernel.ProcessConfig{
		Prog: prog, DataBytes: p.DataBytes, Arg: p.Arg, Stacks: p.Stacks,
		Relocs: b.Relocs(),
	}); err != nil {
		return nil, err
	}
	n := &Node{sys: sys, nic: nic, opts: opts}
	// On a primary failover, free the RX mailbox the dead primary may
	// have left claimed so the NIC can resume delivery.
	sys.SetPrimaryChangeHook(func(int) {
		_ = sys.Machine().Mem().WriteU(nic.RxFlagPA(), 8, 0)
	})
	return n, nil
}

// Sys returns the replicated system (fault injectors and campaigns need
// raw access).
func (n *Node) Sys() *core.System { return n.sys }

// NIC returns the node's network interface.
func (n *Node) NIC() *device.NIC { return n.nic }

// Options returns the boot options.
func (n *Node) Options() NodeOptions { return n.opts }

// Inject queues a request frame for delivery to the server.
func (n *Node) Inject(frame []byte) { n.nic.Inject(frame) }

// InjectRetained queues a frame without the defensive copy; the caller
// must not mutate the bytes (see device.NIC.InjectRetained).
func (n *Node) InjectRetained(frame []byte) { n.nic.InjectRetained(frame) }

// TakeResponses returns and clears the server's transmitted frames.
func (n *Node) TakeResponses() [][]byte { return n.nic.TakeResponses() }

// DrainResponses appends the server's transmitted frames to dst and
// clears the queue, reusing its capacity — the allocation-amortized
// TakeResponses for callers that poll every round.
func (n *Node) DrainResponses(dst [][]byte) [][]byte { return n.nic.DrainResponses(dst) }

// PendingRx returns the number of injected frames not yet delivered.
func (n *Node) PendingRx() int { return n.nic.PendingRx() }

// RunCycles advances the node's machine by n cycles (stopping early if the
// system halts or finishes).
func (n *Node) RunCycles(c uint64) { n.sys.RunCycles(c) }

// Now returns the node's machine cycle counter.
func (n *Node) Now() uint64 { return n.sys.Machine().Now() }

// Halted reports whether the node fail-stopped, with the reason.
func (n *Node) Halted() (bool, string) { return n.sys.Halted() }

// Finished reports whether the server exited cleanly.
func (n *Node) Finished() bool { return n.sys.Finished() }

// InjectStall marks a replica to hang at its next kernel entry; its peers
// eject it on barrier timeout (the TMR->DMR downgrade path).
func (n *Node) InjectStall(rid int) { n.sys.InjectStall(rid) }

// RequestReintegrate schedules live re-integration of a removed replica
// at the next drained rendezvous.
func (n *Node) RequestReintegrate(rid int) error { return n.sys.RequestReintegrate(rid) }

// ReintegrateOutcome reports the pending re-integration request's state.
func (n *Node) ReintegrateOutcome() (pending bool, err error) { return n.sys.ReintegrateOutcome() }

// AliveCount returns the number of replicas still in the configuration —
// the node's current redundancy level.
func (n *Node) AliveCount() int { return n.sys.AliveCount() }

// NumReplicas returns the configured replica count.
func (n *Node) NumReplicas() int { return n.sys.NumReplicas() }

// Alive reports whether replica rid is still in the configuration.
func (n *Node) Alive(rid int) bool { return n.sys.Alive(rid) }

// Primary returns the current primary replica's ID.
func (n *Node) Primary() int { return n.sys.Primary() }

// Detections returns the node's recorded detection events.
func (n *Node) Detections() []core.Detection { return n.sys.Detections() }

// Stats returns the node's replication counters.
func (n *Node) Stats() core.Stats { return n.sys.Stats() }

// Metrics returns the node's metric set (nil when tracing is disabled).
func (n *Node) Metrics() *metrics.Set { return n.sys.Metrics() }

// MetricsSnapshot copies the node's metrics at the current cycle.
func (n *Node) MetricsSnapshot() metrics.Snapshot { return n.sys.MetricsSnapshot() }

// TraceRecorder returns the node's flight recorder (nil when disabled).
func (n *Node) TraceRecorder() *trace.Recorder { return n.sys.TraceRecorder() }

// SaveState implements snapshot.Snapshotter: the node's identity sections
// plus the full replicated-system state. A node checkpoint is the state-
// transfer unit behind shard failover and migration.
func (n *Node) SaveState(w *snapshot.Writer) error {
	e := w.Section("node.meta")
	e.Int(int(n.sys.Config().Mode))
	e.Int(n.sys.Config().Replicas)
	e.U64(n.opts.Slots)
	e.U64(n.opts.RequestBudget)
	e.Bool(n.opts.TraceOutput)
	return n.sys.SaveState(w)
}

// LoadState implements snapshot.Snapshotter. The target must be a node
// freshly booted with behaviourally identical options.
func (n *Node) LoadState(snap *snapshot.Snapshot) error {
	d, err := snap.Section("node.meta")
	if err != nil {
		return err
	}
	checks := []struct {
		field  string
		target interface{}
		snap   interface{}
	}{
		{"mode", int(n.sys.Config().Mode), d.Int()},
		{"replicas", n.sys.Config().Replicas, d.Int()},
		{"slots", n.opts.Slots, d.U64()},
		{"request-budget", n.opts.RequestBudget, d.U64()},
		{"trace-output", n.opts.TraceOutput, d.Bool()},
	}
	if err := d.Close(); err != nil {
		return err
	}
	for _, c := range checks {
		if c.target != c.snap {
			return snapshot.IncompatibleError("node.meta", c.field, c.target, c.snap)
		}
	}
	return n.sys.LoadState(snap)
}
