package harness

import (
	"testing"

	"rcoe/internal/core"
	"rcoe/internal/machine"
	"rcoe/internal/workload"
)

func kvOpts(mode core.Mode, reps int, kind workload.Kind) KVOptions {
	return KVOptions{
		System: core.Config{
			Mode:       mode,
			Replicas:   reps,
			TickCycles: 50_000,
		},
		Workload:    kind,
		Records:     40,
		Operations:  60,
		TraceOutput: true,
		Seed:        7,
	}
}

func TestKVBaseline(t *testing.T) {
	res, err := RunKV(kvOpts(core.ModeNone, 1, workload.YCSBA))
	if err != nil {
		t.Fatalf("run: %v (res=%+v)", err, res)
	}
	if res.Ops != 60 {
		t.Fatalf("ops = %d, want 60", res.Ops)
	}
	if res.Corruptions != 0 || res.Errors != 0 {
		t.Fatalf("fault-free run saw %d corruptions, %d errors", res.Corruptions, res.Errors)
	}
	if res.Throughput <= 0 {
		t.Fatalf("throughput = %v", res.Throughput)
	}
}

func TestKVLCDMR(t *testing.T) {
	res, err := RunKV(kvOpts(core.ModeLC, 2, workload.YCSBA))
	if err != nil {
		t.Fatalf("run: %v (res=%+v)", err, res)
	}
	if res.Ops != 60 || res.Corruptions != 0 || res.Errors != 0 {
		t.Fatalf("bad result: %+v", res)
	}
	if res.HaltReason != "" {
		t.Fatalf("halted: %s", res.HaltReason)
	}
}

func TestKVLCTMR(t *testing.T) {
	res, err := RunKV(kvOpts(core.ModeLC, 3, workload.YCSBB))
	if err != nil {
		t.Fatalf("run: %v (res=%+v)", err, res)
	}
	if res.Ops != 60 || res.Corruptions != 0 {
		t.Fatalf("bad result: %+v", res)
	}
}

func TestKVCCDMR(t *testing.T) {
	res, err := RunKV(kvOpts(core.ModeCC, 2, workload.YCSBA))
	if err != nil {
		t.Fatalf("run: %v (res=%+v)", err, res)
	}
	if res.Ops != 60 || res.Corruptions != 0 || res.Errors != 0 {
		t.Fatalf("bad result: %+v", res)
	}
}

func TestKVCCArmCompilerAssisted(t *testing.T) {
	opts := kvOpts(core.ModeCC, 2, workload.YCSBC)
	opts.System.Profile = machine.Arm()
	res, err := RunKV(opts)
	if err != nil {
		t.Fatalf("run: %v (res=%+v)", err, res)
	}
	if res.Ops != 60 || res.Corruptions != 0 {
		t.Fatalf("bad result: %+v", res)
	}
}

func TestKVLCSlowerThanBase(t *testing.T) {
	base, err := RunKV(kvOpts(core.ModeNone, 1, workload.YCSBA))
	if err != nil {
		t.Fatal(err)
	}
	lc, err := RunKV(kvOpts(core.ModeLC, 2, workload.YCSBA))
	if err != nil {
		t.Fatal(err)
	}
	if lc.Throughput >= base.Throughput {
		t.Fatalf("LC-D throughput %.2f >= base %.2f; replication should cost something",
			lc.Throughput, base.Throughput)
	}
}

func TestKVAllWorkloads(t *testing.T) {
	for _, kind := range workload.AllKinds() {
		res, err := RunKV(kvOpts(core.ModeLC, 2, kind))
		if err != nil {
			t.Fatalf("workload %v: %v (res=%+v)", kind, err, res)
		}
		if res.Ops != 60 {
			t.Fatalf("workload %v: ops = %d", kind, res.Ops)
		}
	}
}

func TestKVSigConfigs(t *testing.T) {
	for _, sig := range []core.SigConfig{core.SigIO, core.SigArgs, core.SigSync} {
		opts := kvOpts(core.ModeLC, 2, workload.YCSBA)
		opts.System.Sig = sig
		res, err := RunKV(opts)
		if err != nil {
			t.Fatalf("sig %v: %v (res=%+v)", sig, err, res)
		}
		if res.Ops != 60 || res.Corruptions != 0 {
			t.Fatalf("sig %v: bad result %+v", sig, res)
		}
	}
}

func TestKVClientRetransmits(t *testing.T) {
	opts := kvOpts(core.ModeLC, 2, workload.YCSBA)
	opts.RetryCycles = 200_000
	run, err := NewKV(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Let the load phase start, then steal a frame from the RX mailbox
	// (simulating the loss during a failover): the client must retry it.
	run.StepChunk(50_000)
	m := run.Sys.Machine()
	_ = m.Mem().WriteU(run.NIC.RxFlagPA(), 8, 0) // drop the in-flight frame
	res, err := run.Run()
	if err != nil {
		t.Fatalf("run after frame loss: %v (res=%+v)", err, res)
	}
	if res.Ops != opts.Operations {
		t.Fatalf("ops = %d, want %d", res.Ops, opts.Operations)
	}
	if res.Corruptions != 0 {
		t.Fatalf("corruptions after retry: %d", res.Corruptions)
	}
}

func TestThroughputZeroCycles(t *testing.T) {
	// A run phase that consumed no cycles (instant halt) must report 0,
	// not the NaN/Inf of a bare division, which poisons stats aggregation.
	if got := throughput(10, 0); got != 0 {
		t.Fatalf("throughput(10, 0) = %v, want 0", got)
	}
	if got := throughput(0, 0); got != 0 {
		t.Fatalf("throughput(0, 0) = %v, want 0", got)
	}
	if got := throughput(50, 1_000_000); got != 50 {
		t.Fatalf("throughput(50, 1e6) = %v, want 50 ops/Mcycle", got)
	}
}
