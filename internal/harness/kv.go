// Package harness assembles complete benchmark systems: the replicated
// key-value server (kvapp) behind the simulated NIC, driven by a
// YCSB-style closed-loop client — the moral equivalent of the paper's
// Redis + lwIP stack under load from dedicated generator machines (§V-B).
package harness

import (
	"errors"
	"fmt"
	"slices"

	"rcoe/internal/core"
	"rcoe/internal/device"
	"rcoe/internal/netstack"
	"rcoe/internal/workload"
)

// NICLine is the NIC's interrupt line (line 0 is the preemption timer).
const NICLine = 1

// nicMMIOBase places the NIC register window well above RAM.
const nicMMIOBase = 0xF000_0000

// KVOptions configures a key-value benchmark run.
type KVOptions struct {
	// System is the replication configuration.
	System core.Config
	// Workload is the YCSB mix.
	Workload workload.Kind
	// Records is the preloaded record count; Operations the run-phase
	// operation count.
	Records    uint64
	Operations uint64
	// Slots is the server hash-table size (power of two, > Records).
	Slots uint64
	// TraceOutput controls FT_Add_Trace on responses (Table VII's -N
	// configurations disable it).
	TraceOutput bool
	// Window is the number of outstanding requests the client keeps in
	// flight.
	Window int
	// Seed makes the request stream deterministic.
	Seed uint64
	// MaxCycles bounds the run.
	MaxCycles uint64
	// RetryCycles is the client's retransmission timeout; requests lost
	// during a primary failover are retried like any network loss.
	RetryCycles uint64
	// RetryBackoff doubles the retransmission timeout on every retry of a
	// request (capped at 8x), so a client riding out a downgrade or
	// re-integration window does not flood the recovering server.
	RetryBackoff bool
	// MaxRetries overrides the per-request retry budget (default 5);
	// exceeding it surfaces as a client-visible error.
	MaxRetries int
	// WindowCycles, when nonzero on a system that records metrics
	// (System.Trace.Enabled), observes the completed operations of every
	// fixed-size cycle window into the kv-window-ops histogram — the
	// availability signal fault campaigns read off the snapshot.
	WindowCycles uint64
}

// KVResult reports one run's outcome.
type KVResult struct {
	// Ops is the number of completed run-phase operations and Cycles the
	// machine cycles the run phase consumed; Throughput is ops per
	// million cycles.
	Ops        uint64
	Cycles     uint64
	Throughput float64
	// Corruptions counts CRC-mismatched GET responses ("YCSB corrup"),
	// Errors other client-visible failures ("YCSB errors").
	Corruptions uint64
	Errors      uint64
	// Finished reports whether the server exited cleanly; HaltReason is
	// set when the system fail-stopped.
	Finished   bool
	HaltReason string
	Detections []core.Detection
	Stats      core.Stats
}

// KVRun is a constructed, not-yet-run benchmark system, exposed so fault
// campaigns can interpose an injector between steps. It is the degenerate
// cluster: one Node plus the closed-loop client.
type KVRun struct {
	Sys *core.System
	NIC *device.NIC
	Gen *workload.Generator

	node        *Node
	opts        KVOptions
	outstanding map[uint32]*pendingReq
	finalIDs    map[uint32]bool // last request of each run-phase op
	queue       []netstack.Request
	loadLeft    int
	opsDone     uint64
	opsSent     uint64
	startCyc    uint64
	endCyc      uint64
	winNext     uint64
	winLastOps  uint64
	res         KVResult
}

// pendingReq tracks one in-flight request for validation and retry.
type pendingReq struct {
	frame   []byte
	sentAt  uint64
	isGet   bool
	isLoad  bool
	opFinal bool
	retries int
}

// ErrClientStall is returned when the client makes no progress for an
// extended period without the system having halted (an undetected hang —
// one of the paper's uncontrolled-error outcomes).
var ErrClientStall = errors.New("harness: client stalled")

// NewKV builds the system, server program and client state.
func NewKV(opts KVOptions) (*KVRun, error) {
	if opts.Window <= 0 {
		// Deep enough that the server, not the load generator, is the
		// bottleneck (the paper verifies the same for its YCSB clients).
		opts.Window = 8
	}
	if opts.Slots == 0 {
		opts.Slots = nextPow2(opts.Records * 4)
	}
	if opts.MaxCycles == 0 {
		opts.MaxCycles = 2_000_000_000
	}
	totalReqs := opts.Records + opts.Operations
	if opts.Workload == workload.YCSBF {
		// Read-modify-writes issue two requests per op; over-provision
		// the server's exit budget and stop injecting when ops are done.
		totalReqs += opts.Operations
	}
	node, err := NewNode(NodeOptions{
		System:        opts.System,
		Slots:         opts.Slots,
		RequestBudget: totalReqs,
		TraceOutput:   opts.TraceOutput,
	})
	if err != nil {
		return nil, err
	}
	run := &KVRun{
		Sys:         node.Sys(),
		NIC:         node.NIC(),
		Gen:         workload.NewGenerator(opts.Workload, opts.Records, opts.Seed),
		node:        node,
		opts:        opts,
		outstanding: make(map[uint32]*pendingReq),
		finalIDs:    make(map[uint32]bool),
	}
	run.queue = append(run.queue, run.Gen.LoadRequests()...)
	run.loadLeft = len(run.queue)
	return run, nil
}

func nextPow2(v uint64) uint64 {
	p := uint64(64)
	for p < v {
		p <<= 1
	}
	return p
}

// fill keeps the client window full and retransmits timed-out requests.
func (r *KVRun) fill() {
	now := r.Sys.Machine().Now()
	retry := r.opts.RetryCycles
	if retry == 0 {
		retry = 4_000_000
	}
	maxRetries := r.opts.MaxRetries
	if maxRetries <= 0 {
		maxRetries = 5
	}
	// Walk the window in request-ID order: map iteration order would make
	// the retransmit sequence — and with it the whole simulation — vary
	// from run to run whenever two requests time out in the same pass.
	ids := make([]uint32, 0, len(r.outstanding))
	for id := range r.outstanding {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		p := r.outstanding[id]
		timeout := retry
		if r.opts.RetryBackoff && p.retries > 0 {
			shift := p.retries
			if shift > 3 {
				shift = 3
			}
			timeout = retry << uint(shift)
		}
		if now-p.sentAt < timeout {
			continue
		}
		if p.retries >= maxRetries {
			// Persistent loss: surface as a client-visible error.
			delete(r.outstanding, id)
			r.res.Errors++
			if p.isLoad {
				r.loadLeft--
			}
			continue
		}
		p.retries++
		p.sentAt = now
		r.NIC.Inject(p.frame)
	}
	for len(r.outstanding) < r.opts.Window {
		if len(r.queue) == 0 {
			if r.loadLeft > 0 && len(r.outstanding) > 0 {
				return
			}
			if r.opsSent >= r.opts.Operations {
				return
			}
			ops := r.Gen.Next()
			r.opsSent++
			for i, req := range ops {
				if i == len(ops)-1 {
					r.finalIDs[req.ReqID] = true
				}
				r.queue = append(r.queue, req)
			}
		}
		req := r.queue[0]
		r.queue = r.queue[1:]
		frame, err := netstack.EncodeRequest(req)
		if err != nil {
			r.res.Errors++
			continue
		}
		r.outstanding[req.ReqID] = &pendingReq{
			frame:   frame,
			sentAt:  now,
			isGet:   req.Op == netstack.OpGet,
			isLoad:  uint64(req.ReqID) <= r.opts.Records,
			opFinal: r.finalIDs[req.ReqID],
		}
		delete(r.finalIDs, req.ReqID)
		r.NIC.Inject(frame)
	}
}

// drain processes responses, validating CRCs on GET values; duplicate
// responses to retransmitted requests are ignored.
func (r *KVRun) drain() {
	for _, frame := range r.NIC.TakeResponses() {
		resp, err := netstack.DecodeResponse(frame)
		if err != nil {
			r.res.Errors++
			continue
		}
		p, ok := r.outstanding[resp.ReqID]
		if !ok {
			continue // duplicate of a retried request
		}
		delete(r.outstanding, resp.ReqID)
		if p.isLoad {
			r.loadLeft--
			if r.loadLeft == 0 {
				// Run phase starts now.
				r.startCyc = r.Sys.Machine().Now()
			}
			continue
		}
		if p.isGet {
			switch {
			case resp.Status != netstack.StatusOK:
				r.res.Errors++
			case !workload.CheckValue(resp.Value):
				r.res.Corruptions++
			}
		}
		if p.opFinal {
			r.opsDone++
		}
	}
}

// Node returns the underlying server node.
func (r *KVRun) Node() *Node { return r.node }

// Done reports whether the run phase completed.
func (r *KVRun) Done() bool {
	return r.loadLeft == 0 && r.opsDone >= r.opts.Operations
}

// LoadPhaseDone reports whether the preload phase completed (every record
// inserted and acknowledged). Warm-start campaigns checkpoint here: the
// run phase beyond this point is where faults are injected.
func (r *KVRun) LoadPhaseDone() bool { return r.loadLeft == 0 }

// StepChunk advances the machine by n cycles, pumping the client.
func (r *KVRun) StepChunk(n uint64) {
	r.fill()
	r.Sys.RunCycles(n)
	r.drain()
	r.observeWindows()
}

// observeWindows feeds per-window completed-op counts into the system's
// kv-window-ops histogram. Windows start at the first run-phase op so the
// load phase does not pollute the throughput signal.
func (r *KVRun) observeWindows() {
	met := r.Sys.Metrics()
	if met == nil || r.opts.WindowCycles == 0 || r.startCyc == 0 {
		return
	}
	now := r.Sys.Machine().Now()
	if r.winNext == 0 {
		r.winNext = r.startCyc + r.opts.WindowCycles
		r.winLastOps = 0
	}
	for now >= r.winNext {
		met.KVWindowOps.Observe(r.opsDone - r.winLastOps)
		r.winLastOps = r.opsDone
		r.winNext += r.opts.WindowCycles
	}
}

// Run drives the system to completion and returns the result.
func (r *KVRun) Run() (KVResult, error) {
	m := r.Sys.Machine()
	deadline := m.Now() + r.opts.MaxCycles
	lastProgress := m.Now()
	lastOps := uint64(0)
	for !r.Done() {
		if halted, reason := r.Sys.Halted(); halted {
			r.res.HaltReason = reason
			break
		}
		if m.Now() > deadline {
			break
		}
		r.StepChunk(2_000)
		progress := r.opsDone + uint64(len(r.outstanding))
		if progress != lastOps {
			lastOps = progress
			lastProgress = m.Now()
		} else if m.Now()-lastProgress > 80_000_000 {
			r.finalize()
			return r.res, fmt.Errorf("%w after %d ops", ErrClientStall, r.opsDone)
		}
	}
	if r.Done() {
		// The run phase ends here; the drain below only lets the server
		// consume its remaining request budget and exit (it may not, for
		// mixes whose op count over-provisions the budget) and must not
		// count against throughput.
		r.endCyc = m.Now()
		_ = r.Sys.Run(20_000_000)
	}
	r.finalize()
	return r.res, nil
}

func (r *KVRun) finalize() {
	r.res.Ops = r.opsDone
	end := r.endCyc
	if end == 0 {
		end = r.Sys.Machine().Now()
	}
	r.res.Cycles, r.res.Throughput = 0, 0
	if r.startCyc > 0 && end > r.startCyc {
		r.res.Cycles = end - r.startCyc
	}
	r.res.Throughput = throughput(r.res.Ops, r.res.Cycles)
	r.res.Finished = r.Sys.Finished()
	if halted, reason := r.Sys.Halted(); halted {
		r.res.HaltReason = reason
	}
	r.res.Detections = r.Sys.Detections()
	r.res.Stats = r.Sys.Stats()
}

// throughput converts an op count over a cycle span into ops per million
// cycles. A zero-cycle span (the server halted before the run phase, or
// finalize ran before the first op) reports 0 rather than the NaN/Inf a
// bare division would produce — those poison every downstream stats
// aggregation they touch.
func throughput(ops, cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(ops) / (float64(cycles) / 1e6)
}

// Snapshot returns the current result counters (fault campaigns classify
// mid-run).
func (r *KVRun) Snapshot() KVResult {
	r.finalize()
	return r.res
}

// RunKV is the one-call convenience wrapper.
func RunKV(opts KVOptions) (KVResult, error) {
	run, err := NewKV(opts)
	if err != nil {
		return KVResult{}, err
	}
	return run.Run()
}
