package harness

import (
	"slices"

	"rcoe/internal/netstack"
	"rcoe/internal/snapshot"
)

// This file implements snapshot.Snapshotter for a full benchmark run: the
// closed-loop client's host-side state (window, retry queue, phase
// counters) plus the generator position, layered over the replicated
// system's own sections. The NIC serializes through the machine's
// stateful-device walk; the server state lives in simulated RAM.
//
// Restore contract (as everywhere in the subsystem): build the target
// through the same path — NewKV with behaviourally identical options —
// then restore. Option mismatches return snapshot.ErrIncompatible.

// SaveState implements snapshot.Snapshotter.
func (r *KVRun) SaveState(w *snapshot.Writer) error {
	e := w.Section("harness.meta")
	e.Int(int(r.opts.Workload))
	e.U64(r.opts.Records)
	e.U64(r.opts.Operations)
	e.U64(r.opts.Slots)
	e.Bool(r.opts.TraceOutput)
	e.Int(r.opts.Window)
	e.U64(r.opts.Seed)
	e.U64(r.opts.RetryCycles)
	e.Bool(r.opts.RetryBackoff)
	e.Int(r.opts.MaxRetries)
	e.U64(r.opts.WindowCycles)

	e = w.Section("harness")
	ids := make([]uint32, 0, len(r.outstanding))
	for id := range r.outstanding {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	e.Int(len(ids))
	for _, id := range ids {
		p := r.outstanding[id]
		e.U64(uint64(id))
		e.Bytes(p.frame)
		e.U64(p.sentAt)
		e.Bool(p.isGet)
		e.Bool(p.isLoad)
		e.Bool(p.opFinal)
		e.Int(p.retries)
	}
	finals := make([]uint32, 0, len(r.finalIDs))
	for id := range r.finalIDs {
		finals = append(finals, id)
	}
	slices.Sort(finals)
	e.Int(len(finals))
	for _, id := range finals {
		e.U64(uint64(id))
	}
	e.Int(len(r.queue))
	for _, req := range r.queue {
		saveRequest(e, req)
	}
	e.Int(r.loadLeft)
	e.U64(r.opsDone)
	e.U64(r.opsSent)
	e.U64(r.startCyc)
	e.U64(r.endCyc)
	e.U64(r.winNext)
	e.U64(r.winLastOps)
	e.U64(r.res.Corruptions)
	e.U64(r.res.Errors)

	r.Gen.SaveState(w.Section("harness.gen"))

	return r.node.SaveState(w)
}

func saveRequest(e *snapshot.Enc, req netstack.Request) {
	e.U64(uint64(req.Op))
	e.U64(uint64(req.ReqID))
	e.Bytes(req.Key)
	e.Bytes(req.Value)
	e.Int(req.ScanCount)
}

func loadRequest(d *snapshot.Dec) netstack.Request {
	return netstack.Request{
		Op:        byte(d.U64()),
		ReqID:     uint32(d.U64()),
		Key:       d.Bytes(),
		Value:     d.Bytes(),
		ScanCount: d.Int(),
	}
}

// LoadState implements snapshot.Snapshotter.
func (r *KVRun) LoadState(snap *snapshot.Snapshot) error {
	if err := r.verifyMeta(snap); err != nil {
		return err
	}
	if err := r.node.LoadState(snap); err != nil {
		return err
	}
	d, err := snap.Section("harness")
	if err != nil {
		return err
	}
	nout := d.Int()
	outstanding := make(map[uint32]*pendingReq, maxIntH(nout, 0))
	for i := 0; i < nout && d.Err() == nil; i++ {
		id := uint32(d.U64())
		outstanding[id] = &pendingReq{
			frame:   d.Bytes(),
			sentAt:  d.U64(),
			isGet:   d.Bool(),
			isLoad:  d.Bool(),
			opFinal: d.Bool(),
			retries: d.Int(),
		}
	}
	nfin := d.Int()
	finalIDs := make(map[uint32]bool, maxIntH(nfin, 0))
	for i := 0; i < nfin && d.Err() == nil; i++ {
		finalIDs[uint32(d.U64())] = true
	}
	nq := d.Int()
	queue := make([]netstack.Request, 0, maxIntH(nq, 0))
	for i := 0; i < nq && d.Err() == nil; i++ {
		queue = append(queue, loadRequest(d))
	}
	loadLeft := d.Int()
	opsDone, opsSent := d.U64(), d.U64()
	startCyc, endCyc := d.U64(), d.U64()
	winNext, winLastOps := d.U64(), d.U64()
	corruptions, errors := d.U64(), d.U64()
	if err := d.Close(); err != nil {
		return err
	}

	r.outstanding = outstanding
	r.finalIDs = finalIDs
	r.queue = queue
	r.loadLeft = loadLeft
	r.opsDone = opsDone
	r.opsSent = opsSent
	r.startCyc = startCyc
	r.endCyc = endCyc
	r.winNext = winNext
	r.winLastOps = winLastOps
	r.res = KVResult{Corruptions: corruptions, Errors: errors}

	g, err := snap.Section("harness.gen")
	if err != nil {
		return err
	}
	if err := r.Gen.LoadState(g); err != nil {
		return err
	}
	return g.Close()
}

// verifyMeta checks the behavioural option digest against this run's.
func (r *KVRun) verifyMeta(snap *snapshot.Snapshot) error {
	d, err := snap.Section("harness.meta")
	if err != nil {
		return err
	}
	checks := []struct {
		field  string
		target interface{}
		snap   interface{}
	}{
		{"workload", int(r.opts.Workload), d.Int()},
		{"records", r.opts.Records, d.U64()},
		{"operations", r.opts.Operations, d.U64()},
		{"slots", r.opts.Slots, d.U64()},
		{"trace-output", r.opts.TraceOutput, d.Bool()},
		{"window", r.opts.Window, d.Int()},
		{"seed", r.opts.Seed, d.U64()},
		{"retry-cycles", r.opts.RetryCycles, d.U64()},
		{"retry-backoff", r.opts.RetryBackoff, d.Bool()},
		{"max-retries", r.opts.MaxRetries, d.Int()},
		{"window-cycles", r.opts.WindowCycles, d.U64()},
	}
	if err := d.Close(); err != nil {
		return err
	}
	for _, c := range checks {
		if c.target != c.snap {
			return snapshot.IncompatibleError("harness.meta", c.field, c.target, c.snap)
		}
	}
	return nil
}

func maxIntH(a, b int) int {
	if a > b {
		return a
	}
	return b
}
