package faults

import (
	"context"
	"fmt"

	"rcoe/internal/exp"
	"rcoe/internal/harness"
	"rcoe/internal/machine"
)

// HardCampaignOptions configures the hard-fault characterization study:
// the KV workload run under every selected fault class, with outcomes
// tallied per class for the SDC / detected-corrected / detected-
// uncorrected / masked taxonomy.
type HardCampaignOptions struct {
	// KV is the benchmark system under test. Replication mode, masking,
	// and structural decorrelation all ride on KV.System.
	KV harness.KVOptions
	// Classes selects the fault models; empty selects all.
	Classes []FaultClass
	// TrialsPerClass is the number of independent injection runs per class.
	TrialsPerClass int
	// TargetAllReplicas widens the memory-fault target from the primary's
	// user memory to every replica's (the Arm-study variant).
	TargetAllReplicas bool
	// InjectAfterCycles delays point injections (transient, stuck-at,
	// burst) past system warm-up so faults land during service, not boot.
	InjectAfterCycles uint64
	// FaultEveryCycles is the injection period for the point classes; a
	// trial keeps injecting until something observable happens or the
	// workload completes (default 2_000, the aggressive Table VII rate).
	FaultEveryCycles uint64
	// MaxFaults bounds the injections per trial for transient and burst
	// (default 4_000). Stuck-at trials accumulate permanent faults from
	// boot, capped at 128 stuck bits — a manufacturing-defect/aging
	// model that also bounds the per-access assertion cost.
	MaxFaults int
	// Seed makes the whole campaign deterministic.
	Seed uint64
	// WarmStart forks every trial from a single post-preload checkpoint
	// instead of re-simulating boot and the load phase per trial. The
	// template is snapshotted before any fault device is armed; trials arm
	// their own injectors after restore. The workload stream becomes
	// common across trials (seeded from Seed); see warmstart.go.
	WarmStart bool
	// Template, when set, is a pre-built checkpoint from WarmTemplate
	// (same KV options and Seed) reused instead of building one; it
	// implies WarmStart.
	Template []byte
	// Context, when set, cancels the campaign between trials.
	Context context.Context
	// Workers overrides the engine's host worker-pool size (0 = default).
	Workers int
	// Progress, when set, is called after each class's trials finish with
	// the number of classes done so far. It runs on the caller's
	// goroutine, between engine runs, so it may write to stderr freely.
	Progress func(class FaultClass, done, total int)
	// TrialProgress, when set, receives the engine's per-trial progress
	// for the class currently running (Done/Total count that class's
	// trials) so CLIs can print k/N lines. Calls are serialised but may
	// come from any worker goroutine.
	TrialProgress func(class FaultClass, p exp.Progress)
}

// burstBits is the number of bit flips a burst injection lands within one
// 64-byte line — the correlated multi-bit model of §V-C3.
const burstBits = 4

// deviceCorruptEvery corrupts every Nth NIC RX frame in device-class
// trials: frequent enough to hit short runs, sparse enough that most
// requests survive to exercise the full pipeline.
const deviceCorruptEvery = 3

// intermittentFaults is the number of independent duty-cycled faults an
// intermittent-class trial arms; one marginal cell rarely lands in live
// state, a population models a marginal rank.
const intermittentFaults = 64

// HardCampaign runs TrialsPerClass injection trials for each selected
// class and tallies outcomes per class. Trials fan out across host cores
// on the experiment engine; per-trial seeds come from a pre-engine
// xorshift chain off the campaign seed, so the tallies are identical at
// any worker count.
func HardCampaign(opts HardCampaignOptions) (map[FaultClass]*Tally, error) {
	classes := opts.Classes
	if len(classes) == 0 {
		classes = AllClasses()
	}
	if opts.TrialsPerClass == 0 {
		opts.TrialsPerClass = 20
	}
	tmpl := opts.Template
	if opts.WarmStart && tmpl == nil {
		var err error
		if tmpl, err = WarmTemplate(opts.KV, opts.Seed); err != nil {
			return nil, err
		}
	}
	r := newRNG(opts.Seed)
	out := make(map[FaultClass]*Tally, len(classes))
	for ci, class := range classes {
		jobs := make([]exp.Job[TrialResult], opts.TrialsPerClass)
		for i := range jobs {
			class := class
			jobs[i] = exp.Job[TrialResult]{
				Name: fmt.Sprintf("%s-trial[%d]", class, i),
				Seed: r.next(),
				Run: func(_ context.Context, seed uint64) (TrialResult, error) {
					return hardTrial(opts, class, seed, tmpl)
				},
			}
		}
		var onTrial func(exp.Progress)
		if opts.TrialProgress != nil {
			class := class
			onTrial = func(p exp.Progress) { opts.TrialProgress(class, p) }
		}
		results, err := exp.Run(exp.Options{
			Workers: opts.Workers, Context: opts.Context, OnProgress: onTrial,
		}, jobs)
		if err != nil {
			return nil, err
		}
		trials, err := exp.Values(results)
		if err != nil {
			return nil, err
		}
		tally := NewTally()
		for _, res := range trials {
			tally.Add(res.Outcome, res.Injected)
		}
		out[class] = tally
		if opts.Progress != nil {
			opts.Progress(class, ci+1, len(classes))
		}
	}
	return out, nil
}

// maxStuckBits caps a stuck-at trial's accumulated permanent faults.
const maxStuckBits = 128

// HardTrial performs one injection run for the given fault class: drive
// the KV workload, arm or inject the fault, and classify the first
// observable consequence. Standing faults (intermittent, device) are
// armed before the first step so their internal clocks are deterministic
// functions of the trial seed; point faults (transient, stuck-at, burst)
// inject periodically after the warm-up window.
func HardTrial(opts HardCampaignOptions, class FaultClass, seed uint64) (TrialResult, error) {
	return hardTrial(opts, class, seed, nil)
}

func hardTrial(opts HardCampaignOptions, class FaultClass, seed uint64, tmpl []byte) (TrialResult, error) {
	if opts.InjectAfterCycles == 0 {
		opts.InjectAfterCycles = 200_000
	}
	if opts.FaultEveryCycles == 0 {
		opts.FaultEveryCycles = 2_000
	}
	if opts.MaxFaults == 0 {
		opts.MaxFaults = 4_000
	}
	run, err := trialRun(opts.KV, opts.Seed, seed, tmpl)
	if err != nil {
		return TrialResult{}, err
	}
	r := newRNG(seed)
	mem := run.Sys.Machine().Mem()
	regions := targetRegions(run.Sys, opts.TargetAllReplicas, false)
	var injected uint64

	switch class {
	case ClassIntermittent:
		for i := 0; i < intermittentFaults; i++ {
			addr, bit := pickTarget(r, regions)
			run.Sys.Machine().AddDevice(&machine.IntermittentFault{
				Addr: addr, Bit: bit, Value: uint(r.next() & 1),
				OnCycles: 40_000, OffCycles: 40_000,
				Seed: r.next() | 1,
			})
			injected++
		}
	case ClassDevice:
		run.NIC.CorruptRxEvery = deviceCorruptEvery
		run.NIC.CorruptSeed = r.next() | 1
	}
	// count reports total injections so far; device-class corruption
	// happens inside the NIC, so the NIC's own counter is authoritative.
	count := func() uint64 {
		if class == ClassDevice {
			return run.NIC.RxCorrupted
		}
		return injected
	}

	// Point classes inject on a period. Stuck-at bits accumulate from
	// boot — the manufacturing-defect/aging model — and cap the total,
	// since each stuck bit persists for the rest of the trial and taxes
	// every access to its range.
	pointClass := class == ClassTransient || class == ClassStuckAt || class == ClassBurst
	period := opts.FaultEveryCycles
	maxFaults := opts.MaxFaults
	if class == ClassStuckAt && maxFaults > maxStuckBits {
		maxFaults = maxStuckBits
	}
	step := period
	if !pointClass {
		step = 25_000
	}

	deadline := run.Sys.Machine().Now() + kvTrialBudget(opts.KV)
	injectAt := run.Sys.Machine().Now() + opts.InjectAfterCycles
	if class == ClassStuckAt {
		injectAt = run.Sys.Machine().Now()
	}
	faults := 0
	for !run.Done() {
		if halted, _ := run.Sys.Halted(); halted {
			break
		}
		if run.Sys.Machine().Now() > deadline {
			break
		}
		run.StepChunk(step)
		if pointClass && faults < maxFaults && run.Sys.Machine().Now() >= injectAt {
			faults++
			addr, bit := pickTarget(r, regions)
			switch class {
			case ClassTransient:
				if err := mem.FlipBit(addr, bit); err == nil {
					injected++
				}
			case ClassStuckAt:
				if err := mem.SetStuck(addr, bit, uint(r.next()&1)); err == nil {
					injected++
				}
			case ClassBurst:
				for b := 0; b < burstBits; b++ {
					a := addr + r.intn(64)
					if err := mem.FlipBit(a, uint(r.next()&7)); err == nil {
						injected++
					}
				}
			}
		}
		if out, decided := classify(run); decided {
			return TrialResult{Outcome: graceClassify(run, out), Injected: count()}, nil
		}
	}
	if out, decided := classify(run); decided {
		return TrialResult{Outcome: graceClassify(run, out), Injected: count()}, nil
	}
	if !run.Done() {
		return TrialResult{Outcome: OutcomeYCSBError, Injected: count()}, nil
	}
	return TrialResult{Outcome: OutcomeNone, Injected: count()}, nil
}
