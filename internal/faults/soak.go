package faults

import (
	"errors"
	"fmt"

	"rcoe/internal/core"
	"rcoe/internal/harness"
	"rcoe/internal/metrics"
	"rcoe/internal/workload"
)

// The chaos-soak campaign: where the single-shot studies (Tables VII-X)
// inject one fault class into one run, the soak drives an open-ended
// stream of randomized faults — memory flips, register flips, and hung
// replicas — against one long-lived TMR key-value service, re-integrating
// the removed replica after every downgrade. The campaign's invariants
// are the paper's availability claim made executable: every cycle's
// outcome is controlled (masked or no-effect, never an escape), and the
// client makes progress in every throughput window.

// ErrNoEjection is returned when an injected replica stall was not
// resolved by straggler ejection within the cycle budget.
var ErrNoEjection = errors.New("faults: stalled replica was not ejected")

// SoakFault names an injected fault class.
type SoakFault string

// Soak fault classes.
const (
	SoakMemFlip SoakFault = "mem-flip" // signature-accumulator bit flip
	SoakRegFlip SoakFault = "reg-flip" // live user-register bit flip
	SoakStall   SoakFault = "stall"    // replica stops making progress
)

// SoakOptions configures a chaos-soak campaign.
type SoakOptions struct {
	// System overrides the replication configuration; it must describe a
	// masking TMR system (defaults are filled in when zero).
	System core.Config
	// Cycles is the number of fault cycles to run (default 20).
	Cycles int
	// Records is the KV preload size (default 32).
	Records uint64
	// Seed makes the whole campaign deterministic.
	Seed uint64
	// WindowCycles is the availability-sampling window (default 2M); the
	// progress invariant requires nonzero client ops in every window.
	WindowCycles uint64
	// CycleBudget bounds the machine cycles one fault cycle may consume
	// waiting for a downgrade or re-integration (default 40M).
	CycleBudget uint64
	// Log, when set, receives one line per completed fault cycle.
	Log func(string)
}

// SoakCycle reports one fault cycle.
type SoakCycle struct {
	Index   int
	Fault   SoakFault
	Target  int // replica the fault was injected into
	Outcome Outcome
	// Downgraded/Reintegrated report whether the fault removed a replica
	// and whether TMR was restored afterwards.
	Downgraded   bool
	Reintegrated bool
	// Ejected reports whether removal went through straggler ejection
	// (barrier timeout) rather than a signature vote.
	Ejected bool
	// MachineCycles is the simulated time the cycle consumed.
	MachineCycles uint64
	// DetectLatency is the cycles from injection to the detection that
	// removed the replica (0 when the fault had no effect).
	DetectLatency uint64
	// DowngradeCost is the cycles the survivors were stalled by the
	// removal (Table X's downgrade cost for this cycle).
	DowngradeCost uint64
	// ReintegrationWindow is the cycles from the re-integration request
	// to the completed DMR->TMR upgrade.
	ReintegrationWindow uint64
	// Forensic is the flight-recorder divergence report captured at the
	// detection that removed the replica (nil when nothing was detected).
	Forensic *core.DivergenceReport
}

// SoakResult summarises a campaign.
type SoakResult struct {
	Cycles []SoakCycle
	Tally  *Tally
	// Windows is client throughput (ops per million cycles) in each
	// fixed-size window across the whole campaign; MinWindow is its
	// minimum.
	Windows   []float64
	MinWindow float64
	// Totals over the campaign.
	Ops            uint64
	Errors         uint64
	Corruptions    uint64
	Ejections      uint64
	Reintegrations uint64
	// Violations lists broken invariants (empty on a clean campaign).
	Violations []string
	// Forensics holds the divergence reports of every unexpected outcome
	// (uncontrolled cycle, halt, failed ejection/re-integration) so a
	// broken campaign ships its own flight-recorder evidence.
	Forensics []*core.DivergenceReport
	// Metrics is the system's final metrics snapshot (barrier waits, vote
	// latencies, detection latencies, window throughput, ...).
	Metrics metrics.Snapshot
}

// Ok reports whether the campaign held its invariants.
func (r *SoakResult) Ok() bool { return len(r.Violations) == 0 }

// soakState carries the windowed-throughput bookkeeping across cycles.
type soakState struct {
	run        *harness.KVRun
	res        *SoakResult
	windowLen  uint64
	nextWindow uint64
	windowOps  uint64
	lastOps    uint64
}

// pump advances the machine until cond holds (or the budget expires),
// maintaining the availability windows. It returns whether cond held.
func (st *soakState) pump(cond func() bool, budget uint64) bool {
	m := st.run.Sys.Machine()
	deadline := m.Now() + budget
	for !cond() {
		if halted, _ := st.run.Sys.Halted(); halted {
			return false
		}
		if m.Now() > deadline {
			return false
		}
		st.run.StepChunk(2_000)
		snap := st.run.Snapshot()
		st.windowOps += snap.Ops - st.lastOps
		st.lastOps = snap.Ops
		for st.nextWindow != 0 && m.Now() >= st.nextWindow {
			st.res.Windows = append(st.res.Windows,
				float64(st.windowOps)/(float64(st.windowLen)/1e6))
			st.windowOps = 0
			st.nextWindow += st.windowLen
		}
	}
	return true
}

// Soak runs the chaos-soak campaign.
func Soak(opts SoakOptions) (SoakResult, error) {
	if opts.Cycles == 0 {
		opts.Cycles = 20
	}
	if opts.Records == 0 {
		opts.Records = 32
	}
	if opts.WindowCycles == 0 {
		opts.WindowCycles = 2_000_000
	}
	if opts.CycleBudget == 0 {
		opts.CycleBudget = 40_000_000
	}
	sys := opts.System
	if sys.Mode == 0 || sys.Mode == core.ModeNone {
		sys.Mode = core.ModeLC
	}
	if sys.Replicas == 0 {
		sys.Replicas = 3
	}
	sys.Masking = true
	if sys.TickCycles == 0 {
		sys.TickCycles = 50_000
	}
	if sys.BarrierTimeout == 0 {
		// Short straggler budget: an injected stall must resolve well
		// within one availability window.
		sys.BarrierTimeout = 300_000
	}
	if sys.Replicas < 3 {
		return SoakResult{}, fmt.Errorf("faults: soak needs a TMR system, got %d replicas", sys.Replicas)
	}
	// The soak is a forensics campaign: always fly with the recorder on,
	// so every detection carries a first-divergence report and the final
	// result a metrics snapshot.
	if !sys.Trace.Enabled {
		sys.Trace = core.TraceConfig{Enabled: true}
	}

	run, err := harness.NewKV(harness.KVOptions{
		System:   sys,
		Workload: workload.YCSBA,
		Records:  opts.Records,
		// The service is open-ended: the operation budget is far beyond
		// what the campaign consumes, so the server never exits mid-soak.
		Operations:  1 << 40,
		TraceOutput: true,
		Seed:        opts.Seed | 1,
		// Frames lost while a replica is being ejected or re-integrated
		// are retried quickly, with backoff so the recovering server is
		// not flooded.
		RetryCycles:  250_000,
		RetryBackoff: true,
		MaxRetries:   12,
		// Feed the per-window KV-throughput histogram alongside the
		// campaign's own availability windows.
		WindowCycles: opts.WindowCycles,
	})
	if err != nil {
		return SoakResult{}, err
	}

	res := SoakResult{Tally: NewTally()}
	st := &soakState{run: run, res: &res, windowLen: opts.WindowCycles}
	r := newRNG(opts.Seed)

	// Load phase: windows (and invariants) start with the first run-phase
	// op, once the table is populated (nextWindow == 0 suppresses window
	// recording until then).
	if !st.pump(func() bool { return run.Snapshot().Ops >= 1 }, 200_000_000) {
		return res, fmt.Errorf("faults: soak load phase did not complete")
	}
	st.windowOps = 0
	st.nextWindow = run.Sys.Machine().Now() + st.windowLen

	for i := 0; i < opts.Cycles; i++ {
		cyc, err := soakCycle(st, r, i, opts.CycleBudget)
		res.Cycles = append(res.Cycles, cyc)
		res.Tally.Add(cyc.Outcome, 1)
		if opts.Log != nil {
			line := fmt.Sprintf("cycle %2d: %-8s replica %d -> %s (downgraded=%v reintegrated=%v)",
				i, cyc.Fault, cyc.Target, cyc.Outcome, cyc.Downgraded, cyc.Reintegrated)
			if cyc.Downgraded {
				line += fmt.Sprintf(" detect=%d downgrade=%d reint-window=%d",
					cyc.DetectLatency, cyc.DowngradeCost, cyc.ReintegrationWindow)
			}
			opts.Log(line)
		}
		if err != nil {
			finishSoak(st, &res)
			return res, err
		}
	}
	// Let the tail of the last cycle drain through one more window.
	st.pump(func() bool { return false }, opts.WindowCycles)
	finishSoak(st, &res)
	return res, nil
}

// finishSoak flushes counters and checks the campaign invariants.
func finishSoak(st *soakState, res *SoakResult) {
	snap := st.run.Snapshot()
	res.Ops = snap.Ops
	res.Errors = snap.Errors
	res.Corruptions = snap.Corruptions
	res.Ejections = snap.Stats.Ejections
	res.Reintegrations = snap.Stats.Reintegrations
	res.MinWindow = 0
	for i, w := range res.Windows {
		if i == 0 || w < res.MinWindow {
			res.MinWindow = w
		}
	}
	res.Metrics = st.run.Sys.MetricsSnapshot()
	if halted, reason := st.run.Sys.Halted(); halted {
		res.Violations = append(res.Violations, "system halted: "+reason)
		if rep := soakForensic(st.run.Sys, "system halted: "+reason); rep != nil {
			res.Forensics = append(res.Forensics, rep)
		}
	}
	if res.Corruptions > 0 {
		res.Violations = append(res.Violations,
			fmt.Sprintf("%d client-visible corruptions", res.Corruptions))
	}
	if res.Errors > 0 {
		res.Violations = append(res.Violations,
			fmt.Sprintf("%d client-visible errors", res.Errors))
	}
	for i, w := range res.Windows {
		if w == 0 {
			res.Violations = append(res.Violations,
				fmt.Sprintf("no client progress in window %d", i))
		}
	}
	for _, c := range res.Cycles {
		if c.Outcome.Observable() && !c.Outcome.Controlled() {
			res.Violations = append(res.Violations,
				fmt.Sprintf("cycle %d: uncontrolled outcome %s", c.Index, c.Outcome))
			if c.Forensic != nil {
				res.Forensics = append(res.Forensics, c.Forensic)
			}
		}
	}
}

// soakForensic returns the flight-recorder evidence for an unexpected
// outcome: the auto-captured divergence report if a detection froze one,
// otherwise a fresh explicit capture of the current system state.
func soakForensic(sys *core.System, reason string) *core.DivergenceReport {
	if rep := sys.TakeDivergenceReport(); rep != nil {
		return rep
	}
	rep, err := sys.CaptureForensics("soak: " + reason)
	if err != nil {
		return nil
	}
	return rep
}

// soakCycle injects one randomized fault, waits for the system to mask it
// (or establishes that it had no effect), re-integrates any removed
// replica, and classifies the cycle.
func soakCycle(st *soakState, r *rng, index int, budget uint64) (SoakCycle, error) {
	run := st.run
	sys := run.Sys
	m := sys.Machine()
	start := m.Now()
	preSnap := run.Snapshot()
	preEject := preSnap.Stats.Ejections

	cyc := SoakCycle{Index: index}
	switch r.intn(3) {
	case 0:
		cyc.Fault = SoakMemFlip
		cyc.Target = int(r.intn(uint64(sys.NumReplicas())))
		lay := sys.Replica(cyc.Target).K.Layout()
		if err := m.Mem().FlipBit(lay.SigPA()+8, uint(r.intn(8))); err != nil {
			return cyc, err
		}
	case 1:
		cyc.Fault = SoakRegFlip
		// Only non-primary targets: a corrupted primary may emit a wrong
		// response before the next vote, which the in-process client
		// (unlike the paper's remote YCSB clients) would observe
		// instantly — see graceClassify.
		cyc.Target = soakNonPrimary(sys, r)
		c := sys.Replica(cyc.Target).Core()
		c.Regs[1+r.intn(30)] ^= 1 << r.intn(64)
	default:
		cyc.Fault = SoakStall
		cyc.Target = int(r.intn(uint64(sys.NumReplicas())))
		sys.InjectStall(cyc.Target)
	}

	// Phase 1: wait for the fault to be masked (replica removed). A
	// register flip may land in dead state; after a bounded observation
	// period with no downgrade it classifies as no-effect.
	obsBudget := budget
	if cyc.Fault == SoakRegFlip && obsBudget > 6_000_000 {
		// Real divergence surfaces within a few ticks plus the barrier
		// timeout; do not burn the full budget on dud flips.
		obsBudget = 6_000_000
	}
	downgraded := st.pump(func() bool { return sys.AliveCount() < 3 }, obsBudget)
	if !downgraded {
		if halted, reason := sys.Halted(); halted {
			cyc.Outcome = soakOutcome(st, preSnap, cyc)
			cyc.Forensic = soakForensic(sys, "system halted: "+reason)
			return cyc, fmt.Errorf("faults: cycle %d: system halted: %s", index, reason)
		}
		if cyc.Fault == SoakStall {
			cyc.Outcome = OutcomeBarrierTimeout
			cyc.Forensic = soakForensic(sys, "straggler not ejected")
			return cyc, fmt.Errorf("%w: cycle %d, replica %d", ErrNoEjection, index, cyc.Target)
		}
		cyc.Outcome = soakOutcome(st, preSnap, cyc)
		cyc.MachineCycles = m.Now() - start
		return cyc, nil
	}
	cyc.Downgraded = true
	postSnap := run.Snapshot()
	cyc.Ejected = postSnap.Stats.Ejections > preEject
	cyc.DowngradeCost = postSnap.Stats.DowngradeCycles
	// Detection latency: injection happened at cycle start; the removal's
	// detection record carries the cycle it fired at.
	if dets := postSnap.Detections; len(dets) > 0 {
		if det := dets[len(dets)-1]; det.Cycle >= start {
			cyc.DetectLatency = det.Cycle - start
			if met := sys.Metrics(); met != nil {
				met.DetectLatency.Observe(cyc.DetectLatency)
			}
		}
	}
	// Drain the auto-captured divergence report so the next cycle's
	// detection can freeze a fresh one (first capture wins).
	cyc.Forensic = sys.TakeDivergenceReport()

	// Phase 2: live re-integration of whichever replica was removed.
	removed := -1
	for rid := 0; rid < sys.NumReplicas(); rid++ {
		if !sys.Alive(rid) {
			removed = rid
		}
	}
	reqCycle := m.Now()
	if err := sys.RequestReintegrate(removed); err != nil {
		return cyc, fmt.Errorf("faults: cycle %d: %w", index, err)
	}
	target := run.Snapshot().Stats.Reintegrations + 1
	if !st.pump(func() bool { return run.Snapshot().Stats.Reintegrations >= target }, budget) {
		_, rerr := sys.ReintegrateOutcome()
		if cyc.Forensic == nil {
			cyc.Forensic = soakForensic(sys, "reintegration did not complete")
		}
		return cyc, fmt.Errorf("faults: cycle %d: reintegration of replica %d did not complete (err=%v)",
			index, removed, rerr)
	}
	cyc.Reintegrated = true
	cyc.ReintegrationWindow = m.Now() - reqCycle

	// Phase 3: settle — the restored TMR must vote cleanly for a while
	// before the next fault lands.
	settle := m.Now() + 2*uint64(sys.Config().TickCycles)
	if !st.pump(func() bool { return m.Now() >= settle }, budget) {
		return cyc, fmt.Errorf("faults: cycle %d: post-reintegration settle failed", index)
	}
	cyc.Outcome = soakOutcome(st, preSnap, cyc)
	cyc.MachineCycles = m.Now() - start
	return cyc, nil
}

// soakNonPrimary picks a random alive non-primary replica.
func soakNonPrimary(sys *core.System, r *rng) int {
	var ids []int
	for rid := 0; rid < sys.NumReplicas(); rid++ {
		if rid != sys.Primary() && sys.Alive(rid) {
			ids = append(ids, rid)
		}
	}
	return ids[r.intn(uint64(len(ids)))]
}

// soakOutcome classifies one cycle from the deltas it produced.
func soakOutcome(st *soakState, pre harness.KVResult, cyc SoakCycle) Outcome {
	snap := st.run.Snapshot()
	if snap.Corruptions > pre.Corruptions {
		return OutcomeYCSBCorruption
	}
	if snap.Errors > pre.Errors {
		return OutcomeYCSBError
	}
	if cyc.Downgraded {
		return OutcomeMasked
	}
	return OutcomeNone
}
