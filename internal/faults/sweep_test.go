package faults

import (
	"reflect"
	"strings"
	"testing"

	"rcoe/internal/core"
	"rcoe/internal/exp"
)

func TestSoakSweepDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) SoakSweepResult {
		res, err := SoakSweep(SoakSweepOptions{
			Soak:      SoakOptions{Cycles: 2, Seed: 99},
			Campaigns: 2,
			Workers:   workers,
		})
		if err != nil {
			t.Fatalf("sweep (workers=%d): %v (violations: %v)", workers, err, res.Violations)
		}
		if !res.Ok() {
			t.Fatalf("sweep (workers=%d) violated invariants: %v", workers, res.Violations)
		}
		return res
	}
	serial, parallel := run(1), run(2)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("sweep results depend on worker count:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}
	if len(serial.Campaigns) != 2 || len(serial.Seeds) != 2 {
		t.Fatalf("sweep returned %d campaigns, %d seeds", len(serial.Campaigns), len(serial.Seeds))
	}
	if serial.Seeds[0] != exp.DeriveSeed(99, 0) || serial.Seeds[1] != exp.DeriveSeed(99, 1) {
		t.Fatalf("per-campaign seeds not derived from the master: %#x", serial.Seeds)
	}
	if serial.Seeds[0] == serial.Seeds[1] {
		t.Fatal("campaigns share a seed")
	}
	// The merged tally must equal the sum of the per-campaign tallies.
	var cycles int
	var ops uint64
	for _, c := range serial.Campaigns {
		cycles += len(c.Cycles)
		ops += c.Ops
	}
	var tallied uint64
	for _, n := range serial.Tally.Counts {
		tallied += n
	}
	if int(tallied) != cycles {
		t.Fatalf("merged tally covers %d cycles, campaigns ran %d", tallied, cycles)
	}
	if serial.Ops != ops {
		t.Fatalf("sweep ops = %d, campaigns total %d", serial.Ops, ops)
	}
}

func TestSoakSweepPrefixesLogLines(t *testing.T) {
	var lines []string
	_, err := SoakSweep(SoakSweepOptions{
		Soak: SoakOptions{
			Cycles: 1,
			Seed:   7,
			Log:    func(line string) { lines = append(lines, line) },
		},
		Campaigns: 2,
		Workers:   1,
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want 2", len(lines))
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "c00: ") && !strings.HasPrefix(l, "c01: ") {
			t.Fatalf("log line missing campaign prefix: %q", l)
		}
	}
}

func TestSoakSweepRecordsCampaignErrors(t *testing.T) {
	// A DMR template makes every campaign refuse; the sweep must record
	// the violations and surface the lowest-index error.
	res, err := SoakSweep(SoakSweepOptions{
		Soak:      SoakOptions{System: core.Config{Mode: core.ModeLC, Replicas: 2}, Cycles: 1},
		Campaigns: 2,
		Workers:   2,
	})
	if err == nil {
		t.Fatal("sweep of refusing campaigns returned nil error")
	}
	if res.Ok() || len(res.Violations) != 2 {
		t.Fatalf("violations = %v, want one per campaign", res.Violations)
	}
}
