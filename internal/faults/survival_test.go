package faults

import (
	"testing"

	"rcoe/internal/core"
)

// TestSurvivalTMRMaskingSurvives: a masking TMR votes the permanently
// faulty replica out and completes the workload — the availability
// argument for n=3 against hard faults.
func TestSurvivalTMRMaskingSurvives(t *testing.T) {
	res, err := SurvivalTrial(SurvivalOptions{
		System:        core.Config{Mode: core.ModeLC, Replicas: 3, Masking: true},
		FaultyReplica: 2,
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Survived {
		t.Fatalf("masking TMR did not survive a permanent fault: %+v", res)
	}
	if res.Removals == 0 {
		t.Fatalf("no ejection happened; the fault was never detected: %+v", res)
	}
	if res.StuckBits == 0 {
		t.Fatalf("stuck bit disappeared — permanence broken")
	}
}

// TestSurvivalDMRFailStops: the same permanent fault under DMR can only be
// detected, not outvoted — the system fail-stops instead of serving on.
func TestSurvivalDMRFailStops(t *testing.T) {
	res, err := SurvivalTrial(SurvivalOptions{
		System:        core.Config{Mode: core.ModeLC, Replicas: 2},
		FaultyReplica: 1,
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Survived {
		t.Fatalf("plain DMR claimed to survive a permanent fault: %+v", res)
	}
	if res.HaltReason == "" {
		t.Fatalf("DMR stopped without a halt reason: %+v", res)
	}
}

// TestSurvivalReintegrationFutile is the property that distinguishes hard
// faults from transients: re-integrating the ejected replica copies fresh
// state over the stuck bit, the bit re-asserts, the replica re-diverges,
// and the system ejects it a second time — while still completing the
// workload.
func TestSurvivalReintegrationFutile(t *testing.T) {
	res, err := SurvivalTrial(SurvivalOptions{
		System:        core.Config{Mode: core.ModeLC, Replicas: 3, Masking: true},
		FaultyReplica: 2,
		Seed:          9,
		Reintegrate:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Survived {
		t.Fatalf("TMR did not survive the futile re-integration cycle: %+v", res)
	}
	if res.Reintegrations == 0 {
		t.Fatalf("re-integration never completed: %+v", res)
	}
	if res.Removals < 2 {
		t.Fatalf("re-integrated replica was not re-ejected (removals=%d): %+v",
			res.Removals, res)
	}
	if res.StuckBits == 0 {
		t.Fatalf("stuck bit vanished across re-integration")
	}
}
