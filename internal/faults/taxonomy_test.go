package faults

import (
	"math"
	"testing"
)

func TestOutcomeStringUnknown(t *testing.T) {
	if got := Outcome(0).String(); got != "outcome(0)" {
		t.Fatalf("zero outcome = %q", got)
	}
	if got := Outcome(99).String(); got != "outcome(99)" {
		t.Fatalf("unknown outcome = %q", got)
	}
	// Every defined outcome has a proper name, not the fallback.
	for o := OutcomeNone; o <= OutcomeMasked; o++ {
		if got := o.String(); len(got) == 0 || got[0] == 'o' && got[1] == 'u' {
			t.Fatalf("outcome %d missing name: %q", int(o), got)
		}
	}
}

func TestFaultClassAndCategoryStrings(t *testing.T) {
	for _, c := range AllClasses() {
		if got := c.String(); got == "" || got[0] == 'c' && got[1] == 'l' {
			t.Fatalf("class %d missing name: %q", int(c), got)
		}
	}
	if got := FaultClass(42).String(); got != "class(42)" {
		t.Fatalf("unknown class = %q", got)
	}
	for _, c := range AllCategories() {
		if got := c.String(); got == "" || len(got) > 6 && got[:6] == "catego" {
			t.Fatalf("category %d missing name: %q", int(c), got)
		}
	}
	if got := Category(0).String(); got != "category(0)" {
		t.Fatalf("unknown category = %q", got)
	}
}

func TestParseClasses(t *testing.T) {
	for _, sel := range []string{"", "all", " all "} {
		got, err := ParseClasses(sel)
		if err != nil || len(got) != len(AllClasses()) {
			t.Fatalf("ParseClasses(%q) = %v, %v", sel, got, err)
		}
	}
	got, err := ParseClasses("stuck-at, burst")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != ClassStuckAt || got[1] != ClassBurst {
		t.Fatalf("parsed %v", got)
	}
	if _, err := ParseClasses("transient,bogus"); err == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestCategorize(t *testing.T) {
	cases := map[Outcome]Category{
		OutcomeNone:              CategoryMasked,
		OutcomeMasked:            CategoryDetectedCorrected,
		OutcomeSignatureMismatch: CategoryDetectedUncorrected,
		OutcomeBarrierTimeout:    CategoryDetectedUncorrected,
		OutcomeKernelException:   CategoryDetectedUncorrected,
		OutcomeYCSBCorruption:    CategorySDC,
		OutcomeYCSBError:         CategorySDC,
		OutcomeUserMemFault:      CategorySDC,
		OutcomeOtherUserFault:    CategorySDC,
	}
	for o, want := range cases {
		if got := Categorize(o); got != want {
			t.Fatalf("Categorize(%v) = %v, want %v", o, got, want)
		}
	}
}

func TestTallyZeroTrials(t *testing.T) {
	tally := NewTally()
	if tally.Observed() != 0 || tally.Controlled() != 0 || tally.Uncontrolled() != 0 {
		t.Fatalf("empty tally reports trials: %+v", tally)
	}
	if cats := tally.Categories(); len(cats) != 0 {
		t.Fatalf("empty tally has categories: %v", cats)
	}
}

func TestTallyOverflowAdjacent(t *testing.T) {
	tally := NewTally()
	tally.Add(OutcomeNone, math.MaxUint64-1)
	tally.Add(OutcomeSignatureMismatch, 1)
	if tally.Injected != math.MaxUint64 {
		t.Fatalf("injected = %d, want MaxUint64", tally.Injected)
	}
	if tally.Counts[OutcomeNone] != 1 || tally.Counts[OutcomeSignatureMismatch] != 1 {
		t.Fatalf("counts = %v", tally.Counts)
	}
}

func TestTallyCategoriesFold(t *testing.T) {
	tally := NewTally()
	tally.Add(OutcomeNone, 0)
	tally.Add(OutcomeNone, 0)
	tally.Add(OutcomeMasked, 1)
	tally.Add(OutcomeBarrierTimeout, 1)
	tally.Add(OutcomeYCSBCorruption, 1)
	cats := tally.Categories()
	want := map[Category]uint64{
		CategoryMasked:              2,
		CategoryDetectedCorrected:   1,
		CategoryDetectedUncorrected: 1,
		CategorySDC:                 1,
	}
	for c, n := range want {
		if cats[c] != n {
			t.Fatalf("category %v = %d, want %d (all: %v)", c, cats[c], n, cats)
		}
	}
}
