package faults

import (
	"errors"
	"fmt"

	"rcoe/internal/harness"
	"rcoe/internal/snapshot"
)

// Warm-start support: a campaign builds the KV system once, simulates it
// through boot and the preload phase, and snapshots it. Every trial then
// forks from the checkpoint — a fresh NewKV (same options) restored from
// the template — instead of re-simulating the warm-up. The template is
// taken before any fault device is armed, so the restore target's device
// population matches construction and each trial arms its own injectors
// on a pristine system.
//
// A warm campaign pins the workload seed to warmSeed(campaign seed) — the
// request stream is common across trials (a common-random-numbers design)
// and only the injection stream varies per trial. Cold campaigns instead
// derive the workload seed from the trial seed, so the two modes sample
// different (equally valid) experiment populations; within a mode the
// tallies are byte-identical at any worker count.

// warmSeed is the fixed workload seed a warm campaign pins for the
// template and every fork of it.
func warmSeed(campaignSeed uint64) uint64 { return campaignSeed | 1 }

// WarmTemplate builds the warm-start checkpoint a campaign with the given
// KV options and campaign seed would build itself. Callers running many
// campaigns over the same system configuration (class sweeps, parameter
// sweeps, repeated benchmark iterations) can build the template once and
// pass it via the Template option.
func WarmTemplate(kv harness.KVOptions, campaignSeed uint64) ([]byte, error) {
	kv.Seed = warmSeed(campaignSeed)
	return warmTemplate(kv)
}

// warmTemplate simulates a fresh run through boot and the preload phase
// and returns its serialized state.
func warmTemplate(kv harness.KVOptions) ([]byte, error) {
	run, err := harness.NewKV(kv)
	if err != nil {
		return nil, err
	}
	deadline := run.Sys.Machine().Now() + kvTrialBudget(kv)
	for !run.LoadPhaseDone() {
		if halted, reason := run.Sys.Halted(); halted {
			return nil, fmt.Errorf("faults: warm template halted during preload: %s", reason)
		}
		if run.Sys.Machine().Now() > deadline {
			return nil, errors.New("faults: warm template exceeded cycle budget during preload")
		}
		run.StepChunk(25_000)
	}
	return snapshot.Save(run)
}

// warmFork builds a trial system through the normal construction path and
// restores the template into it.
func warmFork(kv harness.KVOptions, tmpl []byte) (*harness.KVRun, error) {
	run, err := harness.NewKV(kv)
	if err != nil {
		return nil, err
	}
	if err := snapshot.Restore(run, tmpl); err != nil {
		return nil, fmt.Errorf("faults: warm fork: %w", err)
	}
	return run, nil
}

// trialRun builds the system for one trial: a warm fork when a template
// is present, a cold boot otherwise.
func trialRun(kv harness.KVOptions, campaignSeed, trialSeed uint64, tmpl []byte) (*harness.KVRun, error) {
	if tmpl != nil {
		kv.Seed = warmSeed(campaignSeed)
		return warmFork(kv, tmpl)
	}
	kv.Seed = trialSeed | 1
	return harness.NewKV(kv)
}
