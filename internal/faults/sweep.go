package faults

import (
	"context"
	"fmt"
	"sync"

	"rcoe/internal/exp"
)

// SoakSweepOptions configures a sweep of independent chaos-soak
// campaigns. One soak campaign is inherently sequential — its fault
// cycles share a long-lived TMR service — but campaigns are independent
// simulated machines, so the sweep layer fans them out across host cores
// on the experiment engine.
type SoakSweepOptions struct {
	// Soak is the per-campaign template. Its Seed is the sweep master
	// seed: campaign i runs with exp.DeriveSeed(Seed, i), so the sweep is
	// deterministic at any worker count. Its Log, when set, receives every
	// campaign's lines prefixed "cNN: " (calls are serialised).
	Soak SoakOptions
	// Campaigns is the number of independent campaigns (default 1).
	Campaigns int
	// Context, when set, cancels the sweep between campaigns.
	Context context.Context
	// Workers overrides the engine's host worker-pool size for this sweep
	// (0 = the process default, normally the host core count).
	Workers int
}

// SoakSweepResult aggregates a sweep. Per-campaign results land by
// campaign index, never by completion order.
type SoakSweepResult struct {
	// Campaigns holds each campaign's full result, indexed by campaign.
	Campaigns []SoakResult
	// Seeds records the derived per-campaign seeds.
	Seeds []uint64
	// Tally merges every campaign's per-cycle outcome tally.
	Tally *Tally
	// Totals over the whole sweep.
	Ops            uint64
	Errors         uint64
	Corruptions    uint64
	Ejections      uint64
	Reintegrations uint64
	// Violations lists broken invariants across all campaigns, each
	// prefixed with its campaign index (empty on a clean sweep).
	Violations []string
}

// Ok reports whether every campaign held its invariants.
func (r *SoakSweepResult) Ok() bool { return len(r.Violations) == 0 }

// SoakSweep runs Campaigns independent chaos-soak campaigns on the
// experiment engine and aggregates them. A campaign error does not stop
// the other campaigns; the lowest-index error is returned after the sweep
// drains, with every completed campaign's result still in place.
func SoakSweep(opts SoakSweepOptions) (SoakSweepResult, error) {
	n := opts.Campaigns
	if n <= 0 {
		n = 1
	}
	log := newSweepLog(opts.Soak.Log)
	jobs := make([]exp.Job[SoakResult], n)
	for i := range jobs {
		i := i
		jobs[i] = exp.Job[SoakResult]{
			Name: fmt.Sprintf("soak[%d]", i),
			Seed: exp.DeriveSeed(opts.Soak.Seed, i),
			Run: func(_ context.Context, seed uint64) (SoakResult, error) {
				campaign := opts.Soak
				campaign.Seed = seed
				campaign.Log = log.campaign(i)
				return Soak(campaign)
			},
		}
	}
	results, runErr := exp.Run(exp.Options{Workers: opts.Workers, Context: opts.Context}, jobs)

	res := SoakSweepResult{
		Campaigns: make([]SoakResult, n),
		Seeds:     make([]uint64, n),
		Tally:     NewTally(),
	}
	for i, r := range results {
		res.Seeds[i] = r.Seed
		res.Campaigns[i] = r.Value
		c := &res.Campaigns[i]
		if c.Tally != nil {
			res.Tally.Injected += c.Tally.Injected
			for o, cnt := range c.Tally.Counts {
				res.Tally.Counts[o] += cnt
			}
		}
		res.Ops += c.Ops
		res.Errors += c.Errors
		res.Corruptions += c.Corruptions
		res.Ejections += c.Ejections
		res.Reintegrations += c.Reintegrations
		for _, v := range c.Violations {
			res.Violations = append(res.Violations, fmt.Sprintf("campaign %d: %s", i, v))
		}
		if r.Err != nil {
			res.Violations = append(res.Violations,
				fmt.Sprintf("campaign %d: error: %v", i, r.Err))
		}
	}
	if runErr != nil {
		return res, runErr
	}
	return res, exp.FirstErr(results)
}

// sweepLog serialises the campaigns' log lines onto one sink with a
// per-campaign prefix, since campaigns log concurrently from the engine's
// workers.
type sweepLog struct {
	mu   sync.Mutex
	sink func(string)
}

func newSweepLog(sink func(string)) *sweepLog {
	return &sweepLog{sink: sink}
}

// campaign returns campaign i's log callback (nil when the sweep has no
// sink).
func (l *sweepLog) campaign(i int) func(string) {
	if l.sink == nil {
		return nil
	}
	return func(line string) {
		l.mu.Lock()
		defer l.mu.Unlock()
		l.sink(fmt.Sprintf("c%02d: %s", i, line))
	}
}
