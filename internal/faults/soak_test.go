package faults

import (
	"errors"
	"testing"

	"rcoe/internal/core"
)

func TestSoakHoldsInvariants(t *testing.T) {
	res, err := Soak(SoakOptions{
		Cycles: 8,
		Seed:   0xC0FFEE,
		Log: func(line string) {
			t.Log(line)
		},
	})
	if err != nil {
		t.Fatalf("soak: %v (violations: %v)", err, res.Violations)
	}
	if !res.Ok() {
		t.Fatalf("invariants violated: %v", res.Violations)
	}
	if len(res.Cycles) != 8 {
		t.Fatalf("completed %d cycles, want 8", len(res.Cycles))
	}
	if res.Ops == 0 || res.MinWindow <= 0 {
		t.Fatalf("no continuous client progress: ops=%d minWindow=%f", res.Ops, res.MinWindow)
	}
	// Every downgrade must have been followed by a successful live
	// re-integration, and every stall by an ejection. Each downgrade
	// carries its forensic numbers and a frozen divergence report.
	downgrades := uint64(0)
	for _, c := range res.Cycles {
		if c.Downgraded {
			downgrades++
			if !c.Reintegrated {
				t.Fatalf("cycle %d downgraded but never reintegrated", c.Index)
			}
			if c.DetectLatency == 0 || c.ReintegrationWindow == 0 {
				t.Fatalf("cycle %d: missing latency forensics: detect=%d reint=%d",
					c.Index, c.DetectLatency, c.ReintegrationWindow)
			}
			if c.Forensic == nil {
				t.Fatalf("cycle %d downgraded without a divergence report", c.Index)
			}
			if c.Forensic.Implicated != c.Target {
				t.Fatalf("cycle %d: report implicates replica %d, fault hit %d",
					c.Index, c.Forensic.Implicated, c.Target)
			}
		}
		if c.Fault == SoakStall && !c.Ejected {
			t.Fatalf("cycle %d: stall resolved without ejection", c.Index)
		}
	}
	if downgrades == 0 {
		t.Fatalf("campaign produced no downgrades at all")
	}
	if res.Reintegrations != downgrades {
		t.Fatalf("reintegrations=%d, downgrades=%d", res.Reintegrations, downgrades)
	}
	if res.Tally.Uncontrolled() != 0 {
		t.Fatalf("uncontrolled outcomes: %v", res.Tally.Counts)
	}
	// The metrics snapshot covers the whole campaign: detection latency
	// per downgrade, and the per-window throughput histogram.
	if got := res.Metrics.HistByName("detect-latency").Count; got != downgrades {
		t.Fatalf("detect-latency observations = %d, want %d", got, downgrades)
	}
	if res.Metrics.HistByName("kv-window-ops").Count == 0 {
		t.Fatal("no kv-window-ops observations in the snapshot")
	}
	if res.Metrics.HistByName("reintegration-window").Count != downgrades {
		t.Fatalf("reintegration-window observations = %d, want %d",
			res.Metrics.HistByName("reintegration-window").Count, downgrades)
	}
	// A clean campaign ships no unexpected-outcome forensic bundles.
	if len(res.Forensics) != 0 {
		t.Fatalf("clean campaign attached %d forensic bundles", len(res.Forensics))
	}
}

func TestSoakRejectsDMR(t *testing.T) {
	_, err := Soak(SoakOptions{
		System: core.Config{Mode: core.ModeLC, Replicas: 2},
		Cycles: 1,
	})
	if err == nil {
		t.Fatalf("soak on a DMR system should refuse")
	}
}

func TestSoakErrNoEjectionIsSentinel(t *testing.T) {
	// The sentinel must compose with errors.Is for callers that
	// distinguish ejection failures from other campaign errors.
	wrapped := errorsJoin(ErrNoEjection)
	if !errors.Is(wrapped, ErrNoEjection) {
		t.Fatalf("wrapped ErrNoEjection not matched by errors.Is")
	}
}

func errorsJoin(err error) error {
	return &wrapErr{err}
}

type wrapErr struct{ err error }

func (w *wrapErr) Error() string { return "cycle 3: " + w.err.Error() }
func (w *wrapErr) Unwrap() error { return w.err }
