package faults

import (
	"fmt"
	"sort"
	"strings"
)

// FaultClass enumerates the injected fault models of the hard-fault
// characterization study. The memory campaign (Tables VII/IX) covers the
// transient and burst classes against the paper's setup; the remaining
// classes extend the model to permanent, marginal, and device-level
// hardware faults.
type FaultClass int

// Fault classes.
const (
	// ClassTransient is a single bit flip — the SEU model of Table VII.
	ClassTransient FaultClass = iota + 1
	// ClassStuckAt is a permanent stuck-at bit: re-asserted on every
	// access, surviving all overwrites (machine.Mem.SetStuck).
	ClassStuckAt
	// ClassBurst flips several bits within one cache line at once — the
	// overclocking-style correlated fault of Table IX.
	ClassBurst
	// ClassIntermittent is a duty-cycled stuck bit: present during seeded
	// ON phases, absent otherwise (machine.IntermittentFault).
	ClassIntermittent
	// ClassDevice corrupts NIC RX frames during DMA — outside the sphere
	// of replication, where voting cannot reach (§III-E's residual
	// vulnerability).
	ClassDevice
)

var classNames = map[FaultClass]string{
	ClassTransient:    "transient",
	ClassStuckAt:      "stuck-at",
	ClassBurst:        "burst",
	ClassIntermittent: "intermittent",
	ClassDevice:       "device",
}

// String returns the class name.
func (c FaultClass) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// AllClasses returns every fault class in presentation order.
func AllClasses() []FaultClass {
	return []FaultClass{ClassTransient, ClassStuckAt, ClassBurst, ClassIntermittent, ClassDevice}
}

// ParseClasses parses a comma-separated class list ("stuck-at,burst");
// "all" or "" selects every class.
func ParseClasses(s string) ([]FaultClass, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "all" {
		return AllClasses(), nil
	}
	byName := make(map[string]FaultClass, len(classNames))
	for c, n := range classNames {
		byName[n] = c
	}
	var out []FaultClass
	for _, part := range strings.Split(s, ",") {
		c, ok := byName[strings.TrimSpace(part)]
		if !ok {
			names := make([]string, 0, len(byName))
			for n := range byName {
				names = append(names, n)
			}
			sort.Strings(names)
			return nil, fmt.Errorf("faults: unknown fault class %q (known: %s, all)",
				strings.TrimSpace(part), strings.Join(names, ", "))
		}
		out = append(out, c)
	}
	return out, nil
}

// Category is the dependability-taxonomy bucket of a trial outcome: the
// SDC / detected-corrected / detected-uncorrected / masked breakdown the
// characterization tables report.
type Category int

// Categories.
const (
	// CategorySDC: corrupt state escaped to the client with no detection —
	// silent data corruption, the outcome redundant execution exists to
	// prevent.
	CategorySDC Category = iota + 1
	// CategoryDetectedCorrected: the fault was detected AND the system
	// continued service (a masking TMR voted the faulty replica out).
	CategoryDetectedCorrected
	// CategoryDetectedUncorrected: the fault was detected but the system
	// could only fail-stop (DMR divergence, kernel exception, barrier
	// timeout without masking).
	CategoryDetectedUncorrected
	// CategoryMasked: no observable effect within the trial budget — the
	// fault was architecturally or logically masked (dead memory, already-
	// consumed state).
	CategoryMasked
)

var categoryNames = map[Category]string{
	CategorySDC:                 "sdc",
	CategoryDetectedCorrected:   "detected-corrected",
	CategoryDetectedUncorrected: "detected-uncorrected",
	CategoryMasked:              "masked",
}

// String returns the category name.
func (c Category) String() string {
	if s, ok := categoryNames[c]; ok {
		return s
	}
	return fmt.Sprintf("category(%d)", int(c))
}

// AllCategories returns every category in presentation order.
func AllCategories() []Category {
	return []Category{CategorySDC, CategoryDetectedCorrected, CategoryDetectedUncorrected, CategoryMasked}
}

// Categorize maps a trial outcome onto the taxonomy. OutcomeMasked (the
// system voted a replica out and kept serving) is the corrected case;
// other controlled detections stopped the system; every uncontrolled
// observable outcome reached the client as SDC.
func Categorize(o Outcome) Category {
	switch {
	case o == OutcomeNone:
		return CategoryMasked
	case o == OutcomeMasked:
		return CategoryDetectedCorrected
	case o.Controlled():
		return CategoryDetectedUncorrected
	default:
		return CategorySDC
	}
}

// Categories folds the tally's outcome counts into taxonomy buckets.
func (t *Tally) Categories() map[Category]uint64 {
	out := make(map[Category]uint64)
	for o, n := range t.Counts {
		out[Categorize(o)] += n
	}
	return out
}
