package faults

import (
	"fmt"

	"rcoe/internal/core"
	"rcoe/internal/harness"
	"rcoe/internal/workload"
)

// SurvivalOptions configures a permanent-fault survival trial: a replica's
// signature accumulator gets a stuck-at bit mid-run — a hard fault no
// overwrite can clear — and the question is whether the configuration
// keeps serving.
type SurvivalOptions struct {
	// System is the configuration under test. A masking TMR survives by
	// voting the faulty replica out; a DMR can only detect and fail-stop.
	System core.Config
	// FaultyReplica is the replica whose accumulator goes bad. Faulting
	// the primary (replica 0) removes the replica that services client
	// I/O, so the workload stalls and the trial burns its whole cycle
	// budget before erroring — pick a backup to measure survival.
	FaultyReplica int
	// InjectAfterOps delays the fault into the run phase.
	InjectAfterOps uint64
	// Records/Operations configure the KV workload.
	Records, Operations uint64
	// Seed makes the run deterministic.
	Seed uint64
	// Reintegrate requests a live re-integration of the ejected replica.
	// Against a *permanent* fault this is futile by design: the stuck bit
	// survives the state copy, the replica re-diverges, and the system
	// ejects it a second time — the property distinguishing hard faults
	// from the transient model of RecoveryTrial.
	Reintegrate bool
}

// SurvivalResult reports a survival trial.
type SurvivalResult struct {
	// Survived reports whether the workload ran to completion despite the
	// permanent fault.
	Survived bool
	// Ops is the number of completed client operations.
	Ops uint64
	// Removals counts replicas voted out of the configuration, by
	// signature vote or barrier timeout. A futile re-integration shows as
	// Removals >= 2 with Reintegrations >= 1.
	Removals       uint64
	Reintegrations uint64
	// StuckBits is the number of stuck-bit entries still asserted at end.
	StuckBits int
	// HaltReason is the system's halt reason when it failed to survive.
	HaltReason string
}

// SurvivalTrial runs one permanent-fault survival measurement.
func SurvivalTrial(opts SurvivalOptions) (SurvivalResult, error) {
	if opts.Records == 0 {
		opts.Records = 48
	}
	if opts.Operations == 0 {
		opts.Operations = 160
	}
	if opts.InjectAfterOps == 0 {
		opts.InjectAfterOps = opts.Operations / 3
	}
	sys := opts.System
	if sys.Replicas == 0 {
		sys.Replicas = 3
	}
	if sys.TickCycles == 0 {
		sys.TickCycles = 50_000
	}
	run, err := harness.NewKV(harness.KVOptions{
		System:      sys,
		Workload:    workload.YCSBA,
		Records:     opts.Records,
		Operations:  opts.Operations,
		TraceOutput: true,
		Seed:        opts.Seed | 1,
		RetryCycles: 300_000,
	})
	if err != nil {
		return SurvivalResult{}, err
	}
	var res SurvivalResult
	injected := false
	reintegrateAsked := false
	budget := uint64(1_500_000_000)
	start := run.Sys.Machine().Now()
	for !run.Done() {
		if halted, reason := run.Sys.Halted(); halted {
			res.HaltReason = reason
			break
		}
		if run.Sys.Machine().Now()-start > budget {
			return res, fmt.Errorf("faults: survival trial exceeded budget after %d ops", run.Snapshot().Ops)
		}
		run.StepChunk(2_000)
		if !injected && run.Snapshot().Ops >= opts.InjectAfterOps {
			injected = true
			lay := run.Sys.Replica(opts.FaultyReplica).K.Layout()
			// The same accumulator bit RecoveryTrial flips once — but stuck,
			// so it re-asserts against every signature the replica ever
			// writes from here on.
			if err := run.Sys.Machine().Mem().SetStuck(lay.SigPA()+8, 5, 1); err != nil {
				return res, err
			}
		}
		if opts.Reintegrate && injected && !reintegrateAsked &&
			!run.Sys.Alive(opts.FaultyReplica) {
			reintegrateAsked = true
			if err := run.Sys.RequestReintegrate(opts.FaultyReplica); err != nil {
				return res, err
			}
		}
	}
	if run.Done() {
		_ = run.Sys.Run(50_000_000) // drain trailing responses
	}
	snap := run.Snapshot()
	res.Ops = snap.Ops
	res.Survived = run.Done()
	stats := run.Sys.Stats()
	res.Removals = stats.Downgrades + stats.Ejections
	res.Reintegrations = stats.Reintegrations
	res.StuckBits = run.Sys.Machine().Mem().StuckBits()
	if !injected {
		return res, fmt.Errorf("faults: workload finished before the injection point (%d ops)", res.Ops)
	}
	return res, nil
}
