package faults

import (
	"bytes"
	"context"
	"crypto/md5"
	"errors"
	"fmt"

	"rcoe/internal/core"
	"rcoe/internal/exp"
	"rcoe/internal/guest"
	"rcoe/internal/kernel"
	"rcoe/internal/vmm"
)

// RegCampaignOptions configures the register fault-injection study of
// Table VIII: the md5sum workload runs (in a VM, under CC-RCoE DMR, or
// unprotected as the baseline) and a single random user-register bit of
// the primary replica is flipped mid-run.
//
// The paper flips bits in the user context the kernel saved on an
// interrupt; the simulator flips the live register directly, which is
// behaviourally identical (the context is saved and restored through RAM
// either way) but does not depend on interrupt timing.
type RegCampaignOptions struct {
	// System configures replication; the workload always runs in a VM
	// context as in the paper (ModeNone gives the Base column).
	System core.Config
	// MessageBytes is the md5 input size per run.
	MessageBytes int
	// Trials is the number of injection runs.
	Trials int
	// Seed makes the campaign deterministic.
	Seed uint64
	// Context, when set, cancels the campaign between trials.
	Context context.Context
	// Workers overrides the engine's host worker-pool size for this
	// campaign (0 = the process default, normally the host core count).
	Workers int
}

// RegTally summarises a register campaign in the paper's Table VIII
// categories.
type RegTally struct {
	Injected    uint64
	Crashes     uint64 // abnormal termination
	Corruptions uint64 // wrong digest, undetected
	Timeouts    uint64 // detected by barrier timeout
	Mismatches  uint64 // detected by signature vote
	NoEffect    uint64 // digest correct, nothing observed
}

// Uncontrolled returns the paper's uncontrolled-error count.
func (t RegTally) Uncontrolled() uint64 { return t.Crashes + t.Corruptions }

// Controlled returns the detected-error count.
func (t RegTally) Controlled() uint64 { return t.Timeouts + t.Mismatches }

// RegCampaign runs the full register fault-injection study on the
// experiment engine: trials fan out across host cores and tally in trial
// order, with per-trial seeds keeping the pre-engine xorshift chain.
func RegCampaign(opts RegCampaignOptions) (RegTally, error) {
	if opts.MessageBytes == 0 {
		opts.MessageBytes = 4096
	}
	r := newRNG(opts.Seed)
	jobs := make([]exp.Job[Outcome], opts.Trials)
	for i := range jobs {
		jobs[i] = exp.Job[Outcome]{
			Name: fmt.Sprintf("reg-trial[%d]", i),
			Seed: r.next(),
			Run: func(_ context.Context, seed uint64) (Outcome, error) {
				return RegTrial(opts, seed)
			},
		}
	}
	var tally RegTally
	results, err := exp.Run(exp.Options{Workers: opts.Workers, Context: opts.Context}, jobs)
	if err != nil {
		return tally, err
	}
	outcomes, err := exp.Values(results)
	if err != nil {
		return tally, err
	}
	for _, out := range outcomes {
		tally.Injected++
		switch out {
		case OutcomeUserMemFault, OutcomeOtherUserFault:
			tally.Crashes++
		case OutcomeYCSBCorruption:
			tally.Corruptions++
		case OutcomeBarrierTimeout, OutcomeKernelException:
			tally.Timeouts++
		case OutcomeSignatureMismatch:
			tally.Mismatches++
		default:
			tally.NoEffect++
		}
	}
	return tally, nil
}

// errHang marks an unresponsive undetected run.
var errHang = errors.New("faults: run hung without detection")

// RegTrial runs md5 once with repeated register flips and classifies the
// result.
func RegTrial(opts RegCampaignOptions, seed uint64) (Outcome, error) {
	r := newRNG(seed)
	msg := make([]byte, opts.MessageBytes)
	for i := range msg {
		msg[i] = byte(r.next())
	}
	want := md5.Sum(msg)
	prog := guest.MD5(guest.MD5Pad(msg))

	sys := opts.System
	if sys.TickCycles == 0 {
		sys.TickCycles = 20_000
	}
	vm, err := vmm.Launch(vmm.GuestConfig{System: sys, Program: prog})
	if err != nil {
		return 0, err
	}
	s := vm.System()

	// Flip random user-register bits of the primary replica at random
	// intervals until the run produces an outcome (the paper injects
	// until the digests differ, the application crashes, or CC-RCoE
	// detects a divergence).
	var runErr error
	for !s.Finished() {
		if halted, _ := s.Halted(); halted {
			break
		}
		s.RunCycles(20_000 + r.intn(60_000))
		if halted, _ := s.Halted(); halted || s.Finished() {
			break
		}
		prim := s.Replica(s.Primary()).Core()
		if r.intn(8) == 0 {
			prim.PC ^= 1 << r.intn(20) // control-flow corruption
		} else {
			reg := 1 + r.intn(30) // r1..r30
			prim.Regs[reg] ^= 1 << r.intn(64)
		}
		if s.Machine().Now() > 200_000_000 {
			runErr = errHang
			break
		}
	}

	// Classification.
	for _, d := range s.Detections() {
		switch d.Kind {
		case core.DetectBarrierTimeout:
			return OutcomeBarrierTimeout, nil
		case core.DetectSignatureMismatch, core.DetectVoteInconclusive:
			return OutcomeSignatureMismatch, nil
		case core.DetectKernelException:
			return OutcomeKernelException, nil
		}
	}
	if s.Config().Mode == core.ModeNone {
		rep := s.Replica(0)
		if rep.UserMemFaults > 0 {
			return OutcomeUserMemFault, nil
		}
		if rep.UserFaults > 0 {
			return OutcomeOtherUserFault, nil
		}
	}
	if runErr != nil {
		return OutcomeYCSBError, nil // hung without detection
	}
	got, err := s.Replica(0).K.CopyFromUser(kernel.DataVA, 16)
	if err != nil {
		return 0, fmt.Errorf("faults: read digest: %w", err)
	}
	if !bytes.Equal(got, want[:]) {
		return OutcomeYCSBCorruption, nil
	}
	return OutcomeNone, nil
}
