package faults

import (
	"errors"
	"testing"

	"rcoe/internal/core"
	"rcoe/internal/harness"
	"rcoe/internal/machine"
	"rcoe/internal/workload"
)

func kvBase(mode core.Mode, reps int) harness.KVOptions {
	return harness.KVOptions{
		System: core.Config{
			Mode:       mode,
			Replicas:   reps,
			TickCycles: 50_000,
		},
		Workload:    workload.YCSBA,
		Records:     24,
		Operations:  200,
		TraceOutput: true,
	}
}

func TestOutcomeClassification(t *testing.T) {
	if OutcomeSignatureMismatch.Controlled() != true {
		t.Fatalf("signature mismatch should be controlled")
	}
	if OutcomeYCSBCorruption.Controlled() {
		t.Fatalf("client corruption is uncontrolled")
	}
	if OutcomeNone.Observable() {
		t.Fatalf("no-effect is not observable")
	}
	if !OutcomeMasked.Controlled() {
		t.Fatalf("masked errors are controlled")
	}
}

func TestTally(t *testing.T) {
	tally := NewTally()
	tally.Add(OutcomeNone, 10)
	tally.Add(OutcomeSignatureMismatch, 3)
	tally.Add(OutcomeYCSBCorruption, 2)
	if tally.Injected != 15 {
		t.Fatalf("injected = %d", tally.Injected)
	}
	if tally.Observed() != 2 || tally.Controlled() != 1 || tally.Uncontrolled() != 1 {
		t.Fatalf("tally = %+v", tally)
	}
}

func TestMemTrialBaselineObservesSomething(t *testing.T) {
	// With aggressive flipping into the primary's user memory, the
	// baseline should eventually see corruption, errors or a crash.
	opts := MemCampaignOptions{
		KV:              kvBase(core.ModeNone, 1),
		FlipEveryCycles: 1_200,
		MaxFlips:        5000,
	}
	seen := false
	for seed := uint64(1); seed <= 6 && !seen; seed++ {
		res, err := MemTrial(opts, seed)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("seed %d: outcome=%v injected=%d", seed, res.Outcome, res.Injected)
		if res.Outcome.Observable() {
			seen = true
		}
	}
	if !seen {
		t.Fatalf("no observable outcome in any baseline trial")
	}
}

func TestMemTrialDMRDetects(t *testing.T) {
	opts := MemCampaignOptions{
		KV:              kvBase(core.ModeLC, 2),
		FlipEveryCycles: 1_200,
		MaxFlips:        5000,
	}
	controlled := 0
	uncontrolled := 0
	for seed := uint64(1); seed <= 6; seed++ {
		res, err := MemTrial(opts, seed)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("seed %d: outcome=%v injected=%d", seed, res.Outcome, res.Injected)
		if res.Outcome.Controlled() {
			controlled++
		} else if res.Outcome.Observable() {
			uncontrolled++
		}
	}
	if controlled == 0 {
		t.Fatalf("DMR never detected injected faults (uncontrolled=%d)", uncontrolled)
	}
}

func TestRegTrialBaselineCorruptsOrCrashes(t *testing.T) {
	opts := RegCampaignOptions{
		System:       core.Config{Mode: core.ModeNone, Replicas: 1},
		MessageBytes: 16384,
	}
	var observable int
	for seed := uint64(1); seed <= 8; seed++ {
		out, err := RegTrial(opts, seed)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("seed %d: %v", seed, out)
		if out.Observable() && !out.Controlled() {
			observable++
		}
	}
	if observable == 0 {
		t.Fatalf("register flips never corrupted the baseline digest")
	}
}

func TestRegTrialCCDMRControls(t *testing.T) {
	opts := RegCampaignOptions{
		System:       core.Config{Mode: core.ModeCC, Replicas: 2},
		MessageBytes: 16384,
	}
	var controlled, uncontrolled int
	for seed := uint64(1); seed <= 8; seed++ {
		out, err := RegTrial(opts, seed)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("seed %d: %v", seed, out)
		if out.Controlled() {
			controlled++
		} else if out.Observable() {
			uncontrolled++
		}
	}
	if uncontrolled != 0 {
		t.Fatalf("CC-D let %d register faults escape (Table VIII expects zero)", uncontrolled)
	}
	if controlled == 0 {
		t.Fatalf("no register fault was detected; expected some effect")
	}
}

func TestRecoveryNonPrimaryCheaperThanPrimary(t *testing.T) {
	prim, err := RecoveryTrial(RecoveryOptions{
		System:        core.Config{Mode: core.ModeLC},
		FaultyReplica: 0,
		Seed:          3,
	})
	if err != nil {
		t.Fatalf("primary trial: %v", err)
	}
	other, err := RecoveryTrial(RecoveryOptions{
		System:        core.Config{Mode: core.ModeLC},
		FaultyReplica: 2,
		Seed:          3,
	})
	if err != nil {
		t.Fatalf("non-primary trial: %v", err)
	}
	if !prim.WasPrimary || other.WasPrimary {
		t.Fatalf("primary flags wrong: %v %v", prim.WasPrimary, other.WasPrimary)
	}
	ratio := float64(prim.Cycles) / float64(other.Cycles)
	t.Logf("primary=%d cycles, other=%d cycles, ratio=%.0fx", prim.Cycles, other.Cycles, ratio)
	if ratio < 20 {
		t.Fatalf("primary removal only %.1fx costlier; Table X expects ~2 orders of magnitude", ratio)
	}
}

func TestRecoveryNoDowngradeIsSentinel(t *testing.T) {
	// An injection point beyond the run's operation budget never fires;
	// the trial must report that with the composable sentinel.
	_, err := RecoveryTrial(RecoveryOptions{
		System:         core.Config{Mode: core.ModeLC},
		FaultyReplica:  2,
		Operations:     40,
		InjectAfterOps: 10_000,
		Seed:           3,
	})
	if !errors.Is(err, ErrNoDowngrade) {
		t.Fatalf("trial without an injection = %v, want ErrNoDowngrade", err)
	}
}

func TestRecoveryLiveReintegration(t *testing.T) {
	// The Fig. 4 timeline with the lifecycle closed: downgrade dip, then a
	// live re-integration while the clients keep running.
	res, err := RecoveryTrial(RecoveryOptions{
		System:        core.Config{Mode: core.ModeLC},
		FaultyReplica: 2,
		Reintegrate:   true,
		Seed:          9,
	})
	if err != nil {
		t.Fatalf("trial: %v", err)
	}
	if !res.Reintegrated {
		t.Fatalf("replica 2 was not reintegrated")
	}
	if res.ReintegrateWindow < res.DowngradeWindow {
		t.Fatalf("reintegration window %d before downgrade window %d",
			res.ReintegrateWindow, res.DowngradeWindow)
	}
	if res.Ops == 0 || res.Throughput == 0 {
		t.Fatalf("no client progress across the lifecycle")
	}
}

func TestRecoveryCCMaskingUnsupportedOnArm(t *testing.T) {
	_, err := RecoveryTrial(RecoveryOptions{
		System:        core.Config{Mode: core.ModeLC, Profile: machine.Arm()},
		FaultyReplica: 2,
		Seed:          5,
	})
	if err != nil {
		t.Fatalf("LC masking on Arm should work: %v", err)
	}
	// CC masking on Arm must halt (no spare PTE bit) when the primary is
	// removed — exercised through the core config; here we confirm the
	// profile flag that gates it.
	if machine.Arm().HasSparePTEBit {
		t.Fatalf("arm profile should not have a spare PTE bit (§IV-A)")
	}
}
