package faults

import (
	"reflect"
	"testing"

	"rcoe/internal/core"
)

// TestHardCampaignWorkerCountInvariant is the engine-parallelism
// acceptance property: per-trial seeds come from the pre-engine chain, so
// a serial campaign and an 8-worker campaign tally byte-identical results.
func TestHardCampaignWorkerCountInvariant(t *testing.T) {
	base := HardCampaignOptions{
		KV:             kvBase(core.ModeLC, 2),
		Classes:        []FaultClass{ClassTransient, ClassStuckAt, ClassDevice},
		TrialsPerClass: 2,
		Seed:           11,
	}
	base.KV.Operations = 120

	serial := base
	serial.Workers = 1
	got1, err := HardCampaign(serial)
	if err != nil {
		t.Fatal(err)
	}
	wide := base
	wide.Workers = 8
	got8, err := HardCampaign(wide)
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range base.Classes {
		if !reflect.DeepEqual(got1[class], got8[class]) {
			t.Fatalf("%v: serial %+v != 8-worker %+v", class, got1[class], got8[class])
		}
		t.Logf("%v: %+v -> %v", class, got1[class].Counts, got1[class].Categories())
	}
}

// TestHardTrialDeviceEscapesReplication pins the §III-E residual: NIC DMA
// corruption happens outside the sphere of replication, so every replica
// sees the same corrupt frame and voting cannot catch it — the client
// does.
func TestHardTrialDeviceEscapesReplication(t *testing.T) {
	opts := HardCampaignOptions{KV: kvBase(core.ModeLC, 3)}
	escaped := false
	for seed := uint64(1); seed <= 4 && !escaped; seed++ {
		res, err := HardTrial(opts, ClassDevice, seed)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("seed %d: outcome=%v injected=%d", seed, res.Outcome, res.Injected)
		if res.Injected == 0 {
			t.Fatalf("seed %d: no frames were corrupted", seed)
		}
		if res.Outcome.Controlled() {
			t.Fatalf("seed %d: replication claimed to detect a device fault: %v",
				seed, res.Outcome)
		}
		if res.Outcome.Observable() {
			escaped = true
		}
	}
	if !escaped {
		t.Fatal("device corruption never reached the client in any trial")
	}
}

// TestHardTrialStuckAtDMRDetects drives permanent faults into a DMR
// system: whenever a stuck bit has an observable effect, replication must
// classify it controlled (no SDC), since only one replica's memory is hit.
func TestHardTrialStuckAtDMRDetects(t *testing.T) {
	opts := HardCampaignOptions{KV: kvBase(core.ModeLC, 2)}
	opts.KV.Operations = 120
	var controlled, uncontrolled int
	for seed := uint64(1); seed <= 5; seed++ {
		res, err := HardTrial(opts, ClassStuckAt, seed)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("seed %d: outcome=%v (category %v)", seed, res.Outcome, Categorize(res.Outcome))
		switch {
		case res.Outcome.Controlled():
			controlled++
		case res.Outcome.Observable():
			uncontrolled++
		}
	}
	if controlled == 0 {
		t.Fatalf("no stuck-at fault was ever detected (uncontrolled=%d)", uncontrolled)
	}
}

// TestHardTrialIntermittentRuns exercises the duty-cycled fault device end
// to end under replication and confirms the trial is seed-deterministic.
func TestHardTrialIntermittentRuns(t *testing.T) {
	opts := HardCampaignOptions{KV: kvBase(core.ModeLC, 2)}
	opts.KV.Operations = 120
	a, err := HardTrial(opts, ClassIntermittent, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := HardTrial(opts, ClassIntermittent, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("intermittent trial not deterministic: %+v vs %+v", a, b)
	}
	t.Logf("outcome=%v (category %v)", a.Outcome, Categorize(a.Outcome))
}

func TestHardCampaignProgressCallback(t *testing.T) {
	var calls []FaultClass
	var dones []int
	_, err := HardCampaign(HardCampaignOptions{
		KV:             kvBase(core.ModeLC, 2),
		Classes:        []FaultClass{ClassTransient, ClassBurst},
		TrialsPerClass: 1,
		Seed:           3,
		Progress: func(class FaultClass, done, total int) {
			if total != 2 {
				t.Errorf("total = %d, want 2", total)
			}
			calls = append(calls, class)
			dones = append(dones, done)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 2 || calls[0] != ClassTransient || calls[1] != ClassBurst {
		t.Fatalf("progress classes = %v", calls)
	}
	if dones[0] != 1 || dones[1] != 2 {
		t.Fatalf("progress done counts = %v", dones)
	}
}
