package faults

import (
	"reflect"
	"testing"

	"rcoe/internal/core"
	"rcoe/internal/harness"
)

// TestHardCampaignWarmStartWorkerInvariant pins the warm-start
// acceptance property: every trial forks from the same post-preload
// checkpoint with a pre-engine seed chain, so the tallies are
// byte-identical at any worker count.
func TestHardCampaignWarmStartWorkerInvariant(t *testing.T) {
	base := HardCampaignOptions{
		KV:             kvBase(core.ModeLC, 2),
		Classes:        []FaultClass{ClassTransient, ClassDevice},
		TrialsPerClass: 3,
		Seed:           11,
		WarmStart:      true,
	}
	base.KV.Operations = 120

	serial := base
	serial.Workers = 1
	got1, err := HardCampaign(serial)
	if err != nil {
		t.Fatal(err)
	}
	wide := base
	wide.Workers = 8
	got8, err := HardCampaign(wide)
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range base.Classes {
		if !reflect.DeepEqual(got1[class], got8[class]) {
			t.Fatalf("%v: serial %+v != 8-worker %+v", class, got1[class], got8[class])
		}
		if got1[class].Injected == 0 {
			t.Fatalf("%v: warm trials injected nothing", class)
		}
		t.Logf("%v: %+v -> %v", class, got1[class].Counts, got1[class].Categories())
	}
}

// TestMemCampaignWarmStartDeterministic runs the same warm memory
// campaign twice: the template fork must leak no state between trials, so
// the tallies are identical run to run.
func TestMemCampaignWarmStartDeterministic(t *testing.T) {
	opts := MemCampaignOptions{
		KV:        kvBase(core.ModeLC, 3),
		Trials:    4,
		Seed:      5,
		WarmStart: true,
		Workers:   4,
	}
	a, err := MemCampaign(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MemCampaign(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("warm campaign not deterministic: %+v vs %+v", a, b)
	}
	if a.Injected == 0 {
		t.Fatal("warm trials injected nothing")
	}
	t.Logf("tally: %+v -> %v", a.Counts, a.Categories())
}

// benchKV is the warm-start quick configuration: a large preload (the
// part a warm fork skips) followed by a short injection-heavy run phase.
func benchKV() harness.KVOptions {
	kv := kvBase(core.ModeLC, 2)
	kv.Records = 4000
	kv.Operations = 20
	return kv
}

func benchTemplate(b *testing.B, warm bool, kv harness.KVOptions, seed uint64) []byte {
	if !warm {
		return nil
	}
	tmpl, err := WarmTemplate(kv, seed)
	if err != nil {
		b.Fatal(err)
	}
	return tmpl
}

func benchHardCampaign(b *testing.B, warm bool) {
	opts := HardCampaignOptions{
		KV:             benchKV(),
		Classes:        []FaultClass{ClassTransient},
		TrialsPerClass: b.N,
		Seed:           11,
		WarmStart:      warm,
		Template:       benchTemplate(b, warm, benchKV(), 11),
		Workers:        1,
	}
	b.ResetTimer()
	got, err := HardCampaign(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "trials/s")
	var trials uint64
	for _, c := range got[ClassTransient].Counts {
		trials += c
	}
	if trials != uint64(b.N) {
		b.Fatalf("tally lost trials: %d of %d", trials, b.N)
	}
}

func BenchmarkHardCampaignCold(b *testing.B) { benchHardCampaign(b, false) }
func BenchmarkHardCampaignWarm(b *testing.B) { benchHardCampaign(b, true) }

func benchMemCampaign(b *testing.B, warm bool) {
	opts := MemCampaignOptions{
		KV:        benchKV(),
		Trials:    b.N,
		Seed:      5,
		WarmStart: warm,
		Template:  benchTemplate(b, warm, benchKV(), 5),
		Workers:   1,
	}
	b.ResetTimer()
	if _, err := MemCampaign(opts); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "trials/s")
}

func BenchmarkMemCampaignCold(b *testing.B) { benchMemCampaign(b, false) }
func BenchmarkMemCampaignWarm(b *testing.B) { benchMemCampaign(b, true) }
