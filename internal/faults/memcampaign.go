package faults

import (
	"context"
	"errors"
	"fmt"

	"rcoe/internal/core"
	"rcoe/internal/exp"
	"rcoe/internal/harness"
)

// MemCampaignOptions configures the random-memory-fault study of
// Table VII (and, with Burst > 1, the overclocking model of Table IX).
type MemCampaignOptions struct {
	// KV is the benchmark system under test.
	KV harness.KVOptions
	// Trials is the number of independent injection runs.
	Trials int
	// FlipEveryCycles is the injection period within a trial.
	FlipEveryCycles uint64
	// MaxFlips bounds a trial; reaching it without an observable error
	// classifies the trial OutcomeNone.
	MaxFlips int
	// TargetAllReplicas widens the user-memory target from the primary
	// only (the x86 study) to every replica (the Arm study).
	TargetAllReplicas bool
	// IncludeDMA adds the device DMA region (outside the SoR) to the
	// targets; corruption there can only surface as client-visible
	// corruption.
	IncludeDMA bool
	// Burst is the number of bits flipped per injection within one cache
	// line. Burst > 1 models overclocking-induced correlated faults
	// (§V-C3), which are far more likely to overwhelm the voting
	// machinery than independent SEUs.
	Burst int
	// Seed makes the campaign deterministic.
	Seed uint64
	// WarmStart forks every trial from a single post-preload checkpoint
	// instead of re-simulating boot and the load phase per trial. The
	// workload stream is then common across trials (seeded from Seed) and
	// only the injection stream varies; see warmstart.go.
	WarmStart bool
	// Template, when set, is a pre-built checkpoint from WarmTemplate
	// (same KV options and Seed) reused instead of building one; it
	// implies WarmStart.
	Template []byte
	// Context, when set, cancels the campaign between trials.
	Context context.Context
	// Workers overrides the engine's host worker-pool size for this
	// campaign (0 = the process default, normally the host core count).
	Workers int
	// TrialProgress, when set, receives the engine's per-trial progress
	// (Done/Total count trials) so CLIs can print k/N lines. Calls are
	// serialised but may come from any worker goroutine.
	TrialProgress func(p exp.Progress)
}

// TrialResult captures one trial's classification with its injection
// count.
type TrialResult struct {
	Outcome  Outcome
	Injected uint64
}

// MemCampaign runs the full campaign on the experiment engine — trials
// are independent simulated runs, so they fan out across host cores — and
// tallies outcomes in trial order. Per-trial seeds keep the pre-engine
// xorshift chain from the campaign seed, so a parallel campaign tallies
// exactly what the historical serial loop did.
func MemCampaign(opts MemCampaignOptions) (*Tally, error) {
	tmpl := opts.Template
	if opts.WarmStart && tmpl == nil {
		var err error
		if tmpl, err = WarmTemplate(opts.KV, opts.Seed); err != nil {
			return nil, err
		}
	}
	r := newRNG(opts.Seed)
	jobs := make([]exp.Job[TrialResult], opts.Trials)
	for i := range jobs {
		jobs[i] = exp.Job[TrialResult]{
			Name: fmt.Sprintf("mem-trial[%d]", i),
			Seed: r.next(),
			Run: func(_ context.Context, seed uint64) (TrialResult, error) {
				return memTrial(opts, seed, tmpl)
			},
		}
	}
	results, err := exp.Run(exp.Options{
		Workers: opts.Workers, Context: opts.Context, OnProgress: opts.TrialProgress,
	}, jobs)
	if err != nil {
		return nil, err
	}
	trials, err := exp.Values(results)
	if err != nil {
		return nil, err
	}
	tally := NewTally()
	for _, res := range trials {
		tally.Add(res.Outcome, res.Injected)
	}
	return tally, nil
}

// MemTrial performs one injection run: drive the KV workload while
// flipping random bits in the target regions, and classify the first
// observable consequence.
func MemTrial(opts MemCampaignOptions, seed uint64) (TrialResult, error) {
	return memTrial(opts, seed, nil)
}

func memTrial(opts MemCampaignOptions, seed uint64, tmpl []byte) (TrialResult, error) {
	if opts.FlipEveryCycles == 0 {
		opts.FlipEveryCycles = 40_000
	}
	if opts.MaxFlips == 0 {
		opts.MaxFlips = 60
	}
	if opts.Burst <= 0 {
		opts.Burst = 1
	}
	run, err := trialRun(opts.KV, opts.Seed, seed, tmpl)
	if err != nil {
		return TrialResult{}, err
	}
	regions := targetRegions(run.Sys, opts.TargetAllReplicas, opts.IncludeDMA)
	r := newRNG(seed)
	mem := run.Sys.Machine().Mem()
	var injected uint64

	deadline := run.Sys.Machine().Now() + kvTrialBudget(opts.KV)
	for !run.Done() {
		if halted, _ := run.Sys.Halted(); halted {
			break
		}
		if run.Sys.Machine().Now() > deadline {
			break
		}
		run.StepChunk(opts.FlipEveryCycles)
		if int(injected) < opts.MaxFlips*opts.Burst {
			addr, bit := pickTarget(r, regions)
			for b := 0; b < opts.Burst; b++ {
				// Burst flips land within one 64-byte line.
				a := addr + r.intn(64)
				if err := mem.FlipBit(a, bit+uint(b)); err == nil {
					injected++
				}
			}
		}
		if out, decided := classify(run); decided {
			return TrialResult{Outcome: graceClassify(run, out), Injected: injected}, nil
		}
	}
	if out, decided := classify(run); decided {
		return TrialResult{Outcome: graceClassify(run, out), Injected: injected}, nil
	}
	if !run.Done() {
		// Unresponsive system with no detection: the paper counts hangs
		// among the client-visible "YCSB errors".
		return TrialResult{Outcome: OutcomeYCSBError, Injected: injected}, nil
	}
	return TrialResult{Outcome: OutcomeNone, Injected: injected}, nil
}

func kvTrialBudget(kv harness.KVOptions) uint64 {
	if kv.MaxCycles != 0 {
		return kv.MaxCycles
	}
	return 400_000_000
}

// targetRegions builds the injection target list, mirroring the paper's
// two study variants (§V-C1).
func targetRegions(sys *core.System, targetAll, includeDMA bool) []Region {
	var regions []Region
	shBase, shSize := core.SharedRegion()
	regions = append(regions, Region{Name: "shared", Base: shBase, Size: shSize})
	for rid := 0; rid < sys.NumReplicas(); rid++ {
		lay := sys.Replica(rid).K.Layout()
		regions = append(regions, Region{
			Name: "kernel", Base: lay.Base, Size: lay.UserPA() - lay.Base,
		})
		if targetAll || rid == sys.Primary() {
			regions = append(regions, Region{
				Name: "user", Base: lay.UserPA(), Size: lay.UserSize(),
			})
		}
	}
	if includeDMA {
		dmaBase, dmaSize := core.DMARegion()
		regions = append(regions, Region{Name: "dma", Base: dmaBase, Size: dmaSize})
	}
	return regions
}

// graceClassify settles a race the simulator introduces: the in-process
// client validates a response the instant the NIC delivers it, while the
// paper's YCSB clients sit across a gigabit link (tens of microseconds
// away) and the replicas vote within the same window. When the first
// observation is client-visible, the system runs on briefly; if a
// detection fires within that network-latency window it takes precedence,
// as it would have in the paper's setup.
func graceClassify(run *harness.KVRun, first Outcome) Outcome {
	if first.Controlled() {
		return first
	}
	run.Sys.RunCycles(150_000)
	if out, decided := classify(run); decided && out.Controlled() {
		return out
	}
	return first
}

// classify inspects a run for its first observable outcome.
func classify(run *harness.KVRun) (Outcome, bool) {
	sys := run.Sys
	replicated := sys.Config().Mode != core.ModeNone
	// RCoE detections take precedence: they fire before corrupt output
	// escapes.
	var maskedSeen bool
	for _, d := range sys.Detections() {
		switch d.Kind {
		case core.DetectKernelException:
			if !replicated {
				return OutcomeKernelException, true
			}
			// A replicated kernel exception fail-stops one replica; the
			// system-level detection is the barrier timeout that follows,
			// but the root cause is worth reporting (the paper's "kernel
			// exceptions" rows).
			return OutcomeKernelException, true
		case core.DetectBarrierTimeout:
			if d.Masked {
				// A straggler ejected from a masking TMR: the system
				// continued, so this classifies like any other mask.
				maskedSeen = true
				continue
			}
			return OutcomeBarrierTimeout, true
		case core.DetectSignatureMismatch:
			if d.Masked {
				maskedSeen = true
				continue
			}
			return OutcomeSignatureMismatch, true
		case core.DetectVoteInconclusive:
			return OutcomeSignatureMismatch, true
		}
	}
	snap := run.Snapshot()
	if snap.Corruptions > 0 {
		return OutcomeYCSBCorruption, true
	}
	if snap.Errors > 0 {
		return OutcomeYCSBError, true
	}
	if !replicated {
		for rid := 0; rid < sys.NumReplicas(); rid++ {
			rep := sys.Replica(rid)
			if rep.UserMemFaults > 0 {
				return OutcomeUserMemFault, true
			}
			if rep.UserFaults > 0 {
				return OutcomeOtherUserFault, true
			}
		}
	}
	if maskedSeen {
		return OutcomeMasked, true
	}
	if halted, _ := sys.Halted(); halted {
		return OutcomeYCSBError, true // died without classified detection
	}
	return OutcomeNone, false
}

// ErrNoOutcome is reserved for callers that require a decided trial.
var ErrNoOutcome = errors.New("faults: trial ended without observable outcome")
