// Package faults implements the software fault-injection campaigns of the
// paper's error-detection study (§V-C) and the recovery experiments
// (§V-D): random memory bit flips under the Redis/YCSB workload
// (Table VII), register flips into saved user contexts under md5sum
// (Table VIII), the overclocking-style burst-fault model (Table IX), and
// TMR downgrade measurement (Table X, Fig. 4).
package faults

import "fmt"

// Outcome classifies the first observable consequence of a fault trial,
// matching the error categories of Tables VII-IX.
type Outcome int

// Outcomes. Controlled outcomes are detections by the RCoE machinery
// (before corrupt output escaped); uncontrolled outcomes are failures the
// client observed.
const (
	// OutcomeNone: the injected faults had no observable effect within
	// the trial budget (flips into dead memory).
	OutcomeNone Outcome = iota + 1
	// OutcomeYCSBCorruption: the client read a value whose embedded CRC
	// did not match — silent data corruption escaped.
	OutcomeYCSBCorruption
	// OutcomeYCSBError: the client saw request errors or an unresponsive
	// server without any RCoE detection.
	OutcomeYCSBError
	// OutcomeUserMemFault: the (unreplicated) server took a memory fault.
	OutcomeUserMemFault
	// OutcomeOtherUserFault: the server took another exception (illegal
	// instruction, division by zero).
	OutcomeOtherUserFault
	// OutcomeKernelException: a replica kernel failed its integrity
	// checks and fail-stopped.
	OutcomeKernelException
	// OutcomeBarrierTimeout: divergence caught by the kernel barrier
	// spin budget.
	OutcomeBarrierTimeout
	// OutcomeSignatureMismatch: divergence caught by the signature vote.
	OutcomeSignatureMismatch
	// OutcomeMasked: a TMR system voted out the faulty replica and
	// continued (Fig. 4).
	OutcomeMasked
)

var outcomeNames = map[Outcome]string{
	OutcomeNone:              "no-effect",
	OutcomeYCSBCorruption:    "ycsb-corruption",
	OutcomeYCSBError:         "ycsb-error",
	OutcomeUserMemFault:      "user-mem-fault",
	OutcomeOtherUserFault:    "other-user-fault",
	OutcomeKernelException:   "kernel-exception",
	OutcomeBarrierTimeout:    "barrier-timeout",
	OutcomeSignatureMismatch: "signature-mismatch",
	OutcomeMasked:            "masked",
}

// String returns the outcome name.
func (o Outcome) String() string {
	if s, ok := outcomeNames[o]; ok {
		return s
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// Controlled reports whether the outcome is a controlled error: the
// system detected the fault (or masked it) before corrupt state escaped.
func (o Outcome) Controlled() bool {
	switch o {
	case OutcomeKernelException, OutcomeBarrierTimeout,
		OutcomeSignatureMismatch, OutcomeMasked:
		return true
	}
	return false
}

// Observable reports whether the trial produced any observable error.
func (o Outcome) Observable() bool { return o != OutcomeNone }

// Tally accumulates trial outcomes.
type Tally struct {
	// Injected is the total number of bit flips performed.
	Injected uint64
	// Counts maps each outcome to its number of trials.
	Counts map[Outcome]uint64
}

// NewTally returns an empty tally.
func NewTally() *Tally {
	return &Tally{Counts: make(map[Outcome]uint64)}
}

// Add records one trial.
func (t *Tally) Add(o Outcome, injected uint64) {
	t.Injected += injected
	t.Counts[o]++
}

// Observed returns the number of trials with an observable error.
func (t *Tally) Observed() uint64 {
	var n uint64
	for o, c := range t.Counts {
		if o.Observable() {
			n += c
		}
	}
	return n
}

// Uncontrolled returns the number of trials whose error escaped
// detection.
func (t *Tally) Uncontrolled() uint64 {
	var n uint64
	for o, c := range t.Counts {
		if o.Observable() && !o.Controlled() {
			n += c
		}
	}
	return n
}

// Controlled returns the number of detected (or masked) trials.
func (t *Tally) Controlled() uint64 {
	var n uint64
	for o, c := range t.Counts {
		if o.Controlled() {
			n += c
		}
	}
	return n
}

// rng is a deterministic xorshift64 generator.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x2545F4914F6CDD1D
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	x := r.s
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.s = x
	return x
}

// intn returns a value in [0, n).
func (r *rng) intn(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return r.next() % n
}

// Region is a physical address range a campaign may target.
type Region struct {
	Name string
	Base uint64
	Size uint64
}

// pick selects a random (address, bit) in one of the regions, weighted by
// region size.
func pickTarget(r *rng, regions []Region) (uint64, uint) {
	var total uint64
	for _, reg := range regions {
		total += reg.Size
	}
	off := r.intn(total)
	for _, reg := range regions {
		if off < reg.Size {
			return reg.Base + off, uint(r.intn(8))
		}
		off -= reg.Size
	}
	last := regions[len(regions)-1]
	return last.Base, 0
}
