package faults

import (
	"errors"
	"fmt"

	"rcoe/internal/core"
	"rcoe/internal/harness"
	"rcoe/internal/workload"
)

// ErrNoDowngrade is returned when a recovery trial did not produce a
// masked downgrade.
var ErrNoDowngrade = errors.New("faults: no downgrade occurred")

// RecoveryOptions configures the Table X / Fig. 4 experiments: a TMR
// system running the KV workload has one replica's signature accumulator
// corrupted mid-run; the system votes it out and continues as DMR.
type RecoveryOptions struct {
	// System must be a TMR configuration with Masking enabled.
	System core.Config
	// FaultyReplica is the replica to corrupt (0 = the primary: the
	// expensive path).
	FaultyReplica int
	// InjectAfterOps delays the corruption into the run phase.
	InjectAfterOps uint64
	// Records/Operations configure the KV workload.
	Records, Operations uint64
	// Seed makes the run deterministic.
	Seed uint64
	// Reintegrate requests a live re-integration of the removed replica
	// once the downgrade completes, so the Fig. 4 timeline shows both the
	// downgrade dip and the re-integration dip.
	Reintegrate bool
}

// RecoveryResult reports a downgrade measurement.
type RecoveryResult struct {
	// Cycles is the measured recovery cost (Table X).
	Cycles uint64
	// WasPrimary reports whether the removed replica was the primary.
	WasPrimary bool
	// Ops/Throughput cover the whole run (service continued across the
	// downgrade — Fig. 4's point).
	Ops        uint64
	Throughput float64
	// WindowThroughput samples throughput over fixed windows for Fig. 4.
	WindowThroughput []float64
	// DowngradeWindow is the index of the window containing the
	// downgrade.
	DowngradeWindow int
	// ReintegrateWindow is the index of the window containing the live
	// re-integration (-1 when none was requested or applied).
	ReintegrateWindow int
	// Reintegrated reports whether the TMR configuration was restored.
	Reintegrated bool
}

// RecoveryTrial runs one masked-downgrade measurement.
func RecoveryTrial(opts RecoveryOptions) (RecoveryResult, error) {
	if opts.Records == 0 {
		opts.Records = 48
	}
	if opts.Operations == 0 {
		opts.Operations = 160
	}
	if opts.InjectAfterOps == 0 {
		opts.InjectAfterOps = opts.Operations / 3
	}
	sys := opts.System
	sys.Masking = true
	if sys.Replicas == 0 {
		sys.Replicas = 3
	}
	if sys.TickCycles == 0 {
		sys.TickCycles = 50_000
	}
	run, err := harness.NewKV(harness.KVOptions{
		System:      sys,
		Workload:    workload.YCSBA,
		Records:     opts.Records,
		Operations:  opts.Operations,
		TraceOutput: true,
		Seed:        opts.Seed | 1,
		// Packets lost in the failover window are retried quickly so the
		// Fig. 4 timeline shows the service dip, not the client timeout.
		RetryCycles: 300_000,
	})
	if err != nil {
		return RecoveryResult{}, err
	}
	const window = 150_000 // cycles per Fig. 4 throughput sample
	var res RecoveryResult
	res.DowngradeWindow = -1
	res.ReintegrateWindow = -1
	injected := false
	reintegrateAsked := false
	lastOps := uint64(0)
	var windowOps uint64
	budget := uint64(1_500_000_000)
	start := run.Sys.Machine().Now()
	nextWindow := start + window
	for !run.Done() {
		if halted, reason := run.Sys.Halted(); halted {
			return res, fmt.Errorf("faults: system halted instead of masking: %s", reason)
		}
		if run.Sys.Machine().Now()-start > budget {
			return res, fmt.Errorf("faults: recovery trial exceeded budget after %d ops", run.Snapshot().Ops)
		}
		run.StepChunk(2_000)
		snap := run.Snapshot()
		windowOps += snap.Ops - lastOps
		lastOps = snap.Ops
		if run.Sys.Machine().Now() >= nextWindow {
			nextWindow += window
			res.WindowThroughput = append(res.WindowThroughput, float64(windowOps)/(float64(window)/1e6))
			windowOps = 0
		}
		if !injected && snap.Ops >= opts.InjectAfterOps {
			injected = true
			lay := run.Sys.Replica(opts.FaultyReplica).K.Layout()
			if err := run.Sys.Machine().Mem().FlipBit(lay.SigPA()+8, 5); err != nil {
				return res, err
			}
			res.DowngradeWindow = len(res.WindowThroughput)
			res.WasPrimary = opts.FaultyReplica == run.Sys.Primary()
		}
		if opts.Reintegrate && injected && !reintegrateAsked &&
			!run.Sys.Alive(opts.FaultyReplica) {
			reintegrateAsked = true
			if err := run.Sys.RequestReintegrate(opts.FaultyReplica); err != nil {
				return res, err
			}
			res.ReintegrateWindow = len(res.WindowThroughput)
		}
	}
	_ = run.Sys.Run(50_000_000)
	snap := run.Snapshot()
	res.Ops = snap.Ops
	res.Throughput = snap.Throughput
	res.Cycles = snap.Stats.DowngradeCycles
	if !injected || res.Cycles == 0 {
		return res, ErrNoDowngrade
	}
	res.Reintegrated = reintegrateAsked && run.Sys.Stats().Reintegrations > 0
	if !res.Reintegrated && run.Sys.Alive(opts.FaultyReplica) {
		return res, fmt.Errorf("faults: replica %d was not removed", opts.FaultyReplica)
	}
	return res, nil
}
