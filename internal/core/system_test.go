package core

import (
	"strings"
	"testing"

	"rcoe/internal/asm"
	"rcoe/internal/isa"
	"rcoe/internal/kernel"
	"rcoe/internal/machine"
)

// cpuLoop builds a CPU-bound program: spin `iters` times, store the
// result at DataVA, exit.
func cpuLoop(t *testing.T, iters int64) []isa.Instr {
	t.Helper()
	b := asm.New()
	b.Li(5, 0)
	b.Li64(6, uint64(iters))
	b.Label("loop")
	b.Addi(5, 5, 1)
	b.Blt(5, 6, "loop")
	b.Li64(7, kernel.DataVA)
	b.St(8, 7, 5, 0)
	b.Mov(1, 5)
	b.Syscall(kernel.SysExit)
	prog, err := b.Assemble(kernel.TextVA)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// syscallLoop builds a program that makes `n` null syscalls then exits.
func syscallLoop(t *testing.T, n int64) []isa.Instr {
	t.Helper()
	b := asm.New()
	b.Li(5, 0)
	b.Li64(6, uint64(n))
	b.Label("loop")
	b.Syscall(kernel.SysNull)
	b.Addi(5, 5, 1)
	b.Blt(5, 6, "loop")
	b.Li(1, 0)
	b.Syscall(kernel.SysExit)
	prog, err := b.Assemble(kernel.TextVA)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func newSys(t *testing.T, cfg Config, prog []isa.Instr) *System {
	t.Helper()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Load(kernel.ProcessConfig{Prog: prog, DataBytes: 1 << 16}); err != nil {
		t.Fatal(err)
	}
	return sys
}

func mustFinish(t *testing.T, sys *System, budget uint64) {
	t.Helper()
	if err := sys.Run(budget); err != nil {
		halted, reason := sys.Halted()
		t.Fatalf("run failed: %v (halted=%v reason=%q detections=%v)",
			err, halted, reason, sys.Detections())
	}
}

func TestBaselineRunsToCompletion(t *testing.T) {
	sys := newSys(t, Config{Mode: ModeNone, TickCycles: 5000}, cpuLoop(t, 20000))
	mustFinish(t, sys, 10_000_000)
	v, _ := sys.Machine().Mem().ReadU(sys.Replica(0).K.Layout().UserPA()+0x11000, 8)
	_ = v // the data segment offset depends on text size; check via exit code instead
	if got := sys.Replica(0).K.Thread(0).ExitCode; got != 20000 {
		t.Fatalf("exit code = %d, want 20000", got)
	}
}

func TestLCDMRCompletesCPUBound(t *testing.T) {
	sys := newSys(t, Config{Mode: ModeLC, Replicas: 2, TickCycles: 20000}, cpuLoop(t, 50000))
	mustFinish(t, sys, 50_000_000)
	for rid := 0; rid < 2; rid++ {
		if got := sys.Replica(rid).K.Thread(0).ExitCode; got != 50000 {
			t.Fatalf("replica %d exit code = %d", rid, got)
		}
	}
	if len(sys.Detections()) != 0 {
		t.Fatalf("fault-free run had detections: %v", sys.Detections())
	}
}

func TestLCTMRCompletes(t *testing.T) {
	sys := newSys(t, Config{Mode: ModeLC, Replicas: 3, TickCycles: 20000}, cpuLoop(t, 30000))
	mustFinish(t, sys, 50_000_000)
	if sys.AliveCount() != 3 {
		t.Fatalf("alive = %d, want 3", sys.AliveCount())
	}
}

func TestLCDMRSyscallsStaySynced(t *testing.T) {
	sys := newSys(t, Config{Mode: ModeLC, Replicas: 2, TickCycles: 30000, Sig: SigArgs},
		syscallLoop(t, 500))
	mustFinish(t, sys, 100_000_000)
	ev0, sum0 := sys.Replica(0).K.Signature()
	ev1, sum1 := sys.Replica(1).K.Signature()
	if ev0 != ev1 || sum0 != sum1 {
		t.Fatalf("signatures diverged: (%d,%#x) vs (%d,%#x)", ev0, sum0, ev1, sum1)
	}
	if ev0 < 500 {
		t.Fatalf("event count = %d, want >= 500", ev0)
	}
}

func TestSigSyncVotesEverySyscall(t *testing.T) {
	sys := newSys(t, Config{Mode: ModeLC, Replicas: 2, TickCycles: 0, Sig: SigSync},
		syscallLoop(t, 100))
	mustFinish(t, sys, 100_000_000)
	if got := sys.Stats().SyscallVotes; got < 100 {
		t.Fatalf("syscall votes = %d, want >= 100", got)
	}
}

func TestCCDMRCompletesX86(t *testing.T) {
	sys := newSys(t, Config{Mode: ModeCC, Replicas: 2, TickCycles: 20000}, cpuLoop(t, 50000))
	mustFinish(t, sys, 100_000_000)
	for rid := 0; rid < 2; rid++ {
		if got := sys.Replica(rid).K.Thread(0).ExitCode; got != 50000 {
			t.Fatalf("replica %d exit code = %d", rid, got)
		}
	}
}

func TestCCRequiresBranchSitesOnArm(t *testing.T) {
	_, err := NewSystem(Config{Mode: ModeCC, Replicas: 2, Profile: machine.Arm()})
	if err == nil || !strings.Contains(err.Error(), "compiler-assisted") {
		t.Fatalf("expected compiler-assisted error, got %v", err)
	}
}

func TestDMRDetectsUserMemoryCorruption(t *testing.T) {
	sys := newSys(t, Config{Mode: ModeLC, Replicas: 2, TickCycles: 20000, Sig: SigArgs},
		syscallLoop(t, 10000))
	// Run a little, then corrupt replica 1's loop counter storage — not
	// in memory here; instead corrupt its user text so behaviour changes.
	sys.RunCycles(50_000)
	// Flip a bit in replica 1's text: turn the loop bound comparison.
	lay := sys.Replica(1).K.Layout()
	if err := sys.Machine().Mem().FlipBit(lay.UserPA()+8*2+4, 0); err != nil {
		t.Fatal(err)
	}
	err := sys.Run(200_000_000)
	if err == nil {
		t.Fatalf("corrupted replica not detected; run finished cleanly")
	}
	if len(sys.Detections()) == 0 {
		t.Fatalf("no detections recorded")
	}
}

func TestTMRMasksAndDowngrades(t *testing.T) {
	sys := newSys(t, Config{Mode: ModeLC, Replicas: 3, TickCycles: 20000,
		Sig: SigArgs, Masking: true}, syscallLoop(t, 10000))
	sys.RunCycles(50_000)
	// Corrupt replica 2's signature accumulator directly: the next vote
	// must identify replica 2 and downgrade to DMR.
	lay := sys.Replica(2).K.Layout()
	if err := sys.Machine().Mem().FlipBit(lay.SigPA()+8, 5); err != nil {
		t.Fatal(err)
	}
	mustFinish(t, sys, 400_000_000)
	if sys.AliveCount() != 2 {
		t.Fatalf("alive = %d, want 2 after downgrade", sys.AliveCount())
	}
	if sys.Alive(2) {
		t.Fatalf("replica 2 should have been removed")
	}
	var masked bool
	for _, d := range sys.Detections() {
		if d.Kind == DetectSignatureMismatch && d.Masked && d.Replica == 2 {
			masked = true
		}
	}
	if !masked {
		t.Fatalf("no masked detection recorded: %v", sys.Detections())
	}
}

func TestPrimaryDowngradeReelects(t *testing.T) {
	sys := newSys(t, Config{Mode: ModeLC, Replicas: 3, TickCycles: 20000,
		Sig: SigArgs, Masking: true}, syscallLoop(t, 10000))
	sys.RunCycles(50_000)
	lay := sys.Replica(0).K.Layout()
	if err := sys.Machine().Mem().FlipBit(lay.SigPA()+8, 5); err != nil {
		t.Fatal(err)
	}
	mustFinish(t, sys, 400_000_000)
	if sys.Alive(0) {
		t.Fatalf("primary should have been removed")
	}
	if got := sys.Primary(); got != 1 {
		t.Fatalf("new primary = %d, want 1", got)
	}
	if got := sys.Machine().IRQRoute(TimerLine); got != 1 {
		t.Fatalf("timer IRQ routed to %d, want 1", got)
	}
	if sys.Stats().DowngradeCycles < 10_000 {
		t.Fatalf("primary removal cost %d cycles; expected expensive path", sys.Stats().DowngradeCycles)
	}
}

func TestBarrierTimeoutOnHungReplica(t *testing.T) {
	sys := newSys(t, Config{Mode: ModeLC, Replicas: 2, TickCycles: 20000,
		BarrierTimeout: 100_000}, cpuLoop(t, 2_000_000))
	sys.RunCycles(30_000)
	// Hang replica 1 (simulates an unresponsive core).
	sys.Replica(1).Core().Park(func() bool { return false }, nil)
	err := sys.Run(50_000_000)
	if err == nil {
		t.Fatalf("hung replica not detected")
	}
	var timeout bool
	for _, d := range sys.Detections() {
		if d.Kind == DetectBarrierTimeout {
			timeout = true
		}
	}
	if !timeout {
		t.Fatalf("no barrier-timeout detection: %v", sys.Detections())
	}
}

func TestFaultVoteAlgorithmConsensus(t *testing.T) {
	sys, err := NewSystem(Config{Mode: ModeLC, Replicas: 3, Masking: true})
	if err != nil {
		t.Fatal(err)
	}
	// Example 1 from Table I: replica 2 has a different checksum.
	sys.sh.setRepWord(0, rwChecksum, 0xdeadbeef)
	sys.sh.setRepWord(1, rwChecksum, 0xdeadbeef)
	sys.sh.setRepWord(2, rwChecksum, 0x0badf00d)
	faulty, ok := sys.runFaultVote()
	if !ok || faulty != 2 {
		t.Fatalf("vote = (%d,%v), want (2,true)", faulty, ok)
	}
}

func TestFaultVoteAlgorithmNoConsensus(t *testing.T) {
	sys, err := NewSystem(Config{Mode: ModeLC, Replicas: 3, Masking: true})
	if err != nil {
		t.Fatal(err)
	}
	// Example 2 from Table I: all checksums differ.
	sys.sh.setRepWord(0, rwChecksum, 0x1111)
	sys.sh.setRepWord(1, rwChecksum, 0x2222)
	sys.sh.setRepWord(2, rwChecksum, 0x3333)
	_, ok := sys.runFaultVote()
	if ok {
		t.Fatalf("expected ERROR_DIFF_FAULT_REPLICA (no consensus)")
	}
}

func TestFaultVoteFiveReplicas(t *testing.T) {
	prof := machine.X86()
	prof.Cores = 5
	sys, err := NewSystem(Config{Mode: ModeLC, Replicas: 5, Masking: true, Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	for rid := 0; rid < 5; rid++ {
		sys.sh.setRepWord(rid, rwChecksum, 0xAAAA)
	}
	sys.sh.setRepWord(3, rwChecksum, 0xBBBB)
	faulty, ok := sys.runFaultVote()
	if !ok || faulty != 3 {
		t.Fatalf("vote = (%d,%v), want (3,true)", faulty, ok)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewSystem(Config{Mode: ModeNone, Replicas: 2}); err == nil {
		t.Fatalf("ModeNone with 2 replicas should fail")
	}
	if _, err := NewSystem(Config{Mode: ModeLC, Replicas: 1}); err == nil {
		t.Fatalf("ModeLC with 1 replica should fail")
	}
	if _, err := NewSystem(Config{Mode: ModeLC, Replicas: 2, Masking: true}); err == nil {
		t.Fatalf("masking DMR should fail")
	}
	if _, err := NewSystem(Config{Mode: ModeLC, Replicas: 9}); err == nil {
		t.Fatalf("more replicas than cores should fail")
	}
}

func TestKernelCanaryCorruptionFailStops(t *testing.T) {
	sys := newSys(t, Config{Mode: ModeLC, Replicas: 2, TickCycles: 20000,
		BarrierTimeout: 200_000}, syscallLoop(t, 100000))
	sys.RunCycles(30_000)
	lay := sys.Replica(0).K.Layout()
	if err := sys.Machine().Mem().FlipBit(lay.CanaryPA()+8, 2); err != nil {
		t.Fatal(err)
	}
	err := sys.Run(100_000_000)
	if err == nil {
		t.Fatalf("kernel corruption not detected")
	}
	var kernelExc bool
	for _, d := range sys.Detections() {
		if d.Kind == DetectKernelException && d.Replica == 0 {
			kernelExc = true
		}
	}
	if !kernelExc {
		t.Fatalf("no kernel-exception detection: %v", sys.Detections())
	}
}

func TestRunCyclesStopsOnFinished(t *testing.T) {
	sys := newSys(t, Config{Mode: ModeLC, Replicas: 2, TickCycles: 5000}, cpuLoop(t, 1000))
	sys.RunCycles(200_000_000)
	if !sys.Finished() {
		t.Fatalf("workload did not finish (detections=%v)", sys.Detections())
	}
	if now := sys.Machine().Now(); now >= 100_000_000 {
		t.Fatalf("RunCycles burned the budget past completion: now=%d", now)
	}
}
