package core

import (
	"reflect"
	"testing"
)

// TestSuperblockDecorrelatedBlockSets pins the decorrelation edge of the
// superblock engine: structurally decorrelated replicas run the same
// program from different physical layouts, so their cores must build
// *different* superblock sets (keyed by physical address) while the
// replicas themselves stay in lockstep — identical execution signatures,
// clean exits, and a vote that passes. A block cache keyed on anything
// coarser than the true physical placement would alias across replicas
// here and execute one replica's text on another.
func TestSuperblockDecorrelatedBlockSets(t *testing.T) {
	sys := newSys(t, Config{Mode: ModeLC, Replicas: 3, TickCycles: 20_000,
		Sig: SigArgs, Masking: true, Decorrelate: true, LayoutSeed: 7},
		syscallLoop(t, 60_000))
	mustFinish(t, sys, 2_000_000_000)

	ev0, sum0 := sys.Replica(0).K.Signature()
	sets := make([]map[uint64]bool, 3)
	for rid := 0; rid < 3; rid++ {
		if got := sys.Replica(rid).K.Thread(0).ExitCode; got != 0 {
			t.Fatalf("replica %d exit = %d", rid, got)
		}
		if ev, sum := sys.Replica(rid).K.Signature(); ev != ev0 || sum != sum0 {
			t.Fatalf("replica %d signature (%d,%#x) != replica 0 (%d,%#x)",
				rid, ev, sum, ev0, sum0)
		}
		pas := sys.Machine().BlockStartPAs(sys.Replica(rid).Core().ID)
		if len(pas) == 0 {
			t.Fatalf("replica %d built no superblocks; the engine never engaged", rid)
		}
		sets[rid] = make(map[uint64]bool, len(pas))
		for _, pa := range pas {
			sets[rid][pa] = true
		}
	}
	for a := 0; a < 3; a++ {
		for b := a + 1; b < 3; b++ {
			if reflect.DeepEqual(sets[a], sets[b]) {
				t.Fatalf("replicas %d and %d cached identical block sets (%d blocks) despite decorrelated layouts",
					a, b, len(sets[a]))
			}
		}
	}
}
