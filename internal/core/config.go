// Package core implements redundant co-execution (RCoE) — the paper's
// contribution. It replicates a complete software stack (kernel and user
// process) across CPU cores of the simulated machine, synchronises the
// replicas on kernel events, votes on compact Fletcher state signatures,
// and — in TMR configurations — masks errors by downgrading to DMR.
//
// Two coupling models are provided (§III):
//
//   - ModeLC (loosely coupled): logical time is the count of deterministic
//     kernel events. Cheap, but requires race-free applications.
//   - ModeCC (closely coupled): logical time is the triple
//     (event count, user branches, instruction pointer), giving
//     instruction-accurate synchronisation via hardware breakpoints. It
//     supports racy code and virtual machines at a higher cost.
//
// ModeNone runs a single unreplicated stack and serves as the baseline in
// every benchmark.
package core

import (
	"fmt"

	"rcoe/internal/machine"
)

// Mode selects the replication coupling model.
type Mode int

// Replication modes.
const (
	// ModeNone is the unreplicated baseline.
	ModeNone Mode = iota + 1
	// ModeLC is loosely-coupled RCoE.
	ModeLC
	// ModeCC is closely-coupled RCoE.
	ModeCC
)

// String returns the mode name used in the paper's tables.
func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "base"
	case ModeLC:
		return "LC"
	case ModeCC:
		return "CC"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// SigConfig selects how much state is folded into the signature and how
// often the replicas vote (§V-B): a performance/detection-latency
// trade-off.
type SigConfig int

// Signature configurations.
const (
	// SigIO ("N") synchronises and votes on I/O events only.
	SigIO SigConfig = iota + 1
	// SigArgs ("A", the default) additionally folds all system-call
	// arguments into the signature.
	SigArgs
	// SigSync ("S") additionally votes on every system call.
	SigSync
)

// String returns the configuration letter used in the paper.
func (s SigConfig) String() string {
	switch s {
	case SigIO:
		return "N"
	case SigArgs:
		return "A"
	case SigSync:
		return "S"
	}
	return fmt.Sprintf("sig(%d)", int(s))
}

// Config describes a replicated system.
type Config struct {
	// Mode is the coupling model.
	Mode Mode
	// Replicas is the replica count: 1 (with ModeNone), 2 (DMR) or
	// 3 (TMR). The voting algorithm supports any N >= 3.
	Replicas int
	// Sig is the signature configuration.
	Sig SigConfig
	// Profile is the machine profile; defaults to machine.X86().
	Profile machine.Profile
	// MemBytes is total physical memory; 0 picks a size from
	// PartitionBytes.
	MemBytes int
	// PartitionBytes is each replica's private physical partition.
	PartitionBytes uint64
	// TickCycles is the preemption-timer period in cycles; 0 disables
	// the tick. The tick bounds error-detection latency (§III-C).
	TickCycles uint64
	// BarrierTimeout is the spin budget, in cycles, before a replica
	// waiting on a kernel barrier declares a straggler divergent.
	BarrierTimeout uint64
	// WatchdogCycles is the synchronisation-watchdog period: when no
	// rendezvous has opened for this many cycles, a probe rendezvous is
	// opened so a silently dead primary (which receives all device
	// interrupts) is caught by the barrier timeout instead of hanging
	// the system. 0 selects 2*BarrierTimeout under Masking and disables
	// the watchdog otherwise.
	WatchdogCycles uint64
	// Masking enables TMR->DMR downgrade on a failed signature vote
	// (§IV). Requires Replicas >= 3.
	Masking bool
	// ExceptionBarriers makes user-level exceptions synchronisation
	// points, so a replica that faults alone is caught by a barrier
	// timeout rather than diverging silently (the Arm configuration in
	// Table VII).
	ExceptionBarriers bool
	// BranchSites is the set of instrumented branch addresses when the
	// program was compiled with the branch-counting pass (required for
	// ModeCC on profiles without a precise PMU). Keyed by virtual
	// address.
	BranchSites map[uint64]bool
	// ForceCompilerCounting makes CC-RCoE use the reserved-register
	// counter even on profiles with a precise PMU (the hardware- vs
	// compiler-assisted counting ablation). Requires BranchSites.
	ForceCompilerCounting bool
	// VM runs the workload inside a virtual-machine context: every
	// breakpoint and single-step forces a VM exit, and locating a
	// block-copy instruction requires a guest page-table walk (§III-D).
	VM bool
	// DisableFastForward turns off the machine's event-driven idle skip
	// for this system, forcing the naive cycle-by-cycle loop. The two
	// modes are bit-identical by contract (the differential determinism
	// tests enforce it); the naive loop exists for those tests and for
	// debugging suspected fast-forward drift.
	DisableFastForward bool
	// DisableExecCache turns off the machine's host-side execution cache
	// (predecoded instructions and translation memos) for this system,
	// forcing the naive fetch/translate/decode path. As with
	// DisableFastForward, the two modes are bit-identical by contract,
	// enforced by the differential determinism tests.
	DisableExecCache bool
	// DisableSuperblock turns off the machine's superblock engine (batched
	// execution of predecoded straight-line runs) for this system, forcing
	// per-cycle stepping. As with the other two accelerators, the modes
	// are bit-identical by contract, enforced by the differential
	// determinism tests across the full 8-variant cube.
	DisableSuperblock bool
	// Decorrelate gives each replica a structurally different memory
	// layout: the data and stack segments' virtual bases are shifted by a
	// distinct page-aligned per-replica delta, the physical placement
	// within the partition is padded and reordered, and address-literal
	// relocations in the program are patched to match. Replicas still
	// execute the identical instruction stream at identical text
	// addresses; the vote path canonicalizes the known pointer positions
	// (kernel.CanonVA), so fault-free runs vote clean. What changes is the
	// failure coverage: a wild pointer or a physical fault now corrupts
	// *different* program state in each replica, turning correlated silent
	// corruption into a detectable signature divergence.
	Decorrelate bool
	// LayoutSeed selects the per-replica deltas when Decorrelate is on
	// (0 = a fixed default). Deltas are bounded by kernel.MaxLayoutShift.
	LayoutSeed uint64
	// TraceSeed perturbs nothing functional; it seeds workload-level
	// randomness so repeated runs differ deterministically.
	TraceSeed uint64
	// Trace configures the flight recorder and metrics (off by default;
	// ~zero cost when disabled).
	Trace TraceConfig
}

// TraceConfig configures the observability subsystem: the per-replica
// flight recorder (internal/trace) and the metric set (internal/metrics).
// When Enabled is false — the default — the system carries nil recorder
// and metric pointers and every hook point is a single nil check, so the
// simulated cycle counts are bit-identical to a build without the
// subsystem (benchmarked by BenchmarkTraceOverhead).
type TraceConfig struct {
	// Enabled turns on event recording and metric collection.
	Enabled bool
	// RingEvents is each ring's capacity in events
	// (trace.DefaultRingEvents when 0).
	RingEvents int
}

// withDefaults validates the configuration and fills defaults.
func (c Config) withDefaults() (Config, error) {
	if c.Mode == 0 {
		c.Mode = ModeNone
	}
	if c.Replicas == 0 {
		if c.Mode == ModeNone {
			c.Replicas = 1
		} else {
			c.Replicas = 2
		}
	}
	if c.Mode == ModeNone && c.Replicas != 1 {
		return c, fmt.Errorf("core: ModeNone requires exactly 1 replica, got %d", c.Replicas)
	}
	if c.Mode != ModeNone && c.Replicas < 2 {
		return c, fmt.Errorf("core: replication requires >= 2 replicas, got %d", c.Replicas)
	}
	if c.Profile.Name == "" {
		c.Profile = machine.X86()
	}
	if c.Replicas > c.Profile.Cores {
		return c, fmt.Errorf("core: %d replicas exceed %d cores", c.Replicas, c.Profile.Cores)
	}
	if c.Sig == 0 {
		c.Sig = SigArgs
	}
	if c.PartitionBytes == 0 {
		c.PartitionBytes = 8 << 20
	}
	if c.BarrierTimeout == 0 {
		c.BarrierTimeout = 2_000_000
	}
	if c.Masking && c.Replicas < 3 {
		return c, fmt.Errorf("core: masking requires TMR (>= 3 replicas)")
	}
	if c.Mode == ModeCC && (!c.Profile.PrecisePMU || c.ForceCompilerCounting) && c.BranchSites == nil {
		return c, fmt.Errorf("core: CC-RCoE on %s needs compiler-assisted branch counting (BranchSites)", c.Profile.Name)
	}
	if c.VM && c.Profile.Costs.VMExit == 0 {
		return c, fmt.Errorf("core: profile %s has no hypervisor support", c.Profile.Name)
	}
	if c.MemBytes == 0 {
		c.MemBytes = int(sharedSize+dmaSize) + c.Replicas*int(c.PartitionBytes) + (1 << 20)
	}
	return c, nil
}

// watchdogCycles resolves the effective synchronisation-watchdog period:
// the configured value, or twice the barrier timeout for masking
// configurations (0 = watchdog disabled).
func (c Config) watchdogCycles() uint64 {
	if c.WatchdogCycles != 0 {
		return c.WatchdogCycles
	}
	if c.Masking {
		return 2 * c.BarrierTimeout
	}
	return 0
}

// DetectionKind classifies how the system detected (or failed to detect)
// an error.
type DetectionKind int

// Detection kinds, matching the error categories of Tables VII-IX.
const (
	// DetectSignatureMismatch is a failed vote on state signatures.
	DetectSignatureMismatch DetectionKind = iota + 1
	// DetectBarrierTimeout is a straggler replica exceeding the kernel
	// barrier spin budget.
	DetectBarrierTimeout
	// DetectKernelException is a replica kernel failing internal checks
	// (canary, context corruption) and fail-stopping.
	DetectKernelException
	// DetectUserFault is a user-level exception observed by a replica
	// kernel (only a detection when exception barriers vote on it).
	DetectUserFault
	// DetectVoteInconclusive means the replicas could not agree on the
	// faulty replica's identity (Listing 5's ERROR_DIFF_FAULT_REPLICA).
	DetectVoteInconclusive
)

var detectionNames = map[DetectionKind]string{
	DetectSignatureMismatch: "signature-mismatch",
	DetectBarrierTimeout:    "barrier-timeout",
	DetectKernelException:   "kernel-exception",
	DetectUserFault:         "user-fault",
	DetectVoteInconclusive:  "vote-inconclusive",
}

// String returns the detection kind name.
func (k DetectionKind) String() string {
	if s, ok := detectionNames[k]; ok {
		return s
	}
	return fmt.Sprintf("detection(%d)", int(k))
}

// Detection records one detection event.
type Detection struct {
	Kind DetectionKind
	// Cycle is the global machine cycle at detection.
	Cycle uint64
	// Replica is the implicated replica, or -1 when unknown.
	Replica int
	// Masked reports whether the error was masked by downgrading.
	Masked bool
}
