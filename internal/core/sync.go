package core

import (
	"fmt"

	"rcoe/internal/trace"
)

// syncPending reports whether a synchronisation generation is open.
func (s *System) syncPending() bool { return s.sh.word(wSyncGen) != 0 }

// arriveGen returns the generation a replica last arrived at.
func (s *System) arriveGen(r *Replica) uint64 { return s.sh.repWord(r.ID, rwArriveGen) }

// released reports whether the replica has already been released from the
// currently open generation (it must not re-enter it).
func (s *System) released(r *Replica) bool {
	return s.releasedSet&(1<<uint(r.ID)) != 0
}

// aliveIDs returns the alive replica IDs in ascending order.
func (s *System) aliveIDs() []int {
	ids := make([]int, 0, len(s.reps))
	for rid := range s.reps {
		if s.sh.alive(rid) {
			ids = append(ids, rid)
		}
	}
	return ids
}

// requestSync opens a synchronisation generation (or merges into the open
// one) and kicks the other replicas with IPIs. kind is a bitmask of
// syncIRQ/syncFinal; lines is the pending device-interrupt mask.
func (s *System) requestSync(requester int, kind, lines uint64) {
	if s.sh.word(wSyncGen) != 0 {
		s.sh.setWord(wSyncKind, s.sh.word(wSyncKind)|kind)
		s.sh.setWord(wSyncLines, s.sh.word(wSyncLines)|lines)
		return
	}
	s.syncCounter++
	s.releasedSet = 0
	s.lastSyncOpen = s.m.Now()
	s.trSys(trace.KindBarrierOpen, s.syncCounter, kind)
	s.sh.setWord(wReleaseGen, 0)
	s.sh.setWord(wVoteOutcome, 0)
	s.sh.setWord(wSyncKind, kind)
	s.sh.setWord(wSyncLines, lines)
	s.sh.setWord(wSyncGen, s.syncCounter)
	for _, rid := range s.aliveIDs() {
		if rid != requester {
			s.m.SendIPI(rid)
		}
	}
}

// maxAliveTime returns the largest published logical time among alive
// replicas (published times are refreshed on every kernel entry, so they
// are safe lower bounds for the catch-up decision).
func (s *System) maxAliveTime() logicalTime {
	var maxT logicalTime
	first := true
	for _, rid := range s.aliveIDs() {
		t := s.sh.readTime(rid)
		if first || maxT.less(t) {
			maxT = t
			first = false
		}
	}
	return maxT
}

// allArrivedEqual reports whether every alive replica is parked at gen
// with identical logical times — the rendezvous completion condition.
// Requiring the parked flag (not just an arrival) prevents completing on
// a transient time published by a replica still mid-catch-up.
func (s *System) allArrivedEqual(gen uint64) bool {
	var ref logicalTime
	first := true
	for _, rid := range s.aliveIDs() {
		if s.sh.repWord(rid, rwArriveGen) != gen {
			return false
		}
		if s.sh.repWord(rid, rwParkedGen) != gen {
			return false
		}
		t := s.sh.readTime(rid)
		if first {
			ref = t
			first = false
		} else if !ref.equal(t) {
			return false
		}
	}
	return !first
}

// enterRendezvous is called at a kernel entry while a synchronisation is
// pending: the replica publishes its logical time and either parks (it is
// the leader or level) or resumes execution to catch up (§III-C).
func (s *System) enterRendezvous(r *Replica) {
	gen := s.sh.word(wSyncGen)
	if gen == 0 {
		s.afterKernel(r)
		return
	}
	lt := s.timeOf(r)
	s.sh.publishTime(r.ID, lt)
	s.sh.setRepWord(r.ID, rwArriveGen, gen)
	s.publishSignature(r)
	s.trEvent(r, trace.KindBarrierJoin, gen, 0)
	if debugArrive != nil {
		debugArrive(r.ID, gen, lt, s.m.Now(), r.Core().Regs[5]<<32|r.Core().Regs[27])
	}
	maxT := s.maxAliveTime()
	if lt.less(maxT) && s.canAdvance(r) {
		s.catchUp(r, maxT)
		return
	}
	s.parkAtRendezvous(r, gen)
}

// canAdvance reports whether the replica can make user-level progress (it
// has a runnable thread and has not finished).
func (s *System) canAdvance(r *Replica) bool {
	return !r.finished && r.K.CurrentTID() >= 0
}

// publishSignature copies the replica's (event count, checksum) into its
// shared block for voting.
func (s *System) publishSignature(r *Replica) {
	ev, sum := r.K.Signature()
	s.sh.setRepWord(r.ID, rwSigEvents, ev)
	s.sh.setRepWord(r.ID, rwChecksum, sum)
}

// catchUp resumes a trailing replica. Under LC it simply continues until
// its event count matches; under CC, when it is level on events, it arms
// a global instruction breakpoint at the leader's instruction pointer and
// chases (§III-C).
func (s *System) catchUp(r *Replica, target logicalTime) {
	if s.cfg.Mode == ModeCC && target.Events == s.sh.repWord(r.ID, rwEvents) &&
		target.IP != ^uint64(0) {
		r.chasing = true
		r.chaseTarget = target
		c := r.Core()
		myT := s.timeOf(r)
		my := myT.Branches
		// The leader parked mid-block at this replica's exact (branches,
		// IP): an instruction breakpoint at that IP would re-fire on the
		// very next fetch (rep-style ops stay on the same PC), paying a
		// debug exception before the watchpoint can even arm. Go straight
		// to the data watchpoint at the leader's remaining count.
		if target.Branches == myT.Branches && target.IP == myT.IP &&
			target.BlockRem > 0 && myT.BlockRem > target.BlockRem {
			c.BlockWatch.Rem = target.BlockRem
			c.BlockWatch.Enabled = true
			c.BP.Enabled = false
			c.ResumeOnce = false
			return
		}
		// Large deficits are covered with a PMU overflow interrupt —
		// free-running until just short of the leader — and only the tail
		// uses per-iteration breakpoints. Without this, a breakpoint in a
		// tight loop costs a debug exception per iteration for the whole
		// distance (§VI's planned ReVirt-style optimisation).
		const coarseTail = 8
		if s.met != nil && target.Branches > my {
			s.met.CatchUpDeficit.Observe(target.Branches - my)
		}
		if target.Branches > my && target.Branches-my > 2*coarseTail {
			c.BranchWatch.Target = c.UserBranches + (target.Branches - my) - coarseTail
			c.BranchWatch.Enabled = true
			c.BP.Enabled = false
			c.ResumeOnce = false
			return
		}
		c.BP.Addr = target.IP
		c.BP.Enabled = true
		c.ResumeOnce = false
	}
	// Returning resumes user execution; the replica re-enters through its
	// next kernel entry (breakpoint, syscall, or IPI).
}

// clearChase disarms the catch-up breakpoint and branch watch.
func (s *System) clearChase(r *Replica) {
	r.chasing = false
	c := r.Core()
	c.BP.Enabled = false
	c.SingleStep = false
	c.ResumeOnce = false
	c.BranchWatch.Enabled = false
	c.BlockWatch.Enabled = false
}

// parkAtRendezvous spins the replica on the kernel barrier until all
// replicas are level, someone overtakes it, the vote releases it, or the
// spin budget expires (straggler detection).
func (s *System) parkAtRendezvous(r *Replica, gen uint64) {
	s.clearChase(r)
	s.sh.setRepWord(r.ID, rwParkedGen, gen)
	r.barrierStart = r.Core().Cycles
	s.armRendezvousPark(r, gen)
}

// armRendezvousPark installs the rendezvous park closures, using the
// already-recorded barrierStart for the spin budget. Split from
// parkAtRendezvous so a snapshot restore can re-arm the park without
// re-running its side effects (in particular without resetting the spin
// budget, which must survive a checkpoint for determinism).
func (s *System) armRendezvousPark(r *Replica, gen uint64) {
	r.park = parkDesc{kind: parkRendezvous, gen: gen}
	c := r.Core()
	c.Park(func() bool {
		if s.halted {
			return true
		}
		if s.sh.word(wReleaseGen) == gen {
			return true
		}
		if s.canAdvance(r) {
			myT := s.sh.readTime(r.ID)
			if myT.less(s.maxAliveTime()) {
				return true // overtaken: resume and catch up
			}
		}
		if s.allArrivedEqual(gen) {
			s.completeRendezvous(gen)
			return true
		}
		return c.Cycles-r.barrierStart > s.cfg.BarrierTimeout
	}, func() {
		switch {
		case s.halted:
			c.Halt()
		case s.sh.word(wReleaseGen) == gen:
			s.releaseFromRendezvous(r, gen)
		case s.canAdvance(r) && s.sh.readTime(r.ID).less(s.maxAliveTime()):
			s.sh.setRepWord(r.ID, rwParkedGen, 0)
			s.catchUp(r, s.maxAliveTime())
		default:
			if s.barrierTimeout(r, gen) {
				if !s.sh.alive(r.ID) {
					// The waiter itself was the minority-time straggler.
					c.SetOffline()
					return
				}
				// Straggler ejected: rejoin the still-open rendezvous with
				// the surviving replicas (fresh spin budget).
				s.parkAtRendezvous(r, gen)
			}
		}
	})
	// The only time-driven exit is the spin-budget expiry; everything else
	// (release, overtake, level-up) comes from peers executing.
	c.ParkWakeAt(r.barrierStart + s.cfg.BarrierTimeout + 1)
}

// completeRendezvous runs when the last replica levels up: it votes on
// the published signatures and releases the barrier. On a failed vote it
// runs the fault-voting algorithm and downgrades or halts (§IV).
func (s *System) completeRendezvous(gen uint64) {
	s.stats.Syncs++
	agreed := s.compareSignatures()
	if s.met != nil {
		s.met.Syncs.Inc()
		s.met.Votes.Inc()
		s.met.VoteLatency.Observe(s.m.Now() - s.lastSyncOpen)
	}
	if s.rec != nil {
		outcome := uint64(0)
		if !agreed {
			outcome = 1
		}
		s.trSys(trace.KindVote, gen, outcome)
	}
	if !agreed {
		s.handleVoteFailure()
		if s.halted {
			return
		}
	}
	// Successful (or masked) vote: mark completion of a finished workload.
	if s.sh.word(wSyncKind)&syncFinal != 0 && s.allAliveFinished() {
		s.finished = true
	}
	s.sh.setWord(wReleaseGen, gen)
}

func (s *System) allAliveFinished() bool {
	for _, rid := range s.aliveIDs() {
		if s.sh.repWord(rid, rwDoneFlag) == 0 {
			return false
		}
	}
	return true
}

// compareSignatures reports whether all alive replicas published equal
// (event count, checksum) signatures.
func (s *System) compareSignatures() bool {
	s.stats.Votes++
	ids := s.aliveIDs()
	for _, rid := range ids {
		s.reps[rid].Core().AddStall(20 * len(ids)) // redundant comparison cost
	}
	refEv := s.sh.repWord(ids[0], rwSigEvents)
	refSum := s.sh.repWord(ids[0], rwChecksum)
	for _, rid := range ids[1:] {
		if s.sh.repWord(rid, rwSigEvents) != refEv || s.sh.repWord(rid, rwChecksum) != refSum {
			return false
		}
	}
	return true
}

// releaseFromRendezvous finishes one replica's participation: apply the
// vote outcome, deliver the synchronised interrupts to the local kernel,
// reset the branch clock, and clean up when last out.
func (s *System) releaseFromRendezvous(r *Replica, gen uint64) {
	outcome := s.sh.word(wVoteOutcome)
	if outcome != 0 && outcome != ^uint64(0) {
		faulty := int(outcome - 1)
		if faulty == r.ID {
			// "The faulty replica removes itself while the others wait."
			r.Core().SetOffline()
			s.markReleased(r, gen)
			return
		}
	}
	kind := s.sh.word(wSyncKind)
	lines := s.sh.word(wSyncLines)
	if kind&syncIRQ != 0 {
		if s.cfg.VM {
			r.Core().AddStall(s.cfg.Profile.Costs.VMExit)
			s.stats.VMExits++
		}
		s.deliverLines(r, lines)
	}
	s.resetBranchClock(r)
	if s.rec != nil {
		wait := r.Core().Cycles - r.barrierStart
		s.trEvent(r, trace.KindBarrierRelease, gen, wait)
		s.met.BarrierWait.Observe(wait)
	}
	// Republish the post-reset logical time: stale pre-reset values would
	// look "ahead" to peers and send them chasing ghosts.
	s.sh.publishTime(r.ID, s.timeOf(r))
	if debugRelease != nil {
		c := r.Core()
		debugRelease(r.ID, gen, c.PC, c.Regs[5], c.Regs[27], s.m.Now())
	}
	r.Core().AddStall(60) // protocol bookkeeping cost per replica
	s.markReleased(r, gen)
	if r.finished {
		s.finishedPark(r)
		return
	}
	s.afterKernel(r)
}

// markReleased tracks barrier egress; the last replica out clears the
// synchronisation words.
func (s *System) markReleased(r *Replica, gen uint64) {
	s.releasedSet |= 1 << uint(r.ID)
	alive := s.sh.word(wAliveMask)
	if s.releasedSet&alive == alive && s.sh.word(wReleaseGen) == gen {
		s.sh.setWord(wSyncGen, 0)
		s.sh.setWord(wSyncKind, 0)
		s.sh.setWord(wSyncLines, 0)
		s.sh.setWord(wReleaseGen, 0)
		s.sh.setWord(wVoteOutcome, 0)
		// The rendezvous is fully drained: every survivor has voted and
		// released, so this is the quiesce point a live re-integration
		// request waits for.
		s.applyPendingReintegrate()
	}
}

// finishedPark parks a completed replica; it still answers IPIs so that
// later synchronisations (other replicas finishing, faults) can include
// it.
func (s *System) finishedPark(r *Replica) {
	r.park = parkDesc{kind: parkFinished}
	c := r.Core()
	c.Park(func() bool {
		if s.halted || s.finished {
			return true
		}
		return s.syncPending() && !s.released(r)
	}, func() {
		if s.halted || s.finished {
			c.Halt()
			return
		}
		s.enterRendezvous(r)
	})
	// Wakes only on halt, finish, or a peer opening a synchronisation —
	// all effects of other cores executing.
	c.ParkWakeNever()
}

// barrierTimeout fires when a replica exhausted its spin budget waiting
// for stragglers at a rendezvous. Under a masking TMR configuration the
// non-responsive replica is ejected and the survivors continue as DMR;
// otherwise divergence is detected but (per §IV-A) not recoverable and
// the system fail-stops. Returns true when the waiting replica should
// re-enter the barrier.
func (s *System) barrierTimeout(r *Replica, gen uint64) bool {
	straggler := s.rendezvousStraggler(gen)
	if straggler == -1 {
		// Every alive replica arrived and parked, yet the rendezvous never
		// completed: the published logical times disagree. With three or
		// more voters a single dissenting time identifies the faulty
		// replica (the majority cannot all be wrong under the single-fault
		// assumption, as in Listing 5's vote).
		straggler = s.timeMinority()
	}
	if straggler == -1 {
		s.record(DetectBarrierTimeout, -1, false)
		s.halt(fmt.Sprintf("barrier timeout with diverged replica times (gen %d)", gen))
		return false
	}
	return s.ejectStraggler(straggler)
}

// timeMinority returns the one alive replica whose published logical time
// disagrees with an agreeing majority of all the others, or -1 when no
// such consensus exists.
func (s *System) timeMinority() int {
	ids := s.aliveIDs()
	n := len(ids)
	if n < 3 {
		return -1
	}
	best, bestCount := -1, 0
	for _, rid := range ids {
		t := s.sh.readTime(rid)
		count := 0
		for _, o := range ids {
			if s.sh.readTime(o).equal(t) {
				count++
			}
		}
		if count > bestCount {
			bestCount = count
			best = rid
		}
	}
	if bestCount != n-1 {
		return -1
	}
	ref := s.sh.readTime(best)
	for _, rid := range ids {
		if !s.sh.readTime(rid).equal(ref) {
			return rid
		}
	}
	return -1
}

// rendezvousStraggler identifies the replica holding up generation gen:
// first one that never arrived, else one that arrived but never parked
// (lost mid-catch-up, e.g. a CC chase that cannot converge). Returns -1
// when all alive replicas are arrived and parked.
func (s *System) rendezvousStraggler(gen uint64) int {
	for _, rid := range s.aliveIDs() {
		if s.sh.repWord(rid, rwArriveGen) != gen {
			return rid
		}
	}
	for _, rid := range s.aliveIDs() {
		if s.sh.repWord(rid, rwParkedGen) != gen {
			return rid
		}
	}
	return -1
}

// eventBarrierTimeout is barrierTimeout's analogue for event barriers,
// where arrival is tracked by the per-replica vote-event word rather than
// a rendezvous generation.
func (s *System) eventBarrierTimeout(r *Replica, ev uint64) bool {
	straggler := -1
	for _, rid := range s.aliveIDs() {
		if s.sh.repWord(rid, rwVoteEvent) < ev {
			straggler = rid
			break
		}
	}
	if straggler == -1 {
		s.record(DetectBarrierTimeout, -1, false)
		s.halt(fmt.Sprintf("event barrier timeout at event %d", ev))
		return false
	}
	return s.ejectStraggler(straggler)
}

// debugChase, when set, observes every catch-up comparison (tests only).
var debugChase func(rid int, lt, target logicalTime)

// debugArrive, when set, observes every rendezvous arrival (tests only).
var debugArrive func(rid int, gen uint64, lt logicalTime, now, cycles uint64)

// debugStale, when set, observes dropped debug exceptions (tests only).
var debugStale func(what string, rid int, now uint64)

// debugRelease, when set, observes rendezvous releases (tests only).
var debugRelease func(rid int, gen, pc, r5, rbc, now uint64)

// onBreakpoint services the catch-up breakpoint: compare the precise
// logical clocks and either join the rendezvous, step over the breakpoint
// and keep chasing, or (if somehow ahead) park and let the others chase.
func (s *System) onBreakpoint(r *Replica) {
	r.DebugExceptions++
	c := r.Core()
	c.AddStall(s.cfg.Profile.Costs.DebugException)
	if s.cfg.VM {
		c.AddStall(s.cfg.Profile.Costs.VMExit)
		s.stats.VMExits++
	}
	if !r.chasing {
		if debugStale != nil {
			debugStale("stale-bp", r.ID, s.m.Now())
		}
		// Stale breakpoint (e.g. chase abandoned): disarm and continue.
		s.clearChase(r)
		s.afterKernel(r)
		return
	}
	lt := s.timeOf(r)
	s.sh.publishTime(r.ID, lt)
	target := s.maxAliveTime()
	if debugChase != nil {
		debugChase(r.ID, lt, target)
	}
	switch {
	case lt.equal(target):
		s.clearChase(r)
		gen := s.sh.word(wSyncGen)
		if gen == 0 {
			s.afterKernel(r)
			return
		}
		s.sh.setRepWord(r.ID, rwArriveGen, gen)
		s.publishSignature(r)
		s.parkAtRendezvous(r, gen)
	case lt.less(target):
		// Still behind: step over the breakpoint. With a resume flag
		// this is one debug exception; without one (Arm) the kernel must
		// disable the breakpoint and single-step, paying a second
		// "mismatch" exception (§III-D).
		if s.rec != nil {
			s.trEvent(r, trace.KindCatchUpStep, target.Branches-lt.Branches, target.IP)
		}
		switch {
		case lt.Events == target.Events && lt.Branches == target.Branches &&
			lt.IP == target.IP && target.BlockRem > 0:
			// The leader stopped *inside* the block instruction this
			// replica is executing. The resume flag suppresses the
			// breakpoint until the instruction completes, which would
			// free-run the entire remaining block and overshoot; instead,
			// place a data-write watchpoint at the leader's destination
			// cursor (position inside a rep copy maps 1:1 onto the
			// destination address), which stops the block op at exactly
			// the leader's remaining count in a single debug exception
			// (§III-D's rep-prefix case).
			c.BP.Enabled = false
			c.BlockWatch.Rem = target.BlockRem
			c.BlockWatch.Enabled = true
		case s.cfg.Profile.HasResumeFlag:
			c.ResumeOnce = true
		default:
			c.BP.Enabled = false
			c.SingleStep = true
		}
	default:
		// Overshot the leader: publish (done above) and park; the
		// others will now chase us. Divergence surfaces as a timeout.
		s.clearChase(r)
		gen := s.sh.word(wSyncGen)
		if gen == 0 {
			s.afterKernel(r)
			return
		}
		s.sh.setRepWord(r.ID, rwArriveGen, gen)
		s.publishSignature(r)
		s.parkAtRendezvous(r, gen)
	}
}

// onBranchWatch handles the PMU overflow interrupt that ends the coarse
// catch-up phase: the replica is now within a few branches of the leader
// and re-enters the rendezvous, which arms the precise breakpoint for the
// remaining distance.
func (s *System) onBranchWatch(r *Replica) {
	c := r.Core()
	c.AddStall(s.cfg.Profile.Costs.IRQDeliver)
	if s.cfg.VM {
		c.AddStall(s.cfg.Profile.Costs.VMExit)
		s.stats.VMExits++
	}
	if !r.chasing || !s.syncPending() {
		s.clearChase(r)
		s.afterKernel(r)
		return
	}
	s.enterRendezvous(r)
}

// onSingleStep is the second half of the no-resume-flag protocol: the
// instruction under the breakpoint has executed; re-arm and continue.
func (s *System) onSingleStep(r *Replica) {
	r.DebugExceptions++
	c := r.Core()
	c.AddStall(s.cfg.Profile.Costs.DebugException)
	if s.cfg.VM {
		c.AddStall(s.cfg.Profile.Costs.VMExit)
		s.stats.VMExits++
	}
	if r.chasing {
		c.BP.Addr = r.chaseTarget.IP
		c.BP.Enabled = true
	} else if debugStale != nil {
		debugStale("sstep-nochase", r.ID, s.m.Now())
	}
}

// eventBarrier synchronises all alive replicas at a specific event number
// (per-syscall votes under SigSync and the FT_Mem_* driver calls, which
// "only perform operations when all replicas are in sync"). action runs
// exactly once at completion (device-side work); cont runs on every
// replica after release. desc describes the barrier (kind, event number,
// and the arguments needed to rebuild action/cont) so a snapshot restore
// can re-arm the park.
func (s *System) eventBarrier(r *Replica, desc parkDesc, action func(), cont func()) {
	// Publish the post-bump logical time: replicas parked at an open
	// rendezvous must see this replica as "ahead" so they resume and
	// catch up to this event instead of timing out.
	s.sh.publishTime(r.ID, s.timeOf(r))
	s.sh.setRepWord(r.ID, rwVoteEvent, desc.ev)
	_, sum := r.K.Signature()
	s.sh.setRepWord(r.ID, rwVoteSum, sum)
	r.barrierStart = r.Core().Cycles
	s.armEventBarrier(r, desc, action, cont)
}

// armEventBarrier installs the event-barrier park closures against the
// already-recorded barrierStart (the restore-safe half of eventBarrier).
func (s *System) armEventBarrier(r *Replica, desc parkDesc, action func(), cont func()) {
	r.park = desc
	ev := desc.ev
	c := r.Core()
	c.Park(func() bool {
		if s.halted {
			return true
		}
		if s.sh.word(wVoteRelease) >= ev {
			return true
		}
		if s.allVotedAt(ev) {
			s.completeEventBarrier(ev, action)
			return true
		}
		return c.Cycles-r.barrierStart > s.cfg.BarrierTimeout
	}, func() {
		switch {
		case s.halted:
			c.Halt()
		case s.sh.word(wVoteRelease) >= ev:
			outcome := s.sh.word(wVoteOutcome)
			if outcome != 0 && outcome != ^uint64(0) && int(outcome-1) == r.ID {
				c.SetOffline()
				return
			}
			if s.rec != nil {
				wait := c.Cycles - r.barrierStart
				s.trEvent(r, trace.KindBarrierRelease, ev, wait)
				s.met.BarrierWait.Observe(wait)
			}
			c.AddStall(40) // barrier bookkeeping
			cont()
		default:
			if s.eventBarrierTimeout(r, ev) {
				if !s.sh.alive(r.ID) {
					c.SetOffline()
					return
				}
				s.eventBarrier(r, desc, action, cont)
			}
		}
	})
	// As at the rendezvous park: only the spin budget is time-driven.
	c.ParkWakeAt(r.barrierStart + s.cfg.BarrierTimeout + 1)
}

// allVotedAt reports whether every alive replica has arrived at event ev
// (or later) of the per-syscall vote sequence.
func (s *System) allVotedAt(ev uint64) bool {
	for _, rid := range s.aliveIDs() {
		if s.sh.repWord(rid, rwVoteEvent) < ev {
			return false
		}
	}
	return true
}

// completeEventBarrier compares the published vote checksums, handles a
// failed vote, runs the device-side action, and releases the barrier.
func (s *System) completeEventBarrier(ev uint64, action func()) {
	s.stats.Votes++
	ids := s.aliveIDs()
	ref := s.sh.repWord(ids[0], rwVoteSum)
	equal := true
	for _, rid := range ids[1:] {
		if s.sh.repWord(rid, rwVoteSum) != ref {
			equal = false
			break
		}
	}
	if s.rec != nil {
		s.met.Votes.Inc()
		outcome := uint64(0)
		if !equal {
			outcome = 1
		}
		s.trSys(trace.KindVote, ev, outcome)
	}
	if !equal {
		// The fault-vote algorithm operates on the published comparison
		// values: copy the per-syscall vote sums into the checksum array
		// Listing 5 reads, so consensus reflects this vote, not a stale
		// rendezvous signature.
		for _, rid := range ids {
			s.sh.setRepWord(rid, rwChecksum, s.sh.repWord(rid, rwVoteSum))
		}
		s.handleVoteFailure()
		if s.halted {
			return
		}
	}
	if action != nil {
		action()
	}
	s.sh.setWord(wVoteRelease, ev)
}
