package core

import (
	"errors"
	"fmt"

	"rcoe/internal/isa"
	"rcoe/internal/kernel"
	"rcoe/internal/machine"
	"rcoe/internal/metrics"
	"rcoe/internal/trace"
)

// ErrHalted is returned by Run when the system fail-stopped.
var ErrHalted = errors.New("core: system halted")

// Replica bundles one software-stack replica: a kernel on a dedicated
// core over a private memory partition.
type Replica struct {
	ID int
	K  *kernel.Kernel

	// chasing is true while the replica is catching up to the leader
	// under CC-RCoE with an armed breakpoint.
	chasing     bool
	chaseTarget logicalTime

	// finished is true once the replica's workload completed.
	finished bool

	// stallPending marks the replica to hang at its next kernel entry
	// (injected fault: a core that stops making progress).
	stallPending bool

	// barrierStart is the core cycle at which the replica began waiting
	// on the current rendezvous (for timeout detection).
	barrierStart uint64

	// UserFaults counts user-level exceptions taken by this replica;
	// UserMemFaults is the memory-fault subset (the fault-injection
	// campaigns report the two separately, as in Table VII).
	UserFaults    uint64
	UserMemFaults uint64
	// DebugExceptions counts breakpoint and single-step exceptions.
	DebugExceptions uint64

	// park describes the park this replica's core most recently entered
	// (the wait closures themselves cannot be serialized; the descriptor
	// lets a snapshot restore re-arm an equivalent park). It is recorded
	// by the arm* installers and never cleared — stale while running.
	park parkDesc
}

// Core returns the replica's CPU core.
func (r *Replica) Core() *machine.Core { return r.K.Core() }

// Stats aggregates system-level counters for reporting.
type Stats struct {
	Syncs           uint64 // completed rendezvous
	Votes           uint64 // signature comparisons
	SyscallVotes    uint64 // per-syscall votes (SigSync)
	VMExits         uint64 // VM exits forced (VM configurations)
	InputBytes      uint64 // bytes replicated through the input buffer
	DowngradeCycles uint64 // cycles consumed by the last downgrade
	Reintegrations  uint64 // completed DMR->TMR upgrades (§IV-C)
	Ejections       uint64 // stragglers voted out on barrier timeout
	Downgrades      uint64 // faulty replicas voted out by signature (§IV-A)
	WatchdogProbes  uint64 // probe rendezvous opened by the sync watchdog
}

// System is a replicated (or baseline) software stack on one machine.
type System struct {
	cfg  Config
	m    *machine.Machine
	sh   shared
	reps []*Replica

	syncCounter  uint64 // generation allocator (monotonic)
	releaseGen   uint64 // rendezvous release marker (host-side control)
	releasedSet  uint64 // replicas released from the current rendezvous
	voteFailGen  uint64 // generation whose vote failed (pending masking)
	lastSyncOpen uint64 // machine time the last generation opened (watchdog)

	detections []Detection
	halted     bool
	haltReason string
	finished   bool

	// reintegratePending is rid+1 of a replica awaiting live
	// re-integration at the next completed rendezvous (0 = none);
	// reintegrateErr holds the outcome of the last applied request.
	reintegratePending int
	reintegrateErr     error

	stats Stats

	// rec and met are the flight recorder and metric set — both nil
	// unless Config.Trace.Enabled, so every hook is one nil check when
	// observability is off. report holds the divergence report captured
	// at the first detection (first capture wins until taken).
	rec    *trace.Recorder
	met    *metrics.Set
	report *DivergenceReport

	// reintegrateReqCycle is the machine time of the pending live
	// re-integration request (the re-integration-window metric base).
	reintegrateReqCycle uint64

	devWindows []devWindow

	primaryChange func(newPrimary int)

	// timer is the preemption timer device (nil when TickCycles == 0);
	// kept so a snapshot restore can reset its derived tick cache.
	timer *preemptionTimer
}

// SetPrimaryChangeHook registers a callback invoked after a faulty primary
// is removed and a new one elected. The device harness uses it to
// reconfigure device-side state (e.g. freeing a DMA mailbox the dead
// primary had claimed), standing in for the paper's DMA page-table
// patching (§IV-A).
func (s *System) SetPrimaryChangeHook(f func(newPrimary int)) { s.primaryChange = f }

// devWindow records a registered device MMIO window for SysMapDevice.
type devWindow struct {
	base, size uint64
}

// RegisterDeviceWindow makes a device's MMIO window mappable by drivers
// through SysMapDevice with the given index.
func (s *System) RegisterDeviceWindow(idx int, base, size uint64) {
	for len(s.devWindows) <= idx {
		s.devWindows = append(s.devWindows, devWindow{})
	}
	s.devWindows[idx] = devWindow{base: base, size: size}
}

func (s *System) deviceWindow(idx int) (devWindow, bool) {
	if idx < 0 || idx >= len(s.devWindows) || s.devWindows[idx].size == 0 {
		return devWindow{}, false
	}
	return s.devWindows[idx], true
}

// NewSystem builds the machine, partitions memory, instantiates one
// kernel per replica, and installs the RCoE trap handler.
func NewSystem(cfg Config) (*System, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	need := partBase + uint64(cfg.Replicas)*cfg.PartitionBytes
	if uint64(cfg.MemBytes) < need {
		cfg.MemBytes = int(need)
	}
	m := machine.New(cfg.Profile, cfg.MemBytes)
	if cfg.DisableFastForward {
		m.SetFastForward(false)
	}
	if cfg.DisableExecCache {
		m.SetExecCache(false)
	}
	if cfg.DisableSuperblock {
		m.SetSuperblock(false)
	}
	sys := &System{
		cfg: cfg,
		m:   m,
		sh:  shared{mem: m.Mem()},
	}
	var aliveMask uint64
	for rid := 0; rid < cfg.Replicas; rid++ {
		lay := kernel.Layout{Base: PartitionBase(rid, cfg.PartitionBytes), Size: cfg.PartitionBytes}
		k, err := kernel.New(rid, m.Core(rid), lay)
		if err != nil {
			return nil, fmt.Errorf("core: replica %d: %w", rid, err)
		}
		sys.reps = append(sys.reps, &Replica{ID: rid, K: k})
		aliveMask |= 1 << uint(rid)
	}
	sys.sh.setWord(wAliveMask, aliveMask)
	sys.sh.setWord(wPrimary, 0)
	m.SetHandler(sys)
	if cfg.TickCycles > 0 {
		sys.timer = &preemptionTimer{period: cfg.TickCycles}
		m.AddDevice(sys.timer)
	}
	if wd := cfg.watchdogCycles(); wd > 0 && cfg.Mode != ModeNone {
		m.AddDevice(&syncWatchdog{sys: sys, period: wd})
	}
	// All device interrupts initially route to replica 0 (the primary).
	for line := 0; line < 64; line++ {
		m.RouteIRQ(line, 0)
	}
	if cfg.Trace.Enabled {
		sys.rec = trace.NewRecorder(cfg.Replicas, cfg.Trace.RingEvents)
		sys.met = metrics.New()
		for _, r := range sys.reps {
			sys.wireKernelTrace(r)
		}
		// Installed after the boot-time routing loop above so the system
		// ring records only fail-over re-routes, not initialisation.
		m.OnIRQRoute = func(line, coreID int) {
			sys.trSys(trace.KindIRQRoute, uint64(line), uint64(coreID))
		}
	}
	return sys, nil
}

// preemptionTimer raises IRQ line 0 periodically; the kernel turns it into
// replica-wide preemption at an agreed logical time.
type preemptionTimer struct {
	period uint64
	// next caches the earliest cycle >= the last observed Now() that is a
	// multiple of period, so the per-cycle check is one compare instead of
	// a 64-bit division. Ticks may be sparse (idle fast-forward skips
	// quiescent windows), so next is re-derived whenever Now() reaches it.
	next uint64
}

// TimerLine is the interrupt line of the preemption timer.
const TimerLine = 0

// Tick implements machine.Device. Fires exactly when Now() is a multiple
// of the period, same as the obvious Now()%period == 0 check.
func (t *preemptionTimer) Tick(m *machine.Machine) {
	now := m.Now()
	if now < t.next {
		return
	}
	if now%t.period == 0 {
		m.RaiseIRQ(TimerLine)
	}
	t.next = now - now%t.period + t.period
}

// NextEvent implements machine.EventSource: the timer only acts on exact
// multiples of its period.
func (t *preemptionTimer) NextEvent(now uint64) uint64 {
	return now - now%t.period + t.period
}

// syncWatchdog guards the liveness of the synchronisation fabric. Every
// device interrupt routes to the primary, so a primary that silently
// stops responding leaves its peers spinning on input replication (or
// idle) forever: no rendezvous ever opens, and the barrier timeout that
// would identify the straggler never starts counting. When no
// synchronisation has opened for the watchdog period, the device opens a
// probe rendezvous and kicks every alive replica with an IPI. Live
// replicas join the probe from wherever they are — an IPI is an
// asynchronous kernel entry, not a logged event, so signatures are
// unaffected — while a dead replica cannot arrive and is ejected through
// the normal straggler path.
type syncWatchdog struct {
	sys    *System
	period uint64
}

// watchdogPollMask throttles the per-cycle liveness check (shared-word
// reads) to every 1024 cycles; the resolution is irrelevant against
// periods of hundreds of thousands of cycles.
const watchdogPollMask = 1023

// Tick implements machine.Device.
func (w *syncWatchdog) Tick(m *machine.Machine) {
	if m.Now()&watchdogPollMask != 0 {
		return
	}
	s := w.sys
	if s.halted || s.finished || s.syncPending() {
		return
	}
	if m.Now()-s.lastSyncOpen < w.period {
		return
	}
	s.stats.WatchdogProbes++
	s.requestSync(-1, 0, 0)
}

// NextEvent implements machine.EventSource: the watchdog can only fire at
// a poll boundary once the period since the last opened synchronisation
// has elapsed. Every input consulted here (halt/finish flags, pending
// sync, lastSyncOpen) changes only through core execution, which ends the
// idle window, so the answer stays valid for the window's duration.
func (w *syncWatchdog) NextEvent(now uint64) uint64 {
	s := w.sys
	if s.halted || s.finished || s.syncPending() {
		return machine.NoEvent
	}
	t := s.lastSyncOpen + w.period
	if t <= now {
		t = now + 1
	}
	// Round up to the next poll boundary (multiples of 1024).
	return (t + watchdogPollMask) &^ uint64(watchdogPollMask)
}

// Machine returns the underlying machine (benchmarks and fault injectors
// need raw access).
func (s *System) Machine() *machine.Machine { return s.m }

// Config returns the effective configuration.
func (s *System) Config() Config { return s.cfg }

// Replica returns replica rid.
func (s *System) Replica(rid int) *Replica { return s.reps[rid] }

// NumReplicas returns the configured replica count.
func (s *System) NumReplicas() int { return len(s.reps) }

// Primary returns the current primary replica's ID (it changes when a
// faulty primary is removed).
func (s *System) Primary() int { return int(s.sh.word(wPrimary)) }

// Alive reports whether replica rid is still in the configuration.
func (s *System) Alive(rid int) bool { return s.sh.alive(rid) }

// AliveCount returns the number of replicas still alive.
func (s *System) AliveCount() int {
	n := 0
	for rid := range s.reps {
		if s.sh.alive(rid) {
			n++
		}
	}
	return n
}

// Detections returns the recorded detection events.
func (s *System) Detections() []Detection {
	return append([]Detection(nil), s.detections...)
}

// Stats returns system counters.
func (s *System) Stats() Stats { return s.stats }

// Halted reports whether the system fail-stopped, with the reason.
func (s *System) Halted() (bool, string) { return s.halted, s.haltReason }

// Finished reports whether all alive replicas completed their workload
// and passed the final vote.
func (s *System) Finished() bool { return s.finished }

// Load loads the same user process into every replica and starts the
// replica cores. Call once before Run. Under Config.Decorrelate each
// replica receives the image under its own layout (virtual shift plus
// physical shuffle); the program and its observable behaviour are
// otherwise identical.
func (s *System) Load(cfg kernel.ProcessConfig) error {
	for _, r := range s.reps {
		rcfg := cfg
		if s.cfg.Decorrelate {
			rcfg.LayoutDelta, rcfg.PhysPad, rcfg.PhysSwap = replicaLayout(s.cfg.LayoutSeed, r.ID)
		}
		if err := r.K.LoadProcess(rcfg); err != nil {
			return fmt.Errorf("core: replica %d: %w", r.ID, err)
		}
		if !r.K.Schedule() {
			return fmt.Errorf("core: replica %d: nothing to schedule", r.ID)
		}
		c := r.Core()
		s.m.StartCore(r.ID, c.PC, r.K.AddrSpace())
	}
	return nil
}

// Run steps the machine until the workload finishes, the system halts, or
// the cycle budget is exhausted (ErrTimeout).
func (s *System) Run(maxCycles uint64) error {
	err := s.m.RunUntil(func() bool { return s.finished || s.halted }, maxCycles)
	if s.halted {
		return fmt.Errorf("%w: %s", ErrHalted, s.haltReason)
	}
	return err
}

// RunCycles steps the machine a fixed number of cycles (server workloads
// that never finish), stopping early — like Run — once the system halts or
// the workload finishes; a finished server must not burn the remaining
// budget.
func (s *System) RunCycles(n uint64) {
	_ = s.m.RunUntil(func() bool { return s.finished || s.halted }, n)
}

// halt fail-stops the whole system.
func (s *System) halt(reason string) {
	if s.halted {
		return
	}
	s.halted = true
	s.haltReason = reason
	s.sh.setWord(wHalted, 1)
	for _, r := range s.reps {
		r.Core().Halt()
	}
}

// InjectStall marks replica rid to hang at its next kernel entry,
// simulating a core that silently stops making progress (the fault class
// behind the paper's barrier-timeout detections). The stall is consumed
// before any rendezvous bookkeeping, so the replica never arrives and its
// peers observe a timeout.
func (s *System) InjectStall(rid int) {
	if rid >= 0 && rid < len(s.reps) {
		s.reps[rid].stallPending = true
	}
}

// consumeStall parks the replica indefinitely. The park wakes only on a
// system halt, or once the replica has been voted out (ejected), at which
// point its core goes offline.
func (s *System) consumeStall(r *Replica) {
	r.stallPending = false
	s.armStallPark(r)
}

// armStallPark installs the stalled-replica park (split from consumeStall
// so a snapshot restore can re-arm it without side effects).
func (s *System) armStallPark(r *Replica) {
	r.park = parkDesc{kind: parkStall}
	c := r.Core()
	c.Park(func() bool {
		return s.halted || (s.cfg.Mode != ModeNone && !s.sh.alive(r.ID))
	}, func() {
		if s.halted {
			c.Halt()
			return
		}
		c.SetOffline()
	})
	// Both halt and ejection happen through other cores executing; time
	// alone never wakes this park.
	c.ParkWakeNever()
}

// record appends a detection event. With tracing enabled, the first
// system-level detection (everything but per-thread user faults) freezes
// the rings into a first-divergence report.
func (s *System) record(kind DetectionKind, rid int, masked bool) {
	s.detections = append(s.detections, Detection{
		Kind:    kind,
		Cycle:   s.m.Now(),
		Replica: rid,
		Masked:  masked,
	})
	if kind != DetectUserFault {
		s.captureOnDetection(kind, rid)
	}
}

// timeOf computes a replica's current logical time. Under LC this is the
// event count alone; under CC it is the precise triple, using either the
// PMU or the reserved branch-count register, with the Listing 3 fixup for
// compiler-inserted counters.
func (s *System) timeOf(r *Replica) logicalTime {
	lt := logicalTime{Events: r.K.EventCount()}
	if s.cfg.Mode != ModeCC {
		return lt
	}
	if r.K.CurrentTID() < 0 {
		// Idle or finished: quiescent at the event boundary, ahead of
		// any replica still executing toward it.
		lt.Branches = ^uint64(0)
		lt.IP = ^uint64(0)
		return lt
	}
	c := r.Core()
	if s.cfg.Profile.PrecisePMU && !s.cfg.ForceCompilerCounting {
		lt.Branches = c.UserBranches
	} else {
		lt.Branches = c.Regs[isa.RBC]
		// Listing 3 race: the counter increment precedes its branch, so
		// a replica stopped exactly at an instrumented branch has
		// already counted the branch it has not yet taken. A zero counter
		// means the increment was consumed before the last reset (the
		// clock was reset exactly at this branch), so there is nothing to
		// subtract — without this guard the adjustment underflows and the
		// replica publishes an astronomical logical time.
		if s.cfg.BranchSites[c.PC] && lt.Branches > 0 {
			lt.Branches--
		}
	}
	lt.IP = c.PC
	lt.BlockRem = s.blockRemaining(r)
	return lt
}

// blockRemaining returns the remaining length if the replica is stopped
// at a rep-style block instruction, else 0. Identifying the instruction
// requires reading user text; inside a VM this needs a guest page-table
// walk (§III-D), which is charged to the core.
func (s *System) blockRemaining(r *Replica) uint64 {
	c := r.Core()
	raw, err := r.K.CopyFromUser(c.PC, isa.InstrBytes)
	if err != nil {
		return 0
	}
	ins, err := isa.Decode(raw)
	if err != nil || !ins.Op.IsBlockOp() {
		return 0
	}
	if s.cfg.VM {
		c.AddStall(s.cfg.Profile.Costs.GuestWalk)
		s.stats.VMExits++
	}
	return c.Regs[ins.Rd]
}

// resetBranchClock clears the branch-count component after a completed
// synchronisation ("after syncing, it is reset to avoid overflow").
func (s *System) resetBranchClock(r *Replica) {
	if s.cfg.Mode != ModeCC {
		return
	}
	c := r.Core()
	c.UserBranches = 0
	if (!s.cfg.Profile.PrecisePMU || s.cfg.ForceCompilerCounting) && r.K.CurrentTID() >= 0 {
		c.Regs[isa.RBC] = 0
	}
}

// DebugShared renders the shared framework words for protocol debugging.
func DebugShared(s *System) string {
	out := fmt.Sprintf("gen=%d kind=%d lines=%#x alive=%#x prim=%d halted=%d relGen=%d voteRel=%d outcome=%d released=%#x\n",
		s.sh.word(wSyncGen), s.sh.word(wSyncKind), s.sh.word(wSyncLines),
		s.sh.word(wAliveMask), s.sh.word(wPrimary), s.sh.word(wHalted),
		s.sh.word(wReleaseGen), s.sh.word(wVoteRelease), s.sh.word(wVoteOutcome), s.releasedSet)
	for rid := range s.reps {
		out += fmt.Sprintf("  rep%d: arriveGen=%d t=(%d,%d,%#x,%d) sig=(%d,%#x) voteEv=%d voteSum=%#x done=%d\n",
			rid, s.sh.repWord(rid, rwArriveGen), s.sh.repWord(rid, rwEvents),
			s.sh.repWord(rid, rwBranches), s.sh.repWord(rid, rwIP), s.sh.repWord(rid, rwBlockRem),
			s.sh.repWord(rid, rwSigEvents), s.sh.repWord(rid, rwChecksum),
			s.sh.repWord(rid, rwVoteEvent), s.sh.repWord(rid, rwVoteSum), s.sh.repWord(rid, rwDoneFlag))
	}
	return out
}
