package core

import (
	"testing"
	"testing/quick"

	"rcoe/internal/asm"
	"rcoe/internal/isa"
	"rcoe/internal/kernel"
	"rcoe/internal/machine"
)

// Property: logical-time ordering is a strict weak order consistent with
// equality — the foundation of leader election.
func TestQuickLogicalTimeOrdering(t *testing.T) {
	mk := func(e, b, ip, rem uint64) logicalTime {
		return logicalTime{Events: e % 8, Branches: b % 8, IP: ip % 8, BlockRem: rem % 4}
	}
	irreflexive := func(e, b, ip, rem uint64) bool {
		x := mk(e, b, ip, rem)
		return !x.less(x)
	}
	if err := quick.Check(irreflexive, nil); err != nil {
		t.Fatalf("irreflexivity: %v", err)
	}
	antisym := func(e1, b1, i1, r1, e2, b2, i2, r2 uint64) bool {
		x, y := mk(e1, b1, i1, r1), mk(e2, b2, i2, r2)
		if x.less(y) && y.less(x) {
			return false
		}
		// Totality: exactly one of <, >, == holds.
		n := 0
		if x.less(y) {
			n++
		}
		if y.less(x) {
			n++
		}
		if x.equal(y) {
			n++
		}
		return n == 1
	}
	if err := quick.Check(antisym, nil); err != nil {
		t.Fatalf("antisymmetry/totality: %v", err)
	}
	trans := func(a1, a2, a3, a4, b1, b2, b3, b4, c1, c2, c3, c4 uint64) bool {
		x, y, z := mk(a1, a2, a3, a4), mk(b1, b2, b3, b4), mk(c1, c2, c3, c4)
		if x.less(y) && y.less(z) {
			return x.less(z)
		}
		return true
	}
	if err := quick.Check(trans, nil); err != nil {
		t.Fatalf("transitivity: %v", err)
	}
}

// Property: with exactly one divergent checksum among N >= 3 replicas,
// the fault vote always reaches consensus on that replica.
func TestQuickVoteIdentifiesSingleFault(t *testing.T) {
	prof := machine.X86()
	prof.Cores = 8
	f := func(n8, faulty8 uint8, good, bad uint64) bool {
		n := 3 + int(n8%6) // 3..8 replicas
		faulty := int(faulty8) % n
		if good == bad {
			bad = good + 1
		}
		sums := make([]uint64, n)
		for i := range sums {
			sums[i] = good
		}
		sums[faulty] = bad
		got, ok := VoteDemo(sums)
		return ok && got == faulty
	}
	cfg := &quick.Config{MaxCount: 30} // each trial builds a machine
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: with two or more divergent checksums (all distinct), the vote
// never falsely blames a healthy replica — it either reaches no consensus
// or picks one of the corrupted ones.
func TestQuickVoteNeverBlamesHealthy(t *testing.T) {
	f := func(f1, f2 uint8, good uint64) bool {
		n := 5
		a, b := int(f1)%n, int(f2)%n
		if a == b {
			b = (a + 1) % n
		}
		sums := make([]uint64, n)
		for i := range sums {
			sums[i] = good
		}
		sums[a], sums[b] = good+1, good+2
		got, ok := VoteDemo(sums)
		if !ok {
			return true // no consensus: fail-stop, safe
		}
		return got == a || got == b
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: fault-free DMR runs of the same deterministic program always
// finish with identical replica signatures, for arbitrary tick phases.
func TestQuickFaultFreeSignaturesAgree(t *testing.T) {
	f := func(tickSeed uint16) bool {
		tick := 8_000 + uint64(tickSeed)%40_000
		sys, err := NewSystem(Config{Mode: ModeLC, Replicas: 2, TickCycles: tick})
		if err != nil {
			return false
		}
		b := buildSyscallLoop(300)
		if err := loadAndStart(sys, b); err != nil {
			return false
		}
		if err := sys.Run(200_000_000); err != nil {
			return false
		}
		e0, s0 := sys.Replica(0).K.Signature()
		e1, s1 := sys.Replica(1).K.Signature()
		return e0 == e1 && s0 == s1
	}
	cfg := &quick.Config{MaxCount: 10}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// buildSyscallLoop and loadAndStart are helpers for property tests that
// need complete systems without the *testing.T plumbing of system_test.go.
func buildSyscallLoop(n int64) []isa.Instr {
	b := asm.New()
	b.Li(5, 0)
	b.Li64(6, uint64(n))
	b.Label("loop")
	b.Syscall(15) // SysNull
	b.Addi(5, 5, 1)
	b.Blt(5, 6, "loop")
	b.Li(1, 0)
	b.Syscall(1) // SysExit
	return b.MustAssemble(kernel.TextVA)
}

func loadAndStart(sys *System, prog []isa.Instr) error {
	return sys.Load(kernel.ProcessConfig{Prog: prog, DataBytes: 1 << 14})
}
