package core

import (
	"errors"
	"testing"
)

// downgradeThen builds a masking TMR system running a syscall loop,
// corrupts replica `faulty`, and runs until the downgrade completes.
func downgradeThen(t *testing.T, faulty int, loops int64) *System {
	t.Helper()
	sys := newSys(t, Config{Mode: ModeLC, Replicas: 3, TickCycles: 20000,
		Sig: SigArgs, Masking: true}, syscallLoop(t, loops))
	sys.RunCycles(50_000)
	lay := sys.Replica(faulty).K.Layout()
	if err := sys.Machine().Mem().FlipBit(lay.SigPA()+8, 5); err != nil {
		t.Fatal(err)
	}
	if err := sys.Machine().RunUntil(func() bool {
		return sys.AliveCount() == 2 || sys.halted
	}, 400_000_000); err != nil {
		t.Fatalf("downgrade never happened: %v", err)
	}
	if sys.halted {
		t.Fatalf("system halted instead of masking: %s", sys.haltReason)
	}
	return sys
}

func TestReintegrateRestoresTMR(t *testing.T) {
	sys := downgradeThen(t, 2, 60_000)
	if err := sys.Reintegrate(2); err != nil {
		t.Fatalf("reintegrate: %v", err)
	}
	if sys.AliveCount() != 3 || !sys.Alive(2) {
		t.Fatalf("alive = %d after reintegration", sys.AliveCount())
	}
	if sys.Stats().Reintegrations != 1 {
		t.Fatalf("reintegration not counted")
	}
	// The restored TMR must run to completion, synchronising and voting
	// with three replicas again — with no divergence from the newcomer.
	mustFinish(t, sys, 2_000_000_000)
	for rid := 0; rid < 3; rid++ {
		if got := sys.Replica(rid).K.Thread(0).ExitCode; got != 0 {
			t.Fatalf("replica %d exit = %d", rid, got)
		}
	}
	if len(sys.Detections()) != 1 {
		t.Fatalf("unexpected detections after reintegration: %v", sys.Detections())
	}
}

func TestReintegrateThenMaskAgain(t *testing.T) {
	// The whole point of re-integration: the restored TMR can mask a
	// second, later fault.
	sys := downgradeThen(t, 2, 120_000)
	if err := sys.Reintegrate(2); err != nil {
		t.Fatalf("reintegrate: %v", err)
	}
	sys.RunCycles(100_000)
	if halted, reason := sys.Halted(); halted {
		t.Fatalf("halted after reintegration: %s", reason)
	}
	// Corrupt a different replica this time.
	lay := sys.Replica(1).K.Layout()
	if err := sys.Machine().Mem().FlipBit(lay.SigPA()+8, 7); err != nil {
		t.Fatal(err)
	}
	mustFinish(t, sys, 2_000_000_000)
	if sys.Alive(1) || sys.AliveCount() != 2 {
		t.Fatalf("second fault not masked (alive=%d)", sys.AliveCount())
	}
	masked := 0
	for _, d := range sys.Detections() {
		if d.Masked {
			masked++
		}
	}
	if masked != 2 {
		t.Fatalf("masked detections = %d, want 2", masked)
	}
}

func TestReintegrateValidation(t *testing.T) {
	sys := newSys(t, Config{Mode: ModeLC, Replicas: 2, TickCycles: 20000},
		syscallLoop(t, 50_000))
	if err := sys.Reintegrate(0); !errors.Is(err, ErrReintegrate) {
		t.Fatalf("reintegrating an alive replica = %v, want ErrReintegrate", err)
	}
	if err := sys.Reintegrate(7); !errors.Is(err, ErrReintegrate) {
		t.Fatalf("reintegrating a nonexistent replica = %v, want ErrReintegrate", err)
	}
}

func TestReintegrateNeedsNonPrimaryDonor(t *testing.T) {
	// After removing a non-primary from DMR... masking requires TMR, so
	// construct the no-donor case directly: offline replica 1 of a DMR
	// system, leaving only the primary.
	sys := newSys(t, Config{Mode: ModeLC, Replicas: 2, TickCycles: 20000},
		syscallLoop(t, 50_000))
	sys.RunCycles(30_000)
	sys.sh.removeAlive(1)
	sys.Replica(1).Core().SetOffline()
	if err := sys.Reintegrate(1); !errors.Is(err, ErrReintegrate) {
		t.Fatalf("reintegration without a non-primary donor = %v, want ErrReintegrate", err)
	}
}
