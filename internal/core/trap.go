package core

import (
	"rcoe/internal/kernel"
	"rcoe/internal/machine"
	"rcoe/internal/trace"
)

// HandleTrap implements machine.TrapHandler: it is the replicated kernel's
// entry point for every trap on every core.
func (s *System) HandleTrap(c *machine.Core, t machine.Trap) {
	if c.ID >= len(s.reps) {
		c.Halt() // spare core with no replica
		return
	}
	r := s.reps[c.ID]
	if s.halted {
		c.Halt()
		return
	}
	if s.cfg.Mode != ModeNone && !s.sh.alive(r.ID) {
		c.SetOffline()
		return
	}
	if r.stallPending {
		s.consumeStall(r)
		return
	}
	// Kernel-text integrity check on entry: a corrupted kernel
	// fail-stops (the verified-seL4 halt-on-exception behaviour).
	if !r.K.CheckCanary() || r.K.Err != nil {
		s.kernelException(r)
		return
	}
	if s.cfg.Mode != ModeNone {
		// Keep the replica's published logical time fresh; peers use it
		// to decide who must catch up.
		s.sh.publishTime(r.ID, s.timeOf(r))
	}
	switch t.Kind {
	case machine.TrapSyscall:
		s.onSyscall(r, t)
	case machine.TrapIRQ:
		s.onIRQ(r)
	case machine.TrapBreakpoint:
		s.onBreakpoint(r)
	case machine.TrapSingleStep:
		s.onSingleStep(r)
	case machine.TrapBranchWatch:
		s.onBranchWatch(r)
	case machine.TrapBlockWatch:
		// The data watchpoint stopped the block op at the leader's exact
		// remaining count; the comparison logic is the breakpoint's.
		s.onBreakpoint(r)
	case machine.TrapHalt:
		s.sysExit(r, r.Core().Regs[1])
	case machine.TrapMemFault, machine.TrapIllegal, machine.TrapDivZero:
		s.onUserFault(r, t)
	default:
		s.afterKernel(r)
	}
}

// kernelException fail-stops one replica. Peers detect the loss through a
// barrier timeout; an unreplicated system simply dies.
func (s *System) kernelException(r *Replica) {
	s.record(DetectKernelException, r.ID, false)
	r.Core().Halt()
	if s.cfg.Mode == ModeNone {
		s.halt("kernel exception")
	}
}

// onIRQ handles device interrupts and IPIs. Device interrupts reach only
// the primary, which opens a synchronisation generation and kicks the
// other replicas with IPIs (§III-C).
func (s *System) onIRQ(r *Replica) {
	c := r.Core()
	lines := c.PendingIRQ()
	c.AckIRQ(lines)
	if c.IPIPending() {
		c.AckIPI()
	}
	if s.cfg.Mode == ModeNone {
		s.deliverLines(r, lines)
		s.afterKernel(r)
		return
	}
	if lines != 0 {
		s.requestSync(r.ID, syncIRQ, lines)
	}
	s.enterRendezvous(r)
}

// deliverLines performs local interrupt delivery: the timer line preempts,
// other lines wake their waiters.
func (s *System) deliverLines(r *Replica, lines uint64) {
	k := r.K
	for line := 0; line < 64; line++ {
		if lines&(1<<uint(line)) == 0 {
			continue
		}
		if line == TimerLine {
			k.Preempt()
		} else {
			k.WakeIRQWaiters(line)
		}
	}
	if k.CurrentTID() < 0 {
		k.Schedule()
	}
}

// onUserFault handles user-level exceptions. The fault fingerprint is
// folded into the signature, so a replica faulting alone diverges the
// vote; with exception barriers the replica additionally forces a
// synchronisation immediately, bounding detection latency (Table VII's
// Arm configuration).
func (s *System) onUserFault(r *Replica, t machine.Trap) {
	r.UserFaults++
	if t.Kind == machine.TrapMemFault {
		r.UserMemFaults++
	}
	s.record(DetectUserFault, r.ID, false)
	s.trEvent(r, trace.KindUserFault, uint64(t.Kind), t.Addr)
	k := r.K
	if s.cfg.Mode == ModeNone {
		if !k.ExitCurrent(^uint64(0)) {
			s.finishReplica(r)
			return
		}
		s.afterKernel(r)
		return
	}
	// Fault addresses are canonicalized: decorrelated replicas faulting on
	// the same logical address (e.g. all dereference the same NULL-ish
	// pointer relative to their own layout) fold identical fingerprints.
	k.AddTrace(0xFA01, uint64(t.Kind), k.CanonVA(t.Addr), t.PC)
	if s.cfg.ExceptionBarriers {
		s.requestSync(r.ID, syncIRQ, 0)
	}
	// Kill the faulting thread; if every replica faults identically the
	// signatures stay equal and all replicas continue consistently.
	if !k.ExitCurrent(^uint64(0)) {
		s.finishReplica(r)
		return
	}
	s.afterKernel(r)
}

// onSyscall is the main deterministic-event path: bump the logical clock,
// fold arguments per the signature configuration, optionally vote, then
// dispatch.
func (s *System) onSyscall(r *Replica, t machine.Trap) {
	k := r.K
	c := r.Core()
	num := t.Num
	args := [4]uint64{c.Regs[1], c.Regs[2], c.Regs[3], c.Regs[4]}
	ev := k.BumpEvent()
	k.Syscalls++
	s.trEvent(r, trace.KindSyscall, uint64(uint32(num)), args[0])
	if s.cfg.Mode != ModeNone {
		if r.chasing {
			// A syscall while chasing means the replica diverged from
			// the leader's instruction stream; drop the chase and let
			// the rendezvous timeout catch it if it persists.
			s.clearChase(r)
		}
		if s.cfg.Sig >= SigArgs {
			// Fold the syscall number and its actual parameters. Unused
			// argument registers legitimately differ across replicas
			// (e.g. they may hold a SysGetRID result) and must not enter
			// the signature.
			words := []uint64{uint64(uint32(num))}
			cargs := canonSigArgs(k, num, args)
			k.AddTrace(append(words, cargs[:argCount(num)]...)...)
		}
		if s.cfg.Sig == SigSync && num != int32(kernel.SysFTMemAccess) && num != int32(kernel.SysFTMemRep) {
			s.stats.SyscallVotes++
			desc := parkDesc{kind: parkEventVote, ev: ev, num: num, args: args}
			s.eventBarrier(r, desc, nil, func() {
				s.dispatch(r, num, args)
			})
			return
		}
	}
	s.dispatch(r, num, args)
}

// canonSigArgs returns args with the pointer-typed positions mapped to
// the canonical layout (kernel.CanonVA), so decorrelated replicas fold
// identical signature words for the same logical pointer. Only positions
// that are pointers *by the syscall's contract* are touched: heuristic
// canonicalization of arbitrary values would itself diverge (a non-pointer
// constant that happens to land in one replica's shifted window but not
// another's would canonicalize differently).
func canonSigArgs(k *kernel.Kernel, num int32, args [4]uint64) [4]uint64 {
	switch num {
	case kernel.SysSpawn:
		args[1] = k.CanonVA(args[1]) // stack top (entry is text: unshifted)
	case kernel.SysAtomicAdd, kernel.SysFTAddTrace, kernel.SysFTMemRep:
		args[0] = k.CanonVA(args[0]) // user buffer address
	case kernel.SysFTMemAccess:
		args[2] = k.CanonVA(args[2]) // user-side VA of the transfer
	}
	return args
}

// argCount returns how many argument registers a syscall consumes.
func argCount(num int32) int {
	switch num {
	case kernel.SysFTMemAccess:
		return 4
	case kernel.SysSpawn:
		return 3
	case kernel.SysAtomicAdd, kernel.SysFTAddTrace, kernel.SysFTMemRep:
		return 2
	case kernel.SysExit, kernel.SysIRQWait, kernel.SysPutc, kernel.SysMapDevice:
		return 1
	default:
		return 0
	}
}

// setRet sets the syscall return value.
func setRet(r *Replica, v uint64) { r.Core().Regs[1] = v }

// dispatch executes one system call.
func (s *System) dispatch(r *Replica, num int32, args [4]uint64) {
	k := r.K
	switch num {
	case kernel.SysExit:
		s.sysExit(r, args[0])
		return
	case kernel.SysYield:
		k.Preempt()
	case kernel.SysSpawn:
		tid, err := k.CreateThread(args[0], args[1], args[2])
		if err != nil {
			setRet(r, ^uint64(0))
			break
		}
		if s.cfg.Mode != ModeNone {
			// Thread-table updates are critical kernel state: always in
			// the signature regardless of configuration (§III-C). The
			// stack-top argument is a pointer: canonicalize it.
			k.AddTrace(0xC001, args[0], k.CanonVA(args[1]))
		}
		setRet(r, uint64(tid))
	case kernel.SysAtomicAdd:
		old, err := k.ReadUserU(args[0], 8)
		if err != nil {
			setRet(r, ^uint64(0))
			break
		}
		if err := k.WriteUserU(args[0], 8, old+args[1]); err != nil {
			setRet(r, ^uint64(0))
			break
		}
		setRet(r, old)
	case kernel.SysFTAddTrace:
		s.sysFTAddTrace(r, args[0], args[1])
	case kernel.SysFTMemAccess:
		s.sysFTMemAccess(r, args)
		return // continuation-based: afterKernel runs inside
	case kernel.SysFTMemRep:
		s.sysFTMemRep(r, args[0], args[1])
		return
	case kernel.SysIRQWait:
		line := int(args[0] & 63)
		setRet(r, 0)
		if k.ConsumeIRQLatch(line) {
			break // a wake was already latched: return immediately
		}
		if !k.BlockCurrent(line) {
			s.goIdle(r)
			return
		}
	case kernel.SysPutc:
		// Console output: contributes to the signature like any driver
		// output so that diverging prints are caught.
		if s.cfg.Mode != ModeNone {
			k.AddTrace(0xC0A5, args[0])
		}
		setRet(r, 0)
	case kernel.SysGetRID:
		setRet(r, uint64(r.ID))
	case kernel.SysGetPrimary:
		setRet(r, uint64(s.Primary()))
	case kernel.SysMapShared:
		k.MapSegment(machine.Segment{
			VBase: kernel.SharedVA, PBase: inputBufPA(), Size: inputSize,
			Perm: machine.PermR | machine.PermW,
		})
		if s.cfg.Mode != ModeNone {
			k.AddTrace(0xC002, kernel.SharedVA, inputSize)
		}
		setRet(r, kernel.SharedVA)
	case kernel.SysMapDevice:
		s.sysMapDevice(r, args[0])
	case kernel.SysGetEvent:
		setRet(r, k.EventCount())
	case kernel.SysNull:
		setRet(r, 0)
	default:
		setRet(r, ^uint64(0))
	}
	s.afterKernel(r)
}

// sysExit terminates the calling thread; the last exit completes the
// replica's workload and triggers the final synchronisation.
func (s *System) sysExit(r *Replica, code uint64) {
	if s.cfg.Mode != ModeNone {
		r.K.AddTrace(0xC003, code)
	}
	if !r.K.ExitCurrent(code) {
		s.finishReplica(r)
		return
	}
	s.afterKernel(r)
}

// finishReplica marks a replica's workload complete. Replicated systems
// meet at a final rendezvous and vote before declaring success.
func (s *System) finishReplica(r *Replica) {
	r.finished = true
	if s.rec != nil {
		_, sum := r.K.Signature()
		s.trEvent(r, trace.KindFinish, sum, 0)
	}
	s.sh.setRepWord(r.ID, rwDoneFlag, 1)
	if s.cfg.Mode == ModeNone {
		r.Core().Halt()
		s.finished = true
		return
	}
	s.requestSync(r.ID, syncFinal, 0)
	s.enterRendezvous(r)
}

// sysFTAddTrace folds a user buffer into the state signature
// (the FT_Add_Trace call drivers use to contribute output data, §III-C).
func (s *System) sysFTAddTrace(r *Replica, va, n uint64) {
	if n > inputSize {
		setRet(r, ^uint64(0))
		return
	}
	buf, err := r.K.CopyFromUser(va, int(n))
	if err != nil {
		setRet(r, ^uint64(0))
		return
	}
	if s.cfg.Mode != ModeNone {
		r.K.AddTraceBytes(buf)
	}
	setRet(r, 0)
}

// sysMapDevice maps a registered device's MMIO window and the DMA region
// into the calling process. All replicas receive the mappings (the
// surviving replica must be able to reach the device after a downgrade);
// SoR-aware driver code ensures only the primary touches them.
func (s *System) sysMapDevice(r *Replica, idx uint64) {
	w, ok := s.deviceWindow(int(idx))
	if !ok {
		setRet(r, ^uint64(0))
		return
	}
	r.K.MapSegment(machine.Segment{
		VBase: kernel.DeviceVA, PBase: w.base, Size: w.size,
		Perm: machine.PermR | machine.PermW,
	})
	r.K.MapSegment(machine.Segment{
		VBase: kernel.DMAVA, PBase: dmaBase, Size: dmaSize,
		Perm: machine.PermR | machine.PermW, DMA: true,
	})
	if s.cfg.Mode != ModeNone {
		r.K.AddTrace(0xC004, w.base, w.size)
	}
	setRet(r, kernel.DeviceVA)
}

// sysFTMemAccess performs a device-memory access on behalf of a CC-RCoE
// driver (§III-E). It is a synchronisation point: the access happens only
// once all replicas are in sync. Reads are performed by the primary
// kernel and replicated to every replica through the input buffer; writes
// are folded into the signature and performed by the primary kernel.
func (s *System) sysFTMemAccess(r *Replica, args [4]uint64) {
	accessType, pa, va, n := args[0], args[1], args[2], args[3]
	if n > inputSize {
		setRet(r, ^uint64(0))
		s.afterKernel(r)
		return
	}
	if s.cfg.Mode == ModeNone {
		setRet(r, s.doDeviceAccess(r, accessType, pa, va, n))
		s.afterKernel(r)
		return
	}
	ev := r.K.EventCount()
	desc := parkDesc{kind: parkEventMemAccess, ev: ev, args: args}
	action, cont := s.ftMemAccessFuncs(r, args)
	s.eventBarrier(r, desc, action, cont)
}

// ftMemAccessFuncs builds the device-side action and per-replica
// continuation for an FT_Mem_Access event barrier. Factored out so a
// snapshot restore can rebuild the closures from the recorded arguments.
func (s *System) ftMemAccessFuncs(r *Replica, args [4]uint64) (action, cont func()) {
	accessType, pa, va, n := args[0], args[1], args[2], args[3]
	action = func() {
		// Executed once, at completion, on behalf of the primary kernel.
		s.sh.setWord(wIOBusy, 1)
		prim := s.reps[s.Primary()]
		if accessType == 0 {
			// Device read into the shared input buffer.
			for off := uint64(0); off < n; off++ {
				v, err := s.m.PhysReadU(pa+off, 1)
				if err != nil {
					v = 0
				}
				_ = s.m.Mem().WriteU(inputBufPA()+off, 1, v)
			}
			s.stats.InputBytes += n
		} else {
			// Device write: data comes from the primary's copy.
			buf, err := prim.K.CopyFromUser(va, int(n))
			if err == nil {
				for off := uint64(0); off < n; off++ {
					_ = s.m.PhysWriteU(pa+off, 1, uint64(buf[off]))
				}
			}
		}
		prim.Core().AddStall(int(n) / 4)
		s.sh.setWord(wIOBusy, 0)
	}
	cont = func() {
		if accessType == 0 {
			// Every replica copies the replicated input into its own
			// address space.
			buf, err := s.m.Mem().Read(inputBufPA(), int(n))
			if err == nil {
				_ = r.K.CopyToUser(va, buf)
			}
			r.Core().AddStall(int(n) / 8)
		} else {
			// Output data contributes to the signature so diverging
			// writes are caught.
			buf, err := r.K.CopyFromUser(va, int(n))
			if err == nil {
				r.K.AddTraceBytes(buf)
			}
		}
		setRet(r, 0)
		s.afterKernel(r)
	}
	return action, cont
}

// sysFTMemRep replicates a DMA buffer (§III-E): the primary copies its
// buffer to the shared region; the other replicas copy from the shared
// region into their address spaces.
func (s *System) sysFTMemRep(r *Replica, va, n uint64) {
	if n > inputSize {
		setRet(r, ^uint64(0))
		s.afterKernel(r)
		return
	}
	if s.cfg.Mode == ModeNone {
		setRet(r, 0)
		s.afterKernel(r)
		return
	}
	ev := r.K.EventCount()
	desc := parkDesc{kind: parkEventMemRep, ev: ev, va: va, n: n}
	action, cont := s.ftMemRepFuncs(r, va, n)
	s.eventBarrier(r, desc, action, cont)
}

// ftMemRepFuncs builds the action and continuation for an FT_Mem_Rep
// event barrier (restore-rebuildable, like ftMemAccessFuncs).
func (s *System) ftMemRepFuncs(r *Replica, va, n uint64) (action, cont func()) {
	action = func() {
		prim := s.reps[s.Primary()]
		buf, err := prim.K.CopyFromUser(va, int(n))
		if err == nil {
			_ = s.m.Mem().Write(inputBufPA(), buf)
			s.stats.InputBytes += n
		}
		prim.Core().AddStall(int(n) / 4)
	}
	cont = func() {
		if r.ID != s.Primary() {
			buf, err := s.m.Mem().Read(inputBufPA(), int(n))
			if err == nil {
				_ = r.K.CopyToUser(va, buf)
			}
			r.Core().AddStall(int(n) / 8)
		}
		setRet(r, 0)
		s.afterKernel(r)
	}
	return action, cont
}

// doDeviceAccess is the unreplicated device-access path.
func (s *System) doDeviceAccess(r *Replica, accessType, pa, va, n uint64) uint64 {
	if accessType == 0 {
		for off := uint64(0); off < n; off++ {
			v, err := s.m.PhysReadU(pa+off, 1)
			if err != nil {
				return ^uint64(0)
			}
			if err := r.K.WriteUserU(va+off, 1, v); err != nil {
				return ^uint64(0)
			}
		}
		return 0
	}
	for off := uint64(0); off < n; off++ {
		v, err := r.K.ReadUserU(va+off, 1)
		if err != nil {
			return ^uint64(0)
		}
		if err := s.m.PhysWriteU(pa+off, 1, v); err != nil {
			return ^uint64(0)
		}
	}
	return 0
}

// goIdle parks a replica core that has no runnable thread. The core
// resumes when an interrupt (or IPI) arrives, which re-enters the kernel
// through the normal trap path.
func (s *System) goIdle(r *Replica) {
	if s.cfg.Mode != ModeNone && s.syncPending() && !s.released(r) {
		s.enterRendezvous(r)
		return
	}
	s.armIdlePark(r)
}

// armIdlePark installs the idle park (the restore-safe half of goIdle:
// no rendezvous check, no side effects).
func (s *System) armIdlePark(r *Replica) {
	r.park = parkDesc{kind: parkIdle}
	c := r.Core()
	c.Park(func() bool {
		return s.halted || c.IPIPending() || c.PendingIRQ() != 0 || r.K.HasReady()
	}, func() {
		if s.halted {
			c.Halt()
			return
		}
		if r.K.HasReady() && c.PendingIRQ() == 0 && !c.IPIPending() {
			r.K.Schedule()
		}
		// Otherwise the pending interrupt is delivered by the machine on
		// the next cycle, before any stale user state executes.
	})
	// Interrupts, IPIs, and thread wakeups all originate from devices or
	// other cores; the devices' own NextEvent schedules bound the skip.
	c.ParkWakeNever()
}

// afterKernel is the common kernel-exit path: join a pending rendezvous,
// park if idle, or resume user execution.
func (s *System) afterKernel(r *Replica) {
	if s.halted {
		r.Core().Halt()
		return
	}
	if r.K.Err != nil {
		s.kernelException(r)
		return
	}
	if s.cfg.Mode != ModeNone && s.syncPending() && !s.released(r) && !r.chasing {
		s.enterRendezvous(r)
		return
	}
	if r.K.CurrentTID() < 0 && !r.finished {
		s.goIdle(r)
	}
}
