package core

import "rcoe/internal/kernel"

// Structural decorrelation: identical software, different layouts.
//
// Bit-identical replicas share every layout decision, so a deterministic
// software bug — a wild pointer, a buffer overrun — corrupts the same
// state in all of them and sails through the vote as correlated silent
// data corruption. Shifting each replica's data and stack segments by a
// distinct delta (and shuffling the physical placement inside its
// partition) makes the same bug hit different program state per replica;
// the divergence then shows up in the output signatures like any other
// fault. This is the redundant-execution analogue of the layout
// diversity argument in n-version and address-space-randomization work,
// constrained by RCoE's needs: text never moves (CC compares instruction
// pointers across replicas) and deltas stay page-aligned (block-op chunk
// sequences depend only on remaining counts, so catch-up is unaffected).

// replicaLayout derives replica rid's layout: the virtual-base delta for
// data/stacks, the physical pad after text, and whether the physical
// data/stack order is swapped. Replica 0 keeps the canonical layout, so
// one replica always matches the correlated baseline. Deltas are
// rid*stride with a seeded stride of 1-32 pages: pairwise distinct, and
// within kernel.MaxLayoutShift for up to four replicas.
func replicaLayout(seed uint64, rid int) (delta, pad uint64, swap bool) {
	if rid == 0 {
		return 0, 0, false
	}
	mix := seed
	if mix == 0 {
		mix = 0xA076_1D64_78BD_642F
	}
	mix ^= uint64(rid) * 0x9E37_79B9_7F4A_7C15
	mix ^= mix >> 33
	mix *= 0xFF51_AFD7_ED55_8CCD
	mix ^= mix >> 29
	stride := 1 + mix%32
	delta = 0x1000 * stride * uint64(rid)
	if delta > kernel.MaxLayoutShift {
		delta = kernel.MaxLayoutShift - 0x1000*uint64(rid)
	}
	pad = 0x1000 * ((mix >> 8) % 8)
	swap = (mix>>16)&1 == 1
	return delta, pad, swap
}
