package core

import (
	"bytes"
	"fmt"
	"sort"

	"rcoe/internal/machine"
	"rcoe/internal/metrics"
	"rcoe/internal/snapshot"
	"rcoe/internal/trace"
)

// This file implements snapshot.Snapshotter for the replicated system:
// the checkpoint/restore subsystem's top layer. A snapshot captures the
// complete simulated state — machine (memory, cores, bus, hard-fault
// devices), per-replica kernels, and the replication layer's host-side
// control state — so that a restored system evolves bit-identically to
// the original (the snapshot determinism tests enforce it).
//
// Park closures are host-side functions and cannot be serialized.
// Instead, every park site records a parkDesc on its Replica, and the
// park installers are split from their side-effect prologues (the arm*
// functions) so a restore can re-arm an equivalent park: same condition,
// same completion, same spin budget, same wake hint.
//
// Deliberately NOT serialized (host-side or derived):
//   - accelerator settings (fast-forward, exec cache): the target keeps
//     its own, making snapshots portable across accelerator combos;
//   - the trace/metrics configuration: a snapshot saved without tracing
//     restores into a tracing system (replay triage relies on this);
//   - the divergence report and hooks (devWindows, primaryChange): both
//     are construction-time wiring;
//   - the preemption timer's tick cache: lazily re-derived.

// parkKind identifies which park site a replica's core is blocked at.
type parkKind int

const (
	parkNone parkKind = iota
	// parkRendezvous is the kernel-barrier spin (parkAtRendezvous).
	parkRendezvous
	// parkFinished is the completed-workload park (finishedPark).
	parkFinished
	// parkIdle is the no-runnable-thread park (goIdle).
	parkIdle
	// parkStall is the injected-stall park (consumeStall).
	parkStall
	// parkEventVote is a per-syscall vote barrier (SigSync).
	parkEventVote
	// parkEventMemAccess is an FT_Mem_Access event barrier.
	parkEventMemAccess
	// parkEventMemRep is an FT_Mem_Rep event barrier.
	parkEventMemRep
)

// parkDesc records everything needed to re-arm a park after restore:
// the site kind plus the arguments its closures captured.
type parkDesc struct {
	kind parkKind
	// gen is the rendezvous generation (parkRendezvous).
	gen uint64
	// ev is the event number (event barriers).
	ev uint64
	// num and args are the syscall number and argument registers
	// (parkEventVote, parkEventMemAccess).
	num  int32
	args [4]uint64
	// va and n are the buffer address and length (parkEventMemRep).
	va, n uint64
}

// restoredError reconstructs a serialized error value: the message is
// preserved verbatim and the ErrReintegrate identity survives errors.Is.
type restoredError struct {
	msg     string
	reinteg bool
}

func (e *restoredError) Error() string { return e.msg }

func (e *restoredError) Unwrap() error {
	if e.reinteg {
		return ErrReintegrate
	}
	return nil
}

// branchSiteKeys returns the configured branch sites in sorted order (the
// deterministic digest form).
func (c Config) branchSiteKeys() []uint64 {
	keys := make([]uint64, 0, len(c.BranchSites))
	for va, on := range c.BranchSites {
		if on {
			keys = append(keys, va)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// SaveState implements snapshot.Snapshotter: a behavioural config digest,
// the replication layer's host-side control state, one section per
// replica kernel, the observability state, and the machine sections.
func (s *System) SaveState(w *snapshot.Writer) error {
	e := w.Section("sys.meta")
	e.Int(int(s.cfg.Mode))
	e.Int(s.cfg.Replicas)
	e.Int(int(s.cfg.Sig))
	e.String(s.cfg.Profile.Name)
	e.Int(s.cfg.MemBytes)
	e.U64(s.cfg.PartitionBytes)
	e.U64(s.cfg.TickCycles)
	e.U64(s.cfg.BarrierTimeout)
	e.U64(s.cfg.watchdogCycles())
	e.Bool(s.cfg.Masking)
	e.Bool(s.cfg.ExceptionBarriers)
	e.Bool(s.cfg.ForceCompilerCounting)
	e.Bool(s.cfg.VM)
	e.Bool(s.cfg.Decorrelate)
	e.U64(s.cfg.LayoutSeed)
	e.U64(s.cfg.TraceSeed)
	e.U64s(s.cfg.branchSiteKeys())

	e = w.Section("sys")
	e.U64(s.syncCounter)
	e.U64(s.releaseGen)
	e.U64(s.releasedSet)
	e.U64(s.voteFailGen)
	e.U64(s.lastSyncOpen)
	e.Bool(s.halted)
	e.String(s.haltReason)
	e.Bool(s.finished)
	e.Int(s.reintegratePending)
	if s.reintegrateErr != nil {
		e.Bool(true)
		e.String(s.reintegrateErr.Error())
		e.Bool(isReintegrateErr(s.reintegrateErr))
	} else {
		e.Bool(false)
	}
	e.U64(s.reintegrateReqCycle)
	e.U64(s.stats.Syncs)
	e.U64(s.stats.Votes)
	e.U64(s.stats.SyscallVotes)
	e.U64(s.stats.VMExits)
	e.U64(s.stats.InputBytes)
	e.U64(s.stats.DowngradeCycles)
	e.U64(s.stats.Reintegrations)
	e.U64(s.stats.Ejections)
	e.U64(s.stats.Downgrades)
	e.U64(s.stats.WatchdogProbes)
	e.Int(len(s.detections))
	for _, d := range s.detections {
		e.Int(int(d.Kind))
		e.U64(d.Cycle)
		e.Int(d.Replica)
		e.Bool(d.Masked)
	}
	for _, r := range s.reps {
		e.Bool(r.chasing)
		e.U64(r.chaseTarget.Events)
		e.U64(r.chaseTarget.Branches)
		e.U64(r.chaseTarget.IP)
		e.U64(r.chaseTarget.BlockRem)
		e.Bool(r.finished)
		e.Bool(r.stallPending)
		e.U64(r.barrierStart)
		e.U64(r.UserFaults)
		e.U64(r.UserMemFaults)
		e.U64(r.DebugExceptions)
		e.Int(int(r.park.kind))
		e.U64(r.park.gen)
		e.U64(r.park.ev)
		e.I64(int64(r.park.num))
		for _, a := range r.park.args {
			e.U64(a)
		}
		e.U64(r.park.va)
		e.U64(r.park.n)
	}

	for _, r := range s.reps {
		r.K.SaveState(w.Section(fmt.Sprintf("sys.kernel.%d", r.ID)))
	}

	e = w.Section("sys.trace")
	if s.rec != nil {
		var buf bytes.Buffer
		if err := s.rec.Save(&buf); err != nil {
			return err
		}
		e.Bool(true)
		e.Bytes(buf.Bytes())
	} else {
		e.Bool(false)
	}

	e = w.Section("sys.metrics")
	if s.met != nil {
		e.Bool(true)
		s.met.SaveState(e)
	} else {
		e.Bool(false)
	}

	return s.m.SaveState(w)
}

func isReintegrateErr(err error) bool {
	for ; err != nil; err = unwrap(err) {
		if err == ErrReintegrate {
			return true
		}
	}
	return false
}

func unwrap(err error) error {
	u, ok := err.(interface{ Unwrap() error })
	if !ok {
		return nil
	}
	return u.Unwrap()
}

// LoadState restores a snapshot taken by SaveState into this system. The
// target must be built through the same construction path (NewSystem with
// a behaviourally identical Config, plus Load of the same program);
// mismatches return snapshot.ErrIncompatible. Accelerator and trace
// settings may differ — the target keeps its own.
func (s *System) LoadState(snap *snapshot.Snapshot) error {
	if err := s.verifyMeta(snap); err != nil {
		return err
	}
	// Machine first: memory (including the shared framework region the
	// park conditions read), cores, bus, hard-fault devices.
	if err := s.m.LoadState(snap); err != nil {
		return err
	}
	for _, r := range s.reps {
		d, err := snap.Section(fmt.Sprintf("sys.kernel.%d", r.ID))
		if err != nil {
			return err
		}
		if err := r.K.LoadState(d); err != nil {
			return err
		}
		if err := d.Close(); err != nil {
			return err
		}
	}
	if err := s.loadSys(snap); err != nil {
		return err
	}
	// Host-side control state is in place: re-arm the park closures for
	// every parked core, preserving the saved wake hint (Park resets it).
	for _, r := range s.reps {
		if err := s.rearmPark(r); err != nil {
			return err
		}
	}
	if err := s.loadObservability(snap); err != nil {
		return err
	}
	// Derived state: the tick cache re-derives from Now(), the captured
	// divergence report belongs to the saved run's detection, not ours.
	if s.timer != nil {
		s.timer.next = 0
	}
	s.report = nil
	return nil
}

// verifyMeta checks the behavioural config digest against this system's.
func (s *System) verifyMeta(snap *snapshot.Snapshot) error {
	d, err := snap.Section("sys.meta")
	if err != nil {
		return err
	}
	checks := []struct {
		field  string
		target interface{}
		snap   interface{}
	}{
		{"mode", int(s.cfg.Mode), d.Int()},
		{"replicas", s.cfg.Replicas, d.Int()},
		{"sig", int(s.cfg.Sig), d.Int()},
		{"profile", s.cfg.Profile.Name, d.String()},
		{"mem-bytes", s.cfg.MemBytes, d.Int()},
		{"partition-bytes", s.cfg.PartitionBytes, d.U64()},
		{"tick-cycles", s.cfg.TickCycles, d.U64()},
		{"barrier-timeout", s.cfg.BarrierTimeout, d.U64()},
		{"watchdog-cycles", s.cfg.watchdogCycles(), d.U64()},
		{"masking", s.cfg.Masking, d.Bool()},
		{"exception-barriers", s.cfg.ExceptionBarriers, d.Bool()},
		{"force-compiler-counting", s.cfg.ForceCompilerCounting, d.Bool()},
		{"vm", s.cfg.VM, d.Bool()},
		{"decorrelate", s.cfg.Decorrelate, d.Bool()},
		{"layout-seed", s.cfg.LayoutSeed, d.U64()},
		{"trace-seed", s.cfg.TraceSeed, d.U64()},
		{"branch-sites", fmt.Sprint(s.cfg.branchSiteKeys()), fmt.Sprint(d.U64s())},
	}
	if err := d.Close(); err != nil {
		return err
	}
	for _, c := range checks {
		if c.target != c.snap {
			return snapshot.IncompatibleError("sys.meta", c.field, c.target, c.snap)
		}
	}
	return nil
}

// loadSys restores the replication layer's host-side control state.
func (s *System) loadSys(snap *snapshot.Snapshot) error {
	d, err := snap.Section("sys")
	if err != nil {
		return err
	}
	s.syncCounter = d.U64()
	s.releaseGen = d.U64()
	s.releasedSet = d.U64()
	s.voteFailGen = d.U64()
	s.lastSyncOpen = d.U64()
	s.halted = d.Bool()
	s.haltReason = d.String()
	s.finished = d.Bool()
	s.reintegratePending = d.Int()
	s.reintegrateErr = nil
	if d.Bool() {
		s.reintegrateErr = &restoredError{msg: d.String(), reinteg: d.Bool()}
	}
	s.reintegrateReqCycle = d.U64()
	s.stats = Stats{
		Syncs:           d.U64(),
		Votes:           d.U64(),
		SyscallVotes:    d.U64(),
		VMExits:         d.U64(),
		InputBytes:      d.U64(),
		DowngradeCycles: d.U64(),
		Reintegrations:  d.U64(),
		Ejections:       d.U64(),
		Downgrades:      d.U64(),
		WatchdogProbes:  d.U64(),
	}
	ndet := d.Int()
	s.detections = nil
	for i := 0; i < ndet && d.Err() == nil; i++ {
		s.detections = append(s.detections, Detection{
			Kind:    DetectionKind(d.Int()),
			Cycle:   d.U64(),
			Replica: d.Int(),
			Masked:  d.Bool(),
		})
	}
	for _, r := range s.reps {
		r.chasing = d.Bool()
		r.chaseTarget = logicalTime{
			Events:   d.U64(),
			Branches: d.U64(),
			IP:       d.U64(),
			BlockRem: d.U64(),
		}
		r.finished = d.Bool()
		r.stallPending = d.Bool()
		r.barrierStart = d.U64()
		r.UserFaults = d.U64()
		r.UserMemFaults = d.U64()
		r.DebugExceptions = d.U64()
		r.park = parkDesc{
			kind: parkKind(d.Int()),
			gen:  d.U64(),
			ev:   d.U64(),
			num:  int32(d.I64()),
		}
		for i := range r.park.args {
			r.park.args[i] = d.U64()
		}
		r.park.va = d.U64()
		r.park.n = d.U64()
	}
	return d.Close()
}

// rearmPark reinstalls the park closures for a parked core from its
// recorded descriptor. The machine layer restored the core's parked state
// and wake hint but cleared the (unserializable) closures; the arm*
// installers rebuild them without re-running the park sites' side
// effects. Park resets the wake hint, so it is reapplied afterwards.
func (s *System) rearmPark(r *Replica) error {
	c := r.Core()
	if c.State != machine.CoreParked {
		return nil
	}
	wake := c.ParkWake()
	switch r.park.kind {
	case parkRendezvous:
		s.armRendezvousPark(r, r.park.gen)
	case parkFinished:
		s.finishedPark(r)
	case parkIdle:
		s.armIdlePark(r)
	case parkStall:
		s.armStallPark(r)
	case parkEventVote:
		num, args := r.park.num, r.park.args
		s.armEventBarrier(r, r.park, nil, func() {
			s.dispatch(r, num, args)
		})
	case parkEventMemAccess:
		action, cont := s.ftMemAccessFuncs(r, r.park.args)
		s.armEventBarrier(r, r.park, action, cont)
	case parkEventMemRep:
		action, cont := s.ftMemRepFuncs(r, r.park.va, r.park.n)
		s.armEventBarrier(r, r.park, action, cont)
	default:
		return fmt.Errorf("%w: replica %d parked with no park descriptor",
			snapshot.ErrBadSnapshot, r.ID)
	}
	c.ParkWakeAt(wake)
	return nil
}

// loadObservability restores the flight recorder and metric set. Both
// follow the same rule: restored exactly when the target records with a
// matching shape, kept fresh (re-recording from the restore point)
// otherwise. A snapshot saved without tracing restores cleanly into a
// tracing system — that is the replay-triage path.
func (s *System) loadObservability(snap *snapshot.Snapshot) error {
	d, err := snap.Section("sys.trace")
	if err != nil {
		return err
	}
	if d.Bool() {
		raw := d.Bytes()
		if s.rec != nil {
			loaded, lerr := trace.Load(bytes.NewReader(raw))
			if lerr != nil {
				return fmt.Errorf("%w: embedded trace: %v", snapshot.ErrBadSnapshot, lerr)
			}
			if loaded.NumReplicas() == s.rec.NumReplicas() &&
				loaded.System().Cap() == s.rec.System().Cap() {
				s.rec = loaded
			}
		}
	}
	if err := d.Close(); err != nil {
		return err
	}
	d, err = snap.Section("sys.metrics")
	if err != nil {
		return err
	}
	if d.Bool() {
		m := s.met
		if m == nil {
			m = metrics.New() // scratch: consume the payload so Close is exact
		}
		if err := m.LoadState(d); err != nil {
			return err
		}
	}
	return d.Close()
}
