package core

import (
	"errors"
	"fmt"
	"strings"

	"rcoe/internal/isa"
	"rcoe/internal/metrics"
	"rcoe/internal/trace"
)

// ErrTraceDisabled is returned by forensic operations when the system was
// built without Config.Trace.Enabled.
var ErrTraceDisabled = errors.New("core: trace recording disabled")

// ReplicaForensics is one replica's state context captured at detection
// time: the full register file, program position, and the published
// section signature the vote compared.
type ReplicaForensics struct {
	ID    int
	Alive bool
	// PC and Regs are the core's architectural state at capture.
	PC   uint64
	Regs [isa.NumRegs]uint64
	// Cycles is the core-local cycle count; LC and Branches its logical
	// position.
	Cycles   uint64
	LC       uint64
	Branches uint64
	// SigEvents and SigSum are the published signature (the values the
	// failed vote compared).
	SigEvents uint64
	SigSum    uint64
}

// DivergenceReport is the first-divergence analysis emitted when a fault
// is detected (signature mismatch, barrier timeout, ejection) or when a
// caller requests one: the rings are frozen (copied), the replica streams
// aligned by logical time, and the first disagreeing event identified.
type DivergenceReport struct {
	// Reason is a human-readable capture cause.
	Reason string
	// Kind is the detection class that triggered the capture (0 for
	// explicit captures).
	Kind DetectionKind
	// Cycle is the machine cycle of the capture.
	Cycle uint64
	// Implicated is the replica the detection machinery blamed (vote
	// loser, straggler), or -1 when it could not decide.
	Implicated int
	// Divergence is the trace-alignment result; Divergence.Replica is
	// the replica the *traces* blame, independently of the vote.
	Divergence trace.Divergence
	// Replicas is the per-replica register/signature context.
	Replicas []ReplicaForensics
	// Trace is the frozen recorder copy backing the analysis (for
	// saving with rcoe-trace).
	Trace *trace.Recorder
}

// String renders the full report.
func (d *DivergenceReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "divergence report: %s (cycle %d", d.Reason, d.Cycle)
	if d.Kind != 0 {
		fmt.Fprintf(&b, ", detection %s", d.Kind)
	}
	if d.Implicated >= 0 {
		fmt.Fprintf(&b, ", vote blames replica %d", d.Implicated)
	}
	b.WriteString(")\n")
	fmt.Fprintf(&b, "%s\n", d.Divergence)
	for _, rf := range d.Replicas {
		status := "alive"
		if !rf.Alive {
			status = "removed"
		}
		fmt.Fprintf(&b, "  replica %d (%s): pc=%#x lc=%d br=%d cycles=%d sig=(%d,%#x)\n",
			rf.ID, status, rf.PC, rf.LC, rf.Branches, rf.Cycles, rf.SigEvents, rf.SigSum)
		fmt.Fprintf(&b, "    regs:")
		for i, v := range rf.Regs {
			if v == 0 {
				continue
			}
			fmt.Fprintf(&b, " r%d=%#x", i, v)
		}
		b.WriteString("\n")
	}
	return strings.TrimRight(b.String(), "\n")
}

// TraceRecorder returns the live flight recorder, or nil when recording
// is disabled.
func (s *System) TraceRecorder() *trace.Recorder { return s.rec }

// Metrics returns the live metric set, or nil when disabled (a nil set
// is safe to observe into).
func (s *System) Metrics() *metrics.Set { return s.met }

// MetricsSnapshot copies the current metric state. On a system without
// tracing enabled the snapshot is empty.
func (s *System) MetricsSnapshot() metrics.Snapshot {
	return s.met.Snapshot(s.m.Now())
}

// CaptureForensics freezes the rings and produces a first-divergence
// report on demand (soak invariant failures, operator requests). It
// returns ErrTraceDisabled when the system records no traces.
func (s *System) CaptureForensics(reason string) (*DivergenceReport, error) {
	if s.rec == nil {
		return nil, fmt.Errorf("%w: enable Config.Trace to capture forensics", ErrTraceDisabled)
	}
	return s.buildReport(0, -1, reason), nil
}

// TakeDivergenceReport returns the report captured at the first detection
// since the last call, and clears it so a later fault cycle can capture
// afresh. Nil when nothing was captured (or recording is disabled).
func (s *System) TakeDivergenceReport() *DivergenceReport {
	rep := s.report
	s.report = nil
	return rep
}

// captureOnDetection freezes the rings at the moment a detection is
// recorded. First capture wins until TakeDivergenceReport clears it, so
// the report reflects the original fault, not follow-on detections.
func (s *System) captureOnDetection(kind DetectionKind, rid int) {
	if s.rec == nil || s.report != nil {
		return
	}
	s.report = s.buildReport(kind, rid, kind.String())
}

// buildReport copies the rings ("freeze"), aligns the replica streams by
// logical time, and assembles the report.
func (s *System) buildReport(kind DetectionKind, implicated int, reason string) *DivergenceReport {
	frozen := s.rec.Clone()
	rep := &DivergenceReport{
		Reason:     reason,
		Kind:       kind,
		Cycle:      s.m.Now(),
		Implicated: implicated,
		Divergence: trace.FirstDivergence(frozen.Streams()),
		Trace:      frozen,
	}
	for _, r := range s.reps {
		c := r.Core()
		ev, sum := r.K.Signature()
		rep.Replicas = append(rep.Replicas, ReplicaForensics{
			ID:        r.ID,
			Alive:     s.cfg.Mode == ModeNone || s.sh.alive(r.ID),
			PC:        c.PC,
			Regs:      c.Regs,
			Cycles:    c.Cycles,
			LC:        r.K.EventCount(),
			Branches:  c.UserBranches,
			SigEvents: ev,
			SigSum:    sum,
		})
	}
	return rep
}

// --- recording hooks ---
// Every hook is a single nil check when tracing is disabled, and none of
// them charges simulated cycles: stamping uses EventCount/Signature (pure
// RAM reads) and core fields directly, never timeOf/AddTrace (which cost
// stalls). Enabled tracing therefore leaves simulated behaviour
// bit-identical (TestTraceZeroPerturbation).

// trEvent records a per-replica event stamped with the replica's logical
// position.
func (s *System) trEvent(r *Replica, kind trace.Kind, arg1, arg2 uint64) {
	if s.rec == nil {
		return
	}
	c := r.Core()
	ev := trace.Event{
		Cycle:    s.m.Now(),
		Kind:     kind,
		LC:       r.K.EventCount(),
		Branches: c.UserBranches,
		IP:       c.PC,
		Arg1:     arg1,
		Arg2:     arg2,
	}
	if kind == trace.KindTick && s.cfg.Mode != ModeCC {
		// Under LC coupling, preemption legitimately lands on different
		// instructions in each replica (§III-A): the branch count and IP
		// at a tick are timing artifacts, not logical state, and must not
		// feed divergence comparison.
		ev.Branches, ev.IP = 0, 0
	}
	s.rec.Record(r.ID, ev)
	s.met.TraceEvents.Inc()
}

// trSys records a system-level event on the system ring.
func (s *System) trSys(kind trace.Kind, arg1, arg2 uint64) {
	if s.rec == nil {
		return
	}
	s.rec.Record(-1, trace.Event{Cycle: s.m.Now(), Kind: kind, Arg1: arg1, Arg2: arg2})
	s.met.TraceEvents.Inc()
}

// wireKernelTrace installs the kernel-side observability hooks for one
// replica (called at construction and again after re-integration builds a
// fresh kernel).
func (s *System) wireKernelTrace(r *Replica) {
	if s.rec == nil {
		return
	}
	r.K.OnPreempt = func(n uint64) {
		s.trEvent(r, trace.KindTick, n, 0)
	}
}
