package core

import (
	"fmt"

	"rcoe/internal/machine"
	"rcoe/internal/trace"
)

// Downgrade cost model (cycles), calibrated to reproduce the shape of
// Table X: removing the primary is roughly two orders of magnitude more
// expensive than removing another replica, because interrupts must be
// re-routed and (under CC) every DMA-marked page-table entry patched.
const (
	costRerouteLine   = 600  // re-programming one interrupt route
	costPatchDMAPage  = 3500 // CC: patching one DMA-marked PTE (§IV-A)
	costRemapSharedLC = 900  // LC: re-establishing one shared mapping
	costRemoveOtherLC = 800  // survivors' wait for a non-primary removal
	costRemoveOtherCC = 300
)

// handleVoteFailure resolves a failed signature vote: fail-stop for DMR
// (detection only), or run the fault-voting algorithm and downgrade for a
// masking TMR configuration (§IV).
func (s *System) handleVoteFailure() {
	if s.met != nil {
		s.met.VoteFails.Inc()
	}
	if !s.cfg.Masking || s.AliveCount() < 3 {
		s.record(DetectSignatureMismatch, -1, false)
		s.halt("signature mismatch (DMR: detection only)")
		return
	}
	faulty, ok := s.runFaultVote()
	if !ok {
		s.record(DetectVoteInconclusive, -1, false)
		s.halt("no consensus on faulty replica")
		return
	}
	s.downgrade(faulty)
}

// runFaultVote executes the voting algorithm of the paper's Listing 5
// redundantly for every alive replica, over the shared-RAM arrays
// (checksum, ft_votes, ft_fault_replica), with the kbarrier phases made
// explicit. It returns the faulty replica's ID and whether consensus was
// reached.
func (s *System) runFaultVote() (int, bool) {
	ids := s.aliveIDs()
	n := len(ids)
	// Phase 1: each replica counts how many checksums match its own.
	for _, my := range ids {
		mySum := s.sh.repWord(my, rwChecksum)
		votes := uint64(0)
		for _, i := range ids {
			if s.sh.repWord(i, rwChecksum) == mySum {
				votes++
			}
		}
		s.sh.setRepWord(my, rwFTVotes, votes)
		s.reps[my].Core().AddStall(10 * n)
	}
	// kbarrier(bar, N) — all replicas reach this point before phase 2.
	// Phase 2: the replica with the fewest matches is the fault
	// candidate; a replica whose own vote count is not N-1 accuses
	// itself (it knows its checksum is the odd one out).
	for _, my := range ids {
		least := uint64(n) + 1
		fault := n + 1
		for _, i := range ids {
			if v := s.sh.repWord(i, rwFTVotes); v < least {
				least = v
				fault = i
			}
		}
		if s.sh.repWord(my, rwFTVotes) != uint64(n-1) {
			s.sh.setRepWord(my, rwFTFaulty, uint64(my))
		} else {
			s.sh.setRepWord(my, rwFTFaulty, uint64(fault))
		}
		s.reps[my].Core().AddStall(10 * n)
	}
	// kbarrier — then phase 3: consensus check.
	ref := s.sh.repWord(ids[0], rwFTFaulty)
	for _, i := range ids[1:] {
		if s.sh.repWord(i, rwFTFaulty) != ref {
			return -1, false // ERROR_DIFF_FAULT_REPLICA
		}
	}
	if ref >= uint64(len(s.reps)) {
		return -1, false
	}
	return int(ref), true
}

// downgrade removes the agreed-faulty replica, masking the error. If the
// primary is removed, a new primary is elected (smallest alive ID),
// interrupts are re-routed, and DMA mappings are reconfigured — the
// expensive path of Table X.
func (s *System) downgrade(faulty int) {
	if !s.removalSafe(faulty, DetectSignatureMismatch) {
		return
	}
	s.record(DetectSignatureMismatch, faulty, true)
	s.stats.Downgrades++
	s.trSys(trace.KindEject, uint64(faulty), uint64(DetectSignatureMismatch))
	if s.met != nil {
		s.met.Ejections.Inc()
	}
	s.removeReplica(faulty)
	s.sh.setWord(wVoteOutcome, uint64(faulty)+1)
}

// ejectStraggler resolves a barrier timeout by voting the non-responsive
// replica out of a masking TMR configuration — the availability path: the
// survivors continue as DMR instead of fail-stopping (§IV-A/§IV-C). It
// returns true when the straggler was ejected and the waiting replicas
// should re-enter the barrier; on false the system has fail-stopped.
func (s *System) ejectStraggler(straggler int) bool {
	if !s.cfg.Masking || s.AliveCount() < 3 {
		s.record(DetectBarrierTimeout, straggler, false)
		s.halt(fmt.Sprintf("barrier timeout waiting for replica %d (detection only)", straggler))
		return false
	}
	if !s.removalSafe(straggler, DetectBarrierTimeout) {
		return false
	}
	s.record(DetectBarrierTimeout, straggler, true)
	s.stats.Ejections++
	s.trSys(trace.KindEject, uint64(straggler), uint64(DetectBarrierTimeout))
	if s.met != nil {
		s.met.Ejections.Inc()
	}
	// Unlike a vote-identified replica, a straggler cannot remove itself
	// at release (it is unresponsive): force its core offline here.
	s.reps[straggler].Core().SetOffline()
	s.removeReplica(straggler)
	return true
}

// removalSafe checks the §IV-A conditions under which removing a faulty
// replica is impossible; when unmet it records an unmasked detection of
// the given kind and fail-stops.
func (s *System) removalSafe(faulty int, kind DetectionKind) bool {
	if faulty == s.Primary() && s.sh.word(wIOBusy) != 0 {
		// A faulty primary may have initiated I/O that could corrupt the
		// system; downgrading is unsafe (§IV-A).
		s.record(kind, faulty, false)
		s.halt("faulty primary during device I/O")
		return false
	}
	if faulty == s.Primary() && s.cfg.Mode == ModeCC && !s.cfg.Profile.HasSparePTEBit {
		// No spare page-table bit to mark DMA buffers: CC masking is
		// unsupported on this platform (§IV-A).
		s.record(kind, faulty, false)
		s.halt("CC error masking unsupported without a spare PTE bit")
		return false
	}
	return true
}

// removeReplica takes the faulty replica out of the configuration and
// charges the Table X downgrade cost to the survivors. Removing the
// primary additionally re-elects, re-routes interrupts, resets the
// input-replication channel, and reconfigures DMA mappings.
func (s *System) removeReplica(faulty int) {
	wasPrimary := faulty == s.Primary()
	s.sh.removeAlive(faulty)
	cost := 0
	if wasPrimary {
		newP := s.aliveIDs()[0]
		s.sh.setWord(wPrimary, uint64(newP))
		for line := 0; line < 64; line++ {
			s.m.RouteIRQ(line, newP)
		}
		cost += 64 * costRerouteLine
		// Reset the input-replication channel: the dead primary may have
		// left followers spinning on a publication that will never come.
		// Publishing an empty frame (length 0, sequence bumped) sends
		// every surviving driver back to its interrupt wait, after which
		// the re-routed interrupts reach the new primary. At most the
		// single in-flight frame is lost, as in a real NIC failover.
		s.resetInputChannel()
		if s.primaryChange != nil {
			s.primaryChange(newP)
		}
		if s.cfg.Mode == ModeCC {
			cost += int(dmaSize/4096) * costPatchDMAPage
		} else {
			cost += int(inputSize/4096) * costRemapSharedLC
		}
	} else {
		if s.cfg.Mode == ModeCC {
			cost = costRemoveOtherCC
		} else {
			cost = costRemoveOtherLC
		}
	}
	for _, rid := range s.aliveIDs() {
		s.reps[rid].Core().AddStall(cost)
	}
	s.stats.DowngradeCycles = uint64(cost)
	if s.met != nil {
		s.met.DowngradeCost.Observe(uint64(cost))
	}
}

// VoteDemo runs the fault-voting algorithm over the given published
// checksums on a scratch system with len(sums) replicas (Table I
// demonstrations). It returns the agreed-faulty replica and whether
// consensus was reached.
func VoteDemo(sums []uint64) (int, bool) {
	prof := machine.X86()
	if len(sums) > prof.Cores {
		prof.Cores = len(sums)
	}
	sys, err := NewSystem(Config{
		Mode: ModeLC, Replicas: len(sums), Masking: true, Profile: prof,
		PartitionBytes: 1 << 20,
	})
	if err != nil {
		return -1, false
	}
	for rid, sum := range sums {
		sys.sh.setRepWord(rid, rwChecksum, sum)
	}
	return sys.runFaultVote()
}
