package core

// SetDebugChase installs a test hook observing catch-up comparisons.
func SetDebugChase(f func(rid int, ltEvents, ltBranches, ltIP, tgtEvents, tgtBranches, tgtIP uint64)) {
	if f == nil {
		debugChase = nil
		return
	}
	debugChase = func(rid int, lt, target logicalTime) {
		f(rid, lt.Events, lt.Branches, lt.IP, target.Events, target.Branches, target.IP)
	}
}

// SetDebugArrive installs a test hook observing rendezvous arrivals.
func SetDebugArrive(f func(rid int, gen, events, branches, ip, now, cycles uint64)) {
	if f == nil {
		debugArrive = nil
		return
	}
	debugArrive = func(rid int, gen uint64, lt logicalTime, now, cycles uint64) {
		f(rid, gen, lt.Events, lt.Branches, lt.IP, now, cycles)
	}
}

// SetDebugStale installs a test hook observing dropped debug traps.
func SetDebugStale(f func(what string, rid int, now uint64)) { debugStale = f }

// SetDebugRelease installs a test hook observing rendezvous releases.
func SetDebugRelease(f func(rid int, gen, pc, r5, rbc, now uint64)) { debugRelease = f }
