package core

import "rcoe/internal/machine"

// Physical memory map. The RCoE framework region and the input-replication
// buffer are shared among all replicas; the DMA region belongs to devices
// and sits outside the sphere of replication; each replica then owns a
// private partition. Faults injected into the shared region corrupt the
// harness itself — barriers, published times, checksums — which the paper
// identifies as a residual vulnerability (§VI).
const (
	sharedBase uint64 = 0x0000
	sharedSize uint64 = 0x20000 // 64 KiB framework + 64 KiB input buffer
	inputOff   uint64 = 0x10000 // input-replication buffer offset
	inputSize  uint64 = 0x10000

	dmaBase uint64 = sharedBase + sharedSize
	dmaSize uint64 = 0x40000 // 256 KiB device DMA region

	partBase uint64 = dmaBase + dmaSize
)

// Shared framework word offsets (in 8-byte words from sharedBase).
const (
	wSyncGen     = 0 // current sync generation (0 = none pending)
	wSyncKind    = 1 // syncIRQ / syncFinal
	wSyncLines   = 2 // pending device-interrupt line bitmask
	wAliveMask   = 3 // bitmask of alive replicas
	wPrimary     = 4 // current primary replica ID
	wHalted      = 5 // nonzero when the system has fail-stopped
	wIOBusy      = 6 // nonzero while a replica performs device I/O
	wReleaseGen  = 7 // rendezvous release marker (generation number)
	wVoteRelease = 8 // per-syscall vote release marker (event number)
	wVoteOutcome = 9 // fault-vote outcome: 0 ok, 1+rid downgrade, ^0 halt
)

// Per-replica shared block: 16 words each, starting at word 16.
const (
	repBlockWords = 16
	repBlockBase  = 16

	rwArriveGen = 0  // sync generation this replica has arrived at
	rwEvents    = 1  // published logical time: event count
	rwBranches  = 2  // published logical time: effective branch count
	rwIP        = 3  // published logical time: user instruction pointer
	rwBlockRem  = 4  // block-op remaining length (rep-instruction tiebreak)
	rwChecksum  = 5  // published signature checksum
	rwSigEvents = 6  // published signature event count
	rwVoteEvent = 7  // event number of the last per-syscall vote arrival
	rwVoteSum   = 8  // checksum published for the per-syscall vote
	rwFTVotes   = 9  // Listing 5: ft_votes[i]
	rwFTFaulty  = 10 // Listing 5: ft_fault_replica[i]
	rwDoneFlag  = 11 // nonzero when the replica's workload completed
	rwParkedGen = 12 // generation this replica is parked at (0 = running)
)

// Sync kinds stored at wSyncKind.
const (
	syncIRQ   = 1
	syncFinal = 2
)

// shared provides typed access to the framework region. All state it
// manages lives in simulated RAM so that fault injection reaches it.
type shared struct {
	mem *machine.Mem
}

func (s shared) word(i int) uint64 {
	v, _ := s.mem.ReadU(sharedBase+uint64(i)*8, 8)
	return v
}

func (s shared) setWord(i int, v uint64) {
	// The framework region is always within RAM; ignore the impossible
	// error to keep call sites readable.
	_ = s.mem.WriteU(sharedBase+uint64(i)*8, 8, v)
}

func (s shared) repWord(rid, w int) uint64 {
	return s.word(repBlockBase + rid*repBlockWords + w)
}

func (s shared) setRepWord(rid, w int, v uint64) {
	s.setWord(repBlockBase+rid*repBlockWords+w, v)
}

// logicalTime is a replica's published position in its execution. Under
// LC only Events is meaningful; under CC the full triple (plus the
// block-op tiebreak) orders replicas (§III-B).
type logicalTime struct {
	Events   uint64
	Branches uint64
	IP       uint64
	// BlockRem is the remaining length of an in-progress block
	// operation at IP (0 when not at a block op). Larger means earlier.
	BlockRem uint64
}

// less orders logical times: fewer events first, then fewer branches,
// then smaller IP is NOT comparable across basic blocks in general — but
// with equal (events, branches) both replicas are in the same straight-
// line run, where the smaller IP is behind; at a block op, more remaining
// bytes is behind.
func (a logicalTime) less(b logicalTime) bool {
	if a.Events != b.Events {
		return a.Events < b.Events
	}
	if a.Branches != b.Branches {
		return a.Branches < b.Branches
	}
	if a.IP != b.IP {
		return a.IP < b.IP
	}
	return a.BlockRem > b.BlockRem
}

func (a logicalTime) equal(b logicalTime) bool {
	return a == b
}

// publishTime writes a replica's logical time to its shared block.
func (s shared) publishTime(rid int, lt logicalTime) {
	s.setRepWord(rid, rwEvents, lt.Events)
	s.setRepWord(rid, rwBranches, lt.Branches)
	s.setRepWord(rid, rwIP, lt.IP)
	s.setRepWord(rid, rwBlockRem, lt.BlockRem)
}

// readTime reads a replica's published logical time.
func (s shared) readTime(rid int) logicalTime {
	return logicalTime{
		Events:   s.repWord(rid, rwEvents),
		Branches: s.repWord(rid, rwBranches),
		IP:       s.repWord(rid, rwIP),
		BlockRem: s.repWord(rid, rwBlockRem),
	}
}

// alive reports whether replica rid is in the alive mask.
func (s shared) alive(rid int) bool {
	return s.word(wAliveMask)&(1<<uint(rid)) != 0
}

// removeAlive clears a replica from the alive mask.
func (s shared) removeAlive(rid int) {
	s.setWord(wAliveMask, s.word(wAliveMask)&^(1<<uint(rid)))
}

// inputBufPA returns the physical address of the input-replication buffer
// (the cross-replica region LC drivers map and FT_Mem_Rep uses).
//
// The first two words of the buffer form the LC driver publication ABI:
// word 0 is a sequence number the primary bumps after publishing, word 1
// the published frame length (0 = no frame). The kernel relies on this
// layout when it resets the channel during primary removal.
func inputBufPA() uint64 { return sharedBase + inputOff }

// resetInputChannel publishes an empty frame on the driver channel.
func (s *System) resetInputChannel() {
	seq, _ := s.m.Mem().ReadU(inputBufPA(), 8)
	_ = s.m.Mem().WriteU(inputBufPA()+8, 8, 0)   // length 0
	_ = s.m.Mem().WriteU(inputBufPA(), 8, seq+1) // bump sequence
}

// DMARegion returns the device DMA window (physical).
func DMARegion() (base, size uint64) { return dmaBase, dmaSize }

// SharedRegion returns the RCoE framework region (physical), which fault
// campaigns may target.
func SharedRegion() (base, size uint64) { return sharedBase, sharedSize }

// PartitionBase returns replica rid's physical partition base for a given
// partition size.
func PartitionBase(rid int, partBytes uint64) uint64 {
	return partBase + uint64(rid)*partBytes
}
