package core

import (
	"strings"
	"testing"

	"rcoe/internal/asm"
	"rcoe/internal/compilerpass"
	"rcoe/internal/isa"
	"rcoe/internal/kernel"
	"rcoe/internal/machine"
)

// newSysCCArm builds a CC system on the arm profile with a properly
// instrumented syscall-loop program.
func newSysCCArm(t *testing.T, cfg Config, n int64) *System {
	t.Helper()
	b := asm.New()
	b.Li(5, 0)
	b.Li64(6, uint64(n))
	b.Label("loop")
	b.Syscall(kernel.SysNull)
	b.Addi(5, 5, 1)
	b.Blt(5, 6, "loop")
	b.Li(1, 0)
	b.Syscall(kernel.SysExit)
	compilerpass.Instrument(b)
	prog, err := b.Assemble(kernel.TextVA)
	if err != nil {
		t.Fatal(err)
	}
	cfg.BranchSites = compilerpass.BranchSites(prog, kernel.TextVA)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Load(kernel.ProcessConfig{Prog: prog, DataBytes: 1 << 16}); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestCCMaskingHaltsOnArmPrimary(t *testing.T) {
	// CC error masking needs a spare page-table bit to patch DMA
	// mappings; the Arm profile has none (§IV-A), so removing a faulty
	// CC primary must fail-stop instead of downgrading.
	sys := newSysCCArm(t, Config{Mode: ModeCC, Replicas: 3, TickCycles: 20000,
		Masking: true, Profile: machine.Arm()}, 10000)
	sys.RunCycles(50_000)
	lay := sys.Replica(0).K.Layout()
	if err := sys.Machine().Mem().FlipBit(lay.SigPA()+8, 5); err != nil {
		t.Fatal(err)
	}
	err := sys.Run(200_000_000)
	if err == nil {
		t.Fatalf("CC masking on Arm should have halted")
	}
	_, reason := sys.Halted()
	if !strings.Contains(reason, "spare PTE bit") {
		t.Fatalf("halt reason = %q", reason)
	}
}

func TestCCMaskingWorksOnArmNonPrimary(t *testing.T) {
	// Removing a non-primary replica does not touch DMA mappings, so it
	// works even without the spare bit.
	sys := newSysCCArm(t, Config{Mode: ModeCC, Replicas: 3, TickCycles: 20000,
		Masking: true, Profile: machine.Arm()}, 5000)
	sys.RunCycles(50_000)
	lay := sys.Replica(2).K.Layout()
	if err := sys.Machine().Mem().FlipBit(lay.SigPA()+8, 5); err != nil {
		t.Fatal(err)
	}
	mustFinish(t, sys, 600_000_000)
	if sys.Alive(2) || sys.AliveCount() != 2 {
		t.Fatalf("replica 2 not removed (alive=%d)", sys.AliveCount())
	}
}

func TestTMRWithoutMaskingHalts(t *testing.T) {
	sys := newSys(t, Config{Mode: ModeLC, Replicas: 3, TickCycles: 20000},
		syscallLoop(t, 10000))
	sys.RunCycles(50_000)
	lay := sys.Replica(1).K.Layout()
	if err := sys.Machine().Mem().FlipBit(lay.SigPA()+8, 5); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(200_000_000); err == nil {
		t.Fatalf("TMR without masking should halt on mismatch")
	}
	if sys.AliveCount() != 3 {
		t.Fatalf("no downgrade should have happened")
	}
}

func TestVoteInconclusiveHalts(t *testing.T) {
	// Corrupt two replicas differently: no consensus on the faulter
	// (Listing 5's ERROR_DIFF_FAULT_REPLICA) and the system fail-stops.
	sys := newSys(t, Config{Mode: ModeLC, Replicas: 3, TickCycles: 20000,
		Masking: true}, syscallLoop(t, 10000))
	sys.RunCycles(50_000)
	for rid := 0; rid < 2; rid++ {
		lay := sys.Replica(rid).K.Layout()
		if err := sys.Machine().Mem().FlipBit(lay.SigPA()+8, uint(3+rid)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Run(200_000_000); err == nil {
		t.Fatalf("inconclusive vote should halt")
	}
	var inconclusive bool
	for _, d := range sys.Detections() {
		if d.Kind == DetectVoteInconclusive {
			inconclusive = true
		}
	}
	if !inconclusive {
		t.Fatalf("no inconclusive-vote detection: %v", sys.Detections())
	}
}

func TestUserFaultDetectedViaSignature(t *testing.T) {
	// Corrupt replica 1's user text so it takes an exception the other
	// replica does not: the fault fingerprint folded into the signature
	// diverges the next vote.
	sys := newSys(t, Config{Mode: ModeLC, Replicas: 2, TickCycles: 20000},
		cpuLoop(t, 3_000_000))
	sys.RunCycles(60_000)
	// Overwrite the loop body with an illegal opcode in replica 1 only.
	lay := sys.Replica(1).K.Layout()
	if err := sys.Machine().Mem().Write(lay.UserPA()+2*8, []byte{0xEE}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(400_000_000); err == nil {
		t.Fatalf("diverging user fault should be detected")
	}
	if sys.Replica(1).UserFaults == 0 {
		t.Fatalf("replica 1 never faulted")
	}
	if len(sys.Detections()) == 0 {
		t.Fatalf("no detections recorded")
	}
}

func TestExceptionBarriersForceEarlySync(t *testing.T) {
	// Two threads: a worker that loops forever-ish and a main loop whose
	// text we corrupt in one replica. Without exception barriers, the
	// divergence is caught only at the next (slow) timer tick; with them,
	// the faulting replica forces a synchronisation immediately.
	build := func() []isa.Instr {
		b := asm.New()
		b.LiLabel(1, "worker")
		b.Li64(2, kernel.StackTopVA-kernel.StackSize)
		b.Li(3, 0)
		b.Syscall(kernel.SysSpawn)
		b.Label("main_loop") // this region gets corrupted in replica 1
		b.Nop()
		b.Nop()
		b.J("main_loop")
		b.Label("worker")
		b.Li(5, 0)
		b.Li64(6, 100_000_000)
		b.Label("wloop")
		b.Addi(5, 5, 1)
		b.Blt(5, 6, "wloop")
		b.Li(1, 0)
		b.Syscall(kernel.SysExit)
		return b.MustAssemble(kernel.TextVA)
	}
	detectCycle := func(barriers bool) uint64 {
		sys, err := NewSystem(Config{Mode: ModeLC, Replicas: 2,
			TickCycles: 400_000, ExceptionBarriers: barriers})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Load(kernel.ProcessConfig{Prog: build(), DataBytes: 1 << 14, Stacks: 2}); err != nil {
			t.Fatal(err)
		}
		sys.RunCycles(30_000)
		// Corrupt the main loop's first nop in replica 1 only.
		lay := sys.Replica(1).K.Layout()
		if err := sys.Machine().Mem().Write(lay.UserPA()+4*8, []byte{0xEE}); err != nil {
			t.Fatal(err)
		}
		_ = sys.Run(600_000_000)
		for _, d := range sys.Detections() {
			if d.Kind != DetectUserFault {
				return d.Cycle
			}
		}
		t.Fatalf("no system-level detection (barriers=%v): %v", barriers, sys.Detections())
		return 0
	}
	with := detectCycle(true)
	without := detectCycle(false)
	if with >= without {
		t.Fatalf("exception barriers should detect earlier: with=%d without=%d", with, without)
	}
}

func TestDowngradedSystemSurvivesSecondRun(t *testing.T) {
	// After masking, the DMR remnant must still synchronise and finish.
	sys := newSys(t, Config{Mode: ModeLC, Replicas: 3, TickCycles: 20000,
		Sig: SigArgs, Masking: true}, syscallLoop(t, 20000))
	sys.RunCycles(50_000)
	lay := sys.Replica(1).K.Layout()
	if err := sys.Machine().Mem().FlipBit(lay.SigPA()+8, 5); err != nil {
		t.Fatal(err)
	}
	mustFinish(t, sys, 800_000_000)
	if !sys.Finished() {
		t.Fatalf("DMR remnant did not finish")
	}
	if sys.Stats().Syncs == 0 {
		t.Fatalf("no syncs after downgrade")
	}
}
