package core

import (
	"bytes"
	"errors"
	"testing"

	"rcoe/internal/snapshot"
)

// saveBytes serializes a system, failing the test on error.
func saveBytes(t *testing.T, sys *System) []byte {
	t.Helper()
	data, err := snapshot.Save(sys)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// expectIdentical asserts two serialized systems are byte-identical,
// printing the section-level diff otherwise.
func expectIdentical(t *testing.T, msg string, a, b []byte) {
	t.Helper()
	if bytes.Equal(a, b) {
		return
	}
	sa, _ := snapshot.Parse(a)
	sb, _ := snapshot.Parse(b)
	t.Fatalf("%s: %v", msg, snapshot.Diff(sa, sb))
}

// TestSystemStateRoundTrip pins the full-system snapshot contract on a
// replicated run checkpointed mid-flight (cores may be parked at a
// rendezvous): restore is exact (re-serializing is byte-identical) and
// the restored system runs to completion bit-identically to the
// original, including flight-recorder and metric state.
func TestSystemStateRoundTrip(t *testing.T) {
	cfg := Config{Mode: ModeLC, Replicas: 2, TickCycles: 20000, Sig: SigArgs,
		Trace: TraceConfig{Enabled: true}}
	orig := newSys(t, cfg, syscallLoop(t, 20000))
	orig.RunCycles(400_000) // mid-run: replicas between (or inside) barriers
	if orig.Finished() {
		t.Fatal("workload finished before the checkpoint; shorten the warmup")
	}
	data := saveBytes(t, orig)

	rest := newSys(t, cfg, syscallLoop(t, 20000))
	rest.RunCycles(123_456) // a different cycle: every restored field matters
	if err := snapshot.Restore(rest, data); err != nil {
		t.Fatal(err)
	}
	expectIdentical(t, "re-serialized snapshot differs", data, saveBytes(t, rest))

	mustFinish(t, orig, 200_000_000)
	mustFinish(t, rest, 200_000_000)
	expectIdentical(t, "continuation diverged after restore",
		saveBytes(t, orig), saveBytes(t, rest))
	if got, want := rest.Replica(0).K.Thread(0).ExitCode, orig.Replica(0).K.Thread(0).ExitCode; got != want {
		t.Fatalf("exit code %d, want %d", got, want)
	}
	if a, b := orig.MetricsSnapshot().Table("m"), rest.MetricsSnapshot().Table("m"); a != b {
		t.Fatalf("metric tables diverged:\n%s\nvs\n%s", a, b)
	}
}

// TestSystemStateEventBarrierParks checkpoints a SigSync run at many
// points — some land while replicas are parked at per-syscall event
// barriers — and verifies each restore continues bit-identically.
func TestSystemStateEventBarrierParks(t *testing.T) {
	cfg := Config{Mode: ModeLC, Replicas: 2, Sig: SigSync, TickCycles: 0}
	orig := newSys(t, cfg, syscallLoop(t, 300))
	var checkpoints [][]byte
	for i := 0; i < 6 && !orig.Finished(); i++ {
		orig.RunCycles(40_000)
		checkpoints = append(checkpoints, saveBytes(t, orig))
	}
	mustFinish(t, orig, 200_000_000)
	final := saveBytes(t, orig)

	for i, cp := range checkpoints {
		rest := newSys(t, cfg, syscallLoop(t, 300))
		if err := snapshot.Restore(rest, cp); err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
		mustFinish(t, rest, 200_000_000)
		expectIdentical(t, "checkpoint continuation diverged", final, saveBytes(t, rest))
	}
}

// TestSystemStateAccelAndTracePortability restores a snapshot saved under
// the default accelerators and no tracing into a system with both
// accelerators disabled and tracing enabled: the simulated evolution must
// be identical (host-side settings are outside the snapshot boundary, and
// enabled tracing perturbs nothing).
func TestSystemStateAccelAndTracePortability(t *testing.T) {
	base := Config{Mode: ModeLC, Replicas: 2, TickCycles: 20000, Sig: SigArgs}
	orig := newSys(t, base, syscallLoop(t, 10000))
	orig.RunCycles(300_000)
	if orig.Finished() {
		t.Fatal("workload finished before the checkpoint; enlarge it")
	}
	data := saveBytes(t, orig)
	mustFinish(t, orig, 200_000_000)

	slow := base
	slow.DisableFastForward = true
	slow.DisableExecCache = true
	slow.Trace = TraceConfig{Enabled: true}
	rest := newSys(t, slow, syscallLoop(t, 10000))
	if err := snapshot.Restore(rest, data); err != nil {
		t.Fatal(err)
	}
	mustFinish(t, rest, 200_000_000)

	if a, b := orig.Machine().Now(), rest.Machine().Now(); a != b {
		t.Fatalf("now diverged: %d vs %d", a, b)
	}
	for rid := 0; rid < 2; rid++ {
		evA, sumA := orig.Replica(rid).K.Signature()
		evB, sumB := rest.Replica(rid).K.Signature()
		if evA != evB || sumA != sumB {
			t.Fatalf("replica %d signature diverged: (%d,%#x) vs (%d,%#x)",
				rid, evA, sumA, evB, sumB)
		}
	}
	if rest.TraceRecorder() == nil {
		t.Fatal("restored system lost its own flight recorder")
	}
	if rest.TraceRecorder().Ring(0).Total() == 0 {
		t.Fatal("restored tracing system recorded nothing after restore")
	}
}

// TestSystemStateIncompatibleConfig rejects restore targets whose
// behavioural configuration differs from the snapshot's.
func TestSystemStateIncompatibleConfig(t *testing.T) {
	cfg := Config{Mode: ModeLC, Replicas: 2, TickCycles: 20000}
	orig := newSys(t, cfg, cpuLoop(t, 5000))
	orig.RunCycles(50_000)
	data := saveBytes(t, orig)

	for name, bad := range map[string]Config{
		"mode":     {Mode: ModeCC, Replicas: 2, TickCycles: 20000},
		"replicas": {Mode: ModeLC, Replicas: 3, TickCycles: 20000},
		"tick":     {Mode: ModeLC, Replicas: 2, TickCycles: 40000},
		"sig":      {Mode: ModeLC, Replicas: 2, TickCycles: 20000, Sig: SigSync},
	} {
		target := newSys(t, bad, cpuLoop(t, 5000))
		if err := snapshot.Restore(target, data); !errors.Is(err, snapshot.ErrIncompatible) {
			t.Errorf("%s mismatch: got %v, want ErrIncompatible", name, err)
		}
	}
}

// TestSystemStateDecorrelatedRoundTrip checkpoints a structurally
// decorrelated TMR run (per-replica layout deltas, physical shuffle) and
// verifies exact continuation — the layout relocations live in restored
// memory and kernel state, not host wiring.
func TestSystemStateDecorrelatedRoundTrip(t *testing.T) {
	cfg := Config{Mode: ModeLC, Replicas: 3, TickCycles: 20000, Sig: SigArgs,
		Decorrelate: true, LayoutSeed: 7}
	orig := newSys(t, cfg, syscallLoop(t, 1000))
	orig.RunCycles(300_000)
	data := saveBytes(t, orig)

	rest := newSys(t, cfg, syscallLoop(t, 1000))
	if err := snapshot.Restore(rest, data); err != nil {
		t.Fatal(err)
	}
	mustFinish(t, orig, 200_000_000)
	mustFinish(t, rest, 200_000_000)
	expectIdentical(t, "decorrelated continuation diverged",
		saveBytes(t, orig), saveBytes(t, rest))
	if rest.AliveCount() != 3 {
		t.Fatalf("alive = %d, want 3", rest.AliveCount())
	}
}
