package core

import (
	"errors"
	"testing"
)

// stallThenEject builds a masking TMR system, stalls replica `victim`, and
// runs until the straggler is ejected.
func stallThenEject(t *testing.T, victim int, loops int64) *System {
	t.Helper()
	sys := newSys(t, Config{Mode: ModeLC, Replicas: 3, TickCycles: 20000,
		Sig: SigArgs, Masking: true, BarrierTimeout: 300_000}, syscallLoop(t, loops))
	sys.RunCycles(50_000)
	sys.InjectStall(victim)
	if err := sys.Machine().RunUntil(func() bool {
		return sys.AliveCount() == 2 || sys.halted
	}, 400_000_000); err != nil {
		t.Fatalf("ejection never happened: %v", err)
	}
	if sys.halted {
		t.Fatalf("system halted instead of ejecting: %s", sys.haltReason)
	}
	return sys
}

func TestStragglerEjectionToDMR(t *testing.T) {
	// The acceptance scenario: a hung replica is voted out, the system
	// continues as DMR, and a later Reintegrate restores TMR.
	sys := stallThenEject(t, 2, 80_000)
	if sys.Alive(2) {
		t.Fatalf("replica 2 still alive after stall")
	}
	if got := sys.Stats().Ejections; got != 1 {
		t.Fatalf("ejections = %d, want 1", got)
	}
	var d Detection
	for _, det := range sys.Detections() {
		if det.Kind == DetectBarrierTimeout {
			d = det
		}
	}
	if d.Kind != DetectBarrierTimeout || !d.Masked || d.Replica != 2 {
		t.Fatalf("no masked barrier-timeout detection for replica 2: %v", sys.Detections())
	}
	if err := sys.Reintegrate(2); err != nil {
		t.Fatalf("reintegrate after ejection: %v", err)
	}
	if sys.AliveCount() != 3 {
		t.Fatalf("TMR not restored (alive=%d)", sys.AliveCount())
	}
	mustFinish(t, sys, 2_000_000_000)
	for rid := 0; rid < 3; rid++ {
		if got := sys.Replica(rid).K.Thread(0).ExitCode; got != 0 {
			t.Fatalf("replica %d exit = %d", rid, got)
		}
	}
}

func TestStragglerEjectionOfPrimary(t *testing.T) {
	// Ejecting the primary exercises re-election and interrupt re-routing.
	sys := stallThenEject(t, 0, 80_000)
	if sys.Alive(0) || sys.Primary() == 0 {
		t.Fatalf("primary not re-elected (primary=%d)", sys.Primary())
	}
	mustFinish(t, sys, 2_000_000_000)
}

func TestStragglerDMRStillHalts(t *testing.T) {
	// With only two replicas there is no majority to continue on; a hung
	// replica must fail-stop (detection only).
	sys := newSys(t, Config{Mode: ModeLC, Replicas: 2, TickCycles: 20000,
		BarrierTimeout: 300_000}, syscallLoop(t, 80_000))
	sys.RunCycles(50_000)
	sys.InjectStall(1)
	err := sys.Run(400_000_000)
	if !errors.Is(err, ErrHalted) {
		t.Fatalf("DMR stall should halt, got %v", err)
	}
	for _, d := range sys.Detections() {
		if d.Kind == DetectBarrierTimeout && d.Masked {
			t.Fatalf("DMR barrier timeout must not be recorded as masked")
		}
	}
}

func TestRequestReintegrateLive(t *testing.T) {
	// Live re-integration: requested while the workload runs, applied at
	// the next completed rendezvous without stopping the system.
	sys := stallThenEject(t, 2, 120_000)
	if err := sys.RequestReintegrate(2); err != nil {
		t.Fatalf("request: %v", err)
	}
	if pending, _ := sys.ReintegrateOutcome(); !pending {
		t.Fatalf("request not pending")
	}
	if err := sys.Machine().RunUntil(func() bool {
		return sys.Stats().Reintegrations == 1 || sys.halted
	}, 400_000_000); err != nil {
		t.Fatalf("live reintegration never applied: %v", err)
	}
	if pending, rerr := sys.ReintegrateOutcome(); pending || rerr != nil {
		t.Fatalf("outcome pending=%v err=%v", pending, rerr)
	}
	if sys.AliveCount() != 3 || !sys.Alive(2) {
		t.Fatalf("TMR not restored (alive=%d)", sys.AliveCount())
	}
	mustFinish(t, sys, 2_000_000_000)
}

func TestRequestReintegrateWhileRendezvousOpen(t *testing.T) {
	// A request issued mid-rendezvous must defer to the rendezvous'
	// completion, not clone half-synchronised state.
	sys := downgradeThen(t, 2, 120_000)
	if err := sys.Machine().RunUntil(sys.syncPending, 100_000_000); err != nil {
		t.Fatalf("no rendezvous opened: %v", err)
	}
	if err := sys.RequestReintegrate(2); err != nil {
		t.Fatalf("request during open rendezvous: %v", err)
	}
	if sys.Alive(2) {
		t.Fatalf("reintegration applied while the rendezvous was still open")
	}
	if err := sys.Machine().RunUntil(func() bool {
		return sys.Stats().Reintegrations == 1 || sys.halted
	}, 400_000_000); err != nil {
		t.Fatalf("deferred reintegration never applied: %v", err)
	}
	mustFinish(t, sys, 2_000_000_000)
	if sys.AliveCount() != 3 {
		t.Fatalf("TMR not restored (alive=%d)", sys.AliveCount())
	}
}

func TestReintegrateAfterHalt(t *testing.T) {
	// TMR without masking fail-stops on a mismatch; re-integration of the
	// dead system must refuse cleanly.
	sys := newSys(t, Config{Mode: ModeLC, Replicas: 3, TickCycles: 20000},
		syscallLoop(t, 10000))
	sys.RunCycles(50_000)
	lay := sys.Replica(1).K.Layout()
	if err := sys.Machine().Mem().FlipBit(lay.SigPA()+8, 5); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(200_000_000); !errors.Is(err, ErrHalted) {
		t.Fatalf("expected halt, got %v", err)
	}
	if err := sys.Reintegrate(1); !errors.Is(err, ErrReintegrate) {
		t.Fatalf("Reintegrate on halted system = %v, want ErrReintegrate", err)
	}
	if err := sys.RequestReintegrate(1); !errors.Is(err, ErrReintegrate) {
		t.Fatalf("RequestReintegrate on halted system = %v, want ErrReintegrate", err)
	}
}

func TestRepeatedLifecycleSameReplica(t *testing.T) {
	// Stall -> eject -> reintegrate the same replica twice: per-replica
	// state (stall marks, chase state, shared words) must not leak across
	// cycles.
	sys := newSys(t, Config{Mode: ModeLC, Replicas: 3, TickCycles: 20000,
		Sig: SigArgs, Masking: true, BarrierTimeout: 300_000}, syscallLoop(t, 200_000))
	sys.RunCycles(50_000)
	for cycle := 0; cycle < 2; cycle++ {
		sys.InjectStall(2)
		if err := sys.Machine().RunUntil(func() bool {
			return sys.AliveCount() == 2 || sys.halted
		}, 800_000_000); err != nil {
			t.Fatalf("cycle %d: ejection never happened: %v", cycle, err)
		}
		if sys.halted {
			t.Fatalf("cycle %d: halted: %s", cycle, sys.haltReason)
		}
		if err := sys.RequestReintegrate(2); err != nil {
			t.Fatalf("cycle %d: request: %v", cycle, err)
		}
		if err := sys.Machine().RunUntil(func() bool {
			return sys.Stats().Reintegrations == uint64(cycle+1) || sys.halted
		}, 800_000_000); err != nil {
			t.Fatalf("cycle %d: reintegration never applied: %v", cycle, err)
		}
		if _, rerr := sys.ReintegrateOutcome(); rerr != nil {
			t.Fatalf("cycle %d: reintegration failed: %v", cycle, rerr)
		}
		if sys.AliveCount() != 3 {
			t.Fatalf("cycle %d: alive=%d", cycle, sys.AliveCount())
		}
	}
	if got := sys.Stats().Ejections; got != 2 {
		t.Fatalf("ejections = %d, want 2", got)
	}
	mustFinish(t, sys, 4_000_000_000)
	for rid := 0; rid < 3; rid++ {
		if got := sys.Replica(rid).K.Thread(0).ExitCode; got != 0 {
			t.Fatalf("replica %d exit = %d", rid, got)
		}
	}
}
