package core

import (
	"errors"
	"fmt"

	"rcoe/internal/kernel"
	"rcoe/internal/trace"
)

// Re-integration (§IV-C): upgrading a downgraded DMR system back to TMR
// by bringing an off-lined replica back online. The paper describes the
// mechanism — "copying all kernel and user state of the present
// non-primary replica to the new replica" — but leaves it unimplemented
// ("for now [we] require a full reboot"). This implementation follows the
// described design:
//
//  1. The system quiesces: re-integration happens while the surviving
//     replicas sit at a completed rendezvous, so no replica is mid-event.
//  2. A surviving non-primary donor's entire physical partition is copied
//     into the returning replica's partition, giving it identical user
//     memory, kernel contexts, signature accumulator and event counter.
//  3. The donor's kernel bookkeeping (thread table, scheduler state) is
//     cloned, and the returning core is started at the donor's precise
//     user state.
//  4. The replica rejoins the alive mask; from the next synchronisation
//     on it votes like any other replica.
//
// The copy cost is charged to the survivors (they wait while state is
// transferred), which is the availability price §IV-C anticipates.

// ErrReintegrate wraps re-integration failures.
var ErrReintegrate = errors.New("core: reintegration failed")

// reintegrateCostPerPage is the cycles charged per copied 4 KiB page,
// standing in for the memcpy plus cache cleaning a real transfer needs.
const reintegrateCostPerPage = 180

// Reintegrate brings the off-lined replica rid back into the
// configuration by cloning a surviving non-primary replica's state. The
// system must be idle-ish: the call synchronises on the machine being
// outside any open rendezvous. For re-integration under load, use
// RequestReintegrate instead.
func (s *System) Reintegrate(rid int) error {
	if err := s.reintegrateCheck(rid); err != nil {
		return err
	}
	// Quiesce: run until no synchronisation generation is open, so every
	// survivor is executing user code (or idling) at a consistent point.
	if err := s.m.RunUntil(func() bool { return !s.syncPending() && !s.halted }, 50_000_000); err != nil {
		return fmt.Errorf("%w: could not quiesce: %v", ErrReintegrate, err)
	}
	if s.halted {
		return fmt.Errorf("%w: system halted while quiescing", ErrReintegrate)
	}
	return s.doReintegrate(rid)
}

// RequestReintegrate schedules replica rid for live re-integration while
// the workload keeps running: the clone is applied at the next completed
// rendezvous (the natural quiesce point — every survivor has just voted
// and released, so no replica is mid-event). Poll ReintegrateOutcome, or
// Stats().Reintegrations, to observe completion.
func (s *System) RequestReintegrate(rid int) error {
	if err := s.reintegrateCheck(rid); err != nil {
		return err
	}
	s.reintegratePending = rid + 1
	s.reintegrateErr = nil
	s.reintegrateReqCycle = s.m.Now()
	return nil
}

// ReintegrateOutcome reports whether a requested live re-integration is
// still pending, and the error (nil on success) of the last applied one.
func (s *System) ReintegrateOutcome() (pending bool, err error) {
	return s.reintegratePending != 0, s.reintegrateErr
}

// applyPendingReintegrate runs a requested live re-integration at the
// completed-rendezvous quiesce point (called by the last replica leaving
// a rendezvous, after the synchronisation words are cleared).
func (s *System) applyPendingReintegrate() {
	if s.reintegratePending == 0 || s.halted {
		return
	}
	rid := s.reintegratePending - 1
	s.reintegratePending = 0
	if err := s.reintegrateCheck(rid); err != nil {
		s.reintegrateErr = err
		return
	}
	s.reintegrateErr = s.doReintegrate(rid)
	if s.met != nil && s.reintegrateErr == nil {
		s.met.ReintegrationWindow.Observe(s.m.Now() - s.reintegrateReqCycle)
	}
}

// reintegrateCheck validates that replica rid is eligible for
// re-integration.
func (s *System) reintegrateCheck(rid int) error {
	if s.halted {
		return fmt.Errorf("%w: system is halted", ErrReintegrate)
	}
	if rid < 0 || rid >= len(s.reps) {
		return fmt.Errorf("%w: no replica %d", ErrReintegrate, rid)
	}
	if s.sh.alive(rid) {
		return fmt.Errorf("%w: replica %d is already alive", ErrReintegrate, rid)
	}
	if s.cfg.Mode == ModeNone {
		return fmt.Errorf("%w: baseline systems have no replicas to restore", ErrReintegrate)
	}
	return nil
}

// doReintegrate performs the clone. The caller guarantees the system is
// quiesced (no open rendezvous) and rid passed reintegrateCheck.
func (s *System) doReintegrate(rid int) error {
	donor := s.pickDonor()
	if donor == nil {
		return fmt.Errorf("%w: no surviving non-primary donor", ErrReintegrate)
	}
	target := s.reps[rid]

	// Copy the donor's entire partition: kernel canary, contexts, the
	// signature block, user text/data/stacks.
	dLay := donor.K.Layout()
	tLay := target.K.Layout()
	if dLay.Size != tLay.Size {
		return fmt.Errorf("%w: partition size mismatch", ErrReintegrate)
	}
	mem := s.m.Mem()
	buf, err := mem.Read(dLay.Base, int(dLay.Size))
	if err != nil {
		return fmt.Errorf("%w: read donor partition: %v", ErrReintegrate, err)
	}
	if err := mem.Write(tLay.Base, buf); err != nil {
		return fmt.Errorf("%w: write target partition: %v", ErrReintegrate, err)
	}
	// The canary pattern is replica-specific; regenerate the target's.
	freshKernel, err := kernel.New(rid, s.m.Core(rid), tLay)
	if err != nil {
		return fmt.Errorf("%w: rebuild kernel: %v", ErrReintegrate, err)
	}
	// Clone the donor's scheduling state onto the fresh kernel, with the
	// address space rebased onto the target partition, then restore the
	// donor's signature block (kernel.New zeroed it).
	if err := freshKernel.CloneFrom(donor.K); err != nil {
		return fmt.Errorf("%w: clone kernel state: %v", ErrReintegrate, err)
	}
	sigBuf, err := mem.Read(dLay.SigPA(), 4*8)
	if err == nil {
		err = mem.Write(tLay.SigPA(), sigBuf)
	}
	if err != nil {
		return fmt.Errorf("%w: copy signature block: %v", ErrReintegrate, err)
	}
	target.K = freshKernel
	target.finished = donor.finished
	target.chasing = false
	target.stallPending = false
	// The fresh kernel carries none of the old one's hooks: re-wire the
	// flight recorder so ticks keep tracing after re-integration.
	s.wireKernelTrace(target)

	// Mirror the donor's published shared-block state so the next
	// rendezvous sees a consistent arrival history.
	for w := 0; w < repBlockWords; w++ {
		s.sh.setRepWord(rid, w, s.sh.repWord(donor.ID, w))
	}

	// Start the core at the donor's exact user state.
	dc := donor.Core()
	tc := s.m.Core(rid)
	tc.Regs = dc.Regs
	tc.UserBranches = dc.UserBranches
	s.m.StartCore(rid, dc.PC, freshKernel.AddrSpace())
	if donor.K.CurrentTID() < 0 {
		// The donor is idle or parked in the kernel; park the newcomer
		// the same way.
		if donor.finished {
			s.finishedPark(target)
		} else {
			s.goIdle(target)
		}
	}

	// Rejoin the configuration and charge the transfer to the survivors.
	s.sh.setWord(wAliveMask, s.sh.word(wAliveMask)|1<<uint(rid))
	pages := int(dLay.Size / 4096)
	for _, id := range s.aliveIDs() {
		s.reps[id].Core().AddStall(pages * reintegrateCostPerPage / 4)
	}
	s.stats.Reintegrations++
	s.trSys(trace.KindReintegrate, uint64(rid), uint64(donor.ID))
	if s.met != nil {
		s.met.Reintegs.Inc()
	}
	return nil
}

// pickDonor returns a surviving non-primary replica, or the primary only
// if it is the sole survivor (in which case nil is returned, since §IV-C
// clones from a non-primary).
func (s *System) pickDonor() *Replica {
	primary := s.Primary()
	for _, rid := range s.aliveIDs() {
		if rid != primary {
			return s.reps[rid]
		}
	}
	return nil
}
