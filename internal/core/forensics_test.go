package core

import (
	"errors"
	"strings"
	"testing"

	"rcoe/internal/trace"
)

func TestErrTraceDisabled(t *testing.T) {
	sys := newSys(t, Config{Mode: ModeLC, Replicas: 2, TickCycles: 20000}, syscallLoop(t, 1000))
	if sys.TraceRecorder() != nil || sys.Metrics() != nil {
		t.Fatal("recorder/metrics must be nil when Trace is disabled")
	}
	_, err := sys.CaptureForensics("operator request")
	if !errors.Is(err, ErrTraceDisabled) {
		t.Fatalf("CaptureForensics err = %v, want ErrTraceDisabled", err)
	}
	if rep := sys.TakeDivergenceReport(); rep != nil {
		t.Fatalf("disabled system produced a report: %v", rep)
	}
	// The snapshot must be empty, not a panic.
	if snap := sys.MetricsSnapshot(); len(snap.Hist) != 0 {
		t.Fatal("disabled system returned a non-empty snapshot")
	}
	mustFinish(t, sys, 200_000_000)
}

func TestTraceRecordsCleanRun(t *testing.T) {
	sys := newSys(t, Config{Mode: ModeLC, Replicas: 2, TickCycles: 20000,
		Trace: TraceConfig{Enabled: true, RingEvents: 256}}, syscallLoop(t, 5000))
	mustFinish(t, sys, 200_000_000)

	rec := sys.TraceRecorder()
	if rec == nil {
		t.Fatal("no recorder on an enabled system")
	}
	for rid := 0; rid < 2; rid++ {
		if rec.Ring(rid).Total() == 0 {
			t.Fatalf("replica %d recorded nothing", rid)
		}
	}
	kinds := map[trace.Kind]bool{}
	for _, ev := range rec.Ring(0).Events() {
		kinds[ev.Kind] = true
	}
	for _, want := range []trace.Kind{trace.KindSyscall, trace.KindTick,
		trace.KindBarrierJoin, trace.KindBarrierRelease, trace.KindFinish} {
		if !kinds[want] {
			t.Errorf("replica 0 trace has no %s events", want)
		}
	}
	if rec.System().Total() == 0 {
		t.Fatal("system ring recorded nothing (no barrier-open/vote events)")
	}
	// A clean run has no auto-captured report and agreeing streams.
	if rep := sys.TakeDivergenceReport(); rep != nil {
		t.Fatalf("clean run captured a report: %v", rep)
	}
	d := trace.FirstDivergence(rec.Streams())
	if d.Found {
		t.Fatalf("clean replica streams diverge: %s", d)
	}
	// Metrics observed the run.
	snap := sys.MetricsSnapshot()
	if snap.Counter("syncs") == 0 || snap.Counter("votes") == 0 {
		t.Fatalf("no sync/vote counters in snapshot: %+v", snap.Ctr)
	}
	if snap.HistByName("barrier-wait").Count == 0 {
		t.Fatal("no barrier-wait observations")
	}
	if snap.Counter("vote-fails") != 0 {
		t.Fatal("clean run recorded vote failures")
	}
}

// TestRegisterFlipDivergenceReport is the acceptance scenario: a seeded
// register flip on replica 1 of a masking TMR system must produce a
// first-divergence report that names replica 1 and the first disagreeing
// event.
func TestRegisterFlipDivergenceReport(t *testing.T) {
	sys := newSys(t, Config{Mode: ModeLC, Replicas: 3, TickCycles: 20000,
		Sig: SigArgs, Masking: true, BarrierTimeout: 300_000,
		Trace: TraceConfig{Enabled: true, RingEvents: 2048}}, syscallLoop(t, 60_000))
	sys.RunCycles(100_000)

	// Flip the loop-counter register (r5) of replica 1 and let the system
	// run; repeat until the fault is detected (a flip can be masked when
	// it lands while the value is dead).
	for i := 0; i < 50 && sys.AliveCount() == 3 && !sys.halted; i++ {
		sys.Replica(1).Core().Regs[5] ^= 1
		sys.RunCycles(600_000)
	}
	if sys.halted {
		t.Fatalf("system halted instead of masking: %s", sys.haltReason)
	}
	if sys.AliveCount() != 2 || sys.Alive(1) {
		t.Fatalf("replica 1 not voted out (alive=%d, r1=%v)", sys.AliveCount(), sys.Alive(1))
	}

	rep := sys.TakeDivergenceReport()
	if rep == nil {
		t.Fatal("detection did not capture a divergence report")
	}
	if rep.Implicated != 1 {
		t.Fatalf("report implicates replica %d, want 1\n%s", rep.Implicated, rep)
	}
	if !rep.Divergence.Found {
		t.Fatalf("trace alignment found no divergence\n%s", rep)
	}
	if rep.Divergence.Replica != 1 {
		t.Fatalf("trace alignment blames replica %d, want 1\n%s", rep.Divergence.Replica, rep)
	}
	if len(rep.Replicas) != 3 {
		t.Fatalf("report carries %d replica contexts, want 3", len(rep.Replicas))
	}
	text := rep.String()
	for _, want := range []string{"replica 1", "first divergence", "sig="} {
		if !strings.Contains(text, want) {
			t.Fatalf("report text missing %q:\n%s", want, text)
		}
	}
	// The report is frozen: later events must not leak into it.
	frozen := rep.Trace.Ring(0).Total()
	sys.RunCycles(500_000)
	if rep.Trace.Ring(0).Total() != frozen {
		t.Fatal("report trace is not frozen against further recording")
	}
	// First capture wins: the take cleared it, and a fresh explicit
	// capture still works.
	if _, err := sys.CaptureForensics("post-mortem"); err != nil {
		t.Fatalf("explicit capture after take: %v", err)
	}
}

// TestTraceZeroPerturbation asserts the zero-perturbation principle: an
// identical workload runs to the exact same machine cycle with tracing on
// and off, because no record path charges simulated cycles.
func TestTraceZeroPerturbation(t *testing.T) {
	run := func(enabled bool) (cycles uint64, syncs uint64) {
		sys := newSys(t, Config{Mode: ModeLC, Replicas: 3, TickCycles: 20000,
			Sig: SigArgs, Masking: true, BarrierTimeout: 300_000,
			Trace: TraceConfig{Enabled: enabled}}, syscallLoop(t, 20_000))
		mustFinish(t, sys, 500_000_000)
		return sys.Machine().Now(), sys.Stats().Syncs
	}
	offCycles, offSyncs := run(false)
	onCycles, onSyncs := run(true)
	if offCycles != onCycles {
		t.Fatalf("tracing perturbed the simulation: %d cycles untraced, %d traced", offCycles, onCycles)
	}
	if offSyncs != onSyncs {
		t.Fatalf("tracing changed sync count: %d vs %d", offSyncs, onSyncs)
	}
}
