package core

import (
	"fmt"
	"reflect"
	"testing"

	"rcoe/internal/kernel"
)

// TestReintegrateTextRestoreExecCacheDifferential is the post-reintegration
// text-divergence regression for the execution caches: the ejected
// replica's text is corrupted while it is offline (its cores predecoded
// that text — and may hold superblocks over it — before ejection), then
// re-integration copies the donor's partition back over it. A stale
// predecode entry or cached block surviving the partition copy would
// execute the corrupted (or pre-corruption) instructions; the run must
// instead complete identically across every {exec-cache × superblock}
// combination, with every replica exiting cleanly from the restored text.
func TestReintegrateTextRestoreExecCacheDifferential(t *testing.T) {
	run := func(noEC, noSB bool) string {
		sys := newSys(t, Config{Mode: ModeLC, Replicas: 3, TickCycles: 20000,
			Sig: SigArgs, Masking: true,
			DisableExecCache: noEC, DisableSuperblock: noSB}, syscallLoop(t, 60_000))
		sys.RunCycles(50_000)
		lay := sys.Replica(2).K.Layout()
		if err := sys.Machine().Mem().FlipBit(lay.SigPA()+8, 5); err != nil {
			t.Fatal(err)
		}
		if err := sys.Machine().RunUntil(func() bool {
			return sys.AliveCount() == 2 || sys.halted
		}, 400_000_000); err != nil {
			t.Fatalf("downgrade never happened (noEC=%v noSB=%v): %v", noEC, noSB, err)
		}
		if sys.halted {
			t.Fatalf("system halted instead of masking (noEC=%v noSB=%v): %s", noEC, noSB, sys.haltReason)
		}
		// Corrupt the dead replica's first text instruction in place. The
		// partition copy during re-integration must overwrite this — and
		// invalidate any predecoded copy of the original.
		pa, _, ok := sys.Replica(2).Core().AS.Translate(kernel.TextVA, 8, 0)
		if !ok {
			t.Fatalf("text VA unmapped on ejected replica (noEC=%v noSB=%v)", noEC, noSB)
		}
		for bit := uint(0); bit < 8; bit++ {
			if err := sys.Machine().Mem().FlipBit(pa, bit); err != nil {
				t.Fatal(err)
			}
		}
		if err := sys.Reintegrate(2); err != nil {
			t.Fatalf("reintegrate (noEC=%v noSB=%v): %v", noEC, noSB, err)
		}
		mustFinish(t, sys, 2_000_000_000)
		for rid := 0; rid < 3; rid++ {
			if got := sys.Replica(rid).K.Thread(0).ExitCode; got != 0 {
				t.Fatalf("replica %d exit = %d (noEC=%v noSB=%v)", rid, got, noEC, noSB)
			}
		}
		// Render the observable outcome for the differential comparison.
		out := fmt.Sprintf("now=%d stats=%+v detections=%d\n",
			sys.Machine().Now(), sys.Stats(), len(sys.Detections()))
		for rid := 0; rid < 3; rid++ {
			ev, sum := sys.Replica(rid).K.Signature()
			c := sys.Replica(rid).Core()
			out += fmt.Sprintf("r%d cycles=%d instr=%d sig=(%d,%#x)\n",
				rid, c.Cycles, c.Instructions, ev, sum)
		}
		return out
	}
	base := run(false, false)
	for _, c := range []struct{ noEC, noSB bool }{{true, false}, {false, true}, {true, true}} {
		if got := run(c.noEC, c.noSB); !reflect.DeepEqual(base, got) {
			t.Fatalf("post-reintegration runs diverged (noEC=%v noSB=%v):\nall-on:\n%s\ngot:\n%s",
				c.noEC, c.noSB, base, got)
		}
	}
}
