// Package isa defines the instruction set executed by the simulated
// multicore machine.
//
// The ISA is a 64-bit RISC-like design chosen to preserve the exact
// implementation challenges the paper's CC-RCoE faces on real hardware:
//
//   - ordinary taken/non-taken control transfers that a PMU (or a compiler
//     pass) must count to build the precise logical clock;
//   - a rep-movs-style block-copy instruction (MEMCPY/MEMSET) that makes
//     partial progress without executing branches, so a breakpoint at its
//     address does not uniquely identify a point in the instruction stream
//     (paper §III-D);
//   - load-linked/store-conditional atomics whose retry loops execute a
//     replica-dependent number of branches (the Armv7 ldrex/strex problem);
//   - a compare-and-swap atomic for the x86-profile machines.
//
// Instructions are fixed-width, 8 bytes:
//
//	byte 0    opcode
//	byte 1    rd
//	byte 2    rs1
//	byte 3    rs2
//	bytes 4-7 imm32 (little-endian, sign-extended where used as a value)
//
// Branch and jump targets are absolute byte addresses carried in imm32.
package isa

import (
	"errors"
	"fmt"
)

// InstrBytes is the fixed encoded size of every instruction.
const InstrBytes = 8

// NumRegs is the size of the general register file.
const NumRegs = 32

// Register conventions. R0 reads as zero and ignores writes. RBC is the
// register the compiler pass reserves for branch counting on machines
// without a precise PMU (the paper's --ffixed-r9 analogue).
const (
	RZero = 0  // hardwired zero
	RArg0 = 1  // first argument / syscall return
	RArg1 = 2  // second argument
	RArg2 = 3  // third argument
	RArg3 = 4  // fourth argument
	RBC   = 27 // reserved branch counter (compiler-assisted profile)
	RTP   = 28 // thread pointer
	RSP   = 29 // stack pointer
	RLR   = 30 // link register
	RAT   = 31 // assembler temporary
)

// Opcode identifies an instruction.
type Opcode uint8

// Opcodes. The groups matter: IsBranch reports the control-transfer
// opcodes that participate in branch counting, and IsBlockOp reports the
// rep-style ops that make progress without counting.
const (
	OpInvalid Opcode = iota

	// Integer register-register.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpDivu
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpSra
	OpSlt
	OpSltu

	// Integer register-immediate.
	OpAddi
	OpAndi
	OpOri
	OpXori
	OpShli
	OpShri
	OpSrai
	OpSlti
	OpLi  // rd = signext(imm32)
	OpLih // rd = rd<<32 | uint32(imm32): builds 64-bit constants with Li

	// Loads (zero-extending) and stores; address = rs1 + signext(imm).
	OpLd1
	OpLd2
	OpLd4
	OpLd8
	OpSt1
	OpSt2
	OpSt4
	OpSt8

	// Control transfer. Conditional targets and OpJ/OpJal targets are
	// absolute addresses in imm32.
	OpBeq
	OpBne
	OpBlt
	OpBge
	OpBltu
	OpBgeu
	OpJ
	OpJal  // rd = pc+8; jump imm
	OpJr   // jump rs1
	OpJalr // rd = pc+8; jump rs1+imm

	// Floating point; register bits are IEEE-754 binary64.
	OpFadd
	OpFsub
	OpFmul
	OpFdiv
	OpFsqrt
	OpFsin
	OpFcos
	OpFexp
	OpFlog
	OpFatan
	OpFcvtIF // rd = float(int64(rs1))
	OpFcvtFI // rd = int64(float(rs1))
	OpFlt    // rd = 1 if float(rs1) < float(rs2)
	OpFle    // rd = 1 if float(rs1) <= float(rs2)
	OpFeq    // rd = 1 if float(rs1) == float(rs2)

	// Atomics.
	OpLL   // rd = mem64[rs1]; acquire reservation
	OpSC   // if reservation valid: mem64[rs1] = rs2, rd = 0; else rd = 1
	OpCas  // tmp = mem64[rs1]; if tmp == rd { mem64[rs1] = rs2 }; rd = tmp
	OpXadd // rd = mem64[rs1]; mem64[rs1] = rd + rs2

	// Block operations (rep-family analogues): make bounded progress per
	// machine step, keep PC at the instruction until done, count no
	// branches. MEMCPY: rd = remaining length, rs1 = dst, rs2 = src
	// (cursors advance in the registers). MEMSET: rd = remaining length,
	// rs1 = dst, imm = fill byte.
	OpMemcpy
	OpMemset

	// System.
	OpSyscall // syscall number in imm; args in R1..R4; result in R1
	OpNop
	OpHlt

	opLast // sentinel; keep last
)

var opNames = map[Opcode]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpDivu: "divu",
	OpRem: "rem", OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl",
	OpShr: "shr", OpSra: "sra", OpSlt: "slt", OpSltu: "sltu",
	OpAddi: "addi", OpAndi: "andi", OpOri: "ori", OpXori: "xori",
	OpShli: "shli", OpShri: "shri", OpSrai: "srai", OpSlti: "slti",
	OpLi: "li", OpLih: "lih",
	OpLd1: "ld1", OpLd2: "ld2", OpLd4: "ld4", OpLd8: "ld8",
	OpSt1: "st1", OpSt2: "st2", OpSt4: "st4", OpSt8: "st8",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpBltu: "bltu", OpBgeu: "bgeu", OpJ: "j", OpJal: "jal",
	OpJr: "jr", OpJalr: "jalr",
	OpFadd: "fadd", OpFsub: "fsub", OpFmul: "fmul", OpFdiv: "fdiv",
	OpFsqrt: "fsqrt", OpFsin: "fsin", OpFcos: "fcos", OpFexp: "fexp",
	OpFlog: "flog", OpFatan: "fatan", OpFcvtIF: "fcvtif", OpFcvtFI: "fcvtfi",
	OpFlt: "flt", OpFle: "fle", OpFeq: "feq",
	OpLL: "ll", OpSC: "sc", OpCas: "cas", OpXadd: "xadd",
	OpMemcpy: "memcpy", OpMemset: "memset",
	OpSyscall: "syscall", OpNop: "nop", OpHlt: "hlt",
}

// String returns the assembly mnemonic for the opcode.
func (o Opcode) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether the opcode is a defined instruction.
func (o Opcode) Valid() bool {
	return o > OpInvalid && o < opLast && o != OpInvalid
}

// IsBranch reports whether the opcode is a control-transfer instruction
// that participates in branch counting (PMU or compiler-inserted).
func (o Opcode) IsBranch() bool {
	switch o {
	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu, OpJ, OpJal, OpJr, OpJalr:
		return true
	}
	return false
}

// IsCondBranch reports whether the opcode is a conditional branch.
func (o Opcode) IsCondBranch() bool {
	switch o {
	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu:
		return true
	}
	return false
}

// IsBlockOp reports whether the opcode is a rep-style block operation that
// can be preempted mid-progress without having executed any branch.
func (o Opcode) IsBlockOp() bool {
	return o == OpMemcpy || o == OpMemset
}

// IsMemAccess reports whether the opcode reads or writes data memory.
func (o Opcode) IsMemAccess() bool {
	switch o {
	case OpLd1, OpLd2, OpLd4, OpLd8, OpSt1, OpSt2, OpSt4, OpSt8,
		OpLL, OpSC, OpCas, OpXadd, OpMemcpy, OpMemset:
		return true
	}
	return false
}

// Instr is a decoded instruction.
type Instr struct {
	Op  Opcode
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	Imm int32
}

// String renders the instruction in assembly-like form.
func (i Instr) String() string {
	return fmt.Sprintf("%s r%d, r%d, r%d, %d", i.Op, i.Rd, i.Rs1, i.Rs2, i.Imm)
}

// ErrBadInstr is returned when decoding an invalid encoding; at runtime an
// invalid instruction raises an illegal-instruction exception instead.
var ErrBadInstr = errors.New("isa: invalid instruction encoding")

// Encode packs the instruction into its 8-byte representation.
func Encode(i Instr) [InstrBytes]byte {
	var b [InstrBytes]byte
	b[0] = uint8(i.Op)
	b[1] = i.Rd
	b[2] = i.Rs1
	b[3] = i.Rs2
	u := uint32(i.Imm)
	b[4] = byte(u)
	b[5] = byte(u >> 8)
	b[6] = byte(u >> 16)
	b[7] = byte(u >> 24)
	return b
}

// Decode unpacks an 8-byte encoding. It returns ErrBadInstr for undefined
// opcodes or out-of-range register fields (which arise when fault injection
// corrupts instruction memory).
func Decode(b []byte) (Instr, error) {
	if len(b) < InstrBytes {
		return Instr{}, fmt.Errorf("%w: short fetch (%d bytes)", ErrBadInstr, len(b))
	}
	i := Instr{
		Op:  Opcode(b[0]),
		Rd:  b[1],
		Rs1: b[2],
		Rs2: b[3],
		Imm: int32(uint32(b[4]) | uint32(b[5])<<8 | uint32(b[6])<<16 | uint32(b[7])<<24),
	}
	if !i.Op.Valid() {
		return Instr{}, fmt.Errorf("%w: opcode %d", ErrBadInstr, b[0])
	}
	if i.Rd >= NumRegs || i.Rs1 >= NumRegs || i.Rs2 >= NumRegs {
		return Instr{}, fmt.Errorf("%w: register out of range", ErrBadInstr)
	}
	return i, nil
}

// EncodeProgram encodes a sequence of instructions into a flat image.
func EncodeProgram(prog []Instr) []byte {
	out := make([]byte, 0, len(prog)*InstrBytes)
	for _, ins := range prog {
		b := Encode(ins)
		out = append(out, b[:]...)
	}
	return out
}

// DecodeProgram decodes a flat image back into instructions.
func DecodeProgram(img []byte) ([]Instr, error) {
	if len(img)%InstrBytes != 0 {
		return nil, fmt.Errorf("%w: image size %d not a multiple of %d", ErrBadInstr, len(img), InstrBytes)
	}
	out := make([]Instr, 0, len(img)/InstrBytes)
	for off := 0; off < len(img); off += InstrBytes {
		ins, err := Decode(img[off : off+InstrBytes])
		if err != nil {
			return nil, fmt.Errorf("at offset %d: %w", off, err)
		}
		out = append(out, ins)
	}
	return out, nil
}
