package isa

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ins := Instr{Op: OpAddi, Rd: 5, Rs1: 7, Rs2: 0, Imm: -42}
	b := Encode(ins)
	got, err := Decode(b[:])
	if err != nil {
		t.Fatal(err)
	}
	if got != ins {
		t.Fatalf("round trip = %+v, want %+v", got, ins)
	}
}

func TestDecodeRejectsBadOpcode(t *testing.T) {
	b := [InstrBytes]byte{0xEE, 0, 0, 0, 0, 0, 0, 0}
	if _, err := Decode(b[:]); err == nil {
		t.Fatalf("invalid opcode accepted")
	}
}

func TestDecodeRejectsBadRegister(t *testing.T) {
	ins := Instr{Op: OpAdd, Rd: 40}
	b := Encode(ins)
	if _, err := Decode(b[:]); err == nil {
		t.Fatalf("register 40 accepted")
	}
}

func TestDecodeRejectsShortBuffer(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Fatalf("short fetch accepted")
	}
}

func TestOpcodeClasses(t *testing.T) {
	for _, op := range []Opcode{OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu, OpJ, OpJal, OpJr, OpJalr} {
		if !op.IsBranch() {
			t.Fatalf("%v should be a branch", op)
		}
	}
	if OpAdd.IsBranch() || OpMemcpy.IsBranch() {
		t.Fatalf("non-branches classified as branches")
	}
	if !OpBeq.IsCondBranch() || OpJ.IsCondBranch() {
		t.Fatalf("conditional-branch classification wrong")
	}
	if !OpMemcpy.IsBlockOp() || !OpMemset.IsBlockOp() || OpLd8.IsBlockOp() {
		t.Fatalf("block-op classification wrong")
	}
	for _, op := range []Opcode{OpLd1, OpSt8, OpLL, OpSC, OpCas, OpXadd, OpMemcpy} {
		if !op.IsMemAccess() {
			t.Fatalf("%v should access memory", op)
		}
	}
	if OpAdd.IsMemAccess() || OpJ.IsMemAccess() {
		t.Fatalf("non-memory ops classified as memory")
	}
}

func TestOpcodeStrings(t *testing.T) {
	if OpAdd.String() != "add" || OpMemcpy.String() != "memcpy" {
		t.Fatalf("mnemonics wrong: %v %v", OpAdd, OpMemcpy)
	}
	if Opcode(200).String() == "" {
		t.Fatalf("unknown opcode should still render")
	}
	if Opcode(200).Valid() || OpInvalid.Valid() {
		t.Fatalf("invalid opcodes reported valid")
	}
}

func TestProgramRoundTrip(t *testing.T) {
	prog := []Instr{
		{Op: OpLi, Rd: 1, Imm: 7},
		{Op: OpAdd, Rd: 2, Rs1: 1, Rs2: 1},
		{Op: OpHlt},
	}
	img := EncodeProgram(prog)
	if len(img) != 3*InstrBytes {
		t.Fatalf("image size %d", len(img))
	}
	got, err := DecodeProgram(img)
	if err != nil {
		t.Fatal(err)
	}
	for i := range prog {
		if got[i] != prog[i] {
			t.Fatalf("instr %d = %+v, want %+v", i, got[i], prog[i])
		}
	}
}

func TestDecodeProgramRejectsRaggedImage(t *testing.T) {
	if _, err := DecodeProgram(make([]byte, 12)); err == nil {
		t.Fatalf("ragged image accepted")
	}
}

// Property: any instruction with valid fields survives an encode/decode
// round trip.
func TestQuickRoundTrip(t *testing.T) {
	f := func(op uint8, rd, rs1, rs2 uint8, imm int32) bool {
		o := Opcode(op%uint8(opLast-1) + 1)
		ins := Instr{Op: o, Rd: rd % NumRegs, Rs1: rs1 % NumRegs, Rs2: rs2 % NumRegs, Imm: imm}
		b := Encode(ins)
		got, err := Decode(b[:])
		return err == nil && got == ins
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
