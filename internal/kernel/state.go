package kernel

import (
	"rcoe/internal/machine"
	"rcoe/internal/snapshot"
)

// This file serializes the kernel's host-side bookkeeping for the
// checkpoint/restore subsystem (internal/snapshot). Everything that
// lives in simulated RAM — thread contexts, the signature block, the
// canary page, user memory — is covered by the machine layer's memory
// image; only the Go-side scheduling metadata is serialized here.
//
// Derived state excluded from the boundary: canaryWords (a pure
// function of the replica ID), lay (construction-time layout).
//
// The replicated-system layer (internal/core) owns the kernels and
// embeds one section per replica; the kernel itself therefore encodes
// into an Enc rather than implementing snapshot.Snapshotter.

// SaveState serializes the kernel's scheduling state, error latch,
// decorrelation delta, and user address-space mappings.
func (k *Kernel) SaveState(e *snapshot.Enc) {
	e.Int(len(k.threads))
	for _, t := range k.threads {
		e.Int(t.TID)
		e.Int(int(t.State))
		e.Int(t.WaitLine)
		e.U64(t.ExitCode)
	}
	e.Int(len(k.runq))
	for _, tid := range k.runq {
		e.Int(tid)
	}
	e.Int(k.cur)
	for _, v := range k.irqLatch {
		e.U64(uint64(v))
	}
	e.U64(k.Preemptions)
	e.U64(k.Syscalls)
	if k.Err != nil {
		e.Bool(true)
		e.Int(k.Err.RID)
		e.String(k.Err.Reason)
	} else {
		e.Bool(false)
	}
	e.U64(k.layoutDelta)
	if k.as != nil {
		e.Bool(true)
		e.Int(len(k.as.Segs))
		for _, s := range k.as.Segs {
			e.U64(s.VBase)
			e.U64(s.PBase)
			e.U64(s.Size)
			e.U64(uint64(s.Perm))
			e.Bool(s.DMA)
		}
	} else {
		e.Bool(false)
	}
}

// LoadState restores the kernel's scheduling state. The user address
// space is restored into the existing AddrSpace object in place (with a
// generation bump), preserving the pointer identity shared with the
// core and any live translation-cache validation; the core's AS is then
// re-pointed at it, covering the post-reintegration case where the
// saved kernel had swapped in a rebased address space.
func (k *Kernel) LoadState(d *snapshot.Dec) error {
	nthreads := d.Int()
	threads := make([]*Thread, 0, max(nthreads, 0))
	for i := 0; i < nthreads && d.Err() == nil; i++ {
		t := &Thread{
			TID:      d.Int(),
			State:    ThreadState(d.Int()),
			WaitLine: d.Int(),
			ExitCode: d.U64(),
		}
		threads = append(threads, t)
	}
	nrunq := d.Int()
	runq := make([]int, 0, max(nrunq, 0))
	for i := 0; i < nrunq && d.Err() == nil; i++ {
		runq = append(runq, d.Int())
	}
	cur := d.Int()
	var latch [64]uint32
	for i := range latch {
		latch[i] = uint32(d.U64())
	}
	preemptions := d.U64()
	syscalls := d.U64()
	var kerr *KernelError
	if d.Bool() {
		kerr = &KernelError{RID: d.Int(), Reason: d.String()}
	}
	delta := d.U64()
	var segs []machine.Segment
	hasAS := d.Bool()
	if hasAS {
		n := d.Int()
		segs = make([]machine.Segment, 0, max(n, 0))
		for i := 0; i < n && d.Err() == nil; i++ {
			segs = append(segs, machine.Segment{
				VBase: d.U64(),
				PBase: d.U64(),
				Size:  d.U64(),
				Perm:  machine.Perm(d.U64()),
				DMA:   d.Bool(),
			})
		}
	}
	if err := d.Err(); err != nil {
		return err
	}

	k.threads = threads
	k.runq = runq
	k.cur = cur
	k.irqLatch = latch
	k.Preemptions = preemptions
	k.Syscalls = syscalls
	k.Err = kerr
	k.layoutDelta = delta
	if hasAS {
		if k.as == nil {
			k.as = &machine.AddrSpace{}
		}
		k.as.Segs = segs
		k.as.Invalidate()
		k.core.AS = k.as
	} else {
		k.as = nil
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
