package kernel

import (
	"encoding/binary"
	"fmt"

	"rcoe/internal/checksum"
	"rcoe/internal/machine"
)

// ThreadState is a thread's scheduling state.
type ThreadState int

// Thread states.
const (
	ThreadReady ThreadState = iota + 1
	ThreadRunning
	ThreadBlocked // waiting for an interrupt (SysIRQWait)
	ThreadDone
)

// Thread is one kernel thread. Its register context lives in the
// replica's RAM partition (Layout.CtxPA); the Go-side struct holds only
// scheduling metadata.
type Thread struct {
	TID      int
	State    ThreadState
	WaitLine int    // IRQ line when Blocked
	ExitCode uint64 // R1 at SysExit
}

// KernelError records an internal kernel failure (canary mismatch, context
// corruption discovered on restore).
type KernelError struct {
	RID    int
	Reason string
}

// Error implements error.
func (e *KernelError) Error() string {
	return fmt.Sprintf("kernel(replica %d): %s", e.RID, e.Reason)
}

// Kernel is one replica's kernel instance.
type Kernel struct {
	// RID is the replica ID (also the index into the RCoE shared arrays).
	RID int

	core *machine.Core
	m    *machine.Machine
	lay  Layout

	threads []*Thread
	runq    []int // round-robin ready queue of TIDs
	cur     int   // running TID, or -1

	as *machine.AddrSpace // the (single) user process address space

	// layoutDelta is this replica's structural-decorrelation shift of the
	// data and stack segments (loader.go). CanonVA subtracts it so the
	// vote path folds layout-independent values.
	layoutDelta uint64

	// canary is the expected kernel-text pattern checked on entries.
	canaryWords [8]uint64

	// Err is set when the kernel detects internal corruption; the
	// replica fail-stops (the seL4 "halt on kernel exception" behaviour).
	Err *KernelError

	// irqLatch holds wakes delivered while no thread was waiting.
	irqLatch [64]uint32

	// Preemptions counts delivered timer preemptions; Syscalls counts
	// dispatched system calls (reporting only).
	Preemptions uint64
	Syscalls    uint64

	// OnPreempt, when set, observes every delivered preemption (the
	// flight recorder's tick event source). It must not perturb kernel
	// or machine state.
	OnPreempt func(preemptions uint64)
}

// New creates a kernel for replica rid on the given core, with its
// partition described by lay. It initialises the canary page and the
// signature block in RAM.
func New(rid int, c *machine.Core, lay Layout) (*Kernel, error) {
	k := &Kernel{
		RID:  rid,
		core: c,
		m:    c.Machine(),
		lay:  lay,
		cur:  -1,
	}
	// Fill the canary page with a position-dependent pattern.
	mem := k.m.Mem()
	for off := uint64(0); off < lay.CanarySize(); off += 8 {
		if err := mem.WriteU(lay.CanaryPA()+off, 8, canaryWord(rid, off)); err != nil {
			return nil, fmt.Errorf("kernel: init canary: %w", err)
		}
	}
	for i := range k.canaryWords {
		k.canaryWords[i] = canaryWord(rid, uint64(i)*8)
	}
	// Zero the signature block.
	for w := uint64(0); w < 4; w++ {
		if err := mem.WriteU(lay.SigPA()+w*8, 8, 0); err != nil {
			return nil, fmt.Errorf("kernel: init signature: %w", err)
		}
	}
	return k, nil
}

func canaryWord(rid int, off uint64) uint64 {
	return 0x5E14_C0DE_0000_0000 ^ uint64(rid)<<32 ^ off*0x9E37
}

// Core returns the kernel's CPU core.
func (k *Kernel) Core() *machine.Core { return k.core }

// Layout returns the partition layout.
func (k *Kernel) Layout() Layout { return k.lay }

// AddrSpace returns the user process address space.
func (k *Kernel) AddrSpace() *machine.AddrSpace { return k.as }

// SetAddrSpace installs the user address space built by the loader.
func (k *Kernel) SetAddrSpace(as *machine.AddrSpace) { k.as = as }

// CurrentTID returns the running thread's ID, or -1.
func (k *Kernel) CurrentTID() int { return k.cur }

// Thread returns thread tid, or nil.
func (k *Kernel) Thread(tid int) *Thread {
	if tid < 0 || tid >= len(k.threads) {
		return nil
	}
	return k.threads[tid]
}

// NumThreads returns the number of created threads.
func (k *Kernel) NumThreads() int { return len(k.threads) }

// CheckCanary verifies the first words of the kernel-text canary. A
// mismatch is the moral equivalent of executing a corrupted kernel
// instruction: the kernel records the error and the replica fail-stops.
func (k *Kernel) CheckCanary() bool {
	mem := k.m.Mem()
	for i, want := range k.canaryWords {
		got, err := mem.ReadU(k.lay.CanaryPA()+uint64(i)*8, 8)
		if err != nil || got != want {
			k.Err = &KernelError{RID: k.RID, Reason: "kernel text corrupted (canary mismatch)"}
			return false
		}
	}
	return true
}

// --- Threads and context switching ---

// CreateThread allocates a thread whose context starts with the given
// entry point, stack pointer, and argument (in R1). The new thread is
// ready but not running.
func (k *Kernel) CreateThread(entry, sp, arg uint64) (int, error) {
	tid := len(k.threads)
	if tid >= MaxThreads {
		return 0, fmt.Errorf("kernel: thread table full (%d)", MaxThreads)
	}
	t := &Thread{TID: tid, State: ThreadReady}
	k.threads = append(k.threads, t)
	// Initialise the RAM context: zero registers, then SP, arg, PC.
	mem := k.m.Mem()
	base := k.lay.CtxPA(tid)
	for w := 0; w < CtxWords; w++ {
		if err := mem.WriteU(base+uint64(w)*8, 8, 0); err != nil {
			return 0, fmt.Errorf("kernel: init context: %w", err)
		}
	}
	if err := mem.WriteU(base+1*8, 8, arg); err != nil { // R1
		return 0, err
	}
	if err := mem.WriteU(base+29*8, 8, sp); err != nil { // RSP
		return 0, err
	}
	if err := mem.WriteU(base+32*8, 8, entry); err != nil { // PC
		return 0, err
	}
	k.runq = append(k.runq, tid)
	return tid, nil
}

// SaveContext serialises the current thread's registers and PC into its
// RAM slot. This is the state the paper's register fault injection flips.
func (k *Kernel) SaveContext() {
	if k.cur < 0 {
		return
	}
	mem := k.m.Mem()
	base := k.lay.CtxPA(k.cur)
	for r := 0; r < 32; r++ {
		if err := mem.WriteU(base+uint64(r)*8, 8, k.core.Regs[r]); err != nil {
			k.Err = &KernelError{RID: k.RID, Reason: "context save failed"}
			return
		}
	}
	if err := mem.WriteU(base+32*8, 8, k.core.PC); err != nil {
		k.Err = &KernelError{RID: k.RID, Reason: "context save failed"}
	}
}

// restoreContext loads thread tid's registers and PC from RAM onto the
// core and makes it current. The LL/SC reservation is cleared, which is
// why atomic retry loops can execute different counts across replicas
// (§III-D).
func (k *Kernel) restoreContext(tid int) {
	mem := k.m.Mem()
	base := k.lay.CtxPA(tid)
	for r := 0; r < 32; r++ {
		v, err := mem.ReadU(base+uint64(r)*8, 8)
		if err != nil {
			k.Err = &KernelError{RID: k.RID, Reason: "context restore failed"}
			return
		}
		k.core.Regs[r] = v
	}
	pc, err := mem.ReadU(base+32*8, 8)
	if err != nil {
		k.Err = &KernelError{RID: k.RID, Reason: "context restore failed"}
		return
	}
	k.core.PC = pc
	k.core.AS = k.as
	k.core.ClearReservation()
	k.cur = tid
	k.threads[tid].State = ThreadRunning
}

// Schedule picks the next ready thread and restores it. It returns false
// when no thread is ready (the replica is idle and the caller should park
// the core).
func (k *Kernel) Schedule() bool {
	for len(k.runq) > 0 {
		tid := k.runq[0]
		k.runq = k.runq[1:]
		if k.threads[tid].State != ThreadReady {
			continue
		}
		k.restoreContext(tid)
		return true
	}
	k.cur = -1
	return false
}

// Preempt saves the current thread, re-queues it, and schedules the next.
// The replication layer calls this when delivering a timer tick at the
// agreed logical time.
func (k *Kernel) Preempt() {
	k.Preemptions++
	if k.OnPreempt != nil {
		k.OnPreempt(k.Preemptions)
	}
	if k.cur >= 0 {
		k.SaveContext()
		k.threads[k.cur].State = ThreadReady
		k.runq = append(k.runq, k.cur)
		k.cur = -1
	}
	k.Schedule()
}

// BlockCurrent marks the running thread blocked on an IRQ line and
// schedules another. It returns false if no other thread is ready.
func (k *Kernel) BlockCurrent(line int) bool {
	if k.cur < 0 {
		return k.Schedule()
	}
	k.SaveContext()
	t := k.threads[k.cur]
	t.State = ThreadBlocked
	t.WaitLine = line
	k.cur = -1
	return k.Schedule()
}

// WakeIRQWaiters readies all threads blocked on line; returns how many
// were woken. A wake with no waiter is latched so the next SysIRQWait
// returns immediately — without the latch, an interrupt arriving while
// the driver is processing the previous frame would be lost and the
// system would deadlock.
func (k *Kernel) WakeIRQWaiters(line int) int {
	n := 0
	for _, t := range k.threads {
		if t.State == ThreadBlocked && t.WaitLine == line {
			t.State = ThreadReady
			k.runq = append(k.runq, t.TID)
			n++
		}
	}
	if n == 0 && line >= 0 && line < len(k.irqLatch) {
		k.irqLatch[line]++
	}
	return n
}

// ConsumeIRQLatch consumes one latched wake for line, reporting whether
// one was pending.
func (k *Kernel) ConsumeIRQLatch(line int) bool {
	if line < 0 || line >= len(k.irqLatch) || k.irqLatch[line] == 0 {
		return false
	}
	k.irqLatch[line]--
	return true
}

// ExitCurrent terminates the running thread with the given code and
// schedules the next. It returns false when nothing is left to run.
func (k *Kernel) ExitCurrent(code uint64) bool {
	if k.cur >= 0 {
		t := k.threads[k.cur]
		t.State = ThreadDone
		t.ExitCode = code
		k.cur = -1
	}
	return k.Schedule()
}

// Done reports whether every thread has exited.
func (k *Kernel) Done() bool {
	if len(k.threads) == 0 {
		return false
	}
	for _, t := range k.threads {
		if t.State != ThreadDone {
			return false
		}
	}
	return true
}

// HasReady reports whether any thread is ready to run.
func (k *Kernel) HasReady() bool {
	for _, t := range k.threads {
		if t.State == ThreadReady {
			return true
		}
	}
	return false
}

// --- Logical time and the state signature ---

// EventCount reads the replica's deterministic-event counter from RAM.
// This is the LC-RCoE logical clock (§III-A).
func (k *Kernel) EventCount() uint64 {
	v, err := k.m.Mem().ReadU(k.lay.SigPA(), 8)
	if err != nil {
		return 0
	}
	return v
}

// BumpEvent increments the event counter in RAM and returns the new value.
func (k *Kernel) BumpEvent() uint64 {
	mem := k.m.Mem()
	v, _ := mem.ReadU(k.lay.SigPA(), 8)
	v++
	if err := mem.WriteU(k.lay.SigPA(), 8, v); err != nil {
		k.Err = &KernelError{RID: k.RID, Reason: "event counter update failed"}
	}
	return v
}

// AddTrace folds words into the replica's state signature. The
// accumulator lives in RAM, so faults can corrupt it — one of the
// uncontrolled-error sources the paper discusses (§VI).
func (k *Kernel) AddTrace(words ...uint64) {
	mem := k.m.Mem()
	sig := k.lay.SigPA()
	lo, _ := mem.ReadU(sig+8, 8)
	hi, _ := mem.ReadU(sig+16, 8)
	n, _ := mem.ReadU(sig+24, 8)
	f := checksum.Restore(lo, hi, n)
	for _, w := range words {
		f.Add(w)
	}
	lo2, hi2, n2 := f.State()
	err1 := mem.WriteU(sig+8, 8, lo2)
	err2 := mem.WriteU(sig+16, 8, hi2)
	err3 := mem.WriteU(sig+24, 8, n2)
	if err1 != nil || err2 != nil || err3 != nil {
		k.Err = &KernelError{RID: k.RID, Reason: "signature update failed"}
	}
	// Charge the checksum arithmetic.
	k.core.AddStall(2 * len(words))
}

// AddTraceBytes folds a user buffer into the signature 8 bytes at a time.
func (k *Kernel) AddTraceBytes(b []byte) {
	k.AddTrace(uint64(len(b)))
	var i int
	for ; i+8 <= len(b); i += 8 {
		k.AddTrace(le64(b[i:]))
	}
	if i < len(b) {
		var tail [8]byte
		copy(tail[:], b[i:])
		k.AddTrace(le64(tail[:]))
	}
}

// Signature returns the replica's current (eventCount, checksum) pair read
// from RAM — the value compared during votes.
func (k *Kernel) Signature() (events, sum uint64) {
	mem := k.m.Mem()
	sig := k.lay.SigPA()
	ev, _ := mem.ReadU(sig, 8)
	lo, _ := mem.ReadU(sig+8, 8)
	hi, _ := mem.ReadU(sig+16, 8)
	return ev, hi<<32 | lo
}

// --- User memory access helpers ---

// CopyFromUser reads n bytes at user virtual address va.
func (k *Kernel) CopyFromUser(va uint64, n int) ([]byte, error) {
	pa, _, ok := k.as.Translate(va, n, machine.PermR)
	if !ok {
		return nil, fmt.Errorf("kernel: bad user read [%#x,+%d)", va, n)
	}
	return k.m.Mem().Read(pa, n)
}

// CopyToUser writes b at user virtual address va.
func (k *Kernel) CopyToUser(va uint64, b []byte) error {
	pa, _, ok := k.as.Translate(va, len(b), machine.PermW)
	if !ok {
		return fmt.Errorf("kernel: bad user write [%#x,+%d)", va, len(b))
	}
	return k.m.Mem().Write(pa, b)
}

// ReadUserU reads one value of the given size at va.
func (k *Kernel) ReadUserU(va uint64, size int) (uint64, error) {
	pa, _, ok := k.as.Translate(va, size, machine.PermR)
	if !ok {
		return 0, fmt.Errorf("kernel: bad user read %#x", va)
	}
	return k.m.Mem().ReadU(pa, size)
}

// WriteUserU writes one value of the given size at va.
func (k *Kernel) WriteUserU(va uint64, size int, v uint64) error {
	pa, _, ok := k.as.Translate(va, size, machine.PermW)
	if !ok {
		return fmt.Errorf("kernel: bad user write %#x", va)
	}
	return k.m.Mem().WriteU(pa, size, v)
}

func le64(b []byte) uint64 {
	return binary.LittleEndian.Uint64(b)
}

// CloneFrom copies the donor kernel's scheduling state onto k — thread
// table, ready queue, current thread, interrupt latches and counters —
// rebasing partition-resident physical mappings onto k's own partition.
// Mappings outside the donor partition (the cross-replica shared region,
// device MMIO, DMA windows) are shared state and keep their addresses.
// The caller must have copied the donor's partition memory beforehand;
// this routine only rebuilds the host-side bookkeeping (§IV-C
// re-integration).
func (k *Kernel) CloneFrom(donor *Kernel) error {
	if donor.lay.Size != k.lay.Size {
		return fmt.Errorf("kernel: clone partition size mismatch")
	}
	k.threads = make([]*Thread, len(donor.threads))
	for i, t := range donor.threads {
		cp := *t
		k.threads[i] = &cp
	}
	k.runq = append([]int(nil), donor.runq...)
	k.cur = donor.cur
	k.irqLatch = donor.irqLatch
	k.Preemptions = donor.Preemptions
	k.Syscalls = donor.Syscalls
	k.Err = nil

	delta := k.lay.Base - donor.lay.Base
	segs := make([]machine.Segment, len(donor.as.Segs))
	for i, s := range donor.as.Segs {
		if s.PBase >= donor.lay.Base && s.PBase < donor.lay.Base+donor.lay.Size {
			s.PBase += delta
		}
		segs[i] = s
	}
	k.as = &machine.AddrSpace{Segs: segs}
	// The donor's whole partition image is copied verbatim (virtual bases
	// included), so the re-integrated replica runs the donor's layout.
	k.layoutDelta = donor.layoutDelta
	return nil
}

// LayoutDelta returns the replica's structural-decorrelation shift.
func (k *Kernel) LayoutDelta() uint64 { return k.layoutDelta }

// CanonVA maps a user virtual address back to the canonical (unshifted)
// layout, so decorrelated replicas fold identical values into their vote
// signatures for the same logical pointer. Only addresses inside the
// shifted window — data base through stack top, as moved by the delta —
// are adjusted; text, shared-region, and device addresses are identical
// across replicas already. Callers must apply this only to values that
// are pointers by contract (a known syscall argument position, a fault
// address): canonicalizing arbitrary data that merely looks like a
// pointer would itself diverge across replicas.
func (k *Kernel) CanonVA(va uint64) uint64 {
	d := k.layoutDelta
	if d == 0 {
		return va
	}
	if va >= DataVA+d && va <= StackTopVA+d {
		return va - d
	}
	return va
}
