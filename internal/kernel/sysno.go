package kernel

// System call numbers. Arguments are passed in R1..R4 and the result is
// returned in R1 (0 or a value; negative values are errors).
//
// SysFTAddTrace, SysFTMemAccess and SysFTMemRep are the paper's new
// RCoE system calls (§III-C, §III-E); SysMapShared is the augmented
// Page_Map that creates the cross-replica shared region for LC-RCoE
// drivers; SysAtomicAdd is the kernel-mediated atomic update that replaces
// ldrex/strex retry loops under compiler-assisted CC-RCoE (§III-D).
const (
	// SysExit terminates the calling thread; R1 = exit code.
	SysExit int32 = 1
	// SysYield reschedules the calling thread.
	SysYield int32 = 2
	// SysSpawn creates a thread: R1 = entry VA, R2 = stack top VA,
	// R3 = argument. Returns the new TID.
	SysSpawn int32 = 3
	// SysAtomicAdd atomically adds R2 to the 64-bit word at VA R1 and
	// returns the previous value.
	SysAtomicAdd int32 = 4
	// SysFTAddTrace folds the user buffer (R1 = VA, R2 = length) into
	// the replica's state signature.
	SysFTAddTrace int32 = 5
	// SysFTMemAccess performs a device-memory access on behalf of a
	// CC-RCoE driver: R1 = access type (0 read, 1 write), R2 = device
	// physical address, R3 = user buffer VA, R4 = size.
	SysFTMemAccess int32 = 6
	// SysFTMemRep replicates a DMA input buffer: executed by the
	// primary it copies the buffer (R1 = VA, R2 = size) to the shared
	// region; executed by another replica it copies from the shared
	// region into the caller's address space.
	SysFTMemRep int32 = 7
	// SysIRQWait blocks the calling thread until interrupt line R1 is
	// delivered to this replica.
	SysIRQWait int32 = 8
	// SysPutc appends the low byte of R1 to the replica console.
	SysPutc int32 = 9
	// SysGetRID returns the calling replica's ID. Using it to branch is
	// legal under LC-RCoE and forbidden under CC-RCoE (it necessarily
	// diverges the instruction streams).
	SysGetRID int32 = 10
	// SysGetPrimary returns the current primary replica's ID.
	SysGetPrimary int32 = 11
	// SysMapShared maps the cross-replica shared driver region at
	// SharedVA and returns that address.
	SysMapShared int32 = 12
	// SysMapDevice maps device MMIO at DeviceVA and the DMA window at
	// DMAVA; R1 = device index. Only the primary's mapping reaches real
	// device state.
	SysMapDevice int32 = 13
	// SysGetEvent returns the replica's deterministic event count.
	SysGetEvent int32 = 14
	// SysNull is a no-op used by microbenchmarks to measure syscall and
	// synchronisation cost.
	SysNull int32 = 15
)
