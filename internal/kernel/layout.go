// Package kernel implements the per-replica microkernel: threads,
// preemptive round-robin scheduling, system calls, exception handling, and
// context save/restore through simulated RAM.
//
// The kernel is the mechanism layer; the replication policy — when to
// synchronise, vote, deliver interrupts, or downgrade — lives in
// internal/core, which drives the kernel through its exported methods.
// This mirrors the paper's structure, where RCoE is a modification of the
// seL4 kernel's event handling rather than a separate service.
//
// Critical kernel state lives in the replica's physical memory partition
// (thread contexts, the event counter, the signature accumulator, and a
// kernel-text canary), so the fault-injection campaigns of §V-C corrupt
// the same structures they would on real hardware.
package kernel

import "rcoe/internal/isa"

// Virtual address map for user processes. Every replica uses identical
// virtual addresses, which is what allows instruction-pointer comparison
// across replicas.
const (
	// TextVA is where program text is mapped.
	TextVA uint64 = 0x0001_0000
	// DataVA is the start of the user data/heap region.
	DataVA uint64 = 0x0040_0000
	// StackTopVA is the top of the first thread's stack; stacks for
	// subsequent threads are placed below at StackSize intervals.
	StackTopVA uint64 = 0x3FF0_0000
	// StackSize is the per-thread stack size.
	StackSize uint64 = 64 << 10
	// SharedVA is where the cross-replica driver input region maps
	// (the LC-RCoE augmented-Page_Map region, §III-E).
	SharedVA uint64 = 0x8000_0000
	// DMAVA is where the device DMA window maps in a driver.
	DMAVA uint64 = 0xE000_0000
	// DeviceVA is where device MMIO registers map in a driver.
	DeviceVA uint64 = 0xF000_0000
)

// Kernel-region offsets within a replica's physical partition.
const (
	// canaryOff is the kernel-text stand-in: a page of known pattern
	// verified on kernel entries; corruption models the paper's
	// "corrupted kernel instructions" kernel exceptions.
	canaryOff  uint64 = 0x0000
	canarySize uint64 = 0x1000
	// ctxOff is the thread-context save area: MaxThreads slots of
	// CtxBytes each.
	ctxOff uint64 = 0x1000
	// sigOff holds the replica's event counter and signature
	// accumulator (the "three-word signature", §III-C).
	sigOff uint64 = 0x9000
	// userOff is where user memory (text, then data, then stacks)
	// begins inside the partition.
	userOff uint64 = 0x10000
)

// MaxThreads is the per-replica thread-table size.
const MaxThreads = 64

// CtxWords is the context save-area size: 32 registers plus the PC.
const CtxWords = isa.NumRegs + 1

// CtxBytes is the byte size of one context slot.
const CtxBytes = CtxWords * 8

// Layout locates a replica's kernel structures in physical memory.
type Layout struct {
	// Base is the replica partition's physical base address.
	Base uint64
	// Size is the partition size.
	Size uint64
}

// CanaryPA returns the kernel-text canary page address.
func (l Layout) CanaryPA() uint64 { return l.Base + canaryOff }

// CanarySize returns the canary page size.
func (l Layout) CanarySize() uint64 { return canarySize }

// CtxPA returns the physical address of thread tid's context slot.
func (l Layout) CtxPA(tid int) uint64 { return l.Base + ctxOff + uint64(tid)*CtxBytes }

// SigPA returns the address of the signature block: word 0 event count,
// word 1 checksum lo, word 2 checksum hi, word 3 word count.
func (l Layout) SigPA() uint64 { return l.Base + sigOff }

// UserPA returns the physical base of user memory in the partition.
func (l Layout) UserPA() uint64 { return l.Base + userOff }

// UserSize returns the bytes available for user memory.
func (l Layout) UserSize() uint64 { return l.Size - userOff }
