package kernel

import (
	"testing"

	"rcoe/internal/asm"
	"rcoe/internal/isa"
	"rcoe/internal/machine"
)

func newTestKernel(t *testing.T) *Kernel {
	t.Helper()
	prof := machine.X86()
	prof.JitterShift = 63
	m := machine.New(prof, 8<<20)
	k, err := New(0, m.Core(0), Layout{Base: 0x10000, Size: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func simpleProg(t *testing.T) []isa.Instr {
	t.Helper()
	b := asm.New()
	b.Li(1, 7)
	b.Syscall(SysExit)
	prog, err := b.Assemble(TextVA)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestCanaryDetectsCorruption(t *testing.T) {
	k := newTestKernel(t)
	if !k.CheckCanary() {
		t.Fatalf("fresh canary should verify")
	}
	if err := k.Core().Machine().Mem().FlipBit(k.Layout().CanaryPA()+16, 3); err != nil {
		t.Fatal(err)
	}
	if k.CheckCanary() {
		t.Fatalf("corrupted canary not detected")
	}
	if k.Err == nil {
		t.Fatalf("kernel error not recorded")
	}
}

func TestLoadProcessAndSchedule(t *testing.T) {
	k := newTestKernel(t)
	if err := k.LoadProcess(ProcessConfig{Prog: simpleProg(t), DataBytes: 4096, Arg: 42}); err != nil {
		t.Fatal(err)
	}
	if !k.Schedule() {
		t.Fatalf("no thread scheduled")
	}
	c := k.Core()
	if c.PC != TextVA {
		t.Fatalf("PC = %#x, want %#x", c.PC, TextVA)
	}
	if c.Regs[isa.RArg0] != 42 {
		t.Fatalf("arg = %d, want 42", c.Regs[isa.RArg0])
	}
	if c.Regs[isa.RSP] != StackTopVA {
		t.Fatalf("sp = %#x", c.Regs[isa.RSP])
	}
}

func TestContextRoundTripThroughRAM(t *testing.T) {
	k := newTestKernel(t)
	if err := k.LoadProcess(ProcessConfig{Prog: simpleProg(t)}); err != nil {
		t.Fatal(err)
	}
	k.Schedule()
	c := k.Core()
	c.Regs[5] = 0xABCD
	c.PC = TextVA + 8
	k.SaveContext()
	c.Regs[5] = 0
	c.PC = 0
	k.restoreContext(0)
	if c.Regs[5] != 0xABCD || c.PC != TextVA+8 {
		t.Fatalf("context did not round-trip: r5=%#x pc=%#x", c.Regs[5], c.PC)
	}
}

func TestRegisterFaultInSavedContextTakesEffect(t *testing.T) {
	k := newTestKernel(t)
	if err := k.LoadProcess(ProcessConfig{Prog: simpleProg(t)}); err != nil {
		t.Fatal(err)
	}
	k.Schedule()
	c := k.Core()
	c.Regs[5] = 8
	k.SaveContext()
	// Flip a bit in the saved R5 (the paper's register fault injection).
	if err := c.Machine().Mem().FlipBit(k.Layout().CtxPA(0)+5*8, 1); err != nil {
		t.Fatal(err)
	}
	k.restoreContext(0)
	if c.Regs[5] != 10 {
		t.Fatalf("restored r5 = %d, want 10 (bit 1 flipped)", c.Regs[5])
	}
}

func TestPreemptRoundRobin(t *testing.T) {
	k := newTestKernel(t)
	if err := k.LoadProcess(ProcessConfig{Prog: simpleProg(t), Stacks: 3}); err != nil {
		t.Fatal(err)
	}
	// Two more threads.
	for i := 1; i < 3; i++ {
		if _, err := k.CreateThread(TextVA, StackTopFor(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	k.Schedule()
	order := []int{k.CurrentTID()}
	for i := 0; i < 5; i++ {
		k.Preempt()
		order = append(order, k.CurrentTID())
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("round-robin order = %v, want %v", order, want)
		}
	}
	if k.Preemptions != 5 {
		t.Fatalf("preemption count = %d", k.Preemptions)
	}
}

func TestBlockAndWake(t *testing.T) {
	k := newTestKernel(t)
	if err := k.LoadProcess(ProcessConfig{Prog: simpleProg(t), Stacks: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := k.CreateThread(TextVA, StackTopFor(1), 1); err != nil {
		t.Fatal(err)
	}
	k.Schedule()
	if !k.BlockCurrent(3) {
		t.Fatalf("second thread should have been scheduled")
	}
	if k.CurrentTID() != 1 {
		t.Fatalf("current = %d, want 1", k.CurrentTID())
	}
	if got := k.WakeIRQWaiters(4); got != 0 {
		t.Fatalf("woke %d waiters on wrong line", got)
	}
	if got := k.WakeIRQWaiters(3); got != 1 {
		t.Fatalf("woke %d waiters, want 1", got)
	}
	if k.Thread(0).State != ThreadReady {
		t.Fatalf("thread 0 state = %v", k.Thread(0).State)
	}
}

func TestExitAndDone(t *testing.T) {
	k := newTestKernel(t)
	if err := k.LoadProcess(ProcessConfig{Prog: simpleProg(t)}); err != nil {
		t.Fatal(err)
	}
	k.Schedule()
	if k.Done() {
		t.Fatalf("not done yet")
	}
	if k.ExitCurrent(7) {
		t.Fatalf("nothing should be runnable after the only thread exits")
	}
	if !k.Done() {
		t.Fatalf("should be done")
	}
	if k.Thread(0).ExitCode != 7 {
		t.Fatalf("exit code = %d", k.Thread(0).ExitCode)
	}
}

func TestEventCounterInRAM(t *testing.T) {
	k := newTestKernel(t)
	if k.EventCount() != 0 {
		t.Fatalf("fresh event count = %d", k.EventCount())
	}
	k.BumpEvent()
	k.BumpEvent()
	if k.EventCount() != 2 {
		t.Fatalf("event count = %d, want 2", k.EventCount())
	}
	// The counter genuinely lives in RAM: corrupting RAM changes it.
	if err := k.Core().Machine().Mem().FlipBit(k.Layout().SigPA(), 7); err != nil {
		t.Fatal(err)
	}
	if k.EventCount() == 2 {
		t.Fatalf("event counter is not stored in RAM")
	}
}

func TestSignatureAccumulatesAndDiverges(t *testing.T) {
	k1 := newTestKernel(t)
	k2 := newTestKernel(t)
	k1.AddTrace(1, 2, 3)
	k2.AddTrace(1, 2, 3)
	_, s1 := k1.Signature()
	_, s2 := k2.Signature()
	if s1 != s2 {
		t.Fatalf("identical traces, different signatures: %#x vs %#x", s1, s2)
	}
	k2.AddTrace(99)
	_, s2 = k2.Signature()
	if s1 == s2 {
		t.Fatalf("diverging traces give identical signatures")
	}
}

func TestSignatureOrderSensitive(t *testing.T) {
	k1 := newTestKernel(t)
	k2 := newTestKernel(t)
	k1.AddTrace(1)
	k1.AddTrace(2)
	k2.AddTrace(2)
	k2.AddTrace(1)
	_, s1 := k1.Signature()
	_, s2 := k2.Signature()
	if s1 == s2 {
		t.Fatalf("signature not order sensitive")
	}
}

func TestAddTraceBytesMatchesBetweenReplicas(t *testing.T) {
	k1 := newTestKernel(t)
	k2 := newTestKernel(t)
	k1.AddTraceBytes([]byte("hello, replicated world"))
	k2.AddTraceBytes([]byte("hello, replicated world"))
	_, s1 := k1.Signature()
	_, s2 := k2.Signature()
	if s1 != s2 {
		t.Fatalf("same bytes, different signatures")
	}
	k2.AddTraceBytes([]byte("hello, replicated worle"))
	_, s2b := k2.Signature()
	if s2b == s2 {
		t.Fatalf("byte change not reflected")
	}
}

func TestCopyUserRoundTrip(t *testing.T) {
	k := newTestKernel(t)
	if err := k.LoadProcess(ProcessConfig{Prog: simpleProg(t), DataBytes: 4096}); err != nil {
		t.Fatal(err)
	}
	msg := []byte("user data")
	if err := k.CopyToUser(DataVA+16, msg); err != nil {
		t.Fatal(err)
	}
	got, err := k.CopyFromUser(DataVA+16, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Fatalf("round trip = %q", got)
	}
	if _, err := k.CopyFromUser(0xDEAD_0000, 8); err == nil {
		t.Fatalf("unmapped user read should fail")
	}
}

func TestLoadProcessTooBig(t *testing.T) {
	prof := machine.X86()
	m := machine.New(prof, 8<<20)
	k, err := New(0, m.Core(0), Layout{Base: 0x10000, Size: 0x30000})
	if err != nil {
		t.Fatal(err)
	}
	err = k.LoadProcess(ProcessConfig{Prog: simpleProg(t), DataBytes: 1 << 20})
	if err == nil {
		t.Fatalf("oversized process should fail to load")
	}
}

func TestCreateThreadLimit(t *testing.T) {
	k := newTestKernel(t)
	if err := k.LoadProcess(ProcessConfig{Prog: simpleProg(t)}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < MaxThreads; i++ {
		if _, err := k.CreateThread(TextVA, StackTopFor(0), 0); err != nil {
			t.Fatalf("thread %d: %v", i, err)
		}
	}
	if _, err := k.CreateThread(TextVA, StackTopFor(0), 0); err == nil {
		t.Fatalf("thread table overflow not detected")
	}
}
