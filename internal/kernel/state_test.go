package kernel

import (
	"testing"

	"rcoe/internal/snapshot"
)

// TestKernelStateRoundTrip exercises the kernel's Go-side bookkeeping
// through a save/restore cycle: thread table, ready queue, IRQ latches,
// counters, and the user address space restored in place.
func TestKernelStateRoundTrip(t *testing.T) {
	k := newTestKernel(t)
	if err := k.LoadProcess(ProcessConfig{Prog: simpleProg(t), DataBytes: 4096, Arg: 42}); err != nil {
		t.Fatal(err)
	}
	if _, err := k.CreateThread(TextVA, StackTopVA-4096, 7); err != nil {
		t.Fatal(err)
	}
	if !k.Schedule() {
		t.Fatal("no thread scheduled")
	}
	k.BlockCurrent(3)
	k.WakeIRQWaiters(9) // no waiter: latches
	k.Preemptions = 5
	k.Syscalls = 11

	w := snapshot.NewWriter()
	k.SaveState(w.Section("kernel.0"))
	data, err := w.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := snapshot.Parse(data)
	if err != nil {
		t.Fatal(err)
	}

	// Restore into a second kernel built through the same path (the
	// snapshot restore contract), then verify the state transferred.
	k2 := newTestKernel(t)
	if err := k2.LoadProcess(ProcessConfig{Prog: simpleProg(t), DataBytes: 4096, Arg: 42}); err != nil {
		t.Fatal(err)
	}
	d, err := snap.Section("kernel.0")
	if err != nil {
		t.Fatal(err)
	}
	if err := k2.LoadState(d); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	if k2.NumThreads() != k.NumThreads() {
		t.Fatalf("threads: %d vs %d", k2.NumThreads(), k.NumThreads())
	}
	for i := 0; i < k.NumThreads(); i++ {
		a, b := k.Thread(i), k2.Thread(i)
		if *a != *b {
			t.Fatalf("thread %d: %+v vs %+v", i, *b, *a)
		}
	}
	if k2.CurrentTID() != k.CurrentTID() {
		t.Fatalf("cur: %d vs %d", k2.CurrentTID(), k.CurrentTID())
	}
	if k2.Preemptions != 5 || k2.Syscalls != 11 {
		t.Fatalf("counters: %d/%d", k2.Preemptions, k2.Syscalls)
	}
	if !k2.ConsumeIRQLatch(9) {
		t.Fatal("IRQ latch lost")
	}
	if k2.ConsumeIRQLatch(9) {
		t.Fatal("IRQ latch duplicated")
	}
	if len(k2.AddrSpace().Segs) != len(k.AddrSpace().Segs) {
		t.Fatalf("segs: %d vs %d", len(k2.AddrSpace().Segs), len(k.AddrSpace().Segs))
	}
	for i, s := range k.AddrSpace().Segs {
		if k2.AddrSpace().Segs[i] != s {
			t.Fatalf("seg %d: %+v vs %+v", i, k2.AddrSpace().Segs[i], s)
		}
	}
	if k2.Core().AS != k2.AddrSpace() {
		t.Fatal("core AS not re-pointed at the kernel address space")
	}
	// The restored queue must schedule identically.
	if got, want := k2.HasReady(), k.HasReady(); got != want {
		t.Fatalf("HasReady: %v vs %v", got, want)
	}
}
