package kernel

import (
	"fmt"

	"rcoe/internal/isa"
	"rcoe/internal/machine"
)

// ProcessConfig describes the single user process a replica runs. (RCoE
// replicates a logical single-core system; one process with many threads
// matches the paper's benchmark setups.)
type ProcessConfig struct {
	// Prog is the program, assembled at TextVA.
	Prog []isa.Instr
	// DataBytes is the size of the zero-initialised data region at DataVA.
	DataBytes uint64
	// Data optionally pre-populates the start of the data region.
	Data []byte
	// Arg is passed to the main thread in R1.
	Arg uint64
	// Stacks is the number of thread stacks to reserve (minimum 1).
	Stacks int
}

// LoadProcess writes the program into the replica's partition, builds the
// user address space, and creates the main thread.
func (k *Kernel) LoadProcess(cfg ProcessConfig) error {
	if len(cfg.Prog) == 0 {
		return fmt.Errorf("kernel: empty program")
	}
	if cfg.Stacks < 1 {
		cfg.Stacks = 1
	}
	if cfg.Stacks > MaxThreads {
		return fmt.Errorf("kernel: %d stacks exceeds MaxThreads", cfg.Stacks)
	}
	img := isa.EncodeProgram(cfg.Prog)
	textPA := k.lay.UserPA()
	textSize := align(uint64(len(img)), 0x1000)
	dataPA := textPA + textSize
	dataSize := align(cfg.DataBytes, 0x1000)
	if dataSize == 0 {
		dataSize = 0x1000
	}
	stackBytes := uint64(cfg.Stacks) * StackSize
	stackPA := dataPA + dataSize
	if stackPA+stackBytes > k.lay.Base+k.lay.Size {
		return fmt.Errorf("kernel: partition too small: need %#x, have %#x",
			stackPA+stackBytes-k.lay.Base, k.lay.Size)
	}
	if err := k.m.Mem().Write(textPA, img); err != nil {
		return fmt.Errorf("kernel: load text: %w", err)
	}
	if len(cfg.Data) > 0 {
		if uint64(len(cfg.Data)) > dataSize {
			return fmt.Errorf("kernel: initial data larger than data region")
		}
		if err := k.m.Mem().Write(dataPA, cfg.Data); err != nil {
			return fmt.Errorf("kernel: load data: %w", err)
		}
	}
	k.as = &machine.AddrSpace{Segs: []machine.Segment{
		{VBase: TextVA, PBase: textPA, Size: textSize, Perm: machine.PermR | machine.PermX},
		{VBase: DataVA, PBase: dataPA, Size: dataSize, Perm: machine.PermR | machine.PermW},
		{VBase: StackTopVA - stackBytes, PBase: stackPA, Size: stackBytes, Perm: machine.PermR | machine.PermW},
	}}
	_, err := k.CreateThread(TextVA, StackTopVA, cfg.Arg)
	if err != nil {
		return err
	}
	return nil
}

// StackTopFor returns the stack top virtual address for thread slot i
// under the loader's layout (slot 0 is the main thread).
func StackTopFor(i int) uint64 {
	return StackTopVA - uint64(i)*StackSize
}

// MapSegment appends a mapping to the user address space (used for the
// cross-replica shared region, device MMIO, and DMA windows). It goes
// through AddrSpace.Map so the cores' translation memos see the change.
func (k *Kernel) MapSegment(s machine.Segment) {
	k.as.Map(s)
}

// HasMapping reports whether a virtual address is already mapped.
func (k *Kernel) HasMapping(va uint64) bool {
	_, _, ok := k.as.Translate(va, 1, 0)
	return ok
}

func align(v, a uint64) uint64 {
	return (v + a - 1) &^ (a - 1)
}
