package kernel

import (
	"fmt"

	"rcoe/internal/isa"
	"rcoe/internal/machine"
)

// ProcessConfig describes the single user process a replica runs. (RCoE
// replicates a logical single-core system; one process with many threads
// matches the paper's benchmark setups.)
type ProcessConfig struct {
	// Prog is the program, assembled at TextVA.
	Prog []isa.Instr
	// DataBytes is the size of the zero-initialised data region at DataVA.
	DataBytes uint64
	// Data optionally pre-populates the start of the data region.
	Data []byte
	// Arg is passed to the main thread in R1.
	Arg uint64
	// Stacks is the number of thread stacks to reserve (minimum 1).
	Stacks int
	// Relocs lists the indices of instructions in Prog whose Imm is a
	// user-space virtual-address literal (asm.Builder.Relocs). When
	// LayoutDelta is non-zero, the loader adds the delta to each before
	// writing the image, so the program addresses its shifted segments.
	Relocs []int
	// LayoutDelta shifts the data and stack segments' virtual bases by a
	// page-aligned amount — per-replica structural decorrelation. Text is
	// never shifted: instruction pointers stay comparable across replicas,
	// which CC's logical-time comparison requires. Must stay within
	// MaxLayoutShift so relocated literals keep clear of the text window
	// and the imm32 range.
	LayoutDelta uint64
	// PhysPad inserts a page-aligned gap between text and the rest of the
	// image, and PhysSwap places the stacks before the data region —
	// together they decorrelate the *physical* placement, so a physical
	// fault at the same partition offset hits different program state in
	// each replica.
	PhysPad  uint64
	PhysSwap bool
}

// MaxLayoutShift bounds ProcessConfig.LayoutDelta. It keeps every shifted
// address inside the user window and gives decorrelation-aware guests a
// constant to size wild-pointer test regions against.
const MaxLayoutShift = 0x80000

// LoadProcess writes the program into the replica's partition, builds the
// user address space, and creates the main thread.
func (k *Kernel) LoadProcess(cfg ProcessConfig) error {
	if len(cfg.Prog) == 0 {
		return fmt.Errorf("kernel: empty program")
	}
	if cfg.Stacks < 1 {
		cfg.Stacks = 1
	}
	if cfg.Stacks > MaxThreads {
		return fmt.Errorf("kernel: %d stacks exceeds MaxThreads", cfg.Stacks)
	}
	delta := cfg.LayoutDelta
	if delta%0x1000 != 0 || delta > MaxLayoutShift {
		return fmt.Errorf("kernel: layout delta %#x not page-aligned or beyond MaxLayoutShift", delta)
	}
	prog := cfg.Prog
	if delta != 0 && len(cfg.Relocs) > 0 {
		// Patch the relocatable address literals against a copy: the
		// caller shares cfg.Prog across replicas with different deltas.
		prog = append([]isa.Instr(nil), cfg.Prog...)
		for _, idx := range cfg.Relocs {
			if idx < 0 || idx >= len(prog) || prog[idx].Op != isa.OpLi {
				return fmt.Errorf("kernel: reloc %d does not name an address literal", idx)
			}
			shifted := uint64(prog[idx].Imm) + delta
			if shifted > 0x7fffffff {
				return fmt.Errorf("kernel: relocated literal %#x exceeds imm32 range", shifted)
			}
			prog[idx].Imm = int32(shifted)
		}
	}
	img := isa.EncodeProgram(prog)
	textPA := k.lay.UserPA()
	textSize := align(uint64(len(img)), 0x1000)
	dataSize := align(cfg.DataBytes, 0x1000)
	if dataSize == 0 {
		dataSize = 0x1000
	}
	stackBytes := uint64(cfg.Stacks) * StackSize
	// Physical placement: optionally pad after text and swap the
	// data/stack order (physical decorrelation).
	pad := align(cfg.PhysPad, 0x1000)
	var dataPA, stackPA uint64
	if cfg.PhysSwap {
		stackPA = textPA + textSize + pad
		dataPA = stackPA + stackBytes
	} else {
		dataPA = textPA + textSize + pad
		stackPA = dataPA + dataSize
	}
	end := dataPA + dataSize
	if s := stackPA + stackBytes; s > end {
		end = s
	}
	if end > k.lay.Base+k.lay.Size {
		return fmt.Errorf("kernel: partition too small: need %#x, have %#x",
			end-k.lay.Base, k.lay.Size)
	}
	if err := k.m.Mem().Write(textPA, img); err != nil {
		return fmt.Errorf("kernel: load text: %w", err)
	}
	if len(cfg.Data) > 0 {
		if uint64(len(cfg.Data)) > dataSize {
			return fmt.Errorf("kernel: initial data larger than data region")
		}
		if err := k.m.Mem().Write(dataPA, cfg.Data); err != nil {
			return fmt.Errorf("kernel: load data: %w", err)
		}
	}
	k.as = &machine.AddrSpace{Segs: []machine.Segment{
		{VBase: TextVA, PBase: textPA, Size: textSize, Perm: machine.PermR | machine.PermX},
		{VBase: DataVA + delta, PBase: dataPA, Size: dataSize, Perm: machine.PermR | machine.PermW},
		{VBase: StackTopVA + delta - stackBytes, PBase: stackPA, Size: stackBytes, Perm: machine.PermR | machine.PermW},
	}}
	k.layoutDelta = delta
	_, err := k.CreateThread(TextVA, StackTopVA+delta, cfg.Arg)
	if err != nil {
		return err
	}
	return nil
}

// StackTopFor returns the stack top virtual address for thread slot i
// under the loader's layout (slot 0 is the main thread).
func StackTopFor(i int) uint64 {
	return StackTopVA - uint64(i)*StackSize
}

// MapSegment appends a mapping to the user address space (used for the
// cross-replica shared region, device MMIO, and DMA windows). It goes
// through AddrSpace.Map so the cores' translation memos see the change.
func (k *Kernel) MapSegment(s machine.Segment) {
	k.as.Map(s)
}

// HasMapping reports whether a virtual address is already mapped.
func (k *Kernel) HasMapping(va uint64) bool {
	_, _, ok := k.as.Translate(va, 1, 0)
	return ok
}

func align(v, a uint64) uint64 {
	return (v + a - 1) &^ (a - 1)
}
