package snapshot

import (
	"bytes"
	"errors"
	"os"
	"reflect"
	"testing"
)

func TestRoundTripPrimitives(t *testing.T) {
	w := NewWriter()
	e := w.Section("alpha")
	e.U64(42)
	e.I64(-7)
	e.Int(123456)
	e.Bool(true)
	e.Bool(false)
	e.Bytes([]byte{1, 2, 3})
	e.String("hello")
	e.U64s([]uint64{9, 8, 7})
	e.SortedU64Map(map[uint64]uint64{5: 50, 1: 10, 3: 30})
	e2 := w.Section("beta")
	e2.U64(99)

	data, err := w.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	d, err := snap.Section("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if got := d.U64(); got != 42 {
		t.Fatalf("U64: got %d", got)
	}
	if got := d.I64(); got != -7 {
		t.Fatalf("I64: got %d", got)
	}
	if got := d.Int(); got != 123456 {
		t.Fatalf("Int: got %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("Bool round trip failed")
	}
	if got := d.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("Bytes: got %v", got)
	}
	if got := d.String(); got != "hello" {
		t.Fatalf("String: got %q", got)
	}
	if got := d.U64s(); !reflect.DeepEqual(got, []uint64{9, 8, 7}) {
		t.Fatalf("U64s: got %v", got)
	}
	if got := d.SortedU64Map(); !reflect.DeepEqual(got, map[uint64]uint64{1: 10, 3: 30, 5: 50}) {
		t.Fatalf("SortedU64Map: got %v", got)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := snap.Section("beta")
	if err != nil {
		t.Fatal(err)
	}
	if got := b.U64(); got != 99 {
		t.Fatalf("beta U64: got %d", got)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDeterministicEncoding pins the byte-determinism contract: encoding
// the same logical state twice — including map-shaped state — yields
// identical bytes.
func TestDeterministicEncoding(t *testing.T) {
	build := func() []byte {
		w := NewWriter()
		e := w.Section("m")
		m := map[uint64]uint64{}
		for i := uint64(0); i < 64; i++ {
			m[i*0x9E3779B97F4A7C15] = i
		}
		e.SortedU64Map(m)
		data, err := w.Bytes()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if a, b := build(), build(); !bytes.Equal(a, b) {
		t.Fatal("same state encoded to different bytes")
	}
}

func TestParseRejectsCorruption(t *testing.T) {
	w := NewWriter()
	w.Section("s").U64(1)
	data, err := w.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":      {},
		"bad magic":  append([]byte("XXXXXXXX"), data[8:]...),
		"truncated":  data[:len(data)-3],
		"trailing":   append(append([]byte{}, data...), 0xFF),
		"bad header": data[:10],
	}
	for name, corrupt := range cases {
		if _, err := Parse(corrupt); !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("%s: got %v, want ErrBadSnapshot", name, err)
		}
	}
	if _, err := Parse(data); err != nil {
		t.Fatalf("pristine data rejected: %v", err)
	}
}

func TestMissingSection(t *testing.T) {
	w := NewWriter()
	w.Section("present").U64(1)
	data, _ := w.Bytes()
	snap, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snap.Section("absent"); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("got %v, want ErrIncompatible", err)
	}
}

func TestDecodeErrorLatches(t *testing.T) {
	w := NewWriter()
	w.Section("s").U64(7)
	data, _ := w.Bytes()
	snap, _ := Parse(data)
	d, _ := snap.Section("s")
	_ = d.U64()
	_ = d.U64() // over-read
	if d.Err() == nil {
		t.Fatal("over-read did not latch an error")
	}
	if got := d.U64(); got != 0 {
		t.Fatalf("read after error returned %d, want 0", got)
	}
	if d.Close() == nil {
		t.Fatal("Close after error returned nil")
	}
}

func TestDuplicateSectionRejected(t *testing.T) {
	w := NewWriter()
	w.Section("dup").U64(1)
	w.Section("dup").U64(2)
	if _, err := w.Bytes(); err == nil {
		t.Fatal("duplicate section accepted")
	}
}

func TestDiff(t *testing.T) {
	build := func(v uint64, extra bool) *Snapshot {
		w := NewWriter()
		w.Section("a").U64(v)
		w.Section("b").U64(1)
		if extra {
			w.Section("c").U64(2)
		}
		data, err := w.Bytes()
		if err != nil {
			t.Fatal(err)
		}
		snap, err := Parse(data)
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}
	if d := Diff(build(1, false), build(1, false)); len(d) != 0 {
		t.Fatalf("identical snapshots diff: %v", d)
	}
	d := Diff(build(1, false), build(2, true))
	if len(d) != 2 {
		t.Fatalf("expected 2 differences, got %v", d)
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/x.snap"
	w := NewWriter()
	w.Section("s").String("payload")
	data, err := w.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteTo(f, data); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	snap, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	d, err := snap.Section("s")
	if err != nil {
		t.Fatal(err)
	}
	if got := d.String(); got != "payload" {
		t.Fatalf("got %q", got)
	}
}
