// Package snapshot implements the checkpoint/restore serialization
// boundary: a versioned, deterministic binary format for the complete
// simulated state of a replicated system — machine, kernels, devices,
// replication control state, and harness-level client state.
//
// The format is a flat sequence of named sections. Each layer of the
// system contributes its own sections through the Snapshotter interface,
// so the file composes the same way the system does: the machine writes
// "machine"/"mem"/"core.N"/"bus"/"dev.N", each replica kernel writes
// "kernel.N", the replication layer writes "sys"/"trace"/"metrics", and
// the KV harness adds "scenario"/"kv"/"workload" on top.
//
// Determinism is a format-level guarantee: encoding the same state twice
// yields byte-identical files (all maps are serialized in sorted order by
// their owners), and a save→restore→save round trip is byte-identical
// too. The differential determinism suite relies on both properties.
//
// Layout (all integers little-endian):
//
//	[8]byte  magic "RCOESNP\x01"
//	uint32   format version (currently 1)
//	uint32   section count
//	per section:
//	  uint32 name length, name bytes
//	  uint64 payload length, payload bytes
package snapshot

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
)

// Version is the current snapshot format version.
const Version = 1

var magic = [8]byte{'R', 'C', 'O', 'E', 'S', 'N', 'P', 1}

// ErrBadSnapshot reports a corrupt, truncated or foreign snapshot.
var ErrBadSnapshot = errors.New("snapshot: bad snapshot")

// ErrIncompatible reports a snapshot that parsed correctly but cannot be
// restored into the given target system (config mismatch, missing
// section, device list mismatch).
var ErrIncompatible = errors.New("snapshot: incompatible restore target")

// IncompatibleError builds an ErrIncompatible-wrapped mismatch report for
// one field of one section.
func IncompatibleError(section, field string, target, snap interface{}) error {
	return fmt.Errorf("%w: %s: %s: snapshot has %v, target has %v",
		ErrIncompatible, section, field, snap, target)
}

// Snapshotter is implemented by every layer that owns serializable
// simulated state. SaveState appends the layer's sections to the writer;
// LoadState reads them back from a parsed snapshot. Restoring is only
// defined against a structurally identical, freshly constructed target
// (same configuration, program, and device registration order): derived
// host-side state — execution caches, page generations, park closures —
// is reconstructed by the owner, not serialized.
type Snapshotter interface {
	SaveState(w *Writer) error
	LoadState(s *Snapshot) error
}

// Section is one named payload of a parsed snapshot.
type Section struct {
	Name string
	Data []byte
}

// Writer accumulates sections and serializes them. Errors latch: after
// the first failure every call is a no-op and Bytes returns the error.
type Writer struct {
	sections []Section
	cur      *Enc
	curName  string
	err      error
}

// NewWriter returns an empty snapshot writer.
func NewWriter() *Writer { return &Writer{} }

// Section begins a new named section and returns its encoder. The
// previous section, if any, is finalized. Section names must be unique
// within one snapshot.
func (w *Writer) Section(name string) *Enc {
	w.flush()
	if w.err == nil {
		for _, s := range w.sections {
			if s.Name == name {
				w.err = fmt.Errorf("snapshot: duplicate section %q", name)
			}
		}
	}
	w.cur = &Enc{}
	w.curName = name
	return w.cur
}

func (w *Writer) flush() {
	if w.cur == nil {
		return
	}
	w.sections = append(w.sections, Section{Name: w.curName, Data: w.cur.buf})
	w.cur = nil
}

// Err returns the first error the writer latched.
func (w *Writer) Err() error { return w.err }

// Bytes finalizes the snapshot and returns its serialized form.
func (w *Writer) Bytes() ([]byte, error) {
	w.flush()
	if w.err != nil {
		return nil, w.err
	}
	size := len(magic) + 8
	for _, s := range w.sections {
		size += 4 + len(s.Name) + 8 + len(s.Data)
	}
	out := make([]byte, 0, size)
	out = append(out, magic[:]...)
	out = binary.LittleEndian.AppendUint32(out, Version)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(w.sections)))
	for _, s := range w.sections {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(s.Name)))
		out = append(out, s.Name...)
		out = binary.LittleEndian.AppendUint64(out, uint64(len(s.Data)))
		out = append(out, s.Data...)
	}
	return out, nil
}

// Snapshot is a parsed snapshot: an ordered list of named sections.
type Snapshot struct {
	sections []Section
	index    map[string]int
}

// Parse reads a serialized snapshot.
func Parse(data []byte) (*Snapshot, error) {
	if len(data) < len(magic)+8 {
		return nil, fmt.Errorf("%w: truncated header", ErrBadSnapshot)
	}
	var m [8]byte
	copy(m[:], data)
	if m != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	ver := binary.LittleEndian.Uint32(data[8:])
	if ver != Version {
		return nil, fmt.Errorf("%w: version %d (supported: %d)", ErrBadSnapshot, ver, Version)
	}
	count := int(binary.LittleEndian.Uint32(data[12:]))
	if count < 0 || count > 1<<20 {
		return nil, fmt.Errorf("%w: implausible section count %d", ErrBadSnapshot, count)
	}
	snap := &Snapshot{index: make(map[string]int, count)}
	off := 16
	for i := 0; i < count; i++ {
		if off+4 > len(data) {
			return nil, fmt.Errorf("%w: truncated section header", ErrBadSnapshot)
		}
		nameLen := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if nameLen < 0 || off+nameLen+8 > len(data) {
			return nil, fmt.Errorf("%w: truncated section name", ErrBadSnapshot)
		}
		name := string(data[off : off+nameLen])
		off += nameLen
		payLen := binary.LittleEndian.Uint64(data[off:])
		off += 8
		if payLen > uint64(len(data)-off) {
			return nil, fmt.Errorf("%w: section %q claims %d bytes, %d remain", ErrBadSnapshot, name, payLen, len(data)-off)
		}
		if _, dup := snap.index[name]; dup {
			return nil, fmt.Errorf("%w: duplicate section %q", ErrBadSnapshot, name)
		}
		snap.index[name] = len(snap.sections)
		snap.sections = append(snap.sections, Section{Name: name, Data: data[off : off+int(payLen)]})
		off += int(payLen)
	}
	if off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadSnapshot, len(data)-off)
	}
	return snap, nil
}

// Sections returns the sections in file order.
func (s *Snapshot) Sections() []Section { return s.sections }

// Has reports whether a section exists.
func (s *Snapshot) Has(name string) bool {
	_, ok := s.index[name]
	return ok
}

// Section returns a decoder over the named section, or an error when the
// snapshot has no such section.
func (s *Snapshot) Section(name string) (*Dec, error) {
	i, ok := s.index[name]
	if !ok {
		return nil, fmt.Errorf("%w: missing section %q", ErrIncompatible, name)
	}
	return &Dec{buf: s.sections[i].Data, name: name}, nil
}

// Enc encodes one section's payload. All writes append; there is no
// error state because appends cannot fail.
type Enc struct {
	buf []byte
}

// U64 appends one unsigned 64-bit word.
func (e *Enc) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends one signed 64-bit word.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as a 64-bit word.
func (e *Enc) Int(v int) { e.I64(int64(v)) }

// Bool appends a boolean as one word.
func (e *Enc) Bool(v bool) {
	if v {
		e.U64(1)
	} else {
		e.U64(0)
	}
}

// Bytes appends a length-prefixed byte string.
func (e *Enc) Bytes(b []byte) {
	e.U64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed string.
func (e *Enc) String(s string) {
	e.U64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// U64s appends a length-prefixed slice of words.
func (e *Enc) U64s(vs []uint64) {
	e.U64(uint64(len(vs)))
	for _, v := range vs {
		e.U64(v)
	}
}

// SortedU64Map appends a map in ascending key order — the format-level
// determinism rule for map-shaped state.
func (e *Enc) SortedU64Map(m map[uint64]uint64) {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	e.U64(uint64(len(keys)))
	for _, k := range keys {
		e.U64(k)
		e.U64(m[k])
	}
}

// Dec decodes one section's payload. Errors latch: after the first
// failed read every subsequent read returns zero values, and Err reports
// the failure. Callers check Err once after decoding a section.
type Dec struct {
	buf  []byte
	off  int
	name string
	err  error
}

func (d *Dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: section %q: %s", ErrBadSnapshot, d.name, fmt.Sprintf(format, args...))
	}
}

// Err returns the first decode error.
func (d *Dec) Err() error { return d.err }

// Remaining returns the undecoded byte count.
func (d *Dec) Remaining() int { return len(d.buf) - d.off }

// Close verifies the section was fully consumed.
func (d *Dec) Close() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		d.fail("%d trailing bytes", len(d.buf)-d.off)
	}
	return d.err
}

// U64 reads one unsigned 64-bit word.
func (d *Dec) U64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("truncated at offset %d", d.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// I64 reads one signed 64-bit word.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// Int reads an int-sized word.
func (d *Dec) Int() int { return int(d.I64()) }

// Bool reads one boolean word.
func (d *Dec) Bool() bool { return d.U64() != 0 }

// Bytes reads a length-prefixed byte string.
func (d *Dec) Bytes() []byte {
	n := d.U64()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail("byte string claims %d bytes, %d remain", n, len(d.buf)-d.off)
		return nil
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:])
	d.off += int(n)
	return out
}

// BytesView returns the next length-prefixed byte string as a view into
// the decoder's backing buffer, without copying. The view is only valid
// while the snapshot's buffer is live; callers that retain the data must
// use Bytes. Intended for bulk payloads (memory pages) that are copied
// straight into their destination.
func (d *Dec) BytesView() []byte {
	n := d.U64()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail("byte string claims %d bytes, %d remain", n, len(d.buf)-d.off)
		return nil
	}
	out := d.buf[d.off : d.off+int(n) : d.off+int(n)]
	d.off += int(n)
	return out
}

// String reads a length-prefixed string.
func (d *Dec) String() string { return string(d.Bytes()) }

// U64s reads a length-prefixed word slice.
func (d *Dec) U64s() []uint64 {
	n := d.U64()
	if d.err != nil {
		return nil
	}
	if n > uint64((len(d.buf)-d.off)/8) {
		d.fail("word slice claims %d words, %d bytes remain", n, len(d.buf)-d.off)
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = d.U64()
	}
	return out
}

// SortedU64Map reads a map written by Enc.SortedU64Map.
func (d *Dec) SortedU64Map() map[uint64]uint64 {
	n := d.U64()
	if d.err != nil {
		return nil
	}
	if n > uint64((len(d.buf)-d.off)/16) {
		d.fail("map claims %d entries, %d bytes remain", n, len(d.buf)-d.off)
		return nil
	}
	out := make(map[uint64]uint64, n)
	for i := uint64(0); i < n; i++ {
		k := d.U64()
		out[k] = d.U64()
	}
	return out
}

// Save serializes a Snapshotter's state to bytes.
func Save(s Snapshotter) ([]byte, error) {
	w := NewWriter()
	if err := s.SaveState(w); err != nil {
		return nil, err
	}
	return w.Bytes()
}

// Restore parses data and loads it into target. The target must be a
// structurally identical, freshly constructed system.
func Restore(target Snapshotter, data []byte) error {
	snap, err := Parse(data)
	if err != nil {
		return err
	}
	return target.LoadState(snap)
}

// SaveFile writes a Snapshotter's state to path.
func SaveFile(path string, s Snapshotter) error {
	data, err := Save(s)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadFile parses a snapshot file.
func LoadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

// RestoreFile loads a snapshot file into target.
func RestoreFile(path string, target Snapshotter) error {
	snap, err := LoadFile(path)
	if err != nil {
		return err
	}
	return target.LoadState(snap)
}

// Diff compares two parsed snapshots section by section and returns a
// human-readable summary of the differences (empty when identical).
func Diff(a, b *Snapshot) []string {
	var out []string
	seen := map[string]bool{}
	for _, sa := range a.sections {
		seen[sa.Name] = true
		ib, ok := b.index[sa.Name]
		if !ok {
			out = append(out, fmt.Sprintf("section %q only in first snapshot (%d bytes)", sa.Name, len(sa.Data)))
			continue
		}
		sb := b.sections[ib]
		if len(sa.Data) != len(sb.Data) {
			out = append(out, fmt.Sprintf("section %q differs: %d vs %d bytes", sa.Name, len(sa.Data), len(sb.Data)))
			continue
		}
		for i := range sa.Data {
			if sa.Data[i] != sb.Data[i] {
				out = append(out, fmt.Sprintf("section %q differs at byte %d (%d bytes total)", sa.Name, i, len(sa.Data)))
				break
			}
		}
	}
	for _, sb := range b.sections {
		if !seen[sb.Name] {
			out = append(out, fmt.Sprintf("section %q only in second snapshot (%d bytes)", sb.Name, len(sb.Data)))
		}
	}
	return out
}

// WriteTo streams a serialized snapshot to w (a convenience for CLIs
// that already hold the bytes).
func WriteTo(w io.Writer, data []byte) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(data); err != nil {
		return err
	}
	return bw.Flush()
}
