package device

import (
	"bytes"
	"testing"

	"rcoe/internal/machine"
)

func newMachine() *machine.Machine {
	prof := machine.X86()
	prof.JitterShift = 63
	return machine.New(prof, 1<<20)
}

func TestInjectDeliversToMailboxAndRaisesIRQ(t *testing.T) {
	m := newMachine()
	nic := NewNIC(0xF000_0000, 0x8000, 3)
	m.AddDevice(nic)
	frame := []byte("hello device")
	nic.Inject(frame)
	m.Step()
	flag, _ := m.Mem().ReadU(nic.RxFlagPA(), 8)
	if flag != 1 {
		t.Fatalf("RX flag = %d, want 1", flag)
	}
	ln, _ := m.Mem().ReadU(nic.RxLenPA(), 8)
	if int(ln) != len(frame) {
		t.Fatalf("RX len = %d", ln)
	}
	data, _ := m.Mem().Read(nic.RxDataPA(), len(frame))
	if !bytes.Equal(data, frame) {
		t.Fatalf("RX data = %q", data)
	}
	if m.Core(m.IRQRoute(3)).PendingIRQ()&(1<<3) == 0 {
		t.Fatalf("IRQ not raised")
	}
	if nic.RxDelivered != 1 {
		t.Fatalf("RxDelivered = %d", nic.RxDelivered)
	}
}

func TestSecondFrameWaitsForMailbox(t *testing.T) {
	m := newMachine()
	nic := NewNIC(0xF000_0000, 0x8000, 3)
	m.AddDevice(nic)
	nic.Inject([]byte("one"))
	nic.Inject([]byte("two"))
	m.Step()
	if nic.PendingRx() != 1 {
		t.Fatalf("pending = %d, want 1 (mailbox occupied)", nic.PendingRx())
	}
	// Consumer clears the flag; the next tick delivers frame two.
	_ = m.Mem().WriteU(nic.RxFlagPA(), 8, 0)
	m.Step()
	data, _ := m.Mem().Read(nic.RxDataPA(), 3)
	if string(data) != "two" {
		t.Fatalf("second frame = %q", data)
	}
}

func TestDoorbellCollectsTxMailbox(t *testing.T) {
	m := newMachine()
	nic := NewNIC(0xF000_0000, 0x8000, 3)
	m.AddDevice(nic)
	resp := []byte("response!")
	_ = m.Mem().WriteU(nic.TxLenPA(), 8, uint64(len(resp)))
	_ = m.Mem().Write(nic.TxDataPA(), resp)
	_ = m.Mem().WriteU(nic.TxFlagPA(), 8, 1)
	nic.MMIOWrite(nic.MMIOBase()+RegTxDoorbell, 8, 1)
	m.Step()
	got := nic.TakeResponses()
	if len(got) != 1 || !bytes.Equal(got[0], resp) {
		t.Fatalf("responses = %q", got)
	}
	flag, _ := m.Mem().ReadU(nic.TxFlagPA(), 8)
	if flag != 0 {
		t.Fatalf("TX flag not cleared")
	}
	if len(nic.TakeResponses()) != 0 {
		t.Fatalf("TakeResponses did not drain")
	}
}

func TestDoorbellWithoutFlagIsIgnored(t *testing.T) {
	m := newMachine()
	nic := NewNIC(0xF000_0000, 0x8000, 3)
	m.AddDevice(nic)
	nic.MMIOWrite(nic.MMIOBase()+RegTxDoorbell, 8, 1)
	m.Step()
	if len(nic.TakeResponses()) != 0 {
		t.Fatalf("phantom response collected")
	}
}

func TestOversizedFrameTruncated(t *testing.T) {
	m := newMachine()
	nic := NewNIC(0xF000_0000, 0x8000, 3)
	m.AddDevice(nic)
	nic.Inject(make([]byte, MaxFrameBytes+100))
	m.Step()
	ln, _ := m.Mem().ReadU(nic.RxLenPA(), 8)
	if ln != MaxFrameBytes {
		t.Fatalf("frame not truncated: %d", ln)
	}
}
