package device

import "rcoe/internal/snapshot"

// SaveState implements machine.StatefulDevice: the NIC's queues, mailbox
// doorbell, delivery counters, and fault-injection state. The mailbox
// contents themselves live in the DMA region of simulated RAM and are
// covered by the memory image; the mem cache is derived (re-established
// on the first Tick; NextEvent is conservative until then).
func (n *NIC) SaveState(e *snapshot.Enc) {
	e.U64(n.mmioBase)
	e.U64(n.dmaBase)
	e.Int(n.line)
	e.Int(len(n.pending))
	for _, f := range n.pending {
		e.Bytes(f)
	}
	e.Int(len(n.responses))
	for _, f := range n.responses {
		e.Bytes(f)
	}
	e.Bool(n.doorbell)
	e.U64(n.RxDelivered)
	e.U64(n.TxCollected)
	e.U64(n.CorruptRxEvery)
	e.U64(n.CorruptTxEvery)
	e.U64(n.CorruptSeed)
	e.U64(n.RxCorrupted)
	e.U64(n.TxCorrupted)
	e.U64(n.crng)
}

// LoadState restores the NIC. The wiring (MMIO window, DMA base, IRQ
// line) is construction-time configuration and only validated.
func (n *NIC) LoadState(d *snapshot.Dec) error {
	mmio, dma, line := d.U64(), d.U64(), d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if mmio != n.mmioBase || dma != n.dmaBase || line != n.line {
		return snapshot.IncompatibleError("nic", "wiring",
			[3]uint64{n.mmioBase, n.dmaBase, uint64(n.line)},
			[3]uint64{mmio, dma, uint64(line)})
	}
	np := d.Int()
	pending := make([][]byte, 0, maxInt(np, 0))
	for i := 0; i < np && d.Err() == nil; i++ {
		pending = append(pending, d.Bytes())
	}
	nr := d.Int()
	responses := make([][]byte, 0, maxInt(nr, 0))
	for i := 0; i < nr && d.Err() == nil; i++ {
		responses = append(responses, d.Bytes())
	}
	doorbell := d.Bool()
	rxDelivered, txCollected := d.U64(), d.U64()
	corruptRx, corruptTx, corruptSeed := d.U64(), d.U64(), d.U64()
	rxCorrupted, txCorrupted := d.U64(), d.U64()
	crng := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	n.pending = pending
	n.responses = responses
	n.doorbell = doorbell
	n.RxDelivered = rxDelivered
	n.TxCollected = txCollected
	n.CorruptRxEvery = corruptRx
	n.CorruptTxEvery = corruptTx
	n.CorruptSeed = corruptSeed
	n.RxCorrupted = rxCorrupted
	n.TxCorrupted = txCorrupted
	n.crng = crng
	n.mem = nil
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
