// Package device implements the simulated peripherals: a network
// interface with DMA mailboxes and interrupts (the Intel I219 stand-in
// behind the Redis/YCSB system benchmark), and a simple console.
//
// Devices live outside the sphere of replication: the NIC performs DMA
// into a dedicated physical region that no replica owns, and its
// registers are reached through MMIO. The paper's residual vulnerability
// — corruption of DMA buffers is invisible to the replicas until the data
// enters the SoR via FT_Mem_Rep — is therefore reproduced exactly.
package device

import "rcoe/internal/machine"

// NIC register offsets within its MMIO window.
const (
	// RegRxStatus reads 1 when the RX mailbox holds a frame.
	RegRxStatus = 0x00
	// RegTxDoorbell is written by the driver after filling the TX
	// mailbox.
	RegTxDoorbell = 0x08
	// RegIRQAck acknowledges the NIC interrupt.
	RegIRQAck = 0x10
)

// NICWindowSize is the MMIO window size.
const NICWindowSize = 0x40

// DMA mailbox layout within the NIC's DMA region: a one-deep RX mailbox
// and a one-deep TX mailbox.
const (
	rxFlagOff = 0x0000 // 1 when a frame is present
	rxLenOff  = 0x0008
	rxDataOff = 0x0010
	txFlagOff = 0x1000
	txLenOff  = 0x1008
	txDataOff = 0x1010
	// MaxFrameBytes bounds a mailbox frame.
	MaxFrameBytes = 0xF00
)

// NIC is the simulated network interface.
type NIC struct {
	mmioBase uint64
	dmaBase  uint64
	line     int

	pending   [][]byte // frames waiting to enter the RX mailbox
	responses [][]byte // frames the driver transmitted

	doorbell bool

	// mem caches the machine's physical memory from the first Tick so
	// NextEvent can inspect the RX mailbox flag without a machine handle.
	mem *machine.Mem

	// RxDelivered and TxCollected count frames through each mailbox.
	RxDelivered uint64
	TxCollected uint64

	// CorruptRxEvery, when non-zero, flips one seeded bit of every N-th RX
	// frame during the DMA write into the mailbox — a device-level fault
	// the replicas cannot vote away because it happens outside the sphere
	// of replication, before FT_Mem_Rep distributes the payload. The
	// corruption is in flight: the injector's copy of the frame stays
	// intact, only the mailbox bytes differ.
	CorruptRxEvery uint64
	// CorruptTxEvery is the TX-side twin: every N-th collected response
	// has one seeded bit flipped after it leaves the mailbox, modeling a
	// fault between driver handoff and the wire.
	CorruptTxEvery uint64
	// CorruptSeed drives the bit choice (0 = a fixed default).
	CorruptSeed uint64
	// RxCorrupted and TxCorrupted count injected frame corruptions.
	RxCorrupted uint64
	TxCorrupted uint64

	crng uint64
}

// NewNIC creates a NIC with registers at mmioBase, using the DMA region
// at dmaBase and raising interrupts on the given line.
func NewNIC(mmioBase, dmaBase uint64, line int) *NIC {
	return &NIC{mmioBase: mmioBase, dmaBase: dmaBase, line: line}
}

// MMIOBase returns the register window base.
func (n *NIC) MMIOBase() uint64 { return n.mmioBase }

// Line returns the NIC's interrupt line.
func (n *NIC) Line() int { return n.line }

// RxFlagPA, RxLenPA, RxDataPA, TxFlagPA, TxLenPA, TxDataPA expose the DMA
// mailbox addresses the driver needs (FT_Mem_Access arguments).
func (n *NIC) RxFlagPA() uint64 { return n.dmaBase + rxFlagOff }

// RxLenPA returns the RX length word address.
func (n *NIC) RxLenPA() uint64 { return n.dmaBase + rxLenOff }

// RxDataPA returns the RX payload address.
func (n *NIC) RxDataPA() uint64 { return n.dmaBase + rxDataOff }

// TxFlagPA returns the TX flag word address.
func (n *NIC) TxFlagPA() uint64 { return n.dmaBase + txFlagOff }

// TxLenPA returns the TX length word address.
func (n *NIC) TxLenPA() uint64 { return n.dmaBase + txLenOff }

// TxDataPA returns the TX payload address.
func (n *NIC) TxDataPA() uint64 { return n.dmaBase + txDataOff }

// Inject queues a frame for delivery into the RX mailbox (the load
// generator's "send"). The frame is copied, so the caller may reuse its
// buffer immediately.
func (n *NIC) Inject(frame []byte) {
	cp := append([]byte(nil), frame...)
	n.pending = append(n.pending, cp)
}

// InjectRetained queues a frame without copying it. The NIC only ever
// reads queued frames (delivery writes them into guest memory; the
// RX-corruption fault flips bits in guest memory, not in the frame), so
// a caller that promises not to mutate the bytes until delivery can
// skip Inject's defensive copy. The cluster router injects a million
// immutably-encoded frames during a scale preload — copying each would
// be pure allocator load on the fill path.
func (n *NIC) InjectRetained(frame []byte) {
	n.pending = append(n.pending, frame)
}

// PendingRx returns the number of frames not yet delivered to the driver.
func (n *NIC) PendingRx() int { return len(n.pending) }

// TakeResponses returns and clears the transmitted frames.
func (n *NIC) TakeResponses() [][]byte {
	out := n.responses
	n.responses = nil
	return out
}

// DrainResponses appends the transmitted frames to dst and clears the
// queue while keeping its backing array, so a caller polling every
// round (the cluster drain loop) reuses both slice headers instead of
// allocating them per round. The frame references are dropped from the
// queue so the caller is their sole owner, exactly as with
// TakeResponses.
func (n *NIC) DrainResponses(dst [][]byte) [][]byte {
	dst = append(dst, n.responses...)
	clear(n.responses)
	n.responses = n.responses[:0]
	return dst
}

// Tick implements machine.Device: move queued frames into a free RX
// mailbox (raising the interrupt), and drain the TX mailbox when the
// doorbell rang.
func (n *NIC) Tick(m *machine.Machine) {
	mem := m.Mem()
	n.mem = mem
	if n.doorbell {
		n.doorbell = false
		flag, _ := mem.ReadU(n.TxFlagPA(), 8)
		if flag == 1 {
			ln, _ := mem.ReadU(n.TxLenPA(), 8)
			if ln > MaxFrameBytes {
				ln = MaxFrameBytes
			}
			data, err := mem.Read(n.TxDataPA(), int(ln))
			if err == nil {
				n.TxCollected++
				if n.CorruptTxEvery > 0 && n.TxCollected%n.CorruptTxEvery == 0 && len(data) > 0 {
					bit := n.corruptBit(uint64(len(data)))
					data[bit>>3] ^= 1 << (bit & 7)
					n.TxCorrupted++
				}
				n.responses = append(n.responses, data)
			}
			_ = mem.WriteU(n.TxFlagPA(), 8, 0)
		}
	}
	if len(n.pending) > 0 {
		flag, _ := mem.ReadU(n.RxFlagPA(), 8)
		if flag == 0 {
			frame := n.pending[0]
			n.pending = n.pending[1:]
			if len(frame) > MaxFrameBytes {
				frame = frame[:MaxFrameBytes]
			}
			_ = mem.WriteU(n.RxLenPA(), 8, uint64(len(frame)))
			_ = mem.Write(n.RxDataPA(), frame)
			n.RxDelivered++
			if n.CorruptRxEvery > 0 && n.RxDelivered%n.CorruptRxEvery == 0 && len(frame) > 0 {
				bit := n.corruptBit(uint64(len(frame)))
				_ = mem.FlipBit(n.RxDataPA()+bit>>3, uint(bit&7))
				n.RxCorrupted++
			}
			_ = mem.WriteU(n.RxFlagPA(), 8, 1)
			m.RaiseIRQ(n.line)
		}
	}
}

// NextEvent implements machine.EventSource. The NIC acts on a cycle only
// when the doorbell rang or a queued frame can enter a free RX mailbox;
// both the doorbell and the mailbox flag change only through core or host
// action, which ends any idle window, so the answer computed here stays
// valid for the whole window.
func (n *NIC) NextEvent(now uint64) uint64 {
	if n.doorbell {
		return now + 1
	}
	if len(n.pending) > 0 {
		if n.mem == nil {
			return now + 1 // not yet ticked: stay conservative
		}
		if flag, _ := n.mem.ReadU(n.RxFlagPA(), 8); flag == 0 {
			return now + 1
		}
		// RX mailbox occupied: delivery waits on the driver clearing the
		// flag, a core action.
	}
	return machine.NoEvent
}

// WatchedMem implements machine.MemWatcher: NextEvent's answer depends on
// the RX and TX mailbox flags, which the driver writes with plain stores
// (the mailboxes are ordinary RAM, not MMIO). Declaring the whole DMA
// region keeps the superblock engine's device horizon honest — a batched
// store into it ends the batch so the next Tick sees the flag change on
// the same cycle naive stepping would.
func (n *NIC) WatchedMem() (lo, hi uint64) {
	return n.dmaBase, n.dmaBase + txDataOff + MaxFrameBytes
}

// corruptBit draws the next seeded bit index for a frame of nbytes.
func (n *NIC) corruptBit(nbytes uint64) uint64 {
	if n.crng == 0 {
		n.crng = n.CorruptSeed
		if n.crng == 0 {
			n.crng = 0x7F4A7C15F39CC060
		}
	}
	n.crng ^= n.crng << 13
	n.crng ^= n.crng >> 7
	n.crng ^= n.crng << 17
	return n.crng % (nbytes * 8)
}

// MMIORead implements machine.MMIOHandler.
func (n *NIC) MMIORead(addr uint64, size int) uint64 {
	switch addr - n.mmioBase {
	case RegRxStatus:
		return 0 // reserved; drivers read the RX flag via DMA
	default:
		return 0
	}
}

// MMIOWrite implements machine.MMIOHandler.
func (n *NIC) MMIOWrite(addr uint64, size int, v uint64) {
	switch addr - n.mmioBase {
	case RegTxDoorbell:
		n.doorbell = true
	case RegIRQAck:
		// Interrupt latching is edge-style in the machine; nothing to do.
	}
}
