// Package compilerpass implements the compiler-assisted branch counting
// that CC-RCoE needs on machines without a precise PMU (the paper's GCC
// plugin for Armv7-A, §III-D).
//
// Instrument prepends a single-cycle increment of the reserved counter
// register (isa.RBC, the --ffixed-r9 analogue) to every control-transfer
// instruction. Because the increment precedes the branch, a replica
// preempted exactly at an instrumented branch has already counted the
// branch it has not yet taken — the Listing 3 race that the kernel's
// leader election must correct for, which it does using the branch-site
// set this package reports.
//
// ScanAtomics is the checking tool the paper proposes for finding raw
// ldrex/strex (load-linked/store-conditional) pairs, whose retry loops
// execute a replica-dependent number of branches and must be replaced by
// the kernel-mediated atomic system call.
package compilerpass

import (
	"fmt"

	"rcoe/internal/asm"
	"rcoe/internal/isa"
)

// Instrument rewrites the program in b, prepending `addi RBC, RBC, 1` to
// every branch, jump and call. Call before Assemble.
func Instrument(b *asm.Builder) {
	b.RewriteBefore(
		func(i isa.Instr) bool { return i.Op.IsBranch() },
		func(isa.Instr) []isa.Instr {
			return []isa.Instr{{Op: isa.OpAddi, Rd: isa.RBC, Rs1: isa.RBC, Imm: 1}}
		},
	)
}

// BranchSites returns the set of branch-instruction addresses in an
// assembled program — the metadata the kernel needs for the Listing 3
// counter-race fixup. It must be called on the *instrumented* program.
func BranchSites(prog []isa.Instr, base uint64) map[uint64]bool {
	sites := make(map[uint64]bool)
	for i, ins := range prog {
		if ins.Op.IsBranch() {
			sites[base+uint64(i)*isa.InstrBytes] = true
		}
	}
	return sites
}

// Verify checks that every branch in the assembled program is immediately
// preceded by the counter increment, i.e. that the program really was
// instrumented (guarding against un-recompiled code, which the paper notes
// must all be rebuilt for compiler-assisted CC-RCoE).
func Verify(prog []isa.Instr) error {
	for i, ins := range prog {
		if !ins.Op.IsBranch() {
			continue
		}
		if i == 0 {
			return fmt.Errorf("compilerpass: branch at index 0 has no preceding increment")
		}
		p := prog[i-1]
		if p.Op != isa.OpAddi || p.Rd != isa.RBC || p.Rs1 != isa.RBC || p.Imm != 1 {
			return fmt.Errorf("compilerpass: branch at index %d not instrumented", i)
		}
	}
	return nil
}

// ScanAtomics reports the indices of raw load-linked/store-conditional
// instructions, which are incompatible with compiler-assisted CC-RCoE and
// must be converted to the kernel-mediated atomic system call.
func ScanAtomics(prog []isa.Instr) []int {
	var hits []int
	for i, ins := range prog {
		if ins.Op == isa.OpLL || ins.Op == isa.OpSC {
			hits = append(hits, i)
		}
	}
	return hits
}

// RewriteAtomics is the binary-rewriting tool the paper proposes for
// compiler-assisted CC-RCoE (§III-D): it scans for the canonical
// load-linked/store-conditional retry loop
//
//	retry: ll   a, (p)
//	       addi a, a, delta
//	       sc   c, (p), a
//	       bne  c, r0, retry
//
// and replaces it with the kernel-mediated atomic system call, whose
// execution count is identical in every replica. The rewrite scratches
// R1/R2 (saved and restored around the call), so the pattern is rejected
// when its registers collide with them. Call before Instrument and before
// Assemble. It returns the number of loops rewritten.
func RewriteAtomics(b *asm.Builder) int {
	n := 0
	b.RewriteWindows(4,
		func(w []isa.Instr) bool {
			ll, add, sc, bne := w[0], w[1], w[2], w[3]
			if ll.Op != isa.OpLL || add.Op != isa.OpAddi ||
				sc.Op != isa.OpSC || bne.Op != isa.OpBne {
				return false
			}
			a, p, c := ll.Rd, ll.Rs1, sc.Rd
			if add.Rd != a || add.Rs1 != a {
				return false
			}
			if sc.Rs1 != p || sc.Rs2 != a {
				return false
			}
			if bne.Rs1 != c && bne.Rs2 != c {
				return false
			}
			// The rewrite scratches the syscall argument registers.
			for _, r := range []uint8{a, p, c} {
				if r == isa.RArg0 || r == isa.RArg1 {
					return false
				}
			}
			return true
		},
		func(w []isa.Instr) []isa.Instr {
			n++
			a, p := w[0].Rd, w[0].Rs1
			delta := w[1].Imm
			sp := uint8(isa.RSP)
			return []isa.Instr{
				// Save R1/R2.
				{Op: isa.OpAddi, Rd: sp, Rs1: sp, Imm: -16},
				{Op: isa.OpSt8, Rs1: sp, Rs2: isa.RArg0, Imm: 0},
				{Op: isa.OpSt8, Rs1: sp, Rs2: isa.RArg1, Imm: 8},
				// SysAtomicAdd(p, delta) -> old value in R1.
				{Op: isa.OpAdd, Rd: isa.RArg0, Rs1: p, Rs2: isa.RZero},
				{Op: isa.OpLi, Rd: isa.RArg1, Imm: delta},
				{Op: isa.OpSyscall, Imm: 4}, // kernel.SysAtomicAdd
				// a = old + delta, matching the original loop's result.
				{Op: isa.OpAddi, Rd: a, Rs1: isa.RArg0, Imm: delta},
				// Restore R1/R2.
				{Op: isa.OpLd8, Rd: isa.RArg1, Rs1: sp, Imm: 8},
				{Op: isa.OpLd8, Rd: isa.RArg0, Rs1: sp, Imm: 0},
				{Op: isa.OpAddi, Rd: sp, Rs1: sp, Imm: 16},
			}
		},
	)
	return n
}
