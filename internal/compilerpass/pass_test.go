package compilerpass

import (
	"testing"

	"rcoe/internal/asm"
	"rcoe/internal/isa"
	"rcoe/internal/kernel"
	"rcoe/internal/machine"
)

// buildLoop builds a small counting loop with a function call, so both
// jump and call instrumentation are exercised.
func buildLoop() *asm.Builder {
	b := asm.New()
	b.Li(5, 0)
	b.Li(6, 10)
	b.Label("loop")
	b.Call("bump")
	b.Blt(5, 6, "loop")
	b.Hlt()
	b.Label("bump")
	b.Addi(5, 5, 1)
	b.Ret()
	return b
}

func TestInstrumentPreservesSemantics(t *testing.T) {
	plain := buildLoop().MustAssemble(0)
	instr := buildLoop()
	Instrument(instr)
	iprog := instr.MustAssemble(0)

	if len(iprog) <= len(plain) {
		t.Fatalf("instrumentation added no instructions")
	}
	r1 := runProg(t, plain)
	r2 := runProg(t, iprog)
	if r1.Regs[5] != 10 || r2.Regs[5] != 10 {
		t.Fatalf("loop results: plain=%d instrumented=%d, want 10", r1.Regs[5], r2.Regs[5])
	}
}

func TestCounterMatchesExecutedBranches(t *testing.T) {
	b := buildLoop()
	Instrument(b)
	prog := b.MustAssemble(0)
	c := runProg(t, prog)
	// The reserved register must equal the PMU's count of executed
	// branches: the two counting mechanisms agree exactly.
	if c.Regs[isa.RBC] != c.UserBranches {
		t.Fatalf("RBC = %d, PMU = %d; counters disagree", c.Regs[isa.RBC], c.UserBranches)
	}
	// 10 iterations: each does call + ret + blt = 3 branches, minus
	// nothing; plus the final fall-through blt still executes.
	if c.Regs[isa.RBC] != 30 {
		t.Fatalf("RBC = %d, want 30", c.Regs[isa.RBC])
	}
}

func TestVerifyAcceptsInstrumented(t *testing.T) {
	b := buildLoop()
	Instrument(b)
	prog := b.MustAssemble(0)
	if err := Verify(prog); err != nil {
		t.Fatalf("instrumented program rejected: %v", err)
	}
}

func TestVerifyRejectsPlain(t *testing.T) {
	prog := buildLoop().MustAssemble(0)
	if err := Verify(prog); err == nil {
		t.Fatalf("uninstrumented program accepted")
	}
}

func TestBranchSites(t *testing.T) {
	b := buildLoop()
	Instrument(b)
	prog := b.MustAssemble(kernel.TextVA)
	sites := BranchSites(prog, kernel.TextVA)
	n := 0
	for i, ins := range prog {
		if ins.Op.IsBranch() {
			n++
			if !sites[kernel.TextVA+uint64(i)*isa.InstrBytes] {
				t.Fatalf("branch at index %d missing from sites", i)
			}
		}
	}
	if len(sites) != n {
		t.Fatalf("sites = %d, branches = %d", len(sites), n)
	}
}

func TestJumpToInstrumentedBranchCountsOnce(t *testing.T) {
	// A label pointing directly at a branch must land on the increment,
	// so the branch is counted exactly once per execution.
	b := asm.New()
	b.Li(5, 0)
	b.J("target")
	b.Hlt() // skipped
	b.Label("target")
	b.Beq(0, 0, "end") // branch that is itself a jump target
	b.Label("end")
	b.Hlt()
	Instrument(b)
	prog := b.MustAssemble(0)
	c := runProg(t, prog)
	if c.Regs[isa.RBC] != 2 {
		t.Fatalf("RBC = %d, want 2 (j + beq)", c.Regs[isa.RBC])
	}
}

func TestScanAtomics(t *testing.T) {
	b := asm.New()
	b.Li(1, 0x1000)
	b.Label("retry")
	b.LL(2, 1)
	b.Addi(2, 2, 1)
	b.SC(3, 1, 2)
	b.Bne(3, 0, "retry")
	b.Hlt()
	prog := b.MustAssemble(0)
	hits := ScanAtomics(prog)
	if len(hits) != 2 {
		t.Fatalf("found %d atomics, want 2 (ll + sc)", len(hits))
	}
	clean := buildLoop().MustAssemble(0)
	if got := ScanAtomics(clean); len(got) != 0 {
		t.Fatalf("false positives: %v", got)
	}
}

// runProg executes a bare program on one core until it halts.
func runProg(t *testing.T, prog []isa.Instr) *machine.Core {
	t.Helper()
	profile := machine.X86()
	profile.JitterShift = 63
	m := machine.New(profile, 1<<20)
	if err := m.Mem().Write(0, isa.EncodeProgram(prog)); err != nil {
		t.Fatal(err)
	}
	halted := false
	m.SetHandler(trapFunc(func(c *machine.Core, tr machine.Trap) {
		halted = true
		c.Halt()
	}))
	as := &machine.AddrSpace{Segs: []machine.Segment{{
		VBase: 0, PBase: 0, Size: 1 << 20,
		Perm: machine.PermR | machine.PermW | machine.PermX,
	}}}
	m.StartCore(0, 0, as)
	if err := m.RunUntil(func() bool { return halted }, 10_000_000); err != nil {
		t.Fatal(err)
	}
	return m.Core(0)
}

type trapFunc func(*machine.Core, machine.Trap)

func (f trapFunc) HandleTrap(c *machine.Core, t machine.Trap) { f(c, t) }

// buildLLSCCounter builds a racy-free LL/SC increment loop program: the
// canonical ldrex/strex retry pattern the rewriting tool targets.
func buildLLSCCounter(iters int32) *asm.Builder {
	b := asm.New()
	b.Li(10, 0x1000) // counter address
	b.Li(11, 0)      // i
	b.Li(12, int32(iters))
	b.Label("outer")
	b.Label("retry")
	b.LL(13, 10)
	b.Addi(13, 13, 1)
	b.SC(14, 10, 13)
	b.Bne(14, 0, "retry")
	b.Addi(11, 11, 1)
	b.Blt(11, 12, "outer")
	b.Hlt()
	return b
}

func TestRewriteAtomicsReplacesRetryLoop(t *testing.T) {
	b := buildLLSCCounter(10)
	n := RewriteAtomics(b)
	if n != 1 {
		t.Fatalf("rewrote %d loops, want 1", n)
	}
	prog := b.MustAssemble(0)
	if hits := ScanAtomics(prog); len(hits) != 0 {
		t.Fatalf("raw atomics remain after rewrite: %v", hits)
	}
	var syscalls int
	for _, ins := range prog {
		if ins.Op == isa.OpSyscall && ins.Imm == 4 {
			syscalls++
		}
	}
	if syscalls != 1 {
		t.Fatalf("atomic syscall count = %d", syscalls)
	}
}

func TestRewriteAtomicsSemantics(t *testing.T) {
	// Execute the rewritten program with a handler implementing
	// SysAtomicAdd and verify the counter and the loop register.
	b := buildLLSCCounter(7)
	if n := RewriteAtomics(b); n != 1 {
		t.Fatalf("rewrite count")
	}
	prog := b.MustAssemble(0)
	profile := machine.X86()
	profile.JitterShift = 63
	m := machine.New(profile, 1<<20)
	if err := m.Mem().Write(0, isa.EncodeProgram(prog)); err != nil {
		t.Fatal(err)
	}
	halted := false
	m.SetHandler(trapFunc(func(c *machine.Core, tr machine.Trap) {
		switch {
		case tr.Kind == machine.TrapSyscall && tr.Num == 4:
			addr, delta := c.Regs[isa.RArg0], c.Regs[isa.RArg1]
			old, _ := m.Mem().ReadU(addr, 8)
			_ = m.Mem().WriteU(addr, 8, old+delta)
			c.Regs[isa.RArg0] = old
		default:
			halted = true
			c.Halt()
		}
	}))
	as := &machine.AddrSpace{Segs: []machine.Segment{{
		VBase: 0, PBase: 0, Size: 1 << 20,
		Perm: machine.PermR | machine.PermW | machine.PermX,
	}}}
	m.StartCore(0, 0, as)
	c := m.Core(0)
	c.Regs[isa.RSP] = 0x8000
	if err := m.RunUntil(func() bool { return halted }, 10_000_000); err != nil {
		t.Fatal(err)
	}
	v, _ := m.Mem().ReadU(0x1000, 8)
	if v != 7 {
		t.Fatalf("counter = %d, want 7", v)
	}
	// The value register must hold the final incremented value, as the
	// original LL/SC loop would have left it.
	if c.Regs[13] != 7 {
		t.Fatalf("value register = %d, want 7", c.Regs[13])
	}
}

func TestRewriteAtomicsSkipsCollidingRegisters(t *testing.T) {
	b := asm.New()
	b.Label("retry")
	b.LL(1, 10) // uses R1: must be left alone
	b.Addi(1, 1, 1)
	b.SC(14, 10, 1)
	b.Bne(14, 0, "retry")
	b.Hlt()
	if n := RewriteAtomics(b); n != 0 {
		t.Fatalf("rewrote a colliding pattern")
	}
}
