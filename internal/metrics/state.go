package metrics

import "rcoe/internal/snapshot"

// histList returns every histogram in a fixed serialization order. Save
// and Load iterate the same list, so the order is the format.
func (s *Set) histList() []*Histogram {
	return []*Histogram{
		&s.BarrierWait, &s.VoteLatency, &s.CatchUpDeficit, &s.DetectLatency,
		&s.DowngradeCost, &s.ReintegrationWindow, &s.KVWindowOps,
	}
}

// ctrList returns every counter in a fixed serialization order.
func (s *Set) ctrList() []*Counter {
	return []*Counter{
		&s.Syncs, &s.Votes, &s.VoteFails, &s.Ejections, &s.Reintegs,
		&s.TraceEvents,
	}
}

// SaveState serializes the full metric set for the checkpoint/restore
// subsystem.
func (s *Set) SaveState(e *snapshot.Enc) {
	hists := s.histList()
	ctrs := s.ctrList()
	e.Int(len(hists))
	e.Int(len(ctrs))
	for _, h := range hists {
		e.U64s(h.buckets[:])
		e.U64(h.count)
		e.U64(h.sum)
		e.U64(h.min)
		e.U64(h.max)
	}
	for _, c := range ctrs {
		e.U64(c.n)
	}
}

// LoadState restores the metric set in place, preserving the *Set pointer
// shared with the observing layer.
func (s *Set) LoadState(d *snapshot.Dec) error {
	hists := s.histList()
	ctrs := s.ctrList()
	if got := d.Int(); got != len(hists) {
		return snapshot.IncompatibleError("metrics", "histograms", len(hists), got)
	}
	if got := d.Int(); got != len(ctrs) {
		return snapshot.IncompatibleError("metrics", "counters", len(ctrs), got)
	}
	for _, h := range hists {
		buckets := d.U64s()
		if d.Err() == nil && len(buckets) != HistBuckets {
			return snapshot.IncompatibleError("metrics", "buckets", HistBuckets, len(buckets))
		}
		copy(h.buckets[:], buckets)
		h.count = d.U64()
		h.sum = d.U64()
		h.min = d.U64()
		h.max = d.U64()
	}
	for _, c := range ctrs {
		c.n = d.U64()
	}
	return d.Err()
}
