package metrics

import (
	"strings"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 100, 1000, 1000} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("Count = %d, want 7", h.Count())
	}
	if h.Sum() != 2106 {
		t.Fatalf("Sum = %d, want 2106", h.Sum())
	}
	if h.Min() != 0 || h.Max() != 1000 {
		t.Fatalf("Min/Max = %d/%d, want 0/1000", h.Min(), h.Max())
	}
	if got := h.Mean(); got < 300 || got > 302 {
		t.Fatalf("Mean = %.2f, want ~300.86", got)
	}
	// p50 of {0,1,2,3,100,1000,1000}: rank 3 -> value 3, bucket [2,4),
	// upper edge inclusive 3.
	if q := h.Quantile(0.5); q != 3 {
		t.Fatalf("p50 = %d, want 3", q)
	}
	// p99 lands in the top bucket; upper bound clamps to max.
	if q := h.Quantile(0.99); q != 1000 {
		t.Fatalf("p99 = %d, want 1000 (clamped to max)", q)
	}
	if q := h.Quantile(0); q != 0 {
		t.Fatalf("p0 = %d, want 0", q)
	}
}

func TestHistogramPowerOfTwoBuckets(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {1 << 40, 41}, {^uint64(0), 64}}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestHistogramObserveDoesNotAllocate(t *testing.T) {
	var h Histogram
	allocs := testing.AllocsPerRun(1000, func() { h.Observe(12345) })
	if allocs != 0 {
		t.Fatalf("Observe allocates %.1f per call, want 0", allocs)
	}
}

func TestNilSetIsSafe(t *testing.T) {
	var s *Set
	// Every disabled-path call must be a no-op, not a panic.
	s.Snapshot(0)
	var h *Histogram
	h.Observe(7)
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram must read as empty")
	}
	var c *Counter
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter must read as zero")
	}
}

func TestSnapshotTable(t *testing.T) {
	s := New()
	for i := uint64(1); i <= 100; i++ {
		s.BarrierWait.Observe(i * 10)
	}
	s.VoteLatency.Observe(5000)
	s.Syncs.Add(100)
	s.Votes.Inc()

	snap := s.Snapshot(123456)
	if snap.At != 123456 {
		t.Fatalf("At = %d", snap.At)
	}
	bw := snap.HistByName("barrier-wait")
	if bw.Count != 100 || bw.Min != 10 || bw.Max != 1000 {
		t.Fatalf("barrier-wait snapshot = %+v", bw)
	}
	if snap.Counter("syncs") != 100 || snap.Counter("votes") != 1 {
		t.Fatal("counter snapshot wrong")
	}
	if snap.Counter("nonexistent") != 0 {
		t.Fatal("unknown counter should read 0")
	}

	tbl := snap.Table("metrics")
	for _, want := range []string{"barrier-wait", "vote-latency", "syncs", "cycles", "p99<="} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("table missing %q:\n%s", want, tbl)
		}
	}
	// Empty histograms are omitted.
	if strings.Contains(tbl, "downgrade-cost") {
		t.Fatalf("empty histogram rendered:\n%s", tbl)
	}
}

func TestSnapshotOnNilSet(t *testing.T) {
	var s *Set
	snap := s.Snapshot(9)
	if len(snap.Hist) != 0 || len(snap.Ctr) != 0 {
		t.Fatal("nil set snapshot must be empty")
	}
	if !strings.Contains(snap.Table("empty"), "no histogram observations") {
		t.Fatal("empty snapshot table should say so")
	}
}

func TestQuantileEmptyHistogram(t *testing.T) {
	var h Histogram
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Fatalf("nil Quantile = %d, want 0", got)
	}
}

func TestQuantileAllZeroObservations(t *testing.T) {
	var h Histogram
	for i := 0; i < 5; i++ {
		h.Observe(0)
	}
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("all-zero Quantile(%v) = %d, want 0", q, got)
		}
	}
}

func TestQuantileTopBucketClamp(t *testing.T) {
	// 1<<63 lands in bucket 64, whose upper edge (1<<64) is unrepresentable;
	// the quantile must clamp to the recorded max, not overflow to 0.
	var h Histogram
	h.Observe(1)
	h.Observe(1 << 63)
	if got := h.Quantile(1); got != 1<<63 {
		t.Fatalf("Quantile(1) = %d, want %d", got, uint64(1)<<63)
	}
	// Out-of-range q clamps rather than panicking or misindexing.
	if got := h.Quantile(2.5); got != 1<<63 {
		t.Fatalf("Quantile(2.5) = %d, want %d", got, uint64(1)<<63)
	}
	if got := h.Quantile(-1); got != 1 {
		t.Fatalf("Quantile(-1) = %d, want 1", got)
	}
}

func TestQuantileInclusiveBucketEdge(t *testing.T) {
	// An interior bucket's open upper edge [2,4) must be reported as the
	// inclusive value 3; a bucket clamped at max must report max exactly.
	var h Histogram
	h.Observe(1)
	h.Observe(100)
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("interior-bucket quantile = %d, want inclusive edge 1", got)
	}
	var g Histogram
	g.Observe(1)
	g.Observe(3)
	if got := g.Quantile(1); got != 3 {
		t.Fatalf("max-clamped quantile = %d, want 3", got)
	}
}

// TestMergeExact pins the Merge contract: merging per-shard sets is
// indistinguishable from one set having observed every stream.
func TestMergeExact(t *testing.T) {
	a, b, whole := New(), New(), New()
	for i := uint64(1); i <= 100; i++ {
		a.BarrierWait.Observe(i)
		whole.BarrierWait.Observe(i)
	}
	for i := uint64(1000); i <= 1040; i++ {
		b.BarrierWait.Observe(i)
		whole.BarrierWait.Observe(i)
	}
	a.Ejections.Add(3)
	b.Ejections.Add(4)
	whole.Ejections.Add(7)
	b.VoteLatency.Observe(17)
	whole.VoteLatency.Observe(17)

	m := Merge(a, nil, b)
	for _, tc := range []struct {
		name      string
		got, want uint64
	}{
		{"count", m.BarrierWait.Count(), whole.BarrierWait.Count()},
		{"sum", m.BarrierWait.Sum(), whole.BarrierWait.Sum()},
		{"min", m.BarrierWait.Min(), whole.BarrierWait.Min()},
		{"max", m.BarrierWait.Max(), whole.BarrierWait.Max()},
		{"p50", m.BarrierWait.Quantile(0.5), whole.BarrierWait.Quantile(0.5)},
		{"p99", m.BarrierWait.Quantile(0.99), whole.BarrierWait.Quantile(0.99)},
		{"ejections", m.Ejections.Value(), whole.Ejections.Value()},
		{"vote-latency-n", m.VoteLatency.Count(), whole.VoteLatency.Count()},
	} {
		if tc.got != tc.want {
			t.Errorf("%s: merged %d, whole %d", tc.name, tc.got, tc.want)
		}
	}
	// Inputs are untouched.
	if a.BarrierWait.Count() != 100 || b.BarrierWait.Count() != 41 {
		t.Error("Merge mutated an input set")
	}
}

// TestMergeEmptyAndNil covers the edges: no sets, all-nil, and merging
// into an empty histogram (count==0 copy path).
func TestMergeEmptyAndNil(t *testing.T) {
	if m := Merge(); m.BarrierWait.Count() != 0 {
		t.Error("empty merge not empty")
	}
	if m := Merge(nil, nil); m.Syncs.Value() != 0 {
		t.Error("nil merge not empty")
	}
	one := New()
	one.KVWindowOps.Observe(5)
	one.KVWindowOps.Observe(9)
	m := Merge(nil, one)
	if m.KVWindowOps.Count() != 2 || m.KVWindowOps.Min() != 5 || m.KVWindowOps.Max() != 9 {
		t.Errorf("single-set merge: n=%d min=%d max=%d", m.KVWindowOps.Count(), m.KVWindowOps.Min(), m.KVWindowOps.Max())
	}
	// Snapshot of a merged set renders like any other.
	if got := m.Snapshot(0).HistByName("kv-window-ops").Count; got != 2 {
		t.Errorf("snapshot of merged set: n=%d", got)
	}
}
