// Package metrics implements the cheap observability counters for the
// replication layer: monotonic counters and fixed-bucket power-of-two
// histograms. Everything is allocation-free on the observe path and safe
// to leave compiled into hot paths behind a single nil check — a System
// without metrics enabled carries a nil *Set.
//
// Rendering builds on internal/stats so the snapshot tables match the
// paper-style output of the benchmark runners.
package metrics

import (
	"fmt"
	"math/bits"
	"strings"

	"rcoe/internal/stats"
)

// Counter is a monotonic event counter.
type Counter struct{ n uint64 }

// Add increments the counter by d.
func (c *Counter) Add(d uint64) {
	if c == nil {
		return
	}
	c.n += d
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n
}

// HistBuckets is the fixed bucket count of every histogram: bucket i
// holds observations in [2^(i-1), 2^i), bucket 0 holds zero, and the last
// bucket absorbs everything larger. 64 buckets cover the full uint64
// range, so nothing ever clips.
const HistBuckets = 65

// Histogram is a fixed-bucket power-of-two histogram. Observe costs one
// bit-scan and three adds; there is no allocation and no locking (the
// simulator is single-threaded by construction).
type Histogram struct {
	buckets [HistBuckets]uint64
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
}

// bucketOf maps a value to its bucket index: 0 for 0, else 1+floor(log2).
func bucketOf(v uint64) int {
	if v == 0 {
		return 0
	}
	return bits.Len64(v) // 1..64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bucketOf(v)]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the arithmetic mean, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() uint64 {
	if h == nil {
		return 0
	}
	return h.min
}

// Max returns the largest observation.
func (h *Histogram) Max() uint64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1): the
// upper edge of the bucket containing that rank. Bucket resolution is a
// factor of two, which is plenty for latency triage.
func (h *Histogram) Quantile(q float64) uint64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen uint64
	for i, n := range h.buckets {
		seen += n
		if seen > rank {
			if i == 0 {
				return 0
			}
			upper := uint64(1) << uint(i)
			if i >= 64 {
				upper = h.max
			}
			if upper > h.max {
				upper = h.max
			}
			return upper - boundAdjust(upper, h.max)
		}
	}
	return h.max
}

// boundAdjust trims the open upper bucket edge back to an inclusive
// value without underflowing past max.
func boundAdjust(upper, max uint64) uint64 {
	if upper == max {
		return 0
	}
	return 1
}

// mergeFrom folds another histogram's observations into h. Because the
// full bucket vector is kept, the merge is exact: the result is
// indistinguishable from one histogram having observed both input
// streams (quantiles included, at bucket resolution).
func (h *Histogram) mergeFrom(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	if h.count == 0 {
		*h = *o
		return
	}
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	h.count += o.count
	h.sum += o.sum
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
}

// String renders a one-line summary.
func (h *Histogram) String() string {
	if h.Count() == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.0f min=%d p50<=%d p99<=%d max=%d",
		h.Count(), h.Mean(), h.Min(), h.Quantile(0.50), h.Quantile(0.99), h.Max())
}

// Set bundles every metric the replication layer maintains. A nil *Set
// is valid and records nothing — that is the disabled state.
type Set struct {
	// BarrierWait is the cycles each replica spends parked at a
	// rendezvous before release.
	BarrierWait Histogram
	// VoteLatency is the cycles from a synchronisation generation
	// opening to its signature vote completing.
	VoteLatency Histogram
	// CatchUpDeficit is the branch deficit at the moment a lagging
	// replica begins breakpoint catch-up (CC mode).
	CatchUpDeficit Histogram
	// DetectLatency is the cycles from fault injection to detection
	// (populated by the fault campaigns, which know injection time).
	DetectLatency Histogram
	// DowngradeCost is the cycles charged to reconfigure after removing
	// a replica (TMR->DMR).
	DowngradeCost Histogram
	// ReintegrationWindow is the cycles from a re-integration request to
	// the restored replica running.
	ReintegrationWindow Histogram
	// KVWindowOps is the per-measurement-window completed KV operations
	// (the Fig 4 throughput-dip signal).
	KVWindowOps Histogram

	// Counters.
	Syncs       Counter
	Votes       Counter
	VoteFails   Counter
	Ejections   Counter
	Reintegs    Counter
	TraceEvents Counter
}

// New returns an enabled, empty metric set.
func New() *Set { return &Set{} }

// histMeta and ctrMeta carry the display name (and unit) of each entry of
// histList/ctrList (state.go), index-parallel: the lists fix the
// serialization order, these fix the rendering.
var histMeta = []struct{ name, unit string }{
	{"barrier-wait", "cycles"},
	{"vote-latency", "cycles"},
	{"catch-up-deficit", "branches"},
	{"detect-latency", "cycles"},
	{"downgrade-cost", "cycles"},
	{"reintegration-window", "cycles"},
	{"kv-window-ops", "ops"},
}

var ctrMeta = []string{
	"syncs", "votes", "vote-fails", "ejections", "reintegrations",
	"trace-events",
}

// Merge returns a new Set holding the exact element-wise aggregation of
// the inputs: counters add, histograms merge at full bucket resolution
// (not from rendered snapshot summaries, which would lose the quantile
// structure). Nil sets — replicated systems without metrics enabled —
// are skipped. The cluster layer uses Merge to report fleet-wide
// counters and histograms across shards.
func Merge(sets ...*Set) *Set {
	out := New()
	for _, s := range sets {
		if s == nil {
			continue
		}
		dst, src := out.histList(), s.histList()
		for i := range dst {
			dst[i].mergeFrom(src[i])
		}
		dctr, sctr := out.ctrList(), s.ctrList()
		for i := range dctr {
			dctr[i].Add(sctr[i].Value())
		}
	}
	return out
}

// Snapshot is an immutable copy of a Set taken at a point in time.
type Snapshot struct {
	At   uint64 // machine cycle of the snapshot
	Hist []HistSnapshot
	Ctr  []CtrSnapshot
}

// HistSnapshot is one histogram's summary statistics.
type HistSnapshot struct {
	Name  string
	Unit  string
	Count uint64
	Mean  float64
	Min   uint64
	P50   uint64
	P99   uint64
	Max   uint64
}

// CtrSnapshot is one counter's value.
type CtrSnapshot struct {
	Name  string
	Value uint64
}

// Snapshot copies the current state. Safe on a nil set (returns an empty
// snapshot).
func (s *Set) Snapshot(atCycle uint64) Snapshot {
	snap := Snapshot{At: atCycle}
	if s == nil {
		return snap
	}
	for i, h := range s.histList() {
		snap.Hist = append(snap.Hist, HistSnapshot{
			Name: histMeta[i].name, Unit: histMeta[i].unit,
			Count: h.Count(), Mean: h.Mean(), Min: h.Min(),
			P50: h.Quantile(0.50), P99: h.Quantile(0.99), Max: h.Max(),
		})
	}
	for i, c := range s.ctrList() {
		snap.Ctr = append(snap.Ctr, CtrSnapshot{Name: ctrMeta[i], Value: c.Value()})
	}
	return snap
}

// Table renders the snapshot as an aligned paper-style table, omitting
// empty histograms.
func (s Snapshot) Table(title string) string {
	t := stats.NewTable(title, "metric", "n", "mean", "min", "p50<=", "p99<=", "max", "unit")
	rows := 0
	for _, h := range s.Hist {
		if h.Count == 0 {
			continue
		}
		t.AddRow(h.Name, fmt.Sprintf("%d", h.Count), fmt.Sprintf("%.0f", h.Mean),
			fmt.Sprintf("%d", h.Min), fmt.Sprintf("%d", h.P50),
			fmt.Sprintf("%d", h.P99), fmt.Sprintf("%d", h.Max), h.Unit)
		rows++
	}
	var b strings.Builder
	if rows > 0 {
		b.WriteString(t.String())
	} else {
		fmt.Fprintf(&b, "%s: no histogram observations\n", title)
	}
	ct := stats.NewTable("", "counter", "value")
	crows := 0
	for _, c := range s.Ctr {
		if c.Value == 0 {
			continue
		}
		ct.AddRow(c.Name, fmt.Sprintf("%d", c.Value))
		crows++
	}
	if crows > 0 {
		b.WriteString(ct.String())
	}
	return b.String()
}

// Hist returns the named histogram snapshot (zero value if absent).
func (s Snapshot) HistByName(name string) HistSnapshot {
	for _, h := range s.Hist {
		if h.Name == name {
			return h
		}
	}
	return HistSnapshot{}
}

// Counter returns the named counter value (0 if absent).
func (s Snapshot) Counter(name string) uint64 {
	for _, c := range s.Ctr {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}
