package trace

import (
	"fmt"
	"strings"
)

// Divergence is the result of aligning replica event streams by logical
// time and scanning for the first disagreement.
type Divergence struct {
	// Found reports whether any disagreement was located.
	Found bool
	// Index is the position (within the aligned comparable streams) of
	// the first disagreeing event.
	Index int
	// LC is the logical event count at which the streams disagree (the
	// smallest LC among the events at the divergence point).
	LC uint64
	// Replica is the replica identified as the odd one out by majority
	// over the events at the divergence point, or -1 when no majority
	// exists (all streams mutually disagree, or DMR).
	Replica int
	// Events holds, per replica, the event at the divergence point;
	// Missing marks replicas whose stream ended before that point.
	Events  []Event
	Missing []bool
	// AlignedFrom is the logical time the comparison started at: rings
	// wrap independently, so streams are trimmed to the newest common
	// window before comparing.
	AlignedFrom uint64
	// Truncated reports that wraparound discarded unequal prefixes, so
	// an earlier divergence could have been lost.
	Truncated bool
	// Compared is how many aligned events agreed before the divergence
	// (or in total when Found is false).
	Compared int
}

// comparable filters a stream down to the replica-symmetric deterministic
// kinds (see Kind.Comparable).
func comparableEvents(stream []Event) []Event {
	out := make([]Event, 0, len(stream))
	for _, ev := range stream {
		if ev.Kind.Comparable() {
			out = append(out, ev)
		}
	}
	return out
}

// FirstDivergence aligns the given per-replica event streams by logical
// time and returns the first event at which they disagree. Streams are
// the retained ring contents, oldest first (Recorder.Streams). Rings wrap
// independently — a straggler records fewer events per unit time — so the
// streams are first trimmed to the newest window they all cover:
// alignment starts at the maximum over replicas of each stream's first
// retained logical time. To stay conservative at the boundary, events at
// exactly the start LC are dropped too (a ring may retain only part of
// that LC's events); Truncated is set whenever trimming occurred.
func FirstDivergence(streams [][]Event) Divergence {
	n := len(streams)
	div := Divergence{Replica: -1, Events: make([]Event, n), Missing: make([]bool, n)}
	if n < 2 {
		return div
	}
	cmp := make([][]Event, n)
	for i, s := range streams {
		cmp[i] = comparableEvents(s)
	}
	// Newest common window: when streams start at different logical
	// times (a ring wrapped, or a replica joined late), trim every stream
	// to the maximum first-retained LC. Events at exactly that LC are
	// dropped too — the wrapped ring may retain only part of them.
	var start uint64
	seen, same := false, true
	for _, s := range cmp {
		if len(s) == 0 {
			continue
		}
		first := s[0].LC
		if !seen {
			start, seen = first, true
			continue
		}
		if first != start {
			same = false
		}
		if first > start {
			start = first
		}
	}
	if seen && !same {
		for i, s := range cmp {
			k := 0
			for k < len(s) && s[k].LC <= start {
				k++
			}
			cmp[i] = s[k:]
		}
		div.Truncated = true
	}
	div.AlignedFrom = start

	// Walk the aligned streams in lockstep.
	for idx := 0; ; idx++ {
		present := 0
		for i := range cmp {
			if idx < len(cmp[i]) {
				present++
			}
		}
		if present == 0 {
			return div // all streams exhausted in agreement
		}
		if present < n {
			// Some stream ended early. A shorter stream is only a
			// divergence if another stream has more events: the missing
			// replica stopped producing comparable events (hung, ejected,
			// or diverged into silence).
			div.Found = true
			div.Index = idx
			for i := range cmp {
				if idx < len(cmp[i]) {
					div.Events[i] = cmp[i][idx]
				} else {
					div.Missing[i] = true
				}
			}
			div.LC = minPresentLC(div.Events, div.Missing)
			div.Replica = oddReplica(div.Events, div.Missing)
			return div
		}
		row := make([]Event, n)
		for i := range cmp {
			row[i] = cmp[i][idx]
		}
		if !allAgree(row) {
			div.Found = true
			div.Index = idx
			copy(div.Events, row)
			div.LC = minPresentLC(row, div.Missing)
			div.Replica = oddReplica(row, div.Missing)
			return div
		}
		div.Compared++
	}
}

func allAgree(row []Event) bool {
	for i := 1; i < len(row); i++ {
		if !row[0].sameStream(row[i]) {
			return false
		}
	}
	return true
}

func minPresentLC(row []Event, missing []bool) uint64 {
	var lc uint64
	seen := false
	for i, ev := range row {
		if missing[i] {
			continue
		}
		if !seen || ev.LC < lc {
			lc = ev.LC
			seen = true
		}
	}
	return lc
}

// oddReplica identifies the replica whose event disagrees with a majority
// of the others (the TMR case), or whose stream is missing while the
// others agree. Returns -1 when no majority exists.
func oddReplica(row []Event, missing []bool) int {
	n := len(row)
	// Count agreement classes among present replicas.
	for i := 0; i < n; i++ {
		if missing[i] {
			continue
		}
		agree := 1
		for j := 0; j < n; j++ {
			if j == i || missing[j] {
				continue
			}
			if row[i].sameStream(row[j]) {
				agree++
			}
		}
		if agree*2 > n {
			// Replica i belongs to the majority class; the odd one is any
			// replica outside it (missing counts as outside).
			for j := 0; j < n; j++ {
				if missing[j] || !row[i].sameStream(row[j]) {
					return j
				}
			}
			return -1
		}
	}
	// No value majority. If exactly one stream is missing and the rest
	// agree that case was handled above; with one present replica and the
	// rest missing, blame a missing one.
	presentIdx, present := -1, 0
	for i := range row {
		if !missing[i] {
			present++
			presentIdx = i
		}
	}
	if present == 1 && n == 2 {
		// DMR with one silent replica: the silent one is the straggler.
		return 1 - presentIdx
	}
	return -1
}

// String renders the divergence for reports and the CLI.
func (d Divergence) String() string {
	var b strings.Builder
	if !d.Found {
		fmt.Fprintf(&b, "no divergence (%d aligned events agree", d.Compared)
		if d.Truncated {
			fmt.Fprintf(&b, "; rings wrapped, compared from lc>%d", d.AlignedFrom)
		}
		b.WriteString(")")
		return b.String()
	}
	fmt.Fprintf(&b, "first divergence at aligned event %d (lc=%d", d.Index, d.LC)
	if d.Replica >= 0 {
		fmt.Fprintf(&b, ", replica %d is the odd one out", d.Replica)
	} else {
		b.WriteString(", no majority")
	}
	b.WriteString(")\n")
	if d.Truncated {
		fmt.Fprintf(&b, "  note: rings wrapped, compared from lc>%d — an earlier divergence may be lost\n", d.AlignedFrom)
	}
	fmt.Fprintf(&b, "  %d aligned events agreed before this point\n", d.Compared)
	for i := range d.Events {
		if d.Missing[i] {
			fmt.Fprintf(&b, "  replica %d: <no event — stream ended>\n", i)
			continue
		}
		fmt.Fprintf(&b, "  replica %d: %s\n", i, d.Events[i])
	}
	return strings.TrimRight(b.String(), "\n")
}
