package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// Binary trace format: a fixed header followed by one ring section per
// replica ring and one for the system ring. All integers little-endian.
//
//	[8]byte  magic "RCOETRC\x01"
//	uint32   replica ring count
//	uint32   ring capacity (events)
//	per ring (replicas in order, then the system ring):
//	  uint64 total events ever recorded
//	  uint32 retained event count
//	  retained × Event (8 uint64 words: Seq Cycle Kind LC Branches IP Arg1 Arg2)

var traceMagic = [8]byte{'R', 'C', 'O', 'E', 'T', 'R', 'C', 1}

// ErrBadTraceFile reports a corrupt or foreign trace file.
var ErrBadTraceFile = errors.New("trace: bad trace file")

const eventWords = 8

func (e Event) words() [eventWords]uint64 {
	return [eventWords]uint64{e.Seq, e.Cycle, uint64(e.Kind), e.LC, e.Branches, e.IP, e.Arg1, e.Arg2}
}

func eventFromWords(w [eventWords]uint64) Event {
	return Event{Seq: w[0], Cycle: w[1], Kind: Kind(w[2]), LC: w[3], Branches: w[4], IP: w[5], Arg1: w[6], Arg2: w[7]}
}

// Save writes the recorder's full contents (all replica rings plus the
// system ring) to w.
func (r *Recorder) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return err
	}
	hdr := [2]uint32{uint32(len(r.rings)), uint32(r.sys.Cap())}
	if err := binary.Write(bw, binary.LittleEndian, hdr[:]); err != nil {
		return err
	}
	rings := append(append([]*Ring{}, r.rings...), r.sys)
	for _, ring := range rings {
		if err := binary.Write(bw, binary.LittleEndian, ring.Total()); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(ring.Len())); err != nil {
			return err
		}
		for i := 0; i < ring.Len(); i++ {
			w := ring.At(i).words()
			if err := binary.Write(bw, binary.LittleEndian, w[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load reads a trace file written by Save. The returned recorder carries
// the same retained events and totals as the one saved.
func Load(rd io.Reader) (*Recorder, error) {
	br := bufio.NewReader(rd)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTraceFile, err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadTraceFile)
	}
	var hdr [2]uint32
	if err := binary.Read(br, binary.LittleEndian, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrBadTraceFile)
	}
	replicas, capacity := int(hdr[0]), int(hdr[1])
	if replicas < 0 || replicas > 64 || capacity <= 0 || capacity > 1<<28 {
		return nil, fmt.Errorf("%w: implausible header (%d rings, cap %d)", ErrBadTraceFile, replicas, capacity)
	}
	rec := NewRecorder(replicas, capacity)
	rings := append(append([]*Ring{}, rec.rings...), rec.sys)
	for _, ring := range rings {
		var total uint64
		var retained uint32
		if err := binary.Read(br, binary.LittleEndian, &total); err != nil {
			return nil, fmt.Errorf("%w: truncated ring header", ErrBadTraceFile)
		}
		if err := binary.Read(br, binary.LittleEndian, &retained); err != nil {
			return nil, fmt.Errorf("%w: truncated ring header", ErrBadTraceFile)
		}
		want := total
		if want > uint64(capacity) {
			want = uint64(capacity)
		}
		if uint64(retained) != want {
			return nil, fmt.Errorf("%w: ring claims %d retained of %d total (cap %d)", ErrBadTraceFile, retained, total, capacity)
		}
		// Place events directly so saved sequence numbers and the
		// wraparound position (Total/Dropped) round-trip exactly.
		ring.next = total
		start := total - uint64(retained)
		for i := uint64(0); i < uint64(retained); i++ {
			var w [eventWords]uint64
			if err := binary.Read(br, binary.LittleEndian, w[:]); err != nil {
				return nil, fmt.Errorf("%w: truncated event", ErrBadTraceFile)
			}
			ring.buf[(start+i)%uint64(capacity)] = eventFromWords(w)
		}
	}
	return rec, nil
}

// SaveFile writes the trace to path.
func (r *Recorder) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a trace written by SaveFile.
func LoadFile(path string) (*Recorder, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
