package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func mkEvent(lc uint64, kind Kind, arg1 uint64) Event {
	return Event{Kind: kind, LC: lc, Branches: lc * 3, IP: 0x1000 + lc, Arg1: arg1}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(8)
	for i := uint64(0); i < 20; i++ {
		r.Record(mkEvent(i, KindSyscall, i))
	}
	if r.Total() != 20 {
		t.Fatalf("Total = %d, want 20", r.Total())
	}
	if r.Len() != 8 {
		t.Fatalf("Len = %d, want 8 (capacity)", r.Len())
	}
	if r.Dropped() != 12 {
		t.Fatalf("Dropped = %d, want 12", r.Dropped())
	}
	evs := r.Events()
	for i, ev := range evs {
		wantSeq := uint64(12 + i)
		if ev.Seq != wantSeq {
			t.Errorf("event %d: Seq = %d, want %d", i, ev.Seq, wantSeq)
		}
		if ev.LC != wantSeq {
			t.Errorf("event %d: LC = %d, want %d (oldest retained must be seq 12)", i, ev.LC, wantSeq)
		}
	}
	// A ring that never filled retains everything.
	small := NewRing(8)
	for i := uint64(0); i < 5; i++ {
		small.Record(mkEvent(i, KindTick, 0))
	}
	if small.Len() != 5 || small.Dropped() != 0 {
		t.Fatalf("Len/Dropped = %d/%d, want 5/0", small.Len(), small.Dropped())
	}
}

func TestRingRecordDoesNotAllocate(t *testing.T) {
	r := NewRing(64)
	ev := mkEvent(1, KindSyscall, 2)
	allocs := testing.AllocsPerRun(1000, func() { r.Record(ev) })
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f per call, want 0", allocs)
	}
}

func TestFirstDivergenceAgreement(t *testing.T) {
	var streams [][]Event
	for r := 0; r < 3; r++ {
		var s []Event
		for lc := uint64(1); lc <= 50; lc++ {
			s = append(s, mkEvent(lc, KindTick, 0))
		}
		streams = append(streams, s)
	}
	d := FirstDivergence(streams)
	if d.Found {
		t.Fatalf("agreeing streams reported divergent: %s", d)
	}
	if d.Compared != 50 {
		t.Fatalf("Compared = %d, want 50", d.Compared)
	}
	if d.Truncated {
		t.Fatal("equal streams should not report truncation")
	}
}

func TestFirstDivergenceValueMismatch(t *testing.T) {
	var streams [][]Event
	for r := 0; r < 3; r++ {
		var s []Event
		for lc := uint64(1); lc <= 30; lc++ {
			ev := mkEvent(lc, KindSyscall, 7)
			if r == 1 && lc == 20 {
				ev.Arg1 = 8 // replica 1 passes a corrupted syscall argument
			}
			s = append(s, ev)
		}
		streams = append(streams, s)
	}
	d := FirstDivergence(streams)
	if !d.Found {
		t.Fatal("seeded mismatch not found")
	}
	if d.Replica != 1 {
		t.Fatalf("odd replica = %d, want 1", d.Replica)
	}
	if d.LC != 20 {
		t.Fatalf("divergence LC = %d, want 20", d.LC)
	}
	if d.Compared != 19 {
		t.Fatalf("Compared = %d, want 19 agreeing events before divergence", d.Compared)
	}
	if !strings.Contains(d.String(), "replica 1") {
		t.Fatalf("report does not name replica 1:\n%s", d)
	}
}

// TestFirstDivergenceUnequalRings aligns streams whose rings wrapped at
// different depths: the comparison must start at the newest common window
// and flag the truncation.
func TestFirstDivergenceUnequalRings(t *testing.T) {
	full := NewRing(100)
	wrapped := NewRing(16)
	third := NewRing(100)
	for lc := uint64(1); lc <= 60; lc++ {
		ev := mkEvent(lc, KindTick, 0)
		full.Record(ev)
		third.Record(ev)
		if lc == 55 {
			ev.IP ^= 4 // replica 1 jumps somewhere else at lc 55
		}
		wrapped.Record(ev)
	}
	streams := [][]Event{full.Events(), wrapped.Events(), third.Events()}
	if len(streams[1]) != 16 {
		t.Fatalf("wrapped ring retains %d, want 16", len(streams[1]))
	}
	d := FirstDivergence(streams)
	if !d.Truncated {
		t.Fatal("unequal ring lengths must flag Truncated")
	}
	// Wrapped ring retains lc 45..60; alignment starts past lc 45.
	if d.AlignedFrom != 45 {
		t.Fatalf("AlignedFrom = %d, want 45", d.AlignedFrom)
	}
	if !d.Found || d.Replica != 1 {
		t.Fatalf("divergence = %+v, want found with replica 1", d)
	}
	if d.LC != 55 {
		t.Fatalf("divergence LC = %d, want 55", d.LC)
	}
}

// TestFirstDivergenceMissingTail blames the replica whose stream ends
// while the others keep producing events (a straggler gone silent).
func TestFirstDivergenceMissingTail(t *testing.T) {
	var streams [][]Event
	for r := 0; r < 3; r++ {
		limit := uint64(40)
		if r == 2 {
			limit = 25 // replica 2 hung at lc 25
		}
		var s []Event
		for lc := uint64(1); lc <= limit; lc++ {
			s = append(s, mkEvent(lc, KindTick, 0))
		}
		streams = append(streams, s)
	}
	d := FirstDivergence(streams)
	if !d.Found {
		t.Fatal("silent straggler not reported")
	}
	if d.Replica != 2 {
		t.Fatalf("odd replica = %d, want 2", d.Replica)
	}
	if !d.Missing[2] {
		t.Fatal("replica 2 should be marked missing")
	}
	if !strings.Contains(d.String(), "stream ended") {
		t.Fatalf("report missing 'stream ended':\n%s", d)
	}
}

func TestFirstDivergenceIgnoresAsymmetricKinds(t *testing.T) {
	// Catch-up steps and barrier joins are legitimately asymmetric; only
	// comparable kinds participate in alignment.
	a := []Event{mkEvent(1, KindTick, 0), mkEvent(2, KindTick, 0)}
	b := []Event{
		mkEvent(1, KindTick, 0),
		{Kind: KindCatchUpStep, LC: 1, Arg1: 99},
		{Kind: KindBarrierJoin, LC: 1, Arg1: 3},
		mkEvent(2, KindTick, 0),
	}
	d := FirstDivergence([][]Event{a, b})
	if d.Found {
		t.Fatalf("asymmetric kinds caused false divergence: %s", d)
	}
}

func TestTraceSaveLoadRoundTrip(t *testing.T) {
	rec := NewRecorder(3, 16)
	for rid := 0; rid < 3; rid++ {
		for lc := uint64(1); lc <= 24; lc++ { // wraps the 16-entry rings
			rec.Record(rid, mkEvent(lc, KindSyscall, uint64(rid)))
		}
	}
	rec.Record(-1, Event{Kind: KindVote, Arg1: 5})

	var buf bytes.Buffer
	if err := rec.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.NumReplicas() != 3 {
		t.Fatalf("NumReplicas = %d, want 3", got.NumReplicas())
	}
	for rid := 0; rid < 3; rid++ {
		orig, loaded := rec.Ring(rid), got.Ring(rid)
		if loaded.Total() != orig.Total() || loaded.Len() != orig.Len() || loaded.Dropped() != orig.Dropped() {
			t.Fatalf("ring %d: total/len/dropped %d/%d/%d, want %d/%d/%d",
				rid, loaded.Total(), loaded.Len(), loaded.Dropped(),
				orig.Total(), orig.Len(), orig.Dropped())
		}
		oe, le := orig.Events(), loaded.Events()
		for i := range oe {
			if oe[i] != le[i] {
				t.Fatalf("ring %d event %d: %+v != %+v", rid, i, le[i], oe[i])
			}
		}
	}
	if got.System().Len() != 1 || got.System().At(0).Kind != KindVote {
		t.Fatal("system ring did not round-trip")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	_, err := Load(bytes.NewReader([]byte("not a trace file at all")))
	if !errors.Is(err, ErrBadTraceFile) {
		t.Fatalf("err = %v, want ErrBadTraceFile", err)
	}
	_, err = Load(bytes.NewReader(nil))
	if !errors.Is(err, ErrBadTraceFile) {
		t.Fatalf("empty: err = %v, want ErrBadTraceFile", err)
	}
}
