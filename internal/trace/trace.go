// Package trace implements the flight recorder for replicated execution:
// a bounded, allocation-free ring of fixed-size event records per replica
// (plus one system-level ring), each stamped with the replica's logical
// time (event count, user branches, instruction pointer) and the machine
// cycle at which it was recorded.
//
// The recorder exists to answer the forensic question a bare signature
// vote cannot: *where and when* did replicas diverge. Replay-based
// detection (RepTFD) and canonical trace comparison (DME) close this gap
// with full execution traces; the flight recorder keeps only a bounded
// recent window, which is what a production system can afford to record
// continuously. Aligning the per-replica event streams by logical time
// yields a first-divergence report (see FirstDivergence).
//
// Recording is configured through core.Config.Trace and is off by
// default; every hook point in the replication layer is a single nil
// check when disabled.
package trace

import "fmt"

// Kind classifies a recorded event.
type Kind uint64

// Event kinds. The first group is per-replica and deterministic: replicas
// executing the same instruction stream record identical sequences, which
// is what divergence analysis compares. The second group is per-replica
// but asymmetric by design (only lagging replicas catch up). The third
// group is system-level bookkeeping recorded on the system ring.
const (
	// KindSyscall is a system-call kernel entry. Arg1 is the syscall
	// number, Arg2 the first argument register.
	KindSyscall Kind = iota + 1
	// KindTick is a delivered timer preemption. Arg1 is the replica's
	// preemption count.
	KindTick
	// KindUserFault is a user-level exception. Arg1 is the trap kind,
	// Arg2 the faulting address.
	KindUserFault
	// KindFinish is the completion of the replica's workload. Arg1 is
	// the replica's final signature checksum.
	KindFinish

	// KindBarrierJoin is an arrival at a rendezvous. Arg1 is the
	// generation number.
	KindBarrierJoin
	// KindBarrierRelease is a release from a rendezvous. Arg1 is the
	// generation, Arg2 the cycles spent parked at the barrier.
	KindBarrierRelease
	// KindCatchUpStep is a breakpoint catch-up step on a lagging
	// replica. Arg1 is the remaining branch deficit, Arg2 the target IP.
	KindCatchUpStep

	// KindBarrierOpen (system ring) is a synchronisation generation
	// opening. Arg1 is the generation, Arg2 the sync-kind bits.
	KindBarrierOpen
	// KindVote (system ring) is a completed signature comparison. Arg1
	// is the generation or event number, Arg2 is 0 on agreement and 1 on
	// a failed vote.
	KindVote
	// KindIRQRoute (system ring) is an interrupt-route change. Arg1 is
	// the line, Arg2 the new target core.
	KindIRQRoute
	// KindEject (system ring) is a replica removal. Arg1 is the removed
	// replica, Arg2 the detection kind that caused it.
	KindEject
	// KindReintegrate (system ring) is a completed DMR->TMR upgrade.
	// Arg1 is the restored replica, Arg2 the donor.
	KindReintegrate
)

var kindNames = map[Kind]string{
	KindSyscall:        "syscall",
	KindTick:           "tick",
	KindUserFault:      "user-fault",
	KindFinish:         "finish",
	KindBarrierJoin:    "barrier-join",
	KindBarrierRelease: "barrier-release",
	KindCatchUpStep:    "catch-up-step",
	KindBarrierOpen:    "barrier-open",
	KindVote:           "vote",
	KindIRQRoute:       "irq-route",
	KindEject:          "eject",
	KindReintegrate:    "reintegrate",
}

// String returns the kind name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint64(k))
}

// Comparable reports whether events of this kind are deterministic and
// replica-symmetric: replicas in agreement record identical sequences of
// comparable events, so they are the alignment substrate for divergence
// analysis. Barrier arrivals, releases and catch-up steps are legitimately
// asymmetric (a lagging replica records more of them) and are excluded.
func (k Kind) Comparable() bool {
	switch k {
	case KindSyscall, KindTick, KindUserFault, KindFinish:
		return true
	}
	return false
}

// Event is one fixed-size flight-recorder record.
type Event struct {
	// Seq is the per-ring sequence number (monotonic from 0; survives
	// wraparound, so Seq identifies how much history was lost).
	Seq uint64
	// Cycle is the global machine cycle at record time.
	Cycle uint64
	// Kind classifies the event.
	Kind Kind
	// LC, Branches and IP stamp the event with the replica's logical
	// time (the paper's (lc_time, user_branches, user_ip) triple). For
	// system-ring events only Cycle is meaningful.
	LC       uint64
	Branches uint64
	IP       uint64
	// Arg1 and Arg2 carry kind-specific payload (see the Kind
	// constants).
	Arg1 uint64
	Arg2 uint64
}

// sameStream reports whether two events are equal under the divergence
// comparison: everything but the cycle stamp (wall-cycle skew between
// replicas is expected) and the sequence number (ring-local). Branch
// counts are compared: replicas executing the same instruction stream
// reset their branch clocks at the same synchronisations, so a
// disagreement is a real divergence signal.
func (e Event) sameStream(o Event) bool {
	return e.Kind == o.Kind && e.LC == o.LC && e.Branches == o.Branches &&
		e.IP == o.IP && e.Arg1 == o.Arg1 && e.Arg2 == o.Arg2
}

// String renders one event for dumps and reports.
func (e Event) String() string {
	return fmt.Sprintf("#%d %s lc=%d br=%d ip=%#x a1=%#x a2=%#x cyc=%d",
		e.Seq, e.Kind, e.LC, e.Branches, e.IP, e.Arg1, e.Arg2, e.Cycle)
}

// Ring is a bounded event buffer. Recording overwrites the oldest record
// once full and never allocates.
type Ring struct {
	buf  []Event
	next uint64 // total events ever recorded; buf index = next % cap
}

// NewRing creates a ring retaining up to capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingEvents
	}
	return &Ring{buf: make([]Event, capacity)}
}

// DefaultRingEvents is the per-ring capacity when none is configured.
const DefaultRingEvents = 4096

// Record appends one event, stamping its sequence number.
func (r *Ring) Record(ev Event) {
	ev.Seq = r.next
	r.buf[r.next%uint64(len(r.buf))] = ev
	r.next++
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Total returns how many events were ever recorded (retained or not).
func (r *Ring) Total() uint64 { return r.next }

// Len returns how many events are currently retained.
func (r *Ring) Len() int {
	if r.next < uint64(len(r.buf)) {
		return int(r.next)
	}
	return len(r.buf)
}

// Dropped returns how many events were lost to wraparound.
func (r *Ring) Dropped() uint64 { return r.next - uint64(r.Len()) }

// At returns the i-th retained event, oldest first.
func (r *Ring) At(i int) Event {
	start := r.next - uint64(r.Len())
	return r.buf[(start+uint64(i))%uint64(len(r.buf))]
}

// Events returns a copy of the retained events, oldest first. It
// allocates and is meant for the forensic path, not the record path.
func (r *Ring) Events() []Event {
	out := make([]Event, r.Len())
	for i := range out {
		out[i] = r.At(i)
	}
	return out
}

// Recorder bundles one ring per replica plus a system ring.
type Recorder struct {
	rings []*Ring
	sys   *Ring
}

// NewRecorder creates a recorder for the given replica count, each ring
// retaining ringEvents records (DefaultRingEvents when <= 0).
func NewRecorder(replicas, ringEvents int) *Recorder {
	rec := &Recorder{sys: NewRing(ringEvents)}
	for i := 0; i < replicas; i++ {
		rec.rings = append(rec.rings, NewRing(ringEvents))
	}
	return rec
}

// NumReplicas returns the number of per-replica rings.
func (r *Recorder) NumReplicas() int { return len(r.rings) }

// Ring returns replica rid's ring, or the system ring for rid < 0.
func (r *Recorder) Ring(rid int) *Ring {
	if rid < 0 {
		return r.sys
	}
	return r.rings[rid]
}

// System returns the system-level ring.
func (r *Recorder) System() *Ring { return r.sys }

// Record appends an event to replica rid's ring (rid < 0 targets the
// system ring).
func (r *Recorder) Record(rid int, ev Event) { r.Ring(rid).Record(ev) }

// Clone deep-copies the recorder, freezing its current contents against
// further recording (the forensic-report snapshot).
func (r *Recorder) Clone() *Recorder {
	out := &Recorder{sys: r.sys.clone()}
	for _, ring := range r.rings {
		out.rings = append(out.rings, ring.clone())
	}
	return out
}

func (r *Ring) clone() *Ring {
	return &Ring{buf: append([]Event(nil), r.buf...), next: r.next}
}

// Streams returns a copy of every replica ring's retained events, oldest
// first (the input to FirstDivergence). The system ring is excluded.
func (r *Recorder) Streams() [][]Event {
	out := make([][]Event, len(r.rings))
	for i, ring := range r.rings {
		out[i] = ring.Events()
	}
	return out
}
