package cluster

import (
	"rcoe/internal/netstack"
)

// Router hot-path batching: per-operation allocation amortization for
// fill/drain. A routed operation used to cost three allocations (frame,
// retained key, retained SET value) plus per-round scratch (the sorted
// retransmission ID list, the drained response slice, a value copy per
// decoded response). encodePending folds the first three into one
// backing array; the shard scratch buffers (shard.idsBuf/respBuf) and
// netstack.DecodeResponseInPlace remove the per-round ones.

// encodePending encodes req and builds its pending entry with a single
// allocation: the wire frame, the retained key, and (for SETs) the
// retained value are consecutive regions of one backing array. Every
// region is capacity-clipped so no later append can alias another.
func encodePending(req netstack.Request, isLoad, opFinal bool) (*pending, error) {
	frameLen := netstack.HeaderBytes + len(req.Key) + len(req.Value)
	buf := make([]byte, 0, frameLen+len(req.Key)+len(req.Value))
	buf, err := netstack.AppendRequest(buf, req)
	if err != nil {
		return nil, err
	}
	p := &pending{
		wire:    req.ReqID,
		isGet:   req.Op == netstack.OpGet,
		isSet:   req.Op == netstack.OpSet,
		isLoad:  isLoad,
		opFinal: opFinal,
	}
	n := len(buf)
	p.frame = buf[:n:n]
	buf = append(buf, req.Key...)
	p.key = buf[n:len(buf):len(buf)]
	if p.isSet {
		n = len(buf)
		buf = append(buf, req.Value...)
		p.value = buf[n:len(buf):len(buf)]
	}
	return p, nil
}

// HostProfile is the host-side wall-clock breakdown of the lockstep
// rounds executed so far, accumulated per phase. It exists for scale
// tests and profiling runs — router overhead (generate+fill+drain)
// versus node execution (run) — and is never serialized into a Result,
// so artifacts stay timing-free and byte-reproducible.
type HostProfile struct {
	Rounds     uint64
	GenerateNS uint64
	FillNS     uint64
	RunNS      uint64
	DrainNS    uint64
}

// TotalNS is the accumulated wall-clock of all phases.
func (p HostProfile) TotalNS() uint64 {
	return p.GenerateNS + p.FillNS + p.RunNS + p.DrainNS
}

// RouterShare is the fraction of round wall-clock spent outside node
// execution — the router-side overhead the scale criterion bounds.
func (p HostProfile) RouterShare() float64 {
	total := p.TotalNS()
	if total == 0 {
		return 0
	}
	return float64(p.GenerateNS+p.FillNS+p.DrainNS) / float64(total)
}

// HostProfile returns the accumulated per-phase host timing.
func (c *Cluster) HostProfile() HostProfile { return c.prof }
