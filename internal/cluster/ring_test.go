package cluster

import (
	"testing"

	"rcoe/internal/workload"
)

func TestRingEmptyAndSingle(t *testing.T) {
	r := NewRing(16)
	if _, ok := r.Lookup([]byte("user00000001")); ok {
		t.Fatal("empty ring returned a shard")
	}
	if got := r.Shards(); len(got) != 0 {
		t.Fatalf("empty ring shards = %v", got)
	}
	r.Add(7)
	for i := uint64(0); i < 100; i++ {
		s, ok := r.Lookup(workload.Key(i))
		if !ok || s != 7 {
			t.Fatalf("single-shard ring routed key %d to (%d, %v)", i, s, ok)
		}
	}
	r.Remove(7)
	if _, ok := r.Lookup([]byte("k")); ok {
		t.Fatal("ring still routes after removing its only shard")
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(0) // DefaultVNodes
	const shards = 4
	for s := 0; s < shards; s++ {
		r.Add(s)
	}
	const keys = 10_000
	counts := make([]int, shards)
	for i := uint64(0); i < keys; i++ {
		s, ok := r.Lookup(workload.Key(i))
		if !ok {
			t.Fatal("lookup failed")
		}
		counts[s]++
	}
	for s, n := range counts {
		// Perfect balance is 2500; consistent hashing with 64 vnodes
		// should land every shard within a loose 2x band.
		if n < keys/(2*shards) || n > keys/shards*2 {
			t.Fatalf("shard %d owns %d of %d keys (counts %v)", s, n, keys, counts)
		}
	}
}

// TestRingIdempotentMembership pins Add/Remove of present/absent shards
// as no-ops.
func TestRingIdempotentMembership(t *testing.T) {
	r := NewRing(8)
	r.Add(1)
	r.Add(1)
	if len(r.points) != 8 {
		t.Fatalf("double Add duplicated points: %d", len(r.points))
	}
	r.Remove(2) // absent
	if len(r.points) != 8 || r.Size() != 1 {
		t.Fatalf("Remove of absent shard mutated ring: %d points, %d shards",
			len(r.points), r.Size())
	}
}

// TestRingRemapStability is the consistent-hashing property: removing
// one shard remaps ONLY the keys that shard owned — every key owned by a
// surviving shard keeps its owner. And re-adding the shard restores the
// original partition exactly (the failover-replacement guarantee: a
// replacement booted under the dead shard's ID sees the same keyspace).
func TestRingRemapStability(t *testing.T) {
	const shards, keys = 5, 5_000
	r := NewRing(0)
	for s := 0; s < shards; s++ {
		r.Add(s)
	}
	before := make([]int, keys)
	for i := range before {
		s, ok := r.Lookup(workload.Key(uint64(i)))
		if !ok {
			t.Fatal("lookup failed")
		}
		before[i] = s
	}

	const victim = 2
	r.Remove(victim)
	moved := 0
	for i := range before {
		s, ok := r.Lookup(workload.Key(uint64(i)))
		if !ok {
			t.Fatal("lookup failed after removal")
		}
		if before[i] == victim {
			moved++
			if s == victim {
				t.Fatalf("key %d still routed to removed shard", i)
			}
			continue
		}
		if s != before[i] {
			t.Fatalf("key %d moved from surviving shard %d to %d", i, before[i], s)
		}
	}
	if moved == 0 {
		t.Fatal("victim shard owned no keys; test vacuous")
	}

	r.Add(victim)
	for i := range before {
		s, _ := r.Lookup(workload.Key(uint64(i)))
		if s != before[i] {
			t.Fatalf("re-adding shard did not restore partition: key %d %d->%d",
				i, before[i], s)
		}
	}
}

// TestRingOrderIndependence pins that the partition depends only on the
// member set, not insertion order.
func TestRingOrderIndependence(t *testing.T) {
	a, b := NewRing(32), NewRing(32)
	for _, s := range []int{0, 1, 2, 3} {
		a.Add(s)
	}
	for _, s := range []int{3, 1, 0, 2} {
		b.Add(s)
	}
	for i := uint64(0); i < 2_000; i++ {
		sa, _ := a.Lookup(workload.Key(i))
		sb, _ := b.Lookup(workload.Key(i))
		if sa != sb {
			t.Fatalf("insertion order changed routing of key %d: %d vs %d", i, sa, sb)
		}
	}
}
