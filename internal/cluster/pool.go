package cluster

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Shard-parallel execution. During the run phase of a lockstep round
// every shard's node advances by the same chunk with no interaction —
// frames were injected during fill, responses are collected during
// drain, and nodes share no mutable state — so the chunk executions
// are embarrassingly parallel on the host. runShards is the fork-join
// pool behind that: it exists per call (no persistent goroutines to
// leak from a Cluster that is simply dropped), is bounded by the
// worker count, and preserves the serial path's failure semantics.
//
// Determinism is unaffected by construction: the pool only decides
// *when on the host* each shard's chunk runs, never what it computes —
// each node's execution is a pure function of its injected frames and
// its own simulated state. Everything order-sensitive (wire-ID
// assignment, the acked-write ledger, retry/backoff bookkeeping)
// happens in fill/drain, which stay serialized in shard-ID order on
// the coordinator goroutine.

// runShards runs fn(i) for every i in [0, n) on at most workers
// goroutines. workers <= 1 (or n <= 1) runs inline on the caller's
// goroutine — byte-for-byte today's serial behavior, including a panic
// propagating before later shards run. In the parallel case a panicking
// fn cannot be allowed to unwind its worker goroutine (that would kill
// the process and deadlock nothing — Go aborts), so panics are captured
// per index and the lowest-index one is re-raised on the caller after
// the barrier, with its original value: the caller observes the same
// panic a serial run would have surfaced first.
func runShards(workers, n int, fn func(int)) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panics   = make([]any, n)
		panicked atomic.Bool
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panics[i] = r
							panicked.Store(true)
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		for _, p := range panics {
			if p != nil {
				panic(p)
			}
		}
	}
}
