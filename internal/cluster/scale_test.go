package cluster

import (
	"testing"

	"rcoe/internal/core"
	"rcoe/internal/workload"
)

// Round-throughput benchmarks and the million-key scale proof.
//
// The cluster's host cost per lockstep round splits into node
// execution (the chunk each shard's replicated machine simulates) and
// router overhead (generate/fill/drain on the coordinator). The
// benchmarks here record rounds/sec and the 1-vs-N-worker host speedup
// on an 8-shard fleet; the million-key test checks that with Records
// at production scale the router side stays a bounded sliver (<10%) of
// round wall-clock. Simulated results are identical at every worker
// count — only host time moves.

// scaleOptions is the 8-shard fleet the scale suite runs: unreplicated
// nodes (base mode keeps wall-clock about per-record work, not
// redundancy) serving YCSB-B.
func scaleOptions(records, operations uint64) Options {
	opts := Options{
		Shards: 8,
		System: core.Config{Mode: core.ModeNone, Replicas: 1, TickCycles: 50_000},
		// A scale fleet runs a longer lockstep chunk than the default
		// 2k cycles: the round barrier (generate/fill/drain on the
		// coordinator) is paid once per round, so chunk length is the
		// amortization lever for router overhead.
		ChunkCycles: 20_000,
		Workload:    workload.YCSBB,
		Records:     records,
		Operations:  operations,
		Seed:        11,
	}
	opts.Slots = scaleSlots(opts)
	return opts
}

// scaleSlots sizes the per-shard hash table from the actual ring
// partition instead of the conservative whole-keyspace default: at a
// million records the default would be a ~600 MiB table per shard,
// while the ring places only ~1/Shards of the keys (plus imbalance) on
// each. Twice the most-loaded shard's key count keeps the linear-probe
// load factor under one half.
func scaleSlots(opts Options) uint64 {
	ring := NewRingFromShards(opts.Shards, opts.VNodes)
	counts := make([]uint64, opts.Shards)
	for i := uint64(0); i < opts.Records; i++ {
		if id, ok := ring.Lookup(workload.Key(i)); ok {
			counts[id]++
		}
	}
	var maxCount uint64
	for _, n := range counts {
		if n > maxCount {
			maxCount = n
		}
	}
	return nextPow2(maxCount*2 + 64)
}

// dmrFleetOptions is the replicated 8-shard fleet (LC-DMR per shard)
// the round benchmarks use — the paper's configuration at cluster
// scale, with enough queued operations that generation never dries up
// mid-measurement.
func dmrFleetOptions() Options {
	return Options{
		Shards:     8,
		System:     core.Config{Mode: core.ModeLC, Replicas: 2, TickCycles: 50_000},
		Workload:   workload.YCSBB,
		Records:    64,
		Operations: 1 << 40,
		Seed:       11,
	}
}

// steadyCluster builds the fleet and serves until the preload is done,
// so measured rounds are steady-state serving rounds.
func steadyCluster(tb testing.TB, opts Options) *Cluster {
	tb.Helper()
	c, err := New(opts)
	if err != nil {
		tb.Fatal(err)
	}
	for !c.LoadPhaseDone() {
		c.Step()
	}
	return c
}

// BenchmarkClusterRound measures steady-state lockstep rounds per
// second on the 8-shard LC-DMR fleet at the default worker count.
func BenchmarkClusterRound(b *testing.B) {
	c := steadyCluster(b, dmrFleetOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rounds/s")
	b.ReportMetric(c.HostProfile().RouterShare()*100, "router-%")
}

// BenchmarkClusterRoundSpeedup runs the same fixed round count on the
// 8-shard fleet serially (ShardWorkers=1) and with the host pool
// (ShardWorkers=0 — all cores) and reports the wall-clock ratio as
// `speedup`:
//
//	go test ./internal/cluster -bench ClusterRoundSpeedup -benchtime 1x
//
// The run phase is embarrassingly parallel (8 independent nodes per
// round), so on an 8-core host the speedup approaches the core count;
// on a single-core host it records ~1x. EXPERIMENTS.md records the
// measured number. Artifacts are byte-identical either way.
func BenchmarkClusterRoundSpeedup(b *testing.B) {
	const rounds = 256
	measure := func(workers int) float64 {
		opts := dmrFleetOptions()
		opts.ShardWorkers = workers
		c := steadyCluster(b, opts)
		before := c.HostProfile()
		for i := 0; i < rounds; i++ {
			c.Step()
		}
		after := c.HostProfile()
		return float64(after.TotalNS()-before.TotalNS()) / 1e9
	}
	for i := 0; i < b.N; i++ {
		serial := measure(1)
		parallel := measure(0)
		b.ReportMetric(serial/parallel, "speedup")
		b.ReportMetric(serial, "serial-s")
		b.ReportMetric(parallel, "parallel-s")
		b.ReportMetric(float64(rounds)/parallel, "rounds/s")
	}
}

// BenchmarkClusterMillionKey is the million-key scale configuration:
// one million records preloaded through the ring onto 8 shards, then a
// serving phase, with the router-share of round wall-clock reported.
// Run it explicitly (it preloads a million records through the
// simulated nodes, minutes of host time):
//
//	go test ./internal/cluster -bench ClusterMillionKey -benchtime 1x
func BenchmarkClusterMillionKey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := scaleOptions(1_000_000, 2_000)
		c, err := New(opts)
		if err != nil {
			b.Fatal(err)
		}
		res, err := c.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.Ops != opts.Operations || res.Errors != 0 || res.Corruptions != 0 {
			b.Fatalf("ops=%d errors=%d corrupt=%d", res.Ops, res.Errors, res.Corruptions)
		}
		prof := c.HostProfile()
		b.ReportMetric(float64(prof.Rounds)/b.Elapsed().Seconds(), "rounds/s")
		b.ReportMetric(prof.RouterShare()*100, "router-%")
		b.ReportMetric(float64(opts.Slots), "slots/shard")
	}
}

// TestClusterMillionKeyScale is the scale smoke: a scaled-down (but
// still 10^5-key) version of the million-key configuration must
// complete cleanly with the router side under 10% of round wall-clock,
// pinning that per-round router cost is bounded by the serving windows
// — not by Records. -short scales the keyspace down further for CI.
func TestClusterMillionKeyScale(t *testing.T) {
	records := uint64(100_000)
	if testing.Short() {
		records = 25_000
	}
	opts := scaleOptions(records, 400)
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != opts.Operations || res.Errors != 0 || res.Corruptions != 0 {
		t.Fatalf("ops=%d errors=%d corrupt=%d", res.Ops, res.Errors, res.Corruptions)
	}
	prof := c.HostProfile()
	if prof.Rounds == 0 {
		t.Fatal("no rounds profiled")
	}
	if share := prof.RouterShare(); share >= 0.10 {
		t.Fatalf("router share %.1f%% of round wall-clock, want < 10%%", share*100)
	}
}
