package cluster

import (
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sort"
	"time"
	"unsafe"

	"rcoe/internal/core"
	"rcoe/internal/exp"
	"rcoe/internal/harness"
	"rcoe/internal/metrics"
	"rcoe/internal/netstack"
	"rcoe/internal/snapshot"
	"rcoe/internal/workload"
)

// Options configures a cluster run.
type Options struct {
	// Shards is the node count; each shard is one independently
	// replicated harness.Node.
	Shards int
	// VNodes is the consistent-hash virtual-node count per shard
	// (DefaultVNodes when 0).
	VNodes int
	// System is the per-shard replication configuration (every shard
	// runs the same configuration at boot; redundancy can then be
	// changed per shard at runtime).
	System core.Config
	// Workload is the YCSB mix.
	Workload workload.Kind
	// Records is the cluster-wide preloaded record count, partitioned
	// over the shards by the ring.
	Records uint64
	// Operations is the total run-phase operation count across all
	// client streams.
	Operations uint64
	// Streams is the number of independent client streams (default:
	// one per shard). Each stream derives its own seed, so the global
	// request sequence is independent of host scheduling.
	Streams int
	// Window is the per-shard outstanding-request window (default 8).
	Window int
	// Slots is the per-shard server hash-table size (sized from
	// Records when 0).
	Slots uint64
	// TraceOutput controls FT_Add_Trace on responses.
	TraceOutput bool
	// Seed makes the whole cluster run deterministic.
	Seed uint64
	// MaxCycles bounds the run in cluster cycles (rounds x chunk).
	MaxCycles uint64
	// ChunkCycles is the lockstep round length (default 2000): each
	// round fills every shard, advances every node by this many
	// cycles, then drains every shard.
	ChunkCycles uint64
	// RetryCycles, RetryBackoff and MaxRetries mirror the single-node
	// client's retransmission policy, applied per shard.
	RetryCycles  uint64
	RetryBackoff bool
	MaxRetries   int
	// CheckpointRounds, when nonzero, checkpoints every live shard
	// every N rounds, truncating its acked-write replay log — the
	// periodic state-transfer basis for fast failover.
	CheckpointRounds uint64
	// HotKeyFraction redirects this fraction of run-phase operations
	// to a single hot key, concentrating load on one shard (the skew
	// campaign). 0 disables.
	HotKeyFraction float64
	// ShardWorkers bounds the host goroutines that advance shard nodes
	// concurrently during the run phase of each lockstep round (and the
	// per-shard end-of-run audit). 0 selects the host core count; 1
	// reproduces fully serial execution. Fill and drain stay serialized
	// in shard-ID order at any setting, so the worker count is invisible
	// in every artifact byte.
	ShardWorkers int
	// Pipeline is the number of consecutive operations the scheduler
	// draws from one client stream per visit before moving to the next
	// stream, letting each stream keep up to Pipeline operations in
	// flight back to back. 1 (the default) is strict per-op round-robin
	// — today's behavior, with retry/backoff and opsDropped accounting
	// bit-identical.
	Pipeline int
}

// ackBudgetCycles bounds, in cluster cycles, how long a single-shard
// pump (state-transfer replay, end-of-run audit) or a whole-cluster
// stall watch may run without progress before giving up. Expressed in
// cycles — not iterations — so a non-default ChunkCycles does not
// silently change failover or audit pacing; the round count is always
// ackBudgetCycles / ChunkCycles (80M cycles = 40k rounds at the default
// 2000-cycle chunk, the budget the layer shipped with).
const ackBudgetCycles = 80_000_000

// replayBatch is how many acked writes (state transfer) or audit reads
// (VerifyAcked) are kept in flight per shard at a time. Small enough to
// fit any window, large enough to amortize the pump loop.
const replayBatch = 8

// ShardStats is one shard's slice of a cluster result.
type ShardStats struct {
	ID int `json:"id"`
	// Ops is the number of run-phase operations whose final request
	// this shard acknowledged.
	Ops uint64 `json:"ops"`
	// Responses counts every frame the shard sent back.
	Responses uint64 `json:"responses"`
	// Alive is the shard's replica count at the end of the run.
	Alive int `json:"alive"`
	// Failovers counts node replacements on this shard.
	Failovers int `json:"failovers"`
	// Detections counts the shard's recorded detection events.
	Detections int    `json:"detections"`
	Halted     bool   `json:"halted,omitempty"`
	HaltReason string `json:"halt_reason,omitempty"`
}

// Result is a cluster run's outcome.
type Result struct {
	// Ops is completed run-phase operations; Cycles the cluster cycles
	// the run phase consumed (rounds x chunk — every shard advances in
	// lockstep, so cluster time is well defined even across failovers
	// that restart a node's local clock); Throughput is fleet ops per
	// million cluster cycles.
	Ops        uint64  `json:"ops"`
	Cycles     uint64  `json:"cycles"`
	Throughput float64 `json:"throughput"`
	// Corruptions counts CRC-mismatched GET responses; Errors other
	// client-visible failures (persistent loss, server errors).
	Corruptions uint64 `json:"corruptions"`
	Errors      uint64 `json:"errors"`
	// LostWrites is the number of acknowledged writes the final
	// read-back audit could not observe (filled by VerifyAcked; the
	// failover acceptance criterion is 0).
	LostWrites uint64 `json:"lost_writes"`
	// AckedWrites is the audit population behind LostWrites.
	AckedWrites uint64       `json:"acked_writes"`
	Shards      []ShardStats `json:"shards"`
	// Metrics is the fleet-wide merged metric snapshot (only when the
	// system configuration enables tracing).
	Metrics *metrics.Snapshot `json:"metrics,omitempty"`
}

// pending is one routed request: queued, then in flight until its
// acknowledgement (or retry exhaustion).
type pending struct {
	wire    uint32
	frame   []byte
	key     []byte
	value   []byte // SET payload, retained for the acked-write ledger
	sentAt  uint64 // shard-local node cycle of last transmission
	retries int
	isGet   bool
	isSet   bool
	isLoad  bool
	opFinal bool
}

// ackedWrite is one acknowledged SET, in acknowledgement order — the
// replay unit of shard state transfer.
type ackedWrite struct {
	key   []byte
	value []byte
}

// shard is one node plus its client-side routing state.
type shard struct {
	id          int
	node        *harness.Node
	queue       []*pending
	outstanding map[uint32]*pending
	// lastCkpt is the latest checkpoint image; replay the acked writes
	// on top of it to rebuild the shard's authoritative state.
	lastCkpt  []byte
	replay    []ackedWrite
	stats     ShardStats
	loadQueue int // load-phase requests still queued or in flight here
	// Round-scratch buffers, reused across rounds so the fill/drain hot
	// path is allocation-amortized: idsBuf backs the sorted
	// retransmission scan, respBuf the drained response frames.
	idsBuf  []uint32
	respBuf [][]byte
}

// ErrClusterStall reports a cluster making no progress without every
// shard having halted.
var ErrClusterStall = errors.New("cluster: no progress")

// Cluster is a constructed, steppable sharded system.
type Cluster struct {
	opts   Options
	ring   *Ring
	shards []*shard

	streams     []*workload.Generator
	streamQuota []uint64
	streamSent  []uint64
	rrStream    int
	rrBurst     int // consecutive draws taken from rrStream this visit

	hotRng uint64
	hotKey []byte

	nextWire   uint32
	rounds     uint64
	startRound uint64
	endRound   uint64
	loadLeft   int
	opsDone    uint64
	opsDropped uint64
	res        Result

	// expected is the acknowledged-write ledger: the last value the
	// cluster acknowledged for each key. VerifyAcked audits it.
	expected map[string][]byte

	// prof accumulates host-side wall-clock per round phase. Host time
	// never enters a Result — it exists so scale tests and profiling
	// runs can attribute round cost to router vs node execution.
	prof HostProfile
}

// New builds the cluster: boots every shard, places them on the ring,
// seeds the client streams, and routes the preload.
func New(opts Options) (*Cluster, error) {
	if opts.Shards <= 0 {
		return nil, fmt.Errorf("cluster: need at least 1 shard, got %d", opts.Shards)
	}
	if opts.Streams <= 0 {
		opts.Streams = opts.Shards
	}
	if opts.Window <= 0 {
		opts.Window = 8
	}
	if opts.Pipeline <= 0 {
		opts.Pipeline = 1
	}
	if opts.ChunkCycles == 0 {
		opts.ChunkCycles = 2_000
	}
	if opts.MaxCycles == 0 {
		opts.MaxCycles = 2_000_000_000
	}
	if opts.Slots == 0 {
		// Each shard owns ~1/Shards of the keyspace, but consistent
		// hashing is not perfectly balanced; size every table for half
		// the full keyspace so no shard can overflow.
		opts.Slots = nextPow2(opts.Records*2 + 64)
	}
	c := &Cluster{
		opts: opts,
		ring: NewRing(opts.VNodes),
		// The ledger holds one entry per record after preload; growing a
		// million-entry map incrementally costs more host time in drain
		// than the inserts themselves, so claim the space up front.
		expected: make(map[string][]byte, opts.Records),
		hotKey:   workload.Key(0),
	}
	for i := 0; i < opts.Shards; i++ {
		node, err := c.bootNode()
		if err != nil {
			return nil, fmt.Errorf("cluster: boot shard %d: %w", i, err)
		}
		c.shards = append(c.shards, &shard{
			id: i, node: node,
			outstanding: make(map[uint32]*pending, opts.Window),
			stats:       ShardStats{ID: i},
		})
		c.ring.Add(i)
	}
	// Per-stream generators over the GLOBAL keyspace; the router, not
	// the stream, decides shard placement.
	c.streamQuota = make([]uint64, opts.Streams)
	c.streamSent = make([]uint64, opts.Streams)
	for i := 0; i < opts.Streams; i++ {
		c.streams = append(c.streams,
			workload.NewGenerator(opts.Workload, opts.Records, exp.DeriveSeed(opts.Seed, i)))
		c.streamQuota[i] = opts.Operations / uint64(opts.Streams)
		if uint64(i) < opts.Operations%uint64(opts.Streams) {
			c.streamQuota[i]++
		}
	}
	if opts.HotKeyFraction > 0 {
		c.hotRng = exp.DeriveSeed(opts.Seed, opts.Streams)
	}
	// Route the preload: every record SET once, by ring placement.
	for i := uint64(0); i < opts.Records; i++ {
		c.route(netstack.Request{Op: netstack.OpSet, Key: workload.Key(i), Value: workload.Value(i, 0)},
			true, false)
	}
	c.loadLeft = int(opts.Records)
	// The preload split is now known: every one of a shard's queued
	// loads becomes a replay-log entry before the first checkpoint can
	// truncate it, so reserving loadQueue capacity here removes the
	// append-growth copies from the drain hot path at scale.
	for _, sh := range c.shards {
		sh.replay = make([]ackedWrite, 0, sh.loadQueue)
	}
	return c, nil
}

// bootNode builds one shard node with the cluster's common options.
func (c *Cluster) bootNode() (*harness.Node, error) {
	return harness.NewNode(harness.NodeOptions{
		System:      c.opts.System,
		Slots:       c.opts.Slots,
		TraceOutput: c.opts.TraceOutput,
		// Serving nodes never exhaust their budget mid-run; the client,
		// not the server, decides when the run is over.
	})
}

func nextPow2(v uint64) uint64 {
	p := uint64(64)
	for p < v {
		p <<= 1
	}
	return p
}

// route assigns the request a cluster-unique wire ID, encodes it, and
// queues it on the owning shard. The pending's frame, retained key and
// retained SET value all live in one backing allocation (encodePending)
// — three per-op allocations folded into one on the router hot path.
func (c *Cluster) route(req netstack.Request, isLoad, opFinal bool) {
	id, ok := c.ring.Lookup(req.Key)
	if !ok {
		c.res.Errors++
		return
	}
	c.nextWire++
	req.ReqID = c.nextWire
	p, err := encodePending(req, isLoad, opFinal)
	if err != nil {
		c.res.Errors++
		return
	}
	sh := c.shards[id]
	sh.queue = append(sh.queue, p)
	if isLoad {
		sh.loadQueue++
	}
}

func (c *Cluster) hotFloat() float64 {
	x := c.hotRng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	c.hotRng = x
	return float64(x>>11) / float64(1<<53)
}

// totalOps returns the run-phase operation target.
func (c *Cluster) totalOps() uint64 { return c.opts.Operations }

// generate tops up the shard queues from the client streams,
// round-robin so no stream starves, bounded so a hot shard cannot grow
// its queue without limit.
func (c *Cluster) generate() {
	queueCap := c.opts.Shards * c.opts.Window * 8
	for {
		queued, unsaturated := 0, false
		for _, sh := range c.shards {
			backlog := len(sh.queue) + len(sh.outstanding)
			queued += len(sh.queue)
			if backlog < c.opts.Window {
				unsaturated = true
			}
		}
		if !unsaturated || queued >= queueCap {
			return
		}
		op, ok := c.nextOp()
		if !ok {
			return
		}
		for i, req := range op {
			c.route(req, false, i == len(op)-1)
		}
	}
}

// nextOp draws the next operation from the streams in round-robin
// order; ok is false when every stream has issued its quota. With
// Pipeline K > 1, up to K consecutive operations come from the same
// stream before the scheduler moves on, so a stream can pipeline K
// requests back to back; at K=1 this is strict per-op round-robin.
func (c *Cluster) nextOp() ([]netstack.Request, bool) {
	for tries := 0; tries <= len(c.streams); tries++ {
		i := c.rrStream
		if c.streamSent[i] >= c.streamQuota[i] {
			c.rrStream = (c.rrStream + 1) % len(c.streams)
			c.rrBurst = 0
			continue
		}
		c.streamSent[i]++
		c.rrBurst++
		if c.rrBurst >= c.opts.Pipeline {
			c.rrStream = (c.rrStream + 1) % len(c.streams)
			c.rrBurst = 0
		}
		op := c.streams[i].Next()
		if c.opts.HotKeyFraction > 0 && c.hotFloat() < c.opts.HotKeyFraction {
			// Redirect the whole operation to the hot key. Values stay
			// CRC-valid; only placement changes.
			for j := range op {
				op[j].Key = c.hotKey
			}
		}
		return op, true
	}
	return nil, false
}

// fill keeps one shard's window full, mirroring the single-node
// client's retransmission policy (sorted-ID walk, capped backoff,
// bounded retries surfacing as client-visible errors).
func (c *Cluster) fill(sh *shard) {
	now := sh.node.Now()
	retry := c.opts.RetryCycles
	if retry == 0 {
		retry = 4_000_000
	}
	maxRetries := c.opts.MaxRetries
	if maxRetries <= 0 {
		maxRetries = 5
	}
	ids := sh.idsBuf[:0]
	for id := range sh.outstanding {
		ids = append(ids, id)
	}
	sh.idsBuf = ids
	slices.Sort(ids)
	for _, id := range ids {
		p := sh.outstanding[id]
		timeout := retry
		if c.opts.RetryBackoff && p.retries > 0 {
			shift := p.retries
			if shift > 3 {
				shift = 3
			}
			timeout = retry << uint(shift)
		}
		if now-p.sentAt < timeout {
			continue
		}
		if p.retries >= maxRetries {
			delete(sh.outstanding, id)
			c.res.Errors++
			if p.isLoad {
				c.loadLeft--
				sh.loadQueue--
			} else if p.opFinal {
				c.opsDropped++
			}
			continue
		}
		p.retries++
		p.sentAt = now
		sh.node.InjectRetained(p.frame)
	}
	for len(sh.outstanding) < c.opts.Window && len(sh.queue) > 0 {
		p := sh.queue[0]
		sh.queue = sh.queue[1:]
		p.sentAt = now
		sh.outstanding[p.wire] = p
		sh.node.InjectRetained(p.frame)
	}
}

// drain processes one shard's responses: ledger updates for acked SETs,
// CRC validation for GETs, duplicate suppression for retransmits. The
// response slice is reused across rounds and each frame is decoded in
// place (the value is validated and dropped before the next iteration),
// so a steady-state drain allocates nothing per response.
func (c *Cluster) drain(sh *shard) {
	frames := sh.node.DrainResponses(sh.respBuf[:0])
	sh.respBuf = frames
	for _, frame := range frames {
		sh.stats.Responses++
		resp, err := netstack.DecodeResponseInPlace(frame)
		if err != nil {
			c.res.Errors++
			continue
		}
		p, ok := sh.outstanding[resp.ReqID]
		if !ok {
			continue // duplicate of a retried request
		}
		delete(sh.outstanding, resp.ReqID)
		if p.isSet && resp.Status == netstack.StatusOK {
			// The write is now acknowledged: it enters the cluster
			// ledger and the shard's replay log, in ack order. The map
			// key aliases the pending's retained key bytes instead of
			// copying them — safe because encodePending's backing array
			// is never written after encoding (the replay log shares
			// the same bytes on the same contract), and it matters at
			// scale: a million-record preload would otherwise allocate
			// a million string copies inside drain, and the GC assists
			// they trigger land on the router's side of the ledger.
			c.expected[unsafe.String(unsafe.SliceData(p.key), len(p.key))] = p.value
			sh.replay = append(sh.replay, ackedWrite{key: p.key, value: p.value})
		}
		if p.isLoad {
			c.loadLeft--
			sh.loadQueue--
			if c.loadLeft == 0 {
				c.startRound = c.rounds
			}
			continue
		}
		if p.isGet {
			switch {
			case resp.Status != netstack.StatusOK:
				c.res.Errors++
			case !workload.CheckValue(resp.Value):
				c.res.Corruptions++
			}
		}
		if p.opFinal {
			c.opsDone++
			sh.stats.Ops++
		}
	}
}

// workers returns the effective shard-worker count (0 = host cores).
func (c *Cluster) workers() int {
	if c.opts.ShardWorkers > 0 {
		return c.opts.ShardWorkers
	}
	return runtime.NumCPU()
}

// Step advances the cluster one lockstep round: fill every shard,
// advance every node by the chunk, drain every shard. Fill and drain
// run serialized in shard-ID order on the caller's goroutine — they
// own everything order-sensitive (wire IDs, the acked-write ledger,
// retry state). The chunk executions between them share nothing and
// run concurrently on up to ShardWorkers host goroutines; see pool.go
// for why that is invisible in the results.
func (c *Cluster) Step() {
	t0 := time.Now()
	c.generate()
	t1 := time.Now()
	for _, sh := range c.shards {
		c.fill(sh)
	}
	t2 := time.Now()
	runShards(c.workers(), len(c.shards), func(i int) {
		c.shards[i].node.RunCycles(c.opts.ChunkCycles)
	})
	t3 := time.Now()
	for _, sh := range c.shards {
		c.drain(sh)
	}
	t4 := time.Now()
	c.prof.Rounds++
	c.prof.GenerateNS += uint64(t1.Sub(t0))
	c.prof.FillNS += uint64(t2.Sub(t1))
	c.prof.RunNS += uint64(t3.Sub(t2))
	c.prof.DrainNS += uint64(t4.Sub(t3))
	c.rounds++
	if c.opts.CheckpointRounds != 0 && c.rounds%c.opts.CheckpointRounds == 0 {
		for _, sh := range c.shards {
			if halted, _ := sh.node.Halted(); !halted {
				_ = c.Checkpoint(sh.id)
			}
		}
	}
}

// Done reports whether the run phase completed (every operation
// acknowledged or accounted for as a client-visible error).
func (c *Cluster) Done() bool {
	return c.loadLeft <= 0 && c.opsDone+c.opsDropped >= c.totalOps()
}

// LoadPhaseDone reports whether the preload completed.
func (c *Cluster) LoadPhaseDone() bool { return c.loadLeft <= 0 }

// Node returns shard id's node (scenario drivers reach through for
// redundancy control and fault injection).
func (c *Cluster) Node(id int) *harness.Node { return c.shards[id].node }

// Rounds returns the lockstep rounds executed so far.
func (c *Cluster) Rounds() uint64 { return c.rounds }

// Ring returns the router's hash ring.
func (c *Cluster) Ring() *Ring { return c.ring }

// OpsDone returns completed run-phase operations so far.
func (c *Cluster) OpsDone() uint64 { return c.opsDone }

// Checkpoint snapshots shard id's node and truncates its replay log:
// subsequent failover restores the checkpoint and replays only the
// writes acknowledged since.
func (c *Cluster) Checkpoint(id int) error {
	sh := c.shards[id]
	ckpt, err := snapshot.Save(sh.node)
	if err != nil {
		return fmt.Errorf("cluster: checkpoint shard %d: %w", id, err)
	}
	sh.lastCkpt = ckpt
	sh.replay = sh.replay[:0]
	return nil
}

// Failover replaces shard id's node wholesale — the crash-and-replace
// path. The dead node's state is discarded (any responses still in its
// NIC are lost with it); a fresh node is booted, the last checkpoint
// (if any) is restored into it, the acked writes since that checkpoint
// are replayed in acknowledgement order, and the shard's in-flight
// window is retransmitted. Because the ledger writes land before the
// retransmits, every acknowledged value is re-established before any
// in-flight request can observe the shard — zero acknowledged writes
// are lost. The shard keeps its ID, so the ring partition is unchanged.
func (c *Cluster) Failover(id int) error {
	sh := c.shards[id]
	node, err := c.bootNode()
	if err != nil {
		return fmt.Errorf("cluster: failover shard %d: boot: %w", id, err)
	}
	if sh.lastCkpt != nil {
		if err := snapshot.Restore(node, sh.lastCkpt); err != nil {
			return fmt.Errorf("cluster: failover shard %d: restore: %w", id, err)
		}
	}
	sh.node = node
	if err := c.replayAcked(sh); err != nil {
		return err
	}
	// Retransmit the in-flight window against the new node's clock.
	// The requests are idempotent (SETs carry full values, GETs are
	// reads), so re-execution after the replay is safe.
	now := sh.node.Now()
	ids := make([]uint32, 0, len(sh.outstanding))
	for wid := range sh.outstanding {
		ids = append(ids, wid)
	}
	slices.Sort(ids)
	for _, wid := range ids {
		p := sh.outstanding[wid]
		p.sentAt = now
		p.retries = 0
		sh.node.InjectRetained(p.frame)
	}
	sh.stats.Failovers++
	return nil
}

// replayAcked re-applies a shard's post-checkpoint acked writes to its
// (fresh or restored) node, in acknowledgement order, waiting for each
// batch to be acknowledged before the shard re-enters service.
func (c *Cluster) replayAcked(sh *shard) error {
	const batch = replayBatch
	for start := 0; start < len(sh.replay); start += batch {
		end := start + batch
		if end > len(sh.replay) {
			end = len(sh.replay)
		}
		want := make(map[uint32]bool)
		for _, w := range sh.replay[start:end] {
			c.nextWire++
			frame, err := netstack.EncodeRequest(netstack.Request{
				Op: netstack.OpSet, ReqID: c.nextWire, Key: w.key, Value: w.value,
			})
			if err != nil {
				return fmt.Errorf("cluster: replay encode: %w", err)
			}
			want[c.nextWire] = true
			sh.node.InjectRetained(frame)
		}
		if err := c.pumpUntilAcked(sh, want); err != nil {
			return fmt.Errorf("cluster: shard %d state transfer: %w", sh.id, err)
		}
	}
	return nil
}

// ackBudgetRounds converts the cycle budget into pump iterations at the
// configured chunk, so non-default chunk sizes keep the same cycle
// budget rather than silently scaling it.
func (c *Cluster) ackBudgetRounds() uint64 {
	r := ackBudgetCycles / c.opts.ChunkCycles
	if r == 0 {
		r = 1
	}
	return r
}

// pumpUntilAcked runs one shard's node, one chunk at a time, until
// every wanted wire ID has been acknowledged with StatusOK or the
// cycle budget runs out.
func (c *Cluster) pumpUntilAcked(sh *shard, want map[uint32]bool) error {
	for i := uint64(0); i < c.ackBudgetRounds() && len(want) > 0; i++ {
		sh.node.RunCycles(c.opts.ChunkCycles)
		if halted, reason := sh.node.Halted(); halted {
			return fmt.Errorf("node halted: %s", reason)
		}
		frames := sh.node.DrainResponses(sh.respBuf[:0])
		sh.respBuf = frames
		for _, frame := range frames {
			resp, err := netstack.DecodeResponseInPlace(frame)
			if err != nil {
				return err
			}
			if !want[resp.ReqID] {
				continue
			}
			if resp.Status != netstack.StatusOK {
				return fmt.Errorf("request %d status %d", resp.ReqID, resp.Status)
			}
			delete(want, resp.ReqID)
		}
	}
	if len(want) > 0 {
		return fmt.Errorf("%d requests unacknowledged", len(want))
	}
	return nil
}

// auditRead is one pre-encoded audit GET: the wire ID and frame are
// assigned serially (shard-ID order) before any shard is pumped, so
// the audit's request stream is independent of host scheduling.
type auditRead struct {
	wire  uint32
	frame []byte
	key   string
}

// VerifyAcked audits the acknowledged-write ledger: every key the
// cluster ever acknowledged a write for is read back through the router
// and compared byte-for-byte against the last acknowledged value.
// Returns the number of lost or corrupted acknowledged writes (the
// failover acceptance criterion is zero) and records it in the result.
//
// The per-shard audits are embarrassingly parallel — each pumps only
// its own node and reads only its slice of the (frozen) ledger — so
// they fan out across ShardWorkers host goroutines; wire-ID assignment
// happens up front on the coordinator, and the per-shard lost counts
// and errors are folded back in shard-ID order.
func (c *Cluster) VerifyAcked() (lost uint64, err error) {
	keys := make([]string, 0, len(c.expected))
	for k := range c.expected {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	// Group the audit by owning shard, then encode every read serially
	// so IDs are deterministic at any worker count.
	perShard := make([][]auditRead, len(c.shards))
	for _, k := range keys {
		id, ok := c.ring.Lookup([]byte(k))
		if !ok {
			return 0, errors.New("cluster: empty ring during audit")
		}
		c.nextWire++
		frame, ferr := netstack.EncodeRequest(netstack.Request{
			Op: netstack.OpGet, ReqID: c.nextWire, Key: []byte(k),
		})
		if ferr != nil {
			return 0, ferr
		}
		perShard[id] = append(perShard[id], auditRead{wire: c.nextWire, frame: frame, key: k})
	}
	lostPer := make([]uint64, len(c.shards))
	errPer := make([]error, len(c.shards))
	runShards(c.workers(), len(c.shards), func(id int) {
		lostPer[id], errPer[id] = c.auditShard(c.shards[id], perShard[id])
	})
	for id := range c.shards {
		if errPer[id] != nil {
			return 0, errPer[id]
		}
		lost += lostPer[id]
	}
	c.res.LostWrites = lost
	c.res.AckedWrites = uint64(len(keys))
	return lost, nil
}

// auditShard reads one shard's audit batch back through its node,
// replayBatch reads in flight at a time, and counts lost or corrupted
// acknowledged writes. It touches only this shard's node and scratch
// plus read-only ledger entries, so audits run concurrently per shard.
func (c *Cluster) auditShard(sh *shard, reads []auditRead) (lost uint64, err error) {
	for start := 0; start < len(reads); start += replayBatch {
		end := start + replayBatch
		if end > len(reads) {
			end = len(reads)
		}
		want := make(map[uint32]string, end-start)
		for _, r := range reads[start:end] {
			want[r.wire] = r.key
			sh.node.InjectRetained(r.frame)
		}
		for i := uint64(0); i < c.ackBudgetRounds() && len(want) > 0; i++ {
			sh.node.RunCycles(c.opts.ChunkCycles)
			if halted, reason := sh.node.Halted(); halted {
				return 0, fmt.Errorf("cluster: audit: shard %d halted: %s", sh.id, reason)
			}
			frames := sh.node.DrainResponses(sh.respBuf[:0])
			sh.respBuf = frames
			for _, frame := range frames {
				resp, derr := netstack.DecodeResponseInPlace(frame)
				if derr != nil {
					continue
				}
				k, ok := want[resp.ReqID]
				if !ok {
					continue
				}
				delete(want, resp.ReqID)
				if resp.Status != netstack.StatusOK || string(resp.Value) != string(c.expected[k]) {
					lost++
				}
			}
		}
		// Unanswered audit reads count as lost.
		lost += uint64(len(want))
	}
	return lost, nil
}

// Run drives the cluster to completion.
func (c *Cluster) Run() (Result, error) {
	maxRounds := c.opts.MaxCycles / c.opts.ChunkCycles
	stallRounds := c.ackBudgetRounds() // the ackBudgetCycles no-progress watch
	lastProgress := c.rounds
	lastSignal := uint64(0)
	for !c.Done() {
		if c.rounds >= maxRounds {
			break
		}
		if c.allHalted() {
			break
		}
		c.Step()
		// The progress signal must be built from monotonic counters,
		// not queue/ledger lengths: in steady state a round can drain
		// exactly as many acks into the ledger as it admits from the
		// queues, the length sum cancels to the same value every round,
		// and the watch would declare a perfectly healthy cluster
		// stalled. Drained responses only ever grow, and they grow iff
		// some shard actually served something.
		signal := c.opsDone + c.opsDropped + c.res.Errors
		for _, sh := range c.shards {
			signal += sh.stats.Responses
		}
		if signal != lastSignal {
			lastSignal = signal
			lastProgress = c.rounds
		} else if c.rounds-lastProgress > stallRounds {
			c.finalize()
			return c.res, fmt.Errorf("%w after %d ops", ErrClusterStall, c.opsDone)
		}
	}
	if c.Done() {
		c.endRound = c.rounds
	}
	c.finalize()
	return c.res, nil
}

// allHalted reports whether every shard has fail-stopped.
func (c *Cluster) allHalted() bool {
	for _, sh := range c.shards {
		if halted, _ := sh.node.Halted(); !halted {
			return false
		}
	}
	return true
}

// finalize fills the result from the current state.
func (c *Cluster) finalize() {
	c.res.Ops = c.opsDone
	end := c.endRound
	if end == 0 {
		end = c.rounds
	}
	c.res.Cycles = 0
	if c.loadLeft <= 0 && end > c.startRound {
		c.res.Cycles = (end - c.startRound) * c.opts.ChunkCycles
	}
	c.res.Throughput = 0
	if c.res.Cycles > 0 {
		c.res.Throughput = float64(c.res.Ops) / (float64(c.res.Cycles) / 1e6)
	}
	c.res.Shards = c.res.Shards[:0]
	sets := make([]*metrics.Set, 0, len(c.shards))
	for _, sh := range c.shards {
		st := sh.stats
		st.Alive = sh.node.AliveCount()
		st.Detections = len(sh.node.Detections())
		st.Halted, st.HaltReason = sh.node.Halted()
		c.res.Shards = append(c.res.Shards, st)
		sets = append(sets, sh.node.Metrics())
	}
	if c.opts.System.Trace.Enabled {
		snap := metrics.Merge(sets...).Snapshot(c.rounds * c.opts.ChunkCycles)
		c.res.Metrics = &snap
	}
}

// Snapshot returns the current result counters without ending the run.
func (c *Cluster) Snapshot() Result {
	c.finalize()
	return c.res
}

// Run is the one-call convenience wrapper: build, run, audit.
func Run(opts Options) (Result, error) {
	c, err := New(opts)
	if err != nil {
		return Result{}, err
	}
	res, err := c.Run()
	if err != nil {
		return res, err
	}
	if _, err := c.VerifyAcked(); err != nil {
		return c.Snapshot(), err
	}
	return c.Snapshot(), nil
}
