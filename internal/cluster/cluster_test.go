package cluster

import (
	"encoding/json"
	"testing"

	"rcoe/internal/core"
	"rcoe/internal/workload"
)

// testOptions is a small-but-real cluster: 3 shards of LC-DMR serving
// YCSB-B. Sized so the full suite stays in CI budget.
func testOptions() Options {
	return Options{
		Shards:     3,
		System:     core.Config{Mode: core.ModeLC, Replicas: 2, TickCycles: 50_000},
		Workload:   workload.YCSBB,
		Records:    24,
		Operations: 36,
		Seed:       7,
	}
}

func TestClusterRunAndAudit(t *testing.T) {
	res, err := Run(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 36 {
		t.Fatalf("ops = %d, want 36", res.Ops)
	}
	if res.Errors != 0 || res.Corruptions != 0 {
		t.Fatalf("errors=%d corruptions=%d, want 0/0", res.Errors, res.Corruptions)
	}
	if res.LostWrites != 0 {
		t.Fatalf("lost writes = %d, want 0", res.LostWrites)
	}
	if res.AckedWrites < 24 {
		t.Fatalf("acked writes = %d, want >= 24 (the preload)", res.AckedWrites)
	}
	if res.Throughput <= 0 {
		t.Fatalf("throughput = %v", res.Throughput)
	}
	var shardOps uint64
	for _, s := range res.Shards {
		shardOps += s.Ops
		if s.Halted {
			t.Fatalf("shard %d halted: %s", s.ID, s.HaltReason)
		}
		if s.Alive != 2 {
			t.Fatalf("shard %d alive = %d, want 2", s.ID, s.Alive)
		}
	}
	if shardOps != res.Ops {
		t.Fatalf("per-shard ops sum %d != total %d", shardOps, res.Ops)
	}
}

// TestClusterDeterminism pins that two identical runs produce identical
// results — the property the campaign layer's worker-count invariance
// rests on.
func TestClusterDeterminism(t *testing.T) {
	a, err := Run(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("two identical runs diverged:\n%s\n%s", ja, jb)
	}
}

// TestClusterFailoverZeroLostWrites is the acceptance scenario: run a
// cluster partway, checkpoint, keep serving, then kill one shard's node
// mid-run and transfer its state (checkpoint + acked-write replay) to a
// fresh node. The run completes and the final audit observes every
// acknowledged write.
func TestClusterFailoverZeroLostWrites(t *testing.T) {
	opts := testOptions()
	opts.Operations = 60
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	for !c.LoadPhaseDone() {
		c.Step()
	}
	const victim = 1
	if err := c.Checkpoint(victim); err != nil {
		t.Fatal(err)
	}
	// Serve some run-phase traffic past the checkpoint so the replay
	// log is non-empty, then crash-and-replace the victim.
	for c.OpsDone() < 20 {
		c.Step()
	}
	if err := c.Failover(victim); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != opts.Operations {
		t.Fatalf("ops = %d, want %d", res.Ops, opts.Operations)
	}
	lost, err := c.VerifyAcked()
	if err != nil {
		t.Fatal(err)
	}
	if lost != 0 {
		t.Fatalf("lost %d acknowledged writes across failover", lost)
	}
	if got := c.Snapshot().Shards[victim].Failovers; got != 1 {
		t.Fatalf("victim failovers = %d, want 1", got)
	}
}

// TestClusterFailoverWithoutCheckpoint exercises pure-replay state
// transfer: no checkpoint was ever taken, so the replacement node is
// rebuilt solely from the acked-write log.
func TestClusterFailoverWithoutCheckpoint(t *testing.T) {
	opts := testOptions()
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	for !c.LoadPhaseDone() || c.OpsDone() < 10 {
		c.Step()
	}
	if err := c.Failover(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	lost, err := c.VerifyAcked()
	if err != nil {
		t.Fatal(err)
	}
	if lost != 0 {
		t.Fatalf("lost %d acknowledged writes", lost)
	}
}

// TestClusterRollingFailover rolls a crash-and-replace through every
// shard in sequence — the rolling re-integration drill — with periodic
// checkpoints on, and audits at the end.
func TestClusterRollingFailover(t *testing.T) {
	opts := testOptions()
	opts.Operations = 48
	opts.CheckpointRounds = 2_000
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	for !c.LoadPhaseDone() {
		c.Step()
	}
	for id := 0; id < opts.Shards; id++ {
		target := c.OpsDone() + 8
		for c.OpsDone() < target && !c.Done() {
			c.Step()
		}
		if err := c.Failover(id); err != nil {
			t.Fatalf("failover shard %d: %v", id, err)
		}
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	lost, err := c.VerifyAcked()
	if err != nil {
		t.Fatal(err)
	}
	if lost != 0 {
		t.Fatalf("rolling failover lost %d acknowledged writes", lost)
	}
	res := c.Snapshot()
	for _, s := range res.Shards {
		if s.Failovers != 1 {
			t.Fatalf("shard %d failovers = %d, want 1", s.ID, s.Failovers)
		}
	}
}

// TestClusterDowngradeUnderLoad drives the per-shard redundancy knob
// while the cluster serves: one TMR shard loses a stalled replica
// (masking downgrade to DMR) without stopping the run, then
// re-integrates back to TMR.
func TestClusterDowngradeUnderLoad(t *testing.T) {
	opts := testOptions()
	opts.Shards = 2
	opts.Operations = 48
	opts.System = core.Config{
		Mode: core.ModeLC, Replicas: 3, Masking: true,
		TickCycles: 50_000, BarrierTimeout: 200_000,
	}
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	for !c.LoadPhaseDone() {
		c.Step()
	}
	const victim = 0
	c.Node(victim).InjectStall(2)
	for i := 0; i < 4_000 && c.Node(victim).AliveCount() == 3; i++ {
		c.Step()
	}
	if got := c.Node(victim).AliveCount(); got != 2 {
		t.Fatalf("victim alive = %d, want 2 (TMR->DMR under load)", got)
	}
	// The downgraded shard keeps taking run-phase traffic.
	before := c.OpsDone()
	for i := 0; i < 4_000 && c.OpsDone() < before+8 && !c.Done(); i++ {
		c.Step()
	}
	if c.OpsDone() < before+8 && !c.Done() {
		t.Fatalf("cluster stopped serving after downgrade (ops %d)", c.OpsDone())
	}
	if err := c.Node(victim).RequestReintegrate(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6_000 && c.Node(victim).AliveCount() != 3 && !c.Done(); i++ {
		c.Step()
	}
	if got := c.Node(victim).AliveCount(); got != 3 {
		_, rerr := c.Node(victim).ReintegrateOutcome()
		t.Fatalf("victim alive after reintegrate = %d, want 3 (err %v)", got, rerr)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	lost, err := c.VerifyAcked()
	if err != nil {
		t.Fatal(err)
	}
	if lost != 0 {
		t.Fatalf("downgrade run lost %d acknowledged writes", lost)
	}
	res := c.Snapshot()
	if res.Ops != opts.Operations {
		t.Fatalf("ops = %d, want %d", res.Ops, opts.Operations)
	}
	if res.Shards[victim].Detections == 0 {
		t.Fatal("victim shard recorded no detections")
	}
}

// TestClusterShardWorkerInvariance pins the tentpole contract: the
// worker count that parallelizes per-shard chunk execution (and the
// end-of-run audit) is invisible in the result — serial, adversarial
// (3 workers over 3 shards), and all-cores runs produce byte-identical
// JSON including the audit fields.
func TestClusterShardWorkerInvariance(t *testing.T) {
	var base string
	for _, workers := range []int{1, 3, 0} {
		opts := testOptions()
		opts.Operations = 48
		opts.ShardWorkers = workers
		res, err := Run(opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		j, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if base == "" {
			base = string(j)
		} else if string(j) != base {
			t.Fatalf("result differs at ShardWorkers=%d:\n%s\nvs workers=1:\n%s", workers, j, base)
		}
	}
}

// TestClusterPipelineAccounting pins that Pipeline=1 is bit-identical
// to the default scheduler (the K=1 accounting contract) and that a
// deeper pipeline still completes every operation with a clean audit.
func TestClusterPipelineAccounting(t *testing.T) {
	def, err := Run(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions()
	opts.Pipeline = 1
	k1, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	jd, _ := json.Marshal(def)
	j1, _ := json.Marshal(k1)
	if string(jd) != string(j1) {
		t.Fatalf("Pipeline=1 differs from default:\n%s\n%s", j1, jd)
	}
	opts = testOptions()
	opts.Pipeline = 4
	k4, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if k4.Ops != opts.Operations || k4.Errors != 0 || k4.LostWrites != 0 {
		t.Fatalf("Pipeline=4: ops=%d errors=%d lost=%d", k4.Ops, k4.Errors, k4.LostWrites)
	}
}

// TestClusterHaltParityUnderPool is the mid-round failure regression:
// one DMR shard's replica stalls and the shard fail-stops (barrier
// timeout) in the middle of the run. Under the worker pool the run
// must surface exactly the serial outcome — same error, same result
// bytes, same halt reason — rather than deadlocking the round barrier.
func TestClusterHaltParityUnderPool(t *testing.T) {
	run := func(workers int) (Result, string, string) {
		opts := testOptions()
		opts.Operations = 120
		opts.System.BarrierTimeout = 200_000
		opts.RetryCycles = 200_000
		opts.MaxRetries = 2
		opts.ShardWorkers = workers
		c, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		for !c.LoadPhaseDone() {
			c.Step()
		}
		c.Node(1).InjectStall(1)
		res, err := c.Run()
		errStr := ""
		if err != nil {
			errStr = err.Error()
		}
		res = c.Snapshot()
		if !res.Shards[1].Halted {
			t.Fatalf("workers=%d: victim shard did not halt", workers)
		}
		return res, errStr, res.Shards[1].HaltReason
	}
	serialRes, serialErr, serialReason := run(1)
	for _, workers := range []int{3, 0} {
		res, errStr, reason := run(workers)
		if errStr != serialErr {
			t.Fatalf("workers=%d error %q, serial %q", workers, errStr, serialErr)
		}
		if reason != serialReason {
			t.Fatalf("workers=%d halt reason %q, serial %q", workers, reason, serialReason)
		}
		js, _ := json.Marshal(serialRes)
		jp, _ := json.Marshal(res)
		if string(js) != string(jp) {
			t.Fatalf("workers=%d result differs from serial:\n%s\n%s", workers, jp, js)
		}
	}
}

// TestClusterParallelFailoverDrill runs the crash-and-replace drill —
// checkpoint rounds, mid-run failover, state-transfer replay, final
// audit — entirely under the worker pool. Run under -race in CI, it is
// the data-race witness for pumpUntilAcked, checkpoint rounds, and the
// parallel audit coexisting with concurrent chunk execution.
func TestClusterParallelFailoverDrill(t *testing.T) {
	opts := testOptions()
	opts.Operations = 60
	opts.CheckpointRounds = 1_000
	opts.ShardWorkers = 4
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	for !c.LoadPhaseDone() {
		c.Step()
	}
	for c.OpsDone() < 20 {
		c.Step()
	}
	if err := c.Failover(1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	lost, err := c.VerifyAcked()
	if err != nil {
		t.Fatal(err)
	}
	if lost != 0 {
		t.Fatalf("parallel drill lost %d acknowledged writes", lost)
	}
}

// TestClusterHotKeySkew concentrates most operations on one key and
// checks the owning shard absorbs a clear majority of the traffic —
// the imbalance signal the skew campaign reports.
func TestClusterHotKeySkew(t *testing.T) {
	opts := testOptions()
	opts.Operations = 60
	opts.HotKeyFraction = 0.9
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.LostWrites != 0 {
		t.Fatalf("lost writes = %d", res.LostWrites)
	}
	hot, _ := NewRingFromShards(opts.Shards, opts.VNodes).Lookup(workload.Key(0))
	var hotOps, maxOther uint64
	for _, s := range res.Shards {
		if s.ID == hot {
			hotOps = s.Ops
		} else if s.Ops > maxOther {
			maxOther = s.Ops
		}
	}
	if hotOps <= maxOther {
		t.Fatalf("hot shard %d ops %d not dominant (max other %d): %+v",
			hot, hotOps, maxOther, res.Shards)
	}
}

// TestClusterMergedMetrics checks that fleet-wide metrics aggregate
// across shards when tracing is on.
func TestClusterMergedMetrics(t *testing.T) {
	opts := testOptions()
	opts.Operations = 12
	opts.System.Trace.Enabled = true
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil {
		t.Fatal("no merged metrics despite tracing enabled")
	}
	if res.Metrics.Counter("syncs") == 0 {
		t.Fatal("merged syncs counter is zero")
	}
}

// TestClusterSingleShard pins the degenerate composition: one shard is
// just the single-node system behind the router.
func TestClusterSingleShard(t *testing.T) {
	opts := testOptions()
	opts.Shards = 1
	opts.Operations = 16
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 16 || res.LostWrites != 0 {
		t.Fatalf("ops=%d lost=%d", res.Ops, res.LostWrites)
	}
}
