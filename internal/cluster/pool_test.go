package cluster

import (
	"sync/atomic"
	"testing"
)

// TestRunShardsCoversAll checks every index runs exactly once at any
// worker/shard-count combination, including workers > shards and the
// serial path.
func TestRunShardsCoversAll(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8, 64} {
		for _, n := range []int{0, 1, 2, 5, 17} {
			counts := make([]atomic.Int64, max(n, 1))
			runShards(workers, n, func(i int) {
				counts[i].Add(1)
			})
			for i := 0; i < n; i++ {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

// TestRunShardsPanicPropagates pins the mid-round failure contract: a
// panicking shard function under the pool re-raises its original panic
// value on the caller after the barrier instead of killing a worker
// goroutine (process abort) or deadlocking the round.
func TestRunShardsPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		var ran atomic.Int64
		func() {
			defer func() {
				r := recover()
				if r != "shard 2 exploded" {
					t.Fatalf("workers=%d: recovered %v, want the original panic value", workers, r)
				}
			}()
			runShards(workers, 5, func(i int) {
				ran.Add(1)
				if i == 2 {
					panic("shard 2 exploded")
				}
			})
			t.Fatalf("workers=%d: runShards returned instead of panicking", workers)
		}()
		if ran.Load() == 0 {
			t.Fatalf("workers=%d: nothing ran", workers)
		}
	}
}

// TestRunShardsPanicLowestIndexWins: when several shards panic in one
// round, the caller observes the lowest shard ID's panic — the one a
// serial walk would have surfaced first.
func TestRunShardsPanicLowestIndexWins(t *testing.T) {
	defer func() {
		if r := recover(); r != 1 {
			t.Fatalf("recovered %v, want panic value 1 (lowest panicking shard)", r)
		}
	}()
	runShards(4, 6, func(i int) {
		if i >= 1 && i <= 4 {
			panic(i)
		}
	})
	t.Fatal("runShards returned instead of panicking")
}

// TestRunShardsSerialStopsAtPanic pins that workers<=1 keeps today's
// serial semantics exactly: the panic propagates immediately, so later
// shards never run.
func TestRunShardsSerialStopsAtPanic(t *testing.T) {
	var last atomic.Int64
	last.Store(-1)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("no panic")
		}
		if got := last.Load(); got != 1 {
			t.Fatalf("serial run reached index %d after a panic at 1", got)
		}
	}()
	runShards(1, 4, func(i int) {
		last.Store(int64(i))
		if i == 1 {
			panic("stop")
		}
	})
}
