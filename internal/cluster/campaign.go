package cluster

import (
	"context"
	"fmt"

	"rcoe/internal/core"
	"rcoe/internal/exp"
)

// Schema identifies the JSON artifact format rcoe-cluster emits. Like
// every artifact in the repo it carries no host timings, so serial and
// parallel runs produce byte-identical bytes.
const Schema = "rcoe-cluster/v1"

// Row is one configuration's outcome in a cluster artifact.
type Row struct {
	Config string `json:"config"`
	Seed   uint64 `json:"seed"`
	Result Result `json:"result"`
	Err    string `json:"err,omitempty"`
}

// Artifact is the structured result of a cluster campaign.
type Artifact struct {
	Schema     string `json:"schema"`
	Campaign   string `json:"campaign"`
	Shards     int    `json:"shards"`
	VNodes     int    `json:"vnodes"`
	Workload   string `json:"workload"`
	Records    uint64 `json:"records"`
	Operations uint64 `json:"operations"`
	Streams    int    `json:"streams"`
	Seed       uint64 `json:"seed"`
	Rows       []Row  `json:"rows"`
}

// BenchConfig names one per-shard replication configuration of a bench
// sweep.
type BenchConfig struct {
	Name   string
	System core.Config
}

// DefaultBenchConfigs is the standard sweep: the unreplicated baseline
// against LC-DMR and masking LC-TMR, the paper's main comparison at
// cluster scale.
func DefaultBenchConfigs() []BenchConfig {
	return []BenchConfig{
		{Name: "base", System: core.Config{Mode: core.ModeNone, Replicas: 1, TickCycles: 50_000}},
		{Name: "LC-DMR", System: core.Config{Mode: core.ModeLC, Replicas: 2, TickCycles: 50_000}},
		{Name: "LC-TMR", System: core.Config{
			Mode: core.ModeLC, Replicas: 3, Masking: true,
			TickCycles: 50_000, BarrierTimeout: 2_000_000,
		}},
	}
}

// BenchOptions configures a cluster bench sweep.
type BenchOptions struct {
	// Base carries the cluster shape (shards, workload, records,
	// operations, seed, ...); each row overrides Base.System.
	Base Options
	// Configs are the rows (DefaultBenchConfigs when empty).
	Configs []BenchConfig
	// OnProgress, when set, receives per-row completion events.
	OnProgress func(exp.Progress)
}

// Bench runs one cluster per configuration, fanned across host workers
// by the experiment engine; per-row seeds derive from the base seed and
// the row index, so worker count never changes the artifact.
func Bench(opts BenchOptions) (*Artifact, error) {
	configs := opts.Configs
	if len(configs) == 0 {
		configs = DefaultBenchConfigs()
	}
	jobs := make([]exp.Job[Result], len(configs))
	for i, cfg := range configs {
		sys := cfg.System
		jobs[i] = exp.Job[Result]{
			Name: cfg.Name,
			Run: func(ctx context.Context, seed uint64) (Result, error) {
				o := opts.Base
				o.System = sys
				o.Seed = seed
				return Run(o)
			},
		}
	}
	results, err := exp.Run(exp.Options{
		MasterSeed: opts.Base.Seed,
		OnProgress: opts.OnProgress,
	}, jobs)
	if err != nil {
		return nil, err
	}
	art := newArtifact("bench", opts.Base)
	for _, r := range results {
		row := Row{Config: r.Name, Seed: r.Seed, Result: r.Value}
		if r.Err != nil {
			row.Err = r.Err.Error()
		}
		art.Rows = append(art.Rows, row)
	}
	return art, nil
}

// FailoverOptions configures the failover drill.
type FailoverOptions struct {
	// Base carries the full cluster configuration.
	Base Options
	// Victim is the shard to kill (ignored under Rolling).
	Victim int
	// KillAfterOps kills the victim once this many run-phase operations
	// have completed.
	KillAfterOps uint64
	// Rolling kills and replaces every shard in sequence instead of a
	// single victim, KillAfterOps operations apart.
	Rolling bool
}

// FailoverDrill runs one cluster, crash-and-replaces the victim shard
// (or every shard, rolling) mid-run, completes the run, and audits the
// acknowledged-write ledger. The drill passes when LostWrites is zero.
func FailoverDrill(opts FailoverOptions) (*Artifact, error) {
	c, err := New(opts.Base)
	if err != nil {
		return nil, err
	}
	for !c.LoadPhaseDone() && !c.Done() {
		c.Step()
	}
	victims := []int{opts.Victim}
	if opts.Rolling {
		victims = victims[:0]
		for i := 0; i < opts.Base.Shards; i++ {
			victims = append(victims, i)
		}
	}
	for _, v := range victims {
		if v < 0 || v >= opts.Base.Shards {
			return nil, fmt.Errorf("cluster: victim shard %d out of range", v)
		}
		target := c.OpsDone() + opts.KillAfterOps
		for c.OpsDone() < target && !c.Done() {
			c.Step()
		}
		if err := c.Failover(v); err != nil {
			return nil, err
		}
	}
	res, err := c.Run()
	if err != nil {
		return nil, err
	}
	if _, err := c.VerifyAcked(); err != nil {
		return nil, err
	}
	res = c.Snapshot()
	art := newArtifact("failover", opts.Base)
	name := fmt.Sprintf("kill-shard-%d", opts.Victim)
	if opts.Rolling {
		name = "rolling"
	}
	art.Rows = append(art.Rows, Row{Config: name, Seed: opts.Base.Seed, Result: res})
	return art, nil
}

// RunArtifact wraps a single cluster run in the artifact envelope.
func RunArtifact(opts Options) (*Artifact, error) {
	res, err := Run(opts)
	if err != nil {
		return nil, err
	}
	art := newArtifact("run", opts)
	art.Rows = append(art.Rows, Row{Config: opts.System.Mode.String(), Seed: opts.Seed, Result: res})
	return art, nil
}

func newArtifact(campaign string, base Options) *Artifact {
	vnodes := base.VNodes
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	streams := base.Streams
	if streams <= 0 {
		streams = base.Shards
	}
	return &Artifact{
		Schema: Schema, Campaign: campaign,
		Shards: base.Shards, VNodes: vnodes,
		Workload: base.Workload.String(),
		Records:  base.Records, Operations: base.Operations,
		Streams: streams, Seed: base.Seed,
		Rows: []Row{},
	}
}
