// Package cluster composes harness.Node shards into a sharded RCoE
// key-value cluster: a consistent-hash router partitions the YCSB
// keyspace over N independently replicated nodes (each internally DMR or
// TMR), a closed-loop multi-stream client drives them through the
// netstack frame protocol, and shard failover moves state between nodes
// through the checkpoint/restore subsystem. This is the paper's
// single-machine system scaled out the way its deployment section
// sketches: redundancy is a per-shard property, so a fleet can trade
// redundancy for throughput one shard at a time.
package cluster

import (
	"fmt"
	"sort"
)

// DefaultVNodes is the virtual-node count per shard when Ring callers
// pass 0. Enough points that removing one shard of four moves roughly a
// quarter of the keyspace without the variance of single-point hashing.
const DefaultVNodes = 64

// hash64 is a splitmix64 finalizer over a seed — the ring's point and
// key hash. Stateless and stable across runs and platforms.
func hash64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// hashKey hashes key bytes onto the ring (FNV-1a folded through the
// splitmix finalizer so short sequential keys spread).
func hashKey(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return hash64(h)
}

// ringPoint is one virtual node on the ring.
type ringPoint struct {
	hash  uint64
	shard int
}

// Ring is a consistent-hash ring over shard IDs. Each shard owns VNodes
// points placed by hashing (shard, vnode) pairs, so the placement — and
// therefore the key partition — depends only on the member shard IDs,
// never on insertion order or shard count. Replacing a failed shard
// under the same ID reproduces the identical partition (zero remap);
// removing a shard moves only the departed shard's keys.
type Ring struct {
	vnodes int
	points []ringPoint
	shards map[int]bool
}

// NewRing creates an empty ring; vnodes <= 0 selects DefaultVNodes.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, shards: make(map[int]bool)}
}

// NewRingFromShards builds a ring holding shards 0..n-1 — the boot
// membership of an n-shard cluster.
func NewRingFromShards(n, vnodes int) *Ring {
	r := NewRing(vnodes)
	for i := 0; i < n; i++ {
		r.Add(i)
	}
	return r
}

// Add inserts a shard's virtual nodes. Adding a present shard is a
// no-op.
func (r *Ring) Add(shard int) {
	if r.shards[shard] {
		return
	}
	r.shards[shard] = true
	for v := 0; v < r.vnodes; v++ {
		h := hash64(uint64(shard)*0x9E3779B97F4A7C15 + uint64(v) + 1)
		r.points = append(r.points, ringPoint{hash: h, shard: shard})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
}

// Remove deletes a shard's virtual nodes. Removing an absent shard is a
// no-op.
func (r *Ring) Remove(shard int) {
	if !r.shards[shard] {
		return
	}
	delete(r.shards, shard)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.shard != shard {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Lookup returns the shard owning key: the first ring point clockwise
// from the key's hash. ok is false on an empty ring.
func (r *Ring) Lookup(key []byte) (shard int, ok bool) {
	if len(r.points) == 0 {
		return 0, false
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point
	}
	return r.points[i].shard, true
}

// Shards returns the member shard IDs in ascending order.
func (r *Ring) Shards() []int {
	ids := make([]int, 0, len(r.shards))
	for id := range r.shards {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Size returns the member shard count.
func (r *Ring) Size() int { return len(r.shards) }

// String summarises the ring.
func (r *Ring) String() string {
	return fmt.Sprintf("ring(%d shards, %d vnodes)", len(r.shards), r.vnodes)
}
