package asm

import (
	"strings"
	"testing"

	"rcoe/internal/isa"
)

func TestLabelsResolveToAbsoluteAddresses(t *testing.T) {
	b := New()
	b.Li(1, 0)
	b.Label("target")
	b.Addi(1, 1, 1)
	b.J("target")
	prog, err := b.Assemble(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	j := prog[2]
	if j.Op != isa.OpJ || uint64(uint32(j.Imm)) != 0x1000+8 {
		t.Fatalf("jump target = %#x, want %#x", uint32(j.Imm), 0x1008)
	}
}

func TestUndefinedLabelFails(t *testing.T) {
	b := New()
	b.J("nowhere")
	if _, err := b.Assemble(0); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Fatalf("undefined label not reported: %v", err)
	}
}

func TestDuplicateLabelFails(t *testing.T) {
	b := New()
	b.Label("x")
	b.Nop()
	b.Label("x")
	if _, err := b.Assemble(0); err == nil {
		t.Fatalf("duplicate label accepted")
	}
}

func TestBadRegisterFails(t *testing.T) {
	b := New()
	b.Add(40, 0, 0)
	if _, err := b.Assemble(0); err == nil {
		t.Fatalf("register 40 accepted")
	}
}

func TestLi64SingleInstructionWhenSmall(t *testing.T) {
	b := New()
	b.Li64(1, 100)
	b.Li64(2, 1<<40)
	prog, err := b.Assemble(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) != 3 {
		t.Fatalf("expected 1+2 instructions, got %d", len(prog))
	}
	if prog[0].Op != isa.OpLi || prog[1].Op != isa.OpLi || prog[2].Op != isa.OpLih {
		t.Fatalf("Li64 lowering wrong: %v", prog)
	}
}

func TestLiLabel(t *testing.T) {
	b := New()
	b.LiLabel(1, "fn")
	b.Hlt()
	b.Label("fn")
	b.Ret()
	prog, err := b.Assemble(0x2000)
	if err != nil {
		t.Fatal(err)
	}
	if prog[0].Op != isa.OpLi || uint64(uint32(prog[0].Imm)) != 0x2000+16 {
		t.Fatalf("LiLabel = %#x, want %#x", uint32(prog[0].Imm), 0x2010)
	}
}

func TestRewriteBeforeShiftsLabelsAndFixups(t *testing.T) {
	b := New()
	b.Li(1, 0)
	b.Label("loop")
	b.Addi(1, 1, 1)
	b.Blt(1, 2, "loop")
	b.Hlt()
	b.RewriteBefore(
		func(i isa.Instr) bool { return i.Op.IsBranch() },
		func(isa.Instr) []isa.Instr {
			return []isa.Instr{{Op: isa.OpNop}}
		},
	)
	prog, err := b.Assemble(0)
	if err != nil {
		t.Fatal(err)
	}
	// li, addi, nop, blt, hlt
	if len(prog) != 5 {
		t.Fatalf("program length %d, want 5", len(prog))
	}
	if prog[2].Op != isa.OpNop || prog[3].Op != isa.OpBlt {
		t.Fatalf("insertion order wrong: %v", prog)
	}
	// The loop label must now point at the addi (index 1 => address 8).
	if uint64(uint32(prog[3].Imm)) != 8 {
		t.Fatalf("branch target = %#x, want 8", uint32(prog[3].Imm))
	}
}

func TestPushPop(t *testing.T) {
	b := New()
	b.Push(5)
	b.Pop(6)
	prog, err := b.Assemble(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) != 4 {
		t.Fatalf("push/pop expanded to %d instrs", len(prog))
	}
	if prog[0].Op != isa.OpAddi || prog[1].Op != isa.OpSt8 ||
		prog[2].Op != isa.OpLd8 || prog[3].Op != isa.OpAddi {
		t.Fatalf("push/pop lowering wrong: %v", prog)
	}
}

func TestBadLoadStoreSize(t *testing.T) {
	b := New()
	b.Ld(3, 1, 2, 0)
	if _, err := b.Assemble(0); err == nil {
		t.Fatalf("load size 3 accepted")
	}
	b2 := New()
	b2.St(16, 1, 2, 0)
	if _, err := b2.Assemble(0); err == nil {
		t.Fatalf("store size 16 accepted")
	}
}

func TestMustAssemblePanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustAssemble did not panic")
		}
	}()
	b := New()
	b.J("missing")
	b.MustAssemble(0)
}

func TestFconst(t *testing.T) {
	b := New()
	b.Fconst(1, 1.0)
	prog, err := b.Assemble(0)
	if err != nil {
		t.Fatal(err)
	}
	// 1.0 = 0x3FF0000000000000 needs the two-instruction form.
	if len(prog) != 2 {
		t.Fatalf("Fconst lowering = %d instrs", len(prog))
	}
}
