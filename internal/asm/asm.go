// Package asm provides a programmatic assembler for the simulated ISA.
//
// Guest programs (the paper's benchmarks, the key-value server, the MD5
// workload) are written against this builder: instructions are appended
// with mnemonic methods, control flow uses symbolic labels, and Assemble
// resolves labels to absolute addresses for a given load address.
package asm

import (
	"fmt"
	"math"

	"rcoe/internal/isa"
)

// Builder accumulates a program. The zero value is not ready to use; call
// New.
type Builder struct {
	instrs []isa.Instr
	labels map[string]int
	fixups []fixup
	relocs []int // indices of LiVA address literals (see Relocs)
	err    error
}

type fixup struct {
	index int // instruction index whose Imm needs the label address
	label string
}

// New creates an empty program builder.
func New() *Builder {
	return &Builder{labels: make(map[string]int)}
}

// Err returns the first error recorded while building (duplicate labels,
// bad register indices). Assemble also returns it.
func (b *Builder) Err() error { return b.err }

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.instrs) }

// Label defines a symbolic location at the current position.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.fail("asm: duplicate label %q", name)
		return
	}
	b.labels[name] = len(b.instrs)
}

func (b *Builder) checkReg(rs ...uint8) {
	for _, r := range rs {
		if r >= isa.NumRegs {
			b.fail("asm: register r%d out of range", r)
		}
	}
}

func (b *Builder) emit(i isa.Instr) {
	b.checkReg(i.Rd, i.Rs1, i.Rs2)
	b.instrs = append(b.instrs, i)
}

func (b *Builder) emitLabelled(i isa.Instr, label string) {
	b.fixups = append(b.fixups, fixup{index: len(b.instrs), label: label})
	b.emit(i)
}

// Raw appends an already-formed instruction.
func (b *Builder) Raw(i isa.Instr) { b.emit(i) }

// --- Integer register-register ---

// Add emits rd = rs1 + rs2.
func (b *Builder) Add(rd, rs1, rs2 uint8) {
	b.emit(isa.Instr{Op: isa.OpAdd, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Sub emits rd = rs1 - rs2.
func (b *Builder) Sub(rd, rs1, rs2 uint8) {
	b.emit(isa.Instr{Op: isa.OpSub, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Mul emits rd = rs1 * rs2.
func (b *Builder) Mul(rd, rs1, rs2 uint8) {
	b.emit(isa.Instr{Op: isa.OpMul, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Div emits rd = rs1 / rs2 (signed; division by zero traps).
func (b *Builder) Div(rd, rs1, rs2 uint8) {
	b.emit(isa.Instr{Op: isa.OpDiv, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Divu emits rd = rs1 / rs2 (unsigned).
func (b *Builder) Divu(rd, rs1, rs2 uint8) {
	b.emit(isa.Instr{Op: isa.OpDivu, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Rem emits rd = rs1 % rs2 (unsigned remainder).
func (b *Builder) Rem(rd, rs1, rs2 uint8) {
	b.emit(isa.Instr{Op: isa.OpRem, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// And emits rd = rs1 & rs2.
func (b *Builder) And(rd, rs1, rs2 uint8) {
	b.emit(isa.Instr{Op: isa.OpAnd, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Or emits rd = rs1 | rs2.
func (b *Builder) Or(rd, rs1, rs2 uint8) { b.emit(isa.Instr{Op: isa.OpOr, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// Xor emits rd = rs1 ^ rs2.
func (b *Builder) Xor(rd, rs1, rs2 uint8) {
	b.emit(isa.Instr{Op: isa.OpXor, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Shl emits rd = rs1 << (rs2 & 63).
func (b *Builder) Shl(rd, rs1, rs2 uint8) {
	b.emit(isa.Instr{Op: isa.OpShl, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Shr emits rd = rs1 >> (rs2 & 63) (logical).
func (b *Builder) Shr(rd, rs1, rs2 uint8) {
	b.emit(isa.Instr{Op: isa.OpShr, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Sra emits rd = int64(rs1) >> (rs2 & 63).
func (b *Builder) Sra(rd, rs1, rs2 uint8) {
	b.emit(isa.Instr{Op: isa.OpSra, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Slt emits rd = 1 if int64(rs1) < int64(rs2) else 0.
func (b *Builder) Slt(rd, rs1, rs2 uint8) {
	b.emit(isa.Instr{Op: isa.OpSlt, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Sltu emits rd = 1 if rs1 < rs2 (unsigned) else 0.
func (b *Builder) Sltu(rd, rs1, rs2 uint8) {
	b.emit(isa.Instr{Op: isa.OpSltu, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// --- Integer immediate ---

// Addi emits rd = rs1 + imm.
func (b *Builder) Addi(rd, rs1 uint8, imm int32) {
	b.emit(isa.Instr{Op: isa.OpAddi, Rd: rd, Rs1: rs1, Imm: imm})
}

// Andi emits rd = rs1 & uint64(imm sign-extended).
func (b *Builder) Andi(rd, rs1 uint8, imm int32) {
	b.emit(isa.Instr{Op: isa.OpAndi, Rd: rd, Rs1: rs1, Imm: imm})
}

// Ori emits rd = rs1 | uint64(imm sign-extended).
func (b *Builder) Ori(rd, rs1 uint8, imm int32) {
	b.emit(isa.Instr{Op: isa.OpOri, Rd: rd, Rs1: rs1, Imm: imm})
}

// Xori emits rd = rs1 ^ uint64(imm sign-extended).
func (b *Builder) Xori(rd, rs1 uint8, imm int32) {
	b.emit(isa.Instr{Op: isa.OpXori, Rd: rd, Rs1: rs1, Imm: imm})
}

// Shli emits rd = rs1 << imm.
func (b *Builder) Shli(rd, rs1 uint8, imm int32) {
	b.emit(isa.Instr{Op: isa.OpShli, Rd: rd, Rs1: rs1, Imm: imm})
}

// Shri emits rd = rs1 >> imm (logical).
func (b *Builder) Shri(rd, rs1 uint8, imm int32) {
	b.emit(isa.Instr{Op: isa.OpShri, Rd: rd, Rs1: rs1, Imm: imm})
}

// Srai emits rd = int64(rs1) >> imm.
func (b *Builder) Srai(rd, rs1 uint8, imm int32) {
	b.emit(isa.Instr{Op: isa.OpSrai, Rd: rd, Rs1: rs1, Imm: imm})
}

// Slti emits rd = 1 if int64(rs1) < imm else 0.
func (b *Builder) Slti(rd, rs1 uint8, imm int32) {
	b.emit(isa.Instr{Op: isa.OpSlti, Rd: rd, Rs1: rs1, Imm: imm})
}

// Li emits rd = sign-extended imm32.
func (b *Builder) Li(rd uint8, imm int32) {
	b.emit(isa.Instr{Op: isa.OpLi, Rd: rd, Imm: imm})
}

// LiLabel loads a label's absolute address (resolved at assembly).
func (b *Builder) LiLabel(rd uint8, label string) {
	b.emitLabelled(isa.Instr{Op: isa.OpLi, Rd: rd}, label)
}

// LiVA loads a user-space virtual-address literal into rd and records a
// relocation for it, so the loader can shift the literal when the process
// image is laid out with a per-replica delta (structural decorrelation,
// kernel.ProcessConfig.Relocs). Only addresses inside the shiftable
// window — the data and stack segments — belong in LiVA; text, shared,
// and device addresses are identical across replicas and use Li64.
func (b *Builder) LiVA(rd uint8, va uint64) {
	if int64(va) != int64(int32(va)) {
		b.fail("asm: virtual address %#x exceeds imm32 range for LiVA", va)
		return
	}
	b.relocs = append(b.relocs, len(b.instrs))
	b.Li(rd, int32(va))
}

// Relocs returns the instruction indices of LiVA address literals in the
// final program (valid after all rewrites), for kernel.ProcessConfig.
func (b *Builder) Relocs() []int { return append([]int(nil), b.relocs...) }

// Li64 loads an arbitrary 64-bit constant, using one instruction when the
// value fits in a sign-extended imm32 and two otherwise.
func (b *Builder) Li64(rd uint8, v uint64) {
	if int64(v) == int64(int32(v)) {
		b.Li(rd, int32(v))
		return
	}
	b.Li(rd, int32(v>>32))
	b.emit(isa.Instr{Op: isa.OpLih, Rd: rd, Imm: int32(uint32(v))})
}

// Mov emits rd = rs.
func (b *Builder) Mov(rd, rs uint8) { b.Add(rd, rs, isa.RZero) }

// Fconst loads a float64 constant's bit pattern into rd.
func (b *Builder) Fconst(rd uint8, f float64) {
	b.Li64(rd, math.Float64bits(f))
}

// --- Memory ---

// Ld emits a zero-extending load of size 1, 2, 4, or 8 bytes from rs1+imm.
func (b *Builder) Ld(size int, rd, rs1 uint8, imm int32) {
	op, ok := loadOp(size)
	if !ok {
		b.fail("asm: bad load size %d", size)
		return
	}
	b.emit(isa.Instr{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}

// St emits a store of size 1, 2, 4, or 8 bytes of rs2 to rs1+imm.
func (b *Builder) St(size int, rs1, rs2 uint8, imm int32) {
	op, ok := storeOp(size)
	if !ok {
		b.fail("asm: bad store size %d", size)
		return
	}
	b.emit(isa.Instr{Op: op, Rs1: rs1, Rs2: rs2, Imm: imm})
}

func loadOp(size int) (isa.Opcode, bool) {
	switch size {
	case 1:
		return isa.OpLd1, true
	case 2:
		return isa.OpLd2, true
	case 4:
		return isa.OpLd4, true
	case 8:
		return isa.OpLd8, true
	}
	return isa.OpInvalid, false
}

func storeOp(size int) (isa.Opcode, bool) {
	switch size {
	case 1:
		return isa.OpSt1, true
	case 2:
		return isa.OpSt2, true
	case 4:
		return isa.OpSt4, true
	case 8:
		return isa.OpSt8, true
	}
	return isa.OpInvalid, false
}

// --- Control flow ---

// Beq branches to label when rs1 == rs2.
func (b *Builder) Beq(rs1, rs2 uint8, label string) {
	b.emitLabelled(isa.Instr{Op: isa.OpBeq, Rs1: rs1, Rs2: rs2}, label)
}

// Bne branches to label when rs1 != rs2.
func (b *Builder) Bne(rs1, rs2 uint8, label string) {
	b.emitLabelled(isa.Instr{Op: isa.OpBne, Rs1: rs1, Rs2: rs2}, label)
}

// Blt branches to label when int64(rs1) < int64(rs2).
func (b *Builder) Blt(rs1, rs2 uint8, label string) {
	b.emitLabelled(isa.Instr{Op: isa.OpBlt, Rs1: rs1, Rs2: rs2}, label)
}

// Bge branches to label when int64(rs1) >= int64(rs2).
func (b *Builder) Bge(rs1, rs2 uint8, label string) {
	b.emitLabelled(isa.Instr{Op: isa.OpBge, Rs1: rs1, Rs2: rs2}, label)
}

// Bltu branches to label when rs1 < rs2 (unsigned).
func (b *Builder) Bltu(rs1, rs2 uint8, label string) {
	b.emitLabelled(isa.Instr{Op: isa.OpBltu, Rs1: rs1, Rs2: rs2}, label)
}

// Bgeu branches to label when rs1 >= rs2 (unsigned).
func (b *Builder) Bgeu(rs1, rs2 uint8, label string) {
	b.emitLabelled(isa.Instr{Op: isa.OpBgeu, Rs1: rs1, Rs2: rs2}, label)
}

// J jumps unconditionally to label.
func (b *Builder) J(label string) {
	b.emitLabelled(isa.Instr{Op: isa.OpJ}, label)
}

// Call jumps to label, saving the return address in the link register.
func (b *Builder) Call(label string) {
	b.emitLabelled(isa.Instr{Op: isa.OpJal, Rd: isa.RLR}, label)
}

// Ret returns to the address in the link register.
func (b *Builder) Ret() {
	b.emit(isa.Instr{Op: isa.OpJr, Rs1: isa.RLR})
}

// Jr jumps to the address in rs1.
func (b *Builder) Jr(rs1 uint8) {
	b.emit(isa.Instr{Op: isa.OpJr, Rs1: rs1})
}

// Jalr jumps to rs1+imm, saving the return address in rd.
func (b *Builder) Jalr(rd, rs1 uint8, imm int32) {
	b.emit(isa.Instr{Op: isa.OpJalr, Rd: rd, Rs1: rs1, Imm: imm})
}

// --- Floating point ---

// Fadd emits rd = rs1 + rs2 (binary64).
func (b *Builder) Fadd(rd, rs1, rs2 uint8) {
	b.emit(isa.Instr{Op: isa.OpFadd, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Fsub emits rd = rs1 - rs2 (binary64).
func (b *Builder) Fsub(rd, rs1, rs2 uint8) {
	b.emit(isa.Instr{Op: isa.OpFsub, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Fmul emits rd = rs1 * rs2 (binary64).
func (b *Builder) Fmul(rd, rs1, rs2 uint8) {
	b.emit(isa.Instr{Op: isa.OpFmul, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Fdiv emits rd = rs1 / rs2 (binary64).
func (b *Builder) Fdiv(rd, rs1, rs2 uint8) {
	b.emit(isa.Instr{Op: isa.OpFdiv, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Fsqrt emits rd = sqrt(rs1).
func (b *Builder) Fsqrt(rd, rs1 uint8) { b.emit(isa.Instr{Op: isa.OpFsqrt, Rd: rd, Rs1: rs1}) }

// Fsin emits rd = sin(rs1).
func (b *Builder) Fsin(rd, rs1 uint8) { b.emit(isa.Instr{Op: isa.OpFsin, Rd: rd, Rs1: rs1}) }

// Fcos emits rd = cos(rs1).
func (b *Builder) Fcos(rd, rs1 uint8) { b.emit(isa.Instr{Op: isa.OpFcos, Rd: rd, Rs1: rs1}) }

// Fexp emits rd = exp(rs1).
func (b *Builder) Fexp(rd, rs1 uint8) { b.emit(isa.Instr{Op: isa.OpFexp, Rd: rd, Rs1: rs1}) }

// Flog emits rd = log(rs1).
func (b *Builder) Flog(rd, rs1 uint8) { b.emit(isa.Instr{Op: isa.OpFlog, Rd: rd, Rs1: rs1}) }

// Fatan emits rd = atan(rs1).
func (b *Builder) Fatan(rd, rs1 uint8) { b.emit(isa.Instr{Op: isa.OpFatan, Rd: rd, Rs1: rs1}) }

// FcvtIF emits rd = float64(int64(rs1)).
func (b *Builder) FcvtIF(rd, rs1 uint8) { b.emit(isa.Instr{Op: isa.OpFcvtIF, Rd: rd, Rs1: rs1}) }

// FcvtFI emits rd = int64(float64(rs1)).
func (b *Builder) FcvtFI(rd, rs1 uint8) { b.emit(isa.Instr{Op: isa.OpFcvtFI, Rd: rd, Rs1: rs1}) }

// Flt emits rd = 1 if float64(rs1) < float64(rs2) else 0.
func (b *Builder) Flt(rd, rs1, rs2 uint8) {
	b.emit(isa.Instr{Op: isa.OpFlt, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Fle emits rd = 1 if float64(rs1) <= float64(rs2) else 0.
func (b *Builder) Fle(rd, rs1, rs2 uint8) {
	b.emit(isa.Instr{Op: isa.OpFle, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Feq emits rd = 1 if float64(rs1) == float64(rs2) else 0.
func (b *Builder) Feq(rd, rs1, rs2 uint8) {
	b.emit(isa.Instr{Op: isa.OpFeq, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// --- Atomics and block ops ---

// LL emits a load-linked of mem64[rs1] into rd.
func (b *Builder) LL(rd, rs1 uint8) { b.emit(isa.Instr{Op: isa.OpLL, Rd: rd, Rs1: rs1}) }

// SC emits a store-conditional of rs2 to mem64[rs1]; rd = 0 on success.
func (b *Builder) SC(rd, rs1, rs2 uint8) {
	b.emit(isa.Instr{Op: isa.OpSC, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Cas emits a compare-and-swap: expected value in rd, new value in rs2,
// address in rs1; rd receives the observed value.
func (b *Builder) Cas(rd, rs1, rs2 uint8) {
	b.emit(isa.Instr{Op: isa.OpCas, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Xadd emits an atomic fetch-and-add of rs2 to mem64[rs1]; rd receives the
// prior value.
func (b *Builder) Xadd(rd, rs1, rs2 uint8) {
	b.emit(isa.Instr{Op: isa.OpXadd, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Memcpy emits the rep-style block copy: length in rd, dst in rs1, src in
// rs2; all three registers advance as the copy progresses.
func (b *Builder) Memcpy(lenReg, dstReg, srcReg uint8) {
	b.emit(isa.Instr{Op: isa.OpMemcpy, Rd: lenReg, Rs1: dstReg, Rs2: srcReg})
}

// Memset emits the rep-style block fill: length in rd, dst in rs1, fill
// byte in imm.
func (b *Builder) Memset(lenReg, dstReg uint8, fill byte) {
	b.emit(isa.Instr{Op: isa.OpMemset, Rd: lenReg, Rs1: dstReg, Imm: int32(fill)})
}

// --- System ---

// Syscall emits a system call with the given number; arguments are taken
// from R1..R4 by the kernel and the result is returned in R1.
func (b *Builder) Syscall(num int32) {
	b.emit(isa.Instr{Op: isa.OpSyscall, Imm: num})
}

// Nop emits a no-op.
func (b *Builder) Nop() { b.emit(isa.Instr{Op: isa.OpNop}) }

// Hlt emits a halt (terminates the thread; only meaningful to the kernel).
func (b *Builder) Hlt() { b.emit(isa.Instr{Op: isa.OpHlt}) }

// Push stores rs at the top of the stack (pre-decrement).
func (b *Builder) Push(rs uint8) {
	b.Addi(isa.RSP, isa.RSP, -8)
	b.St(8, isa.RSP, rs, 0)
}

// Pop loads rd from the top of the stack (post-increment).
func (b *Builder) Pop(rd uint8) {
	b.Ld(8, rd, isa.RSP, 0)
	b.Addi(isa.RSP, isa.RSP, 8)
}

// RewriteBefore inserts gen(i) before every instruction satisfying pred,
// remapping labels and pending fixups. Labels that pointed at a rewritten
// instruction point at the first inserted instruction afterwards, so a
// jump to an instrumented branch executes the inserted code first — the
// semantics of a compiler pass that prepends instructions to an insn.
func (b *Builder) RewriteBefore(pred func(isa.Instr) bool, gen func(isa.Instr) []isa.Instr) {
	if b.err != nil {
		return
	}
	prefixStart := make([]int, len(b.instrs)+1) // label target remap
	origPos := make([]int, len(b.instrs))       // fixup (instruction) remap
	var out []isa.Instr
	for i, ins := range b.instrs {
		prefixStart[i] = len(out)
		if pred(ins) {
			out = append(out, gen(ins)...)
		}
		origPos[i] = len(out)
		out = append(out, ins)
	}
	prefixStart[len(b.instrs)] = len(out)
	for fi := range b.fixups {
		b.fixups[fi].index = origPos[b.fixups[fi].index]
	}
	for ri := range b.relocs {
		b.relocs[ri] = origPos[b.relocs[ri]]
	}
	for name, idx := range b.labels {
		b.labels[name] = prefixStart[idx]
	}
	b.instrs = out
}

// Assemble resolves labels against the given text load address and returns
// the finished instruction sequence.
func (b *Builder) Assemble(base uint64) ([]isa.Instr, error) {
	if b.err != nil {
		return nil, b.err
	}
	out := append([]isa.Instr(nil), b.instrs...)
	for _, f := range b.fixups {
		idx, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("asm: undefined label %q", f.label)
		}
		addr := base + uint64(idx)*isa.InstrBytes
		if addr > 0x7fffffff {
			return nil, fmt.Errorf("asm: label %q address %#x exceeds imm32 range", f.label, addr)
		}
		out[f.index].Imm = int32(addr)
	}
	return out, nil
}

// MustAssemble is Assemble for program construction in tests and examples
// where a build error is a programming bug.
func (b *Builder) MustAssemble(base uint64) []isa.Instr {
	prog, err := b.Assemble(base)
	if err != nil {
		panic(err)
	}
	return prog
}

// RewriteWindows replaces every non-overlapping run of `size` consecutive
// instructions satisfying match with gen's output, remapping labels and
// dropping fixups that pointed into the replaced window (the replacement
// must be self-contained straight-line code). A label may point at the
// start of a matched window — it moves to the replacement's first
// instruction — but a label into the middle of one is an error.
func (b *Builder) RewriteWindows(size int, match func([]isa.Instr) bool, gen func([]isa.Instr) []isa.Instr) {
	if b.err != nil || size <= 0 {
		return
	}
	labelAt := make(map[int][]string)
	for name, idx := range b.labels {
		labelAt[idx] = append(labelAt[idx], name)
	}
	fixupAt := make(map[int][]fixup)
	for _, f := range b.fixups {
		fixupAt[f.index] = append(fixupAt[f.index], f)
	}
	relocAt := make(map[int]int)
	for _, r := range b.relocs {
		relocAt[r]++
	}
	var out []isa.Instr
	var outFixups []fixup
	var outRelocs []int
	i := 0
	for i < len(b.instrs) {
		if i+size <= len(b.instrs) && match(b.instrs[i:i+size]) {
			for j := i + 1; j < i+size; j++ {
				if names := labelAt[j]; len(names) > 0 {
					b.fail("asm: label %q points into a rewritten window", names[0])
					return
				}
			}
			for _, name := range labelAt[i] {
				b.labels[name] = len(out)
			}
			out = append(out, gen(b.instrs[i:i+size])...)
			i += size
			continue
		}
		for _, name := range labelAt[i] {
			b.labels[name] = len(out)
		}
		for _, f := range fixupAt[i] {
			f.index = len(out)
			outFixups = append(outFixups, f)
		}
		for k := 0; k < relocAt[i]; k++ {
			outRelocs = append(outRelocs, len(out))
		}
		out = append(out, b.instrs[i])
		i++
	}
	// Trailing labels (pointing one past the end).
	for _, name := range labelAt[len(b.instrs)] {
		b.labels[name] = len(out)
	}
	b.instrs = out
	b.fixups = outFixups
	b.relocs = outRelocs
}
