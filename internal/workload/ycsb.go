// Package workload implements YCSB-style load generation for the
// key-value system benchmark (the paper drives Redis with the Yahoo!
// Cloud Serving Benchmarks, §V-B): workloads A-F with zipfian and
// latest-distribution key choosers, and CRC-protected values so silent
// data corruption is observable at the client, as in the fault-injection
// study (§V-C1).
package workload

import (
	"fmt"
	"hash/crc32"
	"math"

	"rcoe/internal/netstack"
)

// Kind names a YCSB workload mix.
type Kind int

// YCSB workload kinds.
const (
	// YCSBA is 50% reads, 50% updates.
	YCSBA Kind = iota + 1
	// YCSBB is 95% reads, 5% updates.
	YCSBB
	// YCSBC is read-only.
	YCSBC
	// YCSBD is 95% reads of recent keys, 5% inserts.
	YCSBD
	// YCSBE is 95% short scans, 5% inserts.
	YCSBE
	// YCSBF is 50% reads, 50% read-modify-writes.
	YCSBF
)

// String returns the YCSB letter.
func (k Kind) String() string {
	switch k {
	case YCSBA:
		return "A"
	case YCSBB:
		return "B"
	case YCSBC:
		return "C"
	case YCSBD:
		return "D"
	case YCSBE:
		return "E"
	case YCSBF:
		return "F"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// AllKinds returns workloads A-F in order.
func AllKinds() []Kind {
	return []Kind{YCSBA, YCSBB, YCSBC, YCSBD, YCSBE, YCSBF}
}

// PayloadBytes is the user-payload size per record; a CRC32 is appended,
// so the stored value is PayloadBytes+4 bytes (the paper's client embeds
// CRC32 checksums in values to detect corruption).
const PayloadBytes = 120

// zipfian implements Gray et al.'s bounded zipfian generator with the
// YCSB constant 0.99.
type zipfian struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
}

func newZipfian(n uint64) *zipfian {
	const theta = 0.99
	z := &zipfian{n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	var sum float64
	for i := uint64(1); i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

func (z *zipfian) next(u float64) uint64 {
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	idx := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1.0, z.alpha))
	if idx >= z.n {
		idx = z.n - 1
	}
	return idx
}

// Generator produces a deterministic YCSB request stream.
type Generator struct {
	kind        Kind
	recordCount uint64
	inserted    uint64
	zipf        *zipfian
	rng         uint64
	nextReqID   uint32
}

// NewGenerator creates a generator over recordCount preloaded records.
func NewGenerator(kind Kind, recordCount uint64, seed uint64) *Generator {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Generator{
		kind:        kind,
		recordCount: recordCount,
		inserted:    recordCount,
		zipf:        newZipfian(recordCount),
		rng:         seed,
	}
}

func (g *Generator) rand() uint64 {
	x := g.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	g.rng = x
	return x
}

func (g *Generator) randFloat() float64 {
	return float64(g.rand()>>11) / float64(1<<53)
}

// Key renders record index i as a YCSB-style key.
func Key(i uint64) []byte {
	return []byte(fmt.Sprintf("user%08d", i))
}

// Value builds a deterministic CRC-protected value for record i with a
// version counter, so overwrites remain verifiable.
func Value(i, version uint64) []byte {
	payload := make([]byte, PayloadBytes)
	state := i*0x9E3779B97F4A7C15 + version + 1
	for j := range payload {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		payload[j] = byte(state)
	}
	crc := crc32.ChecksumIEEE(payload)
	return append(payload, byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24))
}

// CheckValue verifies a CRC-protected value, reporting corruption.
func CheckValue(v []byte) bool {
	if len(v) < 4 {
		return false
	}
	payload := v[:len(v)-4]
	want := crc32.ChecksumIEEE(payload)
	got := uint32(v[len(v)-4]) | uint32(v[len(v)-3])<<8 | uint32(v[len(v)-2])<<16 | uint32(v[len(v)-1])<<24
	return got == want
}

// LoadRequests returns the SET requests that preload the database.
func (g *Generator) LoadRequests() []netstack.Request {
	reqs := make([]netstack.Request, 0, g.recordCount)
	for i := uint64(0); i < g.recordCount; i++ {
		g.nextReqID++
		reqs = append(reqs, netstack.Request{
			Op: netstack.OpSet, ReqID: g.nextReqID, Key: Key(i), Value: Value(i, 0),
		})
	}
	return reqs
}

// Next produces the next operation of the run phase. For read-modify-write
// (YCSB-F) it returns two chained requests.
func (g *Generator) Next() []netstack.Request {
	p := g.randFloat()
	switch g.kind {
	case YCSBA:
		if p < 0.5 {
			return []netstack.Request{g.read()}
		}
		return []netstack.Request{g.update()}
	case YCSBB:
		if p < 0.95 {
			return []netstack.Request{g.read()}
		}
		return []netstack.Request{g.update()}
	case YCSBC:
		return []netstack.Request{g.read()}
	case YCSBD:
		if p < 0.95 {
			return []netstack.Request{g.readLatest()}
		}
		return []netstack.Request{g.insert()}
	case YCSBE:
		if p < 0.95 {
			return []netstack.Request{g.scan()}
		}
		return []netstack.Request{g.insert()}
	default: // YCSBF
		if p < 0.5 {
			return []netstack.Request{g.read()}
		}
		// Read-modify-write targets one key for both halves.
		i := g.chooseKey()
		g.nextReqID++
		rd := netstack.Request{Op: netstack.OpGet, ReqID: g.nextReqID, Key: Key(i)}
		g.nextReqID++
		wr := netstack.Request{Op: netstack.OpSet, ReqID: g.nextReqID, Key: Key(i),
			Value: Value(i, uint64(g.nextReqID))}
		return []netstack.Request{rd, wr}
	}
}

func (g *Generator) chooseKey() uint64 {
	return g.zipf.next(g.randFloat())
}

func (g *Generator) read() netstack.Request {
	g.nextReqID++
	return netstack.Request{Op: netstack.OpGet, ReqID: g.nextReqID, Key: Key(g.chooseKey())}
}

func (g *Generator) readLatest() netstack.Request {
	g.nextReqID++
	off := g.zipf.next(g.randFloat())
	idx := uint64(0)
	if off < g.inserted {
		idx = g.inserted - 1 - off
	}
	return netstack.Request{Op: netstack.OpGet, ReqID: g.nextReqID, Key: Key(idx)}
}

func (g *Generator) update() netstack.Request {
	g.nextReqID++
	i := g.chooseKey()
	return netstack.Request{Op: netstack.OpSet, ReqID: g.nextReqID, Key: Key(i), Value: Value(i, uint64(g.nextReqID))}
}

func (g *Generator) insert() netstack.Request {
	g.nextReqID++
	i := g.inserted
	g.inserted++
	return netstack.Request{Op: netstack.OpSet, ReqID: g.nextReqID, Key: Key(i), Value: Value(i, 0)}
}

func (g *Generator) scan() netstack.Request {
	g.nextReqID++
	count := 1 + int(g.rand()%50) // YCSB-E: uniform scan length, avg ~25
	return netstack.Request{Op: netstack.OpScan, ReqID: g.nextReqID, Key: Key(g.chooseKey()), ScanCount: count}
}
