package workload

import (
	"bytes"
	"testing"
	"testing/quick"

	"rcoe/internal/netstack"
)

func TestLoadRequestsCoverAllRecords(t *testing.T) {
	g := NewGenerator(YCSBA, 50, 1)
	reqs := g.LoadRequests()
	if len(reqs) != 50 {
		t.Fatalf("load requests = %d", len(reqs))
	}
	seen := map[string]bool{}
	for _, r := range reqs {
		if r.Op != netstack.OpSet {
			t.Fatalf("load op = %d", r.Op)
		}
		seen[string(r.Key)] = true
		if !CheckValue(r.Value) {
			t.Fatalf("load value fails its own CRC")
		}
	}
	if len(seen) != 50 {
		t.Fatalf("duplicate keys in load phase")
	}
}

func TestValueCRC(t *testing.T) {
	v := Value(3, 7)
	if !CheckValue(v) {
		t.Fatalf("fresh value fails CRC")
	}
	v[0] ^= 1
	if CheckValue(v) {
		t.Fatalf("corrupted value passes CRC")
	}
	if CheckValue([]byte{1, 2}) {
		t.Fatalf("short value passes CRC")
	}
}

func TestValueVersionsDiffer(t *testing.T) {
	if bytes.Equal(Value(1, 0), Value(1, 1)) {
		t.Fatalf("versions produce identical values")
	}
	if bytes.Equal(Value(1, 0), Value(2, 0)) {
		t.Fatalf("records produce identical values")
	}
}

func TestDeterministicStreams(t *testing.T) {
	g1 := NewGenerator(YCSBA, 100, 42)
	g2 := NewGenerator(YCSBA, 100, 42)
	for i := 0; i < 50; i++ {
		a, b := g1.Next(), g2.Next()
		if len(a) != len(b) {
			t.Fatalf("op %d: lengths differ", i)
		}
		for j := range a {
			if a[j].Op != b[j].Op || !bytes.Equal(a[j].Key, b[j].Key) {
				t.Fatalf("op %d differs", i)
			}
		}
	}
}

func TestMixesRoughlyMatch(t *testing.T) {
	counts := func(k Kind, n int) map[byte]int {
		g := NewGenerator(k, 1000, 7)
		c := map[byte]int{}
		for i := 0; i < n; i++ {
			for _, r := range g.Next() {
				c[r.Op]++
			}
		}
		return c
	}
	const n = 2000
	a := counts(YCSBA, n)
	if a[netstack.OpGet] < n*40/100 || a[netstack.OpSet] < n*40/100 {
		t.Fatalf("YCSB-A mix off: %v", a)
	}
	c := counts(YCSBC, n)
	if c[netstack.OpSet] != 0 || c[netstack.OpScan] != 0 {
		t.Fatalf("YCSB-C not read-only: %v", c)
	}
	e := counts(YCSBE, n)
	if e[netstack.OpScan] < n*85/100 {
		t.Fatalf("YCSB-E scan share off: %v", e)
	}
	b := counts(YCSBB, n)
	if b[netstack.OpGet] < n*90/100 {
		t.Fatalf("YCSB-B read share off: %v", b)
	}
}

func TestFIssuesReadModifyWrite(t *testing.T) {
	g := NewGenerator(YCSBF, 100, 9)
	sawPair := false
	for i := 0; i < 200 && !sawPair; i++ {
		ops := g.Next()
		if len(ops) == 2 {
			if ops[0].Op != netstack.OpGet || ops[1].Op != netstack.OpSet {
				t.Fatalf("RMW pair = %d,%d", ops[0].Op, ops[1].Op)
			}
			if !bytes.Equal(ops[0].Key, ops[1].Key) {
				t.Fatalf("RMW keys differ")
			}
			sawPair = true
		}
	}
	if !sawPair {
		t.Fatalf("no read-modify-write pair in 200 ops")
	}
}

func TestZipfianSkew(t *testing.T) {
	g := NewGenerator(YCSBC, 1000, 3)
	hot := 0
	const n = 3000
	for i := 0; i < n; i++ {
		req := g.Next()[0]
		var idx int
		if _, err := fscan(string(req.Key), &idx); err != nil {
			t.Fatalf("bad key %q", req.Key)
		}
		if idx < 100 {
			hot++
		}
	}
	// Zipfian(0.99): the hottest 10% of keys should draw well over half
	// the accesses.
	if hot < n/2 {
		t.Fatalf("zipfian skew too weak: %d/%d in hottest decile", hot, n)
	}
}

func fscan(key string, idx *int) (int, error) {
	var n int
	for i := len("user"); i < len(key); i++ {
		n = n*10 + int(key[i]-'0')
	}
	*idx = n
	return n, nil
}

func TestInsertsExtendKeySpace(t *testing.T) {
	g := NewGenerator(YCSBD, 50, 5)
	maxIdx := 0
	for i := 0; i < 400; i++ {
		for _, r := range g.Next() {
			var idx int
			_, _ = fscan(string(r.Key), &idx)
			if idx > maxIdx {
				maxIdx = idx
			}
		}
	}
	if maxIdx < 50 {
		t.Fatalf("inserts never extended the key space (max %d)", maxIdx)
	}
}

func TestQuickKeysWellFormed(t *testing.T) {
	f := func(i uint32) bool {
		k := Key(uint64(i % 1_000_000))
		return len(k) == len("user")+8 && string(k[:4]) == "user"
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllKindsHaveNames(t *testing.T) {
	for _, k := range AllKinds() {
		if len(k.String()) != 1 {
			t.Fatalf("kind %d renders as %q", k, k.String())
		}
	}
}
