package workload

import "rcoe/internal/snapshot"

// SaveState serializes the generator's mutable position in the request
// stream. The zipfian tables are pure functions of the record count and
// are rebuilt by construction, not serialized.
func (g *Generator) SaveState(e *snapshot.Enc) {
	e.Int(int(g.kind))
	e.U64(g.recordCount)
	e.U64(g.inserted)
	e.U64(g.rng)
	e.U64(uint64(g.nextReqID))
}

// LoadState restores the generator. Kind and record count are
// construction parameters and only validated.
func (g *Generator) LoadState(d *snapshot.Dec) error {
	kind := Kind(d.Int())
	records := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	if kind != g.kind {
		return snapshot.IncompatibleError("workload", "kind", g.kind, kind)
	}
	if records != g.recordCount {
		return snapshot.IncompatibleError("workload", "records", g.recordCount, records)
	}
	g.inserted = d.U64()
	g.rng = d.U64()
	g.nextReqID = uint32(d.U64())
	return d.Err()
}
