package guest

import (
	"encoding/binary"
	"testing"

	"rcoe/internal/core"
	"rcoe/internal/kernel"
)

const wildOff = kernel.MaxLayoutShift + 0x1000

// TestWildPointerCorrelatedMasks pins the failure mode decorrelation
// exists to fix: bit-identical TMR replicas all corrupt the same table
// slot through the wild store, every checksum is equally wrong, and the
// run finishes with a unanimous vote — silent data corruption.
func TestWildPointerCorrelatedMasks(t *testing.T) {
	sys := buildSystem(t, core.Config{
		Mode: core.ModeLC, Replicas: 3, TickCycles: 10000,
	}, WildPointer())
	if err := sys.Run(2_000_000_000); err != nil {
		t.Fatalf("correlated run: %v (detections=%v)", err, sys.Detections())
	}
	if !sys.Finished() {
		t.Fatal("correlated run did not finish")
	}
	if n := len(sys.Detections()); n != 0 {
		t.Fatalf("correlated replicas detected the wild store: %v", sys.Detections())
	}
	// The corruption really happened — it was masked, not absent.
	got := binary.LittleEndian.Uint64(readData(t, sys, 0, wildOff, 8))
	if got != 0xDEADBEEFCAFEF00D {
		t.Fatalf("wild slot = %#x, want the wild store's value", got)
	}
}

// TestWildPointerDecorrelatedDetects is the tentpole property: the same
// program under structurally decorrelated layouts corrupts a different
// slot in each replica, the checksums diverge, and the exit vote detects
// what correlated voting masked.
func TestWildPointerDecorrelatedDetects(t *testing.T) {
	sys := buildSystem(t, core.Config{
		Mode: core.ModeLC, Replicas: 3, TickCycles: 10000,
		Decorrelate: true,
	}, WildPointer())
	err := sys.Run(2_000_000_000)
	if len(sys.Detections()) == 0 {
		t.Fatalf("decorrelated replicas did not detect the wild store (err=%v, finished=%v)",
			err, sys.Finished())
	}
	var sig bool
	for _, d := range sys.Detections() {
		if d.Kind == core.DetectSignatureMismatch || d.Kind == core.DetectVoteInconclusive {
			sig = true
		}
	}
	if !sig {
		t.Fatalf("no signature mismatch among detections: %v", sys.Detections())
	}
}

// TestDecorrelatedCleanRuns verifies the canonicalization contract: with
// no fault injected, decorrelated replicas vote clean across workloads
// that exercise every pointer-carrying syscall position — spawns (stack
// pointers), atomic adds (data pointers), and plain compute — in both LC
// and CC modes.
func TestDecorrelatedCleanRuns(t *testing.T) {
	cases := []struct {
		name string
		cfg  core.Config
		p    Program
	}{
		{"lc-tmr-atomic", core.Config{Mode: core.ModeLC, Replicas: 3, TickCycles: 10000, Decorrelate: true},
			AtomicCounter(3, 150)},
		{"lc-dmr-seeded", core.Config{Mode: core.ModeLC, Replicas: 2, TickCycles: 10000, Decorrelate: true, LayoutSeed: 7},
			Dhrystone(1000)},
		{"cc-dmr", core.Config{Mode: core.ModeCC, Replicas: 2, TickCycles: 10000, Decorrelate: true},
			Dhrystone(1000)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys := runSystem(t, tc.cfg, tc.p, 1_000_000_000)
			if !sys.Finished() {
				t.Fatal("did not finish")
			}
			if n := len(sys.Detections()); n != 0 {
				t.Fatalf("false detections under decorrelation: %v", sys.Detections())
			}
		})
	}
}
