package guest

import (
	"rcoe/internal/asm"
	"rcoe/internal/isa"
	"rcoe/internal/kernel"
)

// DriverModel selects how the key-value server's driver half reaches the
// device, matching the paper's two implementations (§III-E): LC drivers
// are SoR-aware user code (the primary touches the device and replicates
// input through the cross-replica shared region; the others spin on it),
// while CC drivers must behave identically in every replica and therefore
// delegate all device access to the kernel via FT_Mem_Access/FT_Mem_Rep.
type DriverModel int

// Driver models.
const (
	// DriverLC is the user-mode, replica-aware driver.
	DriverLC DriverModel = iota + 1
	// DriverCC is the kernel-delegating driver.
	DriverCC
)

// KVConfig parameterises the key-value server build.
type KVConfig struct {
	// Driver selects the device-access model.
	Driver DriverModel
	// Requests is the number of requests to serve before exiting.
	Requests uint64
	// Slots is the hash-table size (power of two).
	Slots uint64
	// TraceOutput controls whether the driver folds response frames into
	// the state signature with FT_Add_Trace. Disabling it reproduces the
	// LC-D-N / LC-T-N rows of Table VII, where undetected output
	// corruption rises dramatically.
	TraceOutput bool
	// IRQLine is the NIC interrupt line.
	IRQLine int64
	// Device physical addresses (from the NIC), needed by the CC driver
	// whose FT_Mem_Access calls take physical addresses.
	RxFlagPA, RxLenPA, RxDataPA uint64
	TxFlagPA, TxLenPA, TxDataPA uint64
	DoorbellPA                  uint64
}

// Data-region offsets used by the server.
const (
	kvScratchOff = 0x00
	kvReqLenOff  = 0x08
	kvRespLenOff = 0x10
	kvLastSeqOff = 0x18
	kvReqBufOff  = 0x100
	kvRespBufOff = 0x1000
	kvTableOff   = 0x2000
	// kvSlotSize: state(8) + key(32) + valLen(8) + value(256).
	kvSlotSize = 304
	kvValOff   = 48
	kvValCap   = 256
)

// KVTableBytes returns the data-region size a given slot count needs.
func KVTableBytes(slots uint64) uint64 {
	return kvTableOff + slots*kvSlotSize + 4096
}

// NIC DMA mailbox offsets within the shared input region (LC path).
const (
	shSeqOff  = 0
	shLenOff  = 8
	shDataOff = 16
)

// KVApp builds the Redis-stand-in key-value server with its integrated
// driver (the paper runs Redis plus an lwIP/Ethernet driver process; our
// single-threaded event loop merges them, preserving Redis's own
// single-threaded design).
func KVApp(cfg KVConfig) Program {
	if cfg.Slots == 0 {
		cfg.Slots = 4096
	}
	return Program{
		Name:      "kvapp",
		DataBytes: KVTableBytes(cfg.Slots),
		Arg:       cfg.Requests,
		Stacks:    1,
		Build:     func() *asm.Builder { return buildKVApp(cfg) },
	}
}

// Register allocation for the server (see guest.go for globals).
const (
	kvDone  = 5  // processed requests
	kvTotal = 6  // target request count
	kvOp    = 7  // request opcode
	kvReq   = 8  // request buffer VA
	kvResp  = 9  // response buffer VA
	kvS0    = 10 // scratch
	kvS1    = 11
	kvKLen  = 12 // key length
	kvVLen  = 13 // value length / scan count
	kvRID   = 14 // request ID
	kvSlot  = 15 // current slot VA
	kvS2    = 16
	kvS3    = 17
	kvS4    = 18
	kvS5    = 19
	kvDMA   = 22 // DMA window VA (LC)
	kvDev   = 23 // device MMIO VA (LC)
	kvShr   = 24 // shared region VA (LC)
	kvTab   = 25 // hash-table base VA
	kvTEnd  = 26 // hash-table end VA
)

func buildKVApp(cfg KVConfig) *asm.Builder {
	b := asm.New()
	dataPtr(b, rBase)
	b.Mov(kvTotal, isa.RArg0) // Arg carried the request target
	b.LiVA(kvReq, kernel.DataVA+kvReqBufOff)
	b.LiVA(kvResp, kernel.DataVA+kvRespBufOff)
	b.LiVA(kvTab, kernel.DataVA+kvTableOff)
	b.LiVA(kvTEnd, kernel.DataVA+kvTableOff+cfg.Slots*kvSlotSize)
	b.Li(kvDone, 0)
	if cfg.Driver == DriverLC {
		b.Syscall(kernel.SysMapShared)
		b.Mov(kvShr, isa.RArg0)
		b.Li(isa.RArg0, 0)
		b.Syscall(kernel.SysMapDevice)
		b.Mov(kvDev, isa.RArg0)
		b.Li64(kvDMA, kernel.DMAVA)
	}

	b.Label("mainloop")
	b.Bge(kvDone, kvTotal, "done")
	b.Li(isa.RArg0, int32(cfg.IRQLine))
	b.Syscall(kernel.SysIRQWait)
	if cfg.Driver == DriverLC {
		buildLCInput(b)
	} else {
		buildCCInput(b, cfg)
	}
	// Spurious wake (no frame): back to waiting.
	b.Ld(8, kvS0, rBase, kvReqLenOff)
	b.Beq(kvS0, isa.RZero, "mainloop")

	b.Call("process")

	if cfg.TraceOutput {
		// Contribute the response frame to the state signature before it
		// leaves the sphere of replication (§III-C).
		b.Mov(isa.RArg0, kvResp)
		b.Ld(8, isa.RArg1, rBase, kvRespLenOff)
		b.Syscall(kernel.SysFTAddTrace)
	}
	if cfg.Driver == DriverLC {
		buildLCOutput(b)
	} else {
		buildCCOutput(b, cfg)
	}
	b.Addi(kvDone, kvDone, 1)
	b.J("mainloop")

	b.Label("done")
	exitWith(b, 0)

	buildKVProcess(b, cfg)
	return b
}

// buildLCInput emits the LC driver's receive path: the primary reads the
// DMA mailbox with plain loads and publishes the frame (with a sequence
// number) into the cross-replica shared region; the other replicas spin
// on the sequence word. Branching on the replica ID is legal under
// LC-RCoE because instruction streams are not compared.
func buildLCInput(b *asm.Builder) {
	b.Syscall(kernel.SysGetRID)
	b.Mov(kvS0, isa.RArg0)
	b.Syscall(kernel.SysGetPrimary)
	b.Mov(kvS1, isa.RArg0)
	b.Bne(kvS0, kvS1, "lc_follower")
	// Primary: read the RX mailbox.
	b.Ld(8, kvS2, kvDMA, rxFlagOffC)
	b.Beq(kvS2, isa.RZero, "lc_pub_empty")
	b.Ld(8, kvS3, kvDMA, rxLenOffC)
	b.St(8, kvShr, kvS3, shLenOff)
	b.Mov(kvS2, kvS3)
	b.Addi(kvS4, kvShr, shDataOff)
	b.Addi(kvS5, kvDMA, rxDataOffC)
	b.Memcpy(kvS2, kvS4, kvS5)
	// Free the mailbox for the next frame.
	b.St(8, kvDMA, isa.RZero, rxFlagOffC)
	b.J("lc_pub")
	b.Label("lc_pub_empty")
	b.St(8, kvShr, isa.RZero, shLenOff)
	b.Label("lc_pub")
	b.Ld(8, kvS2, kvShr, shSeqOff)
	b.Addi(kvS2, kvS2, 1)
	b.St(8, kvShr, kvS2, shSeqOff)
	b.St(8, rBase, kvS2, kvLastSeqOff)
	b.J("lc_consume")
	// Followers: spin until the primary publishes.
	b.Label("lc_follower")
	b.Ld(8, kvS2, rBase, kvLastSeqOff)
	b.Label("lc_spin")
	b.Ld(8, kvS3, kvShr, shSeqOff)
	b.Beq(kvS3, kvS2, "lc_spin")
	b.St(8, rBase, kvS3, kvLastSeqOff)
	b.Label("lc_consume")
	// All replicas copy the published frame into private memory.
	b.Ld(8, kvS2, kvShr, shLenOff)
	b.St(8, rBase, kvS2, kvReqLenOff)
	b.Beq(kvS2, isa.RZero, "lc_in_done")
	b.Mov(kvS3, kvS2)
	b.Mov(kvS4, kvReq)
	b.Addi(kvS5, kvShr, shDataOff)
	b.Memcpy(kvS3, kvS4, kvS5)
	b.Label("lc_in_done")
}

// buildLCOutput emits the LC transmit path: only the primary writes the
// TX mailbox and rings the doorbell.
func buildLCOutput(b *asm.Builder) {
	b.Syscall(kernel.SysGetRID)
	b.Mov(kvS0, isa.RArg0)
	b.Syscall(kernel.SysGetPrimary)
	b.Mov(kvS1, isa.RArg0)
	b.Bne(kvS0, kvS1, "lc_tx_skip")
	b.Ld(8, kvS2, rBase, kvRespLenOff)
	b.St(8, kvDMA, kvS2, txLenOffC)
	b.Mov(kvS3, kvS2)
	b.Addi(kvS4, kvDMA, txDataOffC)
	b.Mov(kvS5, kvResp)
	b.Memcpy(kvS3, kvS4, kvS5)
	b.Li(kvS2, 1)
	b.St(8, kvDMA, kvS2, txFlagOffC)
	b.St(8, kvDev, kvS2, 0x08) // TX doorbell register
	b.Label("lc_tx_skip")
}

// DMA mailbox offsets must match internal/device; duplicated as constants
// here because guest code cannot import the device package's unexported
// layout. Kept in sync by TestKVAppMailboxOffsets.
const (
	rxFlagOffC = 0x0000
	rxLenOffC  = 0x0008
	rxDataOffC = 0x0010
	txFlagOffC = 0x1000
	txLenOffC  = 0x1008
	txDataOffC = 0x1010
)

// ftRead emits FT_Mem_Access(read, pa, va, size-in-reg-or-imm).
func ftRead(b *asm.Builder, pa uint64, va uint64, size int32) {
	b.Li(isa.RArg0, 0)
	b.Li64(isa.RArg1, pa)
	b.LiVA(isa.RArg2, va)
	b.Li(isa.RArg3, size)
	b.Syscall(kernel.SysFTMemAccess)
}

// ftWrite emits FT_Mem_Access(write, pa, va, size).
func ftWrite(b *asm.Builder, pa uint64, va uint64, size int32) {
	b.Li(isa.RArg0, 1)
	b.Li64(isa.RArg1, pa)
	b.LiVA(isa.RArg2, va)
	b.Li(isa.RArg3, size)
	b.Syscall(kernel.SysFTMemAccess)
}

// buildCCInput emits the CC driver's receive path: every device word is
// read through FT_Mem_Access, so all replicas execute the identical
// instruction stream and receive identical input (§III-E).
func buildCCInput(b *asm.Builder, cfg KVConfig) {
	ftRead(b, cfg.RxFlagPA, kernel.DataVA+kvScratchOff, 8)
	b.Ld(8, kvS0, rBase, kvScratchOff)
	b.St(8, rBase, isa.RZero, kvReqLenOff)
	b.Beq(kvS0, isa.RZero, "cc_in_done")
	ftRead(b, cfg.RxLenPA, kernel.DataVA+kvReqLenOff, 8)
	b.Ld(8, kvS1, rBase, kvReqLenOff)
	// Read the frame: the size is dynamic, so load it into R4 directly.
	b.Li(isa.RArg0, 0)
	b.Li64(isa.RArg1, cfg.RxDataPA)
	b.LiVA(isa.RArg2, kernel.DataVA+kvReqBufOff)
	b.Mov(isa.RArg3, kvS1)
	b.Syscall(kernel.SysFTMemAccess)
	// Release the mailbox.
	b.St(8, rBase, isa.RZero, kvScratchOff)
	ftWrite(b, cfg.RxFlagPA, kernel.DataVA+kvScratchOff, 8)
	b.Label("cc_in_done")
}

// buildCCOutput emits the CC transmit path through the kernel.
func buildCCOutput(b *asm.Builder, cfg KVConfig) {
	ftWrite(b, cfg.TxLenPA, kernel.DataVA+kvRespLenOff, 8)
	b.Ld(8, kvS1, rBase, kvRespLenOff)
	b.Li(isa.RArg0, 1)
	b.Li64(isa.RArg1, cfg.TxDataPA)
	b.LiVA(isa.RArg2, kernel.DataVA+kvRespBufOff)
	b.Mov(isa.RArg3, kvS1)
	b.Syscall(kernel.SysFTMemAccess)
	b.Li(kvS1, 1)
	b.St(8, rBase, kvS1, kvScratchOff)
	ftWrite(b, cfg.TxFlagPA, kernel.DataVA+kvScratchOff, 8)
	ftWrite(b, cfg.DoorbellPA, kernel.DataVA+kvScratchOff, 8)
}

// buildKVProcess emits the request processor: parse the frame, FNV-1a
// hash the key, probe the open-addressed table, and build the response.
func buildKVProcess(b *asm.Builder, cfg KVConfig) {
	b.Label("process")
	b.Ld(1, kvOp, kvReq, 0)
	b.Ld(1, kvKLen, kvReq, 1)
	b.Ld(2, kvVLen, kvReq, 2)
	b.Ld(4, kvRID, kvReq, 4)

	// FNV-1a hash of the key.
	b.Li64(kvSlot, 0xcbf29ce484222325)
	b.Li(kvS0, 0)
	b.Label("hash")
	b.Bge(kvS0, kvKLen, "hashed")
	b.Add(kvS1, kvReq, kvS0)
	b.Ld(1, kvS2, kvS1, 8)
	b.Xor(kvSlot, kvSlot, kvS2)
	b.Li64(kvS2, 0x100000001b3)
	b.Mul(kvSlot, kvSlot, kvS2)
	b.Addi(kvS0, kvS0, 1)
	b.J("hash")
	b.Label("hashed")
	// slot = table + (h & (slots-1)) * slotSize
	b.Li64(kvS1, cfg.Slots-1)
	b.And(kvSlot, kvSlot, kvS1)
	b.Li64(kvS1, kvSlotSize)
	b.Mul(kvSlot, kvSlot, kvS1)
	b.Add(kvSlot, kvSlot, kvTab)

	// SCAN takes the raw slot address; GET/SET probe for the key.
	b.Li(kvS0, 3)
	b.Beq(kvOp, kvS0, "do_scan")

	// Linear probing, at most Slots probes.
	b.Li(kvS0, 0) // probe counter
	b.Label("probe")
	b.Ld(8, kvS1, kvSlot, 0) // state word = key length, 0 if empty
	b.Beq(kvS1, isa.RZero, "slot_empty")
	b.Bne(kvS1, kvKLen, "next_slot")
	b.Li(kvS2, 0)
	b.Label("keycmp")
	b.Bge(kvS2, kvKLen, "slot_found")
	b.Add(kvS3, kvSlot, kvS2)
	b.Ld(1, kvS4, kvS3, 8)
	b.Add(kvS3, kvReq, kvS2)
	b.Ld(1, kvS5, kvS3, 8)
	b.Bne(kvS4, kvS5, "next_slot")
	b.Addi(kvS2, kvS2, 1)
	b.J("keycmp")
	b.Label("next_slot")
	b.Addi(kvSlot, kvSlot, kvSlotSize)
	b.Bltu(kvSlot, kvTEnd, "probe_cont")
	b.Mov(kvSlot, kvTab) // wrap around
	b.Label("probe_cont")
	b.Addi(kvS0, kvS0, 1)
	b.Li64(kvS1, cfg.Slots)
	b.Blt(kvS0, kvS1, "probe")
	// Table full and key absent: treat as empty for SET, miss for GET.
	b.Label("slot_empty")
	b.Li(kvS0, 2)
	b.Beq(kvOp, kvS0, "do_insert")
	// GET miss.
	b.Li(kvS0, 1) // status not-found
	b.Li(kvS1, 0) // value length
	b.J("respond")

	b.Label("slot_found")
	b.Li(kvS0, 2)
	b.Beq(kvOp, kvS0, "do_update")
	// GET hit: copy the stored value into the response.
	b.Ld(8, kvS1, kvSlot, 40) // value length
	b.Mov(kvS2, kvS1)
	b.Addi(kvS3, kvResp, 8)
	b.Addi(kvS4, kvSlot, kvValOff)
	b.Memcpy(kvS2, kvS3, kvS4)
	b.Li(kvS0, 0)
	b.J("respond")

	// SET on an existing key: overwrite the value.
	b.Label("do_update")
	b.J("write_value")
	// SET on an empty slot: write the key first.
	b.Label("do_insert")
	b.St(8, kvSlot, kvKLen, 0)
	b.Mov(kvS2, kvKLen)
	b.Addi(kvS3, kvSlot, 8)
	b.Addi(kvS4, kvReq, 8)
	b.Memcpy(kvS2, kvS3, kvS4)
	b.Label("write_value")
	b.St(8, kvSlot, kvVLen, 40)
	b.Mov(kvS2, kvVLen)
	b.Addi(kvS3, kvSlot, kvValOff)
	b.Add(kvS4, kvReq, kvKLen)
	b.Addi(kvS4, kvS4, 8)
	b.Memcpy(kvS2, kvS3, kvS4)
	b.Li(kvS0, 0) // status OK
	b.Li(kvS1, 0) // no value in response
	b.J("respond")

	// SCAN: touch `count` consecutive slots, folding their state words
	// into an 8-byte digest (the read cost of a YCSB-E range scan).
	b.Label("do_scan")
	b.Li(kvS0, 0) // i
	b.Li(kvS2, 0) // digest
	b.Label("scan_loop")
	b.Bge(kvS0, kvVLen, "scan_done")
	b.Ld(8, kvS3, kvSlot, 0)
	b.Xor(kvS2, kvS2, kvS3)
	b.Ld(8, kvS3, kvSlot, 40)
	b.Add(kvS2, kvS2, kvS3)
	b.Addi(kvSlot, kvSlot, kvSlotSize)
	b.Bltu(kvSlot, kvTEnd, "scan_cont")
	b.Mov(kvSlot, kvTab)
	b.Label("scan_cont")
	b.Addi(kvS0, kvS0, 1)
	b.J("scan_loop")
	b.Label("scan_done")
	b.St(8, kvResp, kvS2, 8)
	b.Li(kvS0, 0)
	b.Li(kvS1, 8)
	b.J("respond")

	// Build the response header: status, value length, request ID.
	b.Label("respond")
	b.St(1, kvResp, kvS0, 0)
	b.St(1, kvResp, isa.RZero, 1)
	b.St(2, kvResp, kvS1, 2)
	b.St(4, kvResp, kvRID, 4)
	b.Addi(kvS1, kvS1, 8)
	b.St(8, rBase, kvS1, kvRespLenOff)
	b.Ret()
}
