package guest

import (
	"rcoe/internal/asm"
	"rcoe/internal/isa"
	"rcoe/internal/kernel"
)

// WildPointer is the decorrelation regression guest: a deterministic
// software bug that bit-identical replicas mask and structurally
// decorrelated replicas detect.
//
// The program fills a table with position-dependent values, then performs
// one wild store through an absolute address literal that (deliberately)
// escaped relocation — the classic hard-coded-pointer bug. It finally
// checksums the whole table and exits with the sum, which the kernel
// folds into the vote signature.
//
// Correlated replicas place the table identically, so the wild store
// corrupts the same slot in all of them: every checksum is equally wrong,
// the vote is unanimous, and the corruption escapes as SDC. Decorrelated
// replicas hold the table at shifted bases, so the same absolute address
// lands on a *different* slot in each; the checksums diverge and the exit
// vote detects what voting alone cannot.
//
// The wild address sits kernel.MaxLayoutShift past the table base, so it
// stays inside the (shifted) data segment for every legal layout delta —
// the corruption is always silent at store time, never a memory fault.
func WildPointer() Program {
	const (
		wildOff    = kernel.MaxLayoutShift + 0x1000
		tableBytes = wildOff + 0x1000
	)
	return Program{
		Name:      "wildptr",
		DataBytes: tableBytes,
		Build: func() *asm.Builder {
			b := asm.New()
			dataPtr(b, rBase)
			// Fill: slot at byte offset o holds o*phi+1, so every slot is
			// distinct and corrupting different slots changes the checksum
			// by different amounts.
			b.Li(rT0, 0)
			b.Li64(rT1, uint64(tableBytes))
			b.Li64(rT2, 0x9E3779B9)
			b.Label("fill")
			b.Mul(rT3, rT0, rT2)
			b.Addi(rT3, rT3, 1)
			b.Add(rT4, rBase, rT0)
			b.St(8, rT4, rT3, 0)
			b.Addi(rT0, rT0, 8)
			b.Blt(rT0, rT1, "fill")
			// The bug: an absolute data address via Li64, not LiVA, so the
			// loader cannot shift it with the rest of the layout.
			b.Li64(rT5, uint64(kernel.DataVA+wildOff))
			b.Li64(rT6, 0xDEADBEEFCAFEF00D)
			b.St(8, rT5, rT6, 0)
			// Checksum the table and exit with the sum; sysExit folds the
			// code into the signature, where replicas vote on it.
			b.Li(rT0, 0)
			b.Li(rT7, 0)
			b.Label("sum")
			b.Add(rT4, rBase, rT0)
			b.Ld(8, rT3, rT4, 0)
			b.Add(rT7, rT7, rT3)
			b.Addi(rT0, rT0, 8)
			b.Blt(rT0, rT1, "sum")
			b.Mov(isa.RArg0, rT7)
			b.Syscall(kernel.SysExit)
			return b
		},
	}
}
