package guest

import (
	"rcoe/internal/asm"
	"rcoe/internal/isa"
	"rcoe/internal/kernel"
)

// Membench builds the memory-bandwidth benchmark of Table V: memcpy()
// between two page-aligned buffers, each several times the last-level
// cache size, repeated `reps` times. Replicas executing it concurrently
// contend for the shared memory bus. The copy uses the rep-style MEMCPY
// block instruction — the x86 memcpy() implementation.
func Membench(bufBytes uint64, reps int64) Program {
	return Program{
		Name:      "membench",
		DataBytes: 2*bufBytes + 8192,
		Stacks:    1,
		Build: func() *asm.Builder {
			b := asm.New()
			dataPtr(b, rBase)
			b.Li(rCnt, 0)
			b.Li64(rEnd, uint64(reps))
			b.Label("rep")
			b.Li64(rT0, bufBytes)      // length
			b.Addi(rT1, rBase, 4096)   // dst
			b.Li64(rT2, bufBytes+8192) // src offset
			b.Add(rT2, rT2, rBase)     // src
			b.Memcpy(rT0, rT1, rT2)
			b.Addi(rCnt, rCnt, 1)
			b.Blt(rCnt, rEnd, "rep")
			exitWith(b, 0)
			return b
		},
	}
}

// MembenchLoop is the Arm-flavoured memory-bandwidth benchmark: ordinary
// word-copy loops, as an Armv7 memcpy() really compiles (no rep-family
// instruction exists there), so compiler-assisted CC-RCoE can catch up
// precisely inside the copy.
func MembenchLoop(bufBytes uint64, reps int64) Program {
	return Program{
		Name:      "membench-loop",
		DataBytes: 2*bufBytes + 8192,
		Stacks:    1,
		Build: func() *asm.Builder {
			b := asm.New()
			dataPtr(b, rBase)
			b.Li(rCnt, 0)
			b.Li64(rEnd, uint64(reps))
			b.Label("rep")
			b.Addi(rT1, rBase, 4096)   // dst cursor
			b.Li64(rT2, bufBytes+8192) // src offset
			b.Add(rT2, rT2, rBase)     // src cursor
			b.Add(rT3, rT2, isa.RZero) // loop bound = src + len
			b.Li64(rT4, bufBytes)
			b.Add(rT3, rT3, rT4)
			b.Label("copy")
			// Copy 32 bytes per iteration, 8 at a time.
			for off := int32(0); off < 32; off += 8 {
				b.Ld(8, rT5, rT2, off)
				b.St(8, rT1, rT5, off)
			}
			b.Addi(rT1, rT1, 32)
			b.Addi(rT2, rT2, 32)
			b.Bltu(rT2, rT3, "copy")
			b.Addi(rCnt, rCnt, 1)
			b.Blt(rCnt, rEnd, "rep")
			exitWith(b, 0)
			return b
		},
	}
}

// DataRace builds the §V-A1 demonstrator: `threads` threads each loop
// `iters` times reading a shared counter into a register, idling briefly,
// incrementing the register, and writing it back — with no locking. Under
// LC-RCoE the replicas preempt at different instructions and their final
// counters diverge with high probability; under CC-RCoE preemption is
// instruction-accurate and the replicas stay identical (though the value
// still differs from the locked result).
//
// The final counter is stored at DataVA for cross-replica comparison.
func DataRace(threads int, iters, idleLoops int64) Program {
	return Program{
		Name:      "datarace",
		DataBytes: 4096,
		Stacks:    threads + 1,
		Build: func() *asm.Builder {
			b := asm.New()
			// Main thread: spawn the workers, then work too.
			dataPtr(b, rBase)
			b.Li(rT0, 1) // worker index
			b.Li(rT1, int32(threads))
			b.Label("spawn_loop")
			b.Bge(rT0, rT1, "spawned")
			b.LiLabel(1, "worker") // R1 = entry
			// R2 = stack top for worker i: StackTopVA - i*StackSize.
			b.LiVA(rT2, kernel.StackTopVA)
			b.Shli(rT3, rT0, 16) // i * 64 KiB
			b.Sub(2, rT2, rT3)
			b.Mov(3, rT0) // R3 = arg (thread index)
			b.Syscall(kernel.SysSpawn)
			b.Addi(rT0, rT0, 1)
			b.J("spawn_loop")
			b.Label("spawned")
			b.Li(1, 0)
			b.J("body")

			// Worker entry (arg in R1, ignored).
			b.Label("worker")
			dataPtr(b, rBase)
			b.Label("body")
			b.Li(rCnt, 0)
			b.Li64(rEnd, uint64(iters))
			b.Label("iter")
			b.Ld(8, rT4, rBase, 0) // read shared counter
			// Idle briefly with the value held in a register — the race
			// window.
			b.Li(rT5, 0)
			b.Li64(rT6, uint64(idleLoops))
			b.Label("idle")
			b.Addi(rT5, rT5, 1)
			b.Blt(rT5, rT6, "idle")
			b.Addi(rT4, rT4, 1)    // increment the stale copy
			b.St(8, rBase, rT4, 0) // write back (lost-update race)
			b.Addi(rCnt, rCnt, 1)
			b.Blt(rCnt, rEnd, "iter")
			exitWith(b, 0)
			return b
		},
	}
}

// AtomicCounter is the race-free variant of DataRace: the increment goes
// through the kernel-mediated atomic system call, so it is correct under
// both RCoE models (and is the required form for compiler-assisted
// CC-RCoE instead of ldrex/strex loops, §III-D).
func AtomicCounter(threads int, iters int64) Program {
	return Program{
		Name:      "atomic-counter",
		DataBytes: 4096,
		Stacks:    threads + 1,
		Build: func() *asm.Builder {
			b := asm.New()
			dataPtr(b, rBase)
			b.Li(rT0, 1)
			b.Li(rT1, int32(threads))
			b.Label("spawn_loop")
			b.Bge(rT0, rT1, "spawned")
			b.LiLabel(1, "worker")
			b.LiVA(rT2, kernel.StackTopVA)
			b.Shli(rT3, rT0, 16)
			b.Sub(2, rT2, rT3)
			b.Mov(3, rT0)
			b.Syscall(kernel.SysSpawn)
			b.Addi(rT0, rT0, 1)
			b.J("spawn_loop")
			b.Label("spawned")
			b.J("body")

			b.Label("worker")
			dataPtr(b, rBase)
			b.Label("body")
			b.Li(rCnt, 0)
			b.Li64(rEnd, uint64(iters))
			b.Label("iter")
			b.LiVA(1, kernel.DataVA) // R1 = counter VA
			b.Li(2, 1)               // R2 = delta
			b.Syscall(kernel.SysAtomicAdd)
			b.Addi(rCnt, rCnt, 1)
			b.Blt(rCnt, rEnd, "iter")
			exitWith(b, 0)
			return b
		},
	}
}
