package guest

import (
	"rcoe/internal/asm"
	"rcoe/internal/kernel"
)

// SplashKernel parameterises one SPLASH-2-style parallel scientific
// kernel. The paper observes (Table IV) that CC-RCoE overhead in a VM is
// driven by the share of time spent in *tight* loops — where breakpoint
// catch-up is expensive — ranging from 1.09x (RAYTRACE, mostly
// straight-line work) to 12x (CHOLESKY, dominated by tight loops). Each
// kernel here mixes tight three-instruction loops with unrolled
// straight-line blocks in the proportions that reproduce that spread.
type SplashKernel struct {
	Name string
	// Outer is the number of outer iterations per thread.
	Outer int64
	// TightIters is the tight-loop trip count per outer iteration.
	TightIters int64
	// StraightOps is the number of unrolled arithmetic ops per outer
	// iteration.
	StraightOps int
	// PaperFactor is the CC-D overhead factor reported in Table IV.
	PaperFactor float64
}

// SplashSuite returns the fourteen kernels of Table IV. The tight/straight
// mixes are tuned so the *relative* ordering and rough magnitudes match
// the paper; absolute cycle counts are simulator-specific.
func SplashSuite() []SplashKernel {
	return []SplashKernel{
		{Name: "BARNES", Outer: 60, TightIters: 120, StraightOps: 700, PaperFactor: 1.52},
		{Name: "CHOLESKY", Outer: 60, TightIters: 2200, StraightOps: 60, PaperFactor: 12.08},
		{Name: "FFT", Outer: 60, TightIters: 300, StraightOps: 600, PaperFactor: 2.22},
		{Name: "FMM", Outer: 60, TightIters: 280, StraightOps: 620, PaperFactor: 2.11},
		{Name: "LU-C", Outer: 60, TightIters: 1300, StraightOps: 160, PaperFactor: 6.83},
		{Name: "LU-NC", Outer: 60, TightIters: 1150, StraightOps: 180, PaperFactor: 6.12},
		{Name: "OCEAN-C", Outer: 60, TightIters: 420, StraightOps: 500, PaperFactor: 2.71},
		{Name: "OCEAN-NC", Outer: 60, TightIters: 400, StraightOps: 510, PaperFactor: 2.65},
		{Name: "RADIOSITY", Outer: 60, TightIters: 30, StraightOps: 850, PaperFactor: 1.12},
		{Name: "RADIX", Outer: 60, TightIters: 80, StraightOps: 780, PaperFactor: 1.34},
		{Name: "RAYTRACE", Outer: 60, TightIters: 12, StraightOps: 900, PaperFactor: 1.09},
		{Name: "VOLREND", Outer: 60, TightIters: 130, StraightOps: 690, PaperFactor: 1.54},
		{Name: "WATER-NS", Outer: 60, TightIters: 100, StraightOps: 740, PaperFactor: 1.41},
		{Name: "WATER-S", Outer: 60, TightIters: 65, StraightOps: 800, PaperFactor: 1.25},
	}
}

// Program builds the kernel for the given thread count (the paper's
// NPROC). Threads work independently and re-join through thread exit; the
// data region gives each thread a private accumulator slot.
func (k SplashKernel) Program(nproc int) Program {
	outer, tight, straight := k.Outer, k.TightIters, k.StraightOps
	return Program{
		Name:      "splash-" + k.Name,
		DataBytes: 65536,
		Stacks:    nproc + 1,
		Build: func() *asm.Builder {
			b := asm.New()
			// Spawn nproc-1 workers; the main thread is worker 0.
			b.Li(rT0, 1)
			b.Li(rT1, int32(nproc))
			b.Label("spawn")
			b.Bge(rT0, rT1, "go")
			b.LiLabel(1, "worker")
			b.LiVA(rT2, kernel.StackTopVA)
			b.Shli(rT3, rT0, 16)
			b.Sub(2, rT2, rT3)
			b.Mov(3, rT0)
			b.Syscall(kernel.SysSpawn)
			b.Addi(rT0, rT0, 1)
			b.J("spawn")
			b.Label("go")
			b.Li(1, 0)
			b.Label("worker")
			dataPtr(b, rBase)
			// Private slot: DataVA + tid*64.
			b.Shli(rT9, 1, 6)
			b.Add(rBase, rBase, rT9)
			b.Fconst(rT5, 1.000001)
			b.Fconst(rT6, 0.999999)
			b.Li(rCnt, 0)
			b.Li64(rEnd, uint64(outer))
			b.Label("outer")
			// Tight phase: three-instruction FP loop.
			b.Li(rT0, 0)
			b.Li64(rT1, uint64(tight))
			b.Label("tight")
			b.Fmul(rT5, rT5, rT6)
			b.Addi(rT0, rT0, 1)
			b.Blt(rT0, rT1, "tight")
			// Straight phase: unrolled arithmetic block.
			for i := 0; i < straight/4; i++ {
				b.Fmul(rT5, rT5, rT6)
				b.Fadd(rT7, rT5, rT6)
				b.Mul(rT8, rCnt, rCnt)
				b.Xor(rT8, rT8, rT0)
			}
			b.St(8, rBase, rT5, 0)
			b.Addi(rCnt, rCnt, 1)
			b.Blt(rCnt, rEnd, "outer")
			exitWith(b, 0)
			return b
		},
	}
}
