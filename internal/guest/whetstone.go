package guest

import (
	"rcoe/internal/asm"
)

// Whetstone builds the floating-point microbenchmark of Table II. It is
// structured, like the original, as several *tight* loops (the classic
// modules N1, N2, N3, N6, N7, N8), so a CC-RCoE synchronisation point is
// very likely to land inside a tight loop — the worst case for the
// breakpoint catch-up protocol, producing both the ~20% TMR overhead and
// the high run-to-run variance the paper reports.
func Whetstone(loops int64) Program {
	return Program{
		Name:      "whetstone",
		DataBytes: 4096,
		Stacks:    1,
		Build: func() *asm.Builder {
			b := asm.New()
			const (
				fX  = rT0
				fY  = rT1
				fZ  = rT2
				fC1 = rT3
				fC2 = rT4
				fT  = rT5
			)
			b.Fconst(fC1, 0.49999975)
			b.Fconst(fC2, 2.0)
			b.Fconst(fX, 1.0)
			b.Fconst(fY, -1.0)
			b.Fconst(fZ, -1.0)

			// Module N1: simple identifiers — tight 4-op loop.
			b.Li(rCnt, 0)
			b.Li64(rEnd, uint64(loops*4))
			b.Label("n1")
			b.Fadd(fT, fX, fY)
			b.Fmul(fX, fT, fC1)
			b.Fsub(fY, fX, fZ)
			b.Addi(rCnt, rCnt, 1)
			b.Blt(rCnt, rEnd, "n1")

			// Module N2: array elements — tight loop with memory.
			dataPtr(b, rBase)
			b.Li(rCnt, 0)
			b.Li64(rEnd, uint64(loops*3))
			b.Label("n2")
			b.Andi(rT6, rCnt, 31)
			b.Shli(rT6, rT6, 3)
			b.Add(rT6, rT6, rBase)
			b.Ld(8, rT7, rT6, 0)
			b.Fadd(rT7, rT7, fC1)
			b.St(8, rT6, rT7, 0)
			b.Addi(rCnt, rCnt, 1)
			b.Blt(rCnt, rEnd, "n2")

			// Module N3: trigonometric functions — tight, expensive ops.
			b.Li(rCnt, 0)
			b.Li64(rEnd, uint64(loops))
			b.Label("n3")
			b.Fsin(fT, fX)
			b.Fcos(rT6, fX)
			b.Fadd(fX, fT, rT6)
			b.Fatan(fX, fX)
			b.Addi(rCnt, rCnt, 1)
			b.Blt(rCnt, rEnd, "n3")

			// Module N6: division-heavy loop.
			b.Fconst(fX, 0.75)
			b.Li(rCnt, 0)
			b.Li64(rEnd, uint64(loops*2))
			b.Label("n6")
			b.Fdiv(fT, fC2, fX)
			b.Fadd(fX, fT, fC1)
			b.Fdiv(fX, fX, fC2)
			b.Addi(rCnt, rCnt, 1)
			b.Blt(rCnt, rEnd, "n6")

			// Module N7: exp/log pairs.
			b.Fconst(fX, 0.5)
			b.Li(rCnt, 0)
			b.Li64(rEnd, uint64(loops))
			b.Label("n7")
			b.Fexp(fT, fX)
			b.Flog(fX, fT)
			b.Fadd(fX, fX, fC1)
			b.Fdiv(fX, fX, fC2)
			b.Addi(rCnt, rCnt, 1)
			b.Blt(rCnt, rEnd, "n7")

			// Module N8: sqrt chain.
			b.Fconst(fX, 75.0)
			b.Li(rCnt, 0)
			b.Li64(rEnd, uint64(loops*2))
			b.Label("n8")
			b.Fsqrt(fT, fX)
			b.Fmul(fX, fT, fC2)
			b.Addi(rCnt, rCnt, 1)
			b.Blt(rCnt, rEnd, "n8")

			exitWith(b, 0)
			return b
		},
	}
}
