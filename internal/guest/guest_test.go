package guest

import (
	"bytes"
	"crypto/md5"
	"testing"

	"rcoe/internal/compilerpass"
	"rcoe/internal/core"
	"rcoe/internal/kernel"
	"rcoe/internal/machine"
)

// runSystem assembles prog for the config and runs it to completion.
func runSystem(t *testing.T, cfg core.Config, p Program, budget uint64) *core.System {
	t.Helper()
	sys := buildSystem(t, cfg, p)
	if err := sys.Run(budget); err != nil {
		t.Fatalf("%s: %v (detections=%v)", p.Name, err, sys.Detections())
	}
	return sys
}

func buildSystem(t *testing.T, cfg core.Config, p Program) *core.System {
	t.Helper()
	b := p.Build()
	if cfg.Mode == core.ModeCC && !cfg.Profile.PrecisePMU {
		compilerpass.Instrument(b)
	}
	prog, err := b.Assemble(kernel.TextVA)
	if err != nil {
		t.Fatalf("%s: assemble: %v", p.Name, err)
	}
	if cfg.Mode == core.ModeCC && !cfg.Profile.PrecisePMU {
		cfg.BranchSites = compilerpass.BranchSites(prog, kernel.TextVA)
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Load(kernel.ProcessConfig{
		Prog: prog, DataBytes: p.DataBytes, Data: p.Data, Arg: p.Arg, Stacks: p.Stacks,
		Relocs: b.Relocs(),
	}); err != nil {
		t.Fatal(err)
	}
	return sys
}

// readData reads n bytes at DataVA+off from a replica's memory.
func readData(t *testing.T, sys *core.System, rid int, off uint64, n int) []byte {
	t.Helper()
	buf, err := sys.Replica(rid).K.CopyFromUser(kernel.DataVA+off, n)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestDhrystoneCompletesAllModes(t *testing.T) {
	for _, cfg := range []core.Config{
		{Mode: core.ModeNone, TickCycles: 10000},
		{Mode: core.ModeLC, Replicas: 2, TickCycles: 10000},
		{Mode: core.ModeCC, Replicas: 2, TickCycles: 10000},
	} {
		sys := runSystem(t, cfg, Dhrystone(2000), 100_000_000)
		for rid := 0; rid < cfg.Replicas; rid++ {
			if rid == 0 && cfg.Replicas == 0 {
				continue
			}
		}
		_ = sys
	}
}

func TestWhetstoneCompletes(t *testing.T) {
	sys := runSystem(t, core.Config{Mode: core.ModeLC, Replicas: 3, TickCycles: 10000},
		Whetstone(300), 100_000_000)
	if sys.AliveCount() != 3 {
		t.Fatalf("alive = %d", sys.AliveCount())
	}
}

func TestCCArmCompilerAssisted(t *testing.T) {
	cfg := core.Config{
		Mode: core.ModeCC, Replicas: 2, TickCycles: 10000,
		Profile: machine.Arm(),
	}
	sys := runSystem(t, cfg, Dhrystone(1500), 200_000_000)
	// The Arm protocol pays two debug exceptions per breakpoint, so any
	// catch-up shows in the counters.
	var debugExc uint64
	for rid := 0; rid < 2; rid++ {
		debugExc += sys.Replica(rid).DebugExceptions
	}
	if sys.Stats().Syncs == 0 {
		t.Fatalf("no synchronisations happened")
	}
	t.Logf("arm CC: syncs=%d debug exceptions=%d", sys.Stats().Syncs, debugExc)
}

func TestMD5MatchesCrypto(t *testing.T) {
	msg := make([]byte, 300)
	for i := range msg {
		msg[i] = byte(i*31 + 7)
	}
	want := md5.Sum(msg)
	p := MD5(MD5Pad(msg))
	sys := runSystem(t, core.Config{Mode: core.ModeNone, TickCycles: 50000}, p, 500_000_000)
	got := readData(t, sys, 0, md5DigestOff, 16)
	if !bytes.Equal(got, want[:]) {
		t.Fatalf("digest = %x, want %x", got, want)
	}
}

func TestMD5MatchesCryptoMultiBlockReplicated(t *testing.T) {
	msg := make([]byte, 1000)
	for i := range msg {
		msg[i] = byte(i ^ 0x5A)
	}
	want := md5.Sum(msg)
	p := MD5(MD5Pad(msg))
	sys := runSystem(t, core.Config{Mode: core.ModeCC, Replicas: 2, TickCycles: 40000},
		p, 1_000_000_000)
	for rid := 0; rid < 2; rid++ {
		got := readData(t, sys, rid, md5DigestOff, 16)
		if !bytes.Equal(got, want[:]) {
			t.Fatalf("replica %d digest = %x, want %x", rid, got, want)
		}
	}
}

// TestDataRaceLCDivergesCCDoesNot is the §V-A1 experiment: racy threads
// under LC-RCoE produce divergent replica states with high probability;
// under CC-RCoE the replicas never diverge.
func TestDataRaceLCDivergesCCDoesNot(t *testing.T) {
	const threads, iters, idle = 16, 80, 40
	diverged := 0
	attempts := []uint64{1900, 2300, 2800, 3400, 4100}
	for _, tick := range attempts {
		sys := runSystem(t, core.Config{Mode: core.ModeLC, Replicas: 2, TickCycles: tick},
			DataRace(threads, iters, idle), 500_000_000)
		c0 := readData(t, sys, 0, 0, 8)
		c1 := readData(t, sys, 1, 0, 8)
		if !bytes.Equal(c0, c1) {
			diverged++
		}
	}
	if diverged == 0 {
		t.Fatalf("LC replicas never diverged across %d racy runs", len(attempts))
	}
	for _, tick := range attempts[:3] { // CC runs are slow: constant chasing
		sys := runSystem(t, core.Config{Mode: core.ModeCC, Replicas: 2, TickCycles: tick},
			DataRace(threads, iters, idle), 2_000_000_000)
		c0 := readData(t, sys, 0, 0, 8)
		c1 := readData(t, sys, 1, 0, 8)
		if !bytes.Equal(c0, c1) {
			t.Fatalf("CC replicas diverged (tick %d): %x vs %x", tick, c0, c1)
		}
	}
	t.Logf("LC diverged in %d/%d runs; CC in 0/3", diverged, len(attempts))
}

func TestAtomicCounterAlwaysCorrect(t *testing.T) {
	const threads, iters = 6, 30
	for _, mode := range []core.Mode{core.ModeLC, core.ModeCC} {
		sys := runSystem(t, core.Config{Mode: mode, Replicas: 2, TickCycles: 3000},
			AtomicCounter(threads, iters), 500_000_000)
		for rid := 0; rid < 2; rid++ {
			buf := readData(t, sys, rid, 0, 8)
			var v uint64
			for i := 7; i >= 0; i-- {
				v = v<<8 | uint64(buf[i])
			}
			if v != threads*iters {
				t.Fatalf("%v replica %d counter = %d, want %d", mode, rid, v, threads*iters)
			}
		}
	}
}

func TestMembenchCopiesCorrectly(t *testing.T) {
	p := Membench(64<<10, 2)
	sys := buildSystem(t, core.Config{Mode: core.ModeNone, TickCycles: 0}, p)
	// Fill the source buffer (at DataVA + bufBytes + 8192).
	src := make([]byte, 64<<10)
	for i := range src {
		src[i] = byte(i * 13)
	}
	if err := sys.Replica(0).K.CopyToUser(kernel.DataVA+(64<<10)+8192, src); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(200_000_000); err != nil {
		t.Fatal(err)
	}
	dst := readData(t, sys, 0, 4096, 64<<10)
	if !bytes.Equal(dst, src) {
		t.Fatalf("membench copy corrupted")
	}
}

func TestSplashKernelsComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("slow in -short mode")
	}
	k := SplashSuite()[10] // RAYTRACE: cheapest
	sys := runSystem(t, core.Config{Mode: core.ModeNone, TickCycles: 20000},
		k.Program(2), 500_000_000)
	if !sys.Finished() {
		t.Fatalf("splash kernel did not finish")
	}
}

func TestSplashSuiteShape(t *testing.T) {
	suite := SplashSuite()
	if len(suite) != 14 {
		t.Fatalf("suite has %d kernels, want 14 (Table IV)", len(suite))
	}
	names := map[string]bool{}
	for _, k := range suite {
		if names[k.Name] {
			t.Fatalf("duplicate kernel %s", k.Name)
		}
		names[k.Name] = true
		if k.PaperFactor < 1.0 {
			t.Fatalf("%s: paper factor %v < 1", k.Name, k.PaperFactor)
		}
	}
	if !names["CHOLESKY"] || !names["RAYTRACE"] {
		t.Fatalf("missing expected kernels")
	}
}
