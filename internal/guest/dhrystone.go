package guest

import (
	"rcoe/internal/asm"
	"rcoe/internal/isa"
)

// Dhrystone builds the integer microbenchmark of Table II. Like the
// original, its main body is one long loop mixing arithmetic, string
// copies, comparisons and procedure calls — which is why CC-RCoE
// synchronisation points rarely land in a tight loop and the overhead
// stays low (4-5% in the paper).
func Dhrystone(loops int64) Program {
	return Program{
		Name:      "dhrystone",
		DataBytes: 4096,
		Stacks:    1,
		Build: func() *asm.Builder {
			b := asm.New()
			dataPtr(b, rBase)
			// Seed the "record" buffer the string ops copy around.
			b.Li(rT0, 64)
			b.Mov(rT1, rBase)
			b.Memset(rT0, rT1, 0x41)
			b.Li(rCnt, 0)
			b.Li64(rEnd, uint64(loops))
			b.Label("main_loop")
			// Proc_1/Proc_3-style arithmetic chain.
			b.Addi(rT0, rCnt, 2)
			b.Mul(rT1, rT0, rT0)
			b.Addi(rT1, rT1, 3)
			b.Li(rT2, 7)
			b.Divu(rT3, rT1, rT2)
			b.Rem(rT4, rT1, rT2)
			b.Add(rT5, rT3, rT4)
			b.Xor(rT5, rT5, rT0)
			b.Shli(rT6, rT5, 3)
			b.Sub(rT6, rT6, rT5)
			// Str_Copy: 30-character string copy via the rep-style copy.
			b.Li(rT7, 32)
			b.Addi(rT8, rBase, 64)
			b.Mov(rT9, rBase)
			b.Memcpy(rT7, rT8, rT9)
			// Func_2-style comparison chain.
			b.Andi(rT0, rT6, 255)
			b.Slti(rT1, rT0, 128)
			b.Beq(rT1, isa.RZero, "no_inc")
			b.Addi(rT2, rT2, 1)
			b.Label("no_inc")
			// Proc_7 call.
			b.Call("proc7")
			// Array write: Arr_1[i % 32] = i.
			b.Andi(rT0, rCnt, 31)
			b.Shli(rT0, rT0, 3)
			b.Add(rT0, rT0, rBase)
			b.St(8, rT0, rCnt, 128)
			b.Addi(rCnt, rCnt, 1)
			b.Blt(rCnt, rEnd, "main_loop")
			exitWith(b, 0)
			// Proc_7(a, b) -> adds and returns (straight-line callee).
			b.Label("proc7")
			b.Addi(rT3, rT3, 5)
			b.Add(rT4, rT3, rT2)
			b.Sub(rT5, rT4, rT0)
			b.Ret()
			return b
		},
	}
}
