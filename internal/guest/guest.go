// Package guest contains the user-level programs the evaluation runs
// inside the replicated system, written in the simulated ISA: the
// Dhrystone and Whetstone microbenchmarks, the memory-bandwidth copy
// benchmark, the data-race demonstrator, MD5, SPLASH-2-style parallel
// kernels, and the Redis-stand-in key-value server with its driver.
//
// Each program is produced as a fresh assembly builder so that callers can
// run it plain (LC, hardware-counted CC) or instrumented by the compiler
// pass (compiler-assisted CC).
package guest

import (
	"rcoe/internal/asm"
	"rcoe/internal/isa"
	"rcoe/internal/kernel"
)

// Program couples a builder factory with the process resources it needs.
type Program struct {
	// Name identifies the workload in reports.
	Name string
	// Build returns a fresh builder for the program.
	Build func() *asm.Builder
	// DataBytes is the data-region size the program needs.
	DataBytes uint64
	// Data optionally pre-populates the data region.
	Data []byte
	// Arg is passed to the main thread in R1.
	Arg uint64
	// Stacks is the number of thread stacks to reserve.
	Stacks int
}

// Registers conventionally used by the guest programs. The reserved
// branch counter (isa.RBC = r27) and r28-r31 are never touched.
const (
	rCnt  = 5 // primary loop counter
	rEnd  = 6 // loop bound
	rT0   = 7
	rT1   = 8
	rT2   = 9
	rT3   = 10
	rT4   = 11
	rT5   = 12
	rT6   = 13
	rT7   = 14
	rT8   = 15
	rT9   = 16
	rBase = 20 // data-region base pointer
	rMask = 21 // 0xffffffff mask (32-bit workloads)
)

// exitWith emits the SysExit sequence returning code in R1.
func exitWith(b *asm.Builder, code int32) {
	b.Li(isa.RArg0, code)
	b.Syscall(kernel.SysExit)
}

// dataPtr emits a load of the data-region base address into rd, as a
// relocatable literal so decorrelated layouts shift it per replica.
func dataPtr(b *asm.Builder, rd uint8) {
	b.LiVA(rd, kernel.DataVA)
}
