package guest

import (
	"math"

	"rcoe/internal/asm"
	"rcoe/internal/isa"
	"rcoe/internal/kernel"
)

// MD5 layout in the data region: the 16-byte digest is written at
// DataVA+md5DigestOff; the padded message blocks start at DataVA+md5MsgOff.
const (
	md5DigestOff = 0
	md5MsgOff    = 1024
)

// md5K is the standard MD5 sine-derived constant table.
var md5K = func() [64]uint32 {
	var k [64]uint32
	for i := 0; i < 64; i++ {
		k[i] = uint32(math.Floor(math.Abs(math.Sin(float64(i+1))) * (1 << 32)))
	}
	return k
}()

// md5S is the per-round rotation schedule.
var md5S = [64]int32{
	7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
	5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20,
	4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
	6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
}

// MD5Pad applies the standard MD5 padding to a message, returning the
// padded buffer (a whole number of 64-byte blocks).
func MD5Pad(msg []byte) []byte {
	bitLen := uint64(len(msg)) * 8
	out := append(append([]byte{}, msg...), 0x80)
	for len(out)%64 != 56 {
		out = append(out, 0)
	}
	for i := 0; i < 8; i++ {
		out = append(out, byte(bitLen>>(8*i)))
	}
	return out
}

// MD5 builds a genuine MD5 implementation in the simulated ISA (the
// md5sum workload of the register fault-injection study, Table VIII). The
// main thread hashes `blocks` 64-byte blocks starting at
// DataVA+md5MsgOff and stores the little-endian digest at DataVA. Like
// the BusyBox original, the transform is a fully unrolled 64-step loop —
// one long loop body per block, with every bit of state avalanche-
// sensitive to register corruption.
//
// The caller supplies the padded message via Program.Data (use MD5Pad).
func MD5(padded []byte) Program {
	blocks := len(padded) / 64
	data := make([]byte, md5MsgOff+len(padded))
	copy(data[md5MsgOff:], padded)
	return Program{
		Name:      "md5",
		DataBytes: uint64(len(data) + 4096),
		Data:      data,
		Stacks:    1,
		Build:     func() *asm.Builder { return buildMD5(blocks) },
	}
}

func buildMD5(blocks int) *asm.Builder {
	const (
		rA    = 10
		rB    = 11
		rC    = 12
		rD    = 13
		rF    = 14
		rTmp  = 15
		rTmp2 = 16
		rMsg  = 17 // current block pointer
		rBlk  = 18 // block counter
		rNBlk = 19
		rA0   = 22 // running state a0..d0
		rB0   = 23
		rC0   = 24
		rD0   = 25
	)
	b := asm.New()
	dataPtr(b, rBase)
	b.Li64(rMask, 0xffffffff)
	b.Li64(rA0, 0x67452301)
	b.Li64(rB0, 0xefcdab89)
	b.Li64(rC0, 0x98badcfe)
	b.Li64(rD0, 0x10325476)
	b.Addi(rMsg, rBase, md5MsgOff)
	b.Li(rBlk, 0)
	b.Li(rNBlk, int32(blocks))

	b.Label("block")
	b.Mov(rA, rA0)
	b.Mov(rB, rB0)
	b.Mov(rC, rC0)
	b.Mov(rD, rD0)
	for i := 0; i < 64; i++ {
		var g int
		switch {
		case i < 16:
			// F = (B & C) | (~B & D)
			b.And(rF, rB, rC)
			b.Xor(rTmp, rB, rMask) // ~B (32-bit)
			b.And(rTmp, rTmp, rD)
			b.Or(rF, rF, rTmp)
			g = i
		case i < 32:
			// G = (D & B) | (~D & C)
			b.And(rF, rD, rB)
			b.Xor(rTmp, rD, rMask)
			b.And(rTmp, rTmp, rC)
			b.Or(rF, rF, rTmp)
			g = (5*i + 1) % 16
		case i < 48:
			// H = B ^ C ^ D
			b.Xor(rF, rB, rC)
			b.Xor(rF, rF, rD)
			g = (3*i + 5) % 16
		default:
			// I = C ^ (B | ~D)
			b.Xor(rTmp, rD, rMask)
			b.Or(rTmp, rB, rTmp)
			b.Xor(rF, rC, rTmp)
			g = (7 * i) % 16
		}
		// F += A + K[i] + M[g]
		b.Add(rF, rF, rA)
		b.Li64(rTmp, uint64(md5K[i]))
		b.Add(rF, rF, rTmp)
		b.Ld(4, rTmp, rMsg, int32(4*g))
		b.Add(rF, rF, rTmp)
		b.And(rF, rF, rMask)
		// A = D; D = C; C = B; B += rotl32(F, s)
		b.Mov(rTmp2, rD)
		b.Mov(rD, rC)
		b.Mov(rC, rB)
		b.Shli(rTmp, rF, md5S[i])
		b.And(rTmp, rTmp, rMask)
		b.Shri(rF, rF, 32-md5S[i])
		b.Or(rTmp, rTmp, rF)
		b.Add(rB, rB, rTmp)
		b.And(rB, rB, rMask)
		b.Mov(rA, rTmp2)
	}
	// State += block result (mod 2^32).
	b.Add(rA0, rA0, rA)
	b.And(rA0, rA0, rMask)
	b.Add(rB0, rB0, rB)
	b.And(rB0, rB0, rMask)
	b.Add(rC0, rC0, rC)
	b.And(rC0, rC0, rMask)
	b.Add(rD0, rD0, rD)
	b.And(rD0, rD0, rMask)
	b.Addi(rMsg, rMsg, 64)
	b.Addi(rBlk, rBlk, 1)
	b.Blt(rBlk, rNBlk, "block")

	// Store the digest little-endian at DataVA.
	b.St(4, rBase, rA0, md5DigestOff+0)
	b.St(4, rBase, rB0, md5DigestOff+4)
	b.St(4, rBase, rC0, md5DigestOff+8)
	b.St(4, rBase, rD0, md5DigestOff+12)
	// Contribute the digest to the state signature: the voting analogue
	// of md5sum printing its result.
	b.LiVA(isa.RArg0, kernel.DataVA+md5DigestOff)
	b.Li(isa.RArg1, 16)
	b.Syscall(kernel.SysFTAddTrace)
	exitWith(b, 0)
	return b
}
