package machine

import "testing"

// TestBusFairSplit pins the FIFO grant order of the shared bus: two
// requesters issuing back-to-back block requests must split the bandwidth
// evenly. Before the waiter queue, the retry loops phase-locked with the
// token refill and one requester won a persistent 2:1 share, which is what
// made replica 1 fall a whole copy behind on Table V's full-scale membench
// and trip the rendezvous spin budget.
func TestBusFairSplit(t *testing.T) {
	const (
		req   = 512 // bytes per block request (a typical MEMCPY chunk)
		rate  = 8
		width = 32 // core port width: stall cycles per grant = req/width
	)
	b := newBus(rate)
	var grants [2]int
	var stall [2]int
	for cyc := 0; cyc < 200_000; cyc++ {
		b.tick()
		for core := 0; core < 2; core++ {
			if stall[core] > 0 {
				stall[core]--
				continue
			}
			if b.take(core, req) {
				grants[core]++
				stall[core] = req/width - 1
			}
		}
	}
	if grants[0] == 0 || grants[1] == 0 {
		t.Fatalf("a requester starved entirely: %v", grants)
	}
	hi, lo := grants[0], grants[1]
	if lo > hi {
		hi, lo = lo, hi
	}
	if float64(hi)/float64(lo) > 1.1 {
		t.Fatalf("unfair bus split: %d vs %d grants", grants[0], grants[1])
	}
}

// TestBusWaiterDropped pins the queue's liveness rule: a denied requester
// that stops retrying (it took a trap or parked) must not block grants to
// the cores still asking.
func TestBusWaiterDropped(t *testing.T) {
	b := newBus(8)
	if !b.take(0, 1024) { // drive the bucket deep into debt
		t.Fatal("initial burst take failed")
	}
	if b.take(1, 64) {
		t.Fatal("take succeeded against a drained bucket")
	}
	// Core 1 is now queued but never retries again. Let the debt drain.
	for i := 0; i < 1024; i++ {
		b.tick()
	}
	// Core 0's next request must not be blocked behind the vanished waiter
	// (one denial to observe the stale head is acceptable; a second is not).
	if !b.take(0, 64) && !b.take(0, 64) {
		t.Fatal("stale waiter blocked the queue")
	}
}
