package machine

import (
	"errors"
	"testing"

	"rcoe/internal/asm"
)

// fakeTimer counts the cycles on which it acts; fast-forward must tick it
// on exactly the same cycles as the naive loop.
type fakeTimer struct {
	period uint64
	fires  []uint64
}

func (f *fakeTimer) Tick(m *Machine) {
	if m.Now()%f.period == 0 {
		f.fires = append(f.fires, m.Now())
	}
}

func (f *fakeTimer) NextEvent(now uint64) uint64 {
	return now - now%f.period + f.period
}

// opaqueDevice implements only Device, not EventSource.
type opaqueDevice struct{ ticks uint64 }

func (d *opaqueDevice) Tick(m *Machine) { d.ticks++ }

// TestRotationIndexLargeNow is the regression test for the round-robin
// scheduler index: int(m.now) % n goes negative once now exceeds 2^63 and
// indexes out of range.
func TestRotationIndexLargeNow(t *testing.T) {
	m := New(noJitter(X86()), 1<<16)
	m.now = 1<<63 + 5
	m.Run(10) // panicked before the unsigned-modulo fix
	if m.Now() != 1<<63+15 {
		t.Fatalf("now = %d, want %d", m.Now(), uint64(1<<63+15))
	}
}

// TestFastForwardTimedParkEquivalence checks that a time-driven park with
// an exact wake hint wakes on the identical cycle — core-local and global
// — under fast-forward and naive stepping, and that fast-forward actually
// skipped.
func TestFastForwardTimedParkEquivalence(t *testing.T) {
	type outcome struct {
		wakeCycles, wakeNow, finalNow uint64
		fires                         []uint64
	}
	scenario := func(ff bool) outcome {
		m := New(noJitter(X86()), 1<<16)
		m.SetFastForward(ff)
		ft := &fakeTimer{period: 700}
		m.AddDevice(ft)
		c := m.Core(0)
		var out outcome
		c.Park(func() bool { return c.Cycles >= 5000 }, func() {
			out.wakeCycles, out.wakeNow = c.Cycles, m.Now()
			c.Halt()
		})
		c.ParkWakeAt(5000)
		m.Run(20_000)
		out.finalNow = m.Now()
		out.fires = ft.fires
		if ff && m.FastForwarded() == 0 {
			t.Fatalf("fast-forward run skipped nothing")
		}
		return out
	}
	fast, slow := scenario(true), scenario(false)
	if fast.wakeCycles != slow.wakeCycles || fast.wakeNow != slow.wakeNow {
		t.Fatalf("wake diverged: fast=(%d,%d) slow=(%d,%d)",
			fast.wakeCycles, fast.wakeNow, slow.wakeCycles, slow.wakeNow)
	}
	if fast.wakeCycles != 5000 {
		t.Fatalf("woke at Cycles=%d, want 5000", fast.wakeCycles)
	}
	if fast.finalNow != slow.finalNow {
		t.Fatalf("final now diverged: %d vs %d", fast.finalNow, slow.finalNow)
	}
	if len(fast.fires) != len(slow.fires) {
		t.Fatalf("device fired %d times fast, %d naive", len(fast.fires), len(slow.fires))
	}
	for i := range fast.fires {
		if fast.fires[i] != slow.fires[i] {
			t.Fatalf("device fire %d at cycle %d fast, %d naive", i, fast.fires[i], slow.fires[i])
		}
	}
}

// TestFastForwardStallEquivalence runs a real program whose FP stalls open
// skippable windows, with jitter enabled, and checks every architectural
// counter lands identically.
func TestFastForwardStallEquivalence(t *testing.T) {
	type outcome struct {
		cycles, instrs, now uint64
		r5                  uint64
	}
	scenario := func(ff bool) outcome {
		m := New(X86(), 1<<16) // jitter on: the PRNG must advance identically
		m.SetFastForward(ff)
		m.AddDevice(&fakeTimer{period: 300})
		b := asm.New()
		b.Li(1, 0)
		b.Li(2, 40)
		b.Label("loop")
		b.Fsin(5, 1) // FPTrans stall dominates: mostly-idle cycles
		b.Addi(1, 1, 1)
		b.Blt(1, 2, "loop")
		b.Hlt()
		h := loadProg(t, m, b)
		run(t, m, h)
		c := m.Core(0)
		return outcome{cycles: c.Cycles, instrs: c.Instructions, now: m.Now(), r5: c.Regs[5]}
	}
	fast, slow := scenario(true), scenario(false)
	if fast != slow {
		t.Fatalf("diverged: fast=%+v slow=%+v", fast, slow)
	}
}

// TestFastForwardUnknownDeviceDisables: a registered device without
// NextEvent must pin the machine to naive stepping.
func TestFastForwardUnknownDeviceDisables(t *testing.T) {
	m := New(noJitter(X86()), 1<<16)
	dev := &opaqueDevice{}
	m.AddDevice(dev)
	c := m.Core(0)
	c.Park(func() bool { return false }, nil)
	c.ParkWakeNever()
	m.Run(5000)
	if m.FastForwarded() != 0 {
		t.Fatalf("skipped %d cycles past a device with no event schedule", m.FastForwarded())
	}
	if dev.ticks != 5000 {
		t.Fatalf("device ticked %d times, want 5000", dev.ticks)
	}
}

// TestFastForwardRunUntilBudgetExact: the timeout budget must be honoured
// cycle-exactly even when the wait is one long skippable window.
func TestFastForwardRunUntilBudgetExact(t *testing.T) {
	m := New(noJitter(X86()), 1<<16)
	c := m.Core(0)
	c.Park(func() bool { return false }, nil)
	c.ParkWakeNever()
	err := m.RunUntil(func() bool { return false }, 3000)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if m.Now() != 3000 {
		t.Fatalf("now = %d, want exactly 3000", m.Now())
	}
	if m.FastForwarded() == 0 {
		t.Fatalf("expected the park wait to fast-forward")
	}
}

// TestFastForwardProbeBoundsUndeclaredPark: a park without a wake hint is
// probed at least every ParkProbeInterval cycles, so skips stay bounded.
func TestFastForwardProbeBoundsUndeclaredPark(t *testing.T) {
	m := New(noJitter(X86()), 1<<16)
	c := m.Core(0)
	polls := uint64(0)
	c.Park(func() bool { polls++; return false }, nil)
	m.Run(10 * ParkProbeInterval)
	if m.FastForwarded() == 0 {
		t.Fatalf("undeclared park should still fast-forward between probes")
	}
	if polls < 9 {
		t.Fatalf("park condition polled %d times over 10 probe intervals", polls)
	}
}

// TestBusSkipMatchesTicks: bulk refill must land on the same token count
// as k individual ticks, from credit and from debt.
func TestBusSkipMatchesTicks(t *testing.T) {
	for _, start := range []int{64, 0, -1000} {
		for _, k := range []uint64{1, 2, 5, 63, 64, 1000, 1 << 40} {
			a := newBus(16)
			a.tokens = start
			b := newBus(16)
			b.tokens = start
			if k <= 1000 {
				for i := uint64(0); i < k; i++ {
					a.tick()
				}
			} else {
				a.tokens = a.burst // any long window saturates
			}
			b.skip(k)
			if a.tokens != b.tokens {
				t.Fatalf("start=%d k=%d: ticked=%d skipped=%d", start, k, a.tokens, b.tokens)
			}
		}
	}
}
