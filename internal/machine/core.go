package machine

import (
	"fmt"
	"math"

	"rcoe/internal/isa"
)

// Perm is a segment permission bitmask.
type Perm uint8

// Segment permissions.
const (
	PermR Perm = 1 << iota
	PermW
	PermX
)

// Segment maps a contiguous virtual range to physical memory. Segments
// stand in for the paper's page-table mappings: kernel updates to them are
// critical state folded into the RCoE signature, and the DMA flag is the
// "unused page-table bit" used to patch DMA buffers when removing a failed
// primary (§IV-A).
type Segment struct {
	VBase uint64
	PBase uint64
	Size  uint64
	Perm  Perm
	DMA   bool
}

// AddrSpace is an ordered set of segments forming a virtual address space.
//
// Segs may be read freely. Code that mutates it after the address space is
// in use must do so through Map, or call Invalidate afterwards: the
// per-core translation memos (execcache.go) key on the generation counter
// those bump. Constructing a fresh AddrSpace (the kernel loader and
// re-integration clone paths) needs nothing — memos key on pointer
// identity, so a new object always misses.
type AddrSpace struct {
	Segs []Segment

	// gen counts mutations; translation memos holding an older generation
	// re-scan. Appends through Map bump it, as does Invalidate.
	gen uint64
}

// Map appends a segment mapping and invalidates translation memos built
// over the previous segment set.
func (a *AddrSpace) Map(s Segment) {
	a.Segs = append(a.Segs, s)
	a.gen++
}

// Invalidate marks the address space mutated, forcing every translation
// memo built on it to re-scan. Call it after any direct edit of Segs.
func (a *AddrSpace) Invalidate() { a.gen++ }

// overlapFree reports whether every pair of segments covers disjoint
// virtual ranges. Translate returns the first match in segment order, so
// the translation memo may only short-circuit the scan when no virtual
// address can match two segments; an overlapping (or wrapping) layout
// disables memoisation and always scans. Zero-size segments match nothing
// but are treated conservatively.
func (a *AddrSpace) overlapFree() bool {
	for i := range a.Segs {
		si := &a.Segs[i]
		if si.VBase+si.Size < si.VBase {
			return false // wrapping range: be conservative
		}
		for j := i + 1; j < len(a.Segs); j++ {
			sj := &a.Segs[j]
			if si.VBase < sj.VBase+sj.Size && sj.VBase < si.VBase+si.Size {
				return false
			}
		}
	}
	return true
}

// Translate resolves va for an access of n bytes with the needed
// permission. It returns the physical address, the segment index, and
// whether the translation succeeded. Accesses may not straddle segments.
func (a *AddrSpace) Translate(va uint64, n int, need Perm) (pa uint64, seg int, ok bool) {
	for i := range a.Segs {
		s := &a.Segs[i]
		if va >= s.VBase && va+uint64(n) <= s.VBase+s.Size && va+uint64(n) >= va {
			if s.Perm&need != need {
				return 0, i, false
			}
			return s.PBase + (va - s.VBase), i, true
		}
	}
	return 0, -1, false
}

// TrapKind classifies why a core entered the kernel.
type TrapKind int

// Trap kinds.
const (
	TrapNone TrapKind = iota
	TrapSyscall
	TrapIRQ
	TrapBreakpoint
	TrapSingleStep  // "mismatch" debug exception on no-resume-flag machines
	TrapBranchWatch // PMU branch-counter overflow interrupt
	TrapBlockWatch  // data-write watchpoint inside a block instruction
	TrapMemFault
	TrapIllegal
	TrapDivZero
	TrapHalt
)

var trapNames = map[TrapKind]string{
	TrapNone: "none", TrapSyscall: "syscall", TrapIRQ: "irq",
	TrapBreakpoint: "breakpoint", TrapSingleStep: "single-step",
	TrapBranchWatch: "branch-watch",
	TrapBlockWatch:  "block-watch",
	TrapMemFault:    "mem-fault", TrapIllegal: "illegal-instruction",
	TrapDivZero: "div-zero", TrapHalt: "halt",
}

// String returns the trap kind name.
func (k TrapKind) String() string {
	if s, ok := trapNames[k]; ok {
		return s
	}
	return fmt.Sprintf("trap(%d)", int(k))
}

// Trap carries the details of a kernel entry.
type Trap struct {
	Kind TrapKind
	// Num is the syscall number for TrapSyscall.
	Num int32
	// Addr is the faulting virtual address for TrapMemFault.
	Addr uint64
	// PC is the user program counter at the trap.
	PC uint64
}

// TrapHandler is the kernel: it receives every trap a core takes. The
// handler runs to completion, mutating the core (registers, PC, address
// space, stall cycles, parking) before user execution resumes.
type TrapHandler interface {
	HandleTrap(c *Core, t Trap)
}

// CoreState is the scheduling state of a core.
type CoreState int

// Core states. Parked cores spin on a condition (kernel barriers, idle
// loops); offline cores have been removed by TMR downgrade.
const (
	CoreRunning CoreState = iota + 1
	CoreParked
	CoreHalted
	CoreOffline
)

// Breakpoint is a global instruction breakpoint: it fires when any
// user-mode fetch matches Addr (the paper's "global breakpoint").
type Breakpoint struct {
	Addr    uint64
	Enabled bool
}

// Core is one simulated CPU core.
type Core struct {
	ID   int
	Regs [isa.NumRegs]uint64
	PC   uint64
	AS   *AddrSpace

	// Cycles is the per-core cycle counter (monotonic, includes stalls).
	Cycles uint64
	// UserBranches is the PMU count of branch instructions executed in
	// user mode. On profiles without a precise PMU the kernel must not
	// rely on it (it uses the reserved counter register instead).
	UserBranches uint64
	// Instructions counts user instructions executed (for reporting).
	Instructions uint64

	// BP is the debug breakpoint register. ResumeOnce suppresses the
	// breakpoint for one fetch (x86 RF flag); SingleStep raises
	// TrapSingleStep after one instruction (the Arm mismatch-exception
	// path sets this).
	BP         Breakpoint
	ResumeOnce bool
	SingleStep bool

	// BranchWatch raises TrapBranchWatch once UserBranches reaches
	// Target — a PMU overflow interrupt. RCoE uses it to cover large
	// catch-up distances without a debug exception per loop iteration,
	// arming the precise breakpoint only for the tail (the ReVirt
	// technique the paper plans in §VI).
	BranchWatch struct {
		Target  uint64
		Enabled bool
	}

	// BlockWatch raises TrapBlockWatch when a block instruction
	// (MEMCPY/MEMSET) is about to issue a chunk with exactly Rem bytes
	// remaining. It models an x86 data-write hardware breakpoint (DR
	// register) placed at another core's destination cursor: the position
	// inside a rep-style copy maps 1:1 onto the destination address, so
	// one watchpoint replaces a per-iteration trap-flag chase.
	BlockWatch struct {
		Rem     uint64
		Enabled bool
	}

	// IntEnabled gates interrupt delivery (kernel code runs with
	// interrupts off; our kernel executes atomically so this mainly
	// distinguishes idle parking).
	IntEnabled bool

	State CoreState

	// parkCond is evaluated every cycle while parked; when it returns
	// true the core resumes (state back to Running) and parkDone runs.
	parkCond func() bool
	parkDone func()
	// parkWake is the fast-forward wake hint for the current park: 0
	// means undeclared (probe every ParkProbeInterval cycles), NoEvent
	// means the condition is purely event-driven, and any other value is
	// the earliest Cycles count at which the condition may first become
	// true through the passage of time alone.
	parkWake uint64

	pendingIRQ uint64 // bitmask of device lines
	pendingIPI bool

	stall  int
	jitter uint64 // per-core deterministic jitter PRNG state

	llAddr  uint64 // LL/SC reservation
	llValid bool

	cache *cache

	// ec is the host-side execution cache (predecoded instructions plus
	// translation memos). Allocated lazily on the first cached fetch; nil
	// while the core has never executed with caching enabled.
	ec *execCache

	// sb is the host-side superblock cache (superblock.go), lazily
	// allocated like ec and likewise outside the snapshot state boundary.
	sb *sbCache

	m *Machine
}

// Machine returns the owning machine.
func (c *Core) Machine() *Machine { return c.m }

// AddStall charges n extra cycles to the core (kernel work, exception
// costs). The core will not issue user instructions while stalled, but its
// cycle counter keeps advancing.
func (c *Core) AddStall(n int) {
	if n > 0 {
		c.stall += n
	}
}

// Park suspends user execution; cond is polled once per cycle and when it
// returns true the core resumes and done (if non-nil) is invoked. Parking
// models kernel spin loops: cycles keep accumulating, which is what barrier
// timeout detection measures.
func (c *Core) Park(cond func() bool, done func()) {
	c.State = CoreParked
	c.parkCond = cond
	c.parkDone = done
	c.parkWake = 0
}

// ParkWakeAt declares a time-driven wake hint for the current park: the
// condition cannot first return true before the core's Cycles counter
// reaches cycle (it may of course become true earlier through an event —
// another core, a device, the host — but any such event ends the idle
// window anyway). Fast-forward uses the hint to jump barrier-timeout waits
// in one step while staying bit-identical to naive stepping.
func (c *Core) ParkWakeAt(cycle uint64) { c.parkWake = cycle }

// ParkWakeNever declares the current park condition purely event-driven:
// it can only become true as a side effect of another core executing, a
// device acting, or the host mutating state — never from time alone.
// Fast-forward may then skip this core without bound.
func (c *Core) ParkWakeNever() { c.parkWake = NoEvent }

// Unpark forces a parked core back to running without invoking its done
// callback.
func (c *Core) Unpark() {
	if c.State == CoreParked {
		c.State = CoreRunning
		c.parkCond = nil
		c.parkDone = nil
		c.parkWake = 0
	}
}

// Halt stops the core permanently (fail-stop).
func (c *Core) Halt() { c.State = CoreHalted }

// SetOffline removes the core (TMR downgrade removes the faulty replica's
// core).
func (c *Core) SetOffline() { c.State = CoreOffline }

// PendingIRQ returns the pending device-interrupt bitmask.
func (c *Core) PendingIRQ() uint64 { return c.pendingIRQ }

// AckIRQ clears the given lines from the pending mask.
func (c *Core) AckIRQ(mask uint64) { c.pendingIRQ &^= mask }

// AckIPI clears a pending inter-processor interrupt.
func (c *Core) AckIPI() { c.pendingIPI = false }

// IPIPending reports whether an IPI is waiting.
func (c *Core) IPIPending() bool { return c.pendingIPI }

// ClearReservation drops the LL/SC reservation; the kernel calls this on
// context switches, which is what makes retry counts preemption-dependent.
func (c *Core) ClearReservation() { c.llValid = false }

// FlushCache invalidates the core's cache (replica boot).
func (c *Core) FlushCache() { c.cache.flush() }

// nextJitter returns true when the core should pay one extra stall cycle,
// from a per-core deterministic xorshift sequence. This models the
// microarchitectural drift between COTS cores that prevents lock-step
// execution (§II-B).
func (c *Core) nextJitter(shift uint) bool {
	x := c.jitter
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	c.jitter = x
	return x&((1<<shift)-1) == 0
}

// reg reads a register honouring the hardwired zero.
func (c *Core) reg(i uint8) uint64 {
	if i == isa.RZero {
		return 0
	}
	return c.Regs[i]
}

// setReg writes a register honouring the hardwired zero.
func (c *Core) setReg(i uint8, v uint64) {
	if i != isa.RZero {
		c.Regs[i] = v
	}
}

// memAccess performs a scalar data access with cache/bus accounting. It
// returns false (and raises no trap itself) when the bus has no tokens, in
// which case the caller retries next cycle. Scalar misses pay the
// MemMiss latency; streaming block ops use streamAccess instead.
func (c *Core) memAccess(pa uint64, size int, write bool) bool {
	ch := c.cache
	line := pa >> ch.lineShift
	if (pa+uint64(size)-1)>>ch.lineShift == line {
		// Single-line access — every scalar fetch/load/store in practice.
		// One probe replaces the peek-then-access double scan, with
		// identical cache state, bus traffic, and stalls.
		idx := ch.index(line)
		if ch.valid[idx] && ch.tags[idx] == line {
			if write {
				ch.dirty[idx] = true
			}
			c.AddStall(c.m.prof.Costs.MemHit - 1)
			return true
		}
		bytes := c.m.prof.CacheLine
		if ch.valid[idx] && ch.dirty[idx] {
			bytes *= 2 // dirty eviction: writeback + fill
		}
		if !c.m.bus.take(c.ID, bytes) {
			return false
		}
		ch.tags[idx] = line
		ch.valid[idx] = true
		ch.dirty[idx] = write
		ch.gen++
		c.AddStall(c.m.prof.Costs.MemMiss)
		return true
	}
	misses, evict := c.cache.peek(pa, size)
	if misses == 0 && evict == 0 {
		c.cache.access(pa, size, write)
		c.AddStall(c.m.prof.Costs.MemHit - 1)
		return true
	}
	bytes := (misses + evict) * c.m.prof.CacheLine
	if !c.m.bus.take(c.ID, bytes) {
		return false
	}
	c.cache.access(pa, size, write)
	c.AddStall(c.m.prof.Costs.MemMiss * misses)
	return true
}

// streamAccess accounts for one chunk of a block operation (MEMCPY or
// MEMSET). Streaming accesses are modelled as bandwidth-bound rather than
// latency-bound: they pay port-width stalls and consume bus tokens but not
// the per-miss latency, which is how one x86 core can saturate the bus
// (Table V). It returns false when the bus is out of tokens.
func (c *Core) streamAccess(srcPA, dstPA uint64, n int) bool {
	srcMiss, srcEv := 0, 0
	if srcPA != ^uint64(0) {
		srcMiss, srcEv = c.cache.peek(srcPA, n)
	}
	dstMiss, dstEv := c.cache.peek(dstPA, n)
	bytes := (srcMiss + srcEv + dstMiss + dstEv) * c.m.prof.CacheLine
	if bytes == 0 {
		// Whole chunk in cache: still limited by the core's port width.
		c.AddStall(n/c.m.prof.CoreBytesPerCycle - 1)
		return true
	}
	if !c.m.bus.take(c.ID, bytes) {
		return false
	}
	if srcPA != ^uint64(0) {
		c.cache.access(srcPA, n, false)
	}
	c.cache.access(dstPA, n, true)
	if bytes > c.m.prof.CoreBytesPerCycle {
		c.AddStall(bytes/c.m.prof.CoreBytesPerCycle - 1)
	}
	return true
}

// float helpers
func f64(v uint64) float64  { return math.Float64frombits(v) }
func bits(f float64) uint64 { return math.Float64bits(f) }
