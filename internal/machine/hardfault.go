package machine

// This file implements the persistent (hard) fault model: stuck-at bits
// that re-assert on every access and survive overwrites, an intermittent
// fault device with a seeded duty cycle, and per-core bus-token
// starvation. Transient flips (Mem.FlipBit) and device-level corruption
// (internal/device) complete the fault-class taxonomy.
//
// Stuck-at bits maintain one invariant: the backing byte array always has
// every registered stuck bit asserted. SetStuck asserts immediately; every
// mutation path re-asserts its touched range after writing; and the read
// paths re-assert before serving, which catches writes that bypassed the
// mutation APIs (device DMA through a Slice window). Each assertion that
// actually changes a byte bumps that page's mutation generation, so the
// predecoded instruction cache and the translation memos revalidate
// exactly as they do for any other store — the exec-cache invisibility
// contract holds with hard faults active (see TestStuckBitExecCache).

// stuckMask describes the stuck bits of one physical byte: `or` bits are
// stuck at 1, `andNot` bits are stuck at 0.
type stuckMask struct {
	or     byte
	andNot byte
}

// SetStuck registers a persistent stuck-at fault: bit (0-7) of the byte at
// addr reads as value (0 or 1) regardless of what is written to it. The
// fault is asserted immediately and re-asserted after every subsequent
// mutation of the byte.
func (m *Mem) SetStuck(addr uint64, bit uint, value uint) error {
	if err := m.check(addr, 1); err != nil {
		return err
	}
	if m.stuck == nil {
		m.stuck = make(map[uint64]stuckMask)
	}
	msk := m.stuck[addr]
	b := byte(1) << (bit % 8)
	if value != 0 {
		msk.or |= b
		msk.andNot &^= b
	} else {
		msk.andNot |= b
		msk.or &^= b
	}
	m.stuck[addr] = msk
	// Assert now; touch unconditionally so caches drop any entry decoded
	// from the pre-fault value even when the current byte already agrees.
	m.applyStuck(addr, msk)
	m.touch(addr, 1)
	return nil
}

// ClearStuck removes the stuck-at fault on bit of the byte at addr (e.g. a
// replaced component). The byte keeps its current value.
func (m *Mem) ClearStuck(addr uint64, bit uint) {
	msk, ok := m.stuck[addr]
	if !ok {
		return
	}
	b := byte(1) << (bit % 8)
	msk.or &^= b
	msk.andNot &^= b
	if msk.or == 0 && msk.andNot == 0 {
		delete(m.stuck, addr)
	} else {
		m.stuck[addr] = msk
	}
}

// StuckBits returns the number of bytes with at least one stuck bit.
func (m *Mem) StuckBits() int { return len(m.stuck) }

// applyStuck forces one byte to its stuck value, bumping the page
// generation when this changes it.
func (m *Mem) applyStuck(addr uint64, msk stuckMask) {
	old := m.bytes[addr]
	v := (old | msk.or) &^ msk.andNot
	if v != old {
		m.bytes[addr] = v
		m.touch(addr, 1)
	}
}

// assertStuck re-asserts every stuck bit overlapping [addr, addr+n). The
// stuck set is tiny (a campaign injects a handful of faults), so a scan
// over it is cheaper than any range index.
func (m *Mem) assertStuck(addr uint64, n int) {
	end := addr + uint64(n)
	for a, msk := range m.stuck {
		if a >= addr && a < end {
			m.applyStuck(a, msk)
		}
	}
}

// IntermittentFault is a machine.Device that asserts a stuck-at bit with a
// seeded duty cycle: the bit is stuck during ON phases and behaves
// normally during OFF phases, with phase lengths jittered
// deterministically from the seed — the classic marginal-component fault
// that escapes boot-time tests (§VI of Xia et al.'s co-design argument).
type IntermittentFault struct {
	// Addr/Bit/Value locate the fault as in Mem.SetStuck.
	Addr  uint64
	Bit   uint
	Value uint
	// OnCycles/OffCycles are the mean phase lengths; actual lengths vary
	// in [mean/2, 3*mean/2) from the seeded generator.
	OnCycles, OffCycles uint64
	// Seed drives the phase jitter (0 = a fixed default).
	Seed uint64

	on     bool
	next   uint64
	seeded bool
	rng    uint64
}

// Tick implements machine.Device: toggle the fault at phase boundaries.
func (f *IntermittentFault) Tick(m *Machine) {
	now := m.Now()
	if !f.seeded {
		f.seeded = true
		f.rng = f.Seed
		if f.rng == 0 {
			f.rng = 0x9E3779B97F4A7C15
		}
		if f.OnCycles == 0 {
			f.OnCycles = 10_000
		}
		if f.OffCycles == 0 {
			f.OffCycles = 40_000
		}
		f.next = now + f.phase(f.OffCycles)
		return
	}
	if now < f.next {
		return
	}
	if f.on {
		f.on = false
		m.Mem().ClearStuck(f.Addr, f.Bit)
		f.next = now + f.phase(f.OffCycles)
	} else {
		f.on = true
		_ = m.Mem().SetStuck(f.Addr, f.Bit, f.Value)
		f.next = now + f.phase(f.OnCycles)
	}
}

// NextEvent implements machine.EventSource: the fault only acts at its
// next phase boundary, so idle fast-forward may skip to it.
func (f *IntermittentFault) NextEvent(now uint64) uint64 {
	if !f.seeded {
		return now + 1
	}
	if f.next <= now {
		return now + 1
	}
	return f.next
}

// On reports whether the fault is currently asserted.
func (f *IntermittentFault) On() bool { return f.on }

// phase draws a jittered phase length in [mean/2, 3*mean/2).
func (f *IntermittentFault) phase(mean uint64) uint64 {
	f.rng ^= f.rng << 13
	f.rng ^= f.rng >> 7
	f.rng ^= f.rng << 17
	if mean < 2 {
		return 1
	}
	return mean/2 + f.rng%mean
}

// StarveBus permanently denies bus grants to one core, modeling an
// arbiter or token-distribution fault: the core's block operations stall
// forever while its peers proceed. Pass a negative core to clear.
func (m *Machine) StarveBus(core int) {
	m.bus.starve = core
}

// BusStarved returns the starved core, or -1.
func (m *Machine) BusStarved() int { return m.bus.starve }
