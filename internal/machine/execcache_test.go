package machine

import (
	"testing"

	"rcoe/internal/asm"
	"rcoe/internal/isa"
)

// The execution cache is a host-side memoisation: every test here runs
// the same scenario with the cache on and off and requires bit-identical
// simulated outcomes. Each scenario targets one invalidation path —
// guest stores into text (self-modifying code), host bit-flips (fault
// injection), DMA windows, and address-space remaps.

// coreSnapshot captures everything architecturally observable about a
// finished single-core run.
type coreSnapshot struct {
	regs         [32]uint64
	pc           uint64
	cycles       uint64
	instructions uint64
	traps        []Trap
}

func takeSnapshot(m *Machine, h *testHandler) coreSnapshot {
	c := m.Core(0)
	return coreSnapshot{
		regs:         c.Regs,
		pc:           c.PC,
		cycles:       c.Cycles,
		instructions: c.Instructions,
		traps:        h.traps,
	}
}

func assertSameSnapshot(t *testing.T, cached, naive coreSnapshot) {
	t.Helper()
	if cached.regs != naive.regs {
		t.Fatalf("registers diverged:\ncached: %v\nnaive:  %v", cached.regs, naive.regs)
	}
	if cached.pc != naive.pc || cached.cycles != naive.cycles || cached.instructions != naive.instructions {
		t.Fatalf("counters diverged:\ncached: pc=%#x cycles=%d instr=%d\nnaive:  pc=%#x cycles=%d instr=%d",
			cached.pc, cached.cycles, cached.instructions, naive.pc, naive.cycles, naive.instructions)
	}
	if len(cached.traps) != len(naive.traps) {
		t.Fatalf("trap counts diverged: cached=%d naive=%d", len(cached.traps), len(naive.traps))
	}
	for i := range cached.traps {
		if cached.traps[i] != naive.traps[i] {
			t.Fatalf("trap %d diverged:\ncached: %+v\nnaive:  %+v", i, cached.traps[i], naive.traps[i])
		}
	}
}

// differential runs trial twice — execution cache on, then off — and
// requires identical snapshots. It returns the cached-run snapshot for
// scenario-specific assertions.
func differential(t *testing.T, trial func(t *testing.T, m *Machine) coreSnapshot) coreSnapshot {
	t.Helper()
	run := func(on bool) coreSnapshot {
		m := New(noJitter(X86()), 1<<16)
		m.SetExecCache(on)
		return trial(t, m)
	}
	cached, naive := run(true), run(false)
	assertSameSnapshot(t, cached, naive)
	return cached
}

// TestExecCacheSelfModifyingCode executes an instruction, overwrites its
// bytes with a guest store, and executes it again: the second execution
// must see the new instruction even though the old one is predecoded.
func TestExecCacheSelfModifyingCode(t *testing.T) {
	patched := isa.Encode(isa.Instr{Op: isa.OpAddi, Rd: 5, Rs1: 5, Imm: 100})
	var raw uint64
	for i := 7; i >= 0; i-- {
		raw = raw<<8 | uint64(patched[i])
	}
	b := asm.New()
	b.Li(1, 0) // pass counter
	b.Li64(2, raw)
	b.LiLabel(3, "patch")
	b.Label("loop")
	b.Label("patch")
	b.Addi(5, 5, 1) // the patch site: first pass +1, second pass +100
	b.Li(6, 1)
	b.Beq(1, 6, "done")
	b.Li(1, 1)
	b.St(8, 3, 2, 0) // overwrite the patch site
	b.J("loop")
	b.Label("done")
	b.Hlt()

	got := differential(t, func(t *testing.T, m *Machine) coreSnapshot {
		h := loadProg(t, m, b)
		run(t, m, h)
		return takeSnapshot(m, h)
	})
	if got.regs[5] != 101 {
		t.Fatalf("r5 = %d, want 101 (second pass must execute the patched instruction)", got.regs[5])
	}
}

// TestExecCacheBitFlipInText predecodes a loop body, then injects a
// bit-flip into the opcode byte of a live instruction (the fault
// injector's Mem.FlipBit path). The flip lands mid-run, exactly as the
// campaigns do it, and must trap identically with the cache on and off.
func TestExecCacheBitFlipInText(t *testing.T) {
	b := asm.New()
	b.Label("loop")
	b.Addi(5, 5, 1)
	b.J("loop")

	got := differential(t, func(t *testing.T, m *Machine) coreSnapshot {
		h := loadProg(t, m, b)
		m.Run(1000) // warm the predecode cache on both loop instructions
		if len(h.traps) != 0 {
			t.Fatalf("unexpected trap during warmup: %+v", h.traps)
		}
		// Flip a high bit of the Addi opcode byte at address 0: the
		// resulting opcode is out of range, so decode must now fail.
		if err := m.Mem().FlipBit(0, 7); err != nil {
			t.Fatal(err)
		}
		run(t, m, h)
		return takeSnapshot(m, h)
	})
	if got.traps[0].Kind != TrapIllegal {
		t.Fatalf("trap = %v, want illegal instruction", got.traps[0].Kind)
	}
	if got.traps[0].PC != 0 {
		t.Fatalf("trap pc = %#x, want 0 (the flipped instruction)", got.traps[0].PC)
	}
}

// TestExecCacheDMAInvalidation overwrites a predecoded instruction
// through a Mem.Slice window — the zero-copy DMA path that bypasses
// Write — and checks the next execution decodes the new bytes.
func TestExecCacheDMAInvalidation(t *testing.T) {
	b := asm.New()
	b.Label("loop")
	b.Addi(5, 5, 1) // the patch target: +1 becomes +100 mid-run
	b.Addi(6, 6, 1) // iteration counter, bounds the loop
	b.Li(7, 100)
	b.Blt(6, 7, "loop")
	b.Hlt()

	got := differential(t, func(t *testing.T, m *Machine) coreSnapshot {
		h := loadProg(t, m, b)
		m.Run(200) // warm the cache some iterations in
		if len(h.traps) != 0 {
			t.Fatalf("unexpected trap during warmup: %+v", h.traps)
		}
		// DMA new bytes over the loop increment through a Slice window.
		win, err := m.Mem().Slice(0, isa.InstrBytes)
		if err != nil {
			t.Fatal(err)
		}
		enc := isa.Encode(isa.Instr{Op: isa.OpAddi, Rd: 5, Rs1: 5, Imm: 100})
		copy(win, enc[:])
		run(t, m, h)
		return takeSnapshot(m, h)
	})
	if got.traps[0].Kind != TrapHalt {
		t.Fatalf("trap = %v, want halt", got.traps[0].Kind)
	}
	// 100 iterations, +1 each before the patch and +100 each after: any
	// value above 100 proves the DMA-written increment executed.
	if got.regs[5] <= 100 {
		t.Fatalf("r5 = %d, want > 100 (DMA-patched increment must execute)", got.regs[5])
	}
}

// TestExecCacheRemapInvalidation retargets a segment mid-run (the
// downgrade/re-integration remap shape) and checks the translation memo
// drops the stale mapping: loads after the remap must read through the
// new physical base with identical results cache on and off.
func TestExecCacheRemapInvalidation(t *testing.T) {
	const dataVA = 0x8000
	b := asm.New()
	b.Li(1, dataVA)
	b.Label("loop")
	b.Ld(8, 5, 1, 0) // r5 = mem[dataVA]
	b.Addi(6, 6, 1)
	b.Li(7, 200)
	b.Blt(6, 7, "loop")
	b.Hlt()

	got := differential(t, func(t *testing.T, m *Machine) coreSnapshot {
		prog, err := b.Assemble(0)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Mem().Write(0, isa.EncodeProgram(prog)); err != nil {
			t.Fatal(err)
		}
		// Two physical copies of the data word; the segment starts on A.
		if err := m.Mem().WriteU(0xA000, 8, 111); err != nil {
			t.Fatal(err)
		}
		if err := m.Mem().WriteU(0xB000, 8, 222); err != nil {
			t.Fatal(err)
		}
		as := &AddrSpace{Segs: []Segment{
			{VBase: 0, PBase: 0, Size: 0x4000, Perm: PermR | PermX},
			{VBase: dataVA, PBase: 0xA000, Size: 0x1000, Perm: PermR | PermW},
		}}
		h := &testHandler{}
		m.SetHandler(h)
		m.StartCore(0, 0, as)
		m.Run(300) // some loop iterations against physical copy A
		if len(h.traps) != 0 {
			t.Fatalf("unexpected trap during warmup: %+v", h.traps)
		}
		as.Segs[1].PBase = 0xB000
		as.Invalidate()
		run(t, m, h)
		return takeSnapshot(m, h)
	})
	if got.regs[5] != 222 {
		t.Fatalf("r5 = %d, want 222 (loads after remap must read copy B)", got.regs[5])
	}
}

// TestExecCacheOverlapFallback puts two overlapping segments in the
// address space — first-match order decides the translation — and checks
// the memo never short-circuits to the wrong segment.
func TestExecCacheOverlapFallback(t *testing.T) {
	const dataVA = 0x8000
	b := asm.New()
	b.Li(1, dataVA)
	b.Label("loop")
	b.Ld(8, 5, 1, 0)
	b.Addi(6, 6, 1)
	b.Li(7, 40)
	b.Bne(6, 7, "loop")
	b.Hlt()

	got := differential(t, func(t *testing.T, m *Machine) coreSnapshot {
		prog, err := b.Assemble(0)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Mem().Write(0, isa.EncodeProgram(prog)); err != nil {
			t.Fatal(err)
		}
		if err := m.Mem().WriteU(0xA000, 8, 111); err != nil {
			t.Fatal(err)
		}
		if err := m.Mem().WriteU(0xB000, 8, 222); err != nil {
			t.Fatal(err)
		}
		// The data VA is covered by both segments; Translate's ordered
		// scan must win (copy A), with or without memoisation.
		as := &AddrSpace{Segs: []Segment{
			{VBase: 0, PBase: 0, Size: 0x4000, Perm: PermR | PermX},
			{VBase: dataVA, PBase: 0xA000, Size: 0x1000, Perm: PermR | PermW},
			{VBase: dataVA, PBase: 0xB000, Size: 0x1000, Perm: PermR | PermW},
		}}
		h := &testHandler{}
		m.SetHandler(h)
		m.StartCore(0, 0, as)
		run(t, m, h)
		return takeSnapshot(m, h)
	})
	if got.regs[5] != 111 {
		t.Fatalf("r5 = %d, want 111 (first matching segment must win)", got.regs[5])
	}
}

// TestExecCacheHitPathAllocFree verifies the acceptance criterion that a
// warm hot loop executes with zero host allocations per instruction.
func TestExecCacheHitPathAllocFree(t *testing.T) {
	m := New(noJitter(X86()), 1<<16)
	m.SetExecCache(true)
	b := asm.New()
	b.Label("loop")
	b.Addi(5, 5, 1)
	b.St(8, 2, 5, 0x4000) // keep a store in the loop: WriteU is on the hit path too
	b.Ld(8, 6, 2, 0x4000)
	b.J("loop")
	h := loadProg(t, m, b)
	m.Run(10_000) // warm up: predecode + memo fills, lazy allocations done
	if len(h.traps) != 0 {
		t.Fatalf("unexpected trap during warmup: %+v", h.traps)
	}
	if allocs := testing.AllocsPerRun(10, func() { m.Run(5_000) }); allocs != 0 {
		t.Fatalf("warm hot loop allocates: %v allocs per 5k cycles, want 0", allocs)
	}
}

// TestExecCacheStatsCount sanity-checks the host-side counters: a warm
// loop should be overwhelmingly hits.
func TestExecCacheStatsCount(t *testing.T) {
	m := New(noJitter(X86()), 1<<16)
	m.SetExecCache(true)
	// The superblock engine bypasses the icache on its batched path;
	// this test counts icache traffic specifically.
	m.SetSuperblock(false)
	b := asm.New()
	b.Label("loop")
	b.Addi(5, 5, 1)
	b.St(8, 2, 5, 0x4000) // data access: exercises the dTLB memo
	b.J("loop")
	h := loadProg(t, m, b)
	m.Run(50_000)
	if len(h.traps) != 0 {
		t.Fatalf("unexpected trap: %+v", h.traps)
	}
	s := m.ExecCacheStats()
	if s.DecodeHits.Value() == 0 || s.TLBHits.Value() == 0 {
		t.Fatalf("no cache hits recorded: %+v", s)
	}
	if rate := s.DecodeHitRate(); rate < 0.99 {
		t.Fatalf("decode hit rate %.4f, want ≈1 for a tight loop", rate)
	}
	if rate := s.TLBHitRate(); rate < 0.99 {
		t.Fatalf("tlb hit rate %.4f, want ≈1 for a tight loop", rate)
	}
}
