package machine

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrBadPhysAddr is returned for physical accesses outside RAM that hit no
// MMIO window.
var ErrBadPhysAddr = errors.New("machine: physical address out of range")

// pageShift sets the granularity of the mutation-generation tracking that
// invalidates the predecoded instruction cache: one counter per 4 KiB
// physical page.
const pageShift = 12

// Mem is the machine's physical memory. Reads and writes are raw; cache
// and bus accounting happen in the core stepping path, not here, so
// devices (DMA) and fault injectors can touch memory without disturbing
// the cost model.
//
// Every mutation path — Write, WriteU, Fill, Move, FlipBit, and Slice
// window grants — bumps a per-page generation counter. The per-core
// execution caches (execcache.go) validate their predecoded entries
// against these counters, which is what makes self-modifying code,
// injected bit-flips in text, DMA, and re-integration partition copies
// behave bit-identically with and without the caches.
type Mem struct {
	bytes []byte
	// pageGen counts mutations per physical page. Monotonic, 64-bit, so
	// it never wraps into a false cache hit.
	pageGen []uint64
	// stuck holds the persistent stuck-at faults (hardfault.go), keyed by
	// physical byte address. nil when no hard fault is registered, which
	// keeps the access paths at a single len check.
	stuck map[uint64]stuckMask
}

// NewMem allocates size bytes of zeroed physical memory.
func NewMem(size int) *Mem {
	return &Mem{
		bytes:   make([]byte, size),
		pageGen: make([]uint64, (size+(1<<pageShift)-1)>>pageShift),
	}
}

// Size returns the memory size in bytes.
func (m *Mem) Size() uint64 { return uint64(len(m.bytes)) }

func (m *Mem) check(addr uint64, n int) error {
	if addr+uint64(n) > uint64(len(m.bytes)) || addr+uint64(n) < addr {
		return fmt.Errorf("%w: [%#x,+%d)", ErrBadPhysAddr, addr, n)
	}
	return nil
}

// touch bumps the mutation generation of every page overlapping
// [addr, addr+n). Callers must have bounds-checked the range.
func (m *Mem) touch(addr uint64, n int) {
	if n <= 0 {
		return
	}
	for p := addr >> pageShift; p <= (addr+uint64(n)-1)>>pageShift; p++ {
		m.pageGen[p]++
	}
}

// Read copies n bytes starting at addr into a fresh slice.
func (m *Mem) Read(addr uint64, n int) ([]byte, error) {
	if err := m.check(addr, n); err != nil {
		return nil, err
	}
	if len(m.stuck) != 0 {
		m.assertStuck(addr, n)
	}
	out := make([]byte, n)
	copy(out, m.bytes[addr:])
	return out, nil
}

// ReadAt copies len(dst) bytes starting at addr into dst — the
// allocation-free variant of Read for hot paths that own a buffer.
func (m *Mem) ReadAt(addr uint64, dst []byte) error {
	if err := m.check(addr, len(dst)); err != nil {
		return err
	}
	if len(m.stuck) != 0 {
		m.assertStuck(addr, len(dst))
	}
	copy(dst, m.bytes[addr:])
	return nil
}

// Write copies b into memory at addr.
func (m *Mem) Write(addr uint64, b []byte) error {
	if err := m.check(addr, len(b)); err != nil {
		return err
	}
	copy(m.bytes[addr:], b)
	m.touch(addr, len(b))
	if len(m.stuck) != 0 {
		m.assertStuck(addr, len(b))
	}
	return nil
}

// Move copies n bytes from src to dst within physical memory without
// allocating. Overlapping ranges behave as if staged through an
// intermediate buffer (memmove semantics), identical to Read followed by
// Write.
func (m *Mem) Move(dst, src uint64, n int) error {
	if err := m.check(src, n); err != nil {
		return err
	}
	if err := m.check(dst, n); err != nil {
		return err
	}
	if len(m.stuck) != 0 {
		m.assertStuck(src, n)
	}
	copy(m.bytes[dst:dst+uint64(n)], m.bytes[src:src+uint64(n)])
	m.touch(dst, n)
	if len(m.stuck) != 0 {
		m.assertStuck(dst, n)
	}
	return nil
}

// Fill sets n bytes at addr to v without allocating.
func (m *Mem) Fill(addr uint64, n int, v byte) error {
	if err := m.check(addr, n); err != nil {
		return err
	}
	s := m.bytes[addr : addr+uint64(n)]
	for i := range s {
		s[i] = v
	}
	m.touch(addr, n)
	if len(m.stuck) != 0 {
		m.assertStuck(addr, n)
	}
	return nil
}

// ReadU reads an unsigned little-endian value of size 1, 2, 4 or 8.
func (m *Mem) ReadU(addr uint64, size int) (uint64, error) {
	if err := m.check(addr, size); err != nil {
		return 0, err
	}
	if len(m.stuck) != 0 {
		m.assertStuck(addr, size)
	}
	b := m.bytes[addr:]
	switch size {
	case 1:
		return uint64(b[0]), nil
	case 2:
		return uint64(binary.LittleEndian.Uint16(b)), nil
	case 4:
		return uint64(binary.LittleEndian.Uint32(b)), nil
	case 8:
		return binary.LittleEndian.Uint64(b), nil
	}
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v, nil
}

// WriteU writes an unsigned little-endian value of size 1, 2, 4 or 8.
func (m *Mem) WriteU(addr uint64, size int, v uint64) error {
	if err := m.check(addr, size); err != nil {
		return err
	}
	b := m.bytes[addr:]
	switch size {
	case 1:
		b[0] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(b, uint32(v))
	case 8:
		binary.LittleEndian.PutUint64(b, v)
	default:
		for i := 0; i < size; i++ {
			b[i] = byte(v >> (8 * i))
		}
	}
	m.touch(addr, size)
	if len(m.stuck) != 0 {
		m.assertStuck(addr, size)
	}
	return nil
}

// FlipBit inverts a single bit, used by the fault injector. bit is the
// absolute bit index within the byte at addr.
func (m *Mem) FlipBit(addr uint64, bit uint) error {
	if err := m.check(addr, 1); err != nil {
		return err
	}
	m.bytes[addr] ^= 1 << (bit % 8)
	m.touch(addr, 1)
	if len(m.stuck) != 0 {
		m.assertStuck(addr, 1)
	}
	return nil
}

// Slice returns a window into physical memory for zero-copy device DMA.
// The caller must not hold it across a resize (memory never resizes), and
// must complete any writes through the window before the next core
// instruction executes — re-acquire the window for each DMA burst. The
// grant conservatively marks the whole window mutated, which is what keeps
// the predecoded instruction cache coherent with DMA into text pages.
func (m *Mem) Slice(addr uint64, n int) ([]byte, error) {
	if err := m.check(addr, n); err != nil {
		return nil, err
	}
	m.touch(addr, n)
	if len(m.stuck) != 0 {
		m.assertStuck(addr, n)
	}
	return m.bytes[addr : addr+uint64(n)], nil
}

// cache is a direct-mapped write-back cache keyed on line tags. It tracks
// only tags, not data: physical memory is always current for reads, and
// the cache exists purely for the cycle cost model.
type cache struct {
	tags      []uint64
	valid     []bool
	dirty     []bool
	lineShift uint
	nlines    uint64
	// pow2 selects masking over modulo for the line-index fold. Every
	// shipped profile has a power-of-two line count; the modulo path is
	// the fallback for exotic hand-built profiles.
	pow2     bool
	lineMask uint64
	// gen counts line replacements (fills and flushes). Host-derived: the
	// superblock fetch memo keys on it to prove a line probed present is
	// still present without re-probing.
	gen uint64
}

func newCache(capacity, lineSize int) *cache {
	shift := uint(0)
	for 1<<shift < lineSize {
		shift++
	}
	n := capacity / lineSize
	if n < 1 {
		n = 1
	}
	return &cache{
		tags:      make([]uint64, n),
		valid:     make([]bool, n),
		dirty:     make([]bool, n),
		lineShift: shift,
		nlines:    uint64(n),
		pow2:      n&(n-1) == 0,
		lineMask:  uint64(n - 1),
	}
}

// index folds a line number onto a cache slot: a mask when the line count
// is a power of two (always, for the shipped profiles), modulo otherwise.
func (c *cache) index(line uint64) uint64 {
	if c.pow2 {
		return line & c.lineMask
	}
	return line % c.nlines
}

// peek counts the line misses and dirty evictions an access of
// [addr, addr+size) would cause, without changing cache state.
func (c *cache) peek(addr uint64, size int) (misses, evictions int) {
	first := addr >> c.lineShift
	last := (addr + uint64(size) - 1) >> c.lineShift
	for line := first; line <= last; line++ {
		idx := c.index(line)
		if !c.valid[idx] || c.tags[idx] != line {
			misses++
			if c.valid[idx] && c.dirty[idx] {
				evictions++
			}
		}
	}
	return misses, evictions
}

// access commits the cache-state change for touching [addr, addr+size).
func (c *cache) access(addr uint64, size int, write bool) {
	first := addr >> c.lineShift
	last := (addr + uint64(size) - 1) >> c.lineShift
	for line := first; line <= last; line++ {
		idx := c.index(line)
		if !c.valid[idx] || c.tags[idx] != line {
			c.tags[idx] = line
			c.valid[idx] = true
			c.dirty[idx] = false
			c.gen++
		}
		if write {
			c.dirty[idx] = true
		}
	}
}

// flush invalidates the whole cache (used at replica boot).
func (c *cache) flush() {
	for i := range c.valid {
		c.valid[i] = false
		c.dirty[i] = false
	}
	c.gen++
}

// bus models the shared memory bus as a token bucket refilled every global
// cycle. Cores consume tokens for line fills and writebacks; when the
// bucket is empty they stall, which is how replica contention halves
// memcpy throughput under DMR on the x86 profile.
type bus struct {
	rate   int // tokens (bytes) added per cycle
	burst  int // bucket capacity
	tokens int // may go negative: a granted request leaves debt
	now    uint64
	q      []busWaiter // FIFO of requesters denied while the bucket drains
	// starve is the core denied every grant (arbiter fault, hardfault.go),
	// or -1. A starved core is refused outright, not enqueued, so it never
	// head-blocks the FIFO for its healthy peers.
	starve int
}

// busWaiter is one denied requester; seen is the bus cycle of its most
// recent retry, so requesters that stopped retrying (trapped, parked) can
// be dropped from the grant queue instead of blocking it.
type busWaiter struct {
	core int
	seen uint64
}

func newBus(rate int) *bus {
	return &bus{rate: rate, burst: rate * 4, tokens: rate * 4, starve: -1}
}

func (b *bus) tick() {
	b.now++
	b.tokens += b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// skip refills the bucket as k ticks would have, without iterating.
// Refilling saturates at burst, so only the ticks needed to get there
// matter; computing them first keeps the arithmetic overflow-free for
// arbitrarily large k.
func (b *bus) skip(k uint64) {
	b.now += k
	if b.rate <= 0 || b.tokens >= b.burst {
		return
	}
	need := uint64((b.burst-b.tokens-1)/b.rate) + 1
	if k >= need {
		b.tokens = b.burst
		return
	}
	b.tokens += int(k) * b.rate
}

// take grants core's request of n bytes when the bucket is non-negative,
// leaving debt that must drain before the next grant. Debt (rather than a
// hard capacity check) lets single requests exceed the per-cycle rate
// while still enforcing the average bandwidth.
//
// Grants go to denied requesters in FIFO order: without the queue, two
// cores streaming back-to-back block requests phase-lock with the token
// refill, and whichever core's retry lands first when the bucket recovers
// wins every grant — a persistent unfair split (observed 2:1 on Table V's
// full-scale membench) that no real memory controller exhibits. A waiter
// that stops retrying for two bus cycles has left for a trap or a park
// and is dropped so it cannot block the queue.
func (b *bus) take(core, n int) bool {
	if core == b.starve {
		return false
	}
	if b.tokens <= 0 {
		b.wait(core)
		return false
	}
	for len(b.q) > 0 && b.q[0].core != core && b.now-b.q[0].seen > 1 {
		b.q = b.q[1:]
	}
	if len(b.q) > 0 && b.q[0].core != core {
		b.wait(core)
		return false
	}
	if len(b.q) > 0 {
		b.q = b.q[1:]
	}
	b.tokens -= n
	return true
}

// wait enqueues core as a denied requester, or refreshes its retry stamp.
func (b *bus) wait(core int) {
	for i := range b.q {
		if b.q[i].core == core {
			b.q[i].seen = b.now
			return
		}
	}
	b.q = append(b.q, busWaiter{core: core, seen: b.now})
}
