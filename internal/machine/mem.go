package machine

import (
	"errors"
	"fmt"
)

// ErrBadPhysAddr is returned for physical accesses outside RAM that hit no
// MMIO window.
var ErrBadPhysAddr = errors.New("machine: physical address out of range")

// Mem is the machine's physical memory. Reads and writes are raw; cache
// and bus accounting happen in the core stepping path, not here, so
// devices (DMA) and fault injectors can touch memory without disturbing
// the cost model.
type Mem struct {
	bytes []byte
}

// NewMem allocates size bytes of zeroed physical memory.
func NewMem(size int) *Mem {
	return &Mem{bytes: make([]byte, size)}
}

// Size returns the memory size in bytes.
func (m *Mem) Size() uint64 { return uint64(len(m.bytes)) }

func (m *Mem) check(addr uint64, n int) error {
	if addr+uint64(n) > uint64(len(m.bytes)) || addr+uint64(n) < addr {
		return fmt.Errorf("%w: [%#x,+%d)", ErrBadPhysAddr, addr, n)
	}
	return nil
}

// Read copies n bytes starting at addr into a fresh slice.
func (m *Mem) Read(addr uint64, n int) ([]byte, error) {
	if err := m.check(addr, n); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, m.bytes[addr:])
	return out, nil
}

// Write copies b into memory at addr.
func (m *Mem) Write(addr uint64, b []byte) error {
	if err := m.check(addr, len(b)); err != nil {
		return err
	}
	copy(m.bytes[addr:], b)
	return nil
}

// ReadU reads an unsigned little-endian value of size 1, 2, 4 or 8.
func (m *Mem) ReadU(addr uint64, size int) (uint64, error) {
	if err := m.check(addr, size); err != nil {
		return 0, err
	}
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(m.bytes[addr+uint64(i)])
	}
	return v, nil
}

// WriteU writes an unsigned little-endian value of size 1, 2, 4 or 8.
func (m *Mem) WriteU(addr uint64, size int, v uint64) error {
	if err := m.check(addr, size); err != nil {
		return err
	}
	for i := 0; i < size; i++ {
		m.bytes[addr+uint64(i)] = byte(v >> (8 * i))
	}
	return nil
}

// FlipBit inverts a single bit, used by the fault injector. bit is the
// absolute bit index within the byte at addr.
func (m *Mem) FlipBit(addr uint64, bit uint) error {
	if err := m.check(addr, 1); err != nil {
		return err
	}
	m.bytes[addr] ^= 1 << (bit % 8)
	return nil
}

// Slice returns a window into physical memory for zero-copy device DMA.
// The caller must not hold it across a resize (memory never resizes).
func (m *Mem) Slice(addr uint64, n int) ([]byte, error) {
	if err := m.check(addr, n); err != nil {
		return nil, err
	}
	return m.bytes[addr : addr+uint64(n)], nil
}

// cache is a direct-mapped write-back cache keyed on line tags. It tracks
// only tags, not data: physical memory is always current for reads, and
// the cache exists purely for the cycle cost model.
type cache struct {
	tags      []uint64
	valid     []bool
	dirty     []bool
	lineShift uint
	nlines    uint64
}

func newCache(capacity, lineSize int) *cache {
	shift := uint(0)
	for 1<<shift < lineSize {
		shift++
	}
	n := capacity / lineSize
	if n < 1 {
		n = 1
	}
	return &cache{
		tags:      make([]uint64, n),
		valid:     make([]bool, n),
		dirty:     make([]bool, n),
		lineShift: shift,
		nlines:    uint64(n),
	}
}

// peek counts the line misses and dirty evictions an access of
// [addr, addr+size) would cause, without changing cache state.
func (c *cache) peek(addr uint64, size int) (misses, evictions int) {
	first := addr >> c.lineShift
	last := (addr + uint64(size) - 1) >> c.lineShift
	for line := first; line <= last; line++ {
		idx := line % c.nlines
		if !c.valid[idx] || c.tags[idx] != line {
			misses++
			if c.valid[idx] && c.dirty[idx] {
				evictions++
			}
		}
	}
	return misses, evictions
}

// access commits the cache-state change for touching [addr, addr+size).
func (c *cache) access(addr uint64, size int, write bool) {
	first := addr >> c.lineShift
	last := (addr + uint64(size) - 1) >> c.lineShift
	for line := first; line <= last; line++ {
		idx := line % c.nlines
		if !c.valid[idx] || c.tags[idx] != line {
			c.tags[idx] = line
			c.valid[idx] = true
			c.dirty[idx] = false
		}
		if write {
			c.dirty[idx] = true
		}
	}
}

// flush invalidates the whole cache (used at replica boot).
func (c *cache) flush() {
	for i := range c.valid {
		c.valid[i] = false
		c.dirty[i] = false
	}
}

// bus models the shared memory bus as a token bucket refilled every global
// cycle. Cores consume tokens for line fills and writebacks; when the
// bucket is empty they stall, which is how replica contention halves
// memcpy throughput under DMR on the x86 profile.
type bus struct {
	rate   int // tokens (bytes) added per cycle
	burst  int // bucket capacity
	tokens int // may go negative: a granted request leaves debt
}

func newBus(rate int) *bus {
	return &bus{rate: rate, burst: rate * 4, tokens: rate * 4}
}

func (b *bus) tick() {
	b.tokens += b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// skip refills the bucket as k ticks would have, without iterating.
// Refilling saturates at burst, so only the ticks needed to get there
// matter; computing them first keeps the arithmetic overflow-free for
// arbitrarily large k.
func (b *bus) skip(k uint64) {
	if b.rate <= 0 || b.tokens >= b.burst {
		return
	}
	need := uint64((b.burst-b.tokens-1)/b.rate) + 1
	if k >= need {
		b.tokens = b.burst
		return
	}
	b.tokens += int(k) * b.rate
}

// take grants a request of n bytes when the bucket is non-negative,
// leaving debt that must drain before the next grant. Debt (rather than a
// hard capacity check) lets single requests exceed the per-cycle rate
// while still enforcing the average bandwidth.
func (b *bus) take(n int) bool {
	if b.tokens <= 0 {
		return false
	}
	b.tokens -= n
	return true
}
