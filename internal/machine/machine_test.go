package machine

import (
	"testing"

	"rcoe/internal/asm"
	"rcoe/internal/isa"
)

// testHandler records traps and halts the core on any trap except syscall
// number 0, which it treats as "exit".
type testHandler struct {
	traps []Trap
}

func (h *testHandler) HandleTrap(c *Core, t Trap) {
	h.traps = append(h.traps, t)
	c.Halt()
}

// flatAS maps [0, size) identity with full permissions.
func flatAS(size uint64) *AddrSpace {
	return &AddrSpace{Segs: []Segment{{VBase: 0, PBase: 0, Size: size, Perm: PermR | PermW | PermX}}}
}

// loadProg assembles b at base 0, writes it to memory, and boots core 0.
func loadProg(t *testing.T, m *Machine, b *asm.Builder) *testHandler {
	t.Helper()
	prog, err := b.Assemble(0)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if err := m.Mem().Write(0, isa.EncodeProgram(prog)); err != nil {
		t.Fatalf("load: %v", err)
	}
	h := &testHandler{}
	m.SetHandler(h)
	m.StartCore(0, 0, flatAS(m.Mem().Size()))
	return h
}

func run(t *testing.T, m *Machine, h *testHandler) {
	t.Helper()
	if err := m.RunUntil(func() bool { return len(h.traps) > 0 }, 10_000_000); err != nil {
		t.Fatalf("program did not finish: %v", err)
	}
}

func noJitter(p Profile) Profile {
	p.JitterShift = 63
	return p
}

func TestArithmetic(t *testing.T) {
	m := New(noJitter(X86()), 1<<16)
	b := asm.New()
	b.Li(1, 6)
	b.Li(2, 7)
	b.Mul(3, 1, 2)  // 42
	b.Addi(3, 3, 8) // 50
	b.Li(4, 5)
	b.Divu(3, 3, 4) // 10
	b.Hlt()
	h := loadProg(t, m, b)
	run(t, m, h)
	if got := m.Core(0).Regs[3]; got != 10 {
		t.Fatalf("r3 = %d, want 10", got)
	}
	if h.traps[0].Kind != TrapHalt {
		t.Fatalf("trap = %v, want halt", h.traps[0].Kind)
	}
}

func TestLi64(t *testing.T) {
	m := New(noJitter(X86()), 1<<16)
	b := asm.New()
	b.Li64(1, 0xdeadbeefcafebabe)
	b.Li64(2, 42)
	b.Li64(3, 0xffffffffffffffff)
	b.Hlt()
	h := loadProg(t, m, b)
	run(t, m, h)
	c := m.Core(0)
	if c.Regs[1] != 0xdeadbeefcafebabe {
		t.Fatalf("r1 = %#x", c.Regs[1])
	}
	if c.Regs[2] != 42 {
		t.Fatalf("r2 = %d", c.Regs[2])
	}
	if c.Regs[3] != 0xffffffffffffffff {
		t.Fatalf("r3 = %#x", c.Regs[3])
	}
}

func TestLoopAndBranchCounting(t *testing.T) {
	m := New(noJitter(X86()), 1<<16)
	b := asm.New()
	b.Li(1, 0)  // i
	b.Li(2, 10) // n
	b.Label("loop")
	b.Addi(1, 1, 1)
	b.Blt(1, 2, "loop")
	b.Hlt()
	h := loadProg(t, m, b)
	run(t, m, h)
	c := m.Core(0)
	if c.Regs[1] != 10 {
		t.Fatalf("loop counter = %d, want 10", c.Regs[1])
	}
	// The conditional branch executes 10 times (9 taken + 1 fall-through).
	if c.UserBranches != 10 {
		t.Fatalf("UserBranches = %d, want 10", c.UserBranches)
	}
}

func TestLoadStoreSizes(t *testing.T) {
	m := New(noJitter(X86()), 1<<16)
	b := asm.New()
	b.Li(1, 0x1000)
	b.Li64(2, 0x1122334455667788)
	b.St(8, 1, 2, 0)
	b.Ld(1, 3, 1, 0) // 0x88
	b.Ld(2, 4, 1, 0) // 0x7788
	b.Ld(4, 5, 1, 0) // 0x55667788
	b.Ld(8, 6, 1, 0)
	b.St(1, 1, 2, 9) // write 0x88 at 0x1009
	b.Ld(1, 7, 1, 9)
	b.Hlt()
	h := loadProg(t, m, b)
	run(t, m, h)
	c := m.Core(0)
	if c.Regs[3] != 0x88 || c.Regs[4] != 0x7788 || c.Regs[5] != 0x55667788 {
		t.Fatalf("partial loads wrong: %#x %#x %#x", c.Regs[3], c.Regs[4], c.Regs[5])
	}
	if c.Regs[6] != 0x1122334455667788 {
		t.Fatalf("full load = %#x", c.Regs[6])
	}
	if c.Regs[7] != 0x88 {
		t.Fatalf("byte store/load = %#x", c.Regs[7])
	}
}

func TestHardwiredZero(t *testing.T) {
	m := New(noJitter(X86()), 1<<16)
	b := asm.New()
	b.Li(0, 99) // should be discarded
	b.Add(1, 0, 0)
	b.Hlt()
	h := loadProg(t, m, b)
	run(t, m, h)
	if got := m.Core(0).Regs[1]; got != 0 {
		t.Fatalf("r0 not hardwired to zero: r1 = %d", got)
	}
}

func TestMemcpyRepBehaviour(t *testing.T) {
	m := New(noJitter(X86()), 1<<20)
	b := asm.New()
	b.Li(1, 4096) // len
	b.Li(2, 0x8000)
	b.Li(3, 0x4000)
	b.Memcpy(1, 2, 3)
	b.Hlt()
	src := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i * 7)
	}
	if err := m.Mem().Write(0x4000, src); err != nil {
		t.Fatal(err)
	}
	h := loadProg(t, m, b)
	run(t, m, h)
	got, err := m.Mem().Read(0x8000, 4096)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != src[i] {
			t.Fatalf("byte %d: got %#x want %#x", i, got[i], src[i])
		}
	}
	c := m.Core(0)
	if c.Regs[1] != 0 {
		t.Fatalf("length register = %d, want 0", c.Regs[1])
	}
	if c.Regs[2] != 0x8000+4096 || c.Regs[3] != 0x4000+4096 {
		t.Fatalf("cursors did not advance: dst=%#x src=%#x", c.Regs[2], c.Regs[3])
	}
	if c.UserBranches != 0 {
		t.Fatalf("MEMCPY counted branches: %d", c.UserBranches)
	}
	// rep-style: it must take multiple issue slots, not one.
	if c.Instructions < 4096/uint64(m.Profile().MemCopyChunk) {
		t.Fatalf("MEMCPY completed in %d issues, expected >= %d",
			c.Instructions, 4096/m.Profile().MemCopyChunk)
	}
}

func TestMemsetFills(t *testing.T) {
	m := New(noJitter(X86()), 1<<20)
	b := asm.New()
	b.Li(1, 300)
	b.Li(2, 0x9000)
	b.Memset(1, 2, 0xAB)
	b.Hlt()
	h := loadProg(t, m, b)
	run(t, m, h)
	got, err := m.Mem().Read(0x9000, 300)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 0xAB {
			t.Fatalf("byte %d = %#x, want 0xAB", i, v)
		}
	}
	after, _ := m.Mem().ReadU(0x9000+300, 1)
	if after != 0 {
		t.Fatalf("memset overran: %#x", after)
	}
}

func TestBreakpointFires(t *testing.T) {
	m := New(noJitter(X86()), 1<<16)
	b := asm.New()
	b.Li(1, 0)
	b.Label("loop")
	b.Addi(1, 1, 1) // instruction 1 at address 8
	b.Blt(1, 2, "loop")
	b.Hlt()
	prog := b.MustAssemble(0)
	if err := m.Mem().Write(0, isa.EncodeProgram(prog)); err != nil {
		t.Fatal(err)
	}
	h := &testHandler{}
	m.SetHandler(h)
	m.StartCore(0, 0, flatAS(m.Mem().Size()))
	m.Core(0).Regs[2] = 1000
	m.Core(0).BP = Breakpoint{Addr: 8, Enabled: true}
	run(t, m, h)
	tr := h.traps[0]
	if tr.Kind != TrapBreakpoint || tr.PC != 8 {
		t.Fatalf("trap = %+v, want breakpoint at 8", tr)
	}
	// The breakpoint fires before the instruction executes.
	if m.Core(0).Regs[1] != 0 {
		t.Fatalf("instruction at breakpoint executed: r1 = %d", m.Core(0).Regs[1])
	}
}

// resumeHandler exercises the resume-flag protocol: on breakpoint it sets
// ResumeOnce and continues; it records how many times the BP fired.
type resumeHandler struct {
	bpHits int
	halts  int
}

func (h *resumeHandler) HandleTrap(c *Core, t Trap) {
	switch t.Kind {
	case TrapBreakpoint:
		h.bpHits++
		c.ResumeOnce = true
	case TrapHalt:
		h.halts++
		c.Halt()
	default:
		c.Halt()
	}
}

func TestBreakpointResumeFlagInLoop(t *testing.T) {
	m := New(noJitter(X86()), 1<<16)
	b := asm.New()
	b.Li(1, 0)
	b.Li(2, 5)
	b.Label("loop")
	b.Addi(1, 1, 1) // address 16
	b.Blt(1, 2, "loop")
	b.Hlt()
	prog := b.MustAssemble(0)
	if err := m.Mem().Write(0, isa.EncodeProgram(prog)); err != nil {
		t.Fatal(err)
	}
	h := &resumeHandler{}
	m.SetHandler(h)
	m.StartCore(0, 0, flatAS(m.Mem().Size()))
	m.Core(0).BP = Breakpoint{Addr: 16, Enabled: true}
	if err := m.RunUntil(func() bool { return h.halts > 0 }, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if h.bpHits != 5 {
		t.Fatalf("breakpoint hits = %d, want 5 (once per loop iteration)", h.bpHits)
	}
	if m.Core(0).Regs[1] != 5 {
		t.Fatalf("loop result = %d, want 5", m.Core(0).Regs[1])
	}
}

// stepHandler exercises the no-resume-flag (Arm) protocol: disable the
// breakpoint, single-step, re-enable on the single-step exception.
type stepHandler struct {
	bpHits, stepHits, halts int
	bpAddr                  uint64
}

func (h *stepHandler) HandleTrap(c *Core, t Trap) {
	switch t.Kind {
	case TrapBreakpoint:
		h.bpHits++
		c.BP.Enabled = false
		c.SingleStep = true
	case TrapSingleStep:
		h.stepHits++
		c.BP = Breakpoint{Addr: h.bpAddr, Enabled: true}
	case TrapHalt:
		h.halts++
		c.Halt()
	default:
		c.Halt()
	}
}

func TestBreakpointWithoutResumeFlag(t *testing.T) {
	m := New(noJitter(Arm()), 1<<16)
	b := asm.New()
	b.Li(1, 0)
	b.Li(2, 3)
	b.Label("loop")
	b.Addi(1, 1, 1) // address 16
	b.Blt(1, 2, "loop")
	b.Hlt()
	prog := b.MustAssemble(0)
	if err := m.Mem().Write(0, isa.EncodeProgram(prog)); err != nil {
		t.Fatal(err)
	}
	h := &stepHandler{bpAddr: 16}
	m.SetHandler(h)
	m.StartCore(0, 0, flatAS(m.Mem().Size()))
	m.Core(0).BP = Breakpoint{Addr: 16, Enabled: true}
	if err := m.RunUntil(func() bool { return h.halts > 0 }, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if h.bpHits != 3 || h.stepHits != 3 {
		t.Fatalf("bp/step hits = %d/%d, want 3/3 (two debug exceptions per hit)", h.bpHits, h.stepHits)
	}
}

func TestMemFaultOnUnmapped(t *testing.T) {
	m := New(noJitter(X86()), 1<<16)
	b := asm.New()
	b.Li64(1, 1<<40)
	b.Ld(8, 2, 1, 0)
	b.Hlt()
	h := loadProg(t, m, b)
	run(t, m, h)
	if h.traps[0].Kind != TrapMemFault {
		t.Fatalf("trap = %v, want mem-fault", h.traps[0].Kind)
	}
	if h.traps[0].Addr != 1<<40 {
		t.Fatalf("fault addr = %#x", h.traps[0].Addr)
	}
}

func TestPermissionFault(t *testing.T) {
	m := New(noJitter(X86()), 1<<16)
	b := asm.New()
	b.Li(1, 0x100)
	b.St(8, 1, 2, 0)
	b.Hlt()
	prog := b.MustAssemble(0)
	if err := m.Mem().Write(0, isa.EncodeProgram(prog)); err != nil {
		t.Fatal(err)
	}
	h := &testHandler{}
	m.SetHandler(h)
	// Text is execute/read only; the store must fault.
	as := &AddrSpace{Segs: []Segment{{VBase: 0, PBase: 0, Size: 1 << 16, Perm: PermR | PermX}}}
	m.StartCore(0, 0, as)
	run(t, m, h)
	if h.traps[0].Kind != TrapMemFault {
		t.Fatalf("trap = %v, want mem-fault on read-only segment", h.traps[0].Kind)
	}
}

func TestDivZeroTraps(t *testing.T) {
	m := New(noJitter(X86()), 1<<16)
	b := asm.New()
	b.Li(1, 10)
	b.Div(2, 1, 0)
	b.Hlt()
	h := loadProg(t, m, b)
	run(t, m, h)
	if h.traps[0].Kind != TrapDivZero {
		t.Fatalf("trap = %v, want div-zero", h.traps[0].Kind)
	}
}

func TestIllegalInstruction(t *testing.T) {
	m := New(noJitter(X86()), 1<<16)
	// 0xFF is not a valid opcode.
	if err := m.Mem().Write(0, []byte{0xFF, 0, 0, 0, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	h := &testHandler{}
	m.SetHandler(h)
	m.StartCore(0, 0, flatAS(m.Mem().Size()))
	run(t, m, h)
	if h.traps[0].Kind != TrapIllegal {
		t.Fatalf("trap = %v, want illegal-instruction", h.traps[0].Kind)
	}
}

func TestLLSCSuccess(t *testing.T) {
	m := New(noJitter(Arm()), 1<<16)
	b := asm.New()
	b.Li(1, 0x1000)
	b.LL(2, 1)
	b.Addi(2, 2, 5)
	b.SC(3, 1, 2)
	b.Hlt()
	if err := m.Mem().WriteU(0x1000, 8, 37); err != nil {
		t.Fatal(err)
	}
	h := loadProg(t, m, b)
	run(t, m, h)
	c := m.Core(0)
	if c.Regs[3] != 0 {
		t.Fatalf("SC failed: r3 = %d", c.Regs[3])
	}
	v, _ := m.Mem().ReadU(0x1000, 8)
	if v != 42 {
		t.Fatalf("mem = %d, want 42", v)
	}
}

func TestSCFailsAfterClearReservation(t *testing.T) {
	m := New(noJitter(Arm()), 1<<16)
	b := asm.New()
	b.Li(1, 0x1000)
	b.LL(2, 1)
	b.Syscall(99) // kernel clears reservation (context switch)
	b.SC(3, 1, 2)
	b.Hlt()
	prog := b.MustAssemble(0)
	if err := m.Mem().Write(0, isa.EncodeProgram(prog)); err != nil {
		t.Fatal(err)
	}
	halts := 0
	m.SetHandler(handlerFunc(func(c *Core, tr Trap) {
		switch tr.Kind {
		case TrapSyscall:
			c.ClearReservation()
		case TrapHalt:
			halts++
			c.Halt()
		default:
			c.Halt()
		}
	}))
	m.StartCore(0, 0, flatAS(m.Mem().Size()))
	if err := m.RunUntil(func() bool { return halts > 0 }, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if got := m.Core(0).Regs[3]; got != 1 {
		t.Fatalf("SC after cleared reservation: r3 = %d, want 1", got)
	}
}

type handlerFunc func(*Core, Trap)

func (f handlerFunc) HandleTrap(c *Core, t Trap) { f(c, t) }

func TestCasSemantics(t *testing.T) {
	m := New(noJitter(X86()), 1<<16)
	b := asm.New()
	b.Li(1, 0x1000)
	b.Li(2, 7)  // expected
	b.Li(3, 99) // new
	b.Cas(2, 1, 3)
	b.Li(4, 0) // expected (wrong)
	b.Li(5, 1)
	b.Cas(4, 1, 5)
	b.Hlt()
	if err := m.Mem().WriteU(0x1000, 8, 7); err != nil {
		t.Fatal(err)
	}
	h := loadProg(t, m, b)
	run(t, m, h)
	c := m.Core(0)
	if c.Regs[2] != 7 {
		t.Fatalf("first CAS observed %d, want 7", c.Regs[2])
	}
	v, _ := m.Mem().ReadU(0x1000, 8)
	if v != 99 {
		t.Fatalf("first CAS did not swap: mem = %d", v)
	}
	if c.Regs[4] != 99 {
		t.Fatalf("second CAS observed %d, want 99", c.Regs[4])
	}
}

func TestXadd(t *testing.T) {
	m := New(noJitter(X86()), 1<<16)
	b := asm.New()
	b.Li(1, 0x1000)
	b.Li(2, 5)
	b.Xadd(3, 1, 2)
	b.Xadd(4, 1, 2)
	b.Hlt()
	h := loadProg(t, m, b)
	run(t, m, h)
	c := m.Core(0)
	if c.Regs[3] != 0 || c.Regs[4] != 5 {
		t.Fatalf("xadd returns = %d,%d want 0,5", c.Regs[3], c.Regs[4])
	}
	v, _ := m.Mem().ReadU(0x1000, 8)
	if v != 10 {
		t.Fatalf("mem = %d, want 10", v)
	}
}

func TestFloatingPoint(t *testing.T) {
	m := New(noJitter(X86()), 1<<16)
	b := asm.New()
	b.Li(1, 9)
	b.FcvtIF(2, 1) // 9.0
	b.Fsqrt(3, 2)  // 3.0
	b.FcvtFI(4, 3)
	b.Li(5, 2)
	b.FcvtIF(5, 5)
	b.Fmul(6, 3, 5) // 6.0
	b.Fdiv(7, 6, 5) // 3.0
	b.Feq(8, 7, 3)  // 1
	b.Hlt()
	h := loadProg(t, m, b)
	run(t, m, h)
	c := m.Core(0)
	if c.Regs[4] != 3 {
		t.Fatalf("sqrt(9) = %d, want 3", c.Regs[4])
	}
	if c.Regs[8] != 1 {
		t.Fatalf("feq = %d, want 1", c.Regs[8])
	}
}

func TestMMIO(t *testing.T) {
	m := New(noJitter(X86()), 1<<16)
	dev := &recordingMMIO{}
	m.MapMMIO(0xF000_0000, 0x100, dev)
	b := asm.New()
	b.Li64(1, 0xF000_0000)
	b.Li(2, 0x55)
	b.St(4, 1, 2, 8)
	b.Ld(4, 3, 1, 16)
	b.Hlt()
	prog := b.MustAssemble(0)
	if err := m.Mem().Write(0, isa.EncodeProgram(prog)); err != nil {
		t.Fatal(err)
	}
	h := &testHandler{}
	m.SetHandler(h)
	as := &AddrSpace{Segs: []Segment{
		{VBase: 0, PBase: 0, Size: 1 << 16, Perm: PermR | PermW | PermX},
		{VBase: 0xF000_0000, PBase: 0xF000_0000, Size: 0x100, Perm: PermR | PermW},
	}}
	m.StartCore(0, 0, as)
	run(t, m, h)
	if dev.lastWriteAddr != 0xF000_0008 || dev.lastWriteVal != 0x55 {
		t.Fatalf("MMIO write not seen: %#x = %#x", dev.lastWriteAddr, dev.lastWriteVal)
	}
	if m.Core(0).Regs[3] != 0x1234 {
		t.Fatalf("MMIO read = %#x, want 0x1234", m.Core(0).Regs[3])
	}
}

type recordingMMIO struct {
	lastWriteAddr, lastWriteVal uint64
}

func (d *recordingMMIO) MMIORead(addr uint64, size int) uint64 { return 0x1234 }
func (d *recordingMMIO) MMIOWrite(addr uint64, size int, v uint64) {
	d.lastWriteAddr, d.lastWriteVal = addr, v
}

func TestIRQDeliveryAndRouting(t *testing.T) {
	m := New(noJitter(X86()), 1<<16)
	b := asm.New()
	b.Label("spin")
	b.J("spin")
	prog := b.MustAssemble(0)
	if err := m.Mem().Write(0, isa.EncodeProgram(prog)); err != nil {
		t.Fatal(err)
	}
	var got []int
	m.SetHandler(handlerFunc(func(c *Core, tr Trap) {
		if tr.Kind == TrapIRQ {
			got = append(got, c.ID)
			c.AckIRQ(c.PendingIRQ())
			c.Halt()
		}
	}))
	as := flatAS(m.Mem().Size())
	m.StartCore(0, 0, as)
	m.StartCore(1, 0, as)
	m.RouteIRQ(3, 1)
	m.RaiseIRQ(3)
	if err := m.RunUntil(func() bool { return len(got) > 0 }, 100_000); err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatalf("IRQ delivered to core %d, want 1", got[0])
	}
}

func TestIPI(t *testing.T) {
	m := New(noJitter(X86()), 1<<16)
	b := asm.New()
	b.Label("spin")
	b.J("spin")
	prog := b.MustAssemble(0)
	if err := m.Mem().Write(0, isa.EncodeProgram(prog)); err != nil {
		t.Fatal(err)
	}
	var ipiCore = -1
	m.SetHandler(handlerFunc(func(c *Core, tr Trap) {
		if tr.Kind == TrapIRQ && c.IPIPending() {
			c.AckIPI()
			ipiCore = c.ID
			c.Halt()
		}
	}))
	as := flatAS(m.Mem().Size())
	m.StartCore(0, 0, as)
	m.StartCore(2, 0, as)
	m.SendIPI(2)
	if err := m.RunUntil(func() bool { return ipiCore >= 0 }, 100_000); err != nil {
		t.Fatal(err)
	}
	if ipiCore != 2 {
		t.Fatalf("IPI delivered to core %d, want 2", ipiCore)
	}
}

func TestParkAndResume(t *testing.T) {
	m := New(noJitter(X86()), 1<<16)
	b := asm.New()
	b.Li(1, 1)
	b.Hlt()
	h := loadProg(t, m, b)
	c := m.Core(0)
	released := false
	resumed := false
	c.Park(func() bool { return released }, func() { resumed = true })
	m.Run(100)
	if c.Regs[1] != 0 {
		t.Fatalf("parked core executed instructions")
	}
	before := c.Cycles
	if before == 0 {
		t.Fatalf("parked core's cycle counter should advance (spinning)")
	}
	released = true
	run(t, m, h)
	if !resumed {
		t.Fatalf("park done callback not invoked")
	}
	if c.Regs[1] != 1 {
		t.Fatalf("core did not resume execution")
	}
}

func TestJitterCausesDrift(t *testing.T) {
	m := New(X86(), 1<<16) // jitter enabled
	b := asm.New()
	b.Li(1, 0)
	b.Li64(2, 200000)
	b.Label("loop")
	b.Addi(1, 1, 1)
	b.Blt(1, 2, "loop")
	b.Label("spin")
	b.J("spin")
	prog := b.MustAssemble(0)
	if err := m.Mem().Write(0, isa.EncodeProgram(prog)); err != nil {
		t.Fatal(err)
	}
	m.SetHandler(handlerFunc(func(c *Core, tr Trap) { c.Halt() }))
	as := flatAS(m.Mem().Size())
	m.StartCore(0, 0, as)
	m.StartCore(1, 0, as)
	// Run until both finish the loop; they should not be in lock-step.
	finished := func(c *Core) bool { return c.Regs[1] == 200000 }
	drifted := false
	for i := 0; i < 3_000_000; i++ {
		m.Step()
		if m.Core(0).Regs[1] != m.Core(1).Regs[1] {
			drifted = true
		}
		if finished(m.Core(0)) && finished(m.Core(1)) {
			break
		}
	}
	if !finished(m.Core(0)) || !finished(m.Core(1)) {
		t.Fatalf("cores did not finish")
	}
	if !drifted {
		t.Fatalf("identical cores never drifted; replicas would be in lock-step")
	}
}

func TestBusContentionSlowsStreams(t *testing.T) {
	prof := noJitter(X86())
	// Single-core streaming time over a large buffer.
	single := memcpyCycles(t, prof, 1)
	dual := memcpyCycles(t, prof, 2)
	ratio := float64(dual) / float64(single)
	if ratio < 1.6 {
		t.Fatalf("DMR memcpy contention ratio = %.2f, want ~2 (x86 bus saturation)", ratio)
	}
	armProf := noJitter(Arm())
	aSingle := memcpyCycles(t, armProf, 1)
	aDual := memcpyCycles(t, armProf, 2)
	aRatio := float64(aDual) / float64(aSingle)
	if aRatio > 1.4 {
		t.Fatalf("Arm DMR memcpy ratio = %.2f, want ~1 (bus headroom)", aRatio)
	}
}

// memcpyCycles runs n cores each copying a 256 KiB buffer (larger than any
// test cache) and returns the cycles until all finish.
func memcpyCycles(t *testing.T, prof Profile, n int) uint64 {
	t.Helper()
	const size = 4 << 20
	m := New(prof, 16<<20)
	b := asm.New()
	b.Li64(1, size)
	b.Li64(2, 8<<20)
	b.Li64(3, 4<<20)
	b.Memcpy(1, 2, 3)
	b.Hlt()
	prog := b.MustAssemble(0)
	if err := m.Mem().Write(0, isa.EncodeProgram(prog)); err != nil {
		t.Fatal(err)
	}
	halted := 0
	m.SetHandler(handlerFunc(func(c *Core, tr Trap) { halted++; c.Halt() }))
	as := flatAS(m.Mem().Size())
	for i := 0; i < n; i++ {
		m.StartCore(i, 0, as)
	}
	if err := m.RunUntil(func() bool { return halted == n }, 100_000_000); err != nil {
		t.Fatal(err)
	}
	var maxCycles uint64
	for i := 0; i < n; i++ {
		if c := m.Core(i).Cycles; c > maxCycles {
			maxCycles = c
		}
	}
	return maxCycles
}

func TestFlipBit(t *testing.T) {
	m := New(noJitter(X86()), 1<<16)
	if err := m.Mem().WriteU(0x100, 8, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Mem().FlipBit(0x100, 3); err != nil {
		t.Fatal(err)
	}
	v, _ := m.Mem().ReadU(0x100, 8)
	if v != 8 {
		t.Fatalf("after flip = %d, want 8", v)
	}
	if err := m.Mem().FlipBit(1<<40, 0); err == nil {
		t.Fatalf("FlipBit out of range should fail")
	}
}

func TestTranslateStraddleFails(t *testing.T) {
	as := &AddrSpace{Segs: []Segment{
		{VBase: 0, PBase: 0, Size: 0x1000, Perm: PermR | PermW},
		{VBase: 0x1000, PBase: 0x2000, Size: 0x1000, Perm: PermR | PermW},
	}}
	if _, _, ok := as.Translate(0xFFC, 8, PermR); ok {
		t.Fatalf("straddling access should not translate")
	}
	pa, _, ok := as.Translate(0x1004, 4, PermR)
	if !ok || pa != 0x2004 {
		t.Fatalf("translate = %#x,%v", pa, ok)
	}
}

func TestBranchWatchFires(t *testing.T) {
	m := New(noJitter(X86()), 1<<16)
	b := asm.New()
	b.Li(1, 0)
	b.Li64(2, 1000)
	b.Label("loop")
	b.Addi(1, 1, 1)
	b.Blt(1, 2, "loop")
	b.Hlt()
	prog := b.MustAssemble(0)
	if err := m.Mem().Write(0, isa.EncodeProgram(prog)); err != nil {
		t.Fatal(err)
	}
	var hit *Trap
	m.SetHandler(handlerFunc(func(c *Core, tr Trap) {
		if tr.Kind == TrapBranchWatch && hit == nil {
			cp := tr
			hit = &cp
			c.Halt()
			return
		}
		c.Halt()
	}))
	m.StartCore(0, 0, flatAS(m.Mem().Size()))
	c := m.Core(0)
	c.BranchWatch.Target = 50
	c.BranchWatch.Enabled = true
	if err := m.RunUntil(func() bool { return hit != nil }, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if c.UserBranches != 50 {
		t.Fatalf("watch fired at %d branches, want 50", c.UserBranches)
	}
	if c.BranchWatch.Enabled {
		t.Fatalf("watch should self-disable")
	}
	// The loop counter shows forward progress happened without per-
	// iteration traps.
	if c.Regs[1] != 50 {
		t.Fatalf("r1 = %d, want 50", c.Regs[1])
	}
}

func TestResumeOnceCoversWholeBlockOp(t *testing.T) {
	// A breakpoint at a rep-style MEMCPY with the resume flag set must be
	// suppressed for the whole instruction, not re-fire per chunk.
	m := New(noJitter(X86()), 1<<20)
	b := asm.New()
	b.Li(1, 1024)
	b.Li(2, 0x8000)
	b.Li(3, 0x4000)
	b.Memcpy(1, 2, 3) // instruction at address 24
	b.Hlt()
	prog := b.MustAssemble(0)
	if err := m.Mem().Write(0, isa.EncodeProgram(prog)); err != nil {
		t.Fatal(err)
	}
	bpHits, halts := 0, 0
	m.SetHandler(handlerFunc(func(c *Core, tr Trap) {
		switch tr.Kind {
		case TrapBreakpoint:
			bpHits++
			c.ResumeOnce = true
		case TrapHalt:
			halts++
			c.Halt()
		default:
			c.Halt()
		}
	}))
	m.StartCore(0, 0, flatAS(m.Mem().Size()))
	m.Core(0).BP = Breakpoint{Addr: 24, Enabled: true}
	if err := m.RunUntil(func() bool { return halts > 0 }, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if bpHits != 1 {
		t.Fatalf("breakpoint fired %d times on one MEMCPY, want 1 (RF semantics)", bpHits)
	}
}

func TestParkedCoreConsumesStall(t *testing.T) {
	m := New(noJitter(X86()), 1<<16)
	b := asm.New()
	b.Li(1, 1)
	b.Hlt()
	h := loadProg(t, m, b)
	c := m.Core(0)
	c.AddStall(100)
	released := false
	c.Park(func() bool { return released }, nil)
	m.Run(150)
	released = true
	run(t, m, h)
	// The stall was absorbed by the park: the core resumed promptly.
	if c.Regs[1] != 1 {
		t.Fatalf("core did not resume after park")
	}
}
