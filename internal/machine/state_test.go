package machine

import (
	"bytes"
	"errors"
	"testing"

	"rcoe/internal/asm"
	"rcoe/internal/isa"
	snap "rcoe/internal/snapshot"
)

// buildStateMachine assembles a long two-core loop with a store stream,
// arms hard faults and an intermittent-fault device, and runs it to
// cycle `warm`. Both the saved and the restoring machine are built
// through this one path, which is the snapshot restore contract.
func buildStateMachine(t *testing.T, warm uint64) *Machine {
	t.Helper()
	m := New(X86(), 1<<16) // jitter enabled: exercises the PRNG state
	b := asm.New()
	b.Li(1, 0)
	b.Li64(2, 5_000_000)
	b.Li(3, 0x8000)
	b.Label("loop")
	b.Addi(1, 1, 1)
	b.St(8, 3, 1, 0) // store stream keeps cache + bus state nontrivial
	b.Addi(3, 3, 8)
	b.Andi(3, 3, 0x8FF8)
	b.Blt(1, 2, "loop")
	b.Hlt()
	prog := b.MustAssemble(0)
	if err := m.Mem().Write(0, isa.EncodeProgram(prog)); err != nil {
		t.Fatal(err)
	}
	m.SetHandler(handlerFunc(func(c *Core, tr Trap) { c.Halt() }))
	as := flatAS(m.Mem().Size())
	m.StartCore(0, 0, as)
	m.StartCore(1, 0, as)
	m.RouteIRQ(5, 1)
	if err := m.Mem().SetStuck(0x9000, 3, 1); err != nil {
		t.Fatal(err)
	}
	m.AddDevice(&IntermittentFault{Addr: 0x9100, Bit: 1, Value: 1,
		OnCycles: 500, OffCycles: 700, Seed: 42})
	m.Run(warm)
	return m
}

// TestMachineStateRoundTrip pins the machine-layer snapshot contract:
// save → restore into a fresh structurally identical machine is exact
// (re-serializing yields byte-identical data), and both machines then
// evolve bit-identically.
func TestMachineStateRoundTrip(t *testing.T) {
	a := buildStateMachine(t, 10_000)
	data, err := snap.Save(a)
	if err != nil {
		t.Fatal(err)
	}

	// Restore into a fresh machine built through the same path but
	// stopped at a different cycle, so every restored field matters.
	b := buildStateMachine(t, 3_333)
	if err := snap.Restore(b, data); err != nil {
		t.Fatal(err)
	}

	// Round-trip byte identity: nothing lost, nothing invented.
	data2, err := snap.Save(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		sa, _ := snap.Parse(data)
		sb, _ := snap.Parse(data2)
		t.Fatalf("re-serialized snapshot differs: %v", snap.Diff(sa, sb))
	}

	// Continuation determinism: both machines step onward identically.
	a.Run(7_500)
	b.Run(7_500)
	da, err := snap.Save(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := snap.Save(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(da, db) {
		sa, _ := snap.Parse(da)
		sb, _ := snap.Parse(db)
		t.Fatalf("continuation diverged after restore: %v", snap.Diff(sa, sb))
	}
	if a.Now() != b.Now() || a.Now() != 17_500 {
		t.Fatalf("now: a=%d b=%d", a.Now(), b.Now())
	}
}

// TestMachineStateAccelPortability saves under one accelerator combo and
// restores under another: the simulated state must evolve identically
// (fast-forward and the exec cache are host-side derived state, excluded
// from the snapshot boundary).
func TestMachineStateAccelPortability(t *testing.T) {
	a := buildStateMachine(t, 10_000)
	a.SetFastForward(true)
	a.SetExecCache(true)
	data, err := snap.Save(a)
	if err != nil {
		t.Fatal(err)
	}
	a.Run(20_000)

	b := buildStateMachine(t, 0)
	b.SetFastForward(false)
	b.SetExecCache(false)
	if err := snap.Restore(b, data); err != nil {
		t.Fatal(err)
	}
	b.Run(20_000)

	if a.Now() != b.Now() {
		t.Fatalf("now diverged: %d vs %d", a.Now(), b.Now())
	}
	for i := 0; i < a.NumCores(); i++ {
		ca, cb := a.Core(i), b.Core(i)
		if ca.Regs != cb.Regs || ca.PC != cb.PC || ca.Cycles != cb.Cycles ||
			ca.Instructions != cb.Instructions {
			t.Fatalf("core %d diverged across accel combos:\n a: pc=%#x cyc=%d %v\n b: pc=%#x cyc=%d %v",
				i, ca.PC, ca.Cycles, ca.Regs, cb.PC, cb.Cycles, cb.Regs)
		}
	}
	ma, _ := a.Mem().Read(0x8000, 0x1000)
	mb, _ := b.Mem().Read(0x8000, 0x1000)
	if !bytes.Equal(ma, mb) {
		t.Fatal("data memory diverged across accel combos")
	}
}

// TestMachineStateIncompatible rejects structurally mismatched targets.
func TestMachineStateIncompatible(t *testing.T) {
	a := buildStateMachine(t, 1_000)
	data, err := snap.Save(a)
	if err != nil {
		t.Fatal(err)
	}
	// Different memory size.
	small := New(X86(), 1<<15)
	if err := snap.Restore(small, data); !errors.Is(err, snap.ErrIncompatible) {
		t.Fatalf("mem-size mismatch: got %v, want ErrIncompatible", err)
	}
	// Different core count / profile.
	arm := New(Arm(), 1<<16)
	if err := snap.Restore(arm, data); !errors.Is(err, snap.ErrIncompatible) {
		t.Fatalf("profile mismatch: got %v, want ErrIncompatible", err)
	}
	// Missing stateful device.
	bare := New(X86(), 1<<16)
	if err := snap.Restore(bare, data); !errors.Is(err, snap.ErrIncompatible) {
		t.Fatalf("device mismatch: got %v, want ErrIncompatible", err)
	}
}

// TestMachineStateHardFaults verifies stuck bits and the intermittent
// fault's phase machine survive a round trip: the restored machine keeps
// asserting the fault exactly as the original does.
func TestMachineStateHardFaults(t *testing.T) {
	a := buildStateMachine(t, 10_000)
	data, err := snap.Save(a)
	if err != nil {
		t.Fatal(err)
	}
	b := buildStateMachine(t, 0)
	if err := snap.Restore(b, data); err != nil {
		t.Fatal(err)
	}
	if b.Mem().StuckBits() != a.Mem().StuckBits() {
		t.Fatalf("stuck set lost: %d vs %d", b.Mem().StuckBits(), a.Mem().StuckBits())
	}
	// Writing 0 to a stuck-at-1 bit must re-assert on both machines.
	for _, m := range []*Machine{a, b} {
		if err := m.Mem().WriteU(0x9000, 1, 0); err != nil {
			t.Fatal(err)
		}
		v, _ := m.Mem().ReadU(0x9000, 1)
		if v != 1<<3 {
			t.Fatalf("stuck bit not asserted after restore: %#x", v)
		}
	}
}
