package machine

import (
	"fmt"
	"testing"

	"rcoe/internal/asm"
	"rcoe/internal/isa"
)

// The superblock engine is a host-side accelerator: every test here runs
// the same scenario with the engine on and off and requires bit-identical
// simulated outcomes. The scenarios target the precision edges the batch
// must fall back on — DMA and bit-flips into cached block text, hard
// faults arming mid-run, park conditions flipping at batch entry, and
// device schedules that depend on RAM the batched cores write.

// sbDifferential runs trial twice — superblock on, then off — and
// requires identical snapshots. It returns the accelerated-run snapshot
// for scenario-specific assertions.
func sbDifferential(t *testing.T, trial func(t *testing.T, m *Machine) coreSnapshot) coreSnapshot {
	t.Helper()
	run := func(on bool) coreSnapshot {
		m := New(X86(), 1<<16) // jitter on: the PRNG must advance identically
		m.SetSuperblock(on)
		return trial(t, m)
	}
	fast, naive := run(true), run(false)
	assertSameSnapshot(t, fast, naive)
	return fast
}

// loadProgAt assembles b at base and boots core 0 there; the identity
// address space keeps physical and virtual addresses equal so tests can
// patch text through physical-memory handles.
func loadProgAt(t *testing.T, m *Machine, b *asm.Builder, base uint64) *testHandler {
	t.Helper()
	prog, err := b.Assemble(base)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if err := m.Mem().Write(base, isa.EncodeProgram(prog)); err != nil {
		t.Fatalf("load: %v", err)
	}
	h := &testHandler{}
	m.SetHandler(h)
	m.StartCore(0, base, flatAS(m.Mem().Size()))
	return h
}

// TestSuperblockHotLoopEquivalence runs a mixed arithmetic/memory/branch
// loop under jitter and requires every architectural counter identical to
// naive stepping, with the batched path actually carrying the run.
func TestSuperblockHotLoopEquivalence(t *testing.T) {
	b := asm.New()
	b.Li(1, 0)
	b.Li(2, 2000)
	b.Li(3, 0x8000)
	b.Label("loop")
	b.St(8, 3, 1, 0)
	b.Ld(8, 4, 3, 0)
	b.Add(5, 5, 4)
	b.Mul(6, 5, 4)
	b.Addi(1, 1, 1)
	b.Blt(1, 2, "loop")
	b.Hlt()
	got := sbDifferential(t, func(t *testing.T, m *Machine) coreSnapshot {
		h := loadProg(t, m, b)
		run(t, m, h)
		if m.SuperblockEnabled() {
			if hr := m.SuperblockStats().HitRate(); hr < 0.9 {
				t.Fatalf("block hit rate %.3f, want >= 0.9", hr)
			}
		}
		return takeSnapshot(m, h)
	})
	if got.regs[1] != 2000 {
		t.Fatalf("r1 = %d, want 2000", got.regs[1])
	}
}

// TestRunAdvancesExactly is the off-by-one property test for the
// Run/RunUntil accelerator windows (skipIdle(limit-1), runBlocks(limit-1)):
// Run(n) must advance Now() by exactly n for adversarial n under every
// {fast-forward × exec-cache × superblock} combination, with a schedule
// that keeps all three window types live — an executing core with long FP
// stalls, a parked core with a declared odd wake, an undeclared park
// probed at ParkProbeInterval, and a device with an odd period.
func TestRunAdvancesExactly(t *testing.T) {
	prog := asm.New()
	prog.Label("loop")
	prog.Fsin(5, 1) // FPTrans stall: mostly-idle cycles between issues
	prog.Addi(1, 1, 1)
	prog.J("loop")
	for variant := 0; variant < 8; variant++ {
		ff, ec, sb := variant&1 == 0, variant&2 == 0, variant&4 == 0
		t.Run(fmt.Sprintf("ff=%v,ec=%v,sb=%v", ff, ec, sb), func(t *testing.T) {
			m := New(X86(), 1<<16)
			m.SetFastForward(ff)
			m.SetExecCache(ec)
			m.SetSuperblock(sb)
			m.AddDevice(&fakeTimer{period: 997})
			loadProg(t, m, prog)
			c1 := m.Core(1)
			c1.Park(func() bool { return c1.Cycles >= 100_003 }, nil)
			c1.ParkWakeAt(100_003)
			c2 := m.Core(2)
			c2.Park(func() bool { return false }, nil) // undeclared wake
			want := m.Now()
			for _, n := range []uint64{1, 2, 3, 7, 127, 997, 1023, 1024, 1025, 9973, 50_000} {
				m.Run(n)
				want += n
				if m.Now() != want {
					t.Fatalf("after Run(%d): now = %d, want exactly %d", n, m.Now(), want)
				}
			}
		})
	}
}

// TestSuperblockDMAStraddlesPageBoundary places a hot loop across a 4 KiB
// page boundary, warms the block cache, then DMA-writes a patch through a
// Mem.Slice window that straddles the same boundary. The whole-window
// generation touch must invalidate the cached block on both pages: the
// patched instruction executes, never the stale predecode.
func TestSuperblockDMAStraddlesPageBoundary(t *testing.T) {
	// Two instructions before the boundary, the patch target just after:
	// the block spans both pages.
	const base = 0x1000 - 2*isa.InstrBytes
	b := asm.New()
	b.Label("loop")
	b.Addi(5, 5, 1)     // 0xFF0, page 0
	b.Addi(7, 7, 1)     // 0xFF8, page 0: the loop counter
	b.Addi(6, 6, 1)     // 0x1000, page 1: the patch target
	b.Li(8, 4000)       // page 1
	b.Blt(7, 8, "loop") // page 1
	b.Hlt()
	got := sbDifferential(t, func(t *testing.T, m *Machine) coreSnapshot {
		h := loadProgAt(t, m, b, base)
		m.Run(400) // warm the block cache some iterations in
		if len(h.traps) != 0 {
			t.Fatalf("unexpected trap during warmup: %+v", h.traps)
		}
		// One DMA burst covering the last pre-boundary instruction and the
		// patch target: the window starts on page 0 and ends on page 1.
		win, err := m.Mem().Slice(0x1000-isa.InstrBytes, 2*isa.InstrBytes)
		if err != nil {
			t.Fatal(err)
		}
		patched := isa.Encode(isa.Instr{Op: isa.OpAddi, Rd: 6, Rs1: 6, Imm: 100})
		copy(win[isa.InstrBytes:], patched[:])
		run(t, m, h)
		return takeSnapshot(m, h)
	})
	// 4000 iterations, +1 per iteration before the patch and +100 after:
	// any r6 above 4000 proves the DMA-written instruction executed.
	if got.regs[6] <= 4000 {
		t.Fatalf("r6 = %d, want > 4000 (DMA-patched increment must execute)", got.regs[6])
	}
}

// TestSuperblockBitFlipInBlockText flips one bit of a hot block's text
// mid-run — the fault-injection shape — and requires the corrupted
// instruction to execute (or trap) on the identical cycle batched and
// naive.
func TestSuperblockBitFlipInBlockText(t *testing.T) {
	b := asm.New()
	b.Label("loop")
	b.Addi(5, 5, 1) // the flip target: imm 1 becomes imm 3
	b.Addi(6, 6, 1)
	b.Li(7, 3000)
	b.Blt(6, 7, "loop")
	b.Hlt()
	got := sbDifferential(t, func(t *testing.T, m *Machine) coreSnapshot {
		h := loadProg(t, m, b)
		m.Run(300)
		if len(h.traps) != 0 {
			t.Fatalf("unexpected trap during warmup: %+v", h.traps)
		}
		// Flip bit 1 of the Addi immediate in place (imm 1 -> 3): the
		// immediate's low byte sits at offset 4 of the 8-byte encoding.
		if err := m.Mem().FlipBit(4, 1); err != nil {
			t.Fatal(err)
		}
		run(t, m, h)
		return takeSnapshot(m, h)
	})
	if got.regs[5] <= got.regs[6] {
		t.Fatalf("r5 = %d, r6 = %d: flipped increment never executed", got.regs[5], got.regs[6])
	}
}

// TestSuperblockIntermittentFaultMidBlock arms an intermittent stuck-at
// fault on a byte the hot loop keeps loading. The batch must refuse to run
// while the fault is asserted (armed stuck bits take the naive path) and
// re-engage during OFF phases, with outcomes identical to naive stepping
// across several phase flips.
func TestSuperblockIntermittentFaultMidBlock(t *testing.T) {
	const dataPA = 0x8000
	b := asm.New()
	b.Li(3, dataPA)
	b.Li(2, 6000)
	b.Label("loop")
	b.Ld(8, 4, 3, 0) // reads the faulted byte's word
	b.Add(5, 5, 4)
	b.St(8, 3, 5, 8)
	b.Addi(1, 1, 1)
	b.Blt(1, 2, "loop")
	b.Hlt()
	sbDifferential(t, func(t *testing.T, m *Machine) coreSnapshot {
		if err := m.Mem().WriteU(dataPA, 8, 0x5A5A); err != nil {
			t.Fatal(err)
		}
		f := &IntermittentFault{Addr: dataPA, Bit: 2, Value: 1, OnCycles: 700, OffCycles: 900, Seed: 3}
		m.AddDevice(f)
		h := loadProg(t, m, b)
		run(t, m, h)
		if m.SuperblockEnabled() && m.SuperblockStats().BlockInstrs == 0 {
			t.Fatal("batched path never engaged between fault phases")
		}
		return takeSnapshot(m, h)
	})
}

// TestSuperblockParkReleaseAtBatchEntry is the regression test for the
// batch-entry stall jump racing a park release: a trap late in one cycle's
// rotation flips a parked core's condition, and the batch that starts
// immediately afterwards must not bulk-charge the executing core's long
// stall before re-evaluating the rider's condition — naive stepping wakes
// the rider on the very next cycle, and the batch must too.
func TestSuperblockParkReleaseAtBatchEntry(t *testing.T) {
	const flagPA = 0x9000
	type outcome struct {
		wakeCycles, wakeNow uint64
		final               coreSnapshot
	}
	// The race only bites when the rider's rotation slot in the trap cycle
	// comes before the trapping core's, so its condition is first
	// re-evaluated the cycle after — pad the lead-in to sweep every
	// rotation phase for the trap cycle.
	scenario := func(on bool, pad int) outcome {
		b := asm.New()
		for i := 0; i < pad; i++ {
			b.Addi(6, 6, 1)
		}
		b.Fsin(5, 1) // long FPTrans stall so the block is batch-friendly
		b.Syscall(1) // the release: the handler sets the rider's flag
		b.Fsin(5, 5) // long stall immediately after the trap: jump bait
		b.Fsin(5, 5)
		b.Hlt()
		m := New(noJitter(X86()), 1<<16)
		m.SetSuperblock(on)
		var out outcome
		h := &testHandler{}
		prog, err := b.Assemble(0)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Mem().Write(0, isa.EncodeProgram(prog)); err != nil {
			t.Fatal(err)
		}
		m.SetHandler(handlerFunc(func(c *Core, tr Trap) {
			if tr.Kind == TrapSyscall {
				// Kernel work: publish the release flag the rider spins on,
				// charge the syscall cost, and resume user code.
				if err := m.Mem().WriteU(flagPA, 8, 1); err != nil {
					t.Fatal(err)
				}
				c.AddStall(m.Profile().Costs.KernelEntry)
				return
			}
			h.HandleTrap(c, tr)
		}))
		m.StartCore(0, 0, flatAS(m.Mem().Size()))
		rider := m.Core(1)
		rider.Park(func() bool {
			v, _ := m.Mem().ReadU(flagPA, 8)
			return v != 0
		}, func() {
			out.wakeCycles, out.wakeNow = rider.Cycles, m.Now()
			rider.Halt()
		})
		rider.ParkWakeAt(1 << 40) // far time bound; the real wake is the flag
		run(t, m, h)
		out.final = takeSnapshot(m, h)
		return out
	}
	for pad := 0; pad < 4; pad++ {
		fast, naive := scenario(true, pad), scenario(false, pad)
		if fast.wakeCycles != naive.wakeCycles || fast.wakeNow != naive.wakeNow {
			t.Fatalf("pad %d: rider wake diverged: batched=(%d,%d) naive=(%d,%d)",
				pad, fast.wakeCycles, fast.wakeNow, naive.wakeCycles, naive.wakeNow)
		}
		assertSameSnapshot(t, fast.final, naive.final)
	}
}

// mailboxDevice models the NIC's DMA handshake: it delivers a payload
// into RAM whenever the flag word reads zero, so its NextEvent answer
// depends on memory the guest writes with plain stores. WatchedMem
// declares the dependence; without it the batch would run past the
// guest's flag-clearing store on a stale horizon.
type mailboxDevice struct {
	mem            *Mem
	flagPA, dataPA uint64
	pending        int
	deliveries     []uint64 // cycle of each delivery
}

func (d *mailboxDevice) Tick(m *Machine) {
	if d.pending == 0 {
		return
	}
	if v, _ := d.mem.ReadU(d.flagPA, 8); v == 0 {
		_ = d.mem.WriteU(d.dataPA, 8, uint64(100+d.pending))
		_ = d.mem.WriteU(d.flagPA, 8, 1)
		d.pending--
		d.deliveries = append(d.deliveries, m.Now())
	}
}

func (d *mailboxDevice) WatchedMem() (uint64, uint64) { return d.flagPA, d.flagPA + 8 }

func (d *mailboxDevice) NextEvent(now uint64) uint64 {
	if d.pending == 0 {
		return NoEvent
	}
	if v, _ := d.mem.ReadU(d.flagPA, 8); v != 0 {
		// Mailbox occupied: delivery waits on the guest clearing the
		// flag, which WatchedMem declares.
		return NoEvent
	}
	return now + 1
}

// TestSuperblockMemWatcherStore is the regression test for device
// horizons that depend on guest-written RAM: the hot loop clears the
// mailbox flag with a plain store mid-batch, and the device must deliver
// on exactly the cycle naive stepping would — the store ends the batch so
// the next Tick observes it on schedule.
func TestSuperblockMemWatcherStore(t *testing.T) {
	const flagPA, dataPA = 0x9000, 0x9008
	b := asm.New()
	b.Li(3, flagPA)
	b.Li(2, 5000)
	b.Label("loop")
	b.Addi(1, 1, 1)
	b.Mul(6, 1, 1)
	b.Li(7, 2500)
	b.Bne(1, 7, "skip")
	b.St(8, 3, 0, 0) // clear the flag mid-run: the device delivers next tick
	b.Label("skip")
	b.Blt(1, 2, "loop")
	b.Ld(8, 9, 3, 8) // read the delivered payload
	b.Hlt()
	type outcome struct {
		snap       coreSnapshot
		deliveries []uint64
	}
	scenario := func(on bool) outcome {
		m := New(X86(), 1<<16)
		m.SetSuperblock(on)
		// Mailbox occupied at boot: NextEvent answers NoEvent until the
		// guest's store clears the flag.
		if err := m.Mem().WriteU(flagPA, 8, 1); err != nil {
			t.Fatal(err)
		}
		dev := &mailboxDevice{mem: m.Mem(), flagPA: flagPA, dataPA: dataPA, pending: 1}
		m.AddDevice(dev)
		h := loadProg(t, m, b)
		run(t, m, h)
		return outcome{snap: takeSnapshot(m, h), deliveries: dev.deliveries}
	}
	fast, naive := scenario(true), scenario(false)
	assertSameSnapshot(t, fast.snap, naive.snap)
	if len(naive.deliveries) != 1 {
		t.Fatalf("naive run delivered %d times, want 1", len(naive.deliveries))
	}
	if len(fast.deliveries) != 1 || fast.deliveries[0] != naive.deliveries[0] {
		t.Fatalf("delivery cycles diverged: batched=%v naive=%v",
			fast.deliveries, naive.deliveries)
	}
	if fast.snap.regs[9] == 0 {
		t.Fatal("payload never read back")
	}
}
