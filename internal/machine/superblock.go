package machine

import (
	"math"

	"rcoe/internal/isa"
)

// Superblock execution: a host-side accelerator that executes hot
// straight-line instruction runs (branch-to-branch) in a dedicated batched
// loop instead of paying the full Step/advance/execOne dispatch per guest
// instruction. Like fast-forward and the execution cache it is provably
// invisible to simulated state: every cycle in the batch performs exactly
// the work the naive loop would — same rotation order, same bus ticks,
// same jitter draws, same cost-model calls, same traps on the same cycles
// — and the batch ends (or never starts) whenever anything could diverge:
//
//   - a device event falls due (preemption timer, DMA, intermittent-fault
//     phase edge): the batch horizon stops one cycle short, so the event
//     cycle is always stepped naively;
//   - a core traps (syscall, fault, halt) or touches MMIO: the remainder
//     of that cycle is serviced through the naive advance path and the
//     batch exits, because the kernel may have mutated any core;
//   - a parked core's condition fires (barrier release): same hard exit;
//   - text mutates under a cached block (self-modifying code, injected
//     bit-flip, DMA, re-integration copy): the spanned pages' mutation
//     generations are re-checked before every issue and the core falls
//     back to the naive fetch path for that issue;
//   - a stuck-at fault is armed, a debug feature (breakpoint, branch
//     watch, single-step) is armed, or an interrupt is pending: the batch
//     refuses to start at all.
//
// The differential determinism suite runs the full 8-variant
// {fast-forward × exec-cache × superblock} cube to enforce this.

const (
	// sbMaxLen caps a superblock at 64 instructions (512 bytes), so a
	// block spans at most two physical 4 KiB pages.
	sbMaxLen   = 64
	sbMaxPages = 2
	// sbSlots is the per-core direct-mapped block cache size.
	sbSlots = 256
	// sbBuildHold is the naive-stepping cooldown after a failed block
	// build, so unbuildable code regions don't pay a rebuild attempt on
	// every batch entry. Host-only heuristic: it changes when the
	// accelerator engages, never what the simulation computes.
	sbBuildHold = 256
)

// superblock is a predecoded straight-line run starting at start. Validity
// is keyed exactly like an icacheEntry — address-space identity and
// generation, segment count, and the mutation generations of the spanned
// text pages. The page generations are held as pointers into Mem.pageGen
// (allocated once, never moved), so the per-issue staleness check is one
// or two pointer compares with no indexing.
type superblock struct {
	start  uint64 // virtual PC of ins[0]
	pa0    uint64 // physical address of ins[0]; the run is physically contiguous
	as     *AddrSpace
	asGen  uint64
	nsegs  int
	n      int
	npages int
	gp     [sbMaxPages]*uint64 // live mutation counters of the spanned pages
	gens   [sbMaxPages]uint64  // their values when the block was decoded
	ins    [sbMaxLen]isa.Instr
}

// valid reports whether the block can serve (pc, as) right now.
func (sb *superblock) valid(pc uint64, as *AddrSpace) bool {
	if sb.n == 0 || sb.start != pc || sb.as != as || sb.asGen != as.gen || sb.nsegs != len(as.Segs) {
		return false
	}
	return sb.pagesFresh()
}

// pagesFresh reports whether the spanned pages are unmutated since decode.
// Called before every batched issue; small enough to inline.
func (sb *superblock) pagesFresh() bool {
	if *sb.gp[0] != sb.gens[0] {
		return false
	}
	return sb.npages == 1 || *sb.gp[1] == sb.gens[1]
}

// sbEnds reports whether op terminates a superblock: anything that can
// move PC non-sequentially. Rep-style block ops (MEMCPY/MEMSET) are not
// terminators — they keep PC in place until done, which the batch loop's
// PC bookkeeping handles naturally.
func sbEnds(op isa.Opcode) bool {
	switch op {
	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpBltu, isa.OpBgeu,
		isa.OpJ, isa.OpJal, isa.OpJr, isa.OpJalr, isa.OpSyscall, isa.OpHlt:
		return true
	}
	return false
}

// sbCache is the per-core superblock cache. Like Core.ec it is host-derived
// state outside the snapshot boundary: dropped on restore and rebuilt on
// demand.
type sbCache struct {
	blocks [sbSlots]superblock
	// built counts blocks decoded; instrs counts instructions retired
	// from the batched path (diagnostics; the hit-rate smoke test divides
	// by Core.Instructions).
	built  uint64
	instrs uint64
}

func (c *Core) sbLazy() *sbCache {
	if c.sb == nil {
		c.sb = &sbCache{}
	}
	return c.sb
}

// buildBlock decodes a straight-line run starting at c.PC into sb. The run
// never crosses a segment boundary (so it is physically contiguous) and
// includes its terminator. Returns false — leaving sb invalid — when the
// first instruction cannot be translated, read, or decoded; the naive path
// will then derive whatever trap applies.
func (m *Machine) buildBlock(c *Core, sb *superblock) bool {
	sb.n = 0
	pc := c.PC
	as := c.AS
	pa, seg, ok := as.Translate(pc, isa.InstrBytes, PermX)
	if !ok {
		return false
	}
	s := &as.Segs[seg]
	max := int((s.VBase + s.Size - pc) / isa.InstrBytes)
	if max > sbMaxLen {
		max = sbMaxLen
	}
	mem := m.mem
	n := 0
	var raw [isa.InstrBytes]byte
	for n < max {
		if mem.ReadAt(pa+uint64(n)*isa.InstrBytes, raw[:]) != nil {
			break
		}
		ins, err := isa.Decode(raw[:])
		if err != nil {
			break
		}
		sb.ins[n] = ins
		n++
		if sbEnds(ins.Op) {
			break
		}
	}
	if n == 0 {
		return false
	}
	sb.start, sb.pa0 = pc, pa
	sb.as, sb.asGen, sb.nsegs = as, as.gen, len(as.Segs)
	sb.n = n
	p0 := pa >> pageShift
	p1 := (pa + uint64(n)*isa.InstrBytes - 1) >> pageShift
	sb.gp[0], sb.gens[0] = &mem.pageGen[p0], mem.pageGen[p0]
	sb.npages = 1
	if p1 != p0 {
		sb.gp[1], sb.gens[1] = &mem.pageGen[p1], mem.pageGen[p1]
		sb.npages = 2
	}
	return true
}

// blockFor returns a valid superblock starting at c.PC, building one into
// the core's direct-mapped cache on miss, or nil when the code there
// cannot form a block.
func (m *Machine) blockFor(c *Core) *superblock {
	sc := c.sbLazy()
	sb := &sc.blocks[(c.PC>>3)&(sbSlots-1)]
	if sb.valid(c.PC, c.AS) {
		return sb
	}
	if m.buildBlock(c, sb) {
		sc.built++
		return sb
	}
	return nil
}

// watchMem registers [lo, hi) as device-watched RAM (see MemWatcher):
// pointers into the pages' mutation generations are kept so the batched
// loop can detect a store into the range with bare compares. pageGen is
// allocated once at NewMem and never moved, so the pointers stay valid
// for the machine's lifetime; snapshot restores mutate the slots in
// place.
func (m *Machine) watchMem(lo, hi uint64) {
	if hi <= lo {
		return
	}
	pg := m.mem.pageGen
	for p := lo >> pageShift; p <= (hi-1)>>pageShift && p < uint64(len(pg)); p++ {
		m.watchGp = append(m.watchGp, &pg[p])
	}
	m.watchSnap = make([]uint64, len(m.watchGp))
}

// watchDirty reports whether any device-watched page mutated since the
// batch-entry snapshot. Only the full exec path can write memory (the
// fast set is registers-only), so the batch checks this after memory ops
// alone; with no watchers registered the caller's nil check skips even
// the call.
func (m *Machine) watchDirty() bool {
	for i, gp := range m.watchGp {
		if *gp != m.watchSnap[i] {
			return true
		}
	}
	return false
}

// sbKind is a core's role for the duration of one batch.
type sbKind uint8

const (
	sbSkip   sbKind = iota // halted / offline at entry
	sbParked               // parked at entry: serviced via advance each cycle
	sbExec                 // running: serviced from its superblock
)

// sbRunState tracks one core's progress through the batched loop. fline
// and fgen memoize the last fetch-probed cache line: while the core's
// cache generation is unchanged, a line probed present is still present,
// so sequential fetches within the line skip the probe entirely (a fetch
// hit changes no cache or bus state, so skipping it is free).
type sbRunState struct {
	kind  sbKind
	sb    *superblock
	pos   int
	fline uint64
	fgen  uint64
}

// runBlocks executes up to limit cycles through the superblock engine and
// returns the number of cycles consumed (possibly 0 when the batch cannot
// safely start). cond, when non-nil, is evaluated before every batched
// cycle except the first — the caller evaluated it immediately before the
// call — exactly matching the naive RunUntil loop's evaluation points.
func (m *Machine) runBlocks(cond func() bool, limit uint64) uint64 {
	if limit == 0 || m.now < m.sbHold || len(m.mem.stuck) != 0 || DebugPCWatch != nil {
		return 0
	}
	// Device horizon: the batch must end one cycle before the earliest
	// device event so that cycle is stepped naively. A device without an
	// event schedule pins the machine to naive stepping, as with
	// fast-forward.
	horizon := limit
	for _, dev := range m.devices {
		es, ok := dev.(EventSource)
		if !ok {
			return 0
		}
		ne := es.NextEvent(m.now)
		if ne == NoEvent {
			continue
		}
		if ne <= m.now+1 {
			return 0
		}
		if d := ne - m.now - 1; d < horizon {
			horizon = d
		}
	}
	// Core gates: every running core needs a clean debug/interrupt state
	// and a valid superblock at its PC; parked cores ride along and are
	// serviced through the naive advance path each cycle.
	if m.sbRun == nil || len(m.sbRun) != len(m.cores) {
		m.sbRun = make([]sbRunState, len(m.cores))
	}
	nrun, nparked := 0, 0
	for i, c := range m.cores {
		st := &m.sbRun[i]
		st.sb = nil
		switch c.State {
		case CoreHalted, CoreOffline:
			st.kind = sbSkip
		case CoreParked:
			st.kind = sbParked
			nparked++
		default:
			if c.pendingIRQ != 0 || c.pendingIPI ||
				c.BP.Enabled || c.BranchWatch.Enabled || c.SingleStep {
				return 0
			}
			sb := m.blockFor(c)
			if sb == nil {
				m.sbHold = m.now + sbBuildHold
				return 0
			}
			st.kind, st.sb, st.pos = sbExec, sb, 0
			st.fline = ^uint64(0) // no line memoized yet
			nrun++
		}
	}
	if nrun == 0 {
		return 0 // fully idle: fast-forward's territory
	}

	for i, gp := range m.watchGp {
		m.watchSnap[i] = *gp
	}
	shift := m.prof.JitterShift
	cost := &m.prof.Costs
	hitExtra := cost.MemHit - 1
	ncores := len(m.cores)
	bus := m.bus
	cores := m.cores
	run := m.sbRun
	if nrun == 2 {
		// The paper's dominant topology — a DMR pair, both replicas
		// executing — gets a loop with the rotation machinery compiled
		// out. Halted cores do nothing per cycle, so only a parked
		// rider (needing its per-cycle advance) forces the generic loop.
		i0, i1, parked := -1, -1, false
		for i := range run {
			switch run[i].kind {
			case sbParked:
				parked = true
			case sbExec:
				if i0 < 0 {
					i0 = i
				} else {
					i1 = i
				}
			}
		}
		if !parked {
			return m.runBlocksPair(cond, horizon, i0, i1)
		}
	}
	m.sbExit = false
	consumed := uint64(0)
	// tryJump is armed by a cycle in which no executing core issued (all
	// were mid-stall) and no parked rider woke: only then can the next
	// iteration bulk-charge the window, and gating the attempt keeps the
	// common issuing cycle free of the scan. With no parked riders it
	// starts true so a batch entered mid-stall (e.g. right after a
	// syscall's kernel-entry charge) jumps immediately; with riders it
	// starts false, because a park condition may have become true during
	// the very Step that preceded the batch (a trap later in that cycle's
	// rotation — say the kernel opening a rendezvous release — changes
	// condition inputs after the rider's advance already ran), and only a
	// batched cycle that advances every rider proves the conditions false.
	// skipIdle gets the same proof from its fully-idle-Step precondition;
	// the batch must earn it here. Cleared after every jump so the
	// following normal cycle re-evaluates park conditions, preserving the
	// probe bound for undeclared parks.
	tryJump := nparked == 0
	exit := false
	for consumed < horizon && !exit {
		if consumed > 0 && cond != nil && cond() {
			break
		}
		if tryJump {
			tryJump = false
			if k := m.sbStallJump(horizon - consumed); k > 0 {
				consumed += k
				continue
			}
		}
		m.now++
		if m.rr++; m.rr >= ncores {
			m.rr = 0
		}
		bus.tick()
		// naiveTail: a trap or park wake happened earlier in this cycle's
		// rotation; the kernel (or done hook) may have mutated any core, so
		// the rest of the rotation must go through the naive advance path —
		// exactly what Step would do.
		naiveTail := false
		anyIssue := false
		for i, idx := 0, m.rr; i < ncores; i++ {
			c := cores[idx]
			st := &run[idx]
			if idx++; idx == ncores {
				idx = 0
			}
			if naiveTail {
				if c.State != CoreHalted && c.State != CoreOffline {
					m.advance(c)
				}
				m.sbExit = false
				continue
			}
			switch st.kind {
			case sbSkip:
				continue
			case sbParked:
				m.advance(c)
				if c.State != CoreParked {
					naiveTail, exit = true, true
				}
				continue
			}
			c.Cycles++
			if c.stall > 0 {
				c.stall--
				continue
			}
			anyIssue = true
			sb := st.sb
			if !sb.pagesFresh() {
				// Text (or a page it shares) mutated under the block: issue
				// naively this cycle — the naive fetch re-derives bytes and
				// any trap from scratch — and end the batch.
				m.stepIdle = false
				m.issue(c)
				if m.sbExit {
					m.sbExit = false
					naiveTail = true
				}
				exit = true
				continue
			}
			if c.nextJitter(shift) {
				continue
			}
			// Instruction fetch, with the cache-hit probe of memAccess
			// open-coded: a fetch hit changes no cache or bus state, so the
			// probe alone replaces the call on the ~100% case, and the
			// (fline, fgen) memo replaces the probe while the line provably
			// stays resident. Any miss (or a multi-line straddle, impossible
			// for 8-aligned fetches) runs the full path with identical state
			// evolution.
			fpa := sb.pa0 + uint64(st.pos)*isa.InstrBytes
			ch := c.cache
			line := fpa >> ch.lineShift
			if line == st.fline && ch.gen == st.fgen {
				if hitExtra > 0 {
					c.stall += hitExtra
				}
			} else if lidx := ch.index(line); ch.valid[lidx] && ch.tags[lidx] == line &&
				(fpa+isa.InstrBytes-1)>>ch.lineShift == line {
				st.fline, st.fgen = line, ch.gen
				if hitExtra > 0 {
					c.stall += hitExtra
				}
			} else if !c.memAccess(fpa, isa.InstrBytes, false) {
				continue // bus stall on fetch; retry next cycle
			}
			prev := c.PC
			ins := &sb.ins[st.pos]
			if execFast(c, ins, cost) {
				c.Instructions++
				c.sb.instrs++
			} else {
				// Op outside the trap-free fast set (memory, divide,
				// atomic, block op, syscall): full exec with trap/MMIO
				// exit handling.
				if m.exec(c, ins) {
					c.Instructions++
					c.sb.instrs++
				}
				if m.sbExit {
					m.sbExit = false
					naiveTail, exit = true, true
					continue
				}
				// A store into device-watched RAM (DMA mailbox flag)
				// invalidates the entry-time device horizon: finish the
				// cycle (the naive Step's device phase had already run by
				// the time cores execute) and end the batch, so the owning
				// device's next Tick observes the store on schedule.
				if m.watchGp != nil && m.watchDirty() {
					exit = true
				}
			}
			switch c.PC {
			case prev + isa.InstrBytes:
				if st.pos++; st.pos == sb.n {
					// Fell through the end (non-taken terminator or a block
					// truncated at a segment edge): chain to the next block.
					if nb := m.blockFor(c); nb != nil {
						st.sb, st.pos = nb, 0
					} else {
						exit = true
					}
				}
			case prev:
				// Bus stall mid-instruction or a rep-style block op still
				// copying: same instruction again next cycle.
			default:
				// Taken branch: chain to the target's block.
				if nb := m.blockFor(c); nb != nil {
					st.sb, st.pos = nb, 0
				} else {
					exit = true
				}
			}
		}
		if !anyIssue && !naiveTail {
			tryJump = true
		}
		consumed++
	}
	// Host code observing the machine after Run sees the same quiescence
	// rules as naive stepping: anything could have happened during the
	// batch, so the next fast-forward needs a fresh idle Step first.
	m.stepIdle = false
	return consumed
}

// runBlocksPair is runBlocks' batched loop specialized for exactly two
// executing cores (indices i0 < i1) with every other core halted — the
// paper's DMR pair and the benchmark-critical shape. Pinning both cores
// and their run states in locals removes the per-cycle rotation machinery
// (array indexing, wrap checks, role dispatch) that the generic loop
// pays; each serviced cycle is otherwise statement-for-statement the
// generic body, and the determinism cube compares this path against naive
// stepping like any other. The caller guarantees both sbRun entries are
// sbExec; any role change mid-batch (halt, park) only happens through a
// trap, which exits the batch.
func (m *Machine) runBlocksPair(cond func() bool, horizon uint64, i0, i1 int) uint64 {
	shift := m.prof.JitterShift
	cost := &m.prof.Costs
	hitExtra := cost.MemHit - 1
	ncores := len(m.cores)
	bus := m.bus
	c0, c1 := m.cores[i0], m.cores[i1]
	st0, st1 := &m.sbRun[i0], &m.sbRun[i1]
	m.sbExit = false
	consumed := uint64(0)
	tryJump := true
	exit := false
	for consumed < horizon && !exit {
		if consumed > 0 && cond != nil && cond() {
			break
		}
		if tryJump {
			tryJump = false
			if k := m.sbStallJump(horizon - consumed); k > 0 {
				consumed += k
				continue
			}
		}
		m.now++
		if m.rr++; m.rr >= ncores {
			m.rr = 0
		}
		bus.tick()
		a, b, sta, stb := c0, c1, st0, st1
		if m.rr > i0 && m.rr <= i1 {
			// The round-robin start point sits strictly between the two
			// cores, so the higher-indexed one is serviced first this
			// cycle — the same order the generic rotation produces.
			a, b, sta, stb = c1, c0, st1, st0
		}
		naiveTail := false
		// First core of the rotation.
		if a.Cycles++; a.stall > 0 {
			a.stall--
		} else if sb := sta.sb; !sb.pagesFresh() {
			m.stepIdle = false
			m.issue(a)
			if m.sbExit {
				m.sbExit = false
				naiveTail = true
			}
			exit = true
		} else if !a.nextJitter(shift) {
			fpa := sb.pa0 + uint64(sta.pos)*isa.InstrBytes
			ch := a.cache
			line := fpa >> ch.lineShift
			fetched := true
			if line == sta.fline && ch.gen == sta.fgen {
				if hitExtra > 0 {
					a.stall += hitExtra
				}
			} else if lidx := ch.index(line); ch.valid[lidx] && ch.tags[lidx] == line &&
				(fpa+isa.InstrBytes-1)>>ch.lineShift == line {
				sta.fline, sta.fgen = line, ch.gen
				if hitExtra > 0 {
					a.stall += hitExtra
				}
			} else if !a.memAccess(fpa, isa.InstrBytes, false) {
				fetched = false
			}
			if fetched {
				prev := a.PC
				ins := &sb.ins[sta.pos]
				trapped := false
				if execFast(a, ins, cost) {
					a.Instructions++
					a.sb.instrs++
				} else {
					if m.exec(a, ins) {
						a.Instructions++
						a.sb.instrs++
					}
					if m.sbExit {
						m.sbExit = false
						naiveTail, exit, trapped = true, true, true
					} else if m.watchGp != nil && m.watchDirty() {
						exit = true // store into device-watched RAM
					}
				}
				if !trapped {
					switch a.PC {
					case prev + isa.InstrBytes:
						if sta.pos++; sta.pos == sb.n {
							if nb := m.blockFor(a); nb != nil {
								sta.sb, sta.pos = nb, 0
							} else {
								exit = true
							}
						}
					case prev:
						// Bus stall or rep-style block op: same instruction
						// again next cycle.
					default:
						if nb := m.blockFor(a); nb != nil {
							sta.sb, sta.pos = nb, 0
						} else {
							exit = true
						}
					}
				}
			}
		}
		// Second core: naive advance when the first one trapped (the
		// kernel may have mutated it), the batch path otherwise.
		if naiveTail {
			if b.State != CoreHalted && b.State != CoreOffline {
				m.advance(b)
			}
			m.sbExit = false
		} else if b.Cycles++; b.stall > 0 {
			b.stall--
		} else if sb := stb.sb; !sb.pagesFresh() {
			m.stepIdle = false
			m.issue(b)
			if m.sbExit {
				m.sbExit = false
			}
			exit = true
		} else if !b.nextJitter(shift) {
			fpa := sb.pa0 + uint64(stb.pos)*isa.InstrBytes
			ch := b.cache
			line := fpa >> ch.lineShift
			fetched := true
			if line == stb.fline && ch.gen == stb.fgen {
				if hitExtra > 0 {
					b.stall += hitExtra
				}
			} else if lidx := ch.index(line); ch.valid[lidx] && ch.tags[lidx] == line &&
				(fpa+isa.InstrBytes-1)>>ch.lineShift == line {
				stb.fline, stb.fgen = line, ch.gen
				if hitExtra > 0 {
					b.stall += hitExtra
				}
			} else if !b.memAccess(fpa, isa.InstrBytes, false) {
				fetched = false
			}
			if fetched {
				prev := b.PC
				ins := &sb.ins[stb.pos]
				trapped := false
				if execFast(b, ins, cost) {
					b.Instructions++
					b.sb.instrs++
				} else {
					if m.exec(b, ins) {
						b.Instructions++
						b.sb.instrs++
					}
					if m.sbExit {
						m.sbExit = false
						exit, trapped = true, true
					} else if m.watchGp != nil && m.watchDirty() {
						exit = true // store into device-watched RAM
					}
				}
				if !trapped {
					switch b.PC {
					case prev + isa.InstrBytes:
						if stb.pos++; stb.pos == sb.n {
							if nb := m.blockFor(b); nb != nil {
								stb.sb, stb.pos = nb, 0
							} else {
								exit = true
							}
						}
					case prev:
					default:
						if nb := m.blockFor(b); nb != nil {
							stb.sb, stb.pos = nb, 0
						} else {
							exit = true
						}
					}
				}
			}
		}
		// Arm the stall jump whenever both cores end the cycle mid-stall:
		// the next iteration bulk-charges the shared window. Pure host
		// heuristic — the jump itself re-verifies that no core can issue.
		tryJump = a.stall > 0 && b.stall > 0
		consumed++
	}
	m.stepIdle = false
	return consumed
}

// sbStallJump bulk-charges a window in which every executing core is
// mid-stall and every parked core is bounded, exactly as skipIdle does for
// fully idle windows: no core reaches an issue opportunity, so the only
// evolving state is time, per-core cycle counters, stall balances, and the
// bus token bucket. Returns 0 when any executing core could issue now.
func (m *Machine) sbStallJump(limit uint64) uint64 {
	k := limit
	for i, c := range m.cores {
		var d uint64
		switch m.sbRun[i].kind {
		case sbSkip:
			continue
		case sbParked:
			switch c.parkWake {
			case 0:
				d = ParkProbeInterval
			case NoEvent:
				continue
			default:
				if c.parkWake <= c.Cycles+1 {
					return 0
				}
				d = c.parkWake - c.Cycles - 1
			}
		default: // sbExec
			if c.stall <= 0 {
				return 0
			}
			d = uint64(c.stall)
		}
		if d < k {
			k = d
		}
	}
	if k == 0 {
		return 0
	}
	m.now += k
	m.rr = int(m.now % uint64(len(m.cores)))
	m.bus.skip(k)
	for i, c := range m.cores {
		if m.sbRun[i].kind == sbSkip {
			continue
		}
		c.Cycles += k
		if uint64(c.stall) <= k {
			c.stall = 0
		} else {
			c.stall -= int(k)
		}
	}
	m.sbJumped += k
	return k
}

// execFast executes the ops that can neither trap, touch memory, nor
// stall on the bus: pure register arithmetic, immediates, FP, and
// branches. Each arm is the corresponding exec arm verbatim minus the
// dispatch framing, so the architectural effect is identical; the
// 8-variant determinism cube enforces that equivalence. Returns false for
// any other op, which the batch loop routes through the full exec.
func execFast(c *Core, ins *isa.Instr, cost *Costs) bool {
	nextPC := c.PC + isa.InstrBytes
	switch ins.Op {
	case isa.OpAdd:
		c.setReg(ins.Rd, c.reg(ins.Rs1)+c.reg(ins.Rs2))
	case isa.OpSub:
		c.setReg(ins.Rd, c.reg(ins.Rs1)-c.reg(ins.Rs2))
	case isa.OpMul:
		c.setReg(ins.Rd, c.reg(ins.Rs1)*c.reg(ins.Rs2))
		c.AddStall(cost.Mul - 1)
	case isa.OpAnd:
		c.setReg(ins.Rd, c.reg(ins.Rs1)&c.reg(ins.Rs2))
	case isa.OpOr:
		c.setReg(ins.Rd, c.reg(ins.Rs1)|c.reg(ins.Rs2))
	case isa.OpXor:
		c.setReg(ins.Rd, c.reg(ins.Rs1)^c.reg(ins.Rs2))
	case isa.OpShl:
		c.setReg(ins.Rd, c.reg(ins.Rs1)<<(c.reg(ins.Rs2)&63))
	case isa.OpShr:
		c.setReg(ins.Rd, c.reg(ins.Rs1)>>(c.reg(ins.Rs2)&63))
	case isa.OpSra:
		c.setReg(ins.Rd, uint64(int64(c.reg(ins.Rs1))>>(c.reg(ins.Rs2)&63)))
	case isa.OpSlt:
		c.setReg(ins.Rd, b2u(int64(c.reg(ins.Rs1)) < int64(c.reg(ins.Rs2))))
	case isa.OpSltu:
		c.setReg(ins.Rd, b2u(c.reg(ins.Rs1) < c.reg(ins.Rs2)))

	case isa.OpAddi:
		c.setReg(ins.Rd, c.reg(ins.Rs1)+uint64(int64(ins.Imm)))
	case isa.OpAndi:
		c.setReg(ins.Rd, c.reg(ins.Rs1)&uint64(int64(ins.Imm)))
	case isa.OpOri:
		c.setReg(ins.Rd, c.reg(ins.Rs1)|uint64(int64(ins.Imm)))
	case isa.OpXori:
		c.setReg(ins.Rd, c.reg(ins.Rs1)^uint64(int64(ins.Imm)))
	case isa.OpShli:
		c.setReg(ins.Rd, c.reg(ins.Rs1)<<(uint32(ins.Imm)&63))
	case isa.OpShri:
		c.setReg(ins.Rd, c.reg(ins.Rs1)>>(uint32(ins.Imm)&63))
	case isa.OpSrai:
		c.setReg(ins.Rd, uint64(int64(c.reg(ins.Rs1))>>(uint32(ins.Imm)&63)))
	case isa.OpSlti:
		c.setReg(ins.Rd, b2u(int64(c.reg(ins.Rs1)) < int64(ins.Imm)))
	case isa.OpLi:
		c.setReg(ins.Rd, uint64(int64(ins.Imm)))
	case isa.OpLih:
		c.setReg(ins.Rd, c.reg(ins.Rd)<<32|uint64(uint32(ins.Imm)))

	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpBltu, isa.OpBgeu:
		c.UserBranches++
		if condTaken(ins.Op, c.reg(ins.Rs1), c.reg(ins.Rs2)) {
			nextPC = uint64(uint32(ins.Imm))
		}
	case isa.OpJ:
		c.UserBranches++
		nextPC = uint64(uint32(ins.Imm))
	case isa.OpJal:
		c.UserBranches++
		c.setReg(ins.Rd, c.PC+isa.InstrBytes)
		nextPC = uint64(uint32(ins.Imm))
	case isa.OpJr:
		c.UserBranches++
		nextPC = c.reg(ins.Rs1)
	case isa.OpJalr:
		c.UserBranches++
		c.setReg(ins.Rd, c.PC+isa.InstrBytes)
		nextPC = c.reg(ins.Rs1) + uint64(int64(ins.Imm))

	case isa.OpFadd:
		c.setReg(ins.Rd, bits(f64(c.reg(ins.Rs1))+f64(c.reg(ins.Rs2))))
		c.AddStall(cost.FPSimple - 1)
	case isa.OpFsub:
		c.setReg(ins.Rd, bits(f64(c.reg(ins.Rs1))-f64(c.reg(ins.Rs2))))
		c.AddStall(cost.FPSimple - 1)
	case isa.OpFmul:
		c.setReg(ins.Rd, bits(f64(c.reg(ins.Rs1))*f64(c.reg(ins.Rs2))))
		c.AddStall(cost.FPSimple - 1)
	case isa.OpFdiv:
		c.setReg(ins.Rd, bits(f64(c.reg(ins.Rs1))/f64(c.reg(ins.Rs2))))
		c.AddStall(cost.FPDiv - 1)
	case isa.OpFsqrt:
		c.setReg(ins.Rd, bits(math.Sqrt(f64(c.reg(ins.Rs1)))))
		c.AddStall(cost.FPDiv - 1)
	case isa.OpFsin:
		c.setReg(ins.Rd, bits(math.Sin(f64(c.reg(ins.Rs1)))))
		c.AddStall(cost.FPTrans - 1)
	case isa.OpFcos:
		c.setReg(ins.Rd, bits(math.Cos(f64(c.reg(ins.Rs1)))))
		c.AddStall(cost.FPTrans - 1)
	case isa.OpFexp:
		c.setReg(ins.Rd, bits(math.Exp(f64(c.reg(ins.Rs1)))))
		c.AddStall(cost.FPTrans - 1)
	case isa.OpFlog:
		c.setReg(ins.Rd, bits(math.Log(f64(c.reg(ins.Rs1)))))
		c.AddStall(cost.FPTrans - 1)
	case isa.OpFatan:
		c.setReg(ins.Rd, bits(math.Atan(f64(c.reg(ins.Rs1)))))
		c.AddStall(cost.FPTrans - 1)
	case isa.OpFcvtIF:
		c.setReg(ins.Rd, bits(float64(int64(c.reg(ins.Rs1)))))
		c.AddStall(cost.FPSimple - 1)
	case isa.OpFcvtFI:
		c.setReg(ins.Rd, uint64(int64(f64(c.reg(ins.Rs1)))))
		c.AddStall(cost.FPSimple - 1)
	case isa.OpFlt:
		c.setReg(ins.Rd, b2u(f64(c.reg(ins.Rs1)) < f64(c.reg(ins.Rs2))))
	case isa.OpFle:
		c.setReg(ins.Rd, b2u(f64(c.reg(ins.Rs1)) <= f64(c.reg(ins.Rs2))))
	case isa.OpFeq:
		c.setReg(ins.Rd, b2u(f64(c.reg(ins.Rs1)) == f64(c.reg(ins.Rs2))))

	case isa.OpNop:
	default:
		return false
	}
	c.PC = nextPC
	return true
}

// SuperblockStats aggregates the per-core superblock caches.
type SuperblockStats struct {
	Blocks      uint64 // superblocks decoded
	BlockInstrs uint64 // instructions retired from the batched path
	Instrs      uint64 // total instructions retired (all paths)
	Jumped      uint64 // stall-window cycles bulk-charged inside batches
}

// HitRate returns the fraction of all retired instructions that executed
// from the batched superblock path.
func (s SuperblockStats) HitRate() float64 {
	if s.Instrs == 0 {
		return 0
	}
	return float64(s.BlockInstrs) / float64(s.Instrs)
}

// BlockStartPAs returns the physical start addresses of the superblocks
// currently cached on core id, in slot order. Diagnostics only: the
// decorrelation tests use it to show that structurally different replicas
// build different block sets while staying cycle-identical.
func (m *Machine) BlockStartPAs(id int) []uint64 {
	c := m.cores[id]
	if c.sb == nil {
		return nil
	}
	var out []uint64
	for i := range c.sb.blocks {
		if sb := &c.sb.blocks[i]; sb.n != 0 {
			out = append(out, sb.pa0)
		}
	}
	return out
}

// SuperblockStats returns aggregate superblock diagnostics for the machine.
func (m *Machine) SuperblockStats() SuperblockStats {
	s := SuperblockStats{Jumped: m.sbJumped}
	for _, c := range m.cores {
		s.Instrs += c.Instructions
		if c.sb != nil {
			s.Blocks += c.sb.built
			s.BlockInstrs += c.sb.instrs
		}
	}
	return s
}
