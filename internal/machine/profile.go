// Package machine implements the deterministic multicore machine on which
// the replicated software stacks run.
//
// The machine stands in for the paper's COTS hardware (an Intel Core
// i7-6700 and an i.MX6 quad Cortex-A9). It provides the architectural
// features RCoE depends on — per-core cycle counters, a user-mode branch
// counter (PMU), instruction breakpoints with or without a resume flag,
// inter-processor interrupts, MMIO devices with DMA — and a simple
// cache/bus cost model that reproduces the memory-bandwidth contention the
// paper measures in Table V.
//
// Cores are stepped round-robin, one instruction-issue opportunity per
// global cycle. Per-core deterministic jitter makes replicas drift apart
// slightly, as real COTS cores do: this is the nondeterminism LC-RCoE must
// tolerate and that exposes data races (paper §V-A1).
//
// When every core is parked or stalled and every device has declared its
// next event cycle (the EventSource interface), the scheduler fast-forwards
// across the idle window in one jump instead of stepping it cycle by
// cycle. The skip is an optimisation of host time only: counters, device
// ticks and wake cycles land exactly where the naive loop would put them,
// a contract enforced by the differential determinism tests at the repo
// root. SetDefaultFastForward and Machine.SetFastForward toggle it.
package machine

// AtomicModel selects the atomic-instruction family a profile supports.
type AtomicModel int

// Atomic models. LLSC machines pair load-linked with store-conditional in
// retry loops (Armv7 ldrex/strex); CAS machines have single-instruction
// compare-and-swap (x86 lock cmpxchg).
const (
	AtomicLLSC AtomicModel = iota + 1
	AtomicCAS
)

// Costs is the cycle cost model for one machine profile.
type Costs struct {
	// Simple ALU ops and branches.
	Int int
	// Multiply / divide.
	Mul int
	Div int
	// Floating-point add/mul, divide/sqrt, transcendental.
	FPSimple int
	FPDiv    int
	FPTrans  int
	// Cache hit (load/store) and per-line miss penalty on top of bus
	// arbitration.
	MemHit  int
	MemMiss int
	// Kernel entry/exit (trap cost), interrupt delivery, IPI latency.
	KernelEntry int
	IRQDeliver  int
	IPILatency  int
	// Debug exception handling; machines without a resume flag pay a
	// second (mismatch) exception per breakpoint.
	DebugException int
	// VM exit/entry round trip and guest page-table walk.
	VMExit    int
	GuestWalk int
}

// Profile describes one machine configuration; the two stock profiles
// mirror the evaluation platforms in the paper and differ in exactly the
// features the paper calls out.
type Profile struct {
	// Name identifies the profile ("x86" or "arm").
	Name string
	// Cores is the number of CPU cores.
	Cores int
	// PrecisePMU reports whether the PMU counts user-mode branches
	// exactly (Intel's BR_INST_RETIRED minus far branches). Without it,
	// CC-RCoE must use compiler-inserted counting on a reserved register.
	PrecisePMU bool
	// HasResumeFlag reports whether a breakpoint can be stepped over
	// without a second debug exception (the x86 RF flag).
	HasResumeFlag bool
	// HasSparePTEBit reports whether mappings have a spare bit for
	// marking DMA buffers, required for CC error masking (§IV-A).
	HasSparePTEBit bool
	// Atomics selects the atomic instruction family.
	Atomics AtomicModel
	// CacheBytes is the per-core cache capacity; CacheLine its line size.
	CacheBytes int
	CacheLine  int
	// BusBytesPerCycle is the memory-bus bandwidth shared by all cores.
	// CoreBytesPerCycle caps a single core's demand; when it is lower
	// than the bus bandwidth, one core cannot saturate the bus (the Arm
	// behaviour in Table V).
	BusBytesPerCycle  int
	CoreBytesPerCycle int
	// MemCopyChunk is the bytes a block op moves per issue slot.
	MemCopyChunk int
	// JitterShift sets deterministic per-core skew: a core pays one
	// extra stall cycle with probability 2^-JitterShift per issue.
	JitterShift uint
	// Costs is the cycle cost model.
	Costs Costs
}

// X86 returns the machine profile standing in for the paper's Core
// i7-6700 platform.
func X86() Profile {
	return Profile{
		Name:           "x86",
		Cores:          4,
		PrecisePMU:     true,
		HasResumeFlag:  true,
		HasSparePTEBit: true,
		Atomics:        AtomicCAS,
		CacheBytes:     1 << 21, // 2 MiB per core (8 MiB LLC / 4)
		CacheLine:      64,
		// One core's streaming demand equals the bus bandwidth, so a
		// single replica saturates memory and DMR/TMR divide it.
		BusBytesPerCycle:  16,
		CoreBytesPerCycle: 16,
		MemCopyChunk:      64,
		JitterShift:       5,
		Costs: Costs{
			Int: 1, Mul: 3, Div: 12,
			FPSimple: 3, FPDiv: 14, FPTrans: 40,
			MemHit: 1, MemMiss: 30,
			KernelEntry: 150, IRQDeliver: 300, IPILatency: 400,
			DebugException: 300,
			VMExit:         1500, GuestWalk: 600,
		},
	}
}

// Arm returns the machine profile standing in for the paper's SABRE Lite
// (i.MX6, quad Cortex-A9) platform.
func Arm() Profile {
	return Profile{
		Name:           "arm",
		Cores:          4,
		PrecisePMU:     false, // no accurate branch events on Armv7-A
		HasResumeFlag:  false, // pays a mismatch exception per breakpoint
		HasSparePTEBit: false, // no spare PTE bit on Cortex-A9 (§IV-A)
		Atomics:        AtomicLLSC,
		CacheBytes:     1 << 18, // 256 KiB per core (1 MiB L2 / 4)
		CacheLine:      32,
		// A single core can demand less than half the bus, so replicas
		// contend only mildly (the Table V Arm behaviour).
		BusBytesPerCycle:  16,
		CoreBytesPerCycle: 6,
		MemCopyChunk:      32,
		JitterShift:       5,
		Costs: Costs{
			Int: 1, Mul: 4, Div: 20,
			FPSimple: 4, FPDiv: 20, FPTrans: 60,
			MemHit: 1, MemMiss: 40,
			KernelEntry: 120, IRQDeliver: 250, IPILatency: 350,
			DebugException: 350,
			VMExit:         0, GuestWalk: 0, // no hypervisor mode (§V-A3)
		},
	}
}
