package machine

import (
	"testing"

	"rcoe/internal/asm"
)

// TestStuckBitSurvivesMutation pins the hard-fault invariant: a stuck-at
// bit is re-asserted after every mutation path, so no overwrite — plain
// writes, fills, moves, flips, or DMA through a Slice window — can clear
// it, and every read path observes the asserted value.
func TestStuckBitSurvivesMutation(t *testing.T) {
	m := NewMem(1 << 16)
	const addr = 0x1008
	if err := m.SetStuck(addr, 3, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.SetStuck(addr, 0, 0); err != nil {
		t.Fatal(err)
	}
	want := func(written byte) byte { return (written | 0x08) &^ 0x01 }

	check := func(step string, written byte) {
		t.Helper()
		v, err := m.ReadU(addr, 1)
		if err != nil {
			t.Fatal(err)
		}
		if byte(v) != want(written) {
			t.Fatalf("%s: byte = %#02x, want %#02x", step, v, want(written))
		}
	}

	if err := m.Write(addr, []byte{0xF7}); err != nil {
		t.Fatal(err)
	}
	check("Write", 0xF7)
	if err := m.WriteU(addr, 8, 0); err != nil {
		t.Fatal(err)
	}
	check("WriteU", 0x00)
	if err := m.Fill(addr-8, 32, 0xFF); err != nil {
		t.Fatal(err)
	}
	check("Fill", 0xFF)
	if err := m.Write(addr+0x100, []byte{0x55}); err != nil {
		t.Fatal(err)
	}
	if err := m.Move(addr, addr+0x100, 1); err != nil {
		t.Fatal(err)
	}
	check("Move", 0x55)
	if err := m.FlipBit(addr, 3); err != nil {
		t.Fatal(err)
	}
	check("FlipBit", want(0x55)^0x08)
	// DMA bypass: write zero through a Slice window, then read back — the
	// read path must re-assert the stuck bits the window write cleared.
	win, err := m.Slice(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	win[0] = 0
	check("Slice", 0x00)

	// Repair: after ClearStuck the byte behaves normally again.
	m.ClearStuck(addr, 3)
	m.ClearStuck(addr, 0)
	if m.StuckBits() != 0 {
		t.Fatalf("StuckBits = %d after clearing both", m.StuckBits())
	}
	if err := m.Write(addr, []byte{0x01}); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.ReadU(addr, 1); v != 0x01 {
		t.Fatalf("after ClearStuck: byte = %#02x, want 0x01", v)
	}
}

// TestStuckBitExecCache is the invisibility test for hard faults: a stuck
// bit planted mid-run in the opcode byte of a predecoded instruction must
// trap identically with the execution cache on and off. SetStuck bumps
// the page generation, so the predecoded entry is dropped and the
// re-decode reads the asserted (corrupt) byte.
func TestStuckBitExecCache(t *testing.T) {
	b := asm.New()
	b.Label("loop")
	b.Addi(5, 5, 1)
	b.J("loop")

	got := differential(t, func(t *testing.T, m *Machine) coreSnapshot {
		h := loadProg(t, m, b)
		m.Run(1000) // warm the predecode cache on both loop instructions
		if len(h.traps) != 0 {
			t.Fatalf("unexpected trap during warmup: %+v", h.traps)
		}
		// Stick the high bit of the Addi opcode byte at 1: the opcode
		// leaves the valid range and decode must fail — persistently.
		if err := m.Mem().SetStuck(0, 7, 1); err != nil {
			t.Fatal(err)
		}
		run(t, m, h)
		return takeSnapshot(m, h)
	})
	if got.traps[0].Kind != TrapIllegal {
		t.Fatalf("trap = %v, want illegal instruction", got.traps[0].Kind)
	}
	if got.traps[0].PC != 0 {
		t.Fatalf("trap pc = %#x, want 0 (the stuck instruction)", got.traps[0].PC)
	}
}

// TestStuckBitGuestStoreCannotClear runs a guest that stores a clean value
// over a stuck byte and loads it back: the load must observe the stuck
// bit, because the store's re-assertion happens before any consumer reads.
func TestStuckBitGuestStoreCannotClear(t *testing.T) {
	const dataAddr = 0x8000
	b := asm.New()
	b.Li(1, dataAddr)
	b.Li(2, 0) // the "clean" value the guest writes
	b.St(8, 1, 2, 0)
	b.Ld(8, 3, 1, 0) // must read back the stuck bits, not zero
	b.Hlt()

	got := differential(t, func(t *testing.T, m *Machine) coreSnapshot {
		if err := m.Mem().SetStuck(dataAddr, 5, 1); err != nil {
			t.Fatal(err)
		}
		h := loadProg(t, m, b)
		run(t, m, h)
		return takeSnapshot(m, h)
	})
	if got.regs[3] != 1<<5 {
		t.Fatalf("loaded %#x, want %#x (stuck bit asserted through the store)", got.regs[3], uint64(1)<<5)
	}
}

// TestIntermittentFaultDeterministic runs the duty-cycled fault twice on
// identical machines and requires the identical toggle trace — the
// campaigns depend on seeded reproducibility — and that it actually
// toggles both ways within its default phase lengths.
func TestIntermittentFaultDeterministic(t *testing.T) {
	trace := func() []bool {
		m := New(noJitter(X86()), 1<<16)
		f := &IntermittentFault{Addr: 0x2000, Bit: 2, Value: 1, Seed: 42}
		m.AddDevice(f)
		b := asm.New()
		b.Label("loop")
		b.Addi(5, 5, 1)
		b.J("loop")
		loadProg(t, m, b)
		var states []bool
		for i := 0; i < 300; i++ {
			m.Run(1000)
			states = append(states, f.On())
		}
		return states
	}
	a, b := trace(), trace()
	var ons, offs int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("toggle trace diverged at sample %d", i)
		}
		if a[i] {
			ons++
		} else {
			offs++
		}
	}
	if ons == 0 || offs == 0 {
		t.Fatalf("fault never toggled: on=%d off=%d samples", ons, offs)
	}
}

// TestBusStarvation pins the arbiter-fault model: the starved core is
// denied every grant without ever head-blocking the FIFO, so its peers
// keep their full bandwidth.
func TestBusStarvation(t *testing.T) {
	b := newBus(8)
	b.starve = 1
	var grants [2]int
	for cyc := 0; cyc < 10_000; cyc++ {
		b.tick()
		for core := 0; core < 2; core++ {
			if b.take(core, 64) {
				grants[core]++
			}
		}
	}
	if grants[1] != 0 {
		t.Fatalf("starved core received %d grants", grants[1])
	}
	if grants[0] == 0 {
		t.Fatal("healthy core starved alongside the faulty one")
	}
	b.starve = -1
	for cyc := 0; cyc < 1_000; cyc++ {
		b.tick()
		if b.take(1, 64) {
			grants[1]++
		}
	}
	if grants[1] == 0 {
		t.Fatal("core still starved after clearing the fault")
	}
}
