package machine

import (
	"errors"
	"fmt"
	"math"

	"rcoe/internal/isa"
)

// MMIOHandler receives loads and stores that hit a device window.
type MMIOHandler interface {
	MMIORead(addr uint64, size int) uint64
	MMIOWrite(addr uint64, size int, v uint64)
}

// Device is ticked once per global cycle so it can raise interrupts and
// perform DMA.
type Device interface {
	Tick(m *Machine)
}

// EventSource is implemented by devices that can predict their next
// interesting cycle, enabling the idle fast-forward path. NextEvent
// returns the earliest cycle value strictly greater than now at which the
// device's Tick would not be a no-op, or NoEvent when the device stays
// quiescent until a core or host action changes its state. A device may
// answer conservatively early — the machine simply ticks it normally at
// that cycle — but never late: a late answer would let fast-forward jump
// over a DMA transfer or interrupt and break the determinism contract.
// Devices that do not implement EventSource disable fast-forward entirely,
// which is always safe.
type EventSource interface {
	NextEvent(now uint64) uint64
}

// MemWatcher is implemented by devices whose NextEvent answer depends on
// the contents of ordinary RAM — typically DMA mailbox flags that a
// driver writes with plain stores rather than MMIO. Idle fast-forward
// needs no such declaration (a fully idle window has no core stores), but
// the superblock engine keeps cores executing under a horizon computed at
// batch entry; a store into a watched range invalidates that horizon, so
// the batch ends with the store's cycle and the device's next Tick runs
// naively — observing the store exactly when per-cycle ticking would
// have. Ranges may be declared conservatively wide; extra pages only cost
// earlier batch exits, never correctness.
type MemWatcher interface {
	WatchedMem() (lo, hi uint64)
}

// NoEvent is the NextEvent / ParkWakeAt sentinel for "no time-driven event
// pending".
const NoEvent = ^uint64(0)

// ParkProbeInterval bounds how far fast-forward may carry a parked core
// whose wake cycle is undeclared: its park condition is still evaluated at
// least once per interval, so a condition with an undeclared time
// dependence wakes at most this many cycles late. Parks whose conditions
// are time-driven declare an exact wake cycle with ParkWakeAt (and stay
// bit-identical to naive stepping); purely event-driven parks declare
// ParkWakeNever and are skipped without bound.
const ParkProbeInterval = 1024

type mmioWindow struct {
	base, size uint64
	dev        MMIOHandler
}

// ErrTimeout is returned by RunUntil when the condition does not become
// true within the cycle budget.
var ErrTimeout = errors.New("machine: run timed out")

// Machine is the simulated multicore system: cores, physical memory, the
// shared bus, MMIO devices, and interrupt routing.
type Machine struct {
	prof    Profile
	mem     *Mem
	bus     *bus
	cores   []*Core
	handler TrapHandler
	windows []mmioWindow
	devices []Device

	// irqRoute maps device interrupt lines to the core that receives
	// them. RCoE routes all device interrupts to the primary replica and
	// re-routes them when the primary is removed (§IV-A).
	irqRoute [64]int

	// OnIRQRoute, when set, observes every interrupt re-route (the
	// flight recorder logs primary fail-overs through it). It must not
	// perturb machine state.
	OnIRQRoute func(line, coreID int)

	// mmioLo/mmioHi bound the union of all MMIO windows so the hot data
	// path can reject non-device addresses with two compares instead of a
	// window scan. mmioLo > mmioHi means no windows are mapped.
	mmioLo, mmioHi uint64

	now uint64
	// rr caches now % len(cores) — the round-robin service origin for the
	// current cycle — maintained incrementally so the per-cycle Step loop
	// avoids a 64-bit division. skipIdle re-derives it after a time jump.
	rr int

	// fastForward enables the event-driven idle skip in Run/RunUntil.
	fastForward bool
	// execCache enables the host-side predecoded instruction cache and
	// translation memos (execcache.go). Provably invisible to simulated
	// state; the differential determinism suite compares fingerprints
	// with it on and off.
	execCache bool
	// superblock enables the batched straight-line execution engine
	// (superblock.go). Like the other two accelerators it is provably
	// invisible to simulated state.
	superblock bool
	// stepIdle reports whether the most recent Step was fully idle: no
	// core reached an issue opportunity and no parked core woke. Only
	// after such a Step may fast-forward engage, which guarantees every
	// park condition and device has been evaluated naively at least once
	// since the last core, device, or host action.
	stepIdle bool
	// ffSkipped counts cycles bulk-charged by fast-forward (diagnostics).
	ffSkipped uint64

	// sbExit is set by trap and the MMIO execution branches so the batched
	// superblock loop can detect, immediately after exec returns, that the
	// kernel or a device observed (and may have mutated) machine state.
	// The naive paths never read it.
	sbExit bool
	// sbHold pins the machine to naive stepping until the given cycle
	// after a failed block build (host-only cooldown heuristic).
	sbHold uint64
	// sbJumped counts stall-window cycles bulk-charged inside batches.
	sbJumped uint64
	// sbRun is the per-core batch state, allocated once.
	sbRun []sbRunState
	// watchGp points into mem.pageGen for every device-watched RAM page
	// (MemWatcher); watchSnap holds their values at batch entry. A batched
	// store that bumps a watched generation ends the batch with that cycle
	// so the owning device's next Tick runs naively (see watchDirty).
	watchGp   []*uint64
	watchSnap []uint64
}

// defaultFastForward seeds Machine.fastForward in New. Package-level so
// command-line tools can flip the default before systems are built.
var defaultFastForward = true

// SetDefaultFastForward sets whether newly created machines fast-forward
// idle cycles (default true).
func SetDefaultFastForward(on bool) { defaultFastForward = on }

// defaultExecCache seeds Machine.execCache in New, mirroring the
// fast-forward default so command-line tools (-no-execcache) can flip it
// before systems are built.
var defaultExecCache = true

// SetDefaultExecCache sets whether newly created machines use the
// execution cache (default true).
func SetDefaultExecCache(on bool) { defaultExecCache = on }

// defaultSuperblock seeds Machine.superblock in New, mirroring the other
// accelerator defaults so command-line tools (-no-superblock) can flip it
// before systems are built.
var defaultSuperblock = true

// SetDefaultSuperblock sets whether newly created machines use the
// superblock engine (default true).
func SetDefaultSuperblock(on bool) { defaultSuperblock = on }

// New creates a machine with the given profile and physical memory size.
// The trap handler (the kernel) must be set with SetHandler before Run.
func New(prof Profile, memBytes int) *Machine {
	m := &Machine{
		prof:        prof,
		mem:         NewMem(memBytes),
		bus:         newBus(prof.BusBytesPerCycle),
		fastForward: defaultFastForward,
		execCache:   defaultExecCache,
		superblock:  defaultSuperblock,
		mmioLo:      ^uint64(0), // empty until MapMMIO
	}
	for i := 0; i < prof.Cores; i++ {
		c := &Core{
			ID:         i,
			State:      CoreHalted, // cores boot via StartCore
			IntEnabled: true,
			cache:      newCache(prof.CacheBytes, prof.CacheLine),
			jitter:     uint64(i)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d,
			m:          m,
		}
		m.cores = append(m.cores, c)
	}
	return m
}

// SetHandler installs the kernel trap handler.
func (m *Machine) SetHandler(h TrapHandler) { m.handler = h }

// Profile returns the machine profile.
func (m *Machine) Profile() Profile { return m.prof }

// Mem returns physical memory.
func (m *Machine) Mem() *Mem { return m.mem }

// Now returns the global cycle count.
func (m *Machine) Now() uint64 { return m.now }

// Core returns core i.
func (m *Machine) Core(i int) *Core { return m.cores[i] }

// NumCores returns the core count.
func (m *Machine) NumCores() int { return len(m.cores) }

// StartCore boots a core at pc with the given address space.
func (m *Machine) StartCore(id int, pc uint64, as *AddrSpace) {
	c := m.cores[id]
	c.PC = pc
	c.AS = as
	c.State = CoreRunning
	c.FlushCache()
}

// MapMMIO registers a device register window at a physical address range
// (conventionally above RAM).
func (m *Machine) MapMMIO(base, size uint64, dev MMIOHandler) {
	m.windows = append(m.windows, mmioWindow{base: base, size: size, dev: dev})
	if base < m.mmioLo {
		m.mmioLo = base
	}
	if base+size-1 > m.mmioHi {
		m.mmioHi = base + size - 1
	}
}

// AddDevice registers a device for per-cycle ticking. A device that also
// implements MemWatcher has its declared RAM range registered with the
// superblock engine (see watchMem).
func (m *Machine) AddDevice(d Device) {
	m.devices = append(m.devices, d)
	if w, ok := d.(MemWatcher); ok {
		m.watchMem(w.WatchedMem())
	}
}

// RouteIRQ directs a device interrupt line to a core.
func (m *Machine) RouteIRQ(line, coreID int) {
	m.irqRoute[line] = coreID
	if m.OnIRQRoute != nil {
		m.OnIRQRoute(line, coreID)
	}
}

// IRQRoute returns the core a line is routed to.
func (m *Machine) IRQRoute(line int) int { return m.irqRoute[line] }

// RaiseIRQ asserts a device interrupt line; it is latched on the routed
// core until acknowledged.
func (m *Machine) RaiseIRQ(line int) {
	c := m.cores[m.irqRoute[line]]
	c.pendingIRQ |= 1 << uint(line)
}

// SendIPI latches an inter-processor interrupt on the target core; the
// cost model charges the IPI latency as a stall on the receiver.
func (m *Machine) SendIPI(to int) {
	c := m.cores[to]
	if !c.pendingIPI {
		c.pendingIPI = true
		c.AddStall(m.prof.Costs.IPILatency)
	}
}

func (m *Machine) mmioAt(pa uint64) (MMIOHandler, bool) {
	// Fast reject: on the data hot path nearly every access is RAM, well
	// below the device windows.
	if pa < m.mmioLo || pa > m.mmioHi {
		return nil, false
	}
	for _, w := range m.windows {
		if pa >= w.base && pa < w.base+w.size {
			return w.dev, true
		}
	}
	return nil, false
}

// PhysReadU reads a value from physical memory or an MMIO window; the
// kernel uses this for FT_Mem_Access.
func (m *Machine) PhysReadU(pa uint64, size int) (uint64, error) {
	if dev, ok := m.mmioAt(pa); ok {
		return dev.MMIORead(pa, size), nil
	}
	return m.mem.ReadU(pa, size)
}

// PhysWriteU writes a value to physical memory or an MMIO window.
func (m *Machine) PhysWriteU(pa uint64, size int, v uint64) error {
	if dev, ok := m.mmioAt(pa); ok {
		dev.MMIOWrite(pa, size, v)
		return nil
	}
	return m.mem.WriteU(pa, size, v)
}

// Step advances the machine by one global cycle. The core service order
// rotates every cycle so that bus arbitration is fair: a fixed order
// would systematically favour low-numbered cores during miss bursts and
// skew otherwise-identical replicas apart.
func (m *Machine) Step() {
	m.now++
	n := len(m.cores)
	if m.rr++; m.rr >= n {
		m.rr = 0
	}
	m.bus.tick()
	for _, d := range m.devices {
		d.Tick(m)
	}
	m.stepIdle = true
	for i, idx := 0, m.rr; i < n; i++ {
		c := m.cores[idx]
		// Halted and offline cores are no-ops in advance; skipping them
		// here keeps the per-cycle loop tight on partially-idle machines.
		if c.State != CoreHalted && c.State != CoreOffline {
			m.advance(c)
		}
		if idx++; idx == n {
			idx = 0
		}
	}
}

// SetFastForward enables or disables the event-driven idle skip for this
// machine.
func (m *Machine) SetFastForward(on bool) { m.fastForward = on }

// FastForward reports whether the idle skip is enabled.
func (m *Machine) FastForward() bool { return m.fastForward }

// SetExecCache enables or disables the execution cache for this machine.
// Safe to flip at any point: the caches validate against mutation
// generations, never against "the cache was on the whole time".
func (m *Machine) SetExecCache(on bool) { m.execCache = on }

// ExecCacheEnabled reports whether the execution cache is enabled.
func (m *Machine) ExecCacheEnabled() bool { return m.execCache }

// SetSuperblock enables or disables the superblock engine for this
// machine. Safe to flip at any point: blocks validate against mutation
// generations on every use, never against "the engine was on the whole
// time".
func (m *Machine) SetSuperblock(on bool) { m.superblock = on }

// SuperblockEnabled reports whether the superblock engine is enabled.
func (m *Machine) SuperblockEnabled() bool { return m.superblock }

// FastForwarded returns the total cycles bulk-charged by the idle skip
// instead of being stepped naively.
func (m *Machine) FastForwarded() uint64 { return m.ffSkipped }

// Run advances the machine by n cycles. With fast-forward enabled, idle
// windows — every core parked, stalled, halted, or offline, and no device
// due — are bulk-charged instead of stepped, with identical architectural
// outcome (see skipIdle).
func (m *Machine) Run(n uint64) {
	// Host code may have mutated state (park flags, injected faults,
	// device queues) since the last Step; force one naive Step before any
	// skip so such changes are observed exactly as the naive loop would.
	m.stepIdle = false
	for i := uint64(0); i < n; {
		if m.fastForward && m.stepIdle && n-i > 1 {
			i += m.skipIdle(n - i - 1)
		}
		if m.superblock && n-i > 1 {
			if k := m.runBlocks(nil, n-i-1); k > 0 {
				i += k
				continue
			}
		}
		m.Step()
		i++
	}
}

// RunUntil steps the machine until cond returns true, or fails with
// ErrTimeout after maxCycles. cond must be event-driven — a function of
// machine state that changes only when a core executes, a device acts, or
// a park wakes; fast-forward evaluates it exactly at those points. A
// condition on wall-cycle time alone (e.g. Now() >= X) may be observed
// late under fast-forward; bound such waits with Run instead.
func (m *Machine) RunUntil(cond func() bool, maxCycles uint64) error {
	start := m.now
	m.stepIdle = false // see Run
	for !cond() {
		if m.now-start >= maxCycles {
			return fmt.Errorf("%w after %d cycles", ErrTimeout, maxCycles)
		}
		if m.fastForward && m.stepIdle {
			if left := maxCycles - (m.now - start); left > 1 {
				m.skipIdle(left - 1)
			}
		}
		if m.superblock {
			if left := maxCycles - (m.now - start); left > 1 {
				// The batch evaluates cond before every cycle after its
				// first, exactly as the naive loop does before every Step;
				// looping back re-evaluates it before the next cycle too.
				if m.runBlocks(cond, left-1) > 0 {
					continue
				}
			}
		}
		m.Step()
	}
	return nil
}

// skipIdle bulk-charges up to limit cycles of a quiescent window: it jumps
// now to just before the earliest cycle at which anything interesting can
// happen — a stall expiring, a parked core's declared wake cycle, a park
// probe falling due, or a device event — and advances every per-core cycle
// counter, stall balance, and the bus token bucket exactly as limit naive
// Steps would have. It returns the number of cycles skipped (possibly 0).
//
// Callers must only invoke it after a fully idle naive Step (stepIdle):
// that Step proved every park condition currently false and every device
// tick a no-op, so during the window the only evolving state is time
// itself. The jitter PRNG advances only on issue opportunities and no core
// reaches one while parked or stalled, so it is untouched, and the Step
// after the skip services cores in the same rotation order the naive loop
// would have used at that absolute cycle.
func (m *Machine) skipIdle(limit uint64) uint64 {
	k := limit
	for _, c := range m.cores {
		var d uint64
		switch c.State {
		case CoreHalted, CoreOffline:
			continue
		case CoreParked:
			switch c.parkWake {
			case 0: // no declared wake: bound by the probe interval
				d = ParkProbeInterval
			case NoEvent: // purely event-driven: no time bound
				continue
			default:
				if c.parkWake <= c.Cycles+1 {
					return 0 // due now or next cycle
				}
				d = c.parkWake - c.Cycles - 1
			}
		default: // CoreRunning: only a stall keeps it off the issue path
			if c.stall <= 0 {
				return 0
			}
			d = uint64(c.stall)
		}
		if d < k {
			k = d
		}
	}
	for _, dev := range m.devices {
		es, ok := dev.(EventSource)
		if !ok {
			return 0 // unknown device: never skip past its ticks
		}
		ne := es.NextEvent(m.now)
		if ne == NoEvent {
			continue
		}
		if ne <= m.now+1 {
			return 0
		}
		if d := ne - m.now - 1; d < k {
			k = d
		}
	}
	if k == 0 {
		return 0
	}
	m.now += k
	m.rr = int(m.now % uint64(len(m.cores)))
	m.bus.skip(k)
	for _, c := range m.cores {
		if c.State != CoreParked && c.State != CoreRunning {
			continue
		}
		c.Cycles += k
		if uint64(c.stall) <= k {
			c.stall = 0
		} else {
			c.stall -= int(k)
		}
	}
	m.ffSkipped += k
	return k
}

// AllHalted reports whether every core is halted or offline.
func (m *Machine) AllHalted() bool {
	for _, c := range m.cores {
		if c.State == CoreRunning || c.State == CoreParked {
			return false
		}
	}
	return true
}

func (m *Machine) advance(c *Core) {
	switch c.State {
	case CoreHalted, CoreOffline:
		return
	case CoreParked:
		c.Cycles++
		// Kernel work charged just before parking (e.g. the final debug
		// exception of a catch-up) overlaps the barrier spin: consume it
		// while waiting, so release resumes user code without a stale
		// stall that would systematically skew this replica behind its
		// peers on every synchronisation.
		if c.stall > 0 {
			c.stall--
		}
		if c.parkCond != nil && c.parkCond() {
			m.stepIdle = false
			done := c.parkDone
			c.State = CoreRunning
			c.parkCond, c.parkDone = nil, nil
			c.parkWake = 0
			if done != nil {
				done()
			}
		}
		return
	}
	c.Cycles++
	if c.stall > 0 {
		c.stall--
		return
	}
	// The core reached an issue opportunity (jitter, interrupt delivery,
	// breakpoint, or execution all advance observable state): the cycle is
	// not idle and fast-forward must not engage on top of it.
	m.stepIdle = false
	m.issue(c)
}

// issue runs one issue opportunity on a running, unstalled core: the
// jitter draw, interrupt delivery, debug checks, and instruction
// execution, in that order. Shared by the naive advance path and the
// superblock engine's fall-back-to-naive cycles.
func (m *Machine) issue(c *Core) {
	if c.nextJitter(m.prof.JitterShift) {
		return
	}
	if c.IntEnabled && (c.pendingIRQ != 0 || c.pendingIPI) {
		c.AddStall(m.prof.Costs.IRQDeliver)
		m.trap(c, Trap{Kind: TrapIRQ, PC: c.PC})
		return
	}
	if DebugPCWatch != nil {
		DebugPCWatch(c.ID, c.PC, c.BP.Addr, c.BP.Enabled, c.SingleStep, m.now)
	}
	if c.BP.Enabled && c.PC == c.BP.Addr && !c.ResumeOnce {
		m.trap(c, Trap{Kind: TrapBreakpoint, PC: c.PC})
		return
	}
	m.execOne(c)
}

// DebugTrace, when non-nil, observes every trap (tests only).
var DebugTrace func(coreID int, kind TrapKind, pc uint64, now uint64)

// DebugPCWatch, when non-nil, observes every issue opportunity (tests
// only).
var DebugPCWatch func(coreID int, pc, bpAddr uint64, bpEnabled, singleStep bool, now uint64)

// trap hands control to the kernel. The handler mutates the core and
// returns; user execution resumes on a later cycle (after any stall the
// handler charged).
func (m *Machine) trap(c *Core, t Trap) {
	m.sbExit = true // the kernel may mutate anything; end any batch
	if DebugTrace != nil {
		DebugTrace(c.ID, t.Kind, t.PC, m.now)
	}
	c.AddStall(m.prof.Costs.KernelEntry)
	if m.handler != nil {
		m.handler.HandleTrap(c, t)
	}
}

// execOne fetches, decodes and executes one instruction on c. Bus
// exhaustion leaves the core at the same PC to retry next cycle.
func (m *Machine) execOne(c *Core) {
	var ins isa.Instr
	// Predecode-cache hit fast path, open-coded to spare the fetch call
	// frame on the ~100% case. Identical to the hit branch inside fetch;
	// any other case (miss, cache disabled, first fetch) falls through to
	// fetch, which re-derives it from scratch.
	var ent *icacheEntry
	if ec := c.ec; m.execCache && ec != nil {
		ent = ec.fetchHit(c.PC, c.AS, m.mem)
	}
	if ent != nil {
		c.ec.decodeHits++
		if !c.memAccess(ent.pa, isa.InstrBytes, false) {
			return // bus stall on fetch
		}
		ins = ent.ins
	} else {
		var ok bool
		if ins, ok = m.fetch(c); !ok {
			return // trap taken or bus stall on fetch
		}
	}
	// Fast tail for the common case: no debug feature armed on this core,
	// so the instruction either retires or retries — nothing to observe.
	if !c.BP.Enabled && !c.BranchWatch.Enabled && !c.SingleStep {
		if m.exec(c, &ins) {
			c.Instructions++
		}
		return
	}
	atBP := c.BP.Enabled && c.PC == c.BP.Addr
	prevPC := c.PC
	branchesBefore := c.UserBranches
	if !m.exec(c, &ins) {
		return // bus stall mid-instruction; retry
	}
	c.Instructions++
	if c.BranchWatch.Enabled && c.UserBranches != branchesBefore &&
		c.UserBranches >= c.BranchWatch.Target {
		c.BranchWatch.Enabled = false
		m.trap(c, Trap{Kind: TrapBranchWatch, PC: c.PC})
		return
	}
	// The resume flag acts at *instruction* granularity: a rep-style block
	// operation that keeps PC in place is still the same instruction, so
	// the breakpoint stays suppressed until it completes (x86 RF
	// semantics). The trap flag is finer: a rep-prefixed instruction under
	// TF delivers a debug exception after every iteration, so single-step
	// traps on each issue — which is what lets a kernel stop a replica at
	// an exact position *inside* a block copy (the paper's §III-D
	// rep-prefix discussion).
	completed := c.PC != prevPC
	if atBP && c.ResumeOnce && completed {
		c.ResumeOnce = false
	}
	if c.SingleStep {
		c.SingleStep = false
		m.trap(c, Trap{Kind: TrapSingleStep, PC: c.PC})
	}
}

// fetch resolves PC, charges the fetch through the cost model, and
// returns the decoded instruction. ok=false means no instruction executes
// this cycle: a trap was taken (translation, read, or decode failure) or
// the bus stalled the fetch. The cached and naive paths make the same
// cost-model calls in the same order and take the same traps with the
// same fields, so simulated state cannot tell them apart.
func (m *Machine) fetch(c *Core) (isa.Instr, bool) {
	if m.execCache {
		ec := c.ecLazy()
		e := ec.islot(c.PC)
		if e.hit(c.PC, c.AS, m.mem) {
			ec.decodeHits++
			if !c.memAccess(e.pa, isa.InstrBytes, false) {
				return isa.Instr{}, false // bus stall on fetch
			}
			return e.ins, true
		}
		// Miss: run the naive pipeline and memoise on full success. The
		// failure paths trap exactly as the naive loop does and are never
		// cached, so a faulting fetch re-derives its trap every cycle.
		ec.decodeMisses++
		pa, _, ok := c.AS.Translate(c.PC, isa.InstrBytes, PermX)
		if !ok {
			m.trap(c, Trap{Kind: TrapMemFault, Addr: c.PC, PC: c.PC})
			return isa.Instr{}, false
		}
		if !c.memAccess(pa, isa.InstrBytes, false) {
			return isa.Instr{}, false // bus stall on fetch
		}
		var raw [isa.InstrBytes]byte
		if err := m.mem.ReadAt(pa, raw[:]); err != nil {
			m.trap(c, Trap{Kind: TrapMemFault, Addr: c.PC, PC: c.PC})
			return isa.Instr{}, false
		}
		ins, err := isa.Decode(raw[:])
		if err != nil {
			m.trap(c, Trap{Kind: TrapIllegal, Addr: c.PC, PC: c.PC})
			return isa.Instr{}, false
		}
		e.fill(c.PC, pa, c.AS, m.mem, ins)
		return ins, true
	}
	pa, _, ok := c.AS.Translate(c.PC, isa.InstrBytes, PermX)
	if !ok {
		m.trap(c, Trap{Kind: TrapMemFault, Addr: c.PC, PC: c.PC})
		return isa.Instr{}, false
	}
	if !c.memAccess(pa, isa.InstrBytes, false) {
		return isa.Instr{}, false // bus stall on fetch
	}
	raw, err := m.mem.Read(pa, isa.InstrBytes)
	if err != nil {
		m.trap(c, Trap{Kind: TrapMemFault, Addr: c.PC, PC: c.PC})
		return isa.Instr{}, false
	}
	ins, err := isa.Decode(raw)
	if err != nil {
		m.trap(c, Trap{Kind: TrapIllegal, Addr: c.PC, PC: c.PC})
		return isa.Instr{}, false
	}
	return ins, true
}

// xlate translates a data access for the execution path, through the
// per-core translation memo when the execution cache is enabled. The
// (pa, ok) result is bit-identical to AddrSpace.Translate either way.
func (m *Machine) xlate(c *Core, va uint64, n int, need Perm) (uint64, bool) {
	if m.execCache {
		ec := c.ecLazy()
		return ec.translate(c.AS, ec.dslot(va), va, n, need)
	}
	pa, _, ok := c.AS.Translate(va, n, need)
	return pa, ok
}

// exec executes a decoded instruction; it returns false if the core must
// retry the same instruction next cycle (bus stall). All architectural
// side effects happen only on the true path. The instruction is passed by
// pointer purely to keep the per-instruction host cost down (the cost
// table likewise); exec never mutates it.
func (m *Machine) exec(c *Core, ins *isa.Instr) bool {
	cost := &m.prof.Costs
	nextPC := c.PC + isa.InstrBytes
	switch ins.Op {
	case isa.OpAdd:
		c.setReg(ins.Rd, c.reg(ins.Rs1)+c.reg(ins.Rs2))
	case isa.OpSub:
		c.setReg(ins.Rd, c.reg(ins.Rs1)-c.reg(ins.Rs2))
	case isa.OpMul:
		c.setReg(ins.Rd, c.reg(ins.Rs1)*c.reg(ins.Rs2))
		c.AddStall(cost.Mul - 1)
	case isa.OpDiv:
		d := int64(c.reg(ins.Rs2))
		if d == 0 {
			m.trap(c, Trap{Kind: TrapDivZero, PC: c.PC})
			return true
		}
		n := int64(c.reg(ins.Rs1))
		if n == math.MinInt64 && d == -1 {
			c.setReg(ins.Rd, uint64(n))
		} else {
			c.setReg(ins.Rd, uint64(n/d))
		}
		c.AddStall(cost.Div - 1)
	case isa.OpDivu:
		d := c.reg(ins.Rs2)
		if d == 0 {
			m.trap(c, Trap{Kind: TrapDivZero, PC: c.PC})
			return true
		}
		c.setReg(ins.Rd, c.reg(ins.Rs1)/d)
		c.AddStall(cost.Div - 1)
	case isa.OpRem:
		d := c.reg(ins.Rs2)
		if d == 0 {
			m.trap(c, Trap{Kind: TrapDivZero, PC: c.PC})
			return true
		}
		c.setReg(ins.Rd, c.reg(ins.Rs1)%d)
		c.AddStall(cost.Div - 1)
	case isa.OpAnd:
		c.setReg(ins.Rd, c.reg(ins.Rs1)&c.reg(ins.Rs2))
	case isa.OpOr:
		c.setReg(ins.Rd, c.reg(ins.Rs1)|c.reg(ins.Rs2))
	case isa.OpXor:
		c.setReg(ins.Rd, c.reg(ins.Rs1)^c.reg(ins.Rs2))
	case isa.OpShl:
		c.setReg(ins.Rd, c.reg(ins.Rs1)<<(c.reg(ins.Rs2)&63))
	case isa.OpShr:
		c.setReg(ins.Rd, c.reg(ins.Rs1)>>(c.reg(ins.Rs2)&63))
	case isa.OpSra:
		c.setReg(ins.Rd, uint64(int64(c.reg(ins.Rs1))>>(c.reg(ins.Rs2)&63)))
	case isa.OpSlt:
		c.setReg(ins.Rd, b2u(int64(c.reg(ins.Rs1)) < int64(c.reg(ins.Rs2))))
	case isa.OpSltu:
		c.setReg(ins.Rd, b2u(c.reg(ins.Rs1) < c.reg(ins.Rs2)))

	case isa.OpAddi:
		c.setReg(ins.Rd, c.reg(ins.Rs1)+uint64(int64(ins.Imm)))
	case isa.OpAndi:
		c.setReg(ins.Rd, c.reg(ins.Rs1)&uint64(int64(ins.Imm)))
	case isa.OpOri:
		c.setReg(ins.Rd, c.reg(ins.Rs1)|uint64(int64(ins.Imm)))
	case isa.OpXori:
		c.setReg(ins.Rd, c.reg(ins.Rs1)^uint64(int64(ins.Imm)))
	case isa.OpShli:
		c.setReg(ins.Rd, c.reg(ins.Rs1)<<(uint32(ins.Imm)&63))
	case isa.OpShri:
		c.setReg(ins.Rd, c.reg(ins.Rs1)>>(uint32(ins.Imm)&63))
	case isa.OpSrai:
		c.setReg(ins.Rd, uint64(int64(c.reg(ins.Rs1))>>(uint32(ins.Imm)&63)))
	case isa.OpSlti:
		c.setReg(ins.Rd, b2u(int64(c.reg(ins.Rs1)) < int64(ins.Imm)))
	case isa.OpLi:
		c.setReg(ins.Rd, uint64(int64(ins.Imm)))
	case isa.OpLih:
		c.setReg(ins.Rd, c.reg(ins.Rd)<<32|uint64(uint32(ins.Imm)))

	case isa.OpLd1, isa.OpLd2, isa.OpLd4, isa.OpLd8:
		size := loadSize(ins.Op)
		va := c.reg(ins.Rs1) + uint64(int64(ins.Imm))
		pa, ok := m.xlate(c, va, size, PermR)
		if !ok {
			m.trap(c, Trap{Kind: TrapMemFault, Addr: va, PC: c.PC})
			return true
		}
		if dev, isMMIO := m.mmioAt(pa); isMMIO {
			m.sbExit = true // device read may have side effects (IRQ, DMA)
			c.setReg(ins.Rd, dev.MMIORead(pa, size))
			c.AddStall(cost.MemMiss)
			break
		}
		if !c.memAccess(pa, size, false) {
			return false
		}
		v, err := m.mem.ReadU(pa, size)
		if err != nil {
			m.trap(c, Trap{Kind: TrapMemFault, Addr: va, PC: c.PC})
			return true
		}
		c.setReg(ins.Rd, v)

	case isa.OpSt1, isa.OpSt2, isa.OpSt4, isa.OpSt8:
		size := storeSize(ins.Op)
		va := c.reg(ins.Rs1) + uint64(int64(ins.Imm))
		pa, ok := m.xlate(c, va, size, PermW)
		if !ok {
			m.trap(c, Trap{Kind: TrapMemFault, Addr: va, PC: c.PC})
			return true
		}
		if dev, isMMIO := m.mmioAt(pa); isMMIO {
			m.sbExit = true // device write may have side effects (IRQ, DMA)
			dev.MMIOWrite(pa, size, c.reg(ins.Rs2))
			c.AddStall(cost.MemMiss)
			break
		}
		if !c.memAccess(pa, size, true) {
			return false
		}
		if err := m.mem.WriteU(pa, size, c.reg(ins.Rs2)); err != nil {
			m.trap(c, Trap{Kind: TrapMemFault, Addr: va, PC: c.PC})
			return true
		}

	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpBltu, isa.OpBgeu:
		c.UserBranches++
		if condTaken(ins.Op, c.reg(ins.Rs1), c.reg(ins.Rs2)) {
			nextPC = uint64(uint32(ins.Imm))
		}
	case isa.OpJ:
		c.UserBranches++
		nextPC = uint64(uint32(ins.Imm))
	case isa.OpJal:
		c.UserBranches++
		c.setReg(ins.Rd, c.PC+isa.InstrBytes)
		nextPC = uint64(uint32(ins.Imm))
	case isa.OpJr:
		c.UserBranches++
		nextPC = c.reg(ins.Rs1)
	case isa.OpJalr:
		c.UserBranches++
		c.setReg(ins.Rd, c.PC+isa.InstrBytes)
		nextPC = c.reg(ins.Rs1) + uint64(int64(ins.Imm))

	case isa.OpFadd:
		c.setReg(ins.Rd, bits(f64(c.reg(ins.Rs1))+f64(c.reg(ins.Rs2))))
		c.AddStall(cost.FPSimple - 1)
	case isa.OpFsub:
		c.setReg(ins.Rd, bits(f64(c.reg(ins.Rs1))-f64(c.reg(ins.Rs2))))
		c.AddStall(cost.FPSimple - 1)
	case isa.OpFmul:
		c.setReg(ins.Rd, bits(f64(c.reg(ins.Rs1))*f64(c.reg(ins.Rs2))))
		c.AddStall(cost.FPSimple - 1)
	case isa.OpFdiv:
		c.setReg(ins.Rd, bits(f64(c.reg(ins.Rs1))/f64(c.reg(ins.Rs2))))
		c.AddStall(cost.FPDiv - 1)
	case isa.OpFsqrt:
		c.setReg(ins.Rd, bits(math.Sqrt(f64(c.reg(ins.Rs1)))))
		c.AddStall(cost.FPDiv - 1)
	case isa.OpFsin:
		c.setReg(ins.Rd, bits(math.Sin(f64(c.reg(ins.Rs1)))))
		c.AddStall(cost.FPTrans - 1)
	case isa.OpFcos:
		c.setReg(ins.Rd, bits(math.Cos(f64(c.reg(ins.Rs1)))))
		c.AddStall(cost.FPTrans - 1)
	case isa.OpFexp:
		c.setReg(ins.Rd, bits(math.Exp(f64(c.reg(ins.Rs1)))))
		c.AddStall(cost.FPTrans - 1)
	case isa.OpFlog:
		c.setReg(ins.Rd, bits(math.Log(f64(c.reg(ins.Rs1)))))
		c.AddStall(cost.FPTrans - 1)
	case isa.OpFatan:
		c.setReg(ins.Rd, bits(math.Atan(f64(c.reg(ins.Rs1)))))
		c.AddStall(cost.FPTrans - 1)
	case isa.OpFcvtIF:
		c.setReg(ins.Rd, bits(float64(int64(c.reg(ins.Rs1)))))
		c.AddStall(cost.FPSimple - 1)
	case isa.OpFcvtFI:
		c.setReg(ins.Rd, uint64(int64(f64(c.reg(ins.Rs1)))))
		c.AddStall(cost.FPSimple - 1)
	case isa.OpFlt:
		c.setReg(ins.Rd, b2u(f64(c.reg(ins.Rs1)) < f64(c.reg(ins.Rs2))))
	case isa.OpFle:
		c.setReg(ins.Rd, b2u(f64(c.reg(ins.Rs1)) <= f64(c.reg(ins.Rs2))))
	case isa.OpFeq:
		c.setReg(ins.Rd, b2u(f64(c.reg(ins.Rs1)) == f64(c.reg(ins.Rs2))))

	case isa.OpLL:
		va := c.reg(ins.Rs1)
		pa, ok := m.xlate(c, va, 8, PermR)
		if !ok {
			m.trap(c, Trap{Kind: TrapMemFault, Addr: va, PC: c.PC})
			return true
		}
		if !c.memAccess(pa, 8, false) {
			return false
		}
		v, err := m.mem.ReadU(pa, 8)
		if err != nil {
			m.trap(c, Trap{Kind: TrapMemFault, Addr: va, PC: c.PC})
			return true
		}
		c.setReg(ins.Rd, v)
		c.llAddr, c.llValid = pa, true
	case isa.OpSC:
		va := c.reg(ins.Rs1)
		pa, ok := m.xlate(c, va, 8, PermW)
		if !ok {
			m.trap(c, Trap{Kind: TrapMemFault, Addr: va, PC: c.PC})
			return true
		}
		if !c.llValid || c.llAddr != pa {
			c.setReg(ins.Rd, 1) // reservation lost
			break
		}
		if !c.memAccess(pa, 8, true) {
			return false
		}
		if err := m.mem.WriteU(pa, 8, c.reg(ins.Rs2)); err != nil {
			m.trap(c, Trap{Kind: TrapMemFault, Addr: va, PC: c.PC})
			return true
		}
		c.llValid = false
		c.setReg(ins.Rd, 0)
	case isa.OpCas:
		va := c.reg(ins.Rs1)
		pa, ok := m.xlate(c, va, 8, PermR|PermW)
		if !ok {
			m.trap(c, Trap{Kind: TrapMemFault, Addr: va, PC: c.PC})
			return true
		}
		if !c.memAccess(pa, 8, true) {
			return false
		}
		old, err := m.mem.ReadU(pa, 8)
		if err != nil {
			m.trap(c, Trap{Kind: TrapMemFault, Addr: va, PC: c.PC})
			return true
		}
		if old == c.reg(ins.Rd) {
			if err := m.mem.WriteU(pa, 8, c.reg(ins.Rs2)); err != nil {
				m.trap(c, Trap{Kind: TrapMemFault, Addr: va, PC: c.PC})
				return true
			}
		}
		c.setReg(ins.Rd, old)
		c.AddStall(cost.Mul) // locked-op cost
	case isa.OpXadd:
		va := c.reg(ins.Rs1)
		pa, ok := m.xlate(c, va, 8, PermR|PermW)
		if !ok {
			m.trap(c, Trap{Kind: TrapMemFault, Addr: va, PC: c.PC})
			return true
		}
		if !c.memAccess(pa, 8, true) {
			return false
		}
		old, err := m.mem.ReadU(pa, 8)
		if err != nil {
			m.trap(c, Trap{Kind: TrapMemFault, Addr: va, PC: c.PC})
			return true
		}
		if err := m.mem.WriteU(pa, 8, old+c.reg(ins.Rs2)); err != nil {
			m.trap(c, Trap{Kind: TrapMemFault, Addr: va, PC: c.PC})
			return true
		}
		c.setReg(ins.Rd, old)
		c.AddStall(cost.Mul)

	case isa.OpMemcpy:
		remaining := c.reg(ins.Rd)
		if remaining == 0 {
			break // done; fall through to PC advance
		}
		if c.BlockWatch.Enabled && remaining == c.BlockWatch.Rem {
			c.BlockWatch.Enabled = false
			m.trap(c, Trap{Kind: TrapBlockWatch, PC: c.PC})
			return true
		}
		chunk := uint64(m.prof.MemCopyChunk)
		if remaining < chunk {
			chunk = remaining
		}
		dstVA, srcVA := c.reg(ins.Rs1), c.reg(ins.Rs2)
		dstPA, okD := m.xlate(c, dstVA, int(chunk), PermW)
		srcPA, okS := m.xlate(c, srcVA, int(chunk), PermR)
		if !okD || !okS {
			va := dstVA
			if !okS {
				va = srcVA
			}
			m.trap(c, Trap{Kind: TrapMemFault, Addr: va, PC: c.PC})
			return true
		}
		if !c.streamAccess(srcPA, dstPA, int(chunk)) {
			return false
		}
		if err := m.mem.Move(dstPA, srcPA, int(chunk)); err != nil {
			m.trap(c, Trap{Kind: TrapMemFault, Addr: dstVA, PC: c.PC})
			return true
		}
		c.setReg(ins.Rd, remaining-chunk)
		c.setReg(ins.Rs1, dstVA+chunk)
		c.setReg(ins.Rs2, srcVA+chunk)
		if remaining-chunk > 0 {
			nextPC = c.PC // rep-style: stay on the instruction
		}

	case isa.OpMemset:
		remaining := c.reg(ins.Rd)
		if remaining == 0 {
			break
		}
		if c.BlockWatch.Enabled && remaining == c.BlockWatch.Rem {
			c.BlockWatch.Enabled = false
			m.trap(c, Trap{Kind: TrapBlockWatch, PC: c.PC})
			return true
		}
		chunk := uint64(m.prof.MemCopyChunk)
		if remaining < chunk {
			chunk = remaining
		}
		dstVA := c.reg(ins.Rs1)
		dstPA, ok := m.xlate(c, dstVA, int(chunk), PermW)
		if !ok {
			m.trap(c, Trap{Kind: TrapMemFault, Addr: dstVA, PC: c.PC})
			return true
		}
		if !c.streamAccess(^uint64(0), dstPA, int(chunk)) {
			return false
		}
		if err := m.mem.Fill(dstPA, int(chunk), byte(ins.Imm)); err != nil {
			m.trap(c, Trap{Kind: TrapMemFault, Addr: dstVA, PC: c.PC})
			return true
		}
		c.setReg(ins.Rd, remaining-chunk)
		c.setReg(ins.Rs1, dstVA+chunk)
		if remaining-chunk > 0 {
			nextPC = c.PC
		}

	case isa.OpSyscall:
		c.PC = nextPC // syscall returns to the following instruction
		m.trap(c, Trap{Kind: TrapSyscall, Num: ins.Imm, PC: c.PC})
		return true
	case isa.OpNop:
	case isa.OpHlt:
		m.trap(c, Trap{Kind: TrapHalt, PC: c.PC})
		return true
	default:
		m.trap(c, Trap{Kind: TrapIllegal, PC: c.PC})
		return true
	}
	c.PC = nextPC
	return true
}

func loadSize(op isa.Opcode) int {
	switch op {
	case isa.OpLd1:
		return 1
	case isa.OpLd2:
		return 2
	case isa.OpLd4:
		return 4
	default:
		return 8
	}
}

func storeSize(op isa.Opcode) int {
	switch op {
	case isa.OpSt1:
		return 1
	case isa.OpSt2:
		return 2
	case isa.OpSt4:
		return 4
	default:
		return 8
	}
}

func condTaken(op isa.Opcode, a, b uint64) bool {
	switch op {
	case isa.OpBeq:
		return a == b
	case isa.OpBne:
		return a != b
	case isa.OpBlt:
		return int64(a) < int64(b)
	case isa.OpBge:
		return int64(a) >= int64(b)
	case isa.OpBltu:
		return a < b
	default: // OpBgeu
		return a >= b
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
