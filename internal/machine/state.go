package machine

import (
	"fmt"
	"sort"

	"rcoe/internal/snapshot"
)

// This file implements the machine layer of the checkpoint/restore
// subsystem (internal/snapshot). The serialized boundary is exactly the
// simulated state: cycle counters, register files, physical memory,
// the bus arbiter, pending hard faults, and debug/watch registers.
//
// Host-side acceleration state is deliberately excluded and re-derived on
// restore, which is what makes a snapshot portable across accelerator
// switch combinations (fast-forward and exec-cache on either side):
//
//   - Mem.pageGen and Core.ec: the predecoded-instruction and translation
//     caches revalidate against page generations, so restore bumps every
//     page generation and drops the exec caches outright.
//   - Machine.rr: the round-robin start index advances in lockstep with
//     now (rr == now % cores, see Step and skipIdle), so it is recomputed.
//   - Machine.stepIdle: Run/RunUntil clear it before stepping, and the
//     fast/naive differential contract makes any mix bit-identical.
//
// Park closures (parkCond/parkDone) cannot be serialized; the machine
// layer clears them and the owning layer (internal/core) re-arms them
// from its own serialized park descriptors after LoadState returns.
// parkWake is serialized here and must be restored by the re-arming
// layer after its installers run (Park resets it to 0).

// StatefulDevice is the optional interface a Device implements to
// participate in snapshots. Devices that do not implement it are assumed
// stateless (or are re-armed externally) and are skipped; the count and
// registration order of stateful devices must match between the saved
// and restoring machine.
type StatefulDevice interface {
	Device
	SaveState(e *snapshot.Enc)
	LoadState(d *snapshot.Dec) error
}

// SaveState serializes the machine's simulated state. It implements
// snapshot.Snapshotter so a bare machine can be snapshotted directly;
// higher layers (internal/core.System) call it and add their own
// sections to the same writer.
func (m *Machine) SaveState(w *snapshot.Writer) error {
	e := w.Section("machine")
	e.U64(m.now)
	e.Int(len(m.cores))
	for _, r := range m.irqRoute {
		e.Int(r)
	}
	e.Int(m.countStatefulDevices())

	m.mem.saveState(w.Section("mem"))
	m.bus.saveState(w.Section("bus"))
	for i, c := range m.cores {
		c.saveState(w.Section(fmt.Sprintf("core.%d", i)))
	}
	k := 0
	for _, d := range m.devices {
		if sd, ok := d.(StatefulDevice); ok {
			sd.SaveState(w.Section(fmt.Sprintf("dev.%d", k)))
			k++
		}
	}
	return w.Err()
}

// LoadState restores the machine's simulated state from a snapshot. The
// target must be structurally identical to the machine that was saved:
// same profile (core count, cache geometry, bus rate), same memory size,
// and the same stateful devices registered in the same order. Structural
// mismatches return snapshot.ErrIncompatible.
//
// irqRoute is restored directly without firing the OnIRQRoute hook: the
// routing events were already recorded (and serialized) by whoever owns
// the hook.
func (m *Machine) LoadState(s *snapshot.Snapshot) error {
	d, err := s.Section("machine")
	if err != nil {
		return err
	}
	now := d.U64()
	if n := d.Int(); n != len(m.cores) {
		return fmt.Errorf("%w: snapshot has %d cores, machine has %d",
			snapshot.ErrIncompatible, n, len(m.cores))
	}
	var route [64]int
	for i := range route {
		route[i] = d.Int()
	}
	if n := d.Int(); n != m.countStatefulDevices() {
		return fmt.Errorf("%w: snapshot has %d stateful devices, machine has %d",
			snapshot.ErrIncompatible, n, m.countStatefulDevices())
	}
	if err := d.Close(); err != nil {
		return err
	}

	if err := loadSection(s, "mem", m.mem.loadState); err != nil {
		return err
	}
	if err := loadSection(s, "bus", m.bus.loadState); err != nil {
		return err
	}
	for i, c := range m.cores {
		if err := loadSection(s, fmt.Sprintf("core.%d", i), c.loadState); err != nil {
			return err
		}
	}
	k := 0
	for _, dev := range m.devices {
		if sd, ok := dev.(StatefulDevice); ok {
			if err := loadSection(s, fmt.Sprintf("dev.%d", k), sd.LoadState); err != nil {
				return err
			}
			k++
		}
	}

	// ffSkipped is host-side diagnostics for the idle-skip accelerator —
	// outside the snapshot boundary, like the accelerator switches
	// themselves — so a restore resets it.
	m.now = now
	m.ffSkipped = 0
	m.sbJumped = 0
	m.sbHold = 0 // host-only cooldown; now may have moved backwards
	m.irqRoute = route
	// Derived scheduler state: the rotation index advances in lockstep
	// with now (and skipIdle re-derives it the same way), and stepIdle
	// must be false until a naive step re-establishes quiescence.
	if n := len(m.cores); n > 0 {
		m.rr = int(now % uint64(n))
	}
	m.stepIdle = false
	return nil
}

// loadSection decodes one section through fn and verifies it was fully
// consumed.
func loadSection(s *snapshot.Snapshot, name string, fn func(*snapshot.Dec) error) error {
	d, err := s.Section(name)
	if err != nil {
		return err
	}
	if err := fn(d); err != nil {
		return fmt.Errorf("section %s: %w", name, err)
	}
	if err := d.Close(); err != nil {
		return err
	}
	return nil
}

func (m *Machine) countStatefulDevices() int {
	n := 0
	for _, d := range m.devices {
		if _, ok := d.(StatefulDevice); ok {
			n++
		}
	}
	return n
}

// saveState serializes physical memory sparsely: only pages with at
// least one nonzero byte are written, plus the stuck-at fault set. A
// fresh machine's memory is zeroed, so the sparse image restores exactly
// while keeping snapshots proportional to the touched working set.
func (mm *Mem) saveState(e *snapshot.Enc) {
	e.U64(uint64(len(mm.bytes)))
	const pageSize = 1 << pageShift
	var pages []uint64
	for off := 0; off < len(mm.bytes); off += pageSize {
		end := off + pageSize
		if end > len(mm.bytes) {
			end = len(mm.bytes)
		}
		if !allZero(mm.bytes[off:end]) {
			pages = append(pages, uint64(off)>>pageShift)
		}
	}
	e.Int(len(pages))
	for _, p := range pages {
		off := p << pageShift
		end := off + pageSize
		if end > uint64(len(mm.bytes)) {
			end = uint64(len(mm.bytes))
		}
		e.U64(p)
		e.Bytes(mm.bytes[off:end])
	}
	addrs := make([]uint64, 0, len(mm.stuck))
	for a := range mm.stuck {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	e.Int(len(addrs))
	for _, a := range addrs {
		msk := mm.stuck[a]
		e.U64(a)
		e.U64(uint64(msk.or))
		e.U64(uint64(msk.andNot))
	}
}

func (mm *Mem) loadState(d *snapshot.Dec) error {
	if size := d.U64(); size != uint64(len(mm.bytes)) {
		return fmt.Errorf("%w: snapshot memory is %d bytes, machine has %d",
			snapshot.ErrIncompatible, size, len(mm.bytes))
	}
	npages := d.Int()
	// Pages are written in ascending order, so the regions between (and
	// after) them are exactly what must be zeroed; restored pages are
	// overwritten in full. This keeps restore cost proportional to memory
	// size with no second pass.
	cursor := uint64(0)
	for i := 0; i < npages && d.Err() == nil; i++ {
		p := d.U64()
		b := d.BytesView()
		off := p << pageShift
		if off+uint64(len(b)) > uint64(len(mm.bytes)) || off+uint64(len(b)) < off {
			return fmt.Errorf("%w: page %d out of range", snapshot.ErrBadSnapshot, p)
		}
		if off < cursor {
			return fmt.Errorf("%w: page %d out of order", snapshot.ErrBadSnapshot, p)
		}
		zeroBytes(mm.bytes[cursor:off])
		copy(mm.bytes[off:], b)
		cursor = off + uint64(len(b))
	}
	if d.Err() == nil {
		zeroBytes(mm.bytes[cursor:])
	}
	mm.stuck = nil
	nstuck := d.Int()
	for i := 0; i < nstuck && d.Err() == nil; i++ {
		a := d.U64()
		or := byte(d.U64())
		andNot := byte(d.U64())
		if mm.stuck == nil {
			mm.stuck = make(map[uint64]stuckMask)
		}
		mm.stuck[a] = stuckMask{or: or, andNot: andNot}
	}
	// Every page changed from the restorer's perspective: bump all
	// mutation generations so any live predecode/translation cache entry
	// revalidates (pageGen itself is derived state, never serialized).
	for i := range mm.pageGen {
		mm.pageGen[i]++
	}
	return d.Err()
}

// zeroBytes clears b (the compiler lowers the loop to a memclr).
func zeroBytes(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

func allZero(b []byte) bool {
	for len(b) >= 8 {
		if b[0]|b[1]|b[2]|b[3]|b[4]|b[5]|b[6]|b[7] != 0 {
			return false
		}
		b = b[8:]
	}
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

func (b *bus) saveState(e *snapshot.Enc) {
	e.Int(b.rate)
	e.Int(b.burst)
	e.I64(int64(b.tokens))
	e.U64(b.now)
	e.Int(b.starve)
	e.Int(len(b.q))
	for _, wtr := range b.q {
		e.Int(wtr.core)
		e.U64(wtr.seen)
	}
}

func (b *bus) loadState(d *snapshot.Dec) error {
	rate, burst := d.Int(), d.Int()
	if rate != b.rate || burst != b.burst {
		return fmt.Errorf("%w: snapshot bus rate/burst %d/%d, machine has %d/%d",
			snapshot.ErrIncompatible, rate, burst, b.rate, b.burst)
	}
	b.tokens = int(d.I64())
	b.now = d.U64()
	b.starve = d.Int()
	n := d.Int()
	b.q = b.q[:0]
	for i := 0; i < n && d.Err() == nil; i++ {
		core := d.Int()
		seen := d.U64()
		b.q = append(b.q, busWaiter{core: core, seen: seen})
	}
	return d.Err()
}

func (c *Core) saveState(e *snapshot.Enc) {
	e.Int(int(c.State))
	e.U64(c.PC)
	e.U64s(c.Regs[:])
	e.U64(c.Cycles)
	e.U64(c.Instructions)
	e.U64(c.UserBranches)
	e.U64(c.BP.Addr)
	e.Bool(c.BP.Enabled)
	e.Bool(c.ResumeOnce)
	e.Bool(c.SingleStep)
	e.U64(c.BranchWatch.Target)
	e.Bool(c.BranchWatch.Enabled)
	e.U64(c.BlockWatch.Rem)
	e.Bool(c.BlockWatch.Enabled)
	e.Bool(c.IntEnabled)
	e.U64(c.parkWake)
	e.U64(c.pendingIRQ)
	e.Bool(c.pendingIPI)
	e.Int(c.stall)
	e.U64(c.jitter)
	e.U64(c.llAddr)
	e.Bool(c.llValid)
	e.U64s(c.cache.tags)
	e.Bytes(boolsToBytes(c.cache.valid))
	e.Bytes(boolsToBytes(c.cache.dirty))
}

func (c *Core) loadState(d *snapshot.Dec) error {
	c.State = CoreState(d.Int())
	c.PC = d.U64()
	regs := d.U64s()
	if d.Err() == nil && len(regs) != len(c.Regs) {
		return fmt.Errorf("%w: snapshot has %d registers, want %d",
			snapshot.ErrIncompatible, len(regs), len(c.Regs))
	}
	copy(c.Regs[:], regs)
	c.Cycles = d.U64()
	c.Instructions = d.U64()
	c.UserBranches = d.U64()
	c.BP.Addr = d.U64()
	c.BP.Enabled = d.Bool()
	c.ResumeOnce = d.Bool()
	c.SingleStep = d.Bool()
	c.BranchWatch.Target = d.U64()
	c.BranchWatch.Enabled = d.Bool()
	c.BlockWatch.Rem = d.U64()
	c.BlockWatch.Enabled = d.Bool()
	c.IntEnabled = d.Bool()
	c.parkWake = d.U64()
	c.pendingIRQ = d.U64()
	c.pendingIPI = d.Bool()
	c.stall = d.Int()
	c.jitter = d.U64()
	c.llAddr = d.U64()
	c.llValid = d.Bool()
	tags := d.U64s()
	valid := d.Bytes()
	dirty := d.Bytes()
	if d.Err() != nil {
		return d.Err()
	}
	if len(tags) != len(c.cache.tags) || len(valid) != len(c.cache.valid) || len(dirty) != len(c.cache.dirty) {
		return fmt.Errorf("%w: snapshot cache has %d lines, machine has %d",
			snapshot.ErrIncompatible, len(tags), len(c.cache.tags))
	}
	copy(c.cache.tags, tags)
	bytesToBools(valid, c.cache.valid)
	bytesToBools(dirty, c.cache.dirty)
	// Park closures cannot cross a snapshot; the owning layer re-arms
	// them (and then restores parkWake, which Park resets). The exec and
	// superblock caches are host-derived state and are simply dropped.
	c.parkCond = nil
	c.parkDone = nil
	c.ec = nil
	c.sb = nil
	return nil
}

func boolsToBytes(bs []bool) []byte {
	out := make([]byte, len(bs))
	for i, v := range bs {
		if v {
			out[i] = 1
		}
	}
	return out
}

func bytesToBools(b []byte, dst []bool) {
	for i := range dst {
		dst[i] = b[i] != 0
	}
}

// ParkWake returns the core's current fast-forward wake hint. The
// re-arming layer uses it to restore a serialized hint after its park
// installer runs (Park resets the hint to 0).
func (c *Core) ParkWake() uint64 { return c.parkWake }

// SaveState implements StatefulDevice: the duty-cycle phase machine is
// serialized in full so a restored fault resumes mid-phase.
func (f *IntermittentFault) SaveState(e *snapshot.Enc) {
	e.U64(f.Addr)
	e.U64(uint64(f.Bit))
	e.U64(uint64(f.Value))
	e.U64(f.OnCycles)
	e.U64(f.OffCycles)
	e.U64(f.Seed)
	e.Bool(f.on)
	e.U64(f.next)
	e.Bool(f.seeded)
	e.U64(f.rng)
}

// LoadState implements StatefulDevice. The stuck bit the fault may
// currently assert lives in Mem and is restored with the memory image;
// only the phase machine is restored here.
func (f *IntermittentFault) LoadState(d *snapshot.Dec) error {
	f.Addr = d.U64()
	f.Bit = uint(d.U64())
	f.Value = uint(d.U64())
	f.OnCycles = d.U64()
	f.OffCycles = d.U64()
	f.Seed = d.U64()
	f.on = d.Bool()
	f.next = d.U64()
	f.seeded = d.Bool()
	f.rng = d.U64()
	return d.Err()
}
