package machine

import (
	"rcoe/internal/isa"
	"rcoe/internal/metrics"
)

// This file implements the host-side execution cache for the busy hot
// loop: a per-core predecoded instruction cache plus a data translation
// memo (a software dTLB over AddrSpace.Segs). Both are memoisations of
// pure functions of simulated state and are provably invisible to it:
//
//   - The predecode cache is keyed on the virtual fetch address and folds
//     the whole fetch pipeline into one entry: the translation (validated
//     by address-space identity and generation — memoising the exact scan
//     result for the exact same inputs, so it is sound even for
//     overlapping layouts) and the decoded instruction (validated against
//     Mem's per-page mutation generations, so any write reaching
//     instruction bytes — a store from self-modifying code, an injected
//     bit-flip, a DMA burst, the re-integration partition copy — forces a
//     re-read and re-decode exactly as the naive loop performs on every
//     fetch).
//   - The data translation memo remembers the last matching segment per
//     access class and re-validates it (bounds, permission, address-space
//     generation) on every hit. Because data VAs vary, a memoised segment
//     only short-circuits the ordered scan when the layout is
//     overlap-free, in which case at most one segment can match any
//     virtual address and the memo result is identical to the scan's
//     first match by construction. Overlapping or wrapping layouts
//     disable the data memo and always scan.
//
// The cost model is untouched: cache/bus accounting (Core.memAccess) runs
// on the cached path at exactly the same points as on the naive path, so
// simulated cycles, stalls, and bus tokens are bit-identical — a contract
// enforced by the exec-cache differential determinism suite at the repo
// root, mirroring the fast-forward contract.

// icacheBits sizes the direct-mapped predecode cache: 1<<icacheBits
// entries, indexed by bits of the virtual fetch address. 4096 entries
// cover 32 KiB of straight-line text per core, beyond every shipped
// workload; collisions merely re-translate and re-decode.
const icacheBits = 12

// icacheEntry is one predecoded instruction with its memoised fetch
// translation. A hit requires (a) the same virtual PC under the same
// address space at the same generation — which pins the translation,
// since Translate is a pure function of (va, Segs) — and (b) unchanged
// mutation generations on the page(s) the instruction bytes span — which
// pins the decode.
type icacheEntry struct {
	pc    uint64 // virtual fetch address
	pa    uint64 // memoised translation of pc
	as    *AddrSpace
	asGen uint64
	nsegs int
	gen1  uint64 // pageGen of the first byte's page at fill time
	gen2  uint64 // pageGen of the last byte's page (== gen1 unless straddling)
	ins   isa.Instr
	valid bool
}

// tlbSlot memoises one segment lookup: "address space as, at generation
// gen with nsegs segments, resolved this access class through segment
// idx". A hit re-validates bounds and permission against the live
// segment, so the memo can never return a translation the scan would not.
type tlbSlot struct {
	as    *AddrSpace
	gen   uint64
	nsegs int
	idx   int
}

// valid reports whether the slot was filled from the current state of as.
func (s *tlbSlot) valid(as *AddrSpace) bool {
	return s.as == as && s.gen == as.gen && s.nsegs == len(as.Segs) && s.idx < len(as.Segs)
}

// dataSlots is the dTLB size. Slots are selected by hashing the virtual
// page so the text/data/stack/shared regions of the kernel layout land in
// distinct slots; a collision costs a re-scan, never correctness.
const dataSlots = 4

// execCache bundles a core's execution-cache state. It is allocated
// lazily on the first cached fetch, so halted cores (and machines running
// with the cache disabled) carry only a nil pointer.
type execCache struct {
	entries [1 << icacheBits]icacheEntry

	dataSlot [dataSlots]tlbSlot

	// overlap caches the overlap-free decision for the current address
	// space generation; see AddrSpace.overlapFree.
	overlap struct {
		as    *AddrSpace
		gen   uint64
		nsegs int
		free  bool
	}

	// Host-side diagnostics (see Machine.ExecCacheStats).
	decodeHits, decodeMisses uint64
	tlbHits, tlbMisses       uint64
}

// ecLazy returns the core's execution cache, allocating it on first use.
func (c *Core) ecLazy() *execCache {
	if c.ec == nil {
		c.ec = &execCache{}
	}
	return c.ec
}

// memoOK reports whether translation memoisation is sound for as (the
// segment layout is overlap-free), recomputing the cached decision when
// the address space changed.
func (ec *execCache) memoOK(as *AddrSpace) bool {
	o := &ec.overlap
	if o.as != as || o.gen != as.gen || o.nsegs != len(as.Segs) {
		o.as, o.gen, o.nsegs = as, as.gen, len(as.Segs)
		o.free = as.overlapFree()
	}
	return o.free
}

// translate resolves va for an n-byte access needing perm, through the
// given memo slot. The result — physical address and success — is
// bit-identical to AddrSpace.Translate: hits are taken only when the
// memoised segment still covers the access under an overlap-free layout,
// and every other case falls back to the ordered scan (refilling the
// slot on success).
func (ec *execCache) translate(as *AddrSpace, slot *tlbSlot, va uint64, n int, need Perm) (uint64, bool) {
	if !ec.memoOK(as) {
		ec.tlbMisses++
		pa, _, ok := as.Translate(va, n, need)
		return pa, ok
	}
	if slot.valid(as) {
		s := &as.Segs[slot.idx]
		end := va + uint64(n)
		if va >= s.VBase && end <= s.VBase+s.Size && end >= va {
			ec.tlbHits++
			if s.Perm&need != need {
				// Sole covering segment lacks the permission: the scan
				// would fault on it too.
				return 0, false
			}
			return s.PBase + (va - s.VBase), true
		}
	}
	ec.tlbMisses++
	pa, idx, ok := as.Translate(va, n, need)
	if ok {
		slot.as, slot.gen, slot.nsegs, slot.idx = as, as.gen, len(as.Segs), idx
	}
	return pa, ok
}

// dslot picks the dTLB slot for a data virtual address. Bits 20+ separate
// the loader's text/data/stack regions.
func (ec *execCache) dslot(va uint64) *tlbSlot {
	return &ec.dataSlot[(va>>20)&(dataSlots-1)]
}

// islot returns the direct-mapped predecode slot for a virtual PC.
func (ec *execCache) islot(pc uint64) *icacheEntry {
	return &ec.entries[(pc>>3)&(1<<icacheBits-1)]
}

// fetchHit returns pc's predecode entry when it hits under as against the
// current memory state, else nil. Small enough to inline into the
// execution loop's fast path.
func (ec *execCache) fetchHit(pc uint64, as *AddrSpace, mem *Mem) *icacheEntry {
	e := &ec.entries[(pc>>3)&(1<<icacheBits-1)]
	if e.hit(pc, as, mem) {
		return e
	}
	return nil
}

// hit reports whether e memoises fetching pc under as against the
// current memory state: translation pinned by address-space identity and
// generation, instruction bytes pinned by page mutation generations.
func (e *icacheEntry) hit(pc uint64, as *AddrSpace, mem *Mem) bool {
	if !e.valid || e.pc != pc || e.as != as || e.asGen != as.gen || e.nsegs != len(as.Segs) {
		return false
	}
	p1 := e.pa >> pageShift
	p2 := (e.pa + isa.InstrBytes - 1) >> pageShift
	return mem.pageGen[p1] == e.gen1 && (p1 == p2 || mem.pageGen[p2] == e.gen2)
}

// fill memoises a successful translate+read+decode of pc.
func (e *icacheEntry) fill(pc, pa uint64, as *AddrSpace, mem *Mem, ins isa.Instr) {
	p1 := pa >> pageShift
	p2 := (pa + isa.InstrBytes - 1) >> pageShift
	*e = icacheEntry{
		pc: pc, pa: pa,
		as: as, asGen: as.gen, nsegs: len(as.Segs),
		gen1: mem.pageGen[p1], gen2: mem.pageGen[p2],
		ins: ins, valid: true,
	}
}

// ExecCacheStats aggregates the execution cache's hit/miss counters
// across all cores of a machine, as internal/metrics counters. These are
// host-side diagnostics: they measure host work saved, necessarily differ
// between cache-on and cache-off runs, and are therefore deliberately not
// part of the replication layer's metric snapshot (which the differential
// determinism fingerprints compare bit-for-bit across modes).
type ExecCacheStats struct {
	// DecodeHits/DecodeMisses count fetches served by the predecode
	// cache (translation and decode both memoised) vs refilled.
	DecodeHits   metrics.Counter
	DecodeMisses metrics.Counter
	// TLBHits/TLBMisses count data translations served by the memo vs
	// resolved by the ordered segment scan.
	TLBHits   metrics.Counter
	TLBMisses metrics.Counter
}

// DecodeHitRate returns predecode hits over all fetches (0 when idle).
func (s *ExecCacheStats) DecodeHitRate() float64 {
	total := s.DecodeHits.Value() + s.DecodeMisses.Value()
	if total == 0 {
		return 0
	}
	return float64(s.DecodeHits.Value()) / float64(total)
}

// TLBHitRate returns translation-memo hits over all translations.
func (s *ExecCacheStats) TLBHitRate() float64 {
	total := s.TLBHits.Value() + s.TLBMisses.Value()
	if total == 0 {
		return 0
	}
	return float64(s.TLBHits.Value()) / float64(total)
}

// ExecCacheStats returns the machine-wide execution-cache counters.
func (m *Machine) ExecCacheStats() ExecCacheStats {
	var s ExecCacheStats
	for _, c := range m.cores {
		if c.ec == nil {
			continue
		}
		s.DecodeHits.Add(c.ec.decodeHits)
		s.DecodeMisses.Add(c.ec.decodeMisses)
		s.TLBHits.Add(c.ec.tlbHits)
		s.TLBMisses.Add(c.ec.tlbMisses)
	}
	return s
}
