module rcoe

go 1.22
