package rcoe_test

import (
	"bytes"
	"fmt"
	"testing"

	"rcoe"
	"rcoe/internal/core"
	"rcoe/internal/harness"
	"rcoe/internal/snapshot"
	"rcoe/internal/workload"
)

// These tests are the checkpoint/restore determinism contract: saving a
// mid-run checkpoint must not perturb the run (checkpoint-continue), a
// fresh system restored from the checkpoint must finish bit-identically
// to the straight run (restore-run), and re-serializing a restored
// system must reproduce the checkpoint byte for byte. The matrix crosses
// replication scenarios with every host-optimisation combination: the
// accelerators live outside the snapshot boundary, so a checkpoint taken
// under one combination is byte-identical to one taken under any other
// at the same cycle.

// runToEnd drives sys to completion and fingerprints it.
func runToEnd(t *testing.T, sys *rcoe.System) string {
	t.Helper()
	if err := sys.Run(500_000_000); err != nil {
		t.Fatal(err)
	}
	return systemFingerprint(sys)
}

func TestSnapshotDeterminismMatrix(t *testing.T) {
	scenarios := []struct {
		name string
		cfg  rcoe.Config
		prog rcoe.Program
	}{
		{"base/dhrystone",
			rcoe.Config{Mode: rcoe.ModeNone, Replicas: 1, TickCycles: 20_000},
			rcoe.Dhrystone(200)},
		{"lc-tmr-traced/dhrystone",
			rcoe.Config{Mode: rcoe.ModeLC, Replicas: 3, Masking: true, TickCycles: 20_000,
				Trace: core.TraceConfig{Enabled: true, RingEvents: 1024}},
			rcoe.Dhrystone(200)},
		{"lc-dmr/whetstone",
			rcoe.Config{Mode: rcoe.ModeLC, Replicas: 2, TickCycles: 20_000},
			rcoe.Whetstone(20)},
		{"cc-dmr/dhrystone",
			rcoe.Config{Mode: rcoe.ModeCC, Replicas: 2, TickCycles: 20_000},
			rcoe.Dhrystone(200)},
		{"lc-tmr-decorrelated/dhrystone",
			rcoe.Config{Mode: rcoe.ModeLC, Replicas: 3, Masking: true, TickCycles: 20_000,
				Decorrelate: true, LayoutSeed: 7},
			rcoe.Dhrystone(200)},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			build := func(v hostVariant) *rcoe.System {
				cfg := sc.cfg
				v.apply(&cfg)
				sys, err := rcoe.BuildSystem(cfg, sc.prog)
				if err != nil {
					t.Fatal(err)
				}
				return sys
			}
			// The baseline straight run fixes the expected fingerprint and
			// the mid-run checkpoint cycle.
			base := build(hostVariants[0])
			want := runToEnd(t, base)
			half := base.Machine().Now() / 2

			var baseCp []byte
			for _, v := range hostVariants {
				t.Run(v.name, func(t *testing.T) {
					// Checkpoint-continue: saving must not perturb the run.
					ck := build(v)
					ck.RunCycles(half)
					if ck.Finished() {
						t.Fatalf("checkpoint cycle %d is not mid-run", half)
					}
					cp, err := snapshot.Save(ck)
					if err != nil {
						t.Fatal(err)
					}
					if baseCp == nil {
						baseCp = cp
					} else if !bytes.Equal(baseCp, cp) {
						sa, _ := snapshot.Parse(baseCp)
						sb, _ := snapshot.Parse(cp)
						t.Fatalf("checkpoint bytes depend on the host accelerators:\n%v",
							snapshot.Diff(sa, sb))
					}
					assertIdentical(t, sc.name+"/"+v.name+"/checkpoint-continue",
						want, runToEnd(t, ck))

					// Restore-run: a fresh system restored from the baseline's
					// checkpoint must re-serialize byte-identically and finish
					// on the straight run's fingerprint.
					rs := build(v)
					if err := snapshot.Restore(rs, baseCp); err != nil {
						t.Fatal(err)
					}
					resave, err := snapshot.Save(rs)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(baseCp, resave) {
						t.Fatal("save -> restore -> save round trip is not byte-identical")
					}
					assertIdentical(t, sc.name+"/"+v.name+"/restore-run",
						want, runToEnd(t, rs))
				})
			}
		})
	}
}

// TestSnapshotRestoreBackwardsLive checkpoints a live system at an odd
// cycle offset (deliberately not a multiple of the simulated core
// count, so the round-robin service pointer is mid-rotation), runs it
// well past the next preemption-timer edge, then restores the same —
// still live — system backwards onto its own checkpoint. The rewound
// run must finish on the straight run's fingerprint under every
// accelerator combination: Restore must rebuild every piece of derived
// host state (the memoized timer next-edge, the rotation pointer, the
// fast-forward/exec-cache/superblock caches) rather than trusting what
// the overshoot left behind.
func TestSnapshotRestoreBackwardsLive(t *testing.T) {
	// A short timer period guarantees the run crosses many edges, so
	// both the checkpoint and the overshoot land mid-period.
	cfg := rcoe.Config{Mode: rcoe.ModeLC, Replicas: 3, Masking: true, TickCycles: 3_000}
	prog := rcoe.Dhrystone(500)
	build := func(v hostVariant) *rcoe.System {
		c := cfg
		v.apply(&c)
		sys, err := rcoe.BuildSystem(c, prog)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	base := build(hostVariants[0])
	want := runToEnd(t, base)
	k := base.Machine().Now()/2 | 1
	for _, v := range hostVariants {
		t.Run(v.name, func(t *testing.T) {
			sys := build(v)
			sys.RunCycles(k)
			if got := sys.Machine().Now(); got != k {
				t.Fatalf("checkpoint cycle drifted: Now()=%d, want %d", got, k)
			}
			cp, err := snapshot.Save(sys)
			if err != nil {
				t.Fatal(err)
			}
			// Overshoot just past the next preemption-timer edge so the
			// memoized next-edge and the rotation pointer are stale
			// relative to the checkpoint when we rewind, without running
			// the short workload to completion.
			sys.RunCycles(cfg.TickCycles - k%cfg.TickCycles + 1_235)
			if sys.Finished() {
				t.Fatal("overshoot ran to completion; pick an earlier checkpoint")
			}
			if err := snapshot.Restore(sys, cp); err != nil {
				t.Fatal(err)
			}
			if got := sys.Machine().Now(); got != k {
				t.Fatalf("restore left Now()=%d, want %d", got, k)
			}
			assertIdentical(t, "restore-backwards/"+v.name, want, runToEnd(t, sys))
		})
	}
}

// TestSnapshotDeterminismKV runs the same three-way contract on the full
// KV stack — NIC DMA queues, in-flight client requests, workload
// generator — checkpointed at the end of the preload phase, with
// structural decorrelation both off and on.
func TestSnapshotDeterminismKV(t *testing.T) {
	for _, decorr := range []bool{false, true} {
		name := "correlated"
		if decorr {
			name = "decorrelated"
		}
		t.Run(name, func(t *testing.T) {
			opts := harness.KVOptions{
				System: core.Config{
					Mode: core.ModeLC, Replicas: 3, Masking: true, TickCycles: 50_000,
					Decorrelate: decorr, LayoutSeed: 9,
					Trace: core.TraceConfig{Enabled: true, RingEvents: 2048},
				},
				Workload:    workload.YCSBA,
				Records:     24,
				Operations:  120,
				TraceOutput: true,
				Seed:        5,
			}
			newRun := func() *harness.KVRun {
				run, err := harness.NewKV(opts)
				if err != nil {
					t.Fatal(err)
				}
				return run
			}
			finish := func(run *harness.KVRun) string {
				res, err := run.Run()
				if err != nil {
					t.Fatal(err)
				}
				return fmt.Sprintf("ops=%d cycles=%d corrupt=%d errors=%d finished=%v\n%s",
					res.Ops, res.Cycles, res.Corruptions, res.Errors, res.Finished,
					systemFingerprint(run.Sys))
			}
			want := finish(newRun())

			ck := newRun()
			for !ck.LoadPhaseDone() {
				if halted, reason := ck.Sys.Halted(); halted {
					t.Fatalf("halted during preload: %s", reason)
				}
				// Match Run()'s 2_000-cycle client pump cadence: the chunk
				// size is part of the workload's timing, not host-side state.
				ck.StepChunk(2_000)
			}
			cp, err := snapshot.Save(ck)
			if err != nil {
				t.Fatal(err)
			}
			assertIdentical(t, "kv/"+name+"/checkpoint-continue", want, finish(ck))

			rs := newRun()
			if err := snapshot.Restore(rs, cp); err != nil {
				t.Fatal(err)
			}
			resave, err := snapshot.Save(rs)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(cp, resave) {
				t.Fatal("save -> restore -> save round trip is not byte-identical")
			}
			assertIdentical(t, "kv/"+name+"/restore-run", want, finish(rs))
		})
	}
}
