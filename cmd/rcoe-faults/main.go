// rcoe-faults runs standalone fault-injection campaigns against the
// replicated key-value system.
//
// Usage:
//
//	rcoe-faults [-mode base|lc|cc] [-replicas N] [-arch x86|arm]
//	            [-trials N] [-burst N] [-no-trace] [-seed N]
//
// It prints a per-outcome tally in the categories of the paper's
// Tables VII/IX, with the controlled/uncontrolled split.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"rcoe/internal/core"
	"rcoe/internal/faults"
	"rcoe/internal/harness"
	"rcoe/internal/machine"
	"rcoe/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	mode := flag.String("mode", "lc", "replication mode: base, lc or cc")
	replicas := flag.Int("replicas", 2, "replica count (1 for base, 2-3 otherwise)")
	arch := flag.String("arch", "x86", "machine profile: x86 or arm")
	trials := flag.Int("trials", 20, "number of injection trials")
	burst := flag.Int("burst", 1, "bits per injection (>1 models overclocking)")
	noTrace := flag.Bool("no-trace", false, "disable driver output traces (the -N configurations)")
	seed := flag.Uint64("seed", 1, "campaign seed")
	ops := flag.Uint64("ops", 150, "client operations per trial")
	flag.Parse()

	var m core.Mode
	switch *mode {
	case "base":
		m = core.ModeNone
		*replicas = 1
	case "lc":
		m = core.ModeLC
	case "cc":
		m = core.ModeCC
	default:
		fmt.Fprintf(os.Stderr, "rcoe-faults: unknown mode %q\n", *mode)
		return 2
	}
	var prof machine.Profile
	switch *arch {
	case "x86":
		prof = machine.X86()
	case "arm":
		prof = machine.Arm()
	default:
		fmt.Fprintf(os.Stderr, "rcoe-faults: unknown arch %q\n", *arch)
		return 2
	}

	tally, err := faults.MemCampaign(faults.MemCampaignOptions{
		KV: harness.KVOptions{
			System: core.Config{
				Mode: m, Replicas: *replicas, Profile: prof,
				TickCycles:        50_000,
				ExceptionBarriers: prof.Name == "arm",
			},
			Workload:    workload.YCSBA,
			Records:     32,
			Operations:  *ops,
			TraceOutput: !*noTrace,
		},
		Trials:            *trials,
		FlipEveryCycles:   2_000,
		MaxFlips:          4_000,
		TargetAllReplicas: prof.Name == "arm",
		IncludeDMA:        true,
		Burst:             *burst,
		Seed:              *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcoe-faults: %v\n", err)
		return 1
	}

	fmt.Printf("campaign: %s-%d on %s, %d trials, %d bit flips\n",
		*mode, *replicas, *arch, *trials, tally.Injected)
	var keys []faults.Outcome
	for o := range tally.Counts {
		keys = append(keys, o)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, o := range keys {
		fmt.Printf("  %-20s %d\n", o.String(), tally.Counts[o])
	}
	fmt.Printf("observed errors: %d  controlled: %d  uncontrolled: %d\n",
		tally.Observed(), tally.Controlled(), tally.Uncontrolled())
	return 0
}
