// rcoe-faults runs standalone fault-injection campaigns against the
// replicated key-value system.
//
// Usage:
//
//	rcoe-faults [-mode base|lc|cc] [-replicas N] [-arch x86|arm]
//	            [-trials N] [-burst N] [-no-trace] [-seed N] [-warm]
//	            [-parallel N] [-json] [-out FILE]
//	rcoe-faults soak [-cycles N] [-campaigns N] [-seed N] [-window N]
//	                 [-budget N] [-parallel N] [-json] [-quiet]
//	rcoe-faults taxonomy [-mode lc|cc] [-replicas N] [-arch x86|arm]
//	                     [-classes LIST] [-trials N] [-decorrelate]
//	                     [-masking] [-seed N] [-warm] [-parallel N]
//	                     [-json] [-out FILE] [-quiet]
//
// The default campaign prints a per-outcome tally in the categories of
// the paper's Tables VII/IX, with the controlled/uncontrolled split. The
// soak subcommand drives the chaos-soak campaign: randomized fault
// cycles (memory flips, register flips, injected stalls) against a
// masking TMR system, with straggler ejection and live re-integration
// after every downgrade. -campaigns N sweeps N independent campaigns
// (seeds derived from -seed) fanned across host cores.
//
// The taxonomy subcommand runs the hard-fault characterization study:
// per fault class (transient, stuck-at, burst, intermittent, device) it
// tallies trial outcomes and folds them into the dependability taxonomy —
// SDC / detected-corrected / detected-uncorrected / masked. -classes
// selects a comma-separated subset ("all" by default); -decorrelate runs
// the replicas under structurally decorrelated memory layouts. Per-class
// progress goes to stderr; stdout stays a timing-free artifact.
//
// -parallel sets the host worker count of the experiment engine; worker
// count never changes results. -json emits a structured result artifact
// on stdout (no host timings, byte-reproducible) with logs on stderr.
// -out writes the artifact (text or JSON) to a file instead; the path's
// writability is checked before the campaign runs, so a bad path fails
// immediately. -warm forks every trial from a single post-preload
// checkpoint instead of cold-booting each (see internal/faults
// warm-start docs; warm and cold campaigns sample different workload
// streams, so their tallies are not comparable to each other).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"rcoe/internal/core"
	"rcoe/internal/exp"
	"rcoe/internal/faults"
	"rcoe/internal/harness"
	"rcoe/internal/machine"
	"rcoe/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	if len(os.Args) > 1 && os.Args[1] == "soak" {
		return runSoak(os.Args[2:])
	}
	if len(os.Args) > 1 && os.Args[1] == "taxonomy" {
		return runTaxonomy(os.Args[2:])
	}
	return runMemCampaign(os.Args[1:])
}

// tallyCounts converts a tally's outcome map to string keys, which
// encoding/json emits in sorted order — a deterministic artifact.
func tallyCounts(t *faults.Tally) map[string]uint64 {
	counts := map[string]uint64{}
	for o, n := range t.Counts {
		counts[o.String()] = n
	}
	return counts
}

// sortedOutcomes returns the tally's outcomes in stable order for text
// output.
func sortedOutcomes(t *faults.Tally) []faults.Outcome {
	var keys []faults.Outcome
	for o := range t.Counts {
		keys = append(keys, o)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// preflightOut verifies an -out path is writable before the campaign
// runs, so a bad path fails in milliseconds instead of after the study
// (and never leaves a half-written artifact behind).
func preflightOut(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	return f.Close()
}

// writeArtifact writes the rendered artifact to -out, or stdout when no
// path is given. Write and close failures both surface.
func writeArtifact(path string, data []byte) error {
	if path == "" {
		_, err := os.Stdout.Write(data)
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// emitJSON renders v as the indented JSON artifact and writes it to -out
// (or stdout).
func emitJSON(path string, v any) int {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcoe-faults: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if err := writeArtifact(path, data); err != nil {
		fmt.Fprintf(os.Stderr, "rcoe-faults: %v\n", err)
		return 1
	}
	return 0
}

func runMemCampaign(args []string) int {
	fs := flag.NewFlagSet("rcoe-faults", flag.ExitOnError)
	mode := fs.String("mode", "lc", "replication mode: base, lc or cc")
	replicas := fs.Int("replicas", 2, "replica count (1 for base, 2-3 otherwise)")
	arch := fs.String("arch", "x86", "machine profile: x86 or arm")
	trials := fs.Int("trials", 20, "number of injection trials")
	burst := fs.Int("burst", 1, "bits per injection (>1 models overclocking)")
	noTrace := fs.Bool("no-trace", false, "disable driver output traces (the -N configurations)")
	seed := fs.Uint64("seed", 1, "campaign seed")
	ops := fs.Uint64("ops", 150, "client operations per trial")
	warm := fs.Bool("warm", false, "fork trials from a post-preload checkpoint instead of cold-booting each")
	parallel := fs.Int("parallel", 0, "host workers for the experiment engine (0 = all cores)")
	jsonOut := fs.Bool("json", false, "emit a structured JSON result on stdout")
	outFile := fs.String("out", "", "write the artifact (text or JSON) to FILE")
	_ = fs.Parse(args)
	exp.SetDefaultWorkers(*parallel)

	var m core.Mode
	switch *mode {
	case "base":
		m = core.ModeNone
		*replicas = 1
	case "lc":
		m = core.ModeLC
	case "cc":
		m = core.ModeCC
	default:
		fmt.Fprintf(os.Stderr, "rcoe-faults: unknown mode %q\n", *mode)
		return 2
	}
	var prof machine.Profile
	switch *arch {
	case "x86":
		prof = machine.X86()
	case "arm":
		prof = machine.Arm()
	default:
		fmt.Fprintf(os.Stderr, "rcoe-faults: unknown arch %q\n", *arch)
		return 2
	}
	if err := preflightOut(*outFile); err != nil {
		fmt.Fprintf(os.Stderr, "rcoe-faults: -out: %v\n", err)
		return 1
	}

	tally, err := faults.MemCampaign(faults.MemCampaignOptions{
		KV: harness.KVOptions{
			System: core.Config{
				Mode: m, Replicas: *replicas, Profile: prof,
				TickCycles:        50_000,
				ExceptionBarriers: prof.Name == "arm",
			},
			Workload:    workload.YCSBA,
			Records:     32,
			Operations:  *ops,
			TraceOutput: !*noTrace,
		},
		Trials:            *trials,
		FlipEveryCycles:   2_000,
		MaxFlips:          4_000,
		TargetAllReplicas: prof.Name == "arm",
		IncludeDMA:        true,
		Burst:             *burst,
		Seed:              *seed,
		WarmStart:         *warm,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcoe-faults: %v\n", err)
		return 1
	}

	if *jsonOut {
		return emitJSON(*outFile, struct {
			Schema       string            `json:"schema"`
			Mode         string            `json:"mode"`
			Replicas     int               `json:"replicas"`
			Arch         string            `json:"arch"`
			Trials       int               `json:"trials"`
			Seed         uint64            `json:"seed"`
			Warm         bool              `json:"warm"`
			Injected     uint64            `json:"injected"`
			Outcomes     map[string]uint64 `json:"outcomes"`
			Observed     uint64            `json:"observed"`
			Controlled   uint64            `json:"controlled"`
			Uncontrolled uint64            `json:"uncontrolled"`
		}{
			Schema: "rcoe-faults/mem/v1", Mode: *mode, Replicas: *replicas,
			Arch: *arch, Trials: *trials, Seed: *seed, Warm: *warm,
			Injected: tally.Injected, Outcomes: tallyCounts(tally),
			Observed: tally.Observed(), Controlled: tally.Controlled(),
			Uncontrolled: tally.Uncontrolled(),
		})
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "campaign: %s-%d on %s, %d trials, %d bit flips\n",
		*mode, *replicas, *arch, *trials, tally.Injected)
	for _, o := range sortedOutcomes(tally) {
		fmt.Fprintf(&sb, "  %-20s %d\n", o.String(), tally.Counts[o])
	}
	fmt.Fprintf(&sb, "observed errors: %d  controlled: %d  uncontrolled: %d\n",
		tally.Observed(), tally.Controlled(), tally.Uncontrolled())
	if err := writeArtifact(*outFile, []byte(sb.String())); err != nil {
		fmt.Fprintf(os.Stderr, "rcoe-faults: %v\n", err)
		return 1
	}
	return 0
}

// classReport is one fault class's slice of the taxonomy artifact.
type classReport struct {
	Trials     int               `json:"trials"`
	Injected   uint64            `json:"injected"`
	Outcomes   map[string]uint64 `json:"outcomes"`
	Categories map[string]uint64 `json:"categories"`
}

func runTaxonomy(args []string) int {
	fs := flag.NewFlagSet("rcoe-faults taxonomy", flag.ExitOnError)
	mode := fs.String("mode", "lc", "replication mode: lc or cc")
	replicas := fs.Int("replicas", 3, "replica count (2-3)")
	arch := fs.String("arch", "x86", "machine profile: x86 or arm")
	classes := fs.String("classes", "all", "comma-separated fault classes (transient, stuck-at, burst, intermittent, device) or all")
	trials := fs.Int("trials", 10, "injection trials per class")
	decorrelate := fs.Bool("decorrelate", false, "run replicas under structurally decorrelated layouts")
	masking := fs.Bool("masking", true, "allow a TMR system to vote faulty replicas out")
	seed := fs.Uint64("seed", 1, "campaign seed")
	ops := fs.Uint64("ops", 150, "client operations per trial")
	warm := fs.Bool("warm", false, "fork trials from a post-preload checkpoint instead of cold-booting each")
	parallel := fs.Int("parallel", 0, "host workers for the experiment engine (0 = all cores)")
	jsonOut := fs.Bool("json", false, "emit a structured JSON result on stdout (progress on stderr)")
	outFile := fs.String("out", "", "write the artifact (text or JSON) to FILE")
	quiet := fs.Bool("quiet", false, "suppress the progress log")
	_ = fs.Parse(args)
	exp.SetDefaultWorkers(*parallel)

	var m core.Mode
	switch *mode {
	case "lc":
		m = core.ModeLC
	case "cc":
		m = core.ModeCC
	default:
		fmt.Fprintf(os.Stderr, "rcoe-faults taxonomy: unknown mode %q\n", *mode)
		return 2
	}
	var prof machine.Profile
	switch *arch {
	case "x86":
		prof = machine.X86()
	case "arm":
		prof = machine.Arm()
	default:
		fmt.Fprintf(os.Stderr, "rcoe-faults taxonomy: unknown arch %q\n", *arch)
		return 2
	}
	selected, err := faults.ParseClasses(*classes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcoe-faults taxonomy: %v\n", err)
		return 2
	}
	if err := preflightOut(*outFile); err != nil {
		fmt.Fprintf(os.Stderr, "rcoe-faults taxonomy: -out: %v\n", err)
		return 1
	}

	opts := faults.HardCampaignOptions{
		KV: harness.KVOptions{
			System: core.Config{
				Mode: m, Replicas: *replicas, Profile: prof,
				Masking:           *masking && *replicas >= 3,
				Decorrelate:       *decorrelate,
				TickCycles:        50_000,
				ExceptionBarriers: prof.Name == "arm",
			},
			Workload:    workload.YCSBA,
			Records:     32,
			Operations:  *ops,
			TraceOutput: true,
		},
		Classes:           selected,
		TrialsPerClass:    *trials,
		TargetAllReplicas: prof.Name == "arm",
		Seed:              *seed,
		WarmStart:         *warm,
	}
	if !*quiet {
		opts.TrialProgress = func(class faults.FaultClass, p exp.Progress) {
			fmt.Fprintf(os.Stderr, "rcoe-faults taxonomy: %-12s trial %d/%d\n",
				class, p.Done, p.Total)
		}
		opts.Progress = func(class faults.FaultClass, done, total int) {
			fmt.Fprintf(os.Stderr, "rcoe-faults taxonomy: %-12s done (%d/%d classes, %d trials each)\n",
				class, done, total, *trials)
		}
	}
	tallies, err := faults.HardCampaign(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcoe-faults taxonomy: %v\n", err)
		return 1
	}

	categoryCounts := func(t *faults.Tally) map[string]uint64 {
		out := map[string]uint64{}
		for c, n := range t.Categories() {
			out[c.String()] = n
		}
		return out
	}
	if *jsonOut {
		perClass := map[string]classReport{}
		total := map[string]uint64{}
		for class, t := range tallies {
			perClass[class.String()] = classReport{
				Trials: *trials, Injected: t.Injected,
				Outcomes: tallyCounts(t), Categories: categoryCounts(t),
			}
			for c, n := range t.Categories() {
				total[c.String()] += n
			}
		}
		return emitJSON(*outFile, struct {
			Schema      string                 `json:"schema"`
			Mode        string                 `json:"mode"`
			Replicas    int                    `json:"replicas"`
			Arch        string                 `json:"arch"`
			Masking     bool                   `json:"masking"`
			Decorrelate bool                   `json:"decorrelate"`
			Trials      int                    `json:"trials_per_class"`
			Seed        uint64                 `json:"seed"`
			Warm        bool                   `json:"warm"`
			Classes     map[string]classReport `json:"classes"`
			Categories  map[string]uint64      `json:"categories"`
		}{
			Schema: "rcoe-faults/taxonomy/v1", Mode: *mode, Replicas: *replicas,
			Arch: *arch, Masking: opts.KV.System.Masking, Decorrelate: *decorrelate,
			Trials: *trials, Seed: *seed, Warm: *warm,
			Classes: perClass, Categories: total,
		})
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "taxonomy: %s-%d on %s, %d trials/class, decorrelate=%v masking=%v\n",
		*mode, *replicas, *arch, *trials, *decorrelate, opts.KV.System.Masking)
	for _, class := range selected {
		t := tallies[class]
		fmt.Fprintf(&sb, "%s (%d injections):\n", class, t.Injected)
		for _, o := range sortedOutcomes(t) {
			fmt.Fprintf(&sb, "  %-20s %-4d -> %s\n", o.String(), t.Counts[o], faults.Categorize(o))
		}
	}
	total := map[faults.Category]uint64{}
	for _, t := range tallies {
		for c, n := range t.Categories() {
			total[c] += n
		}
	}
	fmt.Fprintln(&sb, "taxonomy totals:")
	for _, c := range faults.AllCategories() {
		fmt.Fprintf(&sb, "  %-22s %d\n", c.String(), total[c])
	}
	if err := writeArtifact(*outFile, []byte(sb.String())); err != nil {
		fmt.Fprintf(os.Stderr, "rcoe-faults taxonomy: %v\n", err)
		return 1
	}
	return 0
}

func runSoak(args []string) int {
	fs := flag.NewFlagSet("rcoe-faults soak", flag.ExitOnError)
	cycles := fs.Int("cycles", 20, "fault cycles to run")
	campaigns := fs.Int("campaigns", 1, "independent campaigns to sweep in parallel")
	seed := fs.Uint64("seed", 1, "campaign seed (sweep master seed with -campaigns > 1)")
	window := fs.Uint64("window", 2_000_000, "availability window in cycles")
	budget := fs.Uint64("budget", 40_000_000, "cycle budget per fault cycle")
	parallel := fs.Int("parallel", 0, "host workers for the experiment engine (0 = all cores)")
	jsonOut := fs.Bool("json", false, "emit a structured JSON result on stdout (logs go to stderr)")
	quiet := fs.Bool("quiet", false, "suppress the per-cycle log")
	_ = fs.Parse(args)
	exp.SetDefaultWorkers(*parallel)

	opts := faults.SoakSweepOptions{
		Soak: faults.SoakOptions{
			Cycles:       *cycles,
			Seed:         *seed,
			WindowCycles: *window,
			CycleBudget:  *budget,
		},
		Campaigns: *campaigns,
	}
	if !*quiet {
		logOut := os.Stdout
		if *jsonOut {
			logOut = os.Stderr // keep stdout clean for the artifact
		}
		opts.Soak.Log = func(line string) { fmt.Fprintln(logOut, line) }
	}
	res, err := faults.SoakSweep(opts)
	if err != nil && !*jsonOut {
		if errors.Is(err, faults.ErrNoEjection) {
			fmt.Fprintf(os.Stderr, "rcoe-faults soak: straggler ejection failed: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "rcoe-faults soak: %v\n", err)
		}
		return 1
	}

	if *jsonOut {
		violations := res.Violations
		if violations == nil {
			violations = []string{}
		}
		code := emitJSON("", struct {
			Schema         string            `json:"schema"`
			Campaigns      int               `json:"campaigns"`
			CyclesEach     int               `json:"cycles_each"`
			Seed           uint64            `json:"seed"`
			Seeds          []uint64          `json:"seeds"`
			Outcomes       map[string]uint64 `json:"outcomes"`
			Ops            uint64            `json:"ops"`
			Errors         uint64            `json:"errors"`
			Corruptions    uint64            `json:"corruptions"`
			Ejections      uint64            `json:"ejections"`
			Reintegrations uint64            `json:"reintegrations"`
			Violations     []string          `json:"violations"`
			Ok             bool              `json:"ok"`
		}{
			Schema: "rcoe-faults/soak/v1", Campaigns: len(res.Campaigns),
			CyclesEach: *cycles, Seed: *seed, Seeds: res.Seeds,
			Outcomes: tallyCounts(res.Tally), Ops: res.Ops, Errors: res.Errors,
			Corruptions: res.Corruptions, Ejections: res.Ejections,
			Reintegrations: res.Reintegrations, Violations: violations, Ok: res.Ok(),
		})
		if code != 0 || err != nil || !res.Ok() {
			return 1
		}
		return 0
	}

	fmt.Printf("soak: %d campaigns x %d cycles, seed %#x\n", len(res.Campaigns), *cycles, *seed)
	for _, o := range sortedOutcomes(res.Tally) {
		fmt.Printf("  %-20s %d\n", o.String(), res.Tally.Counts[o])
	}
	fmt.Printf("client ops: %d  errors: %d  corruptions: %d\n",
		res.Ops, res.Errors, res.Corruptions)
	fmt.Printf("ejections: %d  reintegrations: %d\n", res.Ejections, res.Reintegrations)
	for ci := range res.Campaigns {
		c := &res.Campaigns[ci]
		fmt.Printf("campaign %d: windows: %d  min window: %.1f ops/Mcycle\n",
			ci, len(c.Windows), c.MinWindow)
	}
	if len(res.Campaigns) == 1 {
		fmt.Println()
		fmt.Println(res.Campaigns[0].Metrics.Table("soak metrics (cycles unless noted)"))
	}
	if !res.Ok() {
		fmt.Println("invariant violations:")
		for _, v := range res.Violations {
			fmt.Printf("  %s\n", v)
		}
		for ci := range res.Campaigns {
			for _, rep := range res.Campaigns[ci].Forensics {
				fmt.Println()
				fmt.Println(rep)
			}
		}
		return 1
	}
	fmt.Println("invariants held: all outcomes controlled, client progressed in every window")
	return 0
}
