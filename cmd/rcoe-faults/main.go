// rcoe-faults runs standalone fault-injection campaigns against the
// replicated key-value system.
//
// Usage:
//
//	rcoe-faults [-mode base|lc|cc] [-replicas N] [-arch x86|arm]
//	            [-trials N] [-burst N] [-no-trace] [-seed N]
//	rcoe-faults soak [-cycles N] [-seed N] [-window N] [-budget N] [-quiet]
//
// The default campaign prints a per-outcome tally in the categories of
// the paper's Tables VII/IX, with the controlled/uncontrolled split. The
// soak subcommand drives the chaos-soak campaign: randomized fault
// cycles (memory flips, register flips, injected stalls) against a
// masking TMR system, with straggler ejection and live re-integration
// after every downgrade.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"

	"rcoe/internal/core"
	"rcoe/internal/faults"
	"rcoe/internal/harness"
	"rcoe/internal/machine"
	"rcoe/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	if len(os.Args) > 1 && os.Args[1] == "soak" {
		return runSoak(os.Args[2:])
	}
	return runMemCampaign(os.Args[1:])
}

func runMemCampaign(args []string) int {
	fs := flag.NewFlagSet("rcoe-faults", flag.ExitOnError)
	mode := fs.String("mode", "lc", "replication mode: base, lc or cc")
	replicas := fs.Int("replicas", 2, "replica count (1 for base, 2-3 otherwise)")
	arch := fs.String("arch", "x86", "machine profile: x86 or arm")
	trials := fs.Int("trials", 20, "number of injection trials")
	burst := fs.Int("burst", 1, "bits per injection (>1 models overclocking)")
	noTrace := fs.Bool("no-trace", false, "disable driver output traces (the -N configurations)")
	seed := fs.Uint64("seed", 1, "campaign seed")
	ops := fs.Uint64("ops", 150, "client operations per trial")
	_ = fs.Parse(args)

	var m core.Mode
	switch *mode {
	case "base":
		m = core.ModeNone
		*replicas = 1
	case "lc":
		m = core.ModeLC
	case "cc":
		m = core.ModeCC
	default:
		fmt.Fprintf(os.Stderr, "rcoe-faults: unknown mode %q\n", *mode)
		return 2
	}
	var prof machine.Profile
	switch *arch {
	case "x86":
		prof = machine.X86()
	case "arm":
		prof = machine.Arm()
	default:
		fmt.Fprintf(os.Stderr, "rcoe-faults: unknown arch %q\n", *arch)
		return 2
	}

	tally, err := faults.MemCampaign(faults.MemCampaignOptions{
		KV: harness.KVOptions{
			System: core.Config{
				Mode: m, Replicas: *replicas, Profile: prof,
				TickCycles:        50_000,
				ExceptionBarriers: prof.Name == "arm",
			},
			Workload:    workload.YCSBA,
			Records:     32,
			Operations:  *ops,
			TraceOutput: !*noTrace,
		},
		Trials:            *trials,
		FlipEveryCycles:   2_000,
		MaxFlips:          4_000,
		TargetAllReplicas: prof.Name == "arm",
		IncludeDMA:        true,
		Burst:             *burst,
		Seed:              *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcoe-faults: %v\n", err)
		return 1
	}

	fmt.Printf("campaign: %s-%d on %s, %d trials, %d bit flips\n",
		*mode, *replicas, *arch, *trials, tally.Injected)
	var keys []faults.Outcome
	for o := range tally.Counts {
		keys = append(keys, o)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, o := range keys {
		fmt.Printf("  %-20s %d\n", o.String(), tally.Counts[o])
	}
	fmt.Printf("observed errors: %d  controlled: %d  uncontrolled: %d\n",
		tally.Observed(), tally.Controlled(), tally.Uncontrolled())
	return 0
}

func runSoak(args []string) int {
	fs := flag.NewFlagSet("rcoe-faults soak", flag.ExitOnError)
	cycles := fs.Int("cycles", 20, "fault cycles to run")
	seed := fs.Uint64("seed", 1, "campaign seed")
	window := fs.Uint64("window", 2_000_000, "availability window in cycles")
	budget := fs.Uint64("budget", 40_000_000, "cycle budget per fault cycle")
	quiet := fs.Bool("quiet", false, "suppress the per-cycle log")
	_ = fs.Parse(args)

	opts := faults.SoakOptions{
		Cycles:       *cycles,
		Seed:         *seed,
		WindowCycles: *window,
		CycleBudget:  *budget,
	}
	if !*quiet {
		opts.Log = func(line string) { fmt.Println(line) }
	}
	res, err := faults.Soak(opts)
	if err != nil {
		if errors.Is(err, faults.ErrNoEjection) {
			fmt.Fprintf(os.Stderr, "rcoe-faults soak: straggler ejection failed: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "rcoe-faults soak: %v\n", err)
		}
		return 1
	}

	fmt.Printf("soak: %d cycles, seed %#x\n", len(res.Cycles), *seed)
	var keys []faults.Outcome
	for o := range res.Tally.Counts {
		keys = append(keys, o)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, o := range keys {
		fmt.Printf("  %-20s %d\n", o.String(), res.Tally.Counts[o])
	}
	fmt.Printf("client ops: %d  errors: %d  corruptions: %d\n",
		res.Ops, res.Errors, res.Corruptions)
	fmt.Printf("ejections: %d  reintegrations: %d  windows: %d  min window: %.1f ops/Mcycle\n",
		res.Ejections, res.Reintegrations, len(res.Windows), res.MinWindow)
	fmt.Println()
	fmt.Println(res.Metrics.Table("soak metrics (cycles unless noted)"))
	if !res.Ok() {
		fmt.Println("invariant violations:")
		for _, v := range res.Violations {
			fmt.Printf("  %s\n", v)
		}
		for _, rep := range res.Forensics {
			fmt.Println()
			fmt.Println(rep)
		}
		return 1
	}
	fmt.Println("invariants held: all outcomes controlled, client progressed in every window")
	return 0
}
