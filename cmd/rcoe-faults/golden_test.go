package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"rcoe/internal/exp"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// taxonomyArgs is the deterministic golden subset: two cheap classes,
// tiny trial counts, fixed seed, serial-equivalent engine. -quiet keeps
// stderr clean; the artifact itself never carries host timings.
func taxonomyArgs(extra ...string) []string {
	args := []string{
		"-json", "-quiet",
		"-classes", "transient,device",
		"-trials", "2", "-ops", "60", "-seed", "7",
	}
	return append(args, extra...)
}

// runToFile invokes a subcommand with -out pointed at a temp file and
// returns the artifact bytes.
func runToFile(t *testing.T, run func([]string) int, args []string) []byte {
	t.Helper()
	out := filepath.Join(t.TempDir(), "artifact.json")
	if code := run(append(args, "-out", out)); code != 0 {
		t.Fatalf("exit code %d, want 0 (args %v)", code, args)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestTaxonomyJSONGolden pins the rcoe-faults/taxonomy/v1 artifact
// bytes: schema, field order, per-class outcome tallies, and the
// taxonomy category fold of a deterministic campaign subset. If an
// intentional change alters the artifact, run
// `go test ./cmd/rcoe-faults -run TestTaxonomyJSONGolden -update`
// and review the golden diff.
func TestTaxonomyJSONGolden(t *testing.T) {
	t.Cleanup(func() { exp.SetDefaultWorkers(0) })
	got := runToFile(t, runTaxonomy, taxonomyArgs("-parallel", "2"))

	golden := filepath.Join("testdata", "taxonomy.golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("JSON artifact drifted from %s\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestTaxonomyJSONWorkerInvariant reruns the golden subset at several
// engine worker counts and requires byte-identical artifacts — the CLI
// half of the determinism contract.
func TestTaxonomyJSONWorkerInvariant(t *testing.T) {
	t.Cleanup(func() { exp.SetDefaultWorkers(0) })
	serial := runToFile(t, runTaxonomy, taxonomyArgs("-parallel", "1"))
	for _, workers := range []string{"2", "8"} {
		got := runToFile(t, runTaxonomy, taxonomyArgs("-parallel", workers))
		if !bytes.Equal(serial, got) {
			t.Fatalf("artifact differs between 1 and %s workers", workers)
		}
	}
}

// TestTaxonomyWarmFlagInMeta pins the -warm wiring end to end: the flag
// reaches the campaign (warm and cold runs sample different workload
// streams, so their artifacts must differ) and is recorded in the
// artifact meta so downstream tooling never compares warm tallies
// against cold ones.
func TestTaxonomyWarmFlagInMeta(t *testing.T) {
	t.Cleanup(func() { exp.SetDefaultWorkers(0) })
	cold := runToFile(t, runTaxonomy, taxonomyArgs("-parallel", "2"))
	warm := runToFile(t, runTaxonomy, taxonomyArgs("-parallel", "2", "-warm"))

	var meta struct {
		Schema string `json:"schema"`
		Warm   bool   `json:"warm"`
	}
	if err := json.Unmarshal(warm, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Schema != "rcoe-faults/taxonomy/v1" || !meta.Warm {
		t.Fatalf("warm artifact meta = %+v, want schema rcoe-faults/taxonomy/v1 with warm=true", meta)
	}
	if err := json.Unmarshal(cold, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Warm {
		t.Fatal("cold artifact claims warm=true")
	}
	if bytes.Equal(cold, warm) {
		t.Fatal("warm and cold artifacts are identical; -warm is not reaching the campaign")
	}
}

// TestOutPreflightFailsFast pins the -out contract: an unwritable path
// exits non-zero before the campaign runs, instead of printing a
// half-written artifact after minutes of simulation. The generous bound
// only has to separate "failed at flag time" from "ran the study".
func TestOutPreflightFailsFast(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no-such-dir", "artifact.json")
	for _, tc := range []struct {
		name string
		run  func([]string) int
		args []string
	}{
		{"taxonomy", runTaxonomy, []string{
			"-json", "-quiet", "-classes", "transient",
			"-trials", "1000", "-out", bad,
		}},
		{"mem", runMemCampaign, []string{
			"-json", "-trials", "1000", "-out", bad,
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			start := time.Now()
			if code := tc.run(tc.args); code != 1 {
				t.Fatalf("exit code %d, want 1 for unwritable -out", code)
			}
			if elapsed := time.Since(start); elapsed > 10*time.Second {
				t.Fatalf("took %v: campaign ran before the -out check", elapsed)
			}
			if _, err := os.Stat(bad); !os.IsNotExist(err) {
				t.Fatalf("artifact path exists after failed preflight (stat err %v)", err)
			}
		})
	}
}
