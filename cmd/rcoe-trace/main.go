// rcoe-trace records, dumps, diffs and summarizes flight-recorder traces.
//
// Usage:
//
//	rcoe-trace record [-o FILE] [-mode lc|cc] [-replicas N] [-events N]
//	                  [-ops N] [-flip R]
//	rcoe-trace dump FILE [-ring N|sys] [-last N]
//	rcoe-trace diff FILE
//	rcoe-trace summary FILE
//	rcoe-trace replay [-mode lc|cc] [-replicas N] [-ops N] [-flip R]
//	                  [-events N] [-replay-events N] [-every N] [-o FILE]
//
// record runs a syscall-heavy replicated workload with the flight
// recorder on and saves the trace file. With -flip R it corrupts a live
// register of replica R mid-run, producing a diverged trace pair (on a
// masking TMR system the replica is voted out and the frozen
// divergence-report trace is what gets saved). diff aligns the replica
// streams by logical time and prints the first-divergence report; dump
// lists raw events; summary prints per-ring totals and per-kind counts.
// replay reproduces a detected divergence from its last periodic
// checkpoint with the flight recorder at full verbosity (see replay.go).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"rcoe/internal/asm"
	"rcoe/internal/core"
	"rcoe/internal/kernel"
	"rcoe/internal/stats"
	"rcoe/internal/trace"
)

func main() {
	os.Exit(run())
}

func run() int {
	if len(os.Args) < 2 {
		usage()
		return 2
	}
	switch os.Args[1] {
	case "record":
		return runRecord(os.Args[2:])
	case "dump":
		return runDump(os.Args[2:])
	case "diff":
		return runDiff(os.Args[2:])
	case "summary":
		return runSummary(os.Args[2:])
	case "replay":
		return runReplay(os.Args[2:])
	default:
		fmt.Fprintf(os.Stderr, "rcoe-trace: unknown subcommand %q\n", os.Args[1])
		usage()
		return 2
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  rcoe-trace record [-o FILE] [-mode lc|cc] [-replicas N] [-events N] [-ops N] [-flip R]
  rcoe-trace dump FILE [-ring N|sys] [-last N]
  rcoe-trace diff FILE
  rcoe-trace summary FILE
  rcoe-trace replay [-mode lc|cc] [-replicas N] [-ops N] [-flip R] [-events N]
                    [-replay-events N] [-every N] [-o FILE]`)
}

// syscallLoop builds a guest program of n null syscalls — one comparable
// trace event per iteration, the densest forensic substrate.
func syscallLoop(n uint64) (kernel.ProcessConfig, error) {
	b := asm.New()
	b.Li(5, 0)
	b.Li64(6, n)
	b.Label("loop")
	b.Syscall(kernel.SysNull)
	b.Addi(5, 5, 1)
	b.Blt(5, 6, "loop")
	b.Li(1, 0)
	b.Syscall(kernel.SysExit)
	prog, err := b.Assemble(kernel.TextVA)
	if err != nil {
		return kernel.ProcessConfig{}, err
	}
	return kernel.ProcessConfig{Prog: prog, DataBytes: 1 << 16}, nil
}

func runRecord(args []string) int {
	fs := flag.NewFlagSet("rcoe-trace record", flag.ExitOnError)
	out := fs.String("o", "trace.trc", "output trace file")
	mode := fs.String("mode", "lc", "replication mode: lc or cc")
	replicas := fs.Int("replicas", 3, "replica count")
	events := fs.Int("events", 2048, "ring capacity in events")
	ops := fs.Uint64("ops", 60_000, "syscalls the workload performs")
	flip := fs.Int("flip", -1, "replica whose loop register to corrupt mid-run (-1: clean run)")
	_ = fs.Parse(args)

	var m core.Mode
	switch *mode {
	case "lc":
		m = core.ModeLC
	case "cc":
		m = core.ModeCC
	default:
		fmt.Fprintf(os.Stderr, "rcoe-trace: unknown mode %q\n", *mode)
		return 2
	}
	cfg := core.Config{
		Mode: m, Replicas: *replicas, TickCycles: 20_000,
		Sig: core.SigArgs, Masking: *replicas >= 3, BarrierTimeout: 300_000,
		Trace: core.TraceConfig{Enabled: true, RingEvents: *events},
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcoe-trace: %v\n", err)
		return 1
	}
	proc, err := syscallLoop(*ops)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcoe-trace: %v\n", err)
		return 1
	}
	if err := sys.Load(proc); err != nil {
		fmt.Fprintf(os.Stderr, "rcoe-trace: %v\n", err)
		return 1
	}

	rec := sys.TraceRecorder()
	if *flip >= 0 {
		if *flip >= *replicas {
			fmt.Fprintf(os.Stderr, "rcoe-trace: no replica %d to flip\n", *flip)
			return 2
		}
		sys.RunCycles(100_000)
		// Flip the workload's loop counter until the divergence is
		// detected (a flip can land while the value is dead and be
		// silently overwritten).
		for i := 0; i < 50 && sys.AliveCount() == *replicas; i++ {
			if halted, _ := sys.Halted(); halted {
				break
			}
			sys.Replica(*flip).Core().Regs[5] ^= 1
			sys.RunCycles(600_000)
		}
		if rep := sys.TakeDivergenceReport(); rep != nil {
			fmt.Println(rep)
			fmt.Println()
			rec = rep.Trace
		} else if halted, reason := sys.Halted(); halted {
			fmt.Printf("system fail-stopped: %s\n", reason)
		} else {
			fmt.Println("flip was never detected (masked/dead value); saving the live trace")
		}
	} else {
		if err := sys.Run(4_000_000_000); err != nil {
			fmt.Fprintf(os.Stderr, "rcoe-trace: run: %v\n", err)
			return 1
		}
	}

	if err := rec.SaveFile(*out); err != nil {
		fmt.Fprintf(os.Stderr, "rcoe-trace: save: %v\n", err)
		return 1
	}
	total := uint64(0)
	for rid := 0; rid < rec.NumReplicas(); rid++ {
		total += rec.Ring(rid).Total()
	}
	fmt.Printf("saved %s: %d replica rings + system ring, %d replica events (%d system)\n",
		*out, rec.NumReplicas(), total, rec.System().Total())
	return 0
}

// loadArg parses "subcmd FILE [flags]" argument lists.
func loadArg(fs *flag.FlagSet, args []string) (*trace.Recorder, int) {
	if len(args) < 1 || len(args[0]) == 0 || args[0][0] == '-' {
		fmt.Fprintf(os.Stderr, "rcoe-trace %s: missing trace file\n", fs.Name())
		return nil, 2
	}
	_ = fs.Parse(args[1:])
	rec, err := trace.LoadFile(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcoe-trace: %v\n", err)
		return nil, 1
	}
	return rec, 0
}

func runDump(args []string) int {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	ringSel := fs.String("ring", "", "ring to dump: replica number or \"sys\" (default: all)")
	last := fs.Int("last", 0, "only the newest N events per ring (0: all retained)")
	rec, code := loadArg(fs, args)
	if rec == nil {
		return code
	}
	dumpRing := func(name string, r *trace.Ring) {
		fmt.Printf("%s: %d recorded, %d retained, %d dropped\n", name, r.Total(), r.Len(), r.Dropped())
		first := 0
		if *last > 0 && r.Len() > *last {
			first = r.Len() - *last
		}
		for i := first; i < r.Len(); i++ {
			fmt.Printf("  %s\n", r.At(i))
		}
	}
	switch *ringSel {
	case "":
		for rid := 0; rid < rec.NumReplicas(); rid++ {
			dumpRing(fmt.Sprintf("replica %d", rid), rec.Ring(rid))
		}
		dumpRing("system", rec.System())
	case "sys":
		dumpRing("system", rec.System())
	default:
		rid, err := strconv.Atoi(*ringSel)
		if err != nil || rid < 0 || rid >= rec.NumReplicas() {
			fmt.Fprintf(os.Stderr, "rcoe-trace dump: no ring %q\n", *ringSel)
			return 2
		}
		dumpRing(fmt.Sprintf("replica %d", rid), rec.Ring(rid))
	}
	return 0
}

func runDiff(args []string) int {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	context := fs.Int("context", 3, "agreed events to show before the divergence")
	rec, code := loadArg(fs, args)
	if rec == nil {
		return code
	}
	streams := rec.Streams()
	d := trace.FirstDivergence(streams)
	fmt.Println(d)
	if !d.Found {
		return 0
	}
	if *context > 0 && d.Index > 0 {
		// Walk replica 0's comparable stream back from the divergence
		// point to show the agreed run-up.
		evs := comparableOf(streams[0])
		at := 0
		for at < len(evs) && evs[at].LC < d.LC {
			at++
		}
		lo := at - *context
		if lo < 0 {
			lo = 0
		}
		if lo < at {
			fmt.Printf("\nlast %d agreed events (replica 0's copy):\n", at-lo)
			for _, ev := range evs[lo:at] {
				fmt.Printf("  %s\n", ev)
			}
		}
	}
	return 1 // diff semantics: nonzero exit when the streams differ
}

func comparableOf(stream []trace.Event) []trace.Event {
	out := stream[:0:0]
	for _, ev := range stream {
		if ev.Kind.Comparable() {
			out = append(out, ev)
		}
	}
	return out
}

func runSummary(args []string) int {
	fs := flag.NewFlagSet("summary", flag.ExitOnError)
	rec, code := loadArg(fs, args)
	if rec == nil {
		return code
	}
	kinds := []trace.Kind{
		trace.KindSyscall, trace.KindTick, trace.KindUserFault, trace.KindFinish,
		trace.KindBarrierJoin, trace.KindBarrierRelease, trace.KindCatchUpStep,
		trace.KindBarrierOpen, trace.KindVote, trace.KindIRQRoute,
		trace.KindEject, trace.KindReintegrate,
	}
	tbl := stats.NewTable("trace summary",
		append([]string{"ring", "recorded", "retained", "dropped", "lc-span"},
			kindNames(kinds)...)...)
	addRing := func(name string, r *trace.Ring) {
		counts := map[trace.Kind]int{}
		var lcMin, lcMax uint64
		for i := 0; i < r.Len(); i++ {
			ev := r.At(i)
			counts[ev.Kind]++
			if i == 0 || ev.LC < lcMin {
				lcMin = ev.LC
			}
			if ev.LC > lcMax {
				lcMax = ev.LC
			}
		}
		span := "-"
		if r.Len() > 0 {
			span = fmt.Sprintf("%d..%d", lcMin, lcMax)
		}
		row := []string{name, fmt.Sprint(r.Total()), fmt.Sprint(r.Len()),
			fmt.Sprint(r.Dropped()), span}
		for _, k := range kinds {
			row = append(row, fmt.Sprint(counts[k]))
		}
		tbl.AddRow(row...)
	}
	for rid := 0; rid < rec.NumReplicas(); rid++ {
		addRing(fmt.Sprintf("replica %d", rid), rec.Ring(rid))
	}
	addRing("system", rec.System())
	fmt.Println(tbl)
	return 0
}

func kindNames(kinds []trace.Kind) []string {
	out := make([]string, len(kinds))
	for i, k := range kinds {
		out[i] = k.String()
	}
	return out
}
