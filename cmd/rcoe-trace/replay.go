package main

// replay.go implements the replay-triage subcommand: reproduce a detected
// divergence by restoring the last periodic checkpoint into a system with
// the flight recorder at full verbosity, re-applying the recorded fault,
// and re-deriving the first-divergence report. A production run keeps
// cheap, small rings; when something diverges, replay recovers the exact
// first divergent instruction without having paid for deep tracing up
// front.

import (
	"flag"
	"fmt"
	"os"

	"rcoe/internal/asm"
	"rcoe/internal/core"
	"rcoe/internal/kernel"
	"rcoe/internal/snapshot"
	"rcoe/internal/trace"
)

// traceSystemConfig is the replicated configuration the record and replay
// subcommands share; only the ring capacity varies between the production
// and replay phases.
func traceSystemConfig(m core.Mode, replicas, events int) core.Config {
	return core.Config{
		Mode: m, Replicas: replicas, TickCycles: 20_000,
		Sig: core.SigArgs, Masking: replicas >= 3, BarrierTimeout: 300_000,
		Trace: core.TraceConfig{Enabled: true, RingEvents: events},
	}
}

func parseMode(s string) (core.Mode, error) {
	switch s {
	case "lc":
		return core.ModeLC, nil
	case "cc":
		return core.ModeCC, nil
	}
	return 0, fmt.Errorf("unknown mode %q", s)
}

// ftTraceLoop is the replay workload: each iteration feeds the loop
// counter through FT_Add_Trace, so it is hashed into the vote signature
// and any corruption of it is detected at the next synchronisation — the
// prompt-detection substrate the checkpoint/replay window needs (the null
// syscall hashes no arguments, so a counter flip there only surfaces at
// loop exit).
func ftTraceLoop(n uint64) (kernel.ProcessConfig, error) {
	b := asm.New()
	b.Li(5, 0)
	b.Li64(6, n)
	b.Label("loop")
	b.Addi(1, 5, 0)
	b.Li(2, 0)
	b.Syscall(kernel.SysFTAddTrace)
	b.Addi(5, 5, 1)
	b.Blt(5, 6, "loop")
	b.Li(1, 0)
	b.Syscall(kernel.SysExit)
	prog, err := b.Assemble(kernel.TextVA)
	if err != nil {
		return kernel.ProcessConfig{}, err
	}
	return kernel.ProcessConfig{Prog: prog, DataBytes: 1 << 16}, nil
}

func buildTraceSystem(cfg core.Config, ops uint64) (*core.System, error) {
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	proc, err := ftTraceLoop(ops)
	if err != nil {
		return nil, err
	}
	if err := sys.Load(proc); err != nil {
		return nil, err
	}
	return sys, nil
}

// replayStudy is the outcome of one production run plus its replay.
type replayStudy struct {
	// ProdReport is the production system's frozen forensic report (nil
	// if the injected flips were never detected).
	ProdReport *core.DivergenceReport
	// ReplayReport is the forensic report captured by the re-run from the
	// checkpoint (nil if replay failed to reproduce the detection).
	ReplayReport *core.DivergenceReport
	// ReplayDivergence is the first-divergence analysis over the replay
	// window (the replay rings cover only the post-checkpoint run, so the
	// streams are trimmed to their common window first).
	ReplayDivergence trace.Divergence
	// Checkpoint is the cycle of the checkpoint the replay started from;
	// FlipCycle the cycle the replayed flip was applied at.
	Checkpoint uint64
	FlipCycle  uint64
	// Rounds is how many flip attempts the production run needed (a flip
	// can land while the value is dead and be silently overwritten).
	Rounds int
}

// replayWindowDivergence aligns streams recorded from a mid-run restore
// point. Each replay ring begins at the restore cycle with only partial
// coverage of its first logical time — a replica may have executed that
// LC's events just before the checkpoint was taken — so the comparison
// starts strictly after the newest first-retained LC across streams.
func replayWindowDivergence(streams [][]trace.Event) trace.Divergence {
	var start uint64
	for _, s := range streams {
		for _, ev := range s {
			if ev.Kind.Comparable() {
				if ev.LC > start {
					start = ev.LC
				}
				break
			}
		}
	}
	trimmed := make([][]trace.Event, len(streams))
	for i, s := range streams {
		k := 0
		for k < len(s) && s[k].LC <= start {
			k++
		}
		trimmed[i] = s[k:]
	}
	return trace.FirstDivergence(trimmed)
}

// runReplayStudy drives the production system with periodic checkpoints,
// corrupting a register of the chosen replica once per period until the
// divergence is detected, then replays from the last pre-detection
// checkpoint under the replay configuration. The two configurations must
// agree behaviorally; only host-side settings (ring capacity) may differ.
func runReplayStudy(prodCfg, replayCfg core.Config, ops uint64, flip int, every uint64) (replayStudy, error) {
	var st replayStudy
	sys, err := buildTraceSystem(prodCfg, ops)
	if err != nil {
		return st, err
	}
	sys.RunCycles(100_000) // past boot: flips should land in live user state

	detected := func(s *core.System) bool {
		if halted, _ := s.Halted(); halted {
			return true
		}
		return s.AliveCount() < prodCfg.Replicas
	}
	var cp []byte
	for round := 0; round < 200 && !detected(sys) && !sys.Finished(); round++ {
		st.Rounds = round + 1
		if cp, err = snapshot.Save(sys); err != nil {
			return st, err
		}
		st.Checkpoint = sys.Machine().Now()
		// Flip mid-interval, not at the checkpoint itself: the replicas run
		// skewed by a few hundred cycles, so a fault at the checkpoint cycle
		// can diverge an event some replica already executed just before the
		// save — an event the replay window then cannot contain. Half a
		// period of run-up keeps every replica's divergent events strictly
		// inside the window.
		sys.RunCycles(every / 2)
		if detected(sys) || sys.Finished() {
			break
		}
		st.FlipCycle = sys.Machine().Now()
		sys.Replica(flip).Core().Regs[5] ^= 1
		sys.RunCycles(every - every/2)
	}
	st.ProdReport = sys.TakeDivergenceReport()
	if st.ProdReport == nil {
		return st, nil
	}

	rep, err := buildTraceSystem(replayCfg, ops)
	if err != nil {
		return st, err
	}
	if err := snapshot.Restore(rep, cp); err != nil {
		return st, fmt.Errorf("restore checkpoint: %w", err)
	}
	// The restored recorder re-records from this point into the replay
	// rings; run up to the recorded fault cycle (RunCycles is cycle-exact),
	// re-apply the flip, and run to the (deterministic) detection. A flip
	// cycle before the checkpoint means detection crossed a checkpoint
	// boundary: the corruption is already inside the restored state, so
	// nothing is re-applied.
	if st.FlipCycle >= st.Checkpoint {
		if d := st.FlipCycle - rep.Machine().Now(); d > 0 {
			rep.RunCycles(d)
		}
		rep.Replica(flip).Core().Regs[5] ^= 1
	}
	deadline := rep.Machine().Now() + 4*every + 2_000_000
	for !detected(rep) && !rep.Finished() && rep.Machine().Now() < deadline {
		rep.RunCycles(every/4 + 1)
	}
	st.ReplayReport = rep.TakeDivergenceReport()
	if st.ReplayReport != nil && st.ReplayReport.Trace != nil {
		st.ReplayDivergence = replayWindowDivergence(st.ReplayReport.Trace.Streams())
	}
	return st, nil
}

// sameDivergentInstruction reports whether two first-divergence analyses
// blame the same instruction: same logical time, same odd replica, and
// the same per-replica events at the divergence point. Ring-local fields
// (Index, Compared, AlignedFrom) are expected to differ — the replay rings
// only cover the post-checkpoint window.
func sameDivergentInstruction(a, b trace.Divergence) bool {
	if !a.Found || !b.Found || a.LC != b.LC || a.Replica != b.Replica ||
		len(a.Events) != len(b.Events) {
		return false
	}
	for i := range a.Events {
		if a.Missing[i] != b.Missing[i] {
			return false
		}
		if a.Missing[i] {
			continue
		}
		ea, eb := a.Events[i], b.Events[i]
		if ea.Kind != eb.Kind || ea.LC != eb.LC || ea.Branches != eb.Branches ||
			ea.IP != eb.IP || ea.Arg1 != eb.Arg1 || ea.Arg2 != eb.Arg2 {
			return false
		}
	}
	return true
}

func runReplay(args []string) int {
	fs := flag.NewFlagSet("rcoe-trace replay", flag.ExitOnError)
	mode := fs.String("mode", "lc", "replication mode: lc or cc")
	replicas := fs.Int("replicas", 3, "replica count")
	ops := fs.Uint64("ops", 60_000, "syscalls the workload performs")
	flip := fs.Int("flip", 0, "replica whose loop register to corrupt")
	events := fs.Int("events", 512, "production ring capacity in events")
	replayEvents := fs.Int("replay-events", 1<<16, "replay ring capacity in events")
	every := fs.Uint64("every", 200_000, "checkpoint (and flip) period in cycles")
	out := fs.String("o", "", "save the replay trace to FILE")
	_ = fs.Parse(args)

	m, err := parseMode(*mode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcoe-trace: %v\n", err)
		return 2
	}
	if *flip < 0 || *flip >= *replicas {
		fmt.Fprintf(os.Stderr, "rcoe-trace replay: no replica %d to flip\n", *flip)
		return 2
	}
	prodCfg := traceSystemConfig(m, *replicas, *events)
	replayCfg := traceSystemConfig(m, *replicas, *replayEvents)
	st, err := runReplayStudy(prodCfg, replayCfg, *ops, *flip, *every)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcoe-trace: %v\n", err)
		return 1
	}
	if st.ProdReport == nil {
		fmt.Println("flip was never detected (masked/dead value); nothing to replay")
		return 1
	}
	fmt.Printf("production detection after %d flip round(s):\n%s\n\n", st.Rounds, st.ProdReport)
	fmt.Printf("replaying from checkpoint at cycle %d (flip at %d) with %d-event rings...\n\n",
		st.Checkpoint, st.FlipCycle, *replayEvents)
	if st.ReplayReport == nil {
		fmt.Println("replay did not reproduce the detection")
		return 1
	}
	fmt.Printf("replay analysis:\n%s\n\n", st.ReplayDivergence)
	if *out != "" {
		if err := st.ReplayReport.Trace.SaveFile(*out); err != nil {
			fmt.Fprintf(os.Stderr, "rcoe-trace: save: %v\n", err)
			return 1
		}
		fmt.Printf("replay trace saved to %s\n", *out)
	}
	prodDiv, replayDiv := st.ProdReport.Divergence, st.ReplayDivergence
	switch {
	case sameDivergentInstruction(prodDiv, replayDiv):
		fmt.Println("replay confirms the production analysis: same first divergent instruction")
		return 0
	case prodDiv.Truncated && replayDiv.Found:
		// The production rings wrapped past the divergence point; the
		// replay ran with full-depth rings from the checkpoint, so its
		// (earlier) divergence is the authoritative one.
		fmt.Println("production rings wrapped; the replay analysis above is authoritative")
		return 0
	default:
		fmt.Println("replay analysis disagrees with the production report")
		return 1
	}
}
