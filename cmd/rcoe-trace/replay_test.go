package main

import (
	"testing"

	"rcoe/internal/core"
)

// TestReplayMatchesForensics is the replay-triage acceptance property:
// restoring the last periodic checkpoint into a full-verbosity system and
// re-applying the recorded flip must name the same first divergent
// instruction as the production system's own forensic report.
func TestReplayMatchesForensics(t *testing.T) {
	prodCfg := traceSystemConfig(core.ModeLC, 3, 4096)
	replayCfg := traceSystemConfig(core.ModeLC, 3, 1<<15)
	st, err := runReplayStudy(prodCfg, replayCfg, 30_000, 0, 150_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.ProdReport == nil {
		t.Fatal("production run never detected the flip")
	}
	if st.ReplayReport == nil {
		t.Fatal("replay did not reproduce the detection")
	}
	prod, replay := st.ProdReport.Divergence, st.ReplayDivergence
	if !prod.Found {
		t.Fatalf("production analysis found no divergence:\n%s", prod)
	}
	if !replay.Found {
		t.Fatalf("replay analysis found no divergence:\n%s", replay)
	}
	if !sameDivergentInstruction(prod, replay) {
		t.Fatalf("replay names a different divergence\nproduction:\n%s\nreplay:\n%s", prod, replay)
	}
	if prod.Replica != 0 {
		t.Errorf("flipped replica 0 but analysis blames %d", prod.Replica)
	}
	t.Logf("rounds=%d checkpoint=%d divergence: lc=%d ip=%#x replica=%d",
		st.Rounds, st.Checkpoint, replay.LC, replay.Events[replay.Replica].IP, replay.Replica)
}

// TestReplayDMRFailStop exercises the non-masking path: a DMR system
// fail-stops on detection, and the replay still reproduces the same
// divergence analysis from the checkpoint.
func TestReplayDMRFailStop(t *testing.T) {
	prodCfg := traceSystemConfig(core.ModeLC, 2, 4096)
	replayCfg := traceSystemConfig(core.ModeLC, 2, 1<<15)
	st, err := runReplayStudy(prodCfg, replayCfg, 30_000, 1, 150_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.ProdReport == nil {
		t.Fatal("production run never detected the flip")
	}
	if st.ReplayReport == nil {
		t.Fatal("replay did not reproduce the detection")
	}
	if !sameDivergentInstruction(st.ProdReport.Divergence, st.ReplayDivergence) {
		t.Fatalf("replay names a different divergence\nproduction:\n%s\nreplay:\n%s",
			st.ProdReport.Divergence, st.ReplayDivergence)
	}
}
