// rcoe-asm is an assembler/disassembler utility for the simulated ISA.
//
// Usage:
//
//	rcoe-asm -disasm <image>         disassemble an encoded program image
//	rcoe-asm -demo [-instrument]     print a demo program, optionally after
//	                                 the branch-counting compiler pass
//
// The binary image format is the flat 8-byte-per-instruction encoding
// defined in internal/isa.
package main

import (
	"flag"
	"fmt"
	"os"

	"rcoe/internal/asm"
	"rcoe/internal/compilerpass"
	"rcoe/internal/isa"
)

func main() {
	os.Exit(run())
}

func run() int {
	disasm := flag.String("disasm", "", "disassemble the encoded program image at this path")
	demo := flag.Bool("demo", false, "emit the demo program")
	instrument := flag.Bool("instrument", false, "apply the branch-counting pass to the demo")
	base := flag.Uint64("base", 0x10000, "load address")
	flag.Parse()

	switch {
	case *disasm != "":
		img, err := os.ReadFile(*disasm)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rcoe-asm: %v\n", err)
			return 1
		}
		prog, err := isa.DecodeProgram(img)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rcoe-asm: %v\n", err)
			return 1
		}
		printProgram(prog, *base)
		return 0
	case *demo:
		b := demoProgram()
		if *instrument {
			compilerpass.Instrument(b)
		}
		prog, err := b.Assemble(*base)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rcoe-asm: %v\n", err)
			return 1
		}
		printProgram(prog, *base)
		if *instrument {
			if err := compilerpass.Verify(prog); err != nil {
				fmt.Fprintf(os.Stderr, "rcoe-asm: verify: %v\n", err)
				return 1
			}
			fmt.Printf("; %d instrumented branch sites\n", len(compilerpass.BranchSites(prog, *base)))
		}
		return 0
	default:
		flag.Usage()
		return 2
	}
}

func printProgram(prog []isa.Instr, base uint64) {
	for i, ins := range prog {
		fmt.Printf("%#08x: %v\n", base+uint64(i)*isa.InstrBytes, ins)
	}
}

// demoProgram is a small counting loop with a call, showing the shapes the
// compiler pass instruments.
func demoProgram() *asm.Builder {
	b := asm.New()
	b.Li(5, 0)
	b.Li(6, 10)
	b.Label("loop")
	b.Call("bump")
	b.Blt(5, 6, "loop")
	b.Hlt()
	b.Label("bump")
	b.Addi(5, 5, 1)
	b.Ret()
	return b
}
