// rcoe-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	rcoe-bench [-scale quick|full] [-list] [-no-fastforward] [experiment ...]
//
// With no experiment IDs it runs everything in paper order. Each
// experiment prints the same rows/series the paper reports; absolute
// numbers are simulator cycles, shapes are the reproduction target.
//
// -no-fastforward disables the machine's event-driven idle skip and steps
// every cycle naively. Results are bit-identical either way (the
// determinism contract); the flag exists so CI can cross-check the two
// modes and so suspected fast-forward drift can be debugged in the field.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rcoe/internal/bench"
	"rcoe/internal/machine"
)

func main() {
	os.Exit(run())
}

func run() int {
	scaleFlag := flag.String("scale", "quick", "experiment sizing: quick or full")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	noFF := flag.Bool("no-fastforward", false, "step every cycle naively instead of fast-forwarding idle windows")
	flag.Parse()

	if *noFF {
		machine.SetDefaultFastForward(false)
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return 0
	}
	var scale bench.Scale
	switch *scaleFlag {
	case "quick":
		scale = bench.Quick
	case "full":
		scale = bench.Full
	default:
		fmt.Fprintf(os.Stderr, "rcoe-bench: unknown scale %q\n", *scaleFlag)
		return 2
	}

	var selected []bench.Experiment
	if flag.NArg() == 0 {
		selected = bench.All()
	} else {
		for _, id := range flag.Args() {
			e, ok := bench.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "rcoe-bench: unknown experiment %q (use -list)\n", id)
				return 2
			}
			selected = append(selected, e)
		}
	}

	failed := 0
	for _, e := range selected {
		fmt.Printf("=== %s (%s)\n", e.Title, e.ID)
		start := time.Now()
		tbl, err := e.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rcoe-bench: %s: %v\n", e.ID, err)
			failed++
			continue
		}
		fmt.Println(tbl)
		fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
	if failed > 0 {
		return 1
	}
	return 0
}
