// rcoe-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	rcoe-bench [-scale quick|full] [-parallel N] [-json] [-out FILE]
//	           [-list] [-no-fastforward] [-no-execcache] [-no-superblock]
//	           [-cpuprofile FILE] [-memprofile FILE] [experiment ...]
//
// With no experiment IDs it runs everything in paper order. Each
// experiment prints the same rows/series the paper reports; absolute
// numbers are simulator cycles, shapes are the reproduction target.
//
// -parallel sets the host worker count of the experiment engine (default:
// all cores). Worker count never changes results: -parallel=1 and
// -parallel=N emit byte-identical artifacts.
//
// -json emits the campaign as an rcoe-bench/v1 JSON report instead of
// text tables. -out writes the artifact (text or JSON) to a file —
// results_quick.txt and results_full.txt are regenerated this way — with
// progress on stderr. Artifacts carry no host timings, so they are
// byte-reproducible across runs and worker counts.
//
// -no-fastforward disables the machine's event-driven idle skip and steps
// every cycle naively. Results are bit-identical either way (the
// determinism contract); the flag exists so CI can cross-check the two
// modes and so suspected fast-forward drift can be debugged in the field.
// -no-execcache likewise disables the host-side execution cache
// (predecoded instructions + translation memos) and -no-superblock the
// superblock engine (batched straight-line execution), both under the
// same bit-identical contract; CI diffs artifacts across all eight
// on/off combinations.
//
// -cpuprofile/-memprofile write pprof profiles of the run (see
// "Profiling the simulator" in EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"rcoe/internal/bench"
	"rcoe/internal/exp"
	"rcoe/internal/machine"
)

func main() {
	os.Exit(run())
}

func run() int {
	scaleFlag := flag.String("scale", "quick", "experiment sizing: quick or full")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	parallel := flag.Int("parallel", 0, "host workers for the experiment engine (0 = all cores)")
	jsonOut := flag.Bool("json", false, "emit an rcoe-bench/v1 JSON report instead of text tables")
	outFile := flag.String("out", "", "write the artifact to FILE (progress goes to stderr)")
	noFF := flag.Bool("no-fastforward", false, "step every cycle naively instead of fast-forwarding idle windows")
	noEC := flag.Bool("no-execcache", false, "disable the host-side execution cache (predecode + translation memos)")
	noSB := flag.Bool("no-superblock", false, "disable the superblock engine (batched straight-line execution)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to FILE")
	memProfile := flag.String("memprofile", "", "write a heap profile to FILE at exit")
	flag.Parse()

	if *noFF {
		machine.SetDefaultFastForward(false)
	}
	if *noEC {
		machine.SetDefaultExecCache(false)
	}
	if *noSB {
		machine.SetDefaultSuperblock(false)
	}
	exp.SetDefaultWorkers(*parallel)

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rcoe-bench: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "rcoe-bench: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rcoe-bench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "rcoe-bench: %v\n", err)
			}
		}()
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return 0
	}
	var scale bench.Scale
	switch *scaleFlag {
	case "quick":
		scale = bench.Quick
	case "full":
		scale = bench.Full
	default:
		fmt.Fprintf(os.Stderr, "rcoe-bench: unknown scale %q\n", *scaleFlag)
		return 2
	}

	var selected []bench.Experiment
	if flag.NArg() == 0 {
		selected = bench.All()
	} else {
		for _, id := range flag.Args() {
			e, ok := bench.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "rcoe-bench: unknown experiment %q (use -list)\n", id)
				return 2
			}
			selected = append(selected, e)
		}
	}

	if err := preflightOut(*outFile); err != nil {
		fmt.Fprintf(os.Stderr, "rcoe-bench: -out: %v\n", err)
		return 1
	}

	// Interactive text mode (no -json, no -out) streams each table as it
	// lands, with host timings; artifact modes keep stdout/-out clean of
	// timings so the bytes are reproducible.
	streaming := !*jsonOut && *outFile == ""
	start := time.Now()
	report := bench.BuildReport(scale, selected, func(res bench.ExperimentResult) {
		elapsed := time.Since(start).Seconds()
		start = time.Now()
		if streaming {
			fmt.Printf("=== %s (%s)\n", res.Title, res.ID)
			if res.Err != "" {
				fmt.Fprintf(os.Stderr, "rcoe-bench: %s: %s\n", res.ID, res.Err)
			} else {
				fmt.Println(res.Table)
			}
			fmt.Printf("(%s in %.1fs)\n\n", res.ID, elapsed)
			return
		}
		status := "ok"
		if res.Err != "" {
			status = "ERROR: " + res.Err
		}
		fmt.Fprintf(os.Stderr, "rcoe-bench: %s in %.1fs: %s\n", res.ID, elapsed, status)
	})

	if !streaming {
		if err := writeArtifact(report, *jsonOut, *outFile); err != nil {
			fmt.Fprintf(os.Stderr, "rcoe-bench: %v\n", err)
			return 1
		}
	}
	if report.Failed() > 0 {
		return 1
	}
	return 0
}

// preflightOut verifies an -out path is writable before the experiments
// run, so a bad path fails in milliseconds instead of after the whole
// suite (and never leaves a half-written artifact behind).
func preflightOut(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	return f.Close()
}

// writeArtifact renders the report as JSON or text to -out (or stdout).
// Close failures surface too: a full disk at flush time must not exit 0
// behind a truncated artifact.
func writeArtifact(report *bench.Report, asJSON bool, outFile string) (err error) {
	out := os.Stdout
	if outFile != "" {
		f, cerr := os.Create(outFile)
		if cerr != nil {
			return cerr
		}
		defer func() {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}()
		out = f
	}
	if asJSON {
		data, merr := report.MarshalIndent()
		if merr != nil {
			return merr
		}
		_, err = out.Write(data)
		return err
	}
	return report.WriteText(out)
}
