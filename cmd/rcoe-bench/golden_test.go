package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"rcoe/internal/bench"
	"rcoe/internal/exp"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// TestJSONGolden pins the rcoe-bench/v1 artifact bytes: schema, field
// order, table encoding, and the simulated values of a deterministic
// experiment subset. If an intentional change alters the artifact, run
// `go test ./cmd/rcoe-bench -run TestJSONGolden -update` and review the
// golden diff.
func TestJSONGolden(t *testing.T) {
	var selected []bench.Experiment
	for _, id := range []string{"table1", "table6", "ablate-fletcher"} {
		e, ok := bench.Lookup(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		selected = append(selected, e)
	}
	report := bench.BuildReport(bench.Quick, selected, nil)
	if n := report.Failed(); n != 0 {
		t.Fatalf("%d experiments failed: %+v", n, report.Experiments)
	}
	got, err := report.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "quick.golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("JSON artifact drifted from %s\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestJSONGoldenWorkerInvariant reruns the golden subset at several
// engine worker counts and requires byte-identical artifacts — the CLI
// half of the determinism contract.
func TestJSONGoldenWorkerInvariant(t *testing.T) {
	t.Cleanup(func() { exp.SetDefaultWorkers(0) })
	render := func(workers int) []byte {
		exp.SetDefaultWorkers(workers)
		var selected []bench.Experiment
		for _, id := range []string{"table1", "table6", "ablate-fletcher"} {
			e, _ := bench.Lookup(id)
			selected = append(selected, e)
		}
		report := bench.BuildReport(bench.Quick, selected, nil)
		data, err := report.MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	serial := render(1)
	for _, workers := range []int{2, 8} {
		if got := render(workers); !bytes.Equal(serial, got) {
			t.Fatalf("artifact differs between 1 and %d workers", workers)
		}
	}
}
