package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestPreflightOut pins the -out contract: an unwritable path is
// rejected before any experiment runs (run() calls preflightOut ahead of
// BuildReport, so a typo'd path costs milliseconds, not the full suite),
// while a writable one is accepted and left in place for the artifact
// writer.
func TestPreflightOut(t *testing.T) {
	dir := t.TempDir()

	if err := preflightOut(""); err != nil {
		t.Fatalf("empty path (stdout mode) should pass preflight: %v", err)
	}

	good := filepath.Join(dir, "report.json")
	if err := preflightOut(good); err != nil {
		t.Fatalf("writable path rejected: %v", err)
	}
	if _, err := os.Stat(good); err != nil {
		t.Fatalf("preflight should leave the writable file creatable: %v", err)
	}

	bad := filepath.Join(dir, "no-such-dir", "report.json")
	if err := preflightOut(bad); err == nil {
		t.Fatal("unwritable path passed preflight")
	}
	if _, err := os.Stat(bad); !os.IsNotExist(err) {
		t.Fatalf("failed preflight must not leave a file behind (stat err %v)", err)
	}

	roDir := filepath.Join(dir, "ro")
	if err := os.Mkdir(roDir, 0o555); err != nil {
		t.Fatal(err)
	}
	if os.Getuid() != 0 { // root bypasses directory permission bits
		if err := preflightOut(filepath.Join(roDir, "report.json")); err == nil {
			t.Fatal("read-only directory passed preflight")
		}
	}
}
