// rcoe-snap saves, restores and inspects checkpoint files of the
// replicated KV benchmark system.
//
// Usage:
//
//	rcoe-snap save -o FILE [-mode base|lc|cc] [-replicas N] [-arch x86|arm]
//	               [-records N] [-ops N] [-seed N] [-decorrelate]
//	               [-cycles N]
//	rcoe-snap restore FILE [scenario flags] [-run] [-o FILE2]
//	rcoe-snap info FILE
//	rcoe-snap diff FILE1 FILE2
//
// save builds the KV scenario, simulates it through boot and the preload
// phase (or exactly -cycles cycles when nonzero), and writes the
// serialized state. restore rebuilds the same scenario — the scenario
// flags must match the ones used at save time, a mismatch is rejected
// with a field-level error — loads the checkpoint into it, and optionally
// continues the workload to completion (-run) or re-serializes the
// restored state (-o), whose bytes are identical to the input file. info
// lists the file's sections; diff compares two files section by section
// and exits nonzero when they differ.
package main

import (
	"flag"
	"fmt"
	"os"

	"rcoe/internal/core"
	"rcoe/internal/harness"
	"rcoe/internal/machine"
	"rcoe/internal/snapshot"
	"rcoe/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) < 1 {
		usage()
		return 2
	}
	switch args[0] {
	case "save":
		return runSave(args[1:])
	case "restore":
		return runRestore(args[1:])
	case "info":
		return runInfo(args[1:])
	case "diff":
		return runDiff(args[1:])
	default:
		fmt.Fprintf(os.Stderr, "rcoe-snap: unknown subcommand %q\n", args[0])
		usage()
		return 2
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  rcoe-snap save -o FILE [-mode base|lc|cc] [-replicas N] [-arch x86|arm]
                 [-records N] [-ops N] [-seed N] [-decorrelate] [-cycles N]
  rcoe-snap restore FILE [scenario flags] [-run] [-o FILE2]
  rcoe-snap info FILE
  rcoe-snap diff FILE1 FILE2`)
}

// scenario holds the KV benchmark configuration shared by save and
// restore. Restore targets must be built with the same scenario the
// checkpoint was saved from; the harness verifies this field by field.
type scenario struct {
	mode        *string
	replicas    *int
	arch        *string
	records     *uint64
	ops         *uint64
	seed        *uint64
	decorrelate *bool
}

func scenarioFlags(fs *flag.FlagSet) *scenario {
	return &scenario{
		mode:        fs.String("mode", "lc", "replication mode: base, lc or cc"),
		replicas:    fs.Int("replicas", 2, "replica count (1 for base, 2-3 otherwise)"),
		arch:        fs.String("arch", "x86", "machine profile: x86 or arm"),
		records:     fs.Uint64("records", 64, "preloaded record count"),
		ops:         fs.Uint64("ops", 200, "run-phase client operations"),
		seed:        fs.Uint64("seed", 1, "workload seed"),
		decorrelate: fs.Bool("decorrelate", false, "structurally decorrelated replica layouts"),
	}
}

func (s *scenario) build() (*harness.KVRun, error) {
	var m core.Mode
	switch *s.mode {
	case "base":
		m = core.ModeNone
		*s.replicas = 1
	case "lc":
		m = core.ModeLC
	case "cc":
		m = core.ModeCC
	default:
		return nil, fmt.Errorf("unknown mode %q", *s.mode)
	}
	var prof machine.Profile
	switch *s.arch {
	case "x86":
		prof = machine.X86()
	case "arm":
		prof = machine.Arm()
	default:
		return nil, fmt.Errorf("unknown arch %q", *s.arch)
	}
	return harness.NewKV(harness.KVOptions{
		System: core.Config{
			Mode: m, Replicas: *s.replicas, Profile: prof,
			TickCycles:        50_000,
			ExceptionBarriers: prof.Name == "arm",
			Decorrelate:       *s.decorrelate,
			LayoutSeed:        *s.seed | 1,
		},
		Workload:    workload.YCSBA,
		Records:     *s.records,
		Operations:  *s.ops,
		TraceOutput: true,
		Seed:        *s.seed | 1,
	})
}

func runSave(args []string) int {
	fs := flag.NewFlagSet("rcoe-snap save", flag.ExitOnError)
	out := fs.String("o", "state.snap", "output checkpoint file")
	cycles := fs.Uint64("cycles", 0, "simulate exactly N cycles before saving (0: through the preload phase)")
	sc := scenarioFlags(fs)
	_ = fs.Parse(args)

	run, err := sc.build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcoe-snap: %v\n", err)
		return 2
	}
	m := run.Sys.Machine()
	deadline := m.Now() + 2_000_000_000
	ready := func() bool {
		if *cycles > 0 {
			return m.Now() >= *cycles
		}
		return run.LoadPhaseDone()
	}
	for !ready() && !run.Done() {
		if halted, reason := run.Sys.Halted(); halted {
			fmt.Fprintf(os.Stderr, "rcoe-snap: system fail-stopped before the save point: %s\n", reason)
			return 1
		}
		if m.Now() > deadline {
			fmt.Fprintln(os.Stderr, "rcoe-snap: save point not reached within the cycle budget")
			return 1
		}
		step := uint64(25_000)
		if *cycles > 0 && *cycles-m.Now() < step {
			step = *cycles - m.Now()
		}
		run.StepChunk(step)
	}
	data, err := snapshot.Save(run)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcoe-snap: %v\n", err)
		return 1
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "rcoe-snap: %v\n", err)
		return 1
	}
	snap, _ := snapshot.Parse(data)
	fmt.Printf("saved %s: %d bytes, %d sections, cycle %d\n",
		*out, len(data), len(snap.Sections()), m.Now())
	return 0
}

func runRestore(args []string) int {
	fs := flag.NewFlagSet("rcoe-snap restore", flag.ExitOnError)
	cont := fs.Bool("run", false, "continue the workload to completion after restoring")
	out := fs.String("o", "", "re-serialize the restored state to FILE2 (round-trip check)")
	sc := scenarioFlags(fs)
	if len(args) < 1 || len(args[0]) == 0 || args[0][0] == '-' {
		fmt.Fprintln(os.Stderr, "rcoe-snap restore: missing checkpoint file")
		return 2
	}
	path := args[0]
	_ = fs.Parse(args[1:])

	run, err := sc.build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcoe-snap: %v\n", err)
		return 2
	}
	if err := snapshot.RestoreFile(path, run); err != nil {
		fmt.Fprintf(os.Stderr, "rcoe-snap: %v\n", err)
		return 1
	}
	fmt.Printf("restored %s at cycle %d\n", path, run.Sys.Machine().Now())
	if *out != "" {
		if err := snapshot.SaveFile(*out, run); err != nil {
			fmt.Fprintf(os.Stderr, "rcoe-snap: %v\n", err)
			return 1
		}
		fmt.Printf("re-serialized to %s\n", *out)
	}
	if *cont {
		res, err := run.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "rcoe-snap: run: %v\n", err)
			return 1
		}
		fmt.Printf("run complete: ops=%d cycles=%d corruptions=%d errors=%d finished=%v\n",
			res.Ops, res.Cycles, res.Corruptions, res.Errors, res.Finished)
		if res.HaltReason != "" {
			fmt.Printf("halt reason: %s\n", res.HaltReason)
		}
	}
	return 0
}

func runInfo(args []string) int {
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "rcoe-snap info: expected exactly one checkpoint file")
		return 2
	}
	snap, err := snapshot.LoadFile(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcoe-snap: %v\n", err)
		return 1
	}
	total := 0
	for _, s := range snap.Sections() {
		total += len(s.Data)
	}
	fmt.Printf("%s: format v%d, %d sections, %d payload bytes\n",
		args[0], snapshot.Version, len(snap.Sections()), total)
	for _, s := range snap.Sections() {
		fmt.Printf("  %-12s %8d bytes\n", s.Name, len(s.Data))
	}
	return 0
}

func runDiff(args []string) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "rcoe-snap diff: expected exactly two checkpoint files")
		return 2
	}
	a, err := snapshot.LoadFile(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcoe-snap: %v\n", err)
		return 1
	}
	b, err := snapshot.LoadFile(args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcoe-snap: %v\n", err)
		return 1
	}
	diffs := snapshot.Diff(a, b)
	if len(diffs) == 0 {
		fmt.Println("snapshots identical")
		return 0
	}
	for _, d := range diffs {
		fmt.Println(d)
	}
	return 1
}
