package main

import (
	"os"
	"path/filepath"
	"testing"
)

// quick is the small scenario the CLI tests run: tiny preload, short run
// phase.
func quick(extra ...string) []string {
	return append(extra, "-records", "24", "-ops", "40")
}

func TestSaveRestoreDiffRoundTrip(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.snap")
	b := filepath.Join(dir, "b.snap")
	if code := run(quick("save", "-o", a)); code != 0 {
		t.Fatalf("save exited %d", code)
	}
	if code := run(quick("restore", a, "-o", b)); code != 0 {
		t.Fatalf("restore exited %d", code)
	}
	da, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(da) != string(db) {
		t.Fatal("restore -o re-serialization is not byte-identical to the input")
	}
	if code := run([]string{"diff", a, b}); code != 0 {
		t.Fatalf("diff of identical snapshots exited %d", code)
	}
	if code := run([]string{"info", a}); code != 0 {
		t.Fatalf("info exited %d", code)
	}
	if code := run(quick("restore", a, "-run")); code != 0 {
		t.Fatalf("restore -run exited %d", code)
	}
}

func TestRestoreRejectsMismatchedScenario(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.snap")
	if code := run(quick("save", "-o", a)); code != 0 {
		t.Fatalf("save exited %d", code)
	}
	if code := run(quick("restore", a, "-replicas", "3")); code != 1 {
		t.Fatalf("mismatched replica count: restore exited %d, want 1", code)
	}
	if code := run(quick("restore", a, "-seed", "9")); code != 1 {
		t.Fatalf("mismatched seed: restore exited %d, want 1", code)
	}
}

func TestDiffDetectsDifference(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.snap")
	b := filepath.Join(dir, "b.snap")
	if code := run(quick("save", "-o", a, "-seed", "1")); code != 0 {
		t.Fatalf("save a exited %d", code)
	}
	if code := run(quick("save", "-o", b, "-seed", "3")); code != 0 {
		t.Fatalf("save b exited %d", code)
	}
	if code := run([]string{"diff", a, b}); code != 1 {
		t.Fatalf("diff of different snapshots exited %d, want 1", code)
	}
}
