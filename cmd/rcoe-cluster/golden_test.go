package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"rcoe/internal/exp"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// benchArgs is the deterministic golden subset: a small 4-shard bench
// sweep with a fixed seed. The artifact carries no host timings.
func benchArgs(extra ...string) []string {
	args := []string{
		"-json", "-quiet",
		"-shards", "4", "-records", "32", "-ops", "48", "-seed", "7",
	}
	return append(args, extra...)
}

// runToFile invokes a subcommand with -out pointed at a temp file and
// returns the artifact bytes.
func runToFile(t *testing.T, run func([]string) int, args []string) []byte {
	t.Helper()
	out := filepath.Join(t.TempDir(), "artifact.json")
	if code := run(append(args, "-out", out)); code != 0 {
		t.Fatalf("exit code %d, want 0 (args %v)", code, args)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestBenchJSONGolden pins the rcoe-cluster/v1 artifact bytes of the
// standard bench sweep. If an intentional change alters the artifact,
// run `go test ./cmd/rcoe-cluster -run TestBenchJSONGolden -update`
// and review the golden diff.
func TestBenchJSONGolden(t *testing.T) {
	t.Cleanup(func() { exp.SetDefaultWorkers(0) })
	got := runToFile(t, runBench, benchArgs("-parallel", "2"))

	golden := filepath.Join("testdata", "bench.golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("JSON artifact drifted from %s\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestBenchJSONWorkerInvariant reruns the golden subset at several
// engine worker counts and requires byte-identical artifacts — the
// cluster acceptance criterion for -parallel.
func TestBenchJSONWorkerInvariant(t *testing.T) {
	t.Cleanup(func() { exp.SetDefaultWorkers(0) })
	serial := runToFile(t, runBench, benchArgs("-parallel", "1"))
	for _, workers := range []string{"2", "8"} {
		got := runToFile(t, runBench, benchArgs("-parallel", workers))
		if !bytes.Equal(serial, got) {
			t.Fatalf("artifact differs between 1 and %s workers", workers)
		}
	}
}

// TestFailoverJSONGolden pins the failover-drill artifact, including
// the zero-lost-writes audit fields.
func TestFailoverJSONGolden(t *testing.T) {
	args := []string{
		"-json", "-shards", "4", "-records", "32", "-ops", "48",
		"-seed", "7", "-victim", "1", "-kill-after", "12",
		"-ckpt-rounds", "1000",
	}
	got := runToFile(t, runFailover, args)

	golden := filepath.Join("testdata", "failover.golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("JSON artifact drifted from %s\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestOutPreflightFailsFast pins the -out contract: an unwritable path
// exits non-zero before any cluster boots.
func TestOutPreflightFailsFast(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no-such-dir", "artifact.json")
	start := time.Now()
	if code := runBench([]string{"-json", "-quiet", "-ops", "100000", "-out", bad}); code != 2 {
		t.Fatalf("exit code %d, want 2 for unwritable -out", code)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("took %v: campaign ran before the -out check", elapsed)
	}
	if _, err := os.Stat(bad); !os.IsNotExist(err) {
		t.Fatalf("artifact path exists after failed preflight (stat err %v)", err)
	}
}
